/**
 * @file
 * Bottleneck attribution report: simulate the 19 workloads on the
 * hand-designed general overlay, classify each as compute- vs
 * memory-bound from the simulator's stall counters, and cross-check
 * the classification against the analytical bottleneck model
 * (paper Eq. 1-2). Disagreements flag where the model's limiting-
 * factor decomposition and the simulated machine part ways.
 */

#include "common.h"

#include "model/perf.h"
#include "sched/scheduler.h"
#include "telemetry/attribution.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Bottleneck attribution",
                  "model vs simulator, general overlay");

    adg::SysAdg design = bench::generalOverlay();
    std::vector<wl::KernelSpec> suite = wl::allWorkloads();
    std::vector<telemetry::KernelObservation> observations;
    sim::SimConfig config = bench::withSink(harness.sink());

    for (const wl::KernelSpec &spec : suite) {
        compiler::CompileOptions copts;
        copts.applyTuning = true;
        auto variants = compiler::compileVariants(spec, copts);
        adg::SysAdg target = design;
        sched::SpatialScheduler scheduler(target.adg);
        auto fit = scheduler.scheduleFirstFit(variants);
        if (!fit) {
            // Kernels the general overlay cannot host still get
            // classified, on their capability-complete seed tile.
            target.adg = dse::seedTile({ spec });
            sched::SpatialScheduler fallback(target.adg);
            fit = fallback.scheduleFirstFit(variants);
        }
        if (!fit) {
            std::printf("  %-16s (unschedulable, skipped)\n",
                        spec.name.c_str());
            continue;
        }
        const dfg::Mdfg &mdfg = variants[fit->second];
        const sched::Schedule &schedule = fit->first;

        model::PerfInput input;
        input.mdfg = &mdfg;
        input.backing =
            sched::backingFromSchedule(schedule, target.adg, mdfg);
        model::PerfBreakdown prediction =
            model::estimateIpc(input, target.adg, target.sys);

        wl::Memory memory;
        memory.init(spec);
        sim::SimResult result = sim::simulate(
            spec, mdfg, schedule, target, memory, config);
        if (!result.completed) {
            std::printf("  %-16s (did not complete, skipped)\n",
                        spec.name.c_str());
            continue;
        }
        observations.push_back(telemetry::observeKernel(
            spec.name, result, config, target.sys, prediction));
    }

    telemetry::AttributionReport report =
        telemetry::buildReport(observations);
    std::printf("%s", report.format().c_str());

    harness.finish();
    return 0;
}
