/**
 * @file
 * Regenerates paper Figure 19 (Q7): the effect of DRAM channel count
 * (1/2/4) on both frameworks, normalized to single-channel. Memory-
 * intensive, element-wise workloads benefit; compute-bound kernels do
 * not. OverGen runs on the general overlay via the cycle-level
 * simulator; AutoDSE uses the HLS model's bandwidth term. The
 * per-workload channel sweeps are independent, so they fan out across
 * the harness pool (`--threads`).
 */

#include "common.h"

using namespace overgen;

namespace {

struct ChannelRow
{
    double ad2 = 0.0;
    double ad4 = 0.0;
    double og2 = 0.0;
    double og4 = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 19", "DRAM channel scaling (speedup vs 1ch)");
    // The paper's OverGen side uses per-workload overlays whose many
    // tiles demand more than one channel supplies; our stand-in widens
    // the general overlay's NoC links and L2 banking so the aggregate
    // tile demand exceeds a single channel the same way.
    adg::SysAdg base = bench::generalOverlay();
    base.sys.numTiles = 10;  // workload overlays pack ~10 tiles
    base.sys.nocBytes = 64;
    base.sys.l2Banks = 16;

    std::printf("%-12s | %7s %7s | %7s %7s\n", "workload", "ad-2",
                "ad-4", "og-2", "og-4");
    std::vector<wl::KernelSpec> workloads = wl::allWorkloads();

    // Phase 1 (harness pool): AutoDSE model sweeps, plus one compile
    // + schedule per workload — the channel count is a system knob
    // that leaves the tile ADG (and thus the mapping) untouched, so
    // the three channel points share the mapping and differ only in
    // `sys.dramChannels`.
    std::vector<ChannelRow> rows = harness.pool().parallelMap(
        workloads.size(), [&](size_t i) {
            const wl::KernelSpec &k = workloads[i];
            ChannelRow row;
            // AutoDSE side (model).
            hls::AutoDseOptions one;
            hls::AutoDseOptions two = one;
            two.dramChannels = 2;
            hls::AutoDseOptions four = one;
            four.dramChannels = 4;
            double ad1 = hls::runAutoDse(k, true, one).perf.seconds;
            row.ad2 =
                ad1 / hls::runAutoDse(k, true, two).perf.seconds;
            row.ad4 =
                ad1 / hls::runAutoDse(k, true, four).perf.seconds;
            return row;
        });

    // One shared design per channel count; every workload's points
    // reference these three instead of carrying 57 SysAdg copies.
    const int channel_counts[] = { 1, 2, 4 };
    std::vector<std::shared_ptr<const adg::SysAdg>> channel_designs;
    for (int channels : channel_counts) {
        adg::SysAdg design = base;
        design.sys.dramChannels = channels;
        channel_designs.push_back(
            bench::shareDesign(std::move(design)));
    }
    std::vector<bench::PreparedSim> prepared;
    for (const wl::KernelSpec &k : workloads) {
        bench::PreparedSim mapping =
            bench::prepareOverlayRun(k, channel_designs[0], true);
        for (size_t c = 0; c < channel_designs.size(); ++c) {
            bench::PreparedSim point = mapping;
            point.design = channel_designs[c];
            prepared.push_back(std::move(point));
        }
    }

    // Phase 2: the whole 19-workload x 3-channel sweep as one batch.
    std::vector<bench::OverlayRun> runs =
        bench::runPreparedBatch(prepared, harness);
    for (size_t i = 0; i < workloads.size(); ++i) {
        auto cycles = [&](size_t point) {
            const bench::OverlayRun &r = runs[3 * i + point];
            return r.ok ? static_cast<double>(r.cycles) : 0.0;
        };
        double og1 = cycles(0);
        rows[i].og2 = og1 > 0 ? og1 / cycles(1) : 0.0;
        rows[i].og4 = og1 > 0 ? og1 / cycles(2) : 0.0;
    }
    std::vector<double> og2_all, og4_all, ad2_all, ad4_all;
    for (size_t i = 0; i < workloads.size(); ++i) {
        const ChannelRow &row = rows[i];
        bool deadlocked = runs[3 * i].deadlocked ||
                          runs[3 * i + 1].deadlocked ||
                          runs[3 * i + 2].deadlocked;
        std::printf("%-12s | %6.2fx %6.2fx | %6.2fx %6.2fx%s\n",
                    workloads[i].name.c_str(), row.ad2, row.ad4,
                    row.og2, row.og4,
                    deadlocked ? " [deadlock]" : "");
        ad2_all.push_back(row.ad2);
        ad4_all.push_back(row.ad4);
        if (row.og2 > 0)
            og2_all.push_back(row.og2);
        if (row.og4 > 0)
            og4_all.push_back(row.og4);
    }
    std::printf("\nmeans: ad-2 %.2fx ad-4 %.2fx | og-2 %.2fx og-4 "
                "%.2fx\n",
                bench::geomean(ad2_all), bench::geomean(ad4_all),
                bench::geomean(og2_all), bench::geomean(og4_all));
    std::printf("paper shape: element-wise memory-intensive kernels "
                "(mm, gemm, vecmax, accumulate, acc_sqr, acc_wei, "
                "deri.) gain ~19-25%%; compute-bound kernels are "
                "flat.\n");
    harness.finish();
    return 0;
}
