/**
 * @file
 * Microbenchmarks (google-benchmark): the stream-table one-hot bypass
 * (paper Fig. 11 — the bypass doubles a lone stream's issue rate) and
 * the raw simulation rate of the cycle-level system model.
 */

#include <benchmark/benchmark.h>

#include "common.h"

using namespace overgen;

namespace {

/** Strided scale kernel whose streams sit alone on scratchpads. */
wl::KernelSpec
stridedScale()
{
    wl::KernelSpec spec;
    spec.name = "scale-strided";
    spec.suite = wl::Suite::Dsp;
    spec.loops = { { "i", 512, {}, false } };
    spec.arrays = { { "a", DataType::F64, 4096, false, "" },
                    { "c", DataType::F64, 4096, false, "" } };
    spec.accesses = { { "a", { 8 }, 0, false, "" },
                      { "c", { 8 }, 0, true, "" } };
    spec.ops = { { Opcode::Mul, DataType::F64, wl::Operand::access(0),
                   wl::Operand::imm64(2.0), 1 } };
    spec.scratchpadHints = { "a", "c" };
    spec.maxUnroll = 1;
    return spec;
}

adg::SysAdg
twoSpadTile()
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 4;
    config.numInPorts = 4;
    config.numOutPorts = 2;
    config.datapathBytes = 64;
    config.numScratchpads = 2;
    config.spadCapacityKiB = 64;
    config.peCapabilities = adg::floatCapabilities(DataType::F64);
    adg::SysAdg design;
    design.adg = adg::buildMeshTile(config);
    design.sys.numTiles = 1;
    return design;
}

void
benchBypass(benchmark::State &state)
{
    bool bypass = state.range(0) != 0;
    wl::KernelSpec spec = stridedScale();
    adg::SysAdg design = twoSpadTile();
    sched::SpatialScheduler scheduler(design.adg);
    dfg::Mdfg mdfg = compiler::compileOne(spec, 1, false, false);
    auto schedule = scheduler.schedule(mdfg);
    if (!schedule) {
        state.SkipWithError("kernel does not schedule");
        return;
    }
    uint64_t cycles = 0;
    for (auto _ : state) {
        wl::Memory memory;
        memory.init(spec);
        sim::SimConfig config;
        config.oneHotBypass = bypass;
        sim::SimResult result =
            sim::simulate(spec, mdfg, *schedule, design, memory,
                          config);
        cycles = result.cycles;
        benchmark::DoNotOptimize(result.cycles);
    }
    state.counters["overlay_cycles"] =
        static_cast<double>(cycles);
    state.counters["issue_rate"] =
        512.0 / static_cast<double>(cycles);
}

void
benchSimulatorRate(benchmark::State &state)
{
    wl::KernelSpec spec = wl::makeBgr2Grey(64);
    adg::SysAdg design = bench::generalOverlay();
    design.sys.numTiles = static_cast<int>(state.range(0));
    sched::SpatialScheduler scheduler(design.adg);
    auto variants = compiler::compileVariants(spec);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit) {
        state.SkipWithError("kernel does not schedule");
        return;
    }
    uint64_t sim_cycles = 0;
    for (auto _ : state) {
        wl::Memory memory;
        memory.init(spec);
        sim::SimResult result =
            sim::simulate(spec, variants[fit->second], fit->first,
                          design, memory);
        sim_cycles += result.cycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        static_cast<double>(sim_cycles), benchmark::Counter::kIsRate);
}

BENCHMARK(benchBypass)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(benchSimulatorRate)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Fig. 11 microbenchmark: benchBypass/1 (one-hot "
                "bypass ON) should show ~2x the issue_rate of "
                "benchBypass/0 (OFF).\n");
    // google-benchmark strips its own --benchmark_* flags first; the
    // remainder goes through the strict common parser, so unknown
    // arguments stay fatal and repeated flags are rejected.
    benchmark::Initialize(&argc, argv);
    bench::Harness harness(bench::parseCommonFlags(argc, argv));
    benchmark::RunSpecifiedBenchmarks();
    harness.finish();
    return 0;
}
