/**
 * @file
 * Microbenchmarks (google-benchmark) of the framework's hot paths:
 * spatial scheduling, schedule repair, reuse analysis, MLP resource
 * prediction, and the spatial-memory ablation (scratchpad-enabled vs
 * DMA-only tiles — the motivation of paper §IV).
 */

#include <benchmark/benchmark.h>

#include "common.h"

#include "compiler/reuse.h"
#include "model/resource_model.h"

using namespace overgen;

namespace {

adg::Adg
benchTile(bool with_spad)
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.numScratchpads = with_spad ? 2 : 0;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    auto f64 = adg::floatCapabilities(DataType::F64);
    caps.insert(f64.begin(), f64.end());
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

void
benchSchedule(benchmark::State &state)
{
    adg::Adg tile = benchTile(true);
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(32), 4, true, false);
    for (auto _ : state) {
        sched::SpatialScheduler scheduler(tile);
        auto result = scheduler.schedule(mdfg);
        benchmark::DoNotOptimize(result);
    }
}

void
benchScheduleRepair(benchmark::State &state)
{
    adg::Adg tile = benchTile(true);
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(32), 4, true, false);
    sched::SpatialScheduler scheduler(tile);
    auto prior = scheduler.schedule(mdfg);
    for (auto _ : state) {
        auto result = scheduler.repair(mdfg, *prior);
        benchmark::DoNotOptimize(result);
    }
}

void
benchCompileVariants(benchmark::State &state)
{
    wl::KernelSpec spec = wl::makeStencil2d();
    for (auto _ : state) {
        auto variants = compiler::compileVariants(spec);
        benchmark::DoNotOptimize(variants);
    }
}

void
benchReuseAnalysis(benchmark::State &state)
{
    wl::KernelSpec spec = wl::makeFir();
    for (auto _ : state) {
        for (size_t i = 0; i < spec.accesses.size(); ++i) {
            auto analysis =
                compiler::analyzeAccess(spec, static_cast<int>(i));
            benchmark::DoNotOptimize(analysis);
        }
    }
}

void
benchMlpPredict(benchmark::State &state)
{
    const auto &model = model::FpgaResourceModel::defaultModel();
    adg::Adg tile = benchTile(true);
    for (auto _ : state) {
        model::Resources r = model.tileResources(tile);
        benchmark::DoNotOptimize(r);
    }
}

/** Spatial-memory ablation (paper §IV motivation): fir on a tile with
 * scratchpads vs the same tile with DMA only. */
void
benchSpatialMemoryAblation(benchmark::State &state)
{
    bool with_spad = state.range(0) != 0;
    adg::SysAdg design;
    design.adg = benchTile(with_spad);
    design.sys.numTiles = 2;
    wl::KernelSpec spec = wl::makeFir(512, 64);
    sched::SpatialScheduler scheduler(design.adg);
    auto variants = compiler::compileVariants(spec);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit) {
        state.SkipWithError("fir does not schedule");
        return;
    }
    uint64_t cycles = 0;
    for (auto _ : state) {
        wl::Memory memory;
        memory.init(spec);
        sim::SimResult result = sim::simulate(
            spec, variants[fit->second], fit->first, design, memory);
        cycles = result.cycles;
    }
    state.counters["overlay_cycles"] = static_cast<double>(cycles);
}

BENCHMARK(benchSchedule)->Unit(benchmark::kMillisecond);
BENCHMARK(benchScheduleRepair)->Unit(benchmark::kMillisecond);
BENCHMARK(benchCompileVariants)->Unit(benchmark::kMillisecond);
BENCHMARK(benchReuseAnalysis);
BENCHMARK(benchMlpPredict)->Unit(benchmark::kMillisecond);
BENCHMARK(benchSpatialMemoryAblation)
    ->Arg(1)
    ->Arg(0)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark strips its own --benchmark_* flags first; the
    // remainder goes through the strict common parser, so unknown
    // arguments stay fatal and repeated flags are rejected.
    benchmark::Initialize(&argc, argv);
    bench::Harness harness(bench::parseCommonFlags(argc, argv));
    benchmark::RunSpecifiedBenchmarks();
    harness.finish();
    return 0;
}
