/**
 * @file
 * Simulator-core throughput microbenchmark: simulated cycles per
 * wall-clock second with event-horizon fast-forward on vs off. Four
 * regimes: *bandwidth-bound* fig19-style points (the widened general
 * overlay pinned to narrow DRAM channels behind a slow memory), where
 * the memory system drains queues nearly every cycle and only the
 * drain-replay fast path opens a horizon; the same point at default
 * latency/bandwidth, where staggered in-flight fills keep some
 * component busy nearly every cycle; a 4-channel variant of the
 * saturated point; and a compute-bound contrast kernel whose horizon
 * never opens. Writes BENCH_sim.json next to the binary.
 *
 * Methodology mirrors micro_dse_eval: each configuration runs several
 * repetitions and the best (minimum-time) repetition is the headline
 * number. The bench asserts the bit-identity contract — cycles and
 * IPC equal across fast-forward on/off and every repetition — and
 * reports the skipped/drained-cycle fractions plus an explicit
 * `fast_forward_speedup` per point so a perf regression can be told
 * apart from a horizon regression (DESIGN.md "SimEngine and
 * event-horizon fast-forward", "Budget-drain fast path and data
 * layout"). A snapshot-resume section times resuming the headline
 * point's final eighth from a checkpoint against a cold run and
 * records `resume_speedup` (DESIGN.md "Snapshots and incremental
 * evaluation").
 */

#include <chrono>
#include <cstdio>

#include "common.h"

#include "common/json.h"
#include "telemetry/sink.h"

using namespace overgen;

namespace {

struct Point
{
    std::string label;
    wl::KernelSpec spec;
    bench::PreparedSim prepared;
    /** Cycles a DRAM fill takes (SimConfig::dramLatency; 0 keeps the
     * default). The headline point raises it: global dead windows
     * only open when the fill latency dwarfs what the tiles' ROBs can
     * overlap, and that is the regime fast-forward exists for. */
    int dramLatency = 0;
    /** DRAM channel bytes/cycle (0 keeps the default). The saturated
     * points narrow it until a line dispatch takes several cycles of
     * budget accrual: the memory system then progresses nearly every
     * cycle and only drain-replay windows open the horizon. */
    int channelBandwidthBytes = 0;
};

struct Measurement
{
    double bestCyclesPerSec = 0.0;
    double meanCyclesPerSec = 0.0;
    uint64_t cycles = 0;
    double ipc = 0.0;
    uint64_t tickedCycles = 0;
    uint64_t skippedCycles = 0;
    uint64_t drainedCycles = 0;
    uint64_t drainJumps = 0;
    uint64_t peakOutstandingTxns = 0;
};

Measurement
measure(const Point &point, sim::SimConfig config, bool fast_forward,
        int reps, int inner, bool analyze_phases = false)
{
    config.noFastForward = !fast_forward;
    if (point.dramLatency > 0)
        config.dramLatency = point.dramLatency;
    if (point.channelBandwidthBytes > 0)
        config.dramChannelBandwidthBytes = point.channelBandwidthBytes;
    Measurement m;
    double total_cps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        uint64_t cycles = 0;
        auto t0 = std::chrono::steady_clock::now();
        sim::SimResult result;
        for (int i = 0; i < inner; ++i) {
            wl::Memory memory;
            memory.init(point.spec);
            result = sim::simulate(point.spec, point.prepared.mdfg,
                                   point.prepared.schedule,
                                   *point.prepared.design, memory,
                                   config);
            OG_ASSERT(result.completed, "'", point.label,
                      "' did not complete");
            if (analyze_phases) {
                telemetry::PhaseProfile phases =
                    sim::analyzeRunPhases(result);
                OG_ASSERT(phases.cycles == result.cycles,
                          "phase spans do not cover '", point.label,
                          "'");
            }
            cycles += result.cycles;
        }
        double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        double cps = static_cast<double>(cycles) / seconds;
        total_cps += cps;
        if (rep == 0) {
            m.cycles = result.cycles;
            m.ipc = result.ipc;
            m.peakOutstandingTxns = result.memory.peakOutstandingTxns;
        } else {
            OG_ASSERT(result.cycles == m.cycles && result.ipc == m.ipc,
                      "'", point.label,
                      "' drifted between repetitions");
        }
        if (cps > m.bestCyclesPerSec) {
            m.bestCyclesPerSec = cps;
            m.tickedCycles = result.tickedCycles;
            m.skippedCycles = result.skippedCycles;
            m.drainedCycles = result.drainedCycles;
            m.drainJumps = result.drainJumps;
        }
    }
    m.meanCyclesPerSec = total_cps / reps;
    return m;
}

Json
toJson(const Measurement &m)
{
    Json obj = Json::makeObject();
    obj.set("best_cycles_per_sec", Json(m.bestCyclesPerSec));
    obj.set("mean_cycles_per_sec", Json(m.meanCyclesPerSec));
    obj.set("cycles", Json(m.cycles));
    obj.set("ipc", Json(m.ipc));
    obj.set("ticked_cycles", Json(m.tickedCycles));
    obj.set("skipped_cycles", Json(m.skippedCycles));
    obj.set("drained_cycles", Json(m.drainedCycles));
    obj.set("drain_jumps", Json(m.drainJumps));
    obj.set("peak_outstanding_txns", Json(m.peakOutstandingTxns));
    return obj;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("micro_sim",
                  "simulator throughput, event-horizon fast-forward "
                  "on vs off");

    // The headline point is the DRAM-limited fig19 regime (ten tiles
    // sharing one channel, L2 far smaller than the streamed arrays)
    // behind a slow memory: once the fill latency dwarfs what the
    // tiles' 16-deep ROBs can overlap, the whole system spends most
    // cycles stalled on DRAM — the dead windows event-horizon
    // fast-forward exists to skip. The same point at the default
    // latency is the densely-pipelined contrast (staggered fills keep
    // some component busy nearly every cycle, so the horizon rarely
    // opens) and `fir` on the stock overlay is the compute-bound one
    // (tiles fire nearly every cycle).
    adg::SysAdg starved = bench::generalOverlay();
    starved.sys.numTiles = 10;
    starved.sys.nocBytes = 64;
    starved.sys.l2Banks = 16;
    starved.sys.l2CapacityKiB = 16;
    starved.sys.dramChannels = 1;

    // 4-channel variant of the saturated regime: same starved system
    // with the line traffic spread over four 8-byte/cycle channels.
    adg::SysAdg starved4ch = starved;
    starved4ch.sys.dramChannels = 4;

    std::vector<Point> points;
    // Bandwidth-bound headline points: slow fills *and* channels so
    // narrow that a 64-byte line dispatch needs 4 cycles of budget.
    // The memory system progresses nearly every cycle, so the plain
    // horizon never opens — these were ~1x before drain replay.
    for (const char *name : { "accumulate", "vecmax" }) {
        Point point;
        point.label = std::string(name) + "@1ch,slow-dram";
        point.spec = wl::workloadByName(name);
        point.prepared =
            bench::prepareOverlayRun(point.spec, starved, true);
        OG_ASSERT(point.prepared.ok, "cannot schedule '", point.label,
                  "'");
        point.dramLatency = 4000;
        point.channelBandwidthBytes = 16;
        points.push_back(std::move(point));
    }
    {
        Point point;
        point.label = "accumulate@4ch,slow-dram";
        point.spec = wl::workloadByName("accumulate");
        point.prepared =
            bench::prepareOverlayRun(point.spec, starved4ch, true);
        OG_ASSERT(point.prepared.ok, "cannot schedule '", point.label,
                  "'");
        point.dramLatency = 4000;
        point.channelBandwidthBytes = 8;
        points.push_back(std::move(point));
    }
    {
        Point point;
        point.label = "accumulate@1ch";
        point.spec = wl::workloadByName("accumulate");
        point.prepared =
            bench::prepareOverlayRun(point.spec, starved, true);
        OG_ASSERT(point.prepared.ok, "cannot schedule '", point.label,
                  "'");
        points.push_back(std::move(point));
    }
    {
        Point point;
        point.label = "fir(compute-bound)";
        point.spec = wl::workloadByName("fir");
        point.prepared = bench::prepareOverlayRun(
            point.spec, bench::generalOverlay(), true);
        OG_ASSERT(point.prepared.ok, "cannot schedule '", point.label,
                  "'");
        points.push_back(std::move(point));
    }

    const int reps = 5;
    const int inner = 3;
    std::printf("\nconfig: reps=%d inner=%d (best-of-reps headline)\n",
                reps, inner);
    std::printf("%-24s %14s %14s %9s %9s %9s\n", "point",
                "ff-on Mcyc/s", "ff-off Mcyc/s", "speedup", "skipped",
                "drained");

    Json rows = Json::makeArray();
    for (const Point &point : points) {
        sim::SimConfig config = bench::withSink(harness.sink());
        Measurement on = measure(point, config, true, reps, inner);
        Measurement off = measure(point, config, false, reps, inner);
        OG_ASSERT(on.cycles == off.cycles && on.ipc == off.ipc,
                  "fast-forward changed the simulation of '",
                  point.label, "'");
        double speedup = on.bestCyclesPerSec / off.bestCyclesPerSec;
        double skipped =
            static_cast<double>(on.skippedCycles) /
            static_cast<double>(std::max<uint64_t>(on.cycles, 1));
        double drained =
            static_cast<double>(on.drainedCycles) /
            static_cast<double>(std::max<uint64_t>(on.cycles, 1));
        std::printf("%-24s %14.2f %14.2f %8.2fx %8.1f%% %8.1f%%\n",
                    point.label.c_str(), on.bestCyclesPerSec / 1e6,
                    off.bestCyclesPerSec / 1e6, speedup,
                    skipped * 100.0, drained * 100.0);
        Json row = Json::makeObject();
        row.set("point", Json(point.label));
        row.set("fast_forward_on", toJson(on));
        row.set("fast_forward_off", toJson(off));
        row.set("fast_forward_speedup", Json(speedup));
        rows.push(std::move(row));
    }

    // Snapshot-resume win: capture a checkpoint seven eighths of the
    // way through the long bandwidth-bound headline run, then compare
    // a cold re-simulation against resuming the final eighth from the
    // checkpoint (what the DSE's warm cache and the serve layer's
    // crash recovery do). Resume rebuilds the system and restores
    // state instead of re-simulating the prefix, so it must beat the
    // cold run; both must agree bit-identically.
    double resume_speedup = 0.0;
    uint64_t resume_checkpoint_cycle = 0;
    double resume_cold_sec = 0.0;
    double resume_warm_sec = 0.0;
    const Point &resume_point = points.front();
    {
        sim::SimConfig config = bench::withSink(harness.sink());
        if (resume_point.dramLatency > 0)
            config.dramLatency = resume_point.dramLatency;
        if (resume_point.channelBandwidthBytes > 0)
            config.dramChannelBandwidthBytes =
                resume_point.channelBandwidthBytes;
        wl::Memory memory;
        memory.init(resume_point.spec);
        sim::SimResult cold = sim::simulate(
            resume_point.spec, resume_point.prepared.mdfg,
            resume_point.prepared.schedule,
            *resume_point.prepared.design, memory, config);
        OG_ASSERT(cold.completed, "resume point did not complete");

        sim::LatestSnapshotSink latest;
        sim::SimConfig capture = config;
        capture.checkpointEvery =
            std::max<uint64_t>(1, cold.cycles * 7 / 8);
        capture.checkpointSink = &latest;
        wl::Memory capture_memory;
        capture_memory.init(resume_point.spec);
        sim::simulate(resume_point.spec, resume_point.prepared.mdfg,
                      resume_point.prepared.schedule,
                      *resume_point.prepared.design, capture_memory,
                      capture);
        OG_ASSERT(latest.hasSnapshot(),
                  "no checkpoint fired on the resume point");
        resume_checkpoint_cycle = latest.cycle;

        auto clock_best = [&](auto &&run) {
            double best = 0.0;
            for (int rep = 0; rep < reps; ++rep) {
                auto t0 = std::chrono::steady_clock::now();
                sim::SimResult result = run();
                double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                OG_ASSERT(result.cycles == cold.cycles &&
                              result.ipc == cold.ipc,
                          "resume-point run drifted from the cold "
                          "reference");
                if (best == 0.0 || seconds < best)
                    best = seconds;
            }
            return best;
        };
        resume_cold_sec = clock_best([&] {
            wl::Memory m;
            m.init(resume_point.spec);
            return sim::simulate(resume_point.spec,
                                 resume_point.prepared.mdfg,
                                 resume_point.prepared.schedule,
                                 *resume_point.prepared.design, m,
                                 config);
        });
        resume_warm_sec = clock_best([&] {
            wl::Memory m;
            m.init(resume_point.spec);
            return sim::resumeFrom(latest.latest, resume_point.spec,
                                   resume_point.prepared.mdfg,
                                   resume_point.prepared.schedule,
                                   *resume_point.prepared.design, m,
                                   config);
        });
        resume_speedup = resume_cold_sec / resume_warm_sec;
        std::printf("\nsnapshot resume (%s, checkpoint at cycle %llu "
                    "of %llu): cold %.1f ms vs resumed suffix %.1f ms "
                    "-> %.2fx (bit-identical)\n",
                    resume_point.label.c_str(),
                    static_cast<unsigned long long>(
                        resume_checkpoint_cycle),
                    static_cast<unsigned long long>(cold.cycles),
                    resume_cold_sec * 1e3, resume_warm_sec * 1e3,
                    resume_speedup);
        OG_ASSERT(resume_speedup > 1.0,
                  "resuming the final eighth was not faster than a "
                  "cold run (", resume_speedup, "x)");
    }

    // Instrumentation-overhead guard: per-cycle ledger classification
    // is always on, so compare a null-sink run against one with a
    // live sink sampling an in-memory timeline (no trace file, no
    // JSONL path — pure accounting cost). Both sides disable
    // fast-forward so they tick the same cycles and the delta is
    // attributable to sampling alone. The compute-bound point is the
    // worst case: every cycle ticks, so every cycle pays.
    // Machine-load noise can depress either side of the comparison by
    // more than the 3% budget, so the guard takes the *minimum*
    // overhead over a few attempts: one clean attempt proves the
    // instrumentation itself is cheap, and a real regression fails
    // every attempt.
    const Point &guard_point = points.back();
    double overhead = 1.0;
    Measurement plain, instrumented;
    const int guard_attempts = 6;
    for (int attempt = 0; attempt < guard_attempts; ++attempt) {
        sim::SimConfig plain_config;
        Measurement p =
            measure(guard_point, plain_config, false, reps, inner);
        telemetry::SinkOptions guard_opts;
        guard_opts.statsInterval = 64;
        telemetry::Sink guard_sink(guard_opts);
        sim::SimConfig instr_config;
        instr_config.sink = &guard_sink;
        Measurement i =
            measure(guard_point, instr_config, false, reps, inner);
        double o = 1.0 - i.bestCyclesPerSec / p.bestCyclesPerSec;
        if (o < overhead) {
            overhead = o;
            plain = p;
            instrumented = i;
        }
        if (overhead < 0.03)
            break;
        std::printf("[bench] overhead attempt %d/%d measured %.2f%% "
                    "(noisy?); retrying\n",
                    attempt + 1, guard_attempts, o * 100.0);
    }
    std::printf("\ninstrumentation overhead (%s, ff-off, "
                "stats-interval=64): %.2f%% (guard: <3%%, min over "
                "attempts)\n",
                guard_point.label.c_str(), overhead * 100.0);
    OG_ASSERT(overhead < 0.03,
              "ledger+timeline instrumentation costs ",
              overhead * 100.0, "% cycles/sec (budget 3%)");

    // Phase-analysis overhead: the same comparison with the full
    // phase pipeline on the instrumented side — sample the timeline
    // every 64 cycles AND run analyzeRunPhases (row parsing +
    // hysteresis segmentation) on every simulation. The same <3%
    // budget applies: phase analysis is a post-pass over the sampled
    // rows, so it must not cost more than the sampling it consumes.
    double phase_overhead = 1.0;
    Measurement phase_plain, phase_instr;
    for (int attempt = 0; attempt < guard_attempts; ++attempt) {
        sim::SimConfig plain_config;
        Measurement p =
            measure(guard_point, plain_config, false, reps, inner);
        telemetry::SinkOptions guard_opts;
        guard_opts.statsInterval = 64;
        telemetry::Sink guard_sink(guard_opts);
        sim::SimConfig instr_config;
        instr_config.sink = &guard_sink;
        Measurement i = measure(guard_point, instr_config, false, reps,
                                inner, /*analyze_phases=*/true);
        double o = 1.0 - i.bestCyclesPerSec / p.bestCyclesPerSec;
        if (o < phase_overhead) {
            phase_overhead = o;
            phase_plain = p;
            phase_instr = i;
        }
        if (phase_overhead < 0.03)
            break;
        std::printf("[bench] phase-overhead attempt %d/%d measured "
                    "%.2f%% (noisy?); retrying\n",
                    attempt + 1, guard_attempts, o * 100.0);
    }
    std::printf("phase-analysis overhead (%s, ff-off, "
                "stats-interval=64 + analyzeRunPhases): %.2f%% "
                "(guard: <3%%, min over attempts)\n",
                guard_point.label.c_str(), phase_overhead * 100.0);
    OG_ASSERT(phase_overhead < 0.03,
              "timeline sampling + phase analysis costs ",
              phase_overhead * 100.0, "% cycles/sec (budget 3%)");

    // Prepared-design sharing win: a PreparedSim used to embed its
    // own SysAdg copy, so preparing the 19-workload suite on one
    // overlay carried 19 design copies into the batch. Time the full
    // suite prepare both ways (the const-ref overload still copies
    // once per call) and report the design footprint each leaves
    // behind, using the serialized-JSON size as the footprint proxy
    // for the design's heap tables.
    std::vector<wl::KernelSpec> suite = wl::allWorkloads();
    adg::SysAdg suite_design = bench::generalOverlay();
    auto shared_design = bench::shareDesign(suite_design);
    // Not every suite workload fits this one overlay; the timing
    // comparison only needs both paths to prepare the *same* set, so
    // skip the ones that don't schedule (with a note) instead of
    // asserting a property of the overlay.
    auto prep_clock = [&](auto &&prepare,
                          std::vector<std::string> &scheduled) {
        auto t0 = std::chrono::steady_clock::now();
        for (const wl::KernelSpec &spec : suite) {
            bench::PreparedSim p = prepare(spec);
            if (p.ok)
                scheduled.push_back(spec.name);
        }
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    std::vector<std::string> copied_ok, shared_ok;
    double prep_copied = prep_clock(
        [&](const wl::KernelSpec &spec) {
            return bench::prepareOverlayRun(spec, suite_design, true);
        },
        copied_ok);
    double prep_shared = prep_clock(
        [&](const wl::KernelSpec &spec) {
            return bench::prepareOverlayRun(spec, shared_design, true);
        },
        shared_ok);
    OG_ASSERT(copied_ok == shared_ok,
              "copied and shared prepare paths scheduled different "
              "workload sets");
    OG_ASSERT(!copied_ok.empty(), "no suite workload schedules on the "
                                  "general overlay");
    if (copied_ok.size() < suite.size()) {
        std::printf("[bench] note: %zu/%zu suite workloads schedule "
                    "on the general overlay (rest skipped)\n",
                    copied_ok.size(), suite.size());
    }
    size_t design_bytes = shared_design->toJson().dump().size();
    std::printf("\nprepared-design sharing (%zu workloads, one "
                "design): prep %.1f ms copied vs %.1f ms shared; "
                "design footprint %zu B shared vs %zu B copied\n",
                copied_ok.size(), prep_copied * 1e3,
                prep_shared * 1e3, design_bytes,
                design_bytes * copied_ok.size());

    Json report = Json::makeObject();
    report.set("bench", Json("micro_sim"));
    report.set("reps", Json(reps));
    report.set("inner", Json(inner));
    report.set("points", std::move(rows));
    Json guard = Json::makeObject();
    guard.set("point", Json(guard_point.label));
    guard.set("null_sink", toJson(plain));
    guard.set("instrumented", toJson(instrumented));
    guard.set("overhead", Json(overhead));
    guard.set("budget", Json(0.03));
    report.set("instrumentation_overhead", std::move(guard));
    Json phase_guard = Json::makeObject();
    phase_guard.set("point", Json(guard_point.label));
    phase_guard.set("null_sink", toJson(phase_plain));
    phase_guard.set("instrumented", toJson(phase_instr));
    phase_guard.set("overhead", Json(phase_overhead));
    phase_guard.set("budget", Json(0.03));
    report.set("phase_overhead", std::move(phase_guard));
    Json resume = Json::makeObject();
    resume.set("point", Json(resume_point.label));
    resume.set("checkpoint_cycle", Json(resume_checkpoint_cycle));
    resume.set("cold_seconds", Json(resume_cold_sec));
    resume.set("resume_seconds", Json(resume_warm_sec));
    resume.set("resume_speedup", Json(resume_speedup));
    report.set("snapshot_resume", std::move(resume));
    Json sharing = Json::makeObject();
    sharing.set("entries",
                Json(static_cast<int64_t>(copied_ok.size())));
    sharing.set("suite_size", Json(static_cast<int64_t>(suite.size())));
    sharing.set("prep_seconds_copied", Json(prep_copied));
    sharing.set("prep_seconds_shared", Json(prep_shared));
    sharing.set("design_json_bytes",
                Json(static_cast<int64_t>(design_bytes)));
    sharing.set("design_bytes_if_copied",
                Json(static_cast<int64_t>(design_bytes *
                                          copied_ok.size())));
    report.set("prepared_design_sharing", std::move(sharing));
    std::string text = report.dump(2);
    const char *path = "BENCH_sim.json";
    std::FILE *f = std::fopen(path, "w");
    OG_ASSERT(f != nullptr, "cannot open '", path, "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\n[bench] report written to %s\n", path);

    harness.finish();
    return 0;
}
