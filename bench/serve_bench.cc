/**
 * @file
 * Job-server throughput micro: jobs per second of the forked-worker
 * coordinator at 1/2/4 workers against the in-process runPreparedBatch
 * baseline on the same job list (shrunken workload sizes, so the
 * fork/pipe/merge overhead is a visible fraction of each job). Also
 * checks the serving layer's correctness contract along the way: every
 * server configuration must reproduce the in-process cycle counts
 * exactly. Writes BENCH_serve.json next to the binary.
 */

#include <chrono>
#include <cstdio>

#include "common.h"

#include "serve/coordinator.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    // The coordinator forks; keep the parent free of thread pools
    // until all serving is done (fork-safety contract), so the
    // harness is built but pool() is never touched before the sweeps.
    // Both sides run one sim thread: the scaling axis under test is
    // worker processes, not in-process sim threads.
    bench::CommonFlags flags = bench::parseCommonFlags(argc, argv);
    flags.simThreads = 1;
    bench::Harness harness(flags);
    bench::banner("serve_bench",
                  "job-server throughput vs in-process batching");

    std::vector<wl::KernelSpec> workloads;
    for (const wl::KernelSpec &spec : wl::allWorkloads())
        workloads.push_back(wl::smallWorkloadByName(spec.name));
    adg::SysAdg design = bench::generalOverlay();
    serve::JobSet set = bench::makeJobSet(workloads, design,
                                          /*apply_tuning=*/true,
                                          /*small_size=*/true);
    const int reps = 3;

    // In-process baseline: same jobs, same serial per-job execution
    // (sim-threads 1 mirrors the workers' default), no processes.
    auto t0 = std::chrono::steady_clock::now();
    std::vector<bench::OverlayRun> reference;
    double base_seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        auto shared = bench::shareDesign(design);
        std::vector<bench::PreparedSim> prepared;
        for (const wl::KernelSpec &spec : workloads)
            prepared.push_back(
                bench::prepareOverlayRun(spec, shared, true));
        reference = bench::runPreparedBatch(prepared, harness);
        base_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count() /
                       (rep + 1);
    }
    double base_jps =
        static_cast<double>(set.jobs.size()) / base_seconds;
    std::printf("%-22s %10.2f jobs/s (%.0f ms/batch)\n", "in-process",
                base_jps, base_seconds * 1e3);

    Json rows = Json::makeArray();
    {
        Json row = Json::makeObject();
        row.set("config", Json("in-process"));
        row.set("jobs_per_sec", Json(base_jps));
        row.set("seconds_per_batch", Json(base_seconds));
        rows.push(std::move(row));
    }

    for (int workers : { 1, 2, 4 }) {
        serve::CoordinatorOptions options;
        options.workers = workers;
        options.shardSize = 1;
        options.sink = harness.sink();
        double seconds = 0.0;
        serve::ServeOutcome outcome;
        for (int rep = 0; rep < reps; ++rep) {
            auto s0 = std::chrono::steady_clock::now();
            outcome = serve::serveJobs(set, options);
            seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - s0)
                           .count();
            OG_ASSERT(outcome.summary.ok, "serve run failed at ",
                      workers, " workers");
        }
        seconds /= reps;
        // Correctness gate: the server must reproduce the in-process
        // batch bit-for-bit (cycles are the sensitive field).
        for (size_t i = 0; i < outcome.rows.size(); ++i) {
            OG_ASSERT(outcome.rows[i].ok == reference[i].ok &&
                          outcome.rows[i].cycles ==
                              reference[i].cycles,
                      "server row ", i, " ('",
                      set.jobs[i].workload,
                      "') differs from the in-process batch");
        }
        double jps = static_cast<double>(set.jobs.size()) / seconds;
        std::printf("%-22s %10.2f jobs/s (%.0f ms/batch, %.2fx "
                    "in-process)\n",
                    (std::to_string(workers) + " workers").c_str(),
                    jps, seconds * 1e3, jps / base_jps);
        Json row = Json::makeObject();
        row.set("config",
                Json(std::to_string(workers) + "-workers"));
        row.set("workers", Json(static_cast<int64_t>(workers)));
        row.set("jobs_per_sec", Json(jps));
        row.set("seconds_per_batch", Json(seconds));
        row.set("vs_in_process", Json(jps / base_jps));
        row.set("summary", outcome.summaryJson());
        rows.push(std::move(row));
    }

    Json report = Json::makeObject();
    report.set("bench", Json("serve_bench"));
    report.set("jobs", Json(static_cast<int64_t>(set.jobs.size())));
    report.set("reps", Json(reps));
    report.set("rows", std::move(rows));
    std::string text = report.dump(2);
    const char *path = "BENCH_serve.json";
    std::FILE *f = std::fopen(path, "w");
    OG_ASSERT(f != nullptr, "cannot open '", path, "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\n[bench] report written to %s\n", path);
    harness.finish();
    return 0;
}
