/**
 * @file
 * Regenerates paper Figure 15: DSE + synthesis time. AutoDSE explores
 * and synthesizes per application; OverGen runs one domain DSE per
 * suite and synthesizes a single overlay (paper: 47% of AutoDSE's
 * combined time while producing a *more general* accelerator).
 *
 * Our DSE runs a reduced iteration budget; its wall-clock is scaled
 * to the paper's iteration count (2000) to model the full run, and
 * the final overlay synthesis uses the same synthesis-time model as
 * the HLS candidates. The three per-suite explorations run
 * concurrently on the harness pool and each evaluates its annealing
 * candidates in parallel (`--threads`); results are printed in suite
 * order once all complete.
 */

#include "common.h"

using namespace overgen;

namespace {

struct SuiteTiming
{
    std::vector<hls::AutoDseResult> perApp;
    double adTotal = 0.0;
    double ogDseHours = 0.0;
    double ogSynthHours = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 15", "DSE and synthesis time (hours)");
    constexpr int paper_iterations = 2000;
    int iters = bench::benchIterations();

    std::vector<std::string> names = { "dsp", "machsuite", "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    std::vector<SuiteTiming> timings = harness.pool().parallelMap(
        suites.size(), [&](size_t s) {
            SuiteTiming timing;
            for (const auto &k : suites[s]) {
                hls::AutoDseResult ad = hls::runAutoDse(k, false);
                timing.adTotal += ad.dseHours + ad.synthHours;
                timing.perApp.push_back(std::move(ad));
            }
            dse::DseOptions options =
                harness.dseOptions(iters, 21 + s, names[s]);
            dse::DseResult og =
                dse::exploreOverlay(suites[s], options);
            timing.ogDseHours =
                og.elapsedSeconds *
                (static_cast<double>(paper_iterations) / iters) /
                3600.0;
            timing.ogSynthHours = hls::synthesisHours(og.resources);
            return timing;
        });

    double grand_ad = 0.0, grand_og = 0.0;
    for (size_t s = 0; s < suites.size(); ++s) {
        const SuiteTiming &timing = timings[s];
        std::printf("\n[%s]\n", names[s].c_str());
        std::printf("  %-12s %8s %8s %8s\n", "app", "dse(h)",
                    "syn(h)", "total");
        for (size_t k = 0; k < suites[s].size(); ++k) {
            const hls::AutoDseResult &ad = timing.perApp[k];
            std::printf("  %-12s %8.2f %8.2f %8.2f\n",
                        suites[s][k].name.c_str(), ad.dseHours,
                        ad.synthHours, ad.dseHours + ad.synthHours);
        }
        double og_total = timing.ogDseHours + timing.ogSynthHours;
        std::printf("  %-12s %8.2f %8.2f %8.2f   <- one overlay for "
                    "the whole suite\n",
                    "suite-OG", timing.ogDseHours,
                    timing.ogSynthHours, og_total);
        std::printf("  AutoDSE total %.1fh vs OverGen %.1fh -> "
                    "OverGen uses %.0f%% of the time\n",
                    timing.adTotal, og_total,
                    100.0 * og_total / timing.adTotal);
        grand_ad += timing.adTotal;
        grand_og += og_total;
    }
    std::printf("\nacross all suites: OverGen %.1fh / AutoDSE %.1fh "
                "= %.0f%% (paper: 47%%)\n",
                grand_og, grand_ad, 100.0 * grand_og / grand_ad);
    harness.finish();
    return 0;
}
