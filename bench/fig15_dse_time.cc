/**
 * @file
 * Regenerates paper Figure 15: DSE + synthesis time. AutoDSE explores
 * and synthesizes per application; OverGen runs one domain DSE per
 * suite and synthesizes a single overlay (paper: 47% of AutoDSE's
 * combined time while producing a *more general* accelerator).
 *
 * Our DSE runs a reduced iteration budget; its wall-clock is scaled
 * to the paper's iteration count (2000) to model the full run, and
 * the final overlay synthesis uses the same synthesis-time model as
 * the HLS candidates.
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Telemetry tele(argc, argv);
    bench::banner("Figure 15", "DSE and synthesis time (hours)");
    constexpr int paper_iterations = 2000;
    int iters = bench::benchIterations();

    std::vector<std::string> names = { "dsp", "machsuite", "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    double grand_ad = 0.0, grand_og = 0.0;
    for (size_t s = 0; s < suites.size(); ++s) {
        std::printf("\n[%s]\n", names[s].c_str());
        std::printf("  %-12s %8s %8s %8s\n", "app", "dse(h)",
                    "syn(h)", "total");
        double ad_total = 0.0;
        for (const auto &k : suites[s]) {
            hls::AutoDseResult ad = hls::runAutoDse(k, false);
            double total = ad.dseHours + ad.synthHours;
            ad_total += total;
            std::printf("  %-12s %8.2f %8.2f %8.2f\n",
                        k.name.c_str(), ad.dseHours, ad.synthHours,
                        total);
        }
        dse::DseOptions options;
        options.iterations = iters;
        options.seed = 21 + s;
        options.sink = tele.sink();
        options.telemetryLabel = names[s];
        dse::DseResult og = dse::exploreOverlay(suites[s], options);
        double og_dse_hours = og.elapsedSeconds *
                              (static_cast<double>(paper_iterations) /
                               iters) /
                              3600.0;
        double og_syn_hours = hls::synthesisHours(og.resources);
        double og_total = og_dse_hours + og_syn_hours;
        std::printf("  %-12s %8.2f %8.2f %8.2f   <- one overlay for "
                    "the whole suite\n",
                    "suite-OG", og_dse_hours, og_syn_hours, og_total);
        std::printf("  AutoDSE total %.1fh vs OverGen %.1fh -> "
                    "OverGen uses %.0f%% of the time\n",
                    ad_total, og_total, 100.0 * og_total / ad_total);
        grand_ad += ad_total;
        grand_og += og_total;
    }
    std::printf("\nacross all suites: OverGen %.1fh / AutoDSE %.1fh "
                "= %.0f%% (paper: 47%%)\n",
                grand_og, grand_ad, 100.0 * grand_og / grand_ad);
    tele.finish();
    return 0;
}
