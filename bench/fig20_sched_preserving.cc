/**
 * @file
 * Regenerates paper Figure 20 (Q8): DSE convergence with and without
 * schedule-preserving transformations (node collapsing, edge-delay
 * preservation, module-capability pruning). With them the DSE
 * converges faster and to better estimated IPC (paper: ~15% less DSE
 * time, 1.09x estimated IPC). The six explorations (3 suites x
 * with/without) run concurrently on the harness pool.
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 20",
                  "schedule-preserving transformations ablation");
    int iters = std::max(2 * bench::benchIterations(), 24);

    std::vector<std::string> names = { "dsp", "machsuite", "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    // Flat task list: suite s with (task % 2 == 0) and without
    // (task % 2 == 1) schedule preservation.
    std::vector<dse::DseResult> runs = harness.pool().parallelMap(
        2 * suites.size(), [&](size_t task) {
            size_t s = task / 2;
            bool preserved = task % 2 == 0;
            dse::DseOptions options = harness.dseOptions(
                iters, 5 + s, names[s] + (preserved ? "+sp" : "-sp"));
            options.schedulePreserving = preserved;
            return dse::exploreOverlay(suites[s], options);
        });

    std::vector<double> ipc_ratio, time_ratio;
    for (size_t s = 0; s < suites.size(); ++s) {
        const dse::DseResult &on = runs[2 * s];
        const dse::DseResult &off = runs[2 * s + 1];

        // Iterations-to-quality: when does each run first reach the
        // worse run's final estimated IPC? (The paper reports DSE
        // time; we count iterations, since our repair path re-prices
        // candidates that the paper's incremental compiler skips.)
        double target = std::min(on.objective, off.objective);
        auto iters_to = [&](const dse::DseResult &r) {
            for (const auto &point : r.convergence) {
                if (point.estimatedIpc >= target)
                    return static_cast<double>(point.iteration);
            }
            return static_cast<double>(r.iterationsRun);
        };
        double t_on = std::max(iters_to(on), 1.0);
        double t_off = std::max(iters_to(off), 1.0);
        std::printf("\n[%s] final est. IPC: preserved %.1f vs "
                    "non-preserved %.1f (%.2fx); iterations-to-"
                    "quality %.0f vs %.0f (%.0f%% saved)\n",
                    names[s].c_str(), on.objective, off.objective,
                    on.objective / off.objective, t_on, t_off,
                    100.0 * (1.0 - t_on / std::max(t_off, 1e-9)));
        std::printf("  convergence (sec: est-IPC), preserved:   ");
        for (size_t p = 0; p < on.convergence.size();
             p += std::max<size_t>(1, on.convergence.size() / 6)) {
            std::printf(" %.0fs:%.0f", on.convergence[p].seconds,
                        on.convergence[p].estimatedIpc);
        }
        std::printf("\n  convergence (sec: est-IPC), non-preserved:");
        for (size_t p = 0; p < off.convergence.size();
             p += std::max<size_t>(1, off.convergence.size() / 6)) {
            std::printf(" %.0fs:%.0f", off.convergence[p].seconds,
                        off.convergence[p].estimatedIpc);
        }
        std::printf("\n  abandoned candidates: preserved %d vs "
                    "non-preserved %d\n",
                    on.abandoned, off.abandoned);
        ipc_ratio.push_back(on.objective / off.objective);
        time_ratio.push_back(t_on / t_off);
    }
    std::printf("\nmeans: est. IPC ratio %.2fx (paper 1.09x), "
                "iterations-to-quality ratio %.2f (paper DSE-time "
                "~0.85)\n",
                bench::geomean(ipc_ratio), bench::geomean(time_ratio));
    harness.finish();
    return 0;
}
