/**
 * @file
 * DSE candidate-evaluation throughput microbenchmark: runs the full
 * annealer on the DSP suite with the default system grids and reports
 * candidate evaluations per second, cache-on vs cache-off, plus the
 * evaluation-cache hit rate and the system-grid pruning count. Writes
 * BENCH_dse_eval.json next to the binary.
 *
 * Methodology: the resource model is trained before any timer starts
 * (training is a one-time cost, not part of candidate evaluation);
 * each configuration runs several repetitions of an identical seeded
 * exploration and the best (minimum-time) repetition is the headline
 * number — a 30 ms exploration is easily perturbed by the OS, and the
 * least-disturbed run is the truest measure of the code. The bench
 * asserts that every repetition and both cache settings reach the
 * same objective: the cache and the factored perf model change
 * wall-clock, never the trajectory (DESIGN.md "Evaluation cache and
 * model split").
 */

#include <chrono>
#include <cstdio>

#include "common.h"

#include "common/json.h"
#include "model/resource_model.h"

using namespace overgen;

namespace {

struct Measurement
{
    double bestEvalsPerSec = 0.0;
    double meanEvalsPerSec = 0.0;
    double objective = 0.0;
    int evaluated = 0;
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    uint64_t gridPruned = 0;
};

Measurement
measure(const bench::Harness &harness, bool cache_on, int iterations,
        int reps)
{
    std::vector<wl::KernelSpec> domain = wl::dspSuite();
    Measurement m;
    double total_eps = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        dse::DseOptions options =
            harness.dseOptions(iterations, 11, "micro_dse_eval");
        options.evalCache = cache_on;
        auto t0 = std::chrono::steady_clock::now();
        dse::DseResult result = dse::exploreOverlay(domain, options);
        double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        double eps = result.evaluated / seconds;
        total_eps += eps;
        if (rep == 0) {
            m.objective = result.objective;
            m.evaluated = result.evaluated;
        } else {
            OG_ASSERT(result.objective == m.objective,
                      "trajectory drifted between repetitions");
        }
        if (eps > m.bestEvalsPerSec) {
            m.bestEvalsPerSec = eps;
            m.cacheHits = result.cacheHits;
            m.cacheMisses = result.cacheMisses;
            m.cacheEvictions = result.cacheEvictions;
            m.gridPruned = result.gridPruned;
        }
    }
    m.meanEvalsPerSec = total_eps / reps;
    return m;
}

Json
toJson(const Measurement &m)
{
    Json obj = Json::makeObject();
    obj.set("best_evals_per_sec", Json(m.bestEvalsPerSec));
    obj.set("mean_evals_per_sec", Json(m.meanEvalsPerSec));
    obj.set("objective", Json(m.objective));
    obj.set("evaluated", Json(m.evaluated));
    obj.set("cache_hits", Json(m.cacheHits));
    obj.set("cache_misses", Json(m.cacheMisses));
    obj.set("cache_evictions", Json(m.cacheEvictions));
    obj.set("grid_pruned", Json(m.gridPruned));
    return obj;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("micro_dse_eval",
                  "DSE candidate-evaluation throughput (DSP suite, "
                  "default grids)");

    // Train outside the timed region: candidate evaluation never
    // trains, it only prices.
    (void)model::FpgaResourceModel::defaultModel();

    const int iterations = bench::benchIterations(40);
    const int reps = 5;
    Measurement on = measure(harness, true, iterations, reps);
    Measurement off = measure(harness, false, iterations, reps);

    OG_ASSERT(on.objective == off.objective,
              "evaluation cache changed the trajectory");

    double hit_rate =
        on.cacheHits + on.cacheMisses > 0
            ? static_cast<double>(on.cacheHits) /
                  static_cast<double>(on.cacheHits + on.cacheMisses)
            : 0.0;
    std::printf("\nconfig: seed=11 iterations=%d threads=%d reps=%d\n",
                iterations, harness.threads(), reps);
    std::printf("%-12s %14s %14s %12s\n", "cache", "best evals/s",
                "mean evals/s", "objective");
    std::printf("%-12s %14.1f %14.1f %12.6f\n", "on",
                on.bestEvalsPerSec, on.meanEvalsPerSec, on.objective);
    std::printf("%-12s %14.1f %14.1f %12.6f\n", "off",
                off.bestEvalsPerSec, off.meanEvalsPerSec,
                off.objective);
    std::printf("cache traffic: %llu hits / %llu misses "
                "(%.1f%% hit rate), %llu evictions\n",
                static_cast<unsigned long long>(on.cacheHits),
                static_cast<unsigned long long>(on.cacheMisses),
                hit_rate * 100.0,
                static_cast<unsigned long long>(on.cacheEvictions));
    std::printf("system grid: %llu points pruned by monotone "
                "resource bounds\n",
                static_cast<unsigned long long>(on.gridPruned));

    Json report = Json::makeObject();
    report.set("bench", Json("micro_dse_eval"));
    report.set("suite", Json("dsp"));
    report.set("seed", Json(11));
    report.set("iterations", Json(iterations));
    report.set("threads", Json(harness.threads()));
    report.set("reps", Json(reps));
    report.set("cache_on", toJson(on));
    report.set("cache_off", toJson(off));
    std::string text = report.dump(2);
    const char *path = "BENCH_dse_eval.json";
    std::FILE *f = std::fopen(path, "w");
    OG_ASSERT(f != nullptr, "cannot open '", path, "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\n[bench] report written to %s\n", path);

    harness.finish();
    return 0;
}
