/**
 * @file
 * Regenerates paper Figure 17: "leave-one-out" flexibility on
 * MachSuite. For each workload, generate an overlay for the *other
 * four*, then map the held-out workload: report performance relative
 * to the full-suite overlay, compile-time speedup over HLS synthesis,
 * and reconfiguration-time speedup over a full FPGA reflash.
 */

#include <chrono>

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Telemetry tele(argc, argv);
    bench::banner("Figure 17", "leave-one-out flexibility (MachSuite)");
    int iters = bench::benchIterations();
    std::vector<wl::KernelSpec> suite = wl::machSuite();

    dse::DseOptions options;
    options.iterations = iters;
    options.seed = 77;
    options.sink = tele.sink();
    options.telemetryLabel = "full-suite";
    dse::DseResult full = dse::exploreOverlay(suite, options);

    std::printf("%-12s %10s %14s %14s\n", "held-out", "rel.perf",
                "compile-spdup", "reconf-spdup");
    std::vector<double> rel, comp, reconf;
    for (size_t held = 0; held < suite.size(); ++held) {
        std::vector<wl::KernelSpec> rest;
        for (size_t k = 0; k < suite.size(); ++k) {
            if (k != held)
                rest.push_back(suite[k]);
        }
        dse::DseOptions loo_options = options;
        loo_options.seed = 200 + held;
        loo_options.telemetryLabel =
            "without-" + suite[held].name;
        dse::DseResult loo = dse::exploreOverlay(rest, loo_options);

        // Compile + schedule the held-out workload; measure the real
        // wall-clock of that compile.
        auto t0 = std::chrono::steady_clock::now();
        auto variants = compiler::compileVariants(suite[held]);
        sched::SpatialScheduler scheduler(loo.design.adg);
        auto fit = scheduler.scheduleFirstFit(variants);
        double compile_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (!fit) {
            std::printf("%-12s  does not map\n",
                        suite[held].name.c_str());
            continue;
        }
        wl::Memory memory;
        memory.init(suite[held]);
        sim::SimResult on_loo = sim::simulate(
            suite[held], variants[fit->second], fit->first,
            loo.design, memory, bench::withSink(tele.sink()));
        bench::OverlayRun on_full = bench::runMapped(
            suite[held], full, held, bench::withSink(tele.sink()));

        double relative = on_full.ok && on_loo.completed
                              ? static_cast<double>(on_full.cycles) /
                                    on_loo.cycles
                              : 0.0;
        // HLS path: synthesis hours for this kernel vs our compile.
        hls::AutoDseResult ad = hls::runAutoDse(suite[held], false);
        double compile_speedup =
            ad.synthHours * 3600.0 / std::max(compile_seconds, 1e-4);
        // Reconfiguration: full-FPGA reflash ~1.2 s vs spatial config.
        double flash_cycles = 1.2 * bench::overlayClockMhz * 1e6;
        double reconf_speedup =
            flash_cycles /
            static_cast<double>(sim::reconfigurationCycles(
                fit->first, loo.design.adg));
        std::printf("%-12s %9.0f%% %13.0fx %13.0fx\n",
                    suite[held].name.c_str(), relative * 100.0,
                    compile_speedup, reconf_speedup);
        if (relative > 0)
            rel.push_back(relative);
        comp.push_back(compile_speedup);
        reconf.push_back(reconf_speedup);
    }
    std::printf("\ngeomeans: relative perf %.0f%%, compile speedup "
                "%.0fx, reconfig speedup %.0fx\n",
                100.0 * bench::geomean(rel), bench::geomean(comp),
                bench::geomean(reconf));
    std::printf("paper shape: ~50%% mean relative performance, "
                "~10^4x compile, ~5x10^4x reconfig.\n");
    tele.finish();
    return 0;
}
