/**
 * @file
 * Regenerates paper Figure 17: "leave-one-out" flexibility on
 * MachSuite. For each workload, generate an overlay for the *other
 * four*, then map the held-out workload: report performance relative
 * to the full-suite overlay, compile-time speedup over HLS synthesis,
 * and reconfiguration-time speedup over a full FPGA reflash. The five
 * leave-one-out explorations (and their held-out compile + simulate
 * steps) run concurrently on the harness pool; rows print in suite
 * order once all complete.
 */

#include <chrono>

#include "common.h"

using namespace overgen;

namespace {

struct LooRow
{
    bool maps = false;
    double relative = 0.0;
    double compileSpeedup = 0.0;
    double reconfSpeedup = 0.0;
};

/**
 * Per-held-out phase-1 output: the leave-one-out exploration and
 * compile-time measurements, plus the two mappings (held-out kernel
 * on the LOO overlay and on the full-suite overlay) awaiting the
 * phase-2 batched simulation.
 */
struct LooPrep
{
    bool maps = false;
    double compileSpeedup = 0.0;
    double reconfSpeedup = 0.0;
    bench::PreparedSim onLoo;
    bench::PreparedSim onFull;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 17", "leave-one-out flexibility (MachSuite)");
    int iters = bench::benchIterations();
    std::vector<wl::KernelSpec> suite = wl::machSuite();

    dse::DseOptions options =
        harness.dseOptions(iters, 77, "full-suite");
    dse::DseResult full = dse::exploreOverlay(suite, options);
    auto full_design = bench::shareDesign(full.design);

    // Phase 1 (harness pool): the five leave-one-out explorations and
    // held-out compile/schedule steps, timed individually.
    std::vector<LooPrep> preps = harness.pool().parallelMap(
        suite.size(), [&](size_t held) {
            LooPrep prep;
            std::vector<wl::KernelSpec> rest;
            for (size_t k = 0; k < suite.size(); ++k) {
                if (k != held)
                    rest.push_back(suite[k]);
            }
            dse::DseOptions loo_options = harness.dseOptions(
                iters, 200 + held, "without-" + suite[held].name);
            dse::DseResult loo = dse::exploreOverlay(rest, loo_options);

            // Compile + schedule the held-out workload; measure the
            // real wall-clock of that compile.
            auto t0 = std::chrono::steady_clock::now();
            auto variants = compiler::compileVariants(suite[held]);
            sched::SpatialScheduler scheduler(loo.design.adg);
            auto fit = scheduler.scheduleFirstFit(variants);
            double compile_seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
            if (!fit)
                return prep;
            prep.maps = true;
            // HLS path: synthesis hours for this kernel vs our
            // compile.
            hls::AutoDseResult ad =
                hls::runAutoDse(suite[held], false);
            prep.compileSpeedup = ad.synthHours * 3600.0 /
                                  std::max(compile_seconds, 1e-4);
            // Reconfiguration: full-FPGA reflash ~1.2 s vs spatial
            // config.
            double flash_cycles = 1.2 * bench::overlayClockMhz * 1e6;
            prep.reconfSpeedup =
                flash_cycles /
                static_cast<double>(sim::reconfigurationCycles(
                    fit->first, loo.design.adg));

            prep.onLoo.ok = true;
            prep.onLoo.spec = &suite[held];
            prep.onLoo.design = bench::shareDesign(loo.design);
            prep.onLoo.mdfg = std::move(variants[fit->second]);
            prep.onLoo.schedule = std::move(fit->first);
            prep.onFull = bench::prepareMapped(suite[held], full, held,
                                               full_design);
            return prep;
        });

    // Phase 2: one batched simulation of the ten mappings.
    std::vector<bench::PreparedSim> prepared;
    for (const LooPrep &prep : preps) {
        prepared.push_back(prep.onLoo);
        prepared.push_back(prep.onFull);
    }
    std::vector<bench::OverlayRun> runs =
        bench::runPreparedBatch(prepared, harness);

    std::vector<LooRow> rows(suite.size());
    for (size_t held = 0; held < suite.size(); ++held) {
        LooRow &row = rows[held];
        if (!preps[held].maps)
            continue;
        const bench::OverlayRun &on_loo = runs[2 * held];
        const bench::OverlayRun &on_full = runs[2 * held + 1];
        row.maps = true;
        row.relative = on_full.ok && on_loo.ok
                           ? static_cast<double>(on_full.cycles) /
                                 on_loo.cycles
                           : 0.0;
        row.compileSpeedup = preps[held].compileSpeedup;
        row.reconfSpeedup = preps[held].reconfSpeedup;
    }

    std::printf("%-12s %10s %14s %14s\n", "held-out", "rel.perf",
                "compile-spdup", "reconf-spdup");
    std::vector<double> rel, comp, reconf;
    for (size_t held = 0; held < suite.size(); ++held) {
        const LooRow &row = rows[held];
        if (!row.maps) {
            std::printf("%-12s  does not map\n",
                        suite[held].name.c_str());
            continue;
        }
        bool deadlocked = runs[2 * held].deadlocked ||
                          runs[2 * held + 1].deadlocked;
        std::printf("%-12s %9.0f%% %13.0fx %13.0fx%s\n",
                    suite[held].name.c_str(), row.relative * 100.0,
                    row.compileSpeedup, row.reconfSpeedup,
                    deadlocked ? " [deadlock]" : "");
        if (row.relative > 0)
            rel.push_back(row.relative);
        comp.push_back(row.compileSpeedup);
        reconf.push_back(row.reconfSpeedup);
    }
    std::printf("\ngeomeans: relative perf %.0f%%, compile speedup "
                "%.0fx, reconfig speedup %.0fx\n",
                100.0 * bench::geomean(rel), bench::geomean(comp),
                bench::geomean(reconf));
    std::printf("paper shape: ~50%% mean relative performance, "
                "~10^4x compile, ~5x10^4x reconfig.\n");
    harness.finish();
    return 0;
}
