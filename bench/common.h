#ifndef OVERGEN_BENCH_COMMON_H
#define OVERGEN_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses. Every
 * binary regenerates one table or figure of the paper's evaluation
 * (see DESIGN.md per-experiment index). The paper's DSE runs for
 * hours; these harnesses run the same algorithms with a reduced
 * iteration budget, configurable via OVERGEN_BENCH_ITERS.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "dse/explorer.h"
#include "hls/autodse.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/suites.h"

namespace overgen::bench {

/** Overlay fabric clock (paper: quad-tile floorplan at 92.87 MHz). */
constexpr double overlayClockMhz = 92.87;
/** HLS kernel clock (Merlin/Vivado designs on the VCU118). */
constexpr double hlsClockMhz = 250.0;

/** DSE iteration budget (paper: hours; benches: minutes). */
inline int
benchIterations(int fallback = 18)
{
    const char *env = std::getenv("OVERGEN_BENCH_ITERS");
    if (env != nullptr)
        return std::max(1, std::atoi(env));
    return fallback;
}

/** The hand-designed general overlay system (paper Q1, 4 tiles). */
inline adg::SysAdg
generalOverlay()
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = 4;
    design.sys.l2Banks = 4;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

/** Simulated seconds of one kernel on one overlay design. */
struct OverlayRun
{
    bool ok = false;
    uint64_t cycles = 0;
    double seconds = 0.0;
    double ipc = 0.0;
    std::string variant;
};

/** Compile/schedule/simulate @p spec on @p design (first-fit variant). */
inline OverlayRun
runOnOverlay(const wl::KernelSpec &spec, const adg::SysAdg &design,
             bool apply_tuning = false,
             const sim::SimConfig &config = {})
{
    compiler::CompileOptions copts;
    copts.applyTuning = apply_tuning;
    auto variants = compiler::compileVariants(spec, copts);
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OverlayRun run;
    if (!fit)
        return run;
    wl::Memory memory;
    memory.init(spec);
    sim::SimResult result = sim::simulate(
        spec, variants[fit->second], fit->first, design, memory,
        config);
    run.ok = result.completed;
    run.cycles = result.cycles;
    run.seconds =
        static_cast<double>(result.cycles) / (overlayClockMhz * 1e6);
    run.ipc = result.ipc;
    run.variant = variants[fit->second].name;
    return run;
}

/** Simulate a kernel with the schedule a DSE result chose for it. */
inline OverlayRun
runMapped(const wl::KernelSpec &spec, const dse::DseResult &dse,
          size_t index, const sim::SimConfig &config = {})
{
    wl::Memory memory;
    memory.init(spec);
    sim::SimResult result =
        sim::simulate(spec, dse.mdfgs[index], dse.schedules[index],
                      dse.design, memory, config);
    OverlayRun run;
    run.ok = result.completed;
    run.cycles = result.cycles;
    run.seconds =
        static_cast<double>(result.cycles) / (overlayClockMhz * 1e6);
    run.ipc = result.ipc;
    run.variant = dse.mdfgs[index].name;
    return run;
}

/** Geometric mean helper over positive values. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, 1e-12));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Print a standard bench header. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("==============================================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("(reduced DSE budget: OVERGEN_BENCH_ITERS=%d)\n",
                benchIterations());
    std::printf("==============================================\n");
}

} // namespace overgen::bench

#endif // OVERGEN_BENCH_COMMON_H
