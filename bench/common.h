#ifndef OVERGEN_BENCH_COMMON_H
#define OVERGEN_BENCH_COMMON_H

/**
 * @file
 * Shared helpers for the per-figure/table benchmark harnesses. Every
 * binary regenerates one table or figure of the paper's evaluation
 * (see DESIGN.md per-experiment index). The paper's DSE runs for
 * hours; these harnesses run the same algorithms with a reduced
 * iteration budget, configurable via OVERGEN_BENCH_ITERS.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "adg/builders.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "compiler/compile.h"
#include "dse/explorer.h"
#include "hls/autodse.h"
#include "sched/scheduler.h"
#include "serve/wire.h"
#include "sim/batch.h"
#include "sim/simulate.h"
#include "telemetry/bridge.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

namespace overgen::bench {

/** Consume `--prefix=value` style flags: when @p arg starts with
 * @p prefix, store the (non-empty) remainder in @p out. */
inline bool
eatFlag(const std::string &arg, const char *prefix, std::string &out)
{
    size_t len = std::string(prefix).size();
    if (arg.compare(0, len, prefix) != 0)
        return false;
    out = arg.substr(len);
    OG_ASSERT(!out.empty(), "empty value in '", arg, "'");
    return true;
}

/**
 * The flag set every harness shares, parsed once by
 * parseCommonFlags(). Fields are resolved (defaults applied), so a
 * Harness built from this is fully configured; `extra` holds
 * harness-specific arguments the caller asked to keep (see
 * takeExtraFlag / rejectExtraFlags).
 */
struct CommonFlags
{
    telemetry::SinkOptions sink;
    std::string registryPath;
    int threads = 1;
    int simThreads = 1;
    bool evalCache = true;
    bool noFastForward = false;
    /** DSE candidate scoring mode (`--objective=scalar|phase`). */
    dse::DseObjective objective = dse::DseObjective::Scalar;
    /** Unrecognized arguments, in order (allowExtra mode only). */
    std::vector<std::string> extra;
};

/**
 * Parse the common harness flags:
 *
 * Parallelism: `--threads N` (or `--threads=N`) sizes the work pool
 * used for both the DSE's speculative candidate evaluation and the
 * harness-level fan-out of independent explorations/simulations. The
 * default is the hardware concurrency; `--threads 1` is the legacy
 * serial path. Results are identical for every thread count — only
 * wall-clock changes (see DESIGN.md "Determinism under parallelism").
 * `--sim-threads[=]N` independently sizes batched simulation
 * (sim::runBatch), defaulting to `--threads`.
 *
 * Telemetry: `--trace=<path>` records a Chrome trace_event file of
 * every simulation the harness runs (open in chrome://tracing or
 * https://ui.perfetto.dev); `--dse-log=<path>` appends one JSONL
 * record per DSE iteration plus periodic heartbeats;
 * `--trace-detail` adds per-issue instant events (bigger traces);
 * `--telemetry-json=<path>` dumps the counter registry;
 * `--stats-interval[=]N` samples every component's cycle ledger and
 * key stats every N cycles into an interval time-series, written as
 * JSONL to `--stats-jsonl=<path>` (defaults: interval 4096 when only
 * the path is given, path "timeline.jsonl" when only the interval
 * is).
 *
 * DSE: `--objective=scalar|phase` selects the candidate scoring mode
 * (dse::DseObjective) — `phase` weights each kernel's estimated IPC
 * by its model-estimated steady fraction, penalizing long ramps on
 * short kernels (see DESIGN.md "Phase-aware analysis").
 *
 * Unknown arguments are fatal unless @p allowExtra, in which case
 * they collect in `extra` for the harness to consume (report_cycles'
 * `--suite=`, the serve drivers' `--workers=`/`--shard-size=`/...);
 * call rejectExtraFlags() on the leftovers so typos stay fatal.
 *
 * Repeating a flag is fatal: the second occurrence would silently
 * win, which reads like both took effect. Both spellings count as
 * one flag (`--threads 2 --threads=4` is a repeat), booleans too.
 */
inline CommonFlags
parseCommonFlags(int argc, char **argv, bool allowExtra = false)
{
    CommonFlags flags;
    std::string threadsArg;
    std::string simThreadsArg;
    std::string statsIntervalArg;
    std::string objectiveArg;
    std::vector<std::string> seenFlags;
    auto once = [&seenFlags](const char *name) {
        for (const std::string &seen : seenFlags)
            if (seen == name)
                OG_FATAL("flag '", name, "' given twice");
        seenFlags.push_back(name);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--threads" && i + 1 < argc) {
            once("--threads");
            threadsArg = argv[++i];
            continue;
        }
        if (arg == "--sim-threads" && i + 1 < argc) {
            once("--sim-threads");
            simThreadsArg = argv[++i];
            continue;
        }
        if (arg == "--stats-interval" && i + 1 < argc) {
            once("--stats-interval");
            statsIntervalArg = argv[++i];
            continue;
        }
        if (eatFlag(arg, "--trace=", flags.sink.tracePath)) {
            once("--trace");
            continue;
        }
        if (eatFlag(arg, "--dse-log=", flags.sink.dseLogPath)) {
            once("--dse-log");
            continue;
        }
        if (eatFlag(arg, "--telemetry-json=", flags.registryPath)) {
            once("--telemetry-json");
            continue;
        }
        if (eatFlag(arg, "--stats-jsonl=", flags.sink.timelinePath)) {
            once("--stats-jsonl");
            continue;
        }
        if (eatFlag(arg, "--threads=", threadsArg)) {
            once("--threads");
            continue;
        }
        if (eatFlag(arg, "--sim-threads=", simThreadsArg)) {
            once("--sim-threads");
            continue;
        }
        if (eatFlag(arg, "--stats-interval=", statsIntervalArg)) {
            once("--stats-interval");
            continue;
        }
        if (eatFlag(arg, "--objective=", objectiveArg)) {
            once("--objective");
            continue;
        }
        if (arg == "--trace-detail") {
            once("--trace-detail");
            flags.sink.traceDetail = true;
            continue;
        }
        if (arg == "--no-eval-cache") {
            once("--no-eval-cache");
            flags.evalCache = false;
            continue;
        }
        if (arg == "--no-fast-forward") {
            once("--no-fast-forward");
            flags.noFastForward = true;
            continue;
        }
        if (allowExtra) {
            flags.extra.push_back(arg);
            continue;
        }
        OG_FATAL("unknown argument '", arg,
                 "' (expected --threads[=]<n>, "
                 "--sim-threads[=]<n>, --trace=<path>, "
                 "--dse-log=<path>, --trace-detail, "
                 "--no-eval-cache, --no-fast-forward, "
                 "--objective=scalar|phase, "
                 "--stats-interval[=]<n>, "
                 "--stats-jsonl=<path>, or "
                 "--telemetry-json=<path>)");
    }
    if (!statsIntervalArg.empty()) {
        int interval = std::atoi(statsIntervalArg.c_str());
        OG_ASSERT(interval >= 1, "bad --stats-interval value '",
                  statsIntervalArg, "'");
        flags.sink.statsInterval = static_cast<uint64_t>(interval);
        if (flags.sink.timelinePath.empty())
            flags.sink.timelinePath = "timeline.jsonl";
    } else if (!flags.sink.timelinePath.empty()) {
        flags.sink.statsInterval = 4096;  // path given: default cadence
    }
    if (!objectiveArg.empty()) {
        if (objectiveArg == "scalar") {
            flags.objective = dse::DseObjective::Scalar;
        } else if (objectiveArg == "phase") {
            flags.objective = dse::DseObjective::Phase;
        } else {
            OG_FATAL("bad --objective value '", objectiveArg,
                     "' (expected scalar or phase)");
        }
    }
    if (!threadsArg.empty()) {
        flags.threads = std::atoi(threadsArg.c_str());
        OG_ASSERT(flags.threads >= 1, "bad --threads value '",
                  threadsArg, "'");
    } else {
        flags.threads = ThreadPool::hardwareThreads();
    }
    if (!simThreadsArg.empty()) {
        flags.simThreads = std::atoi(simThreadsArg.c_str());
        OG_ASSERT(flags.simThreads >= 1, "bad --sim-threads value '",
                  simThreadsArg, "'");
    } else {
        flags.simThreads = flags.threads;
    }
    return flags;
}

/** Remove the first `<prefix><value>` argument from @p extra, storing
 * the value in @p out. @return whether one was found. */
inline bool
takeExtraFlag(std::vector<std::string> &extra, const char *prefix,
              std::string &out)
{
    for (auto it = extra.begin(); it != extra.end(); ++it) {
        if (eatFlag(*it, prefix, out)) {
            extra.erase(it);
            return true;
        }
    }
    return false;
}

/** Fatal on any argument the harness did not consume. */
inline void
rejectExtraFlags(const std::vector<std::string> &extra)
{
    if (!extra.empty())
        OG_FATAL("unknown argument '", extra.front(), "'");
}

/**
 * Shared services for every harness, configured by the common flag
 * set (see parseCommonFlags). Most harnesses construct it straight
 * from (argc, argv); harnesses with their own flags parse with
 * `allowExtra`, consume theirs, and hand the rest over.
 */
class Harness
{
  public:
    Harness(int argc, char **argv)
        : Harness(parseCommonFlags(argc, argv))
    {
    }

    explicit Harness(const CommonFlags &flags)
        : registryPath(flags.registryPath),
          numThreads(flags.threads),
          numSimThreads(flags.simThreads),
          useEvalCache(flags.evalCache),
          noFastForward(flags.noFastForward),
          dseObjective(flags.objective)
    {
        rejectExtraFlags(flags.extra);
        if (!flags.sink.tracePath.empty() ||
            !flags.sink.dseLogPath.empty() ||
            !registryPath.empty() || flags.sink.statsInterval > 0) {
            live = std::make_unique<telemetry::Sink>(flags.sink);
        }
    }

    /** Null when no telemetry flag was given. */
    telemetry::Sink *sink() const { return live.get(); }

    /** Resolved worker count (>= 1). */
    int threads() const { return numThreads; }

    /**
     * Worker count for batched simulation (`--sim-threads[=]N`,
     * defaulting to threads()). Cycle results are bit-identical for
     * every value — each simulation is single-threaded-deterministic
     * and sim::runBatch stores results at the job's own index.
     */
    int simThreads() const { return numSimThreads; }

    /**
     * Per-run SimConfig honoring `--no-fast-forward` (naive per-cycle
     * ticking; cycle counts are identical either way — the flag is an
     * A/B switch for wall-clock and debugging) with this harness's
     * sink attached.
     */
    sim::SimConfig
    simConfig() const
    {
        sim::SimConfig config;
        config.sink = sink();
        config.noFastForward = noFastForward;
        return config;
    }

    /**
     * Whether the DSE evaluation cache is enabled (`--no-eval-cache`
     * disables it). The cache changes wall-clock only — results are
     * bit-identical either way (see DESIGN.md "Evaluation cache and
     * model split") — so the flag exists for A/B timing, not for
     * correctness workarounds.
     */
    bool evalCache() const { return useEvalCache; }

    /** Candidate scoring mode (`--objective=scalar|phase`). */
    dse::DseObjective objective() const { return dseObjective; }

    /**
     * The harness-level work pool for fanning out independent
     * explorations and simulations; lazily built at threads() wide.
     * Explorations launched from pool tasks get their own inner
     * pools (nesting distinct pools is fine; nesting one is not).
     */
    ThreadPool &
    pool()
    {
        if (workPool == nullptr)
            workPool = std::make_unique<ThreadPool>(numThreads);
        return *workPool;
    }

    /** DseOptions pre-wired with this harness's sink and threads. */
    dse::DseOptions
    dseOptions(int iterations, uint64_t seed,
               const std::string &label) const
    {
        dse::DseOptions options;
        options.iterations = iterations;
        options.seed = seed;
        options.threads = numThreads;
        options.evalCache = useEvalCache;
        options.objective = dseObjective;
        options.sink = sink();
        options.telemetryLabel = label;
        return options;
    }

    /** Write every configured output file (call once, at exit). */
    void
    finish()
    {
        if (live == nullptr)
            return;
        live->flush();
        if (!live->options().tracePath.empty()) {
            std::printf("\n[telemetry] Chrome trace written to %s "
                        "(load in chrome://tracing or Perfetto)\n",
                        live->options().tracePath.c_str());
        }
        if (!live->options().dseLogPath.empty()) {
            std::printf("[telemetry] DSE iteration log (JSONL) "
                        "written to %s\n",
                        live->options().dseLogPath.c_str());
        }
        if (!live->options().timelinePath.empty()) {
            std::printf("[telemetry] interval time-series (JSONL, "
                        "every %llu cycles) written to %s\n",
                        static_cast<unsigned long long>(
                            live->options().statsInterval),
                        live->options().timelinePath.c_str());
        }
        if (!registryPath.empty()) {
            std::string text = live->registry().toJson().dump(2);
            std::FILE *f = std::fopen(registryPath.c_str(), "w");
            OG_ASSERT(f != nullptr, "cannot open '", registryPath,
                      "'");
            std::fwrite(text.data(), 1, text.size(), f);
            std::fclose(f);
            std::printf("[telemetry] counter registry written to "
                        "%s\n",
                        registryPath.c_str());
        }
    }

  private:
    std::unique_ptr<telemetry::Sink> live;
    std::unique_ptr<ThreadPool> workPool;
    std::string registryPath;
    int numThreads = 1;
    int numSimThreads = 1;
    bool useEvalCache = true;
    bool noFastForward = false;
    dse::DseObjective dseObjective = dse::DseObjective::Scalar;
};

/** Overlay fabric clock (paper: quad-tile floorplan at 92.87 MHz). */
constexpr double overlayClockMhz = 92.87;
/** HLS kernel clock (Merlin/Vivado designs on the VCU118). */
constexpr double hlsClockMhz = 250.0;

/** DSE iteration budget (paper: hours; benches: minutes). */
inline int
benchIterations(int fallback = 18)
{
    const char *env = std::getenv("OVERGEN_BENCH_ITERS");
    if (env != nullptr)
        return std::max(1, std::atoi(env));
    return fallback;
}

/** The hand-designed general overlay system (paper Q1, 4 tiles). */
inline adg::SysAdg
generalOverlay()
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = 4;
    design.sys.l2Banks = 4;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

/** @return @p config with @p sink attached (harness convenience). */
inline sim::SimConfig
withSink(telemetry::Sink *sink, sim::SimConfig config = {})
{
    config.sink = sink;
    return config;
}

/** Simulated seconds of one kernel on one overlay design. */
struct OverlayRun
{
    bool ok = false;
    /** The deadlock watchdog aborted the run (a failure mode distinct
     * from "unschedulable": the kernel mapped but never finished). */
    bool deadlocked = false;
    /** Per-component describeState() dump at watchdog abort (empty
     * unless deadlocked). */
    std::string diagnostic;
    uint64_t cycles = 0;
    double seconds = 0.0;
    double ipc = 0.0;
    std::string variant;
    /** Full per-run statistics (cycle ledgers included), for
     * harnesses that break runs down (bench/report_cycles). */
    sim::MemoryStats memory;
    std::vector<sim::TileStats> tiles;
    /** Phase decomposition of the run (sim::analyzeRunPhases).
     * Segmented from sampled timeline rows when the harness sampled
     * one (`--stats-interval`); otherwise a single whole-run span
     * from the terminal ledgers. */
    telemetry::PhaseProfile phases;
};

/** Copy one SimResult into @p row (everything but `variant`). */
inline void
fillRunRow(OverlayRun &row, const sim::SimResult &result)
{
    row.ok = result.completed;
    row.deadlocked = result.deadlocked;
    row.diagnostic = result.diagnostic;
    row.cycles = result.cycles;
    row.seconds =
        static_cast<double>(result.cycles) / (overlayClockMhz * 1e6);
    row.ipc = result.ipc;
    row.memory = result.memory;
    row.tiles = result.tiles;
    row.phases = sim::analyzeRunPhases(result);
}

/** Compile/schedule/simulate @p spec on @p design (first-fit variant). */
inline OverlayRun
runOnOverlay(const wl::KernelSpec &spec, const adg::SysAdg &design,
             bool apply_tuning = false,
             const sim::SimConfig &config = {})
{
    compiler::CompileOptions copts;
    copts.applyTuning = apply_tuning;
    auto variants = compiler::compileVariants(spec, copts);
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OverlayRun run;
    if (!fit)
        return run;
    wl::Memory memory;
    memory.init(spec);
    sim::SimResult result = sim::simulate(
        spec, variants[fit->second], fit->first, design, memory,
        config);
    fillRunRow(run, result);
    run.variant = variants[fit->second].name;
    return run;
}

/** Simulate a kernel with the schedule a DSE result chose for it. */
inline OverlayRun
runMapped(const wl::KernelSpec &spec, const dse::DseResult &dse,
          size_t index, const sim::SimConfig &config = {})
{
    wl::Memory memory;
    memory.init(spec);
    sim::SimResult result =
        sim::simulate(spec, dse.mdfgs[index], dse.schedules[index],
                      dse.design, memory, config);
    OverlayRun run;
    fillRunRow(run, result);
    run.variant = dse.mdfgs[index].name;
    return run;
}

/**
 * A compiled + scheduled (kernel, design) pair awaiting simulation.
 * Harnesses prepare these (cheap, serial) and then execute many at
 * once with runPreparedBatch — the sim::runBatch fan-out across
 * `--sim-threads` workers. `ok == false` marks an unschedulable
 * kernel; it flows through the batch as a skipped row.
 *
 * The design is shared, not owned: a 19-kernel suite on one overlay
 * holds one SysAdg, not 19 copies (share with shareDesign() and pass
 * the same pointer to every prepare call). The simulator only reads
 * it, so sharing is safe across sim threads too.
 */
struct PreparedSim
{
    bool ok = false;
    const wl::KernelSpec *spec = nullptr;  //!< caller-owned, stable
    std::shared_ptr<const adg::SysAdg> design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
    /** Per-entry SimConfig overrides (0 / -1 = harness default). The
     * serve workers and the watchdog tests use these to tighten one
     * row's memory system without touching its batch siblings. */
    int dramLatency = 0;
    int64_t deadlockCycles = -1;
};

/** Promote a design to the shared form PreparedSim stores. */
inline std::shared_ptr<const adg::SysAdg>
shareDesign(adg::SysAdg design)
{
    return std::make_shared<const adg::SysAdg>(std::move(design));
}

/** Compile/schedule @p spec on @p design (first-fit variant). */
inline PreparedSim
prepareOverlayRun(const wl::KernelSpec &spec,
                  std::shared_ptr<const adg::SysAdg> design,
                  bool apply_tuning = false)
{
    OG_ASSERT(design != nullptr, "prepareOverlayRun: null design");
    PreparedSim prepared;
    prepared.spec = &spec;
    prepared.design = std::move(design);
    compiler::CompileOptions copts;
    copts.applyTuning = apply_tuning;
    auto variants = compiler::compileVariants(spec, copts);
    sched::SpatialScheduler scheduler(prepared.design->adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    if (!fit)
        return prepared;
    prepared.ok = true;
    prepared.mdfg = std::move(variants[fit->second]);
    prepared.schedule = std::move(fit->first);
    return prepared;
}

/** Convenience overload copying @p design once (prefer the shared
 * overload when preparing many kernels on one design). */
inline PreparedSim
prepareOverlayRun(const wl::KernelSpec &spec, const adg::SysAdg &design,
                  bool apply_tuning = false)
{
    return prepareOverlayRun(spec, shareDesign(design), apply_tuning);
}

/** Pair @p spec with the schedule a DSE result chose for it; @p design
 * must be the shared form of `dse.design` (shared by the caller so N
 * kernels of one DSE result hold one copy). */
inline PreparedSim
prepareMapped(const wl::KernelSpec &spec, const dse::DseResult &dse,
              size_t index, std::shared_ptr<const adg::SysAdg> design)
{
    OG_ASSERT(design != nullptr, "prepareMapped: null design");
    PreparedSim prepared;
    prepared.ok = true;
    prepared.spec = &spec;
    prepared.design = std::move(design);
    prepared.mdfg = dse.mdfgs[index];
    prepared.schedule = dse.schedules[index];
    return prepared;
}

/** Convenience overload copying `dse.design` once per call. */
inline PreparedSim
prepareMapped(const wl::KernelSpec &spec, const dse::DseResult &dse,
              size_t index)
{
    return prepareMapped(spec, dse, index, shareDesign(dse.design));
}

/**
 * Simulate every prepared entry concurrently (harness sim threads,
 * harness SimConfig) and return OverlayRun rows in the same order.
 * Entries with `ok == false` come back as the default (not-ok) row.
 */
inline std::vector<OverlayRun>
runPreparedBatch(const std::vector<PreparedSim> &prepared,
                 Harness &harness)
{
    std::vector<sim::SimJob> jobs;
    std::vector<size_t> job_row;
    for (size_t i = 0; i < prepared.size(); ++i) {
        if (!prepared[i].ok)
            continue;
        OG_ASSERT(prepared[i].design != nullptr,
                  "prepared entry ", i, " has no design");
        sim::SimJob job;
        job.spec = prepared[i].spec;
        job.mdfg = &prepared[i].mdfg;
        job.schedule = &prepared[i].schedule;
        job.design = prepared[i].design.get();
        job.config = harness.simConfig();
        if (prepared[i].dramLatency > 0)
            job.config.dramLatency = prepared[i].dramLatency;
        if (prepared[i].deadlockCycles >= 0)
            job.config.deadlockCycles = prepared[i].deadlockCycles;
        // Unique per-job timeline label so `--stats-jsonl` output is
        // byte-identical for every --sim-threads value (the timeline
        // sorts runs by label at write time).
        job.config.runLabel =
            std::to_string(i) + ":" + prepared[i].spec->name;
        jobs.push_back(job);
        job_row.push_back(i);
    }
    sim::BatchOptions options;
    options.threads = harness.simThreads();
    std::vector<sim::SimResult> results = sim::runBatch(jobs, options);
    std::vector<OverlayRun> rows(prepared.size());
    for (size_t j = 0; j < results.size(); ++j) {
        OverlayRun &row = rows[job_row[j]];
        fillRunRow(row, results[j]);
        row.variant = prepared[job_row[j]].mdfg.name;
        if (row.deadlocked) {
            // Surface the watchdog verdict where the harness user
            // sees it; the full component dump names the stuck state.
            OG_WARN("kernel '", prepared[job_row[j]].spec->name,
                    "' deadlocked at cycle ", row.cycles,
                    " (watchdog)\n", row.diagnostic);
        }
    }
    return rows;
}

/** Build the serve-layer job set: every @p specs kernel on one shared
 * @p design (interned once in the set's design table, referenced by
 * id from every job). */
inline serve::JobSet
makeJobSet(const std::vector<wl::KernelSpec> &specs,
           const adg::SysAdg &design, bool apply_tuning = false,
           bool small_size = false)
{
    serve::JobSet set;
    int designId = set.addDesign(design);
    for (const auto &spec : specs)
        set.addJob(spec.name, designId, apply_tuning, small_size);
    return set;
}

/** Convert a serve-layer result row into the harness OverlayRun shape
 * (seconds derived from the overlay clock; the wire row carries no
 * per-component stats). */
inline OverlayRun
fromResultRow(const serve::ResultRow &row)
{
    OverlayRun run;
    run.ok = row.ok;
    run.deadlocked = row.deadlocked;
    run.diagnostic = row.diagnostic;
    run.cycles = row.cycles;
    run.seconds =
        static_cast<double>(row.cycles) / (overlayClockMhz * 1e6);
    run.ipc = row.ipc;
    run.variant = row.variant;
    return run;
}

/** Geometric mean helper over positive values. */
inline double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(std::max(v, 1e-12));
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Print a standard bench header. */
inline void
banner(const char *experiment, const char *what)
{
    std::printf("==============================================\n");
    std::printf("%s — %s\n", experiment, what);
    std::printf("(reduced DSE budget: OVERGEN_BENCH_ITERS=%d)\n",
                benchIterations());
    std::printf("==============================================\n");
}

} // namespace overgen::bench

#endif // OVERGEN_BENCH_COMMON_H
