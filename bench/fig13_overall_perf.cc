/**
 * @file
 * Regenerates paper Figure 13: overall performance of the three
 * overlay flavors — the hand-designed General overlay, the
 * suite-specialized overlay, and the per-workload overlay — as
 * speedups over the AutoDSE baseline (untuned), with tuned AutoDSE as
 * the strongest baseline. Per-workload bars and per-suite geomeans.
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Telemetry tele(argc, argv);
    bench::banner("Figure 13",
                  "overall performance vs AutoDSE (speedup > 1 means "
                  "OverGen is faster)");
    int iters = bench::benchIterations();
    adg::SysAdg general = bench::generalOverlay();

    std::printf("%-12s %9s %9s %10s %9s %9s\n", "workload",
                "AD(s)", "tuned-AD", "general-OG", "suite-OG",
                "w/l-OG");

    std::vector<std::string> suite_names = { "dsp", "machsuite",
                                             "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    std::vector<double> all_general, all_suite, all_wl, all_tuned;
    for (size_t s = 0; s < suites.size(); ++s) {
        // One suite-specialized overlay per suite.
        // Paper convention (Q2 hatching): kernels are implemented with
        // OverGen's source tuning where it exists (fft peel, gemm 2D
        // unroll, stencil/blur overlap unroll).
        dse::DseOptions options;
        options.iterations = iters;
        options.seed = 7 + s;
        options.applyTuning = true;
        options.sink = tele.sink();
        options.telemetryLabel = suite_names[s] + "-suite";
        dse::DseResult suite_dse =
            dse::exploreOverlay(suites[s], options);

        std::vector<double> g_general, g_suite, g_wl, g_tuned;
        for (size_t k = 0; k < suites[s].size(); ++k) {
            const wl::KernelSpec &spec = suites[s][k];
            hls::AutoDseResult ad = hls::runAutoDse(spec, false);
            hls::AutoDseResult ad_tuned = hls::runAutoDse(spec, true);

            bench::OverlayRun on_general = bench::runOnOverlay(
                spec, general, true, bench::withSink(tele.sink()));
            bench::OverlayRun on_suite = bench::runMapped(
                spec, suite_dse, k, bench::withSink(tele.sink()));

            dse::DseOptions wl_options = options;
            wl_options.seed = 100 + k;
            wl_options.telemetryLabel = spec.name + "-wl";
            dse::DseResult wl_dse =
                dse::exploreOverlay({ spec }, wl_options);
            bench::OverlayRun on_wl = bench::runMapped(
                spec, wl_dse, 0, bench::withSink(tele.sink()));

            double base = ad.perf.seconds;
            double sp_tuned = base / ad_tuned.perf.seconds;
            double sp_general =
                on_general.ok ? base / on_general.seconds : 0.0;
            double sp_suite =
                on_suite.ok ? base / on_suite.seconds : 0.0;
            double sp_wl = on_wl.ok ? base / on_wl.seconds : 0.0;
            std::printf("%-12s %9.2e %8.2fx %9.2fx %8.2fx %8.2fx\n",
                        spec.name.c_str(), base, sp_tuned, sp_general,
                        sp_suite, sp_wl);
            if (sp_general > 0)
                g_general.push_back(sp_general);
            if (sp_suite > 0)
                g_suite.push_back(sp_suite);
            if (sp_wl > 0)
                g_wl.push_back(sp_wl);
            g_tuned.push_back(sp_tuned);
        }
        std::printf("%-12s %9s %8.2fx %9.2fx %8.2fx %8.2fx   <- %s "
                    "geomean\n",
                    "gm", "", bench::geomean(g_tuned),
                    bench::geomean(g_general), bench::geomean(g_suite),
                    bench::geomean(g_wl), suite_names[s].c_str());
        all_general.insert(all_general.end(), g_general.begin(),
                           g_general.end());
        all_suite.insert(all_suite.end(), g_suite.begin(),
                         g_suite.end());
        all_wl.insert(all_wl.end(), g_wl.begin(), g_wl.end());
        all_tuned.insert(all_tuned.end(), g_tuned.begin(),
                         g_tuned.end());
    }
    std::printf("\noverall geomeans: tuned-AD %.2fx | general-OG "
                "%.2fx | suite-OG %.2fx | w/l-OG %.2fx\n",
                bench::geomean(all_tuned), bench::geomean(all_general),
                bench::geomean(all_suite), bench::geomean(all_wl));
    std::printf("paper shape: suite-OG ~1.1-1.25x over untuned "
                "AutoDSE; ~0.37-0.71x of tuned AutoDSE (i.e. "
                "suite-OG/tuned-AD); general-OG trails suite-OG.\n");
    tele.finish();
    return 0;
}
