/**
 * @file
 * Regenerates paper Figure 13: overall performance of the three
 * overlay flavors — the hand-designed General overlay, the
 * suite-specialized overlay, and the per-workload overlay — as
 * speedups over the AutoDSE baseline (untuned), with tuned AutoDSE as
 * the strongest baseline. Per-workload bars and per-suite geomeans.
 *
 * Each suite's exploration parallelizes its candidate evaluation
 * (`--threads`); the per-kernel column work (AutoDSE baselines,
 * per-workload DSE, and the three simulations) then fans out across
 * the harness pool, with each fanned task exploring serially so the
 * machine is not oversubscribed twice.
 */

#include "common.h"

using namespace overgen;

namespace {

struct KernelRow
{
    double base = 0.0;
    double spTuned = 0.0;
    double spGeneral = 0.0;
    double spSuite = 0.0;
    double spWl = 0.0;
};

/**
 * Per-kernel phase-1 output: the AutoDSE baselines plus the three
 * compiled/scheduled overlay mappings, awaiting the phase-2 batched
 * simulation.
 */
struct KernelPrep
{
    hls::AutoDseResult ad;
    hls::AutoDseResult adTuned;
    bench::PreparedSim onGeneral;
    bench::PreparedSim onSuite;
    bench::PreparedSim onWl;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 13",
                  "overall performance vs AutoDSE (speedup > 1 means "
                  "OverGen is faster)");
    int iters = bench::benchIterations();
    // One shared copy of the general overlay serves every kernel's
    // prepared mapping (PreparedSim shares designs, not copies them).
    auto general = bench::shareDesign(bench::generalOverlay());

    std::printf("%-12s %9s %9s %10s %9s %9s\n", "workload",
                "AD(s)", "tuned-AD", "general-OG", "suite-OG",
                "w/l-OG");

    std::vector<std::string> suite_names = { "dsp", "machsuite",
                                             "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    std::vector<double> all_general, all_suite, all_wl, all_tuned;
    for (size_t s = 0; s < suites.size(); ++s) {
        // One suite-specialized overlay per suite.
        // Paper convention (Q2 hatching): kernels are implemented with
        // OverGen's source tuning where it exists (fft peel, gemm 2D
        // unroll, stencil/blur overlap unroll).
        dse::DseOptions options = harness.dseOptions(
            iters, 7 + s, suite_names[s] + "-suite");
        options.applyTuning = true;
        dse::DseResult suite_dse =
            dse::exploreOverlay(suites[s], options);
        auto suite_design = bench::shareDesign(suite_dse.design);

        // Phase 1 (harness pool): per-kernel AutoDSE baselines,
        // per-workload exploration, and compile/schedule of the three
        // overlay mappings.
        std::vector<KernelPrep> preps = harness.pool().parallelMap(
            suites[s].size(), [&](size_t k) {
                const wl::KernelSpec &spec = suites[s][k];
                KernelPrep prep;
                prep.ad = hls::runAutoDse(spec, false);
                prep.adTuned = hls::runAutoDse(spec, true);

                prep.onGeneral =
                    bench::prepareOverlayRun(spec, general, true);
                prep.onSuite = bench::prepareMapped(spec, suite_dse,
                                                    k, suite_design);

                dse::DseOptions wl_options = harness.dseOptions(
                    iters, 100 + k, spec.name + "-wl");
                wl_options.applyTuning = true;
                wl_options.threads = 1;  // the fan-out is the
                                         // parallelism here
                dse::DseResult wl_dse =
                    dse::exploreOverlay({ spec }, wl_options);
                prep.onWl = bench::prepareMapped(spec, wl_dse, 0);
                return prep;
            });

        // Phase 2: simulate every mapping in one batch
        // (`--sim-threads` workers, index-ordered results).
        std::vector<bench::PreparedSim> prepared;
        for (const KernelPrep &prep : preps) {
            prepared.push_back(prep.onGeneral);
            prepared.push_back(prep.onSuite);
            prepared.push_back(prep.onWl);
        }
        std::vector<bench::OverlayRun> runs =
            bench::runPreparedBatch(prepared, harness);

        std::vector<KernelRow> rows(suites[s].size());
        for (size_t k = 0; k < suites[s].size(); ++k) {
            KernelRow &row = rows[k];
            const bench::OverlayRun &on_general = runs[3 * k];
            const bench::OverlayRun &on_suite = runs[3 * k + 1];
            const bench::OverlayRun &on_wl = runs[3 * k + 2];
            row.base = preps[k].ad.perf.seconds;
            row.spTuned = row.base / preps[k].adTuned.perf.seconds;
            row.spGeneral = on_general.ok
                                ? row.base / on_general.seconds
                                : 0.0;
            row.spSuite =
                on_suite.ok ? row.base / on_suite.seconds : 0.0;
            row.spWl = on_wl.ok ? row.base / on_wl.seconds : 0.0;
        }

        std::vector<double> g_general, g_suite, g_wl, g_tuned;
        for (size_t k = 0; k < suites[s].size(); ++k) {
            const KernelRow &row = rows[k];
            // Mark watchdog aborts: a 0.00x with [deadlock] hung in
            // simulation (dump on stderr), without it never mapped.
            bool deadlocked = runs[3 * k].deadlocked ||
                              runs[3 * k + 1].deadlocked ||
                              runs[3 * k + 2].deadlocked;
            std::printf("%-12s %9.2e %8.2fx %9.2fx %8.2fx %8.2fx%s\n",
                        suites[s][k].name.c_str(), row.base,
                        row.spTuned, row.spGeneral, row.spSuite,
                        row.spWl, deadlocked ? " [deadlock]" : "");
            if (row.spGeneral > 0)
                g_general.push_back(row.spGeneral);
            if (row.spSuite > 0)
                g_suite.push_back(row.spSuite);
            if (row.spWl > 0)
                g_wl.push_back(row.spWl);
            g_tuned.push_back(row.spTuned);
        }
        std::printf("%-12s %9s %8.2fx %9.2fx %8.2fx %8.2fx   <- %s "
                    "geomean\n",
                    "gm", "", bench::geomean(g_tuned),
                    bench::geomean(g_general), bench::geomean(g_suite),
                    bench::geomean(g_wl), suite_names[s].c_str());
        all_general.insert(all_general.end(), g_general.begin(),
                           g_general.end());
        all_suite.insert(all_suite.end(), g_suite.begin(),
                         g_suite.end());
        all_wl.insert(all_wl.end(), g_wl.begin(), g_wl.end());
        all_tuned.insert(all_tuned.end(), g_tuned.begin(),
                         g_tuned.end());
    }
    std::printf("\noverall geomeans: tuned-AD %.2fx | general-OG "
                "%.2fx | suite-OG %.2fx | w/l-OG %.2fx\n",
                bench::geomean(all_tuned), bench::geomean(all_general),
                bench::geomean(all_suite), bench::geomean(all_wl));
    std::printf("paper shape: suite-OG ~1.1-1.25x over untuned "
                "AutoDSE; ~0.37-0.71x of tuned AutoDSE (i.e. "
                "suite-OG/tuned-AD); general-OG trails suite-OG.\n");
    harness.finish();
    return 0;
}
