/**
 * @file
 * Regenerates paper Table II: per-workload specification — data size,
 * data type, input/output vector ports, array count, and the
 * multiply/add/divide instruction counts of the best (most unrolled)
 * DFG that compiles for each kernel.
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Table II", "workload specification");
    std::printf("%-12s %-6s %-5s %5s %5s %5s   %-10s\n", "workload",
                "suite", "type", "#ivp", "#ovp", "#arr", "#m,a,d");
    for (const wl::KernelSpec &k : wl::allWorkloads()) {
        dfg::Mdfg best =
            compiler::compileOne(k, k.maxUnroll, true, false);
        int ivp = 0;
        for (auto id :
             best.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
            // Index streams feed engines, not ports.
            bool is_index = false;
            for (auto other :
                 best.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
                is_index |=
                    best.node(other).stream.indexStream == id;
            }
            if (!is_index)
                ++ivp;
        }
        int ovp = static_cast<int>(
            best.nodeIdsOfKind(dfg::NodeKind::OutputStream).size());
        int arrays = static_cast<int>(
            best.nodeIdsOfKind(dfg::NodeKind::Array).size());
        int muls = 0, adds = 0, divs = 0;
        for (auto id :
             best.nodeIdsOfKind(dfg::NodeKind::Instruction)) {
            const auto &inst = best.node(id).inst;
            switch (inst.op) {
              case Opcode::Mul:
                muls += inst.lanes;
                break;
              case Opcode::Add:
              case Opcode::Sub:
              case Opcode::Acc:
                adds += inst.lanes;
                break;
              case Opcode::Div:
              case Opcode::Sqrt:
                divs += inst.lanes;
                break;
              default:
                break;
            }
        }
        std::printf("%-12s %-6s %-5s %5d %5d %5d   %d,%d,%d\n",
                    k.name.c_str(), wl::suiteName(k.suite).c_str(),
                    dataTypeName(k.dominantType()).c_str(), ivp, ovp,
                    arrays, muls, adds, divs);
    }
    std::printf("\npaper row shapes: vision i16, DSP f64/f32, "
                "MachSuite i64/f64; op counts grow with the unroll "
                "of the best DFG.\n");
    harness.finish();
    return 0;
}
