/**
 * @file
 * Regenerates paper Figure 16: FPGA resource occupancy. (a) overlay
 * designs broken down by component class (PEs, switch network, vector
 * ports, scratchpads, DMA/engines, control cores, NoC+L2) — overlays
 * greedily consume most of the device with LUTs as the limiting
 * resource; (b) AutoDSE fixed-function designs use far less.
 */

#include "common.h"

#include "model/oracle.h"
#include "model/resource_model.h"

using namespace overgen;

namespace {

void
printOverlayRow(const char *name, const adg::SysAdg &design)
{
    const auto &prices = model::FpgaResourceModel::defaultModel();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();
    auto breakdown = prices.tileBreakdown(design.adg);
    double tiles = design.sys.numTiles;
    model::Resources core = model::synthesizeControlCore() * tiles;
    model::Resources uncore = model::synthesizeUncore(design.sys);
    model::Resources total = (breakdown.pe + breakdown.network +
                              breakdown.ports + breakdown.spad +
                              breakdown.dma) *
                                 tiles +
                             core + uncore;
    auto pct = [&](double lut) { return 100.0 * lut / device.total.lut; };
    std::printf("%-10s %2.0f tiles | pe %4.1f%% n/w %4.1f%% vp %4.1f%% "
                "spad %4.1f%% dma %4.1f%% core %4.1f%% noc+l2 %4.1f%% "
                "| lut %4.1f%% ff %4.1f%% bram %4.1f%% dsp %4.1f%%\n",
                name, tiles, pct(breakdown.pe.lut * tiles),
                pct(breakdown.network.lut * tiles),
                pct(breakdown.ports.lut * tiles),
                pct(breakdown.spad.lut * tiles),
                pct(breakdown.dma.lut * tiles), pct(core.lut),
                pct(uncore.lut), 100.0 * total.lut / device.total.lut,
                100.0 * total.ff / device.total.ff,
                100.0 * total.bram / device.total.bram,
                100.0 * total.dsp / device.total.dsp);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 16", "FPGA resource breakdown");
    int iters = bench::benchIterations();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();

    std::printf("(a) overlay designs (component %% of device LUTs)\n");
    printOverlayRow("general", bench::generalOverlay());
    std::vector<std::string> names = { "dsp", "machsuite", "vision" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::dspSuite(), wl::machSuite(), wl::visionSuite()
    };
    for (size_t s = 0; s < suites.size(); ++s) {
        dse::DseOptions options;
        options.iterations = iters;
        options.seed = 31 + s;
        options.threads = harness.threads();
        options.sink = harness.sink();
        options.telemetryLabel = names[s];
        dse::DseResult result = dse::exploreOverlay(suites[s], options);
        printOverlayRow(names[s].c_str(), result.design);
    }

    std::printf("\n(b) AutoDSE fixed-function designs (%% of "
                "device)\n");
    std::printf("%-12s %6s %6s %6s %6s\n", "app", "lut", "ff", "bram",
                "dsp");
    for (const auto &k : wl::allWorkloads()) {
        hls::AutoDseResult ad = hls::runAutoDse(k, true);
        std::printf("%-12s %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
                    k.name.c_str(),
                    100.0 * ad.resources.lut / device.total.lut,
                    100.0 * ad.resources.ff / device.total.ff,
                    100.0 * ad.resources.bram / device.total.bram,
                    100.0 * ad.resources.dsp / device.total.dsp);
    }
    std::printf("\npaper shape: overlays consume 81-97%% of LUTs "
                "(the binding resource, NoC among the largest "
                "pieces); AutoDSE designs mostly stay under ~25%%.\n");
    harness.finish();
    return 0;
}
