/**
 * @file
 * Regenerates paper Table III: the specification of each suite-
 * specialized overlay produced by the DSE, next to the hand-designed
 * General overlay — system parameters (tiles, L2 banks, NoC width)
 * and accelerator structure (PEs, switches, radix, FU mix,
 * scratchpads, port bandwidth).
 */

#include "common.h"

using namespace overgen;

namespace {

struct Spec
{
    std::string name;
    adg::SysAdg design;
};

void
printSpec(const Spec &spec)
{
    const adg::Adg &tile = spec.design.adg;
    int int_add = 0, int_mul = 0, int_div = 0;
    int flt_add = 0, flt_mul = 0, flt_div = 0, flt_sqrt = 0;
    for (adg::NodeId pe : tile.nodeIdsOfKind(adg::NodeKind::Pe)) {
        for (const FuCapability &cap :
             tile.node(pe).pe().capabilities) {
            bool flt = dataTypeIsFloat(cap.type);
            switch (cap.op) {
              case Opcode::Add:
                (flt ? flt_add : int_add) += 1;
                break;
              case Opcode::Mul:
                (flt ? flt_mul : int_mul) += 1;
                break;
              case Opcode::Div:
                (flt ? flt_div : int_div) += 1;
                break;
              case Opcode::Sqrt:
                flt_sqrt += 1;
                break;
              default:
                break;
            }
        }
    }
    int in_bw = 0, out_bw = 0;
    for (adg::NodeId p : tile.nodeIdsOfKind(adg::NodeKind::InPort))
        in_bw += tile.node(p).port().widthBytes;
    for (adg::NodeId p : tile.nodeIdsOfKind(adg::NodeKind::OutPort))
        out_bw += tile.node(p).port().widthBytes;
    int spad_kib = 0;
    bool spad_indirect = false;
    for (adg::NodeId s :
         tile.nodeIdsOfKind(adg::NodeKind::Scratchpad)) {
        spad_kib += tile.node(s).spad().capacityKiB;
        spad_indirect |= tile.node(s).spad().indirect;
    }
    std::printf("%-10s | tiles %2d  l2banks %2d  noc %2dB | PEs %2d  "
                "sw %2d  radix %4.2f | int+/x// %d/%d/%d  "
                "flt+/x///sqrt %d/%d/%d/%d | spad %3dKiB%s | "
                "in %3dB out %3dB | G/R/R %d/%d/%d\n",
                spec.name.c_str(), spec.design.sys.numTiles,
                spec.design.sys.l2Banks, spec.design.sys.nocBytes,
                tile.countKind(adg::NodeKind::Pe),
                tile.countKind(adg::NodeKind::Switch),
                tile.averageSwitchRadix(), int_add, int_mul, int_div,
                flt_add, flt_mul, flt_div, flt_sqrt, spad_kib,
                spad_indirect ? "(ind)" : "", in_bw, out_bw,
                tile.countKind(adg::NodeKind::Generate),
                tile.countKind(adg::NodeKind::Recurrence),
                tile.countKind(adg::NodeKind::Register));
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Table III", "suite-specialized overlay specs");
    int iters = bench::benchIterations();
    std::vector<Spec> specs;
    std::vector<std::string> names = { "machsuite", "vision", "dsp" };
    std::vector<std::vector<wl::KernelSpec>> suites = {
        wl::machSuite(), wl::visionSuite(), wl::dspSuite()
    };
    for (size_t s = 0; s < suites.size(); ++s) {
        dse::DseOptions options;
        options.iterations = iters;
        options.seed = 11 + s;
        options.threads = harness.threads();
        options.sink = harness.sink();
        options.telemetryLabel = names[s];
        dse::DseResult result = dse::exploreOverlay(suites[s], options);
        specs.push_back({ names[s], result.design });
    }
    specs.push_back({ "general", bench::generalOverlay() });
    for (const Spec &spec : specs)
        printSpec(spec);
    std::printf("\npaper shape: suite overlays pack 7-13 small "
                "specialized tiles; the general overlay fits only 4 "
                "fully-provisioned ones. DSP keeps float FUs, "
                "MachSuite/Vision are integer-only, suites prune "
                "unused engines.\n");
    harness.finish();
    return 0;
}
