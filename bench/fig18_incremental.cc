/**
 * @file
 * Regenerates paper Figure 18: incremental design optimization.
 * Workloads are added to the target set one at a time and the DSE is
 * re-run: the per-tile datapath grows more general (more LUTs per
 * tile), the tile count drops, and supporting the whole suite costs
 * only a modest slowdown on the original workload. The five
 * explorations (one per prefix of the pool) are independent, so they
 * run concurrently on the harness pool; rows print in paper order.
 */

#include "common.h"

#include "model/resource_model.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 18", "incremental workload addition");
    int iters = bench::benchIterations();
    const auto &prices = model::FpgaResourceModel::defaultModel();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();

    // Paper order: stencil-2d, +gemm, +stencil-3d, +ellpack, +crs.
    std::vector<wl::KernelSpec> pool = {
        wl::makeStencil2d(), wl::makeGemm(), wl::makeStencil3d(),
        wl::makeEllpack(), wl::makeCrs()
    };
    struct Step
    {
        int tiles = 0;
        double tileLut = 0.0;
        uint64_t cycles = 0;
        double objective = 0.0;
    };
    std::vector<Step> steps = harness.pool().parallelMap(
        pool.size(), [&](size_t n) {
            std::vector<wl::KernelSpec> target(
                pool.begin(), pool.begin() + n + 1);
            dse::DseOptions options = harness.dseOptions(
                iters, 50 + n, "upto-" + pool[n].name);
            dse::DseResult result =
                dse::exploreOverlay(target, options);
            Step step;
            step.tiles = result.design.sys.numTiles;
            step.tileLut = prices.tileResources(result.design.adg).lut /
                           device.total.lut * 100.0;
            bench::OverlayRun run = bench::runMapped(
                pool[0], result, 0, bench::withSink(harness.sink()));
            step.cycles = run.cycles;
            step.objective = result.objective;
            return step;
        });

    std::printf("%-14s %6s %12s %14s %12s\n", "target set", "tiles",
                "LUT/tile(%)", "stencil-2d cyc", "est.IPC");
    for (size_t n = 0; n < pool.size(); ++n) {
        std::printf("+%-13s %6d %11.2f%% %14llu %12.1f\n",
                    pool[n].name.c_str(), steps[n].tiles,
                    steps[n].tileLut,
                    static_cast<unsigned long long>(steps[n].cycles),
                    steps[n].objective);
    }
    uint64_t first_cycles = steps.front().cycles;
    uint64_t last_cycles = steps.back().cycles;
    double cost = first_cycles > 0
                      ? 100.0 * (static_cast<double>(last_cycles) /
                                     first_cycles -
                                 1.0)
                      : 0.0;
    std::printf("\nstencil-2d cost of supporting the whole suite: "
                "%+.0f%% cycles (paper: mean 8%% performance cost; "
                "tile count drops as the datapath generalizes)\n",
                cost);
    harness.finish();
    return 0;
}
