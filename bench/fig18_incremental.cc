/**
 * @file
 * Regenerates paper Figure 18: incremental design optimization.
 * Workloads are added to the target set one at a time and the DSE is
 * re-run: the per-tile datapath grows more general (more LUTs per
 * tile), the tile count drops, and supporting the whole suite costs
 * only a modest slowdown on the original workload. The five
 * explorations (one per prefix of the pool) are independent, so they
 * run concurrently on the harness pool; rows print in paper order.
 *
 * Evaluation is incremental: all five explorations validate their
 * final designs through one shared dse::WarmSimCache, and the
 * per-step stencil-2d measurement goes through the same cache — a
 * step whose validation already simulated the identical (kernel,
 * design, schedule) pair reuses that result outright instead of
 * re-simulating, bit-identically (see dse/sim_cache.h).
 */

#include "common.h"

#include "dse/sim_cache.h"
#include "model/resource_model.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 18", "incremental workload addition");
    int iters = bench::benchIterations();
    const auto &prices = model::FpgaResourceModel::defaultModel();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();

    // Paper order: stencil-2d, +gemm, +stencil-3d, +ellpack, +crs.
    std::vector<wl::KernelSpec> pool = {
        wl::makeStencil2d(), wl::makeGemm(), wl::makeStencil3d(),
        wl::makeEllpack(), wl::makeCrs()
    };
    struct Step
    {
        int tiles = 0;
        double tileLut = 0.0;
        uint64_t cycles = 0;
        double objective = 0.0;
    };
    dse::WarmSimCache sim_cache;
    std::vector<Step> steps = harness.pool().parallelMap(
        pool.size(), [&](size_t n) {
            std::vector<wl::KernelSpec> target(
                pool.begin(), pool.begin() + n + 1);
            dse::DseOptions options = harness.dseOptions(
                iters, 50 + n, "upto-" + pool[n].name);
            options.validateFinal = true;
            options.simCache = &sim_cache;
            dse::DseResult result =
                dse::exploreOverlay(target, options);
            Step step;
            step.tiles = result.design.sys.numTiles;
            step.tileLut = prices.tileResources(result.design.adg).lut /
                           device.total.lut * 100.0;
            // The validation above already simulated stencil-2d on
            // this step's design; the measurement is a cache hit.
            sim::SimResult run = dse::warmSimulate(
                &sim_cache, pool[0], result.mdfgs[0],
                result.schedules[0], result.design,
                bench::withSink(harness.sink()));
            step.cycles = run.cycles;
            step.objective = result.objective;
            return step;
        });

    std::printf("%-14s %6s %12s %14s %12s\n", "target set", "tiles",
                "LUT/tile(%)", "stencil-2d cyc", "est.IPC");
    for (size_t n = 0; n < pool.size(); ++n) {
        std::printf("+%-13s %6d %11.2f%% %14llu %12.1f\n",
                    pool[n].name.c_str(), steps[n].tiles,
                    steps[n].tileLut,
                    static_cast<unsigned long long>(steps[n].cycles),
                    steps[n].objective);
    }
    uint64_t first_cycles = steps.front().cycles;
    uint64_t last_cycles = steps.back().cycles;
    double cost = first_cycles > 0
                      ? 100.0 * (static_cast<double>(last_cycles) /
                                     first_cycles -
                                 1.0)
                      : 0.0;
    std::printf("\nstencil-2d cost of supporting the whole suite: "
                "%+.0f%% cycles (paper: mean 8%% performance cost; "
                "tile count drops as the datapath generalizes)\n",
                cost);
    dse::WarmSimStats warm = sim_cache.stats();
    std::printf("incremental evaluation: %llu simulations, %llu "
                "served warm, %llu resumed mid-run (%llu prefix "
                "cycles not re-simulated)\n",
                static_cast<unsigned long long>(
                    warm.misses + warm.terminalHits + warm.resumes),
                static_cast<unsigned long long>(warm.terminalHits),
                static_cast<unsigned long long>(warm.resumes),
                static_cast<unsigned long long>(warm.cyclesSkipped));
    harness.finish();
    return 0;
}
