/**
 * @file
 * Phase-aware analysis benchmark, two claims (DESIGN.md "Phase-aware
 * analysis"):
 *
 * 1. *Profiles are informative*: a long kernel reaches steady state
 *    and spends most cycles there; a short variant of the same kernel
 *    spends proportionally more of its run ramping — the regime
 *    split the phase objective exploits.
 * 2. *The phase objective changes designs for the better on short
 *    kernels*: over a scan of (short kernel, seed) pairs on a mixed
 *    long+short domain, `--objective=phase` selects at least one
 *    final design whose simulated short-kernel latency is strictly
 *    better than the scalar objective's choice, while both finals are
 *    validated by cycle simulation exactly as usual.
 *
 * Also pins phase-mode determinism (threads 1 vs 4 produce the same
 * design and objective) and writes BENCH_phases.json next to the
 * binary.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.h"

#include "common/stats.h"
#include "telemetry/phases.h"

using namespace overgen;

namespace {

/** Simulate @p spec on the general overlay with an in-memory timeline
 * at @p interval cycles and return its phase profile. */
telemetry::PhaseProfile
profileOf(const wl::KernelSpec &spec, uint64_t interval,
          uint64_t *cycles_out)
{
    telemetry::SinkOptions opts;
    opts.statsInterval = interval;
    telemetry::Sink sink(opts);
    sim::SimConfig config;
    config.sink = &sink;
    bench::OverlayRun run = bench::runOnOverlay(
        spec, bench::generalOverlay(), /*apply_tuning=*/true, config);
    OG_ASSERT(run.ok, "'", spec.name, "' did not complete");
    if (cycles_out != nullptr)
        *cycles_out = run.cycles;
    return run.phases;
}

void
printProfile(const char *tag, const telemetry::PhaseProfile &profile)
{
    std::printf("%-18s %8llu cycles, ramp %6llu (%5.1f%%), %s",
                tag,
                static_cast<unsigned long long>(profile.cycles),
                static_cast<unsigned long long>(profile.rampCycles),
                100.0 * static_cast<double>(profile.rampCycles) /
                    static_cast<double>(
                        std::max<uint64_t>(profile.cycles, 1)),
                profile.reachedSteady ? "steady reached"
                                      : "no steady state");
    if (profile.reachedSteady && profile.steadyIpc > 0.0)
        std::printf(", steady IPC %.2f", profile.steadyIpc);
    if (!profile.busyFractions.empty()) {
        std::printf(", busy p10/p50/p90 %.2f/%.2f/%.2f",
                    percentile(profile.busyFractions, 10.0),
                    percentile(profile.busyFractions, 50.0),
                    percentile(profile.busyFractions, 90.0));
    }
    std::printf("\n");
    for (const telemetry::PhaseSpan &span : profile.spans) {
        std::printf("    %-8s %8llu..%-8llu %5.1f%% busy  <- %s\n",
                    telemetry::phaseKindName(span.kind),
                    static_cast<unsigned long long>(span.beginCycle),
                    static_cast<unsigned long long>(span.endCycle),
                    100.0 * span.busyFraction,
                    telemetry::cycleCategoryName(span.bottleneck));
    }
}

Json
profileJson(const std::string &tag,
            const telemetry::PhaseProfile &profile)
{
    Json obj = profile.toJson();
    obj.set("kernel", Json(tag));
    return obj;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("micro_phases",
                  "phase segmentation and the phase-aware DSE "
                  "objective");

    // --- Claim 1: long vs short phase structure. -------------------
    std::printf("\nphase profiles (general overlay, interval 128):\n");
    wl::KernelSpec long_fir = wl::makeFir(2048, 64);
    long_fir.name = "fir-long";
    wl::KernelSpec short_fir = wl::makeFir(64, 16);
    short_fir.name = "fir-short";
    telemetry::PhaseProfile long_profile =
        profileOf(long_fir, 128, nullptr);
    telemetry::PhaseProfile short_profile =
        profileOf(short_fir, 128, nullptr);
    printProfile("fir(2048,64)", long_profile);
    printProfile("fir(64,16)", short_profile);
    OG_ASSERT(long_profile.reachedSteady,
              "the long kernel never reached steady state");
    double long_ramp_share =
        static_cast<double>(long_profile.rampCycles) /
        static_cast<double>(std::max<uint64_t>(long_profile.cycles, 1));
    double short_ramp_share =
        static_cast<double>(short_profile.rampCycles) /
        static_cast<double>(
            std::max<uint64_t>(short_profile.cycles, 1));
    OG_ASSERT(short_ramp_share > long_ramp_share,
              "the short kernel should spend a larger run fraction "
              "ramping (short ", short_ramp_share, " vs long ",
              long_ramp_share, ")");

    // --- Claim 2: the phase objective wins on short kernels. -------
    // Mixed domain per scan point: one long kernel anchoring steady
    // throughput plus one short kernel dominated by its ramp. Both
    // objectives explore with the same seed and budget, both finals
    // are validated by cycle simulation, and the comparison is the
    // short kernel's *simulated* latency — the quantity the model
    // never sees directly.
    struct ScanRow
    {
        std::string shortKernel;
        uint64_t seed = 0;
        uint64_t scalarCycles = 0;
        uint64_t phaseCycles = 0;
        double scalarObjective = 0.0;
        double phaseObjective = 0.0;
        bool phaseWin = false;   //!< strictly fewer short cycles
        bool designDiffers = false;
    };
    std::vector<wl::KernelSpec> shorts = { wl::makeAccumulate(32),
                                           wl::makeVecMax(32),
                                           wl::makeDerivative(18) };
    const std::vector<uint64_t> seeds = { 50, 51, 52, 53, 54 };
    const int iters = bench::benchIterations(12);
    std::vector<ScanRow> scan;
    int wins = 0;
    std::printf("\nscalar vs phase objective (mixed long+short "
                "domain, %d DSE iters, validated by sim):\n",
                iters);
    std::printf("%-14s %6s %14s %14s %s\n", "short kernel", "seed",
                "scalar cycles", "phase cycles", "verdict");
    for (const wl::KernelSpec &short_spec : shorts) {
        for (uint64_t seed : seeds) {
            std::vector<wl::KernelSpec> domain = { long_fir,
                                                   short_spec };
            auto explore = [&](dse::DseObjective objective) {
                dse::DseOptions options = harness.dseOptions(
                    iters, seed,
                    short_spec.name + "/" +
                        dse::dseObjectiveName(objective));
                options.objective = objective;
                options.validateFinal = true;
                return dse::exploreOverlay(domain, options);
            };
            dse::DseResult scalar =
                explore(dse::DseObjective::Scalar);
            dse::DseResult phase = explore(dse::DseObjective::Phase);
            OG_ASSERT(scalar.mappings[1].simCompleted &&
                          phase.mappings[1].simCompleted,
                      "short-kernel validation did not complete");
            ScanRow row;
            row.shortKernel = short_spec.name;
            row.seed = seed;
            row.scalarCycles = scalar.mappings[1].simulatedCycles;
            row.phaseCycles = phase.mappings[1].simulatedCycles;
            row.scalarObjective = scalar.objective;
            row.phaseObjective = phase.objective;
            row.phaseWin = row.phaseCycles < row.scalarCycles;
            // A "design" here is the full deliverable: the tile ADG,
            // the system point, and the per-kernel mapping (variant +
            // schedule placement — Phase mode's measured refinement
            // changes the latter two; differing deterministic cycle
            // counts imply a different mapping).
            row.designDiffers =
                scalar.design.adg.toJson().dump() !=
                    phase.design.adg.toJson().dump() ||
                scalar.design.sys.numTiles !=
                    phase.design.sys.numTiles ||
                scalar.mappings[1].variantName !=
                    phase.mappings[1].variantName ||
                row.scalarCycles != row.phaseCycles;
            wins += row.phaseWin ? 1 : 0;
            std::printf("%-14s %6llu %14llu %14llu %s%s\n",
                        row.shortKernel.c_str(),
                        static_cast<unsigned long long>(row.seed),
                        static_cast<unsigned long long>(
                            row.scalarCycles),
                        static_cast<unsigned long long>(
                            row.phaseCycles),
                        row.phaseWin ? "phase wins"
                        : row.phaseCycles == row.scalarCycles
                            ? "tie"
                            : "scalar wins",
                        row.designDiffers ? "" : " (same design)");
            scan.push_back(std::move(row));
        }
    }
    std::printf("phase objective strictly better on %d/%zu scan "
                "points\n",
                wins, scan.size());
    OG_ASSERT(wins >= 1,
              "the phase objective never selected a design with "
              "strictly better short-kernel latency");

    // --- Phase-mode determinism across thread counts. --------------
    {
        std::vector<wl::KernelSpec> domain = { long_fir,
                                               wl::makeAccumulate(32) };
        auto explore = [&](int threads) {
            dse::DseOptions options;
            options.iterations = iters;
            options.seed = seeds.front();
            options.threads = threads;
            options.objective = dse::DseObjective::Phase;
            return dse::exploreOverlay(domain, options);
        };
        dse::DseResult one = explore(1);
        dse::DseResult four = explore(4);
        bool identical =
            one.design.adg.toJson().dump() ==
                four.design.adg.toJson().dump() &&
            one.objective == four.objective &&
            one.accepted == four.accepted;
        std::printf("\nphase-mode determinism: threads 1 vs 4 -> %s\n",
                    identical ? "identical design + objective"
                              : "DIFFERENT");
        OG_ASSERT(identical,
                  "phase-objective trajectory depends on the thread "
                  "count");
    }

    Json report = Json::makeObject();
    report.set("bench", Json("micro_phases"));
    report.set("iterations", Json(iters));
    Json profiles = Json::makeArray();
    profiles.push(profileJson("fir(2048,64)", long_profile));
    profiles.push(profileJson("fir(64,16)", short_profile));
    report.set("profiles", std::move(profiles));
    Json rows = Json::makeArray();
    for (const ScanRow &row : scan) {
        Json r = Json::makeObject();
        r.set("short_kernel", Json(row.shortKernel));
        r.set("seed", Json(static_cast<int64_t>(row.seed)));
        r.set("scalar_cycles",
              Json(static_cast<int64_t>(row.scalarCycles)));
        r.set("phase_cycles",
              Json(static_cast<int64_t>(row.phaseCycles)));
        r.set("scalar_objective", Json(row.scalarObjective));
        r.set("phase_objective", Json(row.phaseObjective));
        r.set("phase_win", Json(row.phaseWin));
        r.set("design_differs", Json(row.designDiffers));
        rows.push(std::move(r));
    }
    report.set("scan", std::move(rows));
    report.set("phase_wins", Json(static_cast<int64_t>(wins)));
    report.set("scan_points",
               Json(static_cast<int64_t>(scan.size())));
    std::string text = report.dump(2);
    const char *path = "BENCH_phases.json";
    std::FILE *f = std::fopen(path, "w");
    OG_ASSERT(f != nullptr, "cannot open '", path, "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\n[bench] report written to %s\n", path);

    harness.finish();
    return 0;
}
