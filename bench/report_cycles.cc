/**
 * @file
 * Top-down cycle-accounting report: simulate a workload suite on the
 * general overlay and break every component's cycles down by the
 * stall taxonomy (telemetry/ledger.h). Each row sums to 100% of the
 * run's cycles — the ledger invariant — and the dominant non-busy
 * category is flagged as the component's bottleneck.
 *
 * A per-phase breakdown follows each workload's component rows: the
 * run is segmented into startup/ramp/steady/drain from the interval
 * time-series (telemetry/phases.h) and each phase gets its cycle
 * span, busy fraction, and dominant bottleneck. `--phase-interval=N`
 * sets the sampling cadence (default 512 cycles; rows stay in memory
 * unless `--stats-jsonl` also asks for the file).
 *
 * Usage: report_cycles [--suite=dsp|mach|vision|all]
 *        [--phase-interval=N] [harness flags]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "telemetry/ledger.h"

using namespace overgen;

namespace {

/** The dominant non-busy category, or Busy when nothing stalls. */
telemetry::CycleCategory
bottleneckOf(const telemetry::CycleLedger &ledger)
{
    using telemetry::CycleCategory;
    auto best = CycleCategory::Busy;
    uint64_t most = 0;
    for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
        auto cat = static_cast<CycleCategory>(c);
        if (cat == CycleCategory::Busy)
            continue;
        if (ledger[cat] > most) {
            most = ledger[cat];
            best = cat;
        }
    }
    return best;
}

void
printLedgerRow(const char *component,
               const telemetry::CycleLedger &ledger, uint64_t cycles,
               bool flag_bottleneck)
{
    OG_ASSERT(ledger.total() == cycles, "ledger sums to ",
              ledger.total(), " of ", cycles, " cycles (", component,
              ")");
    std::printf("  %-8s", component);
    double denom = cycles > 0 ? static_cast<double>(cycles) : 1.0;
    for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
        auto cat = static_cast<telemetry::CycleCategory>(c);
        std::printf(" %6.1f%%",
                    100.0 * static_cast<double>(ledger[cat]) / denom);
    }
    if (flag_bottleneck && cycles > 0) {
        std::printf("   <- %s",
                    telemetry::cycleCategoryName(bottleneckOf(ledger)));
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    // Common flags plus our own --suite= (anything else stays fatal
    // via the Harness's rejectExtraFlags).
    bench::CommonFlags flags =
        bench::parseCommonFlags(argc, argv, /*allowExtra=*/true);
    std::string suite_name = "dsp";
    bench::takeExtraFlag(flags.extra, "--suite=", suite_name);
    // Phase segmentation needs an interval time-series; default to an
    // in-memory one at 512 cycles unless --stats-interval already
    // configured sampling.
    std::string phase_interval = "512";
    bench::takeExtraFlag(flags.extra, "--phase-interval=",
                         phase_interval);
    if (flags.sink.statsInterval == 0) {
        int interval = std::atoi(phase_interval.c_str());
        OG_ASSERT(interval >= 1, "bad --phase-interval value '",
                  phase_interval, "'");
        flags.sink.statsInterval = static_cast<uint64_t>(interval);
    }
    bench::Harness harness(flags);

    std::vector<wl::KernelSpec> workloads;
    if (suite_name == "dsp")
        workloads = wl::dspSuite();
    else if (suite_name == "mach")
        workloads = wl::machSuite();
    else if (suite_name == "vision")
        workloads = wl::visionSuite();
    else if (suite_name == "all")
        workloads = wl::allWorkloads();
    else
        OG_FATAL("unknown --suite '", suite_name,
                 "' (expected dsp, mach, vision, or all)");

    bench::banner("report_cycles",
                  "top-down cycle accounting on the general overlay");
    std::printf("suite: %s (%zu workloads)\n\n", suite_name.c_str(),
                workloads.size());

    auto design = bench::shareDesign(bench::generalOverlay());
    std::vector<bench::PreparedSim> prepared;
    for (const wl::KernelSpec &spec : workloads)
        prepared.push_back(bench::prepareOverlayRun(spec, design));
    std::vector<bench::OverlayRun> runs =
        bench::runPreparedBatch(prepared, harness);

    // Header: one column per taxonomy category.
    std::printf("%-10s", "");
    for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
        auto cat = static_cast<telemetry::CycleCategory>(c);
        std::printf(" %7.7s", telemetry::cycleCategoryName(cat));
    }
    std::printf("\n");

    for (size_t i = 0; i < workloads.size(); ++i) {
        const bench::OverlayRun &run = runs[i];
        if (!prepared[i].ok) {
            std::printf("%s: does not map\n\n",
                        workloads[i].name.c_str());
            continue;
        }
        std::printf("%s: %llu cycles%s%s\n",
                    workloads[i].name.c_str(),
                    static_cast<unsigned long long>(run.cycles),
                    run.ok ? "" : " (incomplete)",
                    run.deadlocked ? " [deadlock]" : "");
        printLedgerRow("memory", run.memory.ledger, run.cycles,
                       /*flag_bottleneck=*/false);
        telemetry::CycleLedger whole_tile;
        for (size_t t = 0; t < run.tiles.size(); ++t) {
            std::string name = "tile" + std::to_string(t);
            printLedgerRow(name.c_str(), run.tiles[t].ledger,
                           run.cycles, /*flag_bottleneck=*/true);
            for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
                auto cat = static_cast<telemetry::CycleCategory>(c);
                whole_tile.add(cat, run.tiles[t].ledger[cat]);
            }
        }
        // Workload verdict: the dominant stall across all tiles.
        if (!run.tiles.empty() && run.cycles > 0) {
            double busy =
                static_cast<double>(
                    whole_tile[telemetry::CycleCategory::Busy]) /
                static_cast<double>(whole_tile.total());
            std::printf("  => dominant bottleneck: %s (tiles %.1f%% "
                        "busy)\n",
                        telemetry::cycleCategoryName(
                            bottleneckOf(whole_tile)),
                        100.0 * busy);
        }
        // Per-phase breakdown: where the cycles went within each
        // execution regime, with the phase-local bottleneck flagged.
        const telemetry::PhaseProfile &phases = run.phases;
        if (!phases.spans.empty()) {
            std::printf("  phases (ramp %llu cycles, %s",
                        static_cast<unsigned long long>(
                            phases.rampCycles),
                        phases.reachedSteady ? "steady reached"
                                             : "no steady state");
            if (phases.reachedSteady && phases.steadyIpc > 0.0)
                std::printf(", steady IPC %.2f", phases.steadyIpc);
            std::printf("):\n");
            for (const telemetry::PhaseSpan &span : phases.spans) {
                std::printf("    %-8s %9llu..%-9llu %5.1f%% of run, "
                            "%5.1f%% busy   <- %s\n",
                            telemetry::phaseKindName(span.kind),
                            static_cast<unsigned long long>(
                                span.beginCycle),
                            static_cast<unsigned long long>(
                                span.endCycle),
                            100.0 *
                                static_cast<double>(span.cycles()) /
                                static_cast<double>(
                                    std::max<uint64_t>(phases.cycles,
                                                       1)),
                            100.0 * span.busyFraction,
                            telemetry::cycleCategoryName(
                                span.bottleneck));
            }
        }
        std::printf("\n");
    }

    harness.finish();
    return 0;
}
