/**
 * @file
 * Regenerates paper Table IV: HLS initiation intervals before and
 * after manual kernel tuning, for the workloads whose code patterns
 * the HLS toolchain mishandles (variable loop trip counts and
 * inefficient strided access).
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Table IV", "HLS initiation-interval optimization");
    struct Row
    {
        const char *workload;
        const char *cause;
        int paperUntuned;
        int paperTuned;
    };
    const Row rows[] = {
        { "cholesky", "variable trip count", 10, 5 },
        { "crs", "variable trip count", 4, 2 },
        { "fft", "variable trip count", 2, 1 },
        { "bgr2grey", "strided access", 9, 1 },
        { "blur", "strided access", 6, 1 },
        { "channel-ext", "strided access", 8, 1 },
        { "stencil-3d", "strided access", 6, 1 },
    };
    std::printf("%-12s %-22s %14s %14s\n", "workload", "cause",
                "untuned II", "tuned II");
    std::printf("%-12s %-22s %7s %6s %7s %6s\n", "", "", "meas.",
                "paper", "meas.", "paper");
    bool all_match = true;
    for (const Row &row : rows) {
        wl::KernelSpec k = wl::workloadByName(row.workload);
        int untuned = hls::initiationInterval(k, false);
        int tuned = hls::initiationInterval(k, true);
        all_match &= untuned == row.paperUntuned &&
                     tuned == row.paperTuned;
        std::printf("%-12s %-22s %7d %6d %7d %6d\n", row.workload,
                    row.cause, untuned, row.paperUntuned, tuned,
                    row.paperTuned);
    }
    std::printf("\nall other workloads (and OverGen always): II = 1\n");
    std::printf("match with paper Table IV: %s\n",
                all_match ? "EXACT" : "partial");
    harness.finish();
    return 0;
}
