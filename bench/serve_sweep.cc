/**
 * @file
 * Full-suite sweep through the overlay-generation job server: every
 * workload on the general overlay, sharded across forked worker
 * processes, with the merged result stream written as JSONL. The
 * merged file is byte-identical for every --workers / --shard-size
 * combination (the serving layer's determinism contract; see
 * DESIGN.md "Serving layer"), so diffing two runs is a one-line
 * health check of the whole pipeline.
 *
 * Usage: serve_sweep [--workers=N] [--shard-size=N] [--deadline-ms=N]
 *                    [--checkpoint-every=N] [--out=<path>]
 *                    [harness flags]
 *
 * --checkpoint-every=N makes workers stream a mid-run simulation
 * checkpoint every N cycles, so a crashed worker's replacement
 * resumes the interrupted job instead of restarting it (the merged
 * stream is unchanged either way — resume is bit-identical).
 */

#include <cstdio>

#include "common.h"

#include "serve/coordinator.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::CommonFlags flags =
        bench::parseCommonFlags(argc, argv, /*allowExtra=*/true);
    serve::CoordinatorOptions options;
    options.workers = 4;
    options.shardSize = 1;
    std::string out_path = "serve_sweep.jsonl";
    std::string value;
    if (bench::takeExtraFlag(flags.extra, "--workers=", value))
        options.workers = std::atoi(value.c_str());
    if (bench::takeExtraFlag(flags.extra, "--shard-size=", value))
        options.shardSize =
            static_cast<size_t>(std::atoll(value.c_str()));
    if (bench::takeExtraFlag(flags.extra, "--deadline-ms=", value))
        options.deadlineMs = std::atoi(value.c_str());
    if (bench::takeExtraFlag(flags.extra, "--checkpoint-every=", value))
        options.checkpointEvery =
            static_cast<uint64_t>(std::atoll(value.c_str()));
    bench::takeExtraFlag(flags.extra, "--out=", out_path);
    OG_ASSERT(options.workers >= 1, "bad --workers value");

    // IMPORTANT: fork workers before the harness builds any thread
    // pool (the coordinator's fork-safety contract), so construct the
    // Harness but never touch pool() before serveJobs() returns.
    bench::Harness harness(flags);
    options.simThreadsPerWorker = harness.simThreads();
    options.sink = harness.sink();

    bench::banner("serve_sweep",
                  "full workload suite through the job server");
    std::vector<wl::KernelSpec> workloads = wl::allWorkloads();
    serve::JobSet set = bench::makeJobSet(
        workloads, bench::generalOverlay(), /*apply_tuning=*/true);
    std::printf("jobs: %zu | workers: %d | shard size: %zu | sim "
                "threads/worker: %d\n\n",
                set.jobs.size(), options.workers, options.shardSize,
                options.simThreadsPerWorker);

    serve::ServeOutcome outcome = serve::serveJobs(set, options);

    std::printf("%-12s %12s %8s %-10s\n", "workload", "cycles", "ipc",
                "status");
    for (size_t i = 0; i < outcome.rows.size(); ++i) {
        const serve::ResultRow &row = outcome.rows[i];
        const char *status = row.ok ? "ok"
                             : row.deadlocked ? "deadlock"
                                              : "failed";
        std::printf("%-12s %12llu %8.3f %-10s\n",
                    set.jobs[i].workload.c_str(),
                    static_cast<unsigned long long>(row.cycles),
                    row.ipc, status);
    }

    std::string merged = serve::mergedJsonl(set, outcome.rows);
    std::FILE *f = std::fopen(out_path.c_str(), "w");
    OG_ASSERT(f != nullptr, "cannot open '", out_path, "'");
    std::fwrite(merged.data(), 1, merged.size(), f);
    std::fclose(f);

    Json summary = outcome.summaryJson();
    std::printf("\nsummary: %s\n", summary.dump().c_str());
    std::printf("[serve] merged result stream written to %s "
                "(byte-identical for any --workers/--shard-size)\n",
                out_path.c_str());
    harness.finish();
    return outcome.summary.ok ? 0 : 1;
}
