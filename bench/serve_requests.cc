/**
 * @file
 * Request-level serving benchmark for the overlay library: a seeded
 * Zipf-skewed request trace over the 19-workload suite is admitted
 * one request at a time through LibraryService — match against the
 * library, warm a fresh overlay (bounded DSE) on a miss, re-match.
 * Reports the hit rate (overall and post-warm-up), the hit/miss
 * latency split, and the library growth curve, then pins the
 * determinism contract: replaying the trace in-process twice and
 * through the forked-worker server at 1/2/4 workers must produce
 * byte-identical library files (and an identical serve log across
 * worker counts). Writes BENCH_requests.json next to the binary.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common.h"

#include "common/stats.h"
#include "library/service.h"

using namespace overgen;

namespace {

/** splitmix64: the trace generator's own deterministic stream. */
uint64_t
nextRand(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

double
nextUnit(uint64_t &state)
{
    return static_cast<double>(nextRand(state) >> 11) * 0x1.0p-53;
}

/**
 * The request trace: @p count arrivals over the full workload suite,
 * Zipf-skewed (alpha ~1.1, the classic popularity shape for serving
 * traces) with the rank->workload mapping scrambled by a seeded
 * shuffle so popularity does not follow suite order.
 */
std::vector<std::string>
makeTrace(size_t count, uint64_t seed)
{
    std::vector<std::string> names;
    for (const wl::KernelSpec &spec : wl::allWorkloads())
        names.push_back(spec.name);
    uint64_t state = seed;
    for (size_t i = names.size(); i > 1; --i)
        std::swap(names[i - 1], names[nextRand(state) % i]);

    const double alpha = 1.1;
    std::vector<double> cdf(names.size());
    double total = 0.0;
    for (size_t rank = 0; rank < names.size(); ++rank) {
        total += 1.0 / std::pow(static_cast<double>(rank + 1), alpha);
        cdf[rank] = total;
    }
    std::vector<std::string> trace;
    for (size_t i = 0; i < count; ++i) {
        double u = nextUnit(state) * total;
        size_t rank =
            static_cast<size_t>(std::lower_bound(cdf.begin(),
                                                 cdf.end(), u) -
                                cdf.begin());
        trace.push_back(names[std::min(rank, names.size() - 1)]);
    }
    return trace;
}

/** Fraction-p convenience over the shared overgen::percentile
 * (nearest-rank, same indexing); empty-safe because an all-hit trace
 * leaves the miss list empty. */
double
percentile(const std::vector<double> &values, double p)
{
    if (values.empty())
        return 0.0;
    return overgen::percentile(values, p * 100.0);
}

library::ServiceOptions
serviceOptions(int warmIterations, bool useServer, int workers)
{
    library::ServiceOptions options;
    options.smallSize = true;
    options.match.applyTuning = true;
    options.warmIterations = warmIterations;
    options.useServer = useServer;
    options.serve.workers = workers;
    return options;
}

/** Replay @p trace through a fresh service in fixed-size batches and
 * return the library JSONL (the determinism comparand). */
std::string
replay(const std::vector<std::string> &trace, size_t batchSize,
       int warmIterations, bool useServer, int workers,
       std::string *serveLog = nullptr)
{
    library::LibraryService service(
        serviceOptions(warmIterations, useServer, workers));
    for (size_t start = 0; start < trace.size(); start += batchSize) {
        size_t end = std::min(start + batchSize, trace.size());
        service.processBatch(std::vector<std::string>(
            trace.begin() + static_cast<long>(start),
            trace.begin() + static_cast<long>(end)));
    }
    if (serveLog != nullptr)
        *serveLog = service.serveLog();
    return service.library().toJsonl();
}

} // namespace

int
main(int argc, char **argv)
{
    // The server-mode replays fork; keep this process free of live
    // thread pools (harness pool() is never touched, and the
    // library's transient scoring pools are joined before any fork).
    bench::CommonFlags flags =
        bench::parseCommonFlags(argc, argv, /*allowExtra=*/true);
    std::string requestsArg;
    bench::takeExtraFlag(flags.extra, "--requests=", requestsArg);
    bench::rejectExtraFlags(flags.extra);
    size_t requestCount = 160;
    if (!requestsArg.empty()) {
        requestCount =
            static_cast<size_t>(std::atoi(requestsArg.c_str()));
        OG_ASSERT(requestCount >= 2, "bad --requests value '",
                  requestsArg, "'");
    }
    bench::Harness harness(flags);
    bench::banner("serve_requests",
                  "request-level overlay-library serving");

    const int warmIterations = std::max(4, bench::benchIterations(8));
    std::vector<std::string> trace =
        makeTrace(requestCount, 0x5e17ce2026080801ull);

    // Measurement pass: one request per batch (pure arrival order),
    // in-process, wall-clock per request.
    library::LibraryService service(
        serviceOptions(warmIterations, false, 0));
    std::vector<double> hitMs;
    std::vector<double> missMs;
    size_t hits = 0;
    size_t secondHalfHits = 0;
    size_t secondHalfCount = 0;
    Json growth = Json::makeArray();
    for (size_t i = 0; i < trace.size(); ++i) {
        auto t0 = std::chrono::steady_clock::now();
        library::RequestOutcome outcome =
            service.processBatch({ trace[i] }).front();
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        (outcome.hit ? hitMs : missMs).push_back(ms);
        hits += outcome.hit ? 1 : 0;
        if (i >= trace.size() / 2) {
            ++secondHalfCount;
            secondHalfHits += outcome.hit ? 1 : 0;
        }
        if ((i + 1) % 20 == 0 || i + 1 == trace.size()) {
            Json point = Json::makeObject();
            point.set("requests", Json(static_cast<int64_t>(i + 1)));
            point.set("entries",
                      Json(static_cast<int64_t>(
                          service.library().entries.size())));
            growth.push(std::move(point));
        }
    }
    double hitRate =
        static_cast<double>(hits) / static_cast<double>(trace.size());
    double secondHalfRate =
        static_cast<double>(secondHalfHits) /
        static_cast<double>(std::max<size_t>(secondHalfCount, 1));
    double hitP50 = percentile(hitMs, 0.5);
    double missP50 = percentile(missMs, 0.5);
    double speedup = missP50 / std::max(hitP50, 1e-9);

    std::printf("%zu requests over %zu workloads, warm budget %d "
                "DSE iters\n",
                trace.size(), wl::allWorkloads().size(),
                warmIterations);
    std::printf("hit rate       %5.1f%% overall, %5.1f%% second "
                "half\n",
                hitRate * 100.0, secondHalfRate * 100.0);
    std::printf("hit latency    p50 %8.3f ms  p90 %8.3f ms  p99 "
                "%8.3f ms\n",
                hitP50, percentile(hitMs, 0.9),
                percentile(hitMs, 0.99));
    std::printf("miss latency   p50 %8.3f ms  p90 %8.3f ms  p99 "
                "%8.3f ms\n",
                missP50, percentile(missMs, 0.9),
                percentile(missMs, 0.99));
    std::printf("miss/hit p50   %.1fx\n", speedup);
    std::printf("library        %zu entries after %zu requests\n",
                service.library().entries.size(), trace.size());

    // Acceptance gates (ISSUE 7): a warmed library serves the skewed
    // tail from memory, and the hit path never pays the DSE.
    OG_ASSERT(secondHalfRate >= 0.8,
              "post-warm-up hit rate ", secondHalfRate,
              " below the 0.8 gate");
    OG_ASSERT(speedup >= 10.0, "hit path only ", speedup,
              "x faster than the miss path (gate: 10x)");

    // Determinism: the library file is a pure function of the trace
    // and its batching — in-process replays agree with each other...
    std::string baseline = service.library().toJsonl();
    std::string inProcessAgain =
        replay(trace, 1, warmIterations, false, 0);
    bool replayIdentical = inProcessAgain == baseline;
    OG_ASSERT(replayIdentical,
              "in-process replay produced different library bytes");

    // ...and the forked-worker server agrees for every worker count
    // (batched admission: same batching for every compared run).
    const size_t batchSize = 16;
    std::string batchedBaseline =
        replay(trace, batchSize, warmIterations, false, 0);
    bool serverIdentical = true;
    bool logsIdentical = true;
    std::string firstLog;
    for (int workers : { 1, 2, 4 }) {
        std::string log;
        std::string bytes = replay(trace, batchSize, warmIterations,
                                   true, workers, &log);
        if (bytes != batchedBaseline)
            serverIdentical = false;
        if (firstLog.empty())
            firstLog = log;
        else if (log != firstLog)
            logsIdentical = false;
        std::printf("server x%d      library %s, serve log %s\n",
                    workers,
                    bytes == batchedBaseline ? "identical"
                                             : "DIFFERENT",
                    log == firstLog ? "identical" : "DIFFERENT");
    }
    OG_ASSERT(serverIdentical,
              "server-mode library bytes differ from in-process");
    OG_ASSERT(logsIdentical,
              "serve logs differ across worker counts");

    Json report = Json::makeObject();
    report.set("bench", Json("serve_requests"));
    report.set("requests",
               Json(static_cast<int64_t>(trace.size())));
    report.set("workloads",
               Json(static_cast<int64_t>(wl::allWorkloads().size())));
    report.set("warm_iterations",
               Json(static_cast<int64_t>(warmIterations)));
    report.set("hit_rate", Json(hitRate));
    report.set("hit_rate_second_half", Json(secondHalfRate));
    // The full percentile set, both sides of the hit/miss split, so
    // CI can gate on tail latency (p99/max), not just medians.
    Json latency = Json::makeObject();
    latency.set("hit_count",
                Json(static_cast<int64_t>(hitMs.size())));
    latency.set("hit_p50_ms", Json(hitP50));
    latency.set("hit_p90_ms", Json(percentile(hitMs, 0.9)));
    latency.set("hit_p95_ms", Json(percentile(hitMs, 0.95)));
    latency.set("hit_p99_ms", Json(percentile(hitMs, 0.99)));
    latency.set("hit_max_ms", Json(percentile(hitMs, 1.0)));
    latency.set("miss_count",
                Json(static_cast<int64_t>(missMs.size())));
    latency.set("miss_p50_ms", Json(missP50));
    latency.set("miss_p90_ms", Json(percentile(missMs, 0.9)));
    latency.set("miss_p95_ms", Json(percentile(missMs, 0.95)));
    latency.set("miss_p99_ms", Json(percentile(missMs, 0.99)));
    latency.set("miss_max_ms", Json(percentile(missMs, 1.0)));
    latency.set("miss_over_hit_p50", Json(speedup));
    report.set("latency", std::move(latency));
    report.set("library_entries",
               Json(static_cast<int64_t>(
                   service.library().entries.size())));
    report.set("growth", std::move(growth));
    Json determinism = Json::makeObject();
    determinism.set("in_process_replay_identical",
                    Json(replayIdentical));
    determinism.set("server_library_identical",
                    Json(serverIdentical));
    determinism.set("server_logs_identical", Json(logsIdentical));
    report.set("determinism", std::move(determinism));

    std::string text = report.dump(2);
    const char *path = "BENCH_requests.json";
    std::FILE *f = std::fopen(path, "w");
    OG_ASSERT(f != nullptr, "cannot open '", path, "'");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("\n[bench] report written to %s\n", path);
    harness.finish();
    return 0;
}
