/**
 * @file
 * Regenerates paper Figure 14: the effect of manual kernel tuning on
 * both frameworks, for the tuning-sensitive workloads. AutoDSE gains
 * heavily from source tuning (Table IV patterns); OverGen's ISA and
 * compiler handle most of those patterns natively, with a smaller set
 * of kernels benefiting from its own source tuning (fft / gemm /
 * stencil-2d / blur).
 */

#include "common.h"

using namespace overgen;

int
main(int argc, char **argv)
{
    bench::Harness harness(argc, argv);
    bench::banner("Figure 14", "impact of kernel tuning");
    auto general = bench::shareDesign(bench::generalOverlay());

    const char *workloads[] = { "cholesky", "fft",      "stencil-3d",
                                "crs",      "gemm",     "stencil-2d",
                                "channel-ext", "bgr2grey", "blur" };
    // Stable spec storage: PreparedSim keeps a pointer to its spec.
    std::vector<wl::KernelSpec> specs;
    for (const char *name : workloads)
        specs.push_back(wl::workloadByName(name));

    // Compile + schedule every (workload, tuning) pair, then simulate
    // all of them in one batched fan-out across `--sim-threads`.
    std::vector<bench::PreparedSim> prepared;
    for (const wl::KernelSpec &spec : specs) {
        prepared.push_back(bench::prepareOverlayRun(spec, general,
                                                    false));
        prepared.push_back(bench::prepareOverlayRun(spec, general,
                                                    true));
    }
    std::vector<bench::OverlayRun> runs =
        bench::runPreparedBatch(prepared, harness);

    std::printf("%-12s | %13s | %13s | %13s\n", "workload",
                "AD tuned gain", "OG tuned gain", "OG/AD untuned");
    std::vector<double> ad_gains, og_gains;
    for (size_t i = 0; i < specs.size(); ++i) {
        const wl::KernelSpec &spec = specs[i];
        hls::AutoDseResult ad = hls::runAutoDse(spec, false);
        hls::AutoDseResult ad_tuned = hls::runAutoDse(spec, true);
        const bench::OverlayRun &og = runs[2 * i];
        const bench::OverlayRun &og_tuned = runs[2 * i + 1];
        double ad_gain = ad.perf.seconds / ad_tuned.perf.seconds;
        double og_gain =
            og.ok && og_tuned.ok ? og.seconds / og_tuned.seconds : 1.0;
        double ratio =
            og.ok ? ad.perf.seconds / og.seconds : 0.0;
        bool deadlocked = og.deadlocked || og_tuned.deadlocked;
        std::printf("%-12s | %12.2fx | %12.2fx | %12.2fx%s\n",
                    spec.name.c_str(), ad_gain, og_gain, ratio,
                    deadlocked ? " [deadlock]" : "");
        ad_gains.push_back(ad_gain);
        og_gains.push_back(og_gain);
    }
    std::printf("\ngeomean tuning gain: AutoDSE %.2fx, OverGen "
                "%.2fx\n",
                bench::geomean(ad_gains), bench::geomean(og_gains));
    std::printf("paper takeaway: HLS benefits far more from manual "
                "tuning; OverGen handles the patterns natively.\n");
    harness.finish();
    return 0;
}
