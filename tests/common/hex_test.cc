#include <gtest/gtest.h>

#include "common/hex.h"
#include "common/rng.h"

namespace overgen {
namespace {

TEST(Hex, EncodesFixedWidthLowercase)
{
    EXPECT_EQ(hexU64(0), "0000000000000000");
    EXPECT_EQ(hexU64(1), "0000000000000001");
    EXPECT_EQ(hexU64(0xdeadbeefull), "00000000deadbeef");
    EXPECT_EQ(hexU64(~uint64_t{0}), "ffffffffffffffff");
}

TEST(Hex, RoundTripsValuesAboveDoublePrecision)
{
    // The reason this codec exists: integers above 2^53 that a JSON
    // double would round.
    const uint64_t values[] = {
        (1ull << 53) + 1,
        0x8000000000000001ull,
        0xfedcba9876543210ull,
    };
    for (uint64_t v : values) {
        EXPECT_EQ(parseHexU64(hexU64(v)), v);
        uint64_t out = 0;
        EXPECT_TRUE(tryParseHexU64(hexU64(v), out));
        EXPECT_EQ(out, v);
    }
}

TEST(Hex, RandomRoundTrip)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        uint64_t v = rng.next();
        EXPECT_EQ(parseHexU64(hexU64(v)), v);
    }
}

TEST(Hex, ShortStringsParseWithoutPadding)
{
    uint64_t out = 0;
    ASSERT_TRUE(tryParseHexU64("f", out));
    EXPECT_EQ(out, 0xfu);
    ASSERT_TRUE(tryParseHexU64("10", out));
    EXPECT_EQ(out, 0x10u);
    ASSERT_TRUE(tryParseHexU64("0000000000000000", out));
    EXPECT_EQ(out, 0u);
}

TEST(Hex, RejectsMalformedInput)
{
    uint64_t out = 0;
    EXPECT_FALSE(tryParseHexU64("", out));
    EXPECT_FALSE(tryParseHexU64("12345678901234567", out)); // 17 digits
    EXPECT_FALSE(tryParseHexU64("DEADBEEF", out)); // uppercase
    EXPECT_FALSE(tryParseHexU64("0x12", out));
    EXPECT_FALSE(tryParseHexU64("12 34", out));
    EXPECT_FALSE(tryParseHexU64("g", out));
    EXPECT_FALSE(tryParseHexU64("-1", out));
}

using HexDeathTest = ::testing::Test;

TEST(HexDeathTest, ParseOfMalformedInputIsFatal)
{
    EXPECT_DEATH((void)parseHexU64("not-hex"), "bad hex64");
}

} // namespace
} // namespace overgen
