#include <gtest/gtest.h>

#include "common/rng.h"

namespace overgen {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyRespected)
{
    Rng rng(42);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(RngDeathTest, NextBelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "nextBelow");
}

} // namespace
} // namespace overgen
