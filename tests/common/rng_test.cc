#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace overgen {
namespace {

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(13), 13u);
}

TEST(Rng, NextRangeInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoolProbabilityRoughlyRespected)
{
    Rng rng(42);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, GaussianMomentsRoughlyStandard)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, NextBelowChiSquareUniform)
{
    // Pearson chi-square goodness-of-fit against the uniform
    // distribution, over several bucket counts including ones where a
    // modulo reduction would be visibly biased (2^64 % bound != 0).
    // df = bound-1; thresholds are the p = 0.001 critical values, so
    // a correct generator fails spuriously ~1 in 1000 per seed (the
    // seeds below are fixed, making the test deterministic).
    struct Case
    {
        uint64_t bound;
        double critical;  //!< chi-square p=0.001 upper tail
    };
    const Case cases[] = {
        { 3, 13.82 }, { 7, 22.46 }, { 10, 27.88 }, { 13, 32.91 }
    };
    for (const Case &c : cases) {
        Rng rng(0xc0ffee ^ c.bound);
        constexpr int samples = 100000;
        std::vector<int> buckets(c.bound, 0);
        for (int i = 0; i < samples; ++i)
            ++buckets[rng.nextBelow(c.bound)];
        double expected =
            static_cast<double>(samples) / static_cast<double>(c.bound);
        double chi2 = 0.0;
        for (int observed : buckets) {
            double d = observed - expected;
            chi2 += d * d / expected;
        }
        EXPECT_LT(chi2, c.critical) << "bound " << c.bound;
    }
}

TEST(Rng, NextBelowHugeBoundTerminatesAndCovers)
{
    // Bounds just above 2^63 reject nearly half the raw draws under
    // naive rejection schemes; Lemire's threshold keeps the expected
    // number of next() calls ~1. Also check values land in range.
    Rng rng(99);
    uint64_t huge = (1ull << 63) + 12345;
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(huge), huge);
}

TEST(RngDeathTest, NextBelowZeroPanics)
{
    Rng rng(1);
    EXPECT_DEATH(rng.nextBelow(0), "nextBelow");
}

} // namespace
} // namespace overgen
