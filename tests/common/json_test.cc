#include <gtest/gtest.h>

#include "common/json.h"

namespace overgen {
namespace {

TEST(Json, ScalarRoundTrip)
{
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(nullptr).dump(), "null");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, NumberFormatting)
{
    EXPECT_EQ(Json(3.5).dump(), "3.5");
    EXPECT_EQ(Json(-7).dump(), "-7");
    EXPECT_EQ(Json(int64_t{ 1 } << 40).dump(), "1099511627776");
}

TEST(Json, ObjectBuildAndAccess)
{
    Json obj = Json::makeObject();
    obj.set("a", 1);
    obj.set("b", "two");
    EXPECT_TRUE(obj.contains("a"));
    EXPECT_FALSE(obj.contains("c"));
    EXPECT_EQ(obj.at("a").asInt(), 1);
    EXPECT_EQ(obj.at("b").asString(), "two");
    EXPECT_DOUBLE_EQ(obj.numberOr("missing", 9.5), 9.5);
}

TEST(Json, ArrayPush)
{
    Json arr = Json::makeArray();
    arr.push(1);
    arr.push(2);
    arr.push(3);
    ASSERT_EQ(arr.asArray().size(), 3u);
    EXPECT_EQ(arr.asArray()[2].asInt(), 3);
}

TEST(Json, ParseScalars)
{
    EXPECT_TRUE(Json::parse("null").isNull());
    EXPECT_EQ(Json::parse("true").asBool(), true);
    EXPECT_EQ(Json::parse("-12").asInt(), -12);
    EXPECT_DOUBLE_EQ(Json::parse("2.5e2").asNumber(), 250.0);
    EXPECT_EQ(Json::parse("\"x\\ny\"").asString(), "x\ny");
}

TEST(Json, ParseNested)
{
    Json v = Json::parse(R"({"a": [1, 2, {"b": true}], "c": "s"})");
    EXPECT_EQ(v.at("a").asArray()[1].asInt(), 2);
    EXPECT_TRUE(v.at("a").asArray()[2].at("b").asBool());
    EXPECT_EQ(v.at("c").asString(), "s");
}

TEST(Json, RoundTripComplex)
{
    Json obj = Json::makeObject();
    Json inner = Json::makeArray();
    inner.push(Json(1.25));
    inner.push(Json("with \"quotes\" and \\slash"));
    obj.set("list", std::move(inner));
    obj.set("flag", false);
    std::string text = obj.dump(2);
    Json reparsed = Json::parse(text);
    EXPECT_EQ(reparsed.dump(), obj.dump());
}

TEST(Json, PrettyPrintContainsNewlines)
{
    Json obj = Json::makeObject();
    obj.set("k", 1);
    EXPECT_NE(obj.dump(2).find('\n'), std::string::npos);
    EXPECT_EQ(obj.dump(0).find('\n'), std::string::npos);
}

TEST(Json, EmptyContainers)
{
    EXPECT_EQ(Json::makeArray().dump(2), "[]");
    EXPECT_EQ(Json::makeObject().dump(2), "{}");
    EXPECT_TRUE(Json::parse("[]").asArray().empty());
    EXPECT_TRUE(Json::parse("{}").asObject().empty());
}

TEST(Json, WhitespaceTolerant)
{
    Json v = Json::parse("  { \"a\" :\n[ 1 ,\t2 ] }  ");
    EXPECT_EQ(v.at("a").asArray().size(), 2u);
}

TEST(Json, ControlCharacterEscapes)
{
    // Every control character must dump as a valid JSON escape
    // (RFC 8259) and survive a round trip.
    std::string raw;
    for (int c = 1; c < 0x20; ++c)
        raw += static_cast<char>(c);
    std::string dumped = Json(raw).dump();
    for (char c : dumped)
        EXPECT_GE(static_cast<unsigned char>(c), 0x20) << dumped;
    EXPECT_EQ(Json::parse(dumped).asString(), raw);

    EXPECT_EQ(Json(std::string("a\bb\fc")).dump(),
              "\"a\\bb\\fc\"");
    EXPECT_EQ(Json(std::string(1, '\x1f')).dump(), "\"\\u001f\"");
}

TEST(Json, ParseUnicodeEscape)
{
    EXPECT_EQ(Json::parse("\"\\u0041\"").asString(), "A");
    // Two- and three-byte UTF-8 expansions.
    EXPECT_EQ(Json::parse("\"\\u00e9\"").asString(), "\xc3\xa9");
    EXPECT_EQ(Json::parse("\"\\u20ac\"").asString(),
              "\xe2\x82\xac");
}

} // namespace
} // namespace overgen
