#include <gtest/gtest.h>

#include "common/logging.h"

namespace overgen {
namespace {

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(Logging, VerboseToggle)
{
    detail::setVerbose(true);
    EXPECT_TRUE(detail::verbose());
    detail::setVerbose(false);
    EXPECT_FALSE(detail::verbose());
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(OG_PANIC("boom ", 42), "boom 42");
}

TEST(LoggingDeathTest, AssertFailureAborts)
{
    EXPECT_DEATH(OG_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(Logging, AssertPassIsSilent)
{
    OG_ASSERT(true, "never printed");
    SUCCEED();
}

} // namespace
} // namespace overgen
