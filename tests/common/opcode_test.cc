#include <gtest/gtest.h>

#include "common/opcode.h"

namespace overgen {
namespace {

TEST(Opcode, NameRoundTrip)
{
    for (Opcode op : allOpcodes())
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op);
}

TEST(Opcode, AllOpcodesCovered)
{
    EXPECT_EQ(static_cast<int>(allOpcodes().size()), numOpcodes());
}

TEST(Opcode, FloatOpsSlower)
{
    auto int_add = opProperties(Opcode::Add, DataType::I64);
    auto flt_add = opProperties(Opcode::Add, DataType::F64);
    EXPECT_LT(int_add.latency, flt_add.latency);
}

TEST(Opcode, DividerNotPipelined)
{
    EXPECT_FALSE(opProperties(Opcode::Div, DataType::F64).pipelined);
    EXPECT_FALSE(opProperties(Opcode::Sqrt, DataType::F32).pipelined);
    EXPECT_TRUE(opProperties(Opcode::Mul, DataType::I32).pipelined);
}

TEST(Opcode, MultiplierUsesDsp)
{
    EXPECT_TRUE(opProperties(Opcode::Mul, DataType::I16).usesDsp);
    EXPECT_FALSE(opProperties(Opcode::And, DataType::I64).usesDsp);
}

TEST(Opcode, CapabilityNaming)
{
    FuCapability cap{ Opcode::Mul, DataType::F64 };
    EXPECT_EQ(fuCapabilityName(cap), "mul.f64");
}

TEST(Opcode, CapabilityOrdering)
{
    FuCapability a{ Opcode::Add, DataType::I8 };
    FuCapability b{ Opcode::Add, DataType::I16 };
    FuCapability c{ Opcode::Mul, DataType::I8 };
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, (FuCapability{ Opcode::Add, DataType::I8 }));
}

TEST(OpcodeDeathTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(opcodeFromName("frobnicate"), "unknown opcode");
}

} // namespace
} // namespace overgen
