#include <gtest/gtest.h>

#include <deque>

#include "common/ring.h"
#include "common/rng.h"

namespace overgen::common {
namespace {

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> ring;
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.size(), 0u);
}

TEST(RingBuffer, FifoOrderSurvivesWraparound)
{
    // Interleave pushes and pops so head walks all the way around the
    // initial 8-slot array several times; FIFO positions must stay
    // consistent throughout.
    RingBuffer<int> ring;
    std::deque<int> model;
    int next = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 5; ++i) {
            ring.push_back(next);
            model.push_back(next);
            ++next;
        }
        for (int i = 0; i < 3; ++i) {
            ASSERT_EQ(ring.front(), model.front());
            ring.pop_front();
            model.pop_front();
        }
        ASSERT_EQ(ring.size(), model.size());
        for (size_t i = 0; i < model.size(); ++i)
            ASSERT_EQ(ring[i], model[i]) << "round " << round;
        ASSERT_EQ(ring.back(), model.back());
    }
}

TEST(RingBuffer, GrowRelinearizesAcrossTheSeam)
{
    // Fill past the initial capacity while head is mid-array, so the
    // live entries straddle the wrap seam when grow() copies them.
    RingBuffer<int> ring;
    for (int i = 0; i < 6; ++i)
        ring.push_back(i);
    for (int i = 0; i < 4; ++i)
        ring.pop_front();
    for (int i = 6; i < 20; ++i)
        ring.push_back(i);
    ASSERT_EQ(ring.size(), 16u);
    for (size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], static_cast<int>(i) + 4);
}

TEST(RingBuffer, EraseKeepsOrderAndReinsertOverwrites)
{
    // The fill-queue pattern: erase a middle entry (order-preserving
    // shift), then push new entries into the vacated tail slots.
    RingBuffer<int> ring;
    for (int i = 0; i < 8; ++i)
        ring.push_back(i);
    ring.erase(3);
    ASSERT_EQ(ring.size(), 7u);
    const int after_erase[] = { 0, 1, 2, 4, 5, 6, 7 };
    for (size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], after_erase[i]);

    ring.erase(0);
    ring.erase(ring.size() - 1);
    const int after_ends[] = { 1, 2, 4, 5, 6 };
    ASSERT_EQ(ring.size(), 5u);
    for (size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring[i], after_ends[i]);

    // Reinsertion lands strictly after the survivors.
    ring.push_back(100);
    ring.push_back(101);
    EXPECT_EQ(ring.back(), 101);
    EXPECT_EQ(ring[ring.size() - 2], 100);
    EXPECT_EQ(ring.front(), 1);
}

TEST(RingBuffer, PopBackDropsNewestEntry)
{
    RingBuffer<int> ring;
    ring.push_back(1);
    ring.push_back(2);
    ring.pop_back();
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.front(), 1);
    EXPECT_EQ(ring.back(), 1);
}

TEST(RingBuffer, ClearThenReuse)
{
    RingBuffer<int> ring;
    for (int i = 0; i < 12; ++i)
        ring.push_back(i);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    ring.push_back(42);
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring.front(), 42);
}

TEST(RingBuffer, MonotoneReadyOrderingUnderExpiryScan)
{
    // The fill-ready usage: entries are appended with nondecreasing
    // ready cycles and retired from the front as they expire; the
    // front must always hold the minimum ready cycle.
    struct Fill
    {
        uint64_t ready = 0;
        int line = 0;
    };
    RingBuffer<Fill> ring;
    Rng rng(7);
    uint64_t clock = 0;
    uint64_t next_ready = 0;
    int next_line = 0;
    for (int step = 0; step < 500; ++step) {
        if (ring.size() < 16 && rng.nextBelow(2) == 0) {
            next_ready += rng.nextBelow(5);
            ring.push_back(Fill{ next_ready, next_line++ });
        }
        clock += rng.nextBelow(4);
        while (!ring.empty() && ring.front().ready <= clock) {
            for (size_t i = 1; i < ring.size(); ++i)
                ASSERT_GE(ring[i].ready, ring.front().ready);
            ring.pop_front();
        }
    }
}

using RingBufferDeathTest = ::testing::Test;

TEST(RingBufferDeathTest, EmptyAccessesAreFatal)
{
    RingBuffer<int> ring;
    EXPECT_DEATH(ring.pop_front(), "empty ring");
    EXPECT_DEATH(ring.pop_back(), "empty ring");
    EXPECT_DEATH((void)ring[0], "out of range");
    ring.push_back(1);
    EXPECT_DEATH((void)ring[1], "out of range");
    EXPECT_DEATH(ring.erase(1), "out of range");
}

} // namespace
} // namespace overgen::common
