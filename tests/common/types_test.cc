#include <gtest/gtest.h>

#include "common/types.h"

namespace overgen {
namespace {

TEST(DataType, Widths)
{
    EXPECT_EQ(dataTypeBytes(DataType::I8), 1);
    EXPECT_EQ(dataTypeBytes(DataType::I16), 2);
    EXPECT_EQ(dataTypeBytes(DataType::I32), 4);
    EXPECT_EQ(dataTypeBytes(DataType::I64), 8);
    EXPECT_EQ(dataTypeBytes(DataType::F32), 4);
    EXPECT_EQ(dataTypeBytes(DataType::F64), 8);
}

TEST(DataType, FloatClassification)
{
    EXPECT_TRUE(dataTypeIsFloat(DataType::F32));
    EXPECT_TRUE(dataTypeIsFloat(DataType::F64));
    EXPECT_FALSE(dataTypeIsFloat(DataType::I16));
}

TEST(DataType, NameRoundTrip)
{
    for (DataType type : { DataType::I8, DataType::I16, DataType::I32,
                           DataType::I64, DataType::F32, DataType::F64 }) {
        EXPECT_EQ(dataTypeFromName(dataTypeName(type)), type);
    }
}

TEST(DataType, SubwordLanes)
{
    EXPECT_EQ(subwordLanes(8, DataType::I16), 4);
    EXPECT_EQ(subwordLanes(64, DataType::F32), 16);
    EXPECT_EQ(subwordLanes(8, DataType::I64), 1);
    EXPECT_EQ(subwordLanes(4, DataType::F64), 0);
}

TEST(DataTypeDeathTest, UnknownNameFatal)
{
    EXPECT_DEATH(dataTypeFromName("i128"), "unknown data type");
}

} // namespace
} // namespace overgen
