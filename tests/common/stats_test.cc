#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace overgen {
namespace {

TEST(Stats, GeometricMeanBasics)
{
    std::vector<double> v{ 1.0, 4.0 };
    EXPECT_DOUBLE_EQ(geometricMean(v), 2.0);
    std::vector<double> single{ 7.0 };
    EXPECT_DOUBLE_EQ(geometricMean(single), 7.0);
}

TEST(Stats, GeometricMeanScaleInvariance)
{
    std::vector<double> v{ 2.0, 8.0, 32.0 };
    std::vector<double> scaled{ 4.0, 16.0, 64.0 };
    EXPECT_NEAR(geometricMean(scaled), 2.0 * geometricMean(v), 1e-12);
}

TEST(Stats, WeightedGeometricMeanEqualWeightsMatches)
{
    std::vector<double> v{ 1.0, 2.0, 4.0 };
    std::vector<double> w{ 1.0, 1.0, 1.0 };
    EXPECT_NEAR(weightedGeometricMean(v, w), geometricMean(v), 1e-12);
}

TEST(Stats, WeightedGeometricMeanSkew)
{
    std::vector<double> v{ 1.0, 16.0 };
    std::vector<double> w{ 3.0, 1.0 };
    // exp((3*log1 + log16)/4) = 2
    EXPECT_NEAR(weightedGeometricMean(v, w), 2.0, 1e-12);
}

TEST(Stats, ArithmeticMean)
{
    std::vector<double> v{ 1.0, 2.0, 3.0, 6.0 };
    EXPECT_DOUBLE_EQ(arithmeticMean(v), 3.0);
}

TEST(StatsDeathTest, EmptyInputPanics)
{
    std::vector<double> empty;
    EXPECT_DEATH(geometricMean(empty), "empty");
}

TEST(StatsDeathTest, NonPositiveValuePanics)
{
    std::vector<double> v{ 1.0, 0.0 };
    EXPECT_DEATH(geometricMean(v), "non-positive");
}

} // namespace
} // namespace overgen
