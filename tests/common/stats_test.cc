#include <gtest/gtest.h>

#include <vector>

#include "common/stats.h"

namespace overgen {
namespace {

TEST(Stats, GeometricMeanBasics)
{
    std::vector<double> v{ 1.0, 4.0 };
    EXPECT_DOUBLE_EQ(geometricMean(v), 2.0);
    std::vector<double> single{ 7.0 };
    EXPECT_DOUBLE_EQ(geometricMean(single), 7.0);
}

TEST(Stats, GeometricMeanScaleInvariance)
{
    std::vector<double> v{ 2.0, 8.0, 32.0 };
    std::vector<double> scaled{ 4.0, 16.0, 64.0 };
    EXPECT_NEAR(geometricMean(scaled), 2.0 * geometricMean(v), 1e-12);
}

TEST(Stats, WeightedGeometricMeanEqualWeightsMatches)
{
    std::vector<double> v{ 1.0, 2.0, 4.0 };
    std::vector<double> w{ 1.0, 1.0, 1.0 };
    EXPECT_NEAR(weightedGeometricMean(v, w), geometricMean(v), 1e-12);
}

TEST(Stats, WeightedGeometricMeanSkew)
{
    std::vector<double> v{ 1.0, 16.0 };
    std::vector<double> w{ 3.0, 1.0 };
    // exp((3*log1 + log16)/4) = 2
    EXPECT_NEAR(weightedGeometricMean(v, w), 2.0, 1e-12);
}

TEST(Stats, PercentileNearestRank)
{
    std::vector<double> v{ 40.0, 10.0, 30.0, 20.0, 50.0 };
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
    // index round(0.9 * 4) = 4 -> the max.
    EXPECT_DOUBLE_EQ(percentile(v, 90.0), 50.0);
    // index round(0.25 * 4) = 1.
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
}

TEST(Stats, PercentileSingleElementAndDuplicates)
{
    std::vector<double> single{ 7.0 };
    for (double p : { 0.0, 50.0, 99.0, 100.0 })
        EXPECT_DOUBLE_EQ(percentile(single, p), 7.0);
    std::vector<double> dup{ 3.0, 3.0, 3.0, 9.0 };
    EXPECT_DOUBLE_EQ(percentile(dup, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(dup, 100.0), 9.0);
}

TEST(Stats, PercentileDoesNotMutateInput)
{
    std::vector<double> v{ 5.0, 1.0, 3.0 };
    (void)percentile(v, 50.0);
    EXPECT_EQ(v, (std::vector<double>{ 5.0, 1.0, 3.0 }));
}

TEST(Stats, ArithmeticMean)
{
    std::vector<double> v{ 1.0, 2.0, 3.0, 6.0 };
    EXPECT_DOUBLE_EQ(arithmeticMean(v), 3.0);
}

TEST(StatsDeathTest, EmptyInputPanics)
{
    std::vector<double> empty;
    EXPECT_DEATH(geometricMean(empty), "empty");
}

TEST(StatsDeathTest, NonPositiveValuePanics)
{
    std::vector<double> v{ 1.0, 0.0 };
    EXPECT_DEATH(geometricMean(v), "non-positive");
}

TEST(StatsDeathTest, PercentileOutOfRangePanics)
{
    std::vector<double> v{ 1.0 };
    EXPECT_DEATH((void)percentile(v, -1.0), "out of range");
    EXPECT_DEATH((void)percentile(v, 100.5), "out of range");
    std::vector<double> empty;
    EXPECT_DEATH((void)percentile(empty, 50.0), "empty");
}

} // namespace
} // namespace overgen
