#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace overgen {
namespace {

TEST(ThreadPool, HardwareThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::hardwareThreads(), 1);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    // threads == 1 must execute on the calling thread (the legacy
    // serial path): thread-local state set by tasks is visible here.
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> seen(5);
    pool.parallelFor(5, [&](size_t i) {
        seen[i] = std::this_thread::get_id();
    });
    for (const auto &id : seen)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr size_t n = 5000;
    // Each index is claimed by exactly one worker, so plain writes
    // are race-free; a double visit would show up as count 2.
    std::vector<int> hits(n, 0);
    pool.parallelFor(n, [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndSingletonRegions)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MapPreservesOrderUnderAdversarialDurations)
{
    // Early indices sleep longest, so completion order is roughly the
    // reverse of index order — the result vector must still be
    // index-ordered.
    ThreadPool pool(4);
    constexpr size_t n = 24;
    std::vector<uint64_t> out = pool.parallelMap(n, [](size_t i) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((n - i) * 250));
        return static_cast<uint64_t>(i * i);
    });
    ASSERT_EQ(out.size(), n);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, MapSupportsMoveOnlyResults)
{
    ThreadPool pool(2);
    auto out = pool.parallelMap(8, [](size_t i) {
        return std::make_unique<int>(static_cast<int>(i) + 1);
    });
    ASSERT_EQ(out.size(), 8u);
    for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_NE(out[i], nullptr);
        EXPECT_EQ(*out[i], static_cast<int>(i) + 1);
    }
}

TEST(ThreadPool, ExceptionPropagatesFromWorker)
{
    ThreadPool pool(4);
    auto run = [&] {
        pool.parallelFor(16, [](size_t i) {
            if (i == 7)
                throw std::runtime_error("boom at 7");
        });
    };
    EXPECT_THROW(run(), std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWins)
{
    // When several tasks throw in one region, the rethrown exception
    // must be the lowest-index one — deterministic regardless of
    // which worker finished first.
    ThreadPool pool(4);
    for (int round = 0; round < 8; ++round) {
        std::string caught;
        try {
            pool.parallelFor(32, [](size_t i) {
                if (i == 3 || i == 19 || i == 30)
                    throw std::runtime_error(
                        "idx " + std::to_string(i));
            });
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        EXPECT_EQ(caught, "idx 3");
    }
}

TEST(ThreadPool, SerialPathStopsAtFirstException)
{
    ThreadPool pool(1);
    int ran = 0;
    EXPECT_THROW(pool.parallelFor(10,
                                  [&](size_t i) {
                                      ++ran;
                                      if (i == 2)
                                          throw std::runtime_error(
                                              "stop");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran, 3);  // 0, 1, then the throwing 2 — nothing after
}

TEST(ThreadPool, PoolIsReusableAfterException)
{
    ThreadPool pool(3);
    EXPECT_THROW(pool.parallelFor(
                     8, [](size_t) { throw std::runtime_error("x"); }),
                 std::runtime_error);
    std::atomic<int> sum{ 0 };
    pool.parallelFor(8, [&](size_t i) {
        sum.fetch_add(static_cast<int>(i));
    });
    EXPECT_EQ(sum.load(), 28);
}

TEST(ThreadPool, NestedDistinctPoolsCompose)
{
    // The explorer runs inside bench-level pool tasks; each builds its
    // own inner pool. Distinct pools may nest freely.
    ThreadPool outer(2);
    std::vector<uint64_t> out = outer.parallelMap(4, [](size_t i) {
        ThreadPool inner(2);
        std::atomic<uint64_t> sum{ 0 };
        inner.parallelFor(10, [&](size_t j) {
            sum.fetch_add(i * 100 + j);
        });
        return sum.load();
    });
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i], i * 1000 + 45);
}

TEST(ThreadPoolDeathTest, NestedUseOfSamePoolIsFatal)
{
    EXPECT_DEATH(
        {
            ThreadPool pool(2);
            pool.parallelFor(2, [&pool](size_t) {
                pool.parallelFor(1, [](size_t) {});
            });
        },
        "nested parallelFor");
}

TEST(ThreadPool, StressManySmallRegions)
{
    // Back-to-back regions exercise the sleep/wake handshake; a lost
    // wakeup or a stale-job race shows up here (and under TSan).
    ThreadPool pool(4);
    uint64_t expected = 0;
    std::atomic<uint64_t> total{ 0 };
    for (int region = 0; region < 400; ++region) {
        size_t n = static_cast<size_t>(region % 7) + 1;
        pool.parallelFor(n, [&](size_t i) {
            total.fetch_add(i + 1);
        });
        expected += n * (n + 1) / 2;
    }
    EXPECT_EQ(total.load(), expected);
}

} // namespace
} // namespace overgen
