#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/suites.h"

// Snapshot/restore exactness: a run that checkpoints must be
// bit-identical to one that does not (checkpointing only observes),
// and resuming from any checkpoint must reproduce the uninterrupted
// run bitwise — cycles, stats, cycle ledgers, memory images, even
// watchdog abort cycles — under the naive, fast-forwarding, and
// checked engines alike.

namespace overgen::sim {
namespace {

adg::Adg
richTile()
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

adg::SysAdg
testDesign(int tiles = 1)
{
    adg::SysAdg design;
    design.adg = richTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 8;
    design.sys.nocBytes = 64;
    return design;
}

wl::KernelSpec
smallWorkload(const std::string &name)
{
    if (name == "cholesky")
        return wl::makeCholesky(16);
    if (name == "fft")
        return wl::makeFft(7);
    if (name == "fir")
        return wl::makeFir(128, 16);
    if (name == "solver")
        return wl::makeSolver(16);
    if (name == "mm")
        return wl::makeMm(8);
    if (name == "stencil-3d")
        return wl::makeStencil3d(8, 2);
    if (name == "crs")
        return wl::makeCrs(32, 4);
    if (name == "gemm")
        return wl::makeGemm(8);
    if (name == "stencil-2d")
        return wl::makeStencil2d(8, 2);
    if (name == "ellpack")
        return wl::makeEllpack(32, 4);
    if (name == "channel-ext")
        return wl::makeChannelExtract(16);
    if (name == "bgr2grey")
        return wl::makeBgr2Grey(16);
    if (name == "blur")
        return wl::makeBlur(16);
    if (name == "accumulate")
        return wl::makeAccumulate(16);
    if (name == "acc-sqr")
        return wl::makeAccSqr(16);
    if (name == "vecmax")
        return wl::makeVecMax(16);
    if (name == "acc-weight")
        return wl::makeAccWeight(16);
    if (name == "convert-bit")
        return wl::makeConvertBit(16);
    if (name == "derivative")
        return wl::makeDerivative(18);
    OG_FATAL("unknown small workload ", name);
}

const char *const kAllWorkloads[] = {
    "cholesky",   "fft",      "fir",        "solver",
    "mm",         "stencil-3d", "crs",      "gemm",
    "stencil-2d", "ellpack",  "channel-ext", "bgr2grey",
    "blur",       "accumulate", "acc-sqr",  "vecmax",
    "acc-weight", "convert-bit", "derivative",
};

struct Compiled
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

Compiled
compileFor(const std::string &name, int tiles)
{
    Compiled c;
    c.spec = smallWorkload(name);
    c.design = testDesign(tiles);
    auto variants = compiler::compileVariants(c.spec);
    sched::SpatialScheduler scheduler(c.design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OG_ASSERT(fit.has_value(), "no schedule for ", name);
    c.mdfg = std::move(variants[fit->second]);
    c.schedule = std::move(fit->first);
    return c;
}

struct SimRun
{
    SimResult result;
    wl::Memory memory;
};

SimRun
runWith(const Compiled &c, SimConfig config)
{
    SimRun run;
    run.memory.init(c.spec);
    run.result = simulate(c.spec, c.mdfg, c.schedule, c.design,
                          run.memory, config);
    return run;
}

SimRun
resumeWith(const Compiled &c, const Snapshot &snap, SimConfig config)
{
    SimRun run;
    run.memory.init(c.spec);
    run.result = resumeFrom(snap, c.spec, c.mdfg, c.schedule,
                            c.design, run.memory, config);
    return run;
}

void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalIterations, b.totalIterations) << label;
    EXPECT_EQ(a.ipc, b.ipc) << label;
    EXPECT_EQ(a.memory.l2Hits, b.memory.l2Hits) << label;
    EXPECT_EQ(a.memory.l2Misses, b.memory.l2Misses) << label;
    EXPECT_EQ(a.memory.dramBytesRead, b.memory.dramBytesRead)
        << label;
    EXPECT_EQ(a.memory.dramBytesWritten, b.memory.dramBytesWritten)
        << label;
    EXPECT_EQ(a.memory.nocBytes, b.memory.nocBytes) << label;
    EXPECT_EQ(a.memory.mshrStallCycles, b.memory.mshrStallCycles)
        << label;
    EXPECT_EQ(a.memory.peakOutstandingTxns,
              b.memory.peakOutstandingTxns)
        << label;
    EXPECT_EQ(a.memory.ledger, b.memory.ledger) << label;
    ASSERT_EQ(a.tiles.size(), b.tiles.size()) << label;
    for (size_t t = 0; t < a.tiles.size(); ++t) {
        const TileStats &ta = a.tiles[t];
        const TileStats &tb = b.tiles[t];
        const std::string at = label + " tile" + std::to_string(t);
        EXPECT_EQ(ta.firings, tb.firings) << at;
        EXPECT_EQ(ta.iterations, tb.iterations) << at;
        EXPECT_EQ(ta.fabricStallCycles, tb.fabricStallCycles) << at;
        EXPECT_EQ(ta.startupCycles, tb.startupCycles) << at;
        EXPECT_EQ(ta.spadBytes, tb.spadBytes) << at;
        EXPECT_EQ(ta.dmaBytes, tb.dmaBytes) << at;
        EXPECT_EQ(ta.recurrenceBytes, tb.recurrenceBytes) << at;
        EXPECT_EQ(ta.finishCycle, tb.finishCycle) << at;
        EXPECT_EQ(ta.ledger, tb.ledger) << at;
    }
}

void
expectSameArrays(const Compiled &c, const wl::Memory &a,
                 const wl::Memory &b, const std::string &label)
{
    for (const auto &array : c.spec.arrays) {
        EXPECT_EQ(a.array(array.name), b.array(array.name))
            << label << " array " << array.name;
    }
}

// ---------------------------------------------------------------------------
// Codec

TEST(SnapshotCodec, TypedValuesRoundTripInWriteOrder)
{
    Snapshot snap;
    snap.beginSection("unit");
    snap.putU64(~uint64_t{0});
    snap.putI64(-42);
    snap.putDouble(0.1 + 0.2); // exact bit pattern must survive
    snap.putBool(true);
    snap.putBool(false);
    snap.putString("hello snapshot");
    snap.putString("");
    snap.seal();
    EXPECT_TRUE(snap.verify());
    EXPECT_GT(snap.sizeBytes(), 0u);

    snap.rewind();
    snap.expectSection("unit");
    EXPECT_EQ(snap.getU64(), ~uint64_t{0});
    EXPECT_EQ(snap.getI64(), -42);
    EXPECT_EQ(snap.getDouble(), 0.1 + 0.2);
    EXPECT_TRUE(snap.getBool());
    EXPECT_FALSE(snap.getBool());
    EXPECT_EQ(snap.getString(), "hello snapshot");
    EXPECT_EQ(snap.getString(), "");
}

TEST(SnapshotCodec, UnsealedSnapshotDoesNotVerify)
{
    Snapshot snap;
    snap.putU64(7);
    EXPECT_FALSE(snap.verify());
}

TEST(SnapshotCodec, EncodeDecodeRoundTripsAndDigestsAgree)
{
    Snapshot snap;
    snap.beginSection("transport");
    snap.putU64(123456789);
    snap.putString("payload");
    snap.seal();

    std::vector<uint8_t> bytes = snap.encode();
    Snapshot back;
    ASSERT_TRUE(Snapshot::decode(bytes, back));
    EXPECT_TRUE(back.verify());
    EXPECT_EQ(back.digest(), snap.digest());
    back.rewind();
    back.expectSection("transport");
    EXPECT_EQ(back.getU64(), 123456789u);
    EXPECT_EQ(back.getString(), "payload");
}

TEST(SnapshotCodec, DecodeRejectsCorruptionTruncationAndBadMagic)
{
    Snapshot snap;
    snap.beginSection("transport");
    for (uint64_t i = 0; i < 64; ++i)
        snap.putU64(i * 0x9e3779b97f4a7c15ull);
    snap.seal();
    std::vector<uint8_t> bytes = snap.encode();

    Snapshot out;
    // Any single flipped payload bit must fail the digest.
    for (size_t pos : { bytes.size() - 1, bytes.size() / 2 }) {
        std::vector<uint8_t> bad = bytes;
        bad[pos] ^= 0x01;
        EXPECT_FALSE(Snapshot::decode(bad, out)) << pos;
    }
    // Truncation at every boundary class.
    for (size_t keep : { size_t{0}, size_t{7}, size_t{31},
                         bytes.size() - 1 }) {
        std::vector<uint8_t> bad(bytes.begin(),
                                 bytes.begin() +
                                     static_cast<ptrdiff_t>(keep));
        EXPECT_FALSE(Snapshot::decode(bad, out)) << keep;
    }
    std::vector<uint8_t> bad = bytes;
    bad[0] = 'X';
    EXPECT_FALSE(Snapshot::decode(bad, out));
}

using SnapshotCodecDeathTest = ::testing::Test;

TEST(SnapshotCodecDeathTest, TypeTagMismatchIsFatal)
{
    Snapshot snap;
    snap.putU64(1);
    snap.seal();
    snap.rewind();
    EXPECT_DEATH((void)snap.getI64(), "type mismatch");
}

TEST(SnapshotCodecDeathTest, ReadPastTheEndIsFatal)
{
    Snapshot snap;
    snap.putU64(1);
    snap.seal();
    snap.rewind();
    (void)snap.getU64();
    EXPECT_DEATH((void)snap.getU64(), "past the end");
}

TEST(SnapshotCodecDeathTest, SectionNameMismatchIsFatal)
{
    Snapshot snap;
    snap.beginSection("memsys");
    snap.seal();
    snap.rewind();
    EXPECT_DEATH(snap.expectSection("tile0"), "section mismatch");
}

// ---------------------------------------------------------------------------
// Whole-system resume exactness across all workloads

class SnapshotResume : public ::testing::TestWithParam<const char *>
{
};

TEST_P(SnapshotResume, ResumeIsBitIdenticalInEveryMode)
{
    Compiled c = compileFor(GetParam(), 2);

    // The reference run never checkpoints.
    SimRun reference = runWith(c, SimConfig{});
    EXPECT_TRUE(reference.result.completed) << GetParam();

    // The capture run checkpoints; checkpointing must only observe.
    SnapshotCollector collector;
    SimConfig capture;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    SimRun captured = runWith(c, capture);
    expectIdentical(reference.result, captured.result,
                    std::string(GetParam()) + " checkpointing-run");
    expectSameArrays(c, reference.memory, captured.memory,
                     std::string(GetParam()) + " checkpointing-run");
    ASSERT_GE(collector.snaps.size(), 2u)
        << GetParam() << ": too few checkpoints to test resume";
    for (const Snapshot &snap : collector.snaps)
        EXPECT_TRUE(snap.verify()) << GetParam();

    // Resume from the middle checkpoint under all three engines, and
    // from the first and last under the default engine. Checkpoints
    // are captured with fast-forward on, so naive/checked resumes also
    // prove the snapshot state is mode-independent.
    size_t mid = collector.snaps.size() / 2;
    struct Case
    {
        size_t index;
        bool noFastForward;
        bool checkFastForward;
        const char *label;
    };
    const Case cases[] = {
        { mid, false, false, "resume-mid-fast" },
        { mid, true, false, "resume-mid-naive" },
        { mid, false, true, "resume-mid-check" },
        { 0, false, false, "resume-first" },
        { collector.snaps.size() - 1, false, false, "resume-last" },
    };
    for (const Case &cs : cases) {
        SimConfig config;
        config.noFastForward = cs.noFastForward;
        config.checkFastForward = cs.checkFastForward;
        SimRun resumed =
            resumeWith(c, collector.snaps[cs.index], config);
        const std::string label =
            std::string(GetParam()) + " " + cs.label + " @cycle" +
            std::to_string(collector.cycles[cs.index]);
        expectIdentical(reference.result, resumed.result, label);
        expectSameArrays(c, reference.memory, resumed.memory, label);
        // Wall-clock counters continue from the checkpoint's values,
        // so a same-mode resume reproduces the capture run's whole
        // taxonomy — including the prefix it never re-executed.
        if (!cs.noFastForward && !cs.checkFastForward) {
            EXPECT_EQ(resumed.result.tickedCycles,
                      captured.result.tickedCycles)
                << label;
            EXPECT_EQ(resumed.result.skippedCycles,
                      captured.result.skippedCycles)
                << label;
            EXPECT_EQ(resumed.result.drainedCycles,
                      captured.result.drainedCycles)
                << label;
            EXPECT_EQ(resumed.result.drainJumps,
                      captured.result.drainJumps)
                << label;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SnapshotResume,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

TEST(SnapshotResumeExtra, NaiveCaptureResumesUnderFastForward)
{
    // The mirror of the parameterized cross-mode case: checkpoints
    // captured by the naive per-cycle loop feed a fast-forwarding
    // resume.
    Compiled c = compileFor("fir", 2);
    SimRun reference = runWith(c, SimConfig{});

    SnapshotCollector collector;
    SimConfig capture;
    capture.noFastForward = true;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    SimRun captured = runWith(c, capture);
    expectIdentical(reference.result, captured.result,
                    "naive-capture");
    ASSERT_GE(collector.snaps.size(), 2u);

    SimRun resumed = resumeWith(
        c, collector.snaps[collector.snaps.size() / 2], SimConfig{});
    expectIdentical(reference.result, resumed.result,
                    "naive-capture-fast-resume");
    expectSameArrays(c, reference.memory, resumed.memory,
                     "naive-capture-fast-resume");
}

TEST(SnapshotResumeExtra, WatchdogAbortIsIdenticalAfterResume)
{
    // A run the deadlock watchdog aborts: resuming from a checkpoint
    // taken before the stall must reach the same abort cycle with the
    // same partial stats and the same diagnostic dump.
    Compiled c = compileFor("accumulate", 1);
    c.design.sys.l2CapacityKiB = 16;
    SimConfig config;
    config.dramLatency = 2000;
    config.deadlockCycles = 500;

    SimRun reference = runWith(c, config);
    ASSERT_TRUE(reference.result.deadlocked);

    SnapshotCollector collector;
    SimConfig capture = config;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    SimRun captured = runWith(c, capture);
    EXPECT_TRUE(captured.result.deadlocked);
    expectIdentical(reference.result, captured.result,
                    "watchdog-capture");
    ASSERT_GE(collector.snaps.size(), 1u);

    for (size_t index : { size_t{0}, collector.snaps.size() - 1 }) {
        SimRun resumed =
            resumeWith(c, collector.snaps[index], config);
        const std::string label =
            "watchdog-resume @cycle" +
            std::to_string(collector.cycles[index]);
        EXPECT_TRUE(resumed.result.deadlocked) << label;
        expectIdentical(reference.result, resumed.result, label);
        EXPECT_EQ(reference.result.diagnostic,
                  resumed.result.diagnostic)
            << label;
    }
}

TEST(SnapshotResumeExtra, ResumedRunEmitsOnlySuffixCheckpoints)
{
    Compiled c = compileFor("fir", 2);
    SnapshotCollector collector;
    SimConfig capture;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    SimRun captured = runWith(c, capture);
    ASSERT_TRUE(captured.result.completed);
    ASSERT_GE(collector.snaps.size(), 3u);

    // Resuming with checkpointing on again must re-emit only
    // checkpoints strictly after the resume point — never the state
    // it was restored from.
    size_t mid = collector.snaps.size() / 2;
    SnapshotCollector suffix;
    SimConfig resume_cfg;
    resume_cfg.checkpointEvery = 64;
    resume_cfg.checkpointSink = &suffix;
    SimRun resumed =
        resumeWith(c, collector.snaps[mid], resume_cfg);
    EXPECT_TRUE(resumed.result.completed);
    for (uint64_t cycle : suffix.cycles)
        EXPECT_GT(cycle, collector.cycles[mid]);
}

using SnapshotResumeDeathTest = ::testing::Test;

TEST(SnapshotResumeDeathTest, UnsealedSnapshotIsFatal)
{
    Compiled c = compileFor("fir", 1);
    wl::Memory memory;
    memory.init(c.spec);
    Snapshot unsealed;
    EXPECT_DEATH((void)resumeFrom(unsealed, c.spec, c.mdfg,
                                  c.schedule, c.design, memory,
                                  SimConfig{}),
                 "digest");
}

TEST(SnapshotResumeDeathTest, WrongKernelIsFatal)
{
    Compiled fir = compileFor("fir", 1);
    SnapshotCollector collector;
    SimConfig capture;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    (void)runWith(fir, capture);
    ASSERT_GE(collector.snaps.size(), 1u);

    Compiled other = compileFor("accumulate", 1);
    wl::Memory memory;
    memory.init(other.spec);
    EXPECT_DEATH((void)resumeFrom(collector.snaps[0], other.spec,
                                  other.mdfg, other.schedule,
                                  other.design, memory, SimConfig{}),
                 "kernel");
}

TEST(SnapshotResumeDeathTest, DifferentConfigurationIsFatal)
{
    Compiled c = compileFor("fir", 1);
    SnapshotCollector collector;
    SimConfig capture;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    (void)runWith(c, capture);
    ASSERT_GE(collector.snaps.size(), 1u);

    wl::Memory memory;
    memory.init(c.spec);
    SimConfig other;
    other.dramLatency += 17;
    EXPECT_DEATH((void)resumeFrom(collector.snaps[0], c.spec, c.mdfg,
                                  c.schedule, c.design, memory,
                                  other),
                 "configuration");
}

} // namespace
} // namespace overgen::sim
