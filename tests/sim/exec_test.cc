#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "sim/exec.h"
#include "workloads/suites.h"

namespace overgen::sim {
namespace {

TEST(AddressMapTest, DistinctLineAlignedBases)
{
    wl::KernelSpec k = wl::makeFir(64, 8);
    AddressMap map = AddressMap::build(k);
    EXPECT_EQ(map.base("a") % 64, 0u);
    EXPECT_NE(map.base("a"), map.base("b"));
    EXPECT_NE(map.base("b"), map.base("c"));
    EXPECT_GT(map.totalBytes(), 0u);
}

TEST(AddressMapTest, ElementAddressing)
{
    wl::KernelSpec k = wl::makeFir(64, 8);
    AddressMap map = AddressMap::build(k);
    // f64 elements: 8 bytes apart.
    EXPECT_EQ(map.elementAddress(k, "a", 1) -
                  map.elementAddress(k, "a", 0),
              8u);
}

TEST(AddressMapTest, GuardPaddingSeparatesArrays)
{
    wl::KernelSpec k = wl::makeFir(64, 8);
    AddressMap map = AddressMap::build(k);
    uint64_t a_end = map.elementAddress(
        k, "a", k.arrayByName("a").elements - 1);
    EXPECT_LT(a_end, map.base("b"));
}

TEST(IterationWalkerTest, CoversRectangularNest)
{
    wl::KernelSpec k = wl::makeMm(8);
    IterationWalker walker(k, 4, 0, 8);
    int64_t iterations = 0;
    int64_t firings = 0;
    while (!walker.done()) {
        iterations += walker.count();
        ++firings;
        walker.advance();
    }
    EXPECT_EQ(iterations, 8 * 8 * 8);
    EXPECT_EQ(firings, 8 * 8 * 2);  // inner 8 in chunks of 4
}

TEST(IterationWalkerTest, TriangularNestMatchesClosedForm)
{
    wl::KernelSpec k = wl::makeCholesky(12);
    IterationWalker walker(k, 4, 0, 12);
    int64_t iterations = 0;
    while (!walker.done()) {
        iterations += walker.count();
        walker.advance();
    }
    int64_t expected = 0;
    for (int m = 1; m <= 12; ++m)
        expected += static_cast<int64_t>(m) * m;
    EXPECT_EQ(iterations, expected);
}

TEST(IterationWalkerTest, OrderMatchesNestedLoops)
{
    wl::KernelSpec k = wl::makeCholesky(6);
    std::vector<std::vector<int64_t>> reference;
    for (int64_t kk = 0; kk < 6; ++kk)
        for (int64_t i = 0; i < 6 - kk; ++i)
            for (int64_t j = 0; j < 6 - kk; ++j)
                reference.push_back({ kk, i, j });
    std::vector<std::vector<int64_t>> walked;
    IterationWalker walker(k, 2, 0, 6);
    while (!walker.done()) {
        auto ivs = walker.indices();
        for (int l = 0; l < walker.count(); ++l) {
            walked.push_back({ ivs[0], ivs[1], ivs[2] + l });
        }
        walker.advance();
    }
    EXPECT_EQ(walked, reference);
}

TEST(IterationWalkerTest, PartitionSplitsOuterLoop)
{
    wl::KernelSpec k = wl::makeMm(8);
    int64_t total = 0;
    for (int t = 0; t < 3; ++t) {
        int64_t lo = 8 * t / 3, hi = 8 * (t + 1) / 3;
        IterationWalker walker(k, 2, lo, hi);
        while (!walker.done()) {
            EXPECT_GE(walker.indices()[0], lo);
            EXPECT_LT(walker.indices()[0], hi);
            total += walker.count();
            walker.advance();
        }
    }
    EXPECT_EQ(total, 8 * 8 * 8);
}

TEST(IterationWalkerTest, SingleLoopPartitionRespectsBounds)
{
    wl::KernelSpec k = wl::makeBgr2Grey(8);  // one flat pixel loop
    int64_t pixels = k.loops[0].tripBase;
    int64_t total = 0;
    for (int t = 0; t < 4; ++t) {
        int64_t lo = pixels * t / 4, hi = pixels * (t + 1) / 4;
        IterationWalker walker(k, 8, lo, hi);
        while (!walker.done()) {
            total += walker.count();
            walker.advance();
        }
    }
    EXPECT_EQ(total, pixels);
}

TEST(IterationWalkerTest, EmptyPartitionIsDone)
{
    wl::KernelSpec k = wl::makeMm(8);
    IterationWalker walker(k, 2, 4, 4);
    EXPECT_TRUE(walker.done());
}

TEST(IterationWalkerTest, InnerStartFlag)
{
    wl::KernelSpec k = wl::makeMm(8);
    IterationWalker walker(k, 4, 0, 8);
    // First firing of each inner pass starts at index 0.
    EXPECT_TRUE(walker.innerStart());
    walker.advance();
    EXPECT_FALSE(walker.innerStart());
    walker.advance();
    EXPECT_TRUE(walker.innerStart());
}

TEST(ClassifyStreamTest, Kinds)
{
    dfg::Mdfg fir =
        compiler::compileOne(wl::makeFir(128, 128), 2, true, false);
    int stationary = 0, rec_in = 0, rec_out = 0, vector_count = 0;
    for (auto id : fir.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        switch (classifyStream(fir, id)) {
          case StreamKind::Stationary:
            ++stationary;
            break;
          case StreamKind::RecurrenceIn:
            ++rec_in;
            break;
          case StreamKind::Vector:
            ++vector_count;
            break;
          default:
            break;
        }
    }
    for (auto id : fir.nodeIdsOfKind(dfg::NodeKind::OutputStream)) {
        if (classifyStream(fir, id) == StreamKind::RecurrenceOut)
            ++rec_out;
    }
    EXPECT_EQ(stationary, 1);  // b[j]
    EXPECT_EQ(rec_in, 1);      // c recurrence read
    EXPECT_EQ(rec_out, 1);     // c recurrence write
    EXPECT_EQ(vector_count, 1);  // a
}

TEST(ClassifyStreamTest, ConstantTaps)
{
    dfg::Mdfg m =
        compiler::compileOne(wl::makeStencil2d(8, 1), 1, false, false);
    int taps = 0;
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        if (classifyStream(m, id) == StreamKind::ConstantTaps)
            ++taps;
    }
    EXPECT_EQ(taps, 1);
}

TEST(ClassifyStreamTest, WriteOnceForReductionStores)
{
    dfg::Mdfg m =
        compiler::compileOne(wl::makeSolver(8), 1, false, false);
    int write_once = 0;
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::OutputStream)) {
        if (classifyStream(m, id) == StreamKind::WriteOnce)
            ++write_once;
    }
    EXPECT_GE(write_once, 1);  // x[i] and d-like stores
}

TEST(ElemsForFiringTest, VectorMatchesChunk)
{
    wl::KernelSpec k = wl::makeAccumulate(8);
    dfg::Mdfg m = compiler::compileOne(k, 4, false, false);
    IterationWalker walker(k, 4, 0, 4);
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        EXPECT_EQ(elemsForFiring(m, id, StreamKind::Vector, walker),
                  4);
    }
}

TEST(ElemsForFiringTest, StationaryOnlyAtInnerStart)
{
    wl::KernelSpec k = wl::makeMm(8);
    dfg::Mdfg m = compiler::compileOne(k, 4, false, false);
    dfg::NodeId stat = dfg::invalidNode;
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        if (classifyStream(m, id) == StreamKind::Stationary)
            stat = id;
    }
    ASSERT_NE(stat, dfg::invalidNode);
    IterationWalker walker(k, 4, 0, 8);
    EXPECT_EQ(elemsForFiring(m, stat, StreamKind::Stationary, walker),
              1);
    walker.advance();
    EXPECT_EQ(elemsForFiring(m, stat, StreamKind::Stationary, walker),
              0);
}

} // namespace
} // namespace overgen::sim
