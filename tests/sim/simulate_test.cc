#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/suites.h"

namespace overgen::sim {
namespace {

adg::Adg
richTile()
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

adg::SysAdg
testDesign(int tiles = 1)
{
    adg::SysAdg design;
    design.adg = richTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 8;
    design.sys.nocBytes = 64;
    return design;
}

/** Small-instance builders so tests run fast. */
wl::KernelSpec
smallWorkload(const std::string &name)
{
    if (name == "cholesky")
        return wl::makeCholesky(16);
    if (name == "fft")
        return wl::makeFft(7);
    if (name == "fir")
        return wl::makeFir(128, 16);
    if (name == "solver")
        return wl::makeSolver(16);
    if (name == "mm")
        return wl::makeMm(8);
    if (name == "stencil-3d")
        return wl::makeStencil3d(8, 2);
    if (name == "crs")
        return wl::makeCrs(32, 4);
    if (name == "gemm")
        return wl::makeGemm(8);
    if (name == "stencil-2d")
        return wl::makeStencil2d(8, 2);
    if (name == "ellpack")
        return wl::makeEllpack(32, 4);
    if (name == "channel-ext")
        return wl::makeChannelExtract(16);
    if (name == "bgr2grey")
        return wl::makeBgr2Grey(16);
    if (name == "blur")
        return wl::makeBlur(16);
    if (name == "accumulate")
        return wl::makeAccumulate(16);
    if (name == "acc-sqr")
        return wl::makeAccSqr(16);
    if (name == "vecmax")
        return wl::makeVecMax(16);
    if (name == "acc-weight")
        return wl::makeAccWeight(16);
    if (name == "convert-bit")
        return wl::makeConvertBit(16);
    if (name == "derivative")
        return wl::makeDerivative(18);
    OG_FATAL("unknown small workload ", name);
}

/** Compile + schedule + simulate; verify against the interpreter. */
SimResult
runAndVerify(const wl::KernelSpec &spec, int tiles,
             bool verify_functional = true,
             const SimConfig &config = {})
{
    adg::SysAdg design = testDesign(tiles);
    sched::SpatialScheduler scheduler(design.adg);
    auto variants = compiler::compileVariants(spec);
    auto fit = scheduler.scheduleFirstFit(variants);
    EXPECT_TRUE(fit.has_value()) << spec.name;
    if (!fit)
        return {};
    wl::Memory sim_mem, ref_mem;
    sim_mem.init(spec);
    ref_mem.init(spec);
    SimResult result = simulate(spec, variants[fit->second],
                                fit->first, design, sim_mem, config);
    EXPECT_TRUE(result.completed) << spec.name << " timed out";
    if (verify_functional) {
        wl::interpret(spec, ref_mem);
        for (const auto &array : spec.arrays) {
            EXPECT_EQ(sim_mem.array(array.name),
                      ref_mem.array(array.name))
                << spec.name << " array " << array.name;
        }
    }
    return result;
}

/** Parameterized functional-equivalence sweep over every workload. */
class SimFunctional : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SimFunctional, SingleTileMatchesInterpreter)
{
    runAndVerify(smallWorkload(GetParam()), 1);
}

TEST_P(SimFunctional, IterationCountMatchesSpec)
{
    wl::KernelSpec spec = smallWorkload(GetParam());
    SimResult result = runAndVerify(spec, 1);
    // Count exact iterations via the interpreter-equivalent walker.
    IterationWalker walker(spec, 1, 0, spec.loops[0].tripBase);
    int64_t expected = 0;
    while (!walker.done()) {
        expected += walker.count();
        walker.advance();
    }
    EXPECT_EQ(result.totalIterations,
              static_cast<uint64_t>(expected));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SimFunctional,
    ::testing::Values("cholesky", "fft", "fir", "solver", "mm",
                      "stencil-3d", "crs", "gemm", "stencil-2d",
                      "ellpack", "channel-ext", "bgr2grey", "blur",
                      "accumulate", "acc-sqr", "vecmax", "acc-weight",
                      "convert-bit", "derivative"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

/** Multi-tile functional equivalence for partitionable kernels
 * (cholesky/solver carry outer-loop dependences: timing-only). */
class SimMultiTile : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SimMultiTile, FourTilesMatchInterpreter)
{
    runAndVerify(smallWorkload(GetParam()), 4);
}

INSTANTIATE_TEST_SUITE_P(
    PartitionableWorkloads, SimMultiTile,
    ::testing::Values("fir", "mm", "gemm", "stencil-3d", "crs",
                      "ellpack", "accumulate", "blur", "bgr2grey"),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Simulate, MoreTilesNotSlower)
{
    wl::KernelSpec spec = wl::makeFir(512, 16);
    SimResult one = runAndVerify(spec, 1);
    SimResult four = runAndVerify(spec, 4);
    EXPECT_LE(four.cycles, one.cycles);
    EXPECT_GE(one.cycles, four.cycles * 2);  // real scaling
}

TEST(Simulate, StreamingKernelHitsDramWall)
{
    // accumulate at 8 tiles is DRAM-bound: cycles bounded below by
    // bytes moved / channel bandwidth.
    wl::KernelSpec spec = wl::makeAccumulate(64);
    SimResult result = runAndVerify(spec, 8);
    uint64_t dram_bytes = result.memory.dramBytesRead;
    SimConfig config;
    EXPECT_GE(result.cycles,
              dram_bytes / config.dramChannelBandwidthBytes);
    EXPECT_GT(result.memory.l2Misses, 0u);
}

TEST(Simulate, MoreDramChannelsHelpStreaming)
{
    wl::KernelSpec spec = wl::makeAccumulate(64);
    adg::SysAdg design = testDesign(8);
    design.sys.l2Banks = 16;  // keep the L2 off the critical path
    sched::SpatialScheduler scheduler(design.adg);
    auto variants = compiler::compileVariants(spec);
    auto fit = scheduler.scheduleFirstFit(variants);
    ASSERT_TRUE(fit.has_value());
    auto run = [&](int channels) {
        adg::SysAdg d = design;
        d.sys.dramChannels = channels;
        wl::Memory mem;
        mem.init(spec);
        SimConfig narrow;  // make DRAM the binding resource
        narrow.dramChannelBandwidthBytes = 32;
        return simulate(spec, variants[fit->second], fit->first, d,
                        mem, narrow)
            .cycles;
    };
    EXPECT_LT(run(4), run(1));
}

TEST(Simulate, OneHotBypassImprovesSingleStreamIssue)
{
    // A strided scale kernel with each array alone on its own
    // scratchpad: every firing needs exactly one stream-table issue
    // per engine, so the issue rate binds. Without the one-hot bypass
    // a lone stream issues every other cycle (paper Fig. 11), halving
    // throughput end-to-end.
    wl::KernelSpec spec;
    spec.name = "scale-strided";
    spec.suite = wl::Suite::Dsp;
    spec.loops = { { "i", 512, {}, false } };
    spec.arrays = { { "a", DataType::F64, 4096, false, "" },
                    { "c", DataType::F64, 4096, false, "" } };
    spec.accesses = { { "a", { 8 }, 0, false, "" },
                      { "c", { 8 }, 0, true, "" } };
    spec.ops = { { Opcode::Mul, DataType::F64,
                   wl::Operand::access(0), wl::Operand::imm64(2.0),
                   1 } };
    spec.scratchpadHints = { "a", "c" };
    spec.maxUnroll = 1;

    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 4;
    config.numInPorts = 4;
    config.numOutPorts = 2;
    config.datapathBytes = 64;
    config.numScratchpads = 2;
    config.spadCapacityKiB = 64;
    config.peCapabilities = adg::floatCapabilities(DataType::F64);
    adg::SysAdg design;
    design.adg = adg::buildMeshTile(config);
    design.sys.numTiles = 1;

    sched::SpatialScheduler scheduler(design.adg);
    dfg::Mdfg mdfg = compiler::compileOne(spec, 1, false, false);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());

    auto run = [&](bool bypass) {
        wl::Memory mem;
        mem.init(spec);
        SimConfig cfg;
        cfg.oneHotBypass = bypass;
        SimResult r =
            simulate(spec, mdfg, *schedule, design, mem, cfg);
        EXPECT_TRUE(r.completed);
        return r.cycles;
    };
    uint64_t fast = run(true);
    uint64_t slow = run(false);
    EXPECT_LT(fast * 3, slow * 2);  // >= 1.5x faster with the bypass
}

TEST(Simulate, RecurrenceVariantBeatsMemoryVariant)
{
    // fir's reduction via the recurrence engine avoids the L2
    // round-trip of the read/write pair.
    wl::KernelSpec spec = wl::makeFir(512, 64);
    adg::SysAdg design = testDesign(1);
    sched::SpatialScheduler scheduler(design.adg);
    dfg::Mdfg rec = compiler::compileOne(spec, 4, true, false);
    dfg::Mdfg mem_variant = compiler::compileOne(spec, 4, false, false);
    auto s_rec = scheduler.schedule(rec);
    auto s_mem = scheduler.schedule(mem_variant);
    ASSERT_TRUE(s_rec && s_mem);
    wl::Memory m1, m2;
    m1.init(spec);
    m2.init(spec);
    uint64_t rec_cycles =
        simulate(spec, rec, *s_rec, design, m1).cycles;
    uint64_t mem_cycles =
        simulate(spec, mem_variant, *s_mem, design, m2).cycles;
    EXPECT_LT(rec_cycles, mem_cycles);
    // Both still compute the right answer.
    EXPECT_EQ(m1.array("c"), m2.array("c"));
}

TEST(Simulate, HigherUnrollFasterWhenComputeBound)
{
    wl::KernelSpec spec = wl::makeBlur(32);
    adg::SysAdg design = testDesign(1);
    sched::SpatialScheduler scheduler(design.adg);
    dfg::Mdfg u1 = compiler::compileOne(spec, 1, false, false);
    dfg::Mdfg u8 = compiler::compileOne(spec, 8, false, false);
    auto s1 = scheduler.schedule(u1);
    auto s8 = scheduler.schedule(u8);
    ASSERT_TRUE(s1 && s8);
    wl::Memory m1, m8;
    m1.init(spec);
    m8.init(spec);
    uint64_t c1 = simulate(spec, u1, *s1, design, m1).cycles;
    uint64_t c8 = simulate(spec, u8, *s8, design, m8).cycles;
    EXPECT_LT(c8 * 2, c1);
}

TEST(Simulate, ReconfigurationOrdersOfMagnitudeUnderFpgaFlash)
{
    wl::KernelSpec spec = wl::makeAccumulate(16);
    adg::SysAdg design = testDesign(1);
    sched::SpatialScheduler scheduler(design.adg);
    dfg::Mdfg mdfg = compiler::compileOne(spec, 2, false, false);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());
    uint64_t cycles = reconfigurationCycles(*schedule, design.adg);
    // ~93 MHz: a full FPGA reflash (> 1 s) is > 93M cycles; spatial
    // reconfiguration must be about four orders of magnitude less.
    EXPECT_LT(cycles, 93'000'000ull / 10'000ull);
    EXPECT_GT(cycles, 0ull);
}

TEST(Simulate, IpcPositiveAndBounded)
{
    SimResult result = runAndVerify(wl::makeBgr2Grey(32), 1);
    EXPECT_GT(result.ipc, 0.0);
    // A single tile cannot exceed its instruction bandwidth.
    EXPECT_LT(result.ipc, 200.0);
}

} // namespace
} // namespace overgen::sim

namespace overgen::sim {
namespace {

TEST(Simulate, GenerateEngineDeliversInductionValues)
{
    // c[i] = a[i] * i: the induction variable flows through the
    // generate engine into the fabric (paper §III-B "Generate").
    wl::KernelSpec spec;
    spec.name = "ramp";
    spec.suite = wl::Suite::Dsp;
    spec.loops = { { "i", 256, {}, false } };
    spec.arrays = { { "a", DataType::I64, 256, false, "" },
                    { "c", DataType::I64, 256, false, "" } };
    spec.accesses = { { "a", { 1 }, 0, false, "" },
                      { "c", { 1 }, 0, true, "" } };
    spec.ops = { { Opcode::Mul, DataType::I64, wl::Operand::access(0),
                   wl::Operand::indexVar(0), 1 } };
    spec.maxUnroll = 4;
    SimResult result = runAndVerify(spec, 1);
    EXPECT_GT(result.totalIterations, 0u);
}

} // namespace
} // namespace overgen::sim
