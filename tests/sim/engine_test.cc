#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

// Cycle-exactness of event-horizon fast-forward: every workload must
// produce a bitwise-identical SimResult through the naive tick loop
// (SimConfig::noFastForward), the fast-forwarding engine, and the
// checked engine that executes skipped cycles anyway while asserting
// quiescence. Only tickedCycles/skippedCycles — wall-clock
// observability — may differ.

namespace overgen::sim {
namespace {

adg::Adg
richTile()
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

adg::SysAdg
testDesign(int tiles = 1)
{
    adg::SysAdg design;
    design.adg = richTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 8;
    design.sys.nocBytes = 64;
    return design;
}

wl::KernelSpec
smallWorkload(const std::string &name)
{
    if (name == "cholesky")
        return wl::makeCholesky(16);
    if (name == "fft")
        return wl::makeFft(7);
    if (name == "fir")
        return wl::makeFir(128, 16);
    if (name == "solver")
        return wl::makeSolver(16);
    if (name == "mm")
        return wl::makeMm(8);
    if (name == "stencil-3d")
        return wl::makeStencil3d(8, 2);
    if (name == "crs")
        return wl::makeCrs(32, 4);
    if (name == "gemm")
        return wl::makeGemm(8);
    if (name == "stencil-2d")
        return wl::makeStencil2d(8, 2);
    if (name == "ellpack")
        return wl::makeEllpack(32, 4);
    if (name == "channel-ext")
        return wl::makeChannelExtract(16);
    if (name == "bgr2grey")
        return wl::makeBgr2Grey(16);
    if (name == "blur")
        return wl::makeBlur(16);
    if (name == "accumulate")
        return wl::makeAccumulate(16);
    if (name == "acc-sqr")
        return wl::makeAccSqr(16);
    if (name == "vecmax")
        return wl::makeVecMax(16);
    if (name == "acc-weight")
        return wl::makeAccWeight(16);
    if (name == "convert-bit")
        return wl::makeConvertBit(16);
    if (name == "derivative")
        return wl::makeDerivative(18);
    OG_FATAL("unknown small workload ", name);
}

const char *const kAllWorkloads[] = {
    "cholesky",   "fft",      "fir",        "solver",
    "mm",         "stencil-3d", "crs",      "gemm",
    "stencil-2d", "ellpack",  "channel-ext", "bgr2grey",
    "blur",       "accumulate", "acc-sqr",  "vecmax",
    "acc-weight", "convert-bit", "derivative",
};

struct Compiled
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

Compiled
compileFor(const std::string &name, int tiles)
{
    Compiled c;
    c.spec = smallWorkload(name);
    c.design = testDesign(tiles);
    auto variants = compiler::compileVariants(c.spec);
    sched::SpatialScheduler scheduler(c.design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OG_ASSERT(fit.has_value(), "no schedule for ", name);
    c.mdfg = std::move(variants[fit->second]);
    c.schedule = std::move(fit->first);
    return c;
}

struct SimRun
{
    SimResult result;
    wl::Memory memory;
};

SimRun
runWith(const Compiled &c, SimConfig config)
{
    SimRun run;
    run.memory.init(c.spec);
    run.result = simulate(c.spec, c.mdfg, c.schedule, c.design,
                          run.memory, config);
    return run;
}

void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalIterations, b.totalIterations) << label;
    EXPECT_EQ(a.ipc, b.ipc) << label;
    EXPECT_EQ(a.memory.l2Hits, b.memory.l2Hits) << label;
    EXPECT_EQ(a.memory.l2Misses, b.memory.l2Misses) << label;
    EXPECT_EQ(a.memory.dramBytesRead, b.memory.dramBytesRead)
        << label;
    EXPECT_EQ(a.memory.dramBytesWritten, b.memory.dramBytesWritten)
        << label;
    EXPECT_EQ(a.memory.nocBytes, b.memory.nocBytes) << label;
    EXPECT_EQ(a.memory.mshrStallCycles, b.memory.mshrStallCycles)
        << label;
    EXPECT_EQ(a.memory.peakOutstandingTxns,
              b.memory.peakOutstandingTxns)
        << label;
    // Cycle ledgers must be bit-identical across execution modes, and
    // the taxonomy must account for every clocked cycle exactly once.
    EXPECT_EQ(a.memory.ledger, b.memory.ledger) << label;
    EXPECT_EQ(a.memory.ledger.total(), a.cycles) << label;
    ASSERT_EQ(a.tiles.size(), b.tiles.size()) << label;
    for (size_t t = 0; t < a.tiles.size(); ++t) {
        const TileStats &ta = a.tiles[t];
        const TileStats &tb = b.tiles[t];
        const std::string at = label + " tile" + std::to_string(t);
        EXPECT_EQ(ta.firings, tb.firings) << at;
        EXPECT_EQ(ta.iterations, tb.iterations) << at;
        EXPECT_EQ(ta.fabricStallCycles, tb.fabricStallCycles) << at;
        EXPECT_EQ(ta.startupCycles, tb.startupCycles) << at;
        EXPECT_EQ(ta.spadBytes, tb.spadBytes) << at;
        EXPECT_EQ(ta.dmaBytes, tb.dmaBytes) << at;
        EXPECT_EQ(ta.recurrenceBytes, tb.recurrenceBytes) << at;
        EXPECT_EQ(ta.finishCycle, tb.finishCycle) << at;
        EXPECT_EQ(ta.ledger, tb.ledger) << at;
        EXPECT_EQ(ta.ledger.total(), a.cycles) << at;
    }
}

class EngineExactness
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EngineExactness, FastForwardIsBitIdentical)
{
    Compiled c = compileFor(GetParam(), 2);

    SimConfig naive;
    naive.noFastForward = true;
    SimRun reference = runWith(c, naive);
    EXPECT_TRUE(reference.result.completed) << GetParam();

    SimRun fast = runWith(c, SimConfig{});
    expectIdentical(reference.result, fast.result,
                    std::string(GetParam()) + " ff-vs-naive");

    // Debug mode: execute the skipped ranges anyway and assert every
    // cycle was quiescent (OG_ASSERTs fire inside on violation).
    SimConfig checked;
    checked.checkFastForward = true;
    SimRun check = runWith(c, checked);
    expectIdentical(reference.result, check.result,
                    std::string(GetParam()) + " check-vs-naive");
    EXPECT_EQ(check.result.skippedCycles, 0u);

    // Functional identity: the simulated memory images match too.
    for (const auto &array : c.spec.arrays) {
        EXPECT_EQ(reference.memory.array(array.name),
                  fast.memory.array(array.name))
            << GetParam() << " array " << array.name;
    }
}

TEST_P(EngineExactness, TelemetryCountersMatchAcrossModes)
{
    Compiled c = compileFor(GetParam(), 1);
    auto counters_with = [&](bool no_ff) {
        telemetry::SinkOptions sink_opts;
        telemetry::Sink sink(sink_opts);
        SimConfig config;
        config.noFastForward = no_ff;
        config.sink = &sink;
        SimRun run = runWith(c, config);
        EXPECT_TRUE(run.result.completed) << GetParam();
        return sink.registry().toJson().dump(2);
    };
    EXPECT_EQ(counters_with(true), counters_with(false)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, EngineExactness,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

TEST(Engine, FastForwardSkipsMostCyclesWhenMemoryBound)
{
    // A DRAM-limited point: 10 tiles share one channel, the L2 is too
    // small for the streamed array (miss-dominated) and fills take
    // 1000 cycles, so tiles spend most cycles ROB-stalled waiting on
    // DRAM. The engine must skip far more cycles than it executes.
    Compiled c = compileFor("accumulate", 10);
    c.spec = wl::makeAccumulate(64);
    c.design.sys.l2CapacityKiB = 16;
    c.design.sys.dramChannels = 1;
    auto variants = compiler::compileVariants(c.spec);
    sched::SpatialScheduler scheduler(c.design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    ASSERT_TRUE(fit.has_value());
    c.mdfg = std::move(variants[fit->second]);
    c.schedule = std::move(fit->first);

    SimConfig config;
    config.dramLatency = 1000;
    SimRun fast = runWith(c, config);
    ASSERT_TRUE(fast.result.completed);
    EXPECT_EQ(fast.result.tickedCycles + fast.result.skippedCycles,
              fast.result.cycles);
    EXPECT_GE(fast.result.skippedCycles,
              2 * fast.result.tickedCycles);

    SimConfig naive = config;
    naive.noFastForward = true;
    SimRun reference = runWith(c, naive);
    EXPECT_EQ(reference.result.skippedCycles, 0u);
    EXPECT_EQ(reference.result.tickedCycles, reference.result.cycles);
    expectIdentical(reference.result, fast.result, "memory-bound");
}

// ---------------------------------------------------------------------------
// Bandwidth-bound exactness: under channel/link saturation the memory
// system progresses nearly every cycle, so plain horizon jumps never
// open and the engine leans on drain-replay windows instead. The whole
// taxonomy must stay bit-identical across naive / fast-forward /
// checked execution on a grid of latency x channel-bandwidth x
// channel-count points.

struct BandwidthPoint
{
    const char *name;
    int dramLatency;
    int channelBandwidthBytes;
    int dramChannels;
};

const BandwidthPoint kBandwidthGrid[] = {
    { "lat60_bw8_1ch", 60, 8, 1 },
    { "lat60_bw8_4ch", 60, 8, 4 },
    { "lat60_bw16_1ch", 60, 16, 1 },
    { "lat60_bw16_4ch", 60, 16, 4 },
    { "lat600_bw8_1ch", 600, 8, 1 },
    { "lat600_bw8_4ch", 600, 8, 4 },
    { "lat600_bw16_1ch", 600, 16, 1 },
    { "lat600_bw16_4ch", 600, 16, 4 },
};

Compiled
compileBandwidthBound(int channels, int tiles = 2)
{
    Compiled c = compileFor("accumulate", tiles);
    // Starve the cache so the stream misses to DRAM throughout.
    c.design.sys.l2CapacityKiB = 16;
    c.design.sys.dramChannels = channels;
    return c;
}

class BandwidthExactness
    : public ::testing::TestWithParam<BandwidthPoint>
{
};

TEST_P(BandwidthExactness, DrainReplayIsBitIdentical)
{
    const BandwidthPoint &point = GetParam();
    Compiled c = compileBandwidthBound(point.dramChannels);

    SimConfig config;
    config.dramLatency = point.dramLatency;
    config.dramChannelBandwidthBytes = point.channelBandwidthBytes;

    SimConfig naive = config;
    naive.noFastForward = true;
    SimRun reference = runWith(c, naive);
    EXPECT_TRUE(reference.result.completed) << point.name;
    EXPECT_EQ(reference.result.drainedCycles, 0u) << point.name;

    SimRun fast = runWith(c, config);
    expectIdentical(reference.result, fast.result,
                    std::string(point.name) + " ff-vs-naive");

    SimConfig checked = config;
    checked.checkFastForward = true;
    SimRun check = runWith(c, checked);
    expectIdentical(reference.result, check.result,
                    std::string(point.name) + " check-vs-naive");
    // Check mode executes every skipped/drained cycle for real.
    EXPECT_EQ(check.result.skippedCycles, 0u) << point.name;
    // Both fast-forward modes must agree on the windows they found.
    EXPECT_EQ(fast.result.drainedCycles, check.result.drainedCycles)
        << point.name;
    EXPECT_EQ(fast.result.drainJumps, check.result.drainJumps)
        << point.name;

    for (const auto &array : c.spec.arrays) {
        EXPECT_EQ(reference.memory.array(array.name),
                  fast.memory.array(array.name))
            << point.name << " array " << array.name;
    }
}

INSTANTIATE_TEST_SUITE_P(BandwidthGrid, BandwidthExactness,
                         ::testing::ValuesIn(kBandwidthGrid),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

TEST(Engine, DrainReplayOpensWindowsWhenBandwidthBound)
{
    // The acceptance regime from bench/micro_sim: slow, narrow DRAM.
    // Dispatches happen every few cycles, so plain horizon jumps are
    // tiny — the drain fast path must carry the bulk of the run.
    Compiled c = compileBandwidthBound(1);
    SimConfig config;
    config.dramLatency = 4000;
    config.dramChannelBandwidthBytes = 16;
    SimRun fast = runWith(c, config);
    ASSERT_TRUE(fast.result.completed);
    EXPECT_GT(fast.result.drainJumps, 0u);
    EXPECT_GT(fast.result.drainedCycles, 0u);
    EXPECT_LE(fast.result.drainedCycles, fast.result.skippedCycles);
    EXPECT_EQ(fast.result.tickedCycles + fast.result.skippedCycles,
              fast.result.cycles);
    // The windows must cover a meaningful share of the run, or the
    // fast path has silently stopped engaging.
    EXPECT_GE(fast.result.skippedCycles, fast.result.tickedCycles);
}

TEST(Engine, WatchdogAbortIdenticalThroughDrainWindows)
{
    // A deadlock allowance shorter than the inter-dispatch gap: the
    // drain replay must stop at last_progress + deadlock - 1 and let
    // the engine's per-cycle loop reach the abort cycle itself.
    // bw=4 bytes/cycle on a 64-byte line means one dispatch per 16
    // cycles; deadlock=8 trips first.
    Compiled c = compileBandwidthBound(1, 1);
    SimConfig config;
    config.dramLatency = 600;
    config.dramChannelBandwidthBytes = 4;
    config.deadlockCycles = 8;

    SimRun fast = runWith(c, config);
    EXPECT_TRUE(fast.result.deadlocked);

    SimConfig naive = config;
    naive.noFastForward = true;
    SimRun reference = runWith(c, naive);
    EXPECT_TRUE(reference.result.deadlocked);
    expectIdentical(reference.result, fast.result, "drain-watchdog");
    EXPECT_EQ(reference.result.diagnostic, fast.result.diagnostic);

    SimConfig checked = config;
    checked.checkFastForward = true;
    SimRun check = runWith(c, checked);
    expectIdentical(reference.result, check.result,
                    "drain-watchdog-check");
    EXPECT_EQ(reference.result.diagnostic, check.result.diagnostic);
}

TEST(Engine, WatchdogAbortIdenticalWhenChannelsAreStarved)
{
    // Zero channel bandwidth: read misses queue forever, the memory
    // system eventually reports no future event (kNoEventCycle), and
    // the watchdog must abort at the same cycle in every mode.
    Compiled c = compileBandwidthBound(1, 1);
    SimConfig config;
    config.dramChannelBandwidthBytes = 0;
    config.deadlockCycles = 2'000;

    SimRun fast = runWith(c, config);
    EXPECT_TRUE(fast.result.deadlocked);

    SimConfig naive = config;
    naive.noFastForward = true;
    SimRun reference = runWith(c, naive);
    EXPECT_TRUE(reference.result.deadlocked);
    expectIdentical(reference.result, fast.result, "starved-watchdog");
    EXPECT_EQ(reference.result.diagnostic, fast.result.diagnostic);
}

TEST(Engine, WatchdogAbortsAtTheSameCycleInBothModes)
{
    // A deadlock allowance shorter than the DRAM round-trip turns the
    // first cold-miss wait into a watchdog abort; both modes must
    // abort at the identical cycle with identical partial stats.
    Compiled c = compileFor("accumulate", 1);
    c.design.sys.l2CapacityKiB = 16;
    SimConfig config;
    config.dramLatency = 2000;
    config.deadlockCycles = 500;

    SimRun fast = runWith(c, config);
    EXPECT_TRUE(fast.result.deadlocked);
    EXPECT_FALSE(fast.result.completed);
    EXPECT_LT(fast.result.cycles, 100'000u);

    config.noFastForward = true;
    SimRun reference = runWith(c, config);
    EXPECT_TRUE(reference.result.deadlocked);
    expectIdentical(reference.result, fast.result, "watchdog");
}

TEST(Engine, WatchdogDisabledByZero)
{
    Compiled c = compileFor("fir", 1);
    SimConfig config;
    config.deadlockCycles = 0;
    SimRun run = runWith(c, config);
    EXPECT_TRUE(run.result.completed);
    EXPECT_FALSE(run.result.deadlocked);
}

} // namespace
} // namespace overgen::sim
