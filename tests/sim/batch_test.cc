#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/batch.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

// sim::runBatch determinism: index-ordered results, bit-identical to
// a serial simulate() loop at every thread count, and safe to run
// with a shared telemetry sink (this binary runs under tsan in CI).

namespace overgen::sim {
namespace {

adg::SysAdg
testDesign(int tiles)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 4;
    design.sys.nocBytes = 32;
    return design;
}

struct Prepared
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

std::vector<Prepared>
prepareJobs()
{
    std::vector<wl::KernelSpec> specs = {
        wl::makeFir(128, 16),  wl::makeAccumulate(32),
        wl::makeBlur(16),      wl::makeVecMax(32),
        wl::makeDerivative(18), wl::makeAccWeight(16),
    };
    std::vector<Prepared> prepared;
    for (size_t i = 0; i < specs.size(); ++i) {
        Prepared p;
        p.spec = specs[i];
        p.design = testDesign(1 + static_cast<int>(i % 3));
        auto variants = compiler::compileVariants(p.spec);
        sched::SpatialScheduler scheduler(p.design.adg);
        auto fit = scheduler.scheduleFirstFit(variants);
        OG_ASSERT(fit.has_value(), "no schedule for ", p.spec.name);
        p.mdfg = std::move(variants[fit->second]);
        p.schedule = std::move(fit->first);
        prepared.push_back(std::move(p));
    }
    return prepared;
}

std::vector<SimJob>
toJobs(const std::vector<Prepared> &prepared,
       const SimConfig &config = {})
{
    std::vector<SimJob> jobs;
    for (const Prepared &p : prepared) {
        SimJob job;
        job.spec = &p.spec;
        job.mdfg = &p.mdfg;
        job.schedule = &p.schedule;
        job.design = &p.design;
        job.config = config;
        jobs.push_back(job);
    }
    return jobs;
}

void
expectIdentical(const SimResult &a, const SimResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalIterations, b.totalIterations) << label;
    EXPECT_EQ(a.ipc, b.ipc) << label;
    EXPECT_EQ(a.memory.nocBytes, b.memory.nocBytes) << label;
    EXPECT_EQ(a.memory.l2Hits, b.memory.l2Hits) << label;
    EXPECT_EQ(a.memory.l2Misses, b.memory.l2Misses) << label;
    ASSERT_EQ(a.tiles.size(), b.tiles.size()) << label;
    for (size_t t = 0; t < a.tiles.size(); ++t) {
        EXPECT_EQ(a.tiles[t].firings, b.tiles[t].firings) << label;
        EXPECT_EQ(a.tiles[t].finishCycle, b.tiles[t].finishCycle)
            << label;
    }
}

TEST(Batch, MatchesSerialSimulateLoop)
{
    std::vector<Prepared> prepared = prepareJobs();
    std::vector<SimJob> jobs = toJobs(prepared);

    std::vector<SimResult> serial;
    for (const Prepared &p : prepared) {
        wl::Memory memory;
        memory.init(p.spec);
        serial.push_back(simulate(p.spec, p.mdfg, p.schedule,
                                  p.design, memory, {}));
    }

    BatchOptions options;
    options.threads = 4;
    std::vector<SimResult> batched = runBatch(jobs, options);
    ASSERT_EQ(batched.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(batched[i].completed) << prepared[i].spec.name;
        expectIdentical(serial[i], batched[i],
                        prepared[i].spec.name);
    }
}

TEST(Batch, ThreadCountInvariant)
{
    std::vector<Prepared> prepared = prepareJobs();
    std::vector<SimJob> jobs = toJobs(prepared);
    BatchOptions one;
    one.threads = 1;
    BatchOptions four;
    four.threads = 4;
    std::vector<SimResult> a = runBatch(jobs, one);
    std::vector<SimResult> b = runBatch(jobs, four);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i], prepared[i].spec.name);
}

TEST(Batch, RunsOnCallerProvidedPool)
{
    std::vector<Prepared> prepared = prepareJobs();
    std::vector<SimJob> jobs = toJobs(prepared);
    ThreadPool pool(3);
    BatchOptions options;
    options.pool = &pool;
    std::vector<SimResult> pooled = runBatch(jobs, options);
    std::vector<SimResult> serial = runBatch(jobs, {});
    ASSERT_EQ(pooled.size(), serial.size());
    for (size_t i = 0; i < pooled.size(); ++i)
        expectIdentical(serial[i], pooled[i], prepared[i].spec.name);
}

TEST(Batch, SharedSinkCountersAreDeterministic)
{
    // Counter adds commute, so a shared sink must accumulate the same
    // registry totals batched as serial (and not trip tsan).
    std::vector<Prepared> prepared = prepareJobs();

    auto registry_with = [&](int threads) {
        telemetry::SinkOptions sink_opts;
        telemetry::Sink sink(sink_opts);
        SimConfig config;
        config.sink = &sink;
        std::vector<SimJob> jobs = toJobs(prepared, config);
        BatchOptions options;
        options.threads = threads;
        std::vector<SimResult> results = runBatch(jobs, options);
        for (const SimResult &r : results)
            EXPECT_TRUE(r.completed);
        return sink.registry().toJson().dump(2);
    };
    EXPECT_EQ(registry_with(1), registry_with(4));
}

TEST(Batch, CallerMemoryImageIsUsed)
{
    std::vector<Prepared> prepared = prepareJobs();
    const Prepared &p = prepared.front();
    wl::Memory memory;
    memory.init(p.spec);
    SimJob job;
    job.spec = &p.spec;
    job.mdfg = &p.mdfg;
    job.schedule = &p.schedule;
    job.design = &p.design;
    job.memory = &memory;
    std::vector<SimResult> results = runBatch({ job }, {});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].completed);

    wl::Memory reference;
    reference.init(p.spec);
    wl::interpret(p.spec, reference);
    for (const auto &array : p.spec.arrays) {
        EXPECT_EQ(memory.array(array.name),
                  reference.array(array.name))
            << array.name;
    }
}

TEST(Batch, EmptyBatchIsFine)
{
    EXPECT_TRUE(runBatch({}, {}).empty());
}

} // namespace
} // namespace overgen::sim
