#include <gtest/gtest.h>

#include "sim/memory_system.h"

namespace overgen::sim {
namespace {

adg::SystemParams
smallSys(int tiles = 1, int banks = 2, int channels = 1)
{
    adg::SystemParams sys;
    sys.numTiles = tiles;
    sys.l2Banks = banks;
    sys.l2CapacityKiB = 64;
    sys.nocBytes = 32;
    sys.dramChannels = channels;
    return sys;
}

/** Run until @p id completes; @return cycles taken (or -1). */
int64_t
runUntilDone(MemorySystem &mem, TxnId id, int limit = 10000)
{
    for (int c = 0; c < limit; ++c) {
        mem.tick();
        if (mem.consumeCompleted(id))
            return c + 1;
    }
    return -1;
}

TEST(MemorySystem, ColdReadMissesToDram)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    TxnId id = mem.submit(0, 0, 64, false);
    int64_t cycles = runUntilDone(mem, id);
    ASSERT_GT(cycles, 0);
    EXPECT_GE(cycles, config.dramLatency);
    EXPECT_EQ(mem.stats().l2Misses, 1u);
    EXPECT_EQ(mem.stats().dramBytesRead, 64u);
}

TEST(MemorySystem, SecondReadHits)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    runUntilDone(mem, mem.submit(0, 0, 64, false));
    TxnId second = mem.submit(0, 0, 64, false);
    int64_t cycles = runUntilDone(mem, second);
    ASSERT_GT(cycles, 0);
    EXPECT_LT(cycles, config.dramLatency);
    EXPECT_EQ(mem.stats().l2Hits, 1u);
    EXPECT_EQ(mem.stats().dramBytesRead, 64u);  // no second fetch
}

TEST(MemorySystem, MshrMergeAvoidsDoubleFetch)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    TxnId a = mem.submit(0, 0, 32, false);
    TxnId b = mem.submit(0, 32, 32, false);  // same line
    ASSERT_GT(runUntilDone(mem, a), 0);
    EXPECT_TRUE(mem.consumeCompleted(b));
    EXPECT_EQ(mem.stats().dramBytesRead, 64u);
    EXPECT_EQ(mem.stats().l2Misses, 1u);
    EXPECT_EQ(mem.stats().l2Hits, 1u);  // merged into the fill
}

TEST(MemorySystem, WriteAllocateNoFetch)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    TxnId id = mem.submit(0, 0, 64, true);
    int64_t cycles = runUntilDone(mem, id);
    ASSERT_GT(cycles, 0);
    EXPECT_LT(cycles, config.dramLatency);  // no fetch on write
    EXPECT_EQ(mem.stats().dramBytesRead, 0u);
}

TEST(MemorySystem, DirtyEvictionWritesBack)
{
    SimConfig config;
    // Tiny cache: 8 KiB, 1 bank, 8 ways -> 16 sets; fill > capacity.
    adg::SystemParams sys = smallSys(1, 1);
    sys.l2CapacityKiB = 8;
    MemorySystem mem(sys, config);
    // Dirty many distinct lines (> capacity of 128 lines).
    for (int i = 0; i < 256; ++i) {
        TxnId id = mem.submit(0, static_cast<uint64_t>(i) * 64, 64,
                              true);
        ASSERT_GT(runUntilDone(mem, id), 0);
    }
    EXPECT_GT(mem.stats().dramBytesWritten, 0u);
}

TEST(MemorySystem, DramBandwidthBoundsThroughput)
{
    SimConfig config;
    MemorySystem mem(smallSys(1, 4, 1), config);
    // 64 distinct cold lines: 4096 bytes at 32 B/cycle >= 128 cycles.
    std::vector<TxnId> ids;
    uint64_t start = mem.now();
    int done = 0;
    uint64_t submitted = 0;
    while (done < 64) {
        if (submitted < 64 && mem.canAccept(0)) {
            ids.push_back(mem.submit(
                0, submitted * 64 + 1024 * 1024, 64, false));
            ++submitted;
        }
        mem.tick();
        for (auto it = ids.begin(); it != ids.end();) {
            if (mem.consumeCompleted(*it)) {
                ++done;
                it = ids.erase(it);
            } else {
                ++it;
            }
        }
    }
    uint64_t elapsed = mem.now() - start;
    EXPECT_GE(elapsed, 64u * 64u / 32u);
}

TEST(MemorySystem, MoreChannelsFaster)
{
    auto run = [](int channels) {
        SimConfig config;
        // Narrow channels so DRAM is the bottleneck under test.
        config.dramChannelBandwidthBytes = 16;
        adg::SystemParams sys = smallSys(1, 8, channels);
        sys.nocBytes = 128;
        MemorySystem mem(sys, config);
        std::vector<TxnId> ids;
        uint64_t submitted = 0;
        int done = 0;
        while (done < 128) {
            if (submitted < 128 && mem.canAccept(0)) {
                ids.push_back(mem.submit(
                    0, submitted * 64 + 4 * 1024 * 1024, 64, false));
                ++submitted;
            }
            mem.tick();
            for (auto it = ids.begin(); it != ids.end();) {
                if (mem.consumeCompleted(*it)) {
                    ++done;
                    it = ids.erase(it);
                } else {
                    ++it;
                }
            }
        }
        return mem.now();
    };
    EXPECT_LT(run(4), run(1));
}

TEST(MemorySystem, PerTileQueueBounded)
{
    SimConfig config;
    MemorySystem mem(smallSys(2), config);
    int accepted = 0;
    while (mem.canAccept(0)) {
        mem.submit(0, static_cast<uint64_t>(accepted) * 64, 64, false);
        ++accepted;
    }
    EXPECT_EQ(accepted, 64);
    EXPECT_TRUE(mem.canAccept(1));  // other tiles unaffected
}

TEST(MemorySystem, PeakOutstandingTracksHighWaterMark)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    EXPECT_EQ(mem.stats().peakOutstandingTxns, 0u);
    std::vector<TxnId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(
            mem.submit(0, static_cast<uint64_t>(i) * 64, 64, false));
    EXPECT_EQ(mem.stats().peakOutstandingTxns, 8u);
    for (TxnId id : ids)
        ASSERT_GT(runUntilDone(mem, id), 0);
    // Draining never lowers the high-water mark; a smaller burst
    // never raises it.
    EXPECT_EQ(mem.stats().peakOutstandingTxns, 8u);
    TxnId extra = mem.submit(0, 4096, 64, false);
    EXPECT_EQ(mem.stats().peakOutstandingTxns, 8u);
    ASSERT_GT(runUntilDone(mem, extra), 0);
}

TEST(MemorySystem, CompletedMapIsBounded)
{
    // Polled completions leave the table: after every id is consumed,
    // nothing is outstanding even though many were submitted.
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    for (int round = 0; round < 4; ++round) {
        std::vector<TxnId> ids;
        for (int i = 0; i < 16; ++i)
            ids.push_back(mem.submit(
                0, static_cast<uint64_t>(round * 16 + i) * 64, 64,
                false));
        for (TxnId id : ids)
            ASSERT_GT(runUntilDone(mem, id), 0);
        EXPECT_FALSE(mem.busy());
    }
    EXPECT_LE(mem.stats().peakOutstandingTxns, 16u);
}

TEST(MemorySystem, BusyReflectsInFlight)
{
    SimConfig config;
    MemorySystem mem(smallSys(), config);
    EXPECT_FALSE(mem.busy());
    TxnId id = mem.submit(0, 0, 64, false);
    EXPECT_TRUE(mem.busy());
    runUntilDone(mem, id);
    EXPECT_FALSE(mem.busy());
}

} // namespace
} // namespace overgen::sim
