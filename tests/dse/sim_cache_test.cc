#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "dse/explorer.h"
#include "dse/sim_cache.h"
#include "model/resource_model.h"
#include "sched/scheduler.h"
#include "workloads/suites.h"

// Warm-started incremental validation: every warmSimulate path —
// cold miss, terminal hit, truncation resume — must return SimResults
// bit-identical to a plain cold simulate() of the same inputs. The
// cache changes wall-clock, never the answer.

namespace overgen::dse {
namespace {

struct Compiled
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

Compiled
compileAccumulate()
{
    Compiled c;
    c.spec = wl::makeAccumulate(64);
    adg::MeshConfig mesh;
    mesh.rows = 4;
    mesh.cols = 4;
    mesh.numPes = 8;
    mesh.numInPorts = 8;
    mesh.numOutPorts = 4;
    mesh.datapathBytes = 64;
    mesh.spadCapacityKiB = 64;
    mesh.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    mesh.peCapabilities = caps;
    c.design.adg = adg::buildMeshTile(mesh);
    c.design.sys.numTiles = 2;
    c.design.sys.l2Banks = 8;
    c.design.sys.nocBytes = 64;
    c.design.sys.l2CapacityKiB = 16;  // miss-dominated: a long run
    auto variants = compiler::compileVariants(c.spec);
    sched::SpatialScheduler scheduler(c.design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OG_ASSERT(fit.has_value(), "no schedule for accumulate");
    c.mdfg = std::move(variants[fit->second]);
    c.schedule = std::move(fit->first);
    return c;
}

void
expectIdentical(const sim::SimResult &a, const sim::SimResult &b,
                const std::string &label)
{
    EXPECT_EQ(a.completed, b.completed) << label;
    EXPECT_EQ(a.deadlocked, b.deadlocked) << label;
    EXPECT_EQ(a.cycles, b.cycles) << label;
    EXPECT_EQ(a.totalIterations, b.totalIterations) << label;
    EXPECT_EQ(a.ipc, b.ipc) << label;
    EXPECT_EQ(a.memory.l2Hits, b.memory.l2Hits) << label;
    EXPECT_EQ(a.memory.l2Misses, b.memory.l2Misses) << label;
    EXPECT_EQ(a.memory.dramBytesRead, b.memory.dramBytesRead)
        << label;
    EXPECT_EQ(a.memory.ledger, b.memory.ledger) << label;
    ASSERT_EQ(a.tiles.size(), b.tiles.size()) << label;
    for (size_t t = 0; t < a.tiles.size(); ++t) {
        EXPECT_EQ(a.tiles[t].firings, b.tiles[t].firings) << label;
        EXPECT_EQ(a.tiles[t].iterations, b.tiles[t].iterations)
            << label;
        EXPECT_EQ(a.tiles[t].finishCycle, b.tiles[t].finishCycle)
            << label;
        EXPECT_EQ(a.tiles[t].ledger, b.tiles[t].ledger) << label;
    }
}

TEST(WarmSimCache, KeyDigestSeparatesInputs)
{
    Compiled c = compileAccumulate();
    sim::SimConfig config;
    uint64_t base =
        simKeyDigest(c.spec, c.mdfg, c.schedule, c.design, config);
    EXPECT_EQ(simKeyDigest(c.spec, c.mdfg, c.schedule, c.design,
                           config),
              base);
    // maxCycles is deliberately NOT part of the identity.
    sim::SimConfig longer = config;
    longer.maxCycles *= 2;
    EXPECT_EQ(simKeyDigest(c.spec, c.mdfg, c.schedule, c.design,
                           longer),
              base);
    // Functional differences are.
    sim::SimConfig slow = config;
    slow.dramLatency += 1;
    EXPECT_NE(
        simKeyDigest(c.spec, c.mdfg, c.schedule, c.design, slow),
        base);
    adg::SysAdg other = c.design;
    other.sys.l2Banks *= 2;
    EXPECT_NE(simKeyDigest(c.spec, c.mdfg, c.schedule, other, config),
              base);
    wl::KernelSpec bigger = wl::makeAccumulate(128);
    EXPECT_NE(
        simKeyDigest(bigger, c.mdfg, c.schedule, c.design, config),
        base);
}

TEST(WarmSimCache, TerminalHitReturnsBitIdenticalResult)
{
    Compiled c = compileAccumulate();
    sim::SimConfig config;

    sim::SimResult cold = warmSimulate(nullptr, c.spec, c.mdfg,
                                       c.schedule, c.design, config);
    ASSERT_TRUE(cold.completed);

    WarmSimCache cache;
    WarmSimReport report;
    sim::SimResult first =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     config, 0, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::Miss);
    expectIdentical(cold, first, "first-fill");

    sim::SimResult second =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     config, 0, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::TerminalHit);
    expectIdentical(cold, second, "terminal-hit");

    WarmSimStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.terminalHits, 1u);
    EXPECT_EQ(stats.resumes, 0u);
}

TEST(WarmSimCache, TruncatedProbeResumesOnlyTheSuffix)
{
    Compiled c = compileAccumulate();
    sim::SimConfig full;
    sim::SimResult cold = warmSimulate(nullptr, c.spec, c.mdfg,
                                       c.schedule, c.design, full);
    ASSERT_TRUE(cold.completed);
    ASSERT_GT(cold.cycles, 400u)
        << "workload too short to truncate meaningfully";

    // Probe at a budget the run cannot finish in; the probe leaves
    // its last checkpoint in the cache.
    WarmSimCache cache;
    sim::SimConfig probe;
    probe.maxCycles = cold.cycles / 2;
    probe.deadlockCycles = full.deadlockCycles;
    WarmSimReport report;
    sim::SimResult truncated =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     probe, 32, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::Miss);
    EXPECT_FALSE(truncated.completed);
    EXPECT_FALSE(truncated.deadlocked);

    // Promote to the full budget: the evaluation resumes from the
    // probe's checkpoint and must equal the cold full run bitwise.
    sim::SimResult promoted =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     full, 32, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::Resumed);
    EXPECT_GT(report.cyclesSkipped, 0u);
    expectIdentical(cold, promoted, "probe-promote");

    // The promotion stored a terminal entry: a third request hits.
    sim::SimResult again =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     full, 32, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::TerminalHit);
    expectIdentical(cold, again, "post-promote-hit");

    WarmSimStats stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.resumes, 1u);
    EXPECT_EQ(stats.terminalHits, 1u);
    EXPECT_GT(stats.cyclesSkipped, 0u);
}

TEST(WarmSimCache, SmallerBudgetThanStoredProbeMisses)
{
    Compiled c = compileAccumulate();
    sim::SimConfig full;
    sim::SimResult cold = warmSimulate(nullptr, c.spec, c.mdfg,
                                       c.schedule, c.design, full);
    ASSERT_TRUE(cold.completed);
    ASSERT_GT(cold.cycles, 400u);

    WarmSimCache cache;
    sim::SimConfig probe;
    probe.maxCycles = cold.cycles / 2;
    (void)warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                       probe, 32);

    // A request with an even smaller budget is a different prefix —
    // the stored endpoint must not be resumed for it.
    sim::SimConfig smaller;
    smaller.maxCycles = cold.cycles / 4;
    WarmSimReport report;
    sim::SimResult cold_small = warmSimulate(
        nullptr, c.spec, c.mdfg, c.schedule, c.design, smaller);
    sim::SimResult small =
        warmSimulate(&cache, c.spec, c.mdfg, c.schedule, c.design,
                     smaller, 32, &report);
    EXPECT_EQ(report.how, WarmSimOutcome::Miss);
    expectIdentical(cold_small, small, "smaller-budget");
}

// ---------------------------------------------------------------------------
// Explorer integration: warm validation == cold validation, bit for
// bit, and a re-exploration of the same domain validates entirely
// from the cache.

const model::FpgaResourceModel &
testModel()
{
    static model::FpgaResourceModel m = [] {
        model::ResourceModelConfig config;
        config.peSamples = 800;
        config.switchSamples = 400;
        config.inPortSamples = 300;
        config.outPortSamples = 300;
        config.train.epochs = 50;
        return model::FpgaResourceModel::train(config);
    }();
    return m;
}

DseOptions
fastOptions()
{
    DseOptions options;
    options.iterations = 8;
    options.tileCountGrid = { 1, 2, 4 };
    options.l2BankGrid = { 4, 8 };
    options.nocBytesGrid = { 32 };
    options.l2CapacityGrid = { 512 };
    options.validateFinal = true;
    return options;
}

TEST(ExplorerWarmValidation, WarmEqualsColdAndRerunHitsOutright)
{
    std::vector<wl::KernelSpec> kernels = { wl::makeMm(16),
                                            wl::makeAccumulate(16) };

    DseResult cold =
        exploreOverlay(kernels, fastOptions(), &testModel());
    ASSERT_EQ(cold.mappings.size(), kernels.size());
    EXPECT_EQ(cold.simTerminalHits, 0u);
    EXPECT_EQ(cold.simMisses, 0u);  // runBatch path: no cache traffic

    WarmSimCache cache;
    DseOptions warm_options = fastOptions();
    warm_options.simCache = &cache;
    DseResult warm =
        exploreOverlay(kernels, warm_options, &testModel());
    ASSERT_EQ(warm.mappings.size(), kernels.size());
    EXPECT_EQ(warm.simMisses, kernels.size());
    for (size_t k = 0; k < kernels.size(); ++k) {
        EXPECT_TRUE(warm.mappings[k].simulated);
        EXPECT_EQ(cold.mappings[k].simCompleted,
                  warm.mappings[k].simCompleted)
            << kernels[k].name;
        EXPECT_EQ(cold.mappings[k].simulatedCycles,
                  warm.mappings[k].simulatedCycles)
            << kernels[k].name;
        EXPECT_EQ(cold.mappings[k].simulatedIpc,
                  warm.mappings[k].simulatedIpc)
            << kernels[k].name;
    }

    // The anneal is seeded, so re-exploring the same domain lands on
    // the same design — every validation is now a terminal hit, and
    // the numbers still match the cold run exactly.
    DseResult rerun =
        exploreOverlay(kernels, warm_options, &testModel());
    EXPECT_EQ(rerun.simTerminalHits, kernels.size());
    EXPECT_EQ(rerun.simMisses, 0u);
    for (size_t k = 0; k < kernels.size(); ++k) {
        EXPECT_EQ(cold.mappings[k].simulatedCycles,
                  rerun.mappings[k].simulatedCycles)
            << kernels[k].name;
        EXPECT_EQ(cold.mappings[k].simulatedIpc,
                  rerun.mappings[k].simulatedIpc)
            << kernels[k].name;
    }
}

} // namespace
} // namespace overgen::dse
