#include <gtest/gtest.h>

#include "dse/explorer.h"
#include "sim/simulate.h"
#include "model/resource_model.h"
#include "workloads/suites.h"

namespace overgen::dse {
namespace {

/** Fast-to-train resource model shared by tests in this file. */
const model::FpgaResourceModel &
testModel()
{
    static model::FpgaResourceModel m = [] {
        model::ResourceModelConfig config;
        config.peSamples = 800;
        config.switchSamples = 400;
        config.inPortSamples = 300;
        config.outPortSamples = 300;
        config.train.epochs = 50;
        return model::FpgaResourceModel::train(config);
    }();
    return m;
}

/** Small suite so exploration runs in seconds. */
std::vector<wl::KernelSpec>
smallSuite()
{
    return { wl::makeMm(16), wl::makeAccumulate(16),
             wl::makeFir(128, 16) };
}

DseOptions
fastOptions(int iterations = 12)
{
    DseOptions options;
    options.iterations = iterations;
    options.tileCountGrid = { 1, 2, 4, 8 };
    options.l2BankGrid = { 4, 8 };
    options.nocBytesGrid = { 32 };
    options.l2CapacityGrid = { 512 };
    return options;
}

TEST(SeedTile, CoversDomainCapabilities)
{
    adg::Adg tile = seedTile(smallSuite());
    EXPECT_EQ(tile.validate(), "");
    bool has_f64_mul = false, has_i16_add = false;
    for (adg::NodeId pe : tile.nodeIdsOfKind(adg::NodeKind::Pe)) {
        const auto &caps = tile.node(pe).pe().capabilities;
        has_f64_mul |= caps.count({ Opcode::Mul, DataType::F64 }) > 0;
        has_i16_add |= caps.count({ Opcode::Add, DataType::I16 }) > 0;
    }
    EXPECT_TRUE(has_f64_mul);  // mm / fir
    EXPECT_TRUE(has_i16_add);  // accumulate
}

TEST(SeedTile, IndirectOnlyWhenNeeded)
{
    adg::Adg no_indirect = seedTile(smallSuite());
    for (adg::NodeId id :
         no_indirect.nodeIdsOfKind(adg::NodeKind::Dma)) {
        EXPECT_FALSE(no_indirect.node(id).dma().indirect);
    }
    adg::Adg with_indirect = seedTile({ wl::makeEllpack(32, 4) });
    bool indirect = false;
    for (adg::NodeId id :
         with_indirect.nodeIdsOfKind(adg::NodeKind::Dma)) {
        indirect |= with_indirect.node(id).dma().indirect;
    }
    EXPECT_TRUE(indirect);
}

TEST(Explorer, ProducesValidFittingDesign)
{
    DseResult r =
        exploreOverlay(smallSuite(), fastOptions(), &testModel());
    EXPECT_EQ(r.design.adg.validate(), "");
    EXPECT_GT(r.objective, 0.0);
    EXPECT_LE(r.utilization, 0.97);
    EXPECT_EQ(r.mappings.size(), 3u);
    EXPECT_EQ(r.schedules.size(), 3u);
    for (const auto &schedule : r.schedules)
        EXPECT_TRUE(schedule.valid);
    for (const auto &mapping : r.mappings) {
        EXPECT_GE(mapping.variantIndex, 0);
        EXPECT_GT(mapping.estimatedIpc, 0.0);
    }
}

TEST(Explorer, FinalSchedulesCheckAgainstDesign)
{
    DseResult r =
        exploreOverlay(smallSuite(), fastOptions(), &testModel());
    for (size_t k = 0; k < r.schedules.size(); ++k) {
        EXPECT_EQ(sched::checkSchedule(r.schedules[k], r.design.adg,
                                       r.mdfgs[k]),
                  "")
            << r.mappings[k].kernel;
    }
}

TEST(Explorer, DeterministicForSeed)
{
    DseOptions options = fastOptions(8);
    options.seed = 42;
    DseResult a = exploreOverlay(smallSuite(), options, &testModel());
    DseResult b = exploreOverlay(smallSuite(), options, &testModel());
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
    EXPECT_EQ(a.design.sys, b.design.sys);
    EXPECT_EQ(a.design.adg.numNodes(), b.design.adg.numNodes());
}

TEST(Explorer, ObjectiveNeverRegressesAlongConvergence)
{
    DseResult r =
        exploreOverlay(smallSuite(), fastOptions(16), &testModel());
    ASSERT_GE(r.convergence.size(), 2u);
    for (size_t i = 1; i < r.convergence.size(); ++i) {
        EXPECT_GE(r.convergence[i].estimatedIpc,
                  r.convergence[i - 1].estimatedIpc - 1e-9);
    }
}

TEST(Explorer, MoreIterationsNotWorse)
{
    DseOptions short_run = fastOptions(4);
    DseOptions long_run = fastOptions(24);
    double short_obj =
        exploreOverlay(smallSuite(), short_run, &testModel())
            .objective;
    double long_obj =
        exploreOverlay(smallSuite(), long_run, &testModel()).objective;
    EXPECT_GE(long_obj, short_obj * 0.999);
}

TEST(Explorer, SingleKernelDomainSpecializes)
{
    DseResult r = exploreOverlay({ wl::makeAccumulate(16) },
                                 fastOptions(16), &testModel());
    // An i16 pointwise kernel never needs float dividers; after
    // pruning-driven exploration the total float-div capability count
    // should have dropped versus the seed.
    int seed_divs = 0, final_divs = 0;
    adg::Adg seed = seedTile({ wl::makeAccumulate(16) });
    for (adg::NodeId pe : seed.nodeIdsOfKind(adg::NodeKind::Pe)) {
        seed_divs += static_cast<int>(
            seed.node(pe).pe().capabilities.count(
                { Opcode::Div, DataType::F64 }));
    }
    for (adg::NodeId pe :
         r.design.adg.nodeIdsOfKind(adg::NodeKind::Pe)) {
        final_divs += static_cast<int>(
            r.design.adg.node(pe).pe().capabilities.count(
                { Opcode::Div, DataType::F64 }));
    }
    EXPECT_LE(final_divs, seed_divs);
    EXPECT_GT(r.objective, 0.0);
}

TEST(Explorer, TracksAcceptanceStats)
{
    DseResult r =
        exploreOverlay(smallSuite(), fastOptions(10), &testModel());
    EXPECT_EQ(r.iterationsRun, 10);
    EXPECT_LE(r.accepted + r.abandoned, r.iterationsRun);
    EXPECT_GT(r.elapsedSeconds, 0.0);
}

TEST(Explorer, ValidateFinalSimulatesMappings)
{
    DseOptions options = fastOptions(6);
    options.validateFinal = true;
    options.threads = 4;
    DseResult r = exploreOverlay(smallSuite(), options, &testModel());
    ASSERT_EQ(r.mappings.size(), 3u);
    std::vector<wl::KernelSpec> suite = smallSuite();
    for (size_t k = 0; k < r.mappings.size(); ++k) {
        const KernelMapping &mapping = r.mappings[k];
        EXPECT_TRUE(mapping.simulated) << mapping.kernel;
        EXPECT_TRUE(mapping.simCompleted) << mapping.kernel;
        EXPECT_GT(mapping.simulatedCycles, 0u) << mapping.kernel;
        EXPECT_GT(mapping.simulatedIpc, 0.0) << mapping.kernel;
        // The batched validation matches a direct simulation of the
        // same mapping exactly.
        wl::Memory memory;
        memory.init(suite[k]);
        sim::SimResult direct =
            sim::simulate(suite[k], r.mdfgs[k], r.schedules[k],
                          r.design, memory, {});
        EXPECT_EQ(mapping.simulatedCycles, direct.cycles)
            << mapping.kernel;
        EXPECT_EQ(mapping.simulatedIpc, direct.ipc) << mapping.kernel;
    }
}

TEST(Explorer, ValidateFinalOffLeavesMappingsUnsimulated)
{
    DseResult r =
        exploreOverlay(smallSuite(), fastOptions(4), &testModel());
    for (const KernelMapping &mapping : r.mappings) {
        EXPECT_FALSE(mapping.simulated);
        EXPECT_EQ(mapping.simulatedCycles, 0u);
    }
}

} // namespace
} // namespace overgen::dse
