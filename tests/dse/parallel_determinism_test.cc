#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "dse/explorer.h"
#include "model/resource_model.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

namespace overgen {
namespace {

/**
 * The determinism contract (DESIGN.md "Determinism under
 * parallelism"): `DseOptions::threads` changes wall-clock only. Every
 * thread count must walk the exact same annealing trajectory —
 * per-candidate Rng streams are split off the master seed before any
 * parallel work, and accept decisions are applied in fixed candidate
 * order — so the best design, its objective, and the telemetry record
 * stream are bit-identical across thread counts.
 */

/** Fast-training resource model shared across this file. */
const model::FpgaResourceModel &
testModel()
{
    static model::FpgaResourceModel m = [] {
        model::ResourceModelConfig config;
        config.peSamples = 600;
        config.switchSamples = 300;
        config.inPortSamples = 200;
        config.outPortSamples = 200;
        config.train.epochs = 40;
        return model::FpgaResourceModel::train(config);
    }();
    return m;
}

struct ExploreRun
{
    dse::DseResult result;
    /** The per-iteration JSONL stream with wall-clock fields zeroed
     * — everything else in a record derives from the trajectory. */
    std::vector<std::string> records;
};

std::vector<std::string>
canonicalRecords(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    for (const std::string &line : lines) {
        Json record = Json::parse(line);
        record.set("seconds", Json(0.0));
        // Cache traffic is wall-clock-flavored observability (racing
        // workers shift the hit/miss split between identical
        // trajectories), so it sits outside the determinism contract
        // just like "seconds".
        record.asObject().erase("cache");
        // Heartbeat rate fields are wall-clock-flavored too.
        record.asObject().erase("candidates_per_sec");
        record.asObject().erase("cache_hit_rate");
        out.push_back(record.dump());
    }
    return out;
}

ExploreRun
explore(int threads, uint64_t seed,
        dse::DseObjective objective = dse::DseObjective::Scalar,
        bool validate_final = false)
{
    std::vector<wl::KernelSpec> domain = { wl::makeFir(128, 16),
                                           wl::makeAccumulate(16) };
    telemetry::Sink sink;
    dse::DseOptions options;
    options.seed = seed;
    options.iterations = 10;
    options.threads = threads;
    options.tileCountGrid = { 1, 2, 4 };
    options.l2BankGrid = { 4, 8 };
    options.nocBytesGrid = { 64 };
    options.l2CapacityGrid = { 512 };
    options.sink = &sink;
    options.telemetryLabel = "determinism";
    options.objective = objective;
    options.validateFinal = validate_final;
    ExploreRun run;
    run.result = dse::exploreOverlay(domain, options, &testModel());
    run.records = canonicalRecords(sink.dseLines());
    return run;
}

void
expectIdentical(const ExploreRun &a, const ExploreRun &b, const std::string &label)
{
    // Bit-identical design: the full ADG + system-parameter JSON
    // serialization must match byte for byte.
    EXPECT_EQ(a.result.design.toJson().dump(),
              b.result.design.toJson().dump())
        << label;
    // Exact double equality is intentional — the trajectories must be
    // the same computation, not merely close.
    EXPECT_EQ(a.result.objective, b.result.objective) << label;
    EXPECT_EQ(a.result.iterationsRun, b.result.iterationsRun) << label;
    EXPECT_EQ(a.result.accepted, b.result.accepted) << label;
    EXPECT_EQ(a.result.abandoned, b.result.abandoned) << label;
    EXPECT_EQ(a.result.evaluated, b.result.evaluated) << label;
    EXPECT_EQ(a.result.discarded, b.result.discarded) << label;
    // One JSONL record per examined iteration, identical except for
    // wall-clock timestamps.
    EXPECT_EQ(a.records, b.records) << label;

    // Same per-kernel mappings on the final design.
    ASSERT_EQ(a.result.mappings.size(), b.result.mappings.size());
    for (size_t i = 0; i < a.result.mappings.size(); ++i) {
        EXPECT_EQ(a.result.mappings[i].variantIndex,
                  b.result.mappings[i].variantIndex)
            << label;
        EXPECT_EQ(a.result.mappings[i].estimatedIpc,
                  b.result.mappings[i].estimatedIpc)
            << label;
    }

    // Same convergence history (timestamps aside — those are
    // wall-clock, explicitly outside the contract).
    ASSERT_EQ(a.result.convergence.size(), b.result.convergence.size())
        << label;
    for (size_t i = 0; i < a.result.convergence.size(); ++i) {
        EXPECT_EQ(a.result.convergence[i].iteration,
                  b.result.convergence[i].iteration)
            << label;
        EXPECT_EQ(a.result.convergence[i].estimatedIpc,
                  b.result.convergence[i].estimatedIpc)
            << label;
    }
}

TEST(ParallelDeterminism, ThreadCountDoesNotChangeTrajectory)
{
    ExploreRun serial = explore(1, 42);
    ExploreRun two = explore(2, 42);
    ExploreRun eight = explore(8, 42);
    expectIdentical(serial, two, "threads 1 vs 2");
    expectIdentical(serial, eight, "threads 1 vs 8");
}

TEST(ParallelDeterminism, RerunWithSameSeedIsReproducible)
{
    ExploreRun first = explore(4, 7);
    ExploreRun second = explore(4, 7);
    expectIdentical(first, second, "same seed, same threads");
}

TEST(ParallelDeterminism, DifferentSeedsDiverge)
{
    // Sanity check that the comparisons above have teeth: different
    // seeds draw different mutations, so the per-iteration record
    // streams must differ even if both searches end at similar
    // designs.
    ExploreRun a = explore(2, 1);
    ExploreRun b = explore(2, 99);
    EXPECT_NE(a.records, b.records);
}

TEST(ParallelDeterminism, PhaseObjectiveTrajectoryIsThreadIndependent)
{
    // The phase-aware objective weights candidate IPC by modeled
    // steady fractions and (with validateFinal) runs the measured
    // refinement pass over ramp-dominated mappings; both are part of
    // the same determinism contract — the trajectory, the final
    // mappings, and the refined simulated cycle counts must be
    // bit-identical across thread counts.
    auto phase_run = [](int threads) {
        return explore(threads, 42, dse::DseObjective::Phase,
                       /*validate_final=*/true);
    };
    ExploreRun serial = phase_run(1);
    ExploreRun four = phase_run(4);
    expectIdentical(serial, four, "phase objective threads 1 vs 4");
    ASSERT_EQ(serial.result.mappings.size(),
              four.result.mappings.size());
    for (size_t i = 0; i < serial.result.mappings.size(); ++i) {
        EXPECT_EQ(serial.result.mappings[i].simulatedCycles,
                  four.result.mappings[i].simulatedCycles)
            << i;
        EXPECT_EQ(serial.result.mappings[i].estimatedSteadyFraction,
                  four.result.mappings[i].estimatedSteadyFraction)
            << i;
        EXPECT_EQ(serial.result.mappings[i].estimatedRampCycles,
                  four.result.mappings[i].estimatedRampCycles)
            << i;
    }
}

TEST(ParallelDeterminism, EvaluationCountIsThreadIndependent)
{
    // The speculation width (not the thread count) fixes how many
    // candidates each round evaluates, so total work is identical at
    // any thread count — measured speedup is pure parallelism.
    ExploreRun serial = explore(1, 5);
    ExploreRun parallel = explore(8, 5);
    EXPECT_EQ(serial.result.evaluated, parallel.result.evaluated);
    EXPECT_EQ(serial.result.discarded, parallel.result.discarded);
    EXPECT_EQ(serial.result.evaluated,
              serial.result.iterationsRun + serial.result.discarded);
}

} // namespace
} // namespace overgen
