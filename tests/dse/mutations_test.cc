#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "dse/mutations.h"
#include "sched/scheduler.h"
#include "workloads/suites.h"

namespace overgen::dse {
namespace {

adg::Adg
smallTile()
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 6;
    config.numOutPorts = 3;
    config.datapathBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    auto f64 = adg::floatCapabilities(DataType::F64);
    caps.insert(f64.begin(), f64.end());
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

TEST(Mutations, CollapsePreservesConnectivity)
{
    adg::Adg tile = smallTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 2, false, false);
    sched::SpatialScheduler scheduler(tile);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());

    // Find a switch on some route and collapse it.
    adg::NodeId victim = adg::invalidNode;
    for (const auto &[edge_index, route] : schedule->routes) {
        for (size_t h = 0; h + 1 < route.size(); ++h) {
            adg::NodeId mid = tile.edge(route[h]).dst;
            if (tile.node(mid).kind == adg::NodeKind::Switch) {
                victim = mid;
                break;
            }
        }
        if (victim != adg::invalidNode)
            break;
    }
    ASSERT_NE(victim, adg::invalidNode);

    std::vector<sched::Schedule> schedules{ *schedule };
    collapseNode(tile, victim, schedules);
    EXPECT_FALSE(tile.hasNode(victim));

    // Repair must succeed: the collapsed bridges keep a path alive.
    sched::SpatialScheduler scheduler2(tile);
    auto repaired = scheduler2.repair(mdfg, *schedule);
    EXPECT_TRUE(repaired.has_value());
}

TEST(Mutations, CollapsePreservesPathDelay)
{
    adg::Adg tile;
    adg::PeSpec pe_spec;
    pe_spec.capabilities = { { Opcode::Add, DataType::I64 } };
    adg::NodeId dma = tile.addDma();
    adg::NodeId in = tile.addInPort();
    adg::NodeId s1 = tile.addSwitch();
    adg::NodeId s2 = tile.addSwitch();
    adg::NodeId pe = tile.addPe(pe_spec);
    adg::NodeId out = tile.addOutPort();
    tile.addEdge(dma, in);
    tile.addEdge(in, s1, 2);
    adg::EdgeId e12 = tile.addEdge(s1, s2, 3);
    adg::EdgeId e2p = tile.addEdge(s2, pe, 4);
    tile.addEdge(pe, out);
    tile.addEdge(out, dma);

    // A fake schedule routing through s2.
    sched::Schedule schedule;
    schedule.valid = true;
    schedule.routes[0] = { e12, e2p };
    collapseNode(tile, s2, { schedule });

    // A direct s1 -> pe edge with delay 3 + 4 must exist.
    bool found = false;
    for (adg::EdgeId e : tile.edgeIds()) {
        const adg::Edge &edge = tile.edge(e);
        if (edge.src == s1 && edge.dst == pe) {
            EXPECT_EQ(edge.delay, 7);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Mutations, PruneCapabilitiesKeepsUsedOnes)
{
    adg::Adg tile = smallTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 1, false, false);
    sched::SpatialScheduler scheduler(tile);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());

    std::vector<sched::Schedule> schedules{ *schedule };
    std::vector<const dfg::Mdfg *> mdfgs{ &mdfg };
    int pruned = pruneCapabilities(tile, schedules, mdfgs);
    EXPECT_GT(pruned, 0);

    // The schedule must remain intact after pruning.
    EXPECT_EQ(sched::checkSchedule(*schedule, tile, mdfg), "");
    // Every PE keeps at least one capability.
    for (adg::NodeId pe : tile.nodeIdsOfKind(adg::NodeKind::Pe))
        EXPECT_FALSE(tile.node(pe).pe().capabilities.empty());
}

TEST(Mutations, PrunePortFlagsWhenUnneeded)
{
    adg::Adg tile = smallTile();
    // mm has no variable-trip streams: stated/padding can be dropped.
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 1, false, false);
    sched::SpatialScheduler scheduler(tile);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());
    std::vector<sched::Schedule> schedules{ *schedule };
    std::vector<const dfg::Mdfg *> mdfgs{ &mdfg };
    pruneCapabilities(tile, schedules, mdfgs);
    for (adg::NodeId port : tile.nodeIdsOfKind(adg::NodeKind::InPort))
        EXPECT_FALSE(tile.node(port).port().statedStream);
}

TEST(Mutations, MutateProducesValidOrNoneRepeatedly)
{
    adg::Adg tile = smallTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 1, false, false);
    sched::SpatialScheduler scheduler(tile);
    auto schedule = scheduler.schedule(mdfg);
    ASSERT_TRUE(schedule.has_value());
    std::vector<sched::Schedule> schedules{ *schedule };
    std::vector<const dfg::Mdfg *> mdfgs{ &mdfg };
    Rng rng(7);
    int applied = 0;
    for (int i = 0; i < 60; ++i) {
        adg::Adg copy = tile;
        MutationKind kind =
            mutateAdg(copy, schedules, mdfgs, true, rng);
        if (kind != MutationKind::None)
            ++applied;
    }
    EXPECT_GT(applied, 40);
}

TEST(Mutations, NonPreservingMayBreakSchedules)
{
    // Statistically, blind mutation breaks more prior placements than
    // schedule-preserving mutation (the Fig. 20 rationale).
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 2, false, false);
    auto count_broken = [&](bool preserving, uint64_t seed) {
        Rng rng(seed);
        int broken = 0;
        for (int trial = 0; trial < 30; ++trial) {
            adg::Adg tile = smallTile();
            sched::SpatialScheduler scheduler(tile);
            auto schedule = scheduler.schedule(mdfg);
            if (!schedule)
                continue;
            std::vector<sched::Schedule> schedules{ *schedule };
            std::vector<const dfg::Mdfg *> mdfgs{ &mdfg };
            for (int e = 0; e < 3; ++e)
                mutateAdg(tile, schedules, mdfgs, preserving, rng);
            if (!sched::checkSchedule(*schedule, tile, mdfg).empty())
                ++broken;
        }
        return broken;
    };
    EXPECT_LE(count_broken(true, 11), count_broken(false, 11));
}

TEST(Mutations, KindNamesArePrintable)
{
    EXPECT_EQ(mutationKindName(MutationKind::RemoveSwitch),
              "remove_switch");
    EXPECT_EQ(mutationKindName(MutationKind::PruneCapabilities),
              "prune_capabilities");
    EXPECT_EQ(mutationKindName(MutationKind::None), "none");
}

} // namespace
} // namespace overgen::dse
