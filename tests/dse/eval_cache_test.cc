#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.h"
#include "dse/eval_cache.h"
#include "dse/explorer.h"
#include "model/resource_model.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

namespace overgen {
namespace {

using dse::CachedScheduleAll;
using dse::EvalCache;
using dse::EvalCacheStats;

model::Resources
res(double lut)
{
    model::Resources r;
    r.lut = lut;
    r.ff = lut * 2;
    r.bram = 3;
    r.dsp = 4;
    return r;
}

TEST(EvalCache, ResourceStoreAndFind)
{
    EvalCache cache(4);
    EvalCache::Key key{ 1, 2 };
    EXPECT_FALSE(cache.findResources(key).has_value());
    cache.storeResources(key, res(100));
    auto hit = cache.findResources(key);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, res(100));
    // Both fingerprint halves participate in the key.
    EXPECT_FALSE(cache.findResources({ 1, 3 }).has_value());
    EXPECT_FALSE(cache.findResources({ 3, 2 }).has_value());
}

TEST(EvalCache, CountsHitsAndMisses)
{
    EvalCache cache(4);
    cache.findResources({ 1, 1 });
    cache.storeResources({ 1, 1 }, res(1));
    cache.findResources({ 1, 1 });
    cache.findScheduleAll({ 2, 2 }, 0);
    EvalCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(EvalCache, FifoEvictionBoundsEachTable)
{
    EvalCache cache(2);
    cache.storeResources({ 1, 1 }, res(1));
    cache.storeResources({ 2, 2 }, res(2));
    cache.storeResources({ 3, 3 }, res(3));  // evicts {1,1}
    EXPECT_FALSE(cache.findResources({ 1, 1 }).has_value());
    EXPECT_TRUE(cache.findResources({ 2, 2 }).has_value());
    EXPECT_TRUE(cache.findResources({ 3, 3 }).has_value());
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(EvalCache, ScheduleAllIsEpochScoped)
{
    // Schedule-all results depend on the annealer's base design via
    // the repair path; the explorer bumps the epoch on every
    // acceptance, which must invalidate earlier entries.
    EvalCache cache(4);
    CachedScheduleAll result;
    result.feasible = true;
    result.variantIndex = { 0, 2 };
    result.schedules.resize(2);
    cache.storeScheduleAll({ 5, 6 }, 1, result);
    EXPECT_TRUE(cache.findScheduleAll({ 5, 6 }, 1).has_value());
    EXPECT_FALSE(cache.findScheduleAll({ 5, 6 }, 2).has_value());
}

TEST(EvalCache, ScheduleAllHitIsADeepCopy)
{
    EvalCache cache(4);
    CachedScheduleAll result;
    result.feasible = true;
    result.variantIndex = { 7 };
    sched::Schedule schedule;
    schedule.mdfgName = "k";
    schedule.valid = true;
    schedule.placement[3] = 9;
    result.schedules = { schedule };
    cache.storeScheduleAll({ 8, 8 }, 0, result);

    auto first = cache.findScheduleAll({ 8, 8 }, 0);
    ASSERT_TRUE(first.has_value());
    // Mutating the returned copy must not poison the cache.
    first->schedules[0].placement[3] = 1;
    first->variantIndex[0] = 0;

    auto second = cache.findScheduleAll({ 8, 8 }, 0);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->variantIndex[0], 7);
    EXPECT_EQ(second->schedules[0].placement.at(3), 9);
}

TEST(EvalCache, InfeasibilityIsCached)
{
    // Re-discovering unschedulability costs as much as scheduling, so
    // negative results are first-class entries.
    EvalCache cache(4);
    CachedScheduleAll infeasible;
    infeasible.feasible = false;
    cache.storeScheduleAll({ 9, 9 }, 0, infeasible);
    auto hit = cache.findScheduleAll({ 9, 9 }, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_FALSE(hit->feasible);
    EXPECT_TRUE(hit->schedules.empty());
}

/** Fast-training resource model shared across this file. */
const model::FpgaResourceModel &
testModel()
{
    static model::FpgaResourceModel m = [] {
        model::ResourceModelConfig config;
        config.peSamples = 600;
        config.switchSamples = 300;
        config.inPortSamples = 200;
        config.outPortSamples = 200;
        config.train.epochs = 40;
        return model::FpgaResourceModel::train(config);
    }();
    return m;
}

std::vector<std::string>
canonicalRecords(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    for (const std::string &line : lines) {
        Json record = Json::parse(line);
        record.set("seconds", Json(0.0));
        // The hit/miss split is observability, not trajectory (see
        // parallel_determinism_test.cc).
        record.asObject().erase("cache");
        // Heartbeat rate fields are wall-clock-flavored too (and
        // cache_hit_rate only exists with the cache on).
        record.asObject().erase("candidates_per_sec");
        record.asObject().erase("cache_hit_rate");
        out.push_back(record.dump());
    }
    return out;
}

struct ExploreRun
{
    dse::DseResult result;
    std::vector<std::string> records;
};

ExploreRun
explore(bool cache_on, int threads)
{
    std::vector<wl::KernelSpec> domain = { wl::makeFir(128, 16),
                                           wl::makeAccumulate(16) };
    telemetry::Sink sink;
    dse::DseOptions options;
    options.seed = 13;
    options.iterations = 12;
    options.threads = threads;
    options.evalCache = cache_on;
    options.tileCountGrid = { 1, 2, 4 };
    options.l2BankGrid = { 4, 8 };
    options.nocBytesGrid = { 64 };
    options.l2CapacityGrid = { 512 };
    options.sink = &sink;
    options.telemetryLabel = "cache";
    ExploreRun run;
    run.result = dse::exploreOverlay(domain, options, &testModel());
    run.records = canonicalRecords(sink.dseLines());
    return run;
}

TEST(EvalCacheIntegration, CacheDoesNotChangeTheTrajectory)
{
    // The cache contract (DESIGN.md): hits return bit-identical
    // results, so toggling the cache — like changing the thread
    // count — must leave the design, the objective, and the
    // timestamp-stripped record stream untouched.
    ExploreRun off = explore(false, 1);
    ExploreRun on = explore(true, 1);
    ExploreRun on_parallel = explore(true, 4);
    EXPECT_EQ(off.result.design.toJson().dump(),
              on.result.design.toJson().dump());
    EXPECT_EQ(off.result.objective, on.result.objective);
    EXPECT_EQ(off.result.evaluated, on.result.evaluated);
    EXPECT_EQ(off.records, on.records);
    EXPECT_EQ(off.records, on_parallel.records);
    EXPECT_EQ(off.result.objective, on_parallel.result.objective);

    // Counter plumbing: the cache-off run reports no traffic.
    EXPECT_EQ(off.result.cacheHits + off.result.cacheMisses, 0u);
    EXPECT_GT(on.result.cacheMisses, 0u);
}

} // namespace
} // namespace overgen
