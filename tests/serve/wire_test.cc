#include "serve/wire.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include "adg/builders.h"
#include "serve/shard.h"

using namespace overgen;
using namespace overgen::serve;

namespace {

adg::SysAdg
testDesign(int tiles = 4)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 4;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

} // namespace

TEST(Wire, JobSpecRoundTrips)
{
    JobSpec job;
    job.index = 42;
    job.workload = "stencil-2d";
    job.smallSize = true;
    job.designId = 3;
    job.applyTuning = true;
    job.dramLatency = 2000;
    job.deadlockCycles = 500;

    JobSpec back = jobFromJson(jobToJson(job));
    EXPECT_EQ(back.index, job.index);
    EXPECT_EQ(back.workload, job.workload);
    EXPECT_EQ(back.smallSize, job.smallSize);
    EXPECT_EQ(back.designId, job.designId);
    EXPECT_EQ(back.applyTuning, job.applyTuning);
    EXPECT_EQ(back.dramLatency, job.dramLatency);
    EXPECT_EQ(back.deadlockCycles, job.deadlockCycles);
    // The codec must be byte-stable: decode(encode(x)) re-encodes to
    // the identical line (the determinism contract rests on this).
    EXPECT_EQ(jobToJson(back).dump(), jobToJson(job).dump());
}

TEST(Wire, ResultRowRoundTripsWithDiagnostic)
{
    ResultRow row;
    row.ok = false;
    row.deadlocked = true;
    row.diagnostic = "tile0: waiting on \"dram\"\n  rob full";
    row.variant = "accumulate/unroll4";
    row.cycles = 123456789ull;
    row.ipc = 0.3217;

    ResultRow back = resultFromJson(resultToJson(row));
    EXPECT_EQ(back.ok, row.ok);
    EXPECT_EQ(back.deadlocked, row.deadlocked);
    EXPECT_EQ(back.diagnostic, row.diagnostic);
    EXPECT_EQ(back.variant, row.variant);
    EXPECT_EQ(back.cycles, row.cycles);
    EXPECT_EQ(back.ipc, row.ipc);
    EXPECT_EQ(resultToJson(back).dump(), resultToJson(row).dump());
}

TEST(Wire, MatchAndWarmJobsRoundTrip)
{
    JobSet set;
    int ida = set.addDesign(testDesign(4));
    int idb = set.addDesign(testDesign(10));
    set.addMatchJob("fir", { ida, idb }, /*applyTuning=*/true,
                    /*smallSize=*/true);
    set.addWarmJob("mm", 0xdeadbeefcafef00dull, 12,
                   /*applyTuning=*/false, /*smallSize=*/true);

    JobSpec match = jobFromJson(jobToJson(set.jobs[0]));
    EXPECT_EQ(match.kind, JobKind::Match);
    EXPECT_EQ(match.workload, "fir");
    ASSERT_EQ(match.matchDesigns.size(), 2u);
    EXPECT_EQ(match.matchDesigns[0], ida);
    EXPECT_EQ(match.matchDesigns[1], idb);
    EXPECT_TRUE(match.applyTuning);
    EXPECT_EQ(jobToJson(match).dump(), jobToJson(set.jobs[0]).dump());

    JobSpec warm = jobFromJson(jobToJson(set.jobs[1]));
    EXPECT_EQ(warm.kind, JobKind::Warm);
    // The seed travels as fixed-width hex: above 2^53, a double would
    // silently round it.
    EXPECT_EQ(warm.warmSeed, 0xdeadbeefcafef00dull);
    EXPECT_EQ(warm.warmIterations, 12);
    EXPECT_EQ(jobToJson(warm).dump(), jobToJson(set.jobs[1]).dump());
}

TEST(Wire, GenerateJobEncodingIsUnchangedByTheNewFields)
{
    // A plain Generate job must not emit kind/match/warm keys: old
    // and new builds produce the identical wire line.
    JobSet set;
    int id = set.addDesign(testDesign());
    set.addJob("fir", id, true, true);
    std::string line = jobToJson(set.jobs[0]).dump();
    EXPECT_EQ(line.find("kind"), std::string::npos);
    EXPECT_EQ(line.find("warm"), std::string::npos);
    EXPECT_EQ(line.find("match"), std::string::npos);

    ResultRow row;
    row.ok = true;
    row.cycles = 1234;
    row.ipc = 0.5;
    std::string rowLine = resultToJson(row).dump();
    EXPECT_EQ(rowLine.find("scores"), std::string::npos);
    EXPECT_EQ(rowLine.find("payload"), std::string::npos);
}

TEST(Wire, ScoresAndPayloadRoundTrip)
{
    ResultRow row;
    row.ok = true;
    WireScore score;
    score.design = 2;
    score.feasible = true;
    score.score = 1.625;
    score.ipc = 2.5;
    score.variant = "fir/unroll4";
    score.bottleneck = "dram";
    row.scores.push_back(score);
    WireScore infeasible;
    infeasible.design = 0;
    row.scores.push_back(infeasible);
    Json payload = Json::makeObject();
    payload.set("origin", Json("warm:fir"));
    row.payload = payload;

    ResultRow back = resultFromJson(resultToJson(row));
    ASSERT_EQ(back.scores.size(), 2u);
    EXPECT_EQ(back.scores[0].design, 2);
    EXPECT_TRUE(back.scores[0].feasible);
    EXPECT_EQ(back.scores[0].score, 1.625);
    EXPECT_EQ(back.scores[0].ipc, 2.5);
    EXPECT_EQ(back.scores[0].variant, "fir/unroll4");
    EXPECT_EQ(back.scores[0].bottleneck, "dram");
    EXPECT_FALSE(back.scores[1].feasible);
    EXPECT_TRUE(back.scores[1].variant.empty());
    ASSERT_TRUE(back.payload.isObject());
    EXPECT_EQ(back.payload.at("origin").asString(), "warm:fir");
    EXPECT_EQ(resultToJson(back).dump(), resultToJson(row).dump());
}

TEST(Wire, JobSetInternsDesigns)
{
    JobSet set;
    adg::SysAdg a = testDesign(4);
    adg::SysAdg b = testDesign(10);
    int ida = set.addDesign(a);
    EXPECT_EQ(set.addDesign(a), ida);  // dedup by content
    int idb = set.addDesign(b);
    EXPECT_NE(idb, ida);
    EXPECT_EQ(set.designs.size(), 2u);

    EXPECT_EQ(set.addJob("fir", ida), 0u);
    EXPECT_EQ(set.addJob("mm", idb, true, true), 1u);
    EXPECT_EQ(set.jobs[1].designId, idb);
    EXPECT_TRUE(set.jobs[1].applyTuning);
    EXPECT_TRUE(set.jobs[1].smallSize);
}

TEST(Wire, MergedJsonlIsIndexOrdered)
{
    JobSet set;
    int id = set.addDesign(testDesign());
    set.addJob("fir", id);
    set.addJob("mm", id);
    std::vector<ResultRow> rows(2);
    rows[0].ok = true;
    rows[0].cycles = 10;
    rows[1].ok = true;
    rows[1].cycles = 20;

    std::string merged = mergedJsonl(set, rows);
    size_t fir = merged.find("\"fir\"");
    size_t mm = merged.find("\"mm\"");
    ASSERT_NE(fir, std::string::npos);
    ASSERT_NE(mm, std::string::npos);
    EXPECT_LT(fir, mm);
    // One line per job, each ending in newline.
    EXPECT_EQ(std::count(merged.begin(), merged.end(), '\n'), 2);
    EXPECT_EQ(merged, mergedLine(set.jobs[0], rows[0]) + "\n" +
                          mergedLine(set.jobs[1], rows[1]) + "\n");
}

TEST(Shards, PlanCoversEveryJobExactlyOnce)
{
    std::vector<Shard> shards = planShards(10, 3);
    ASSERT_EQ(shards.size(), 4u);
    size_t next = 0;
    for (size_t i = 0; i < shards.size(); ++i) {
        EXPECT_EQ(shards[i].id, static_cast<int>(i));
        EXPECT_EQ(shards[i].first, next);
        next += shards[i].count;
    }
    EXPECT_EQ(next, 10u);
    EXPECT_EQ(shards.back().count, 1u);  // the remainder shard
}

TEST(Shards, ZeroShardSizeMeansOneShard)
{
    std::vector<Shard> shards = planShards(5, 0);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_EQ(shards[0].first, 0u);
    EXPECT_EQ(shards[0].count, 5u);
    EXPECT_TRUE(planShards(0, 4).empty());
}

TEST(Wire, LineReaderReassemblesSplitLines)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    LineReader reader;
    std::string line;

    ASSERT_EQ(::write(fds[1], "alpha\nbe", 8), 8);
    EXPECT_EQ(reader.fill(fds[0]), LineReader::Fill::Data);
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "alpha");
    EXPECT_FALSE(reader.next(line));  // "be" is incomplete

    ASSERT_EQ(::write(fds[1], "ta\n\n", 4), 4);
    EXPECT_EQ(reader.fill(fds[0]), LineReader::Fill::Data);
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "beta");
    ASSERT_TRUE(reader.next(line));
    EXPECT_EQ(line, "");  // empty line is still a line

    ::close(fds[1]);
    EXPECT_EQ(reader.fill(fds[0]), LineReader::Fill::Eof);
    ::close(fds[0]);
}

TEST(Wire, WriteLineReportsClosedPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    EXPECT_TRUE(writeLine(fds[1], "hello"));
    ::close(fds[0]);
    // SIGPIPE is ignored under the coordinator; the test harness must
    // not die either.
    signal(SIGPIPE, SIG_IGN);
    EXPECT_FALSE(writeLine(fds[1], "into the void"));
    signal(SIGPIPE, SIG_DFL);
    ::close(fds[1]);
}

TEST(Wire, HexBytesRoundTrip)
{
    std::vector<uint8_t> bytes;
    for (int b = 0; b < 256; ++b)
        bytes.push_back(static_cast<uint8_t>(b));
    std::string hex = bytesToHex(bytes);
    EXPECT_EQ(hex.size(), bytes.size() * 2);
    EXPECT_EQ(hex.substr(0, 8), "00010203");

    std::vector<uint8_t> back;
    ASSERT_TRUE(hexToBytes(hex, back));
    EXPECT_EQ(back, bytes);

    EXPECT_TRUE(hexToBytes("", back));
    EXPECT_TRUE(back.empty());
}

TEST(Wire, HexBytesRejectsMalformedInput)
{
    std::vector<uint8_t> out;
    EXPECT_FALSE(hexToBytes("abc", out));   // odd length
    EXPECT_TRUE(out.empty());
    EXPECT_FALSE(hexToBytes("zz", out));    // not hex
    EXPECT_FALSE(hexToBytes("AB", out));    // uppercase not accepted
    EXPECT_FALSE(hexToBytes("0x", out));
}
