/**
 * @file
 * Deadlock-watchdog coverage for the harness batching path: a
 * PreparedSim whose per-entry overrides make the watchdog fire must
 * come back from runPreparedBatch as a deadlocked row with a
 * diagnostic, without disturbing the sibling rows in the same batch.
 */

#include <gtest/gtest.h>

#include "common.h"

using namespace overgen;

namespace {

/** The engine test's watchdog recipe: a small L2 behind a slow DRAM
 * with an allowance shorter than the round-trip. */
std::shared_ptr<const adg::SysAdg>
tightDesign()
{
    adg::SysAdg design = bench::generalOverlay();
    design.sys.l2CapacityKiB = 16;
    return bench::shareDesign(std::move(design));
}

} // namespace

TEST(PreparedWatchdog, DeadlockedEntryDoesNotPoisonSiblings)
{
    bench::Harness harness{ bench::CommonFlags{} };
    auto design = tightDesign();
    // Stable spec storage: PreparedSim keeps a pointer to its spec.
    std::vector<wl::KernelSpec> specs = {
        wl::smallWorkloadByName("fir"),
        wl::workloadByName("accumulate"),
        wl::smallWorkloadByName("vecmax"),
    };

    std::vector<bench::PreparedSim> prepared;
    prepared.push_back(
        bench::prepareOverlayRun(specs[0], design, true));
    bench::PreparedSim victim =
        bench::prepareOverlayRun(specs[1], design, true);
    ASSERT_TRUE(victim.ok);
    victim.dramLatency = 2000;
    victim.deadlockCycles = 500;
    prepared.push_back(std::move(victim));
    prepared.push_back(
        bench::prepareOverlayRun(specs[2], design, true));
    ASSERT_TRUE(prepared[0].ok);
    ASSERT_TRUE(prepared[2].ok);

    std::vector<bench::OverlayRun> rows =
        bench::runPreparedBatch(prepared, harness);
    ASSERT_EQ(rows.size(), 3u);

    // The victim hits the watchdog (OG_WARN dump on stderr) ...
    EXPECT_TRUE(rows[1].deadlocked);
    EXPECT_FALSE(rows[1].ok);
    EXPECT_FALSE(rows[1].diagnostic.empty());
    EXPECT_LT(rows[1].cycles, 100'000u);

    // ... while its siblings complete normally.
    EXPECT_TRUE(rows[0].ok);
    EXPECT_FALSE(rows[0].deadlocked);
    EXPECT_TRUE(rows[0].diagnostic.empty());
    EXPECT_TRUE(rows[2].ok);
    EXPECT_FALSE(rows[2].deadlocked);

    // And bit-identically to a batch without the deadlocking entry —
    // the overrides are per-entry, not per-batch.
    std::vector<bench::PreparedSim> clean;
    clean.push_back(bench::prepareOverlayRun(specs[0], design, true));
    clean.push_back(bench::prepareOverlayRun(specs[2], design, true));
    std::vector<bench::OverlayRun> alone =
        bench::runPreparedBatch(clean, harness);
    ASSERT_EQ(alone.size(), 2u);
    EXPECT_EQ(rows[0].cycles, alone[0].cycles);
    EXPECT_EQ(rows[0].ipc, alone[0].ipc);
    EXPECT_EQ(rows[2].cycles, alone[1].cycles);
    EXPECT_EQ(rows[2].ipc, alone[1].ipc);
}

TEST(PreparedWatchdog, DefaultOverridesKeepStockConfig)
{
    bench::Harness harness{ bench::CommonFlags{} };
    auto design = bench::shareDesign(bench::generalOverlay());
    std::vector<wl::KernelSpec> specs = {
        wl::smallWorkloadByName("fir")
    };
    std::vector<bench::PreparedSim> prepared = {
        bench::prepareOverlayRun(specs[0], design, true)
    };
    std::vector<bench::OverlayRun> rows =
        bench::runPreparedBatch(prepared, harness);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].ok);
    EXPECT_FALSE(rows[0].deadlocked);
}
