/**
 * @file
 * Coordinator contract tests: byte-identical merged output across
 * worker counts and shard sizes, and full completion under worker
 * crashes and stragglers with exact retry accounting.
 */

#include "serve/coordinator.h"

#include <signal.h>

#include <gtest/gtest.h>

#include "adg/builders.h"
#include "serve/worker.h"

using namespace overgen;
using namespace overgen::serve;

namespace {

adg::SysAdg
testDesign()
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = 4;
    design.sys.l2Banks = 4;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

/** Eight shrunken jobs on one interned design. With @p slowFirst,
 * job 0 is a full-size gemm (~200 ms of simulation): the fault-
 * injection tests freeze or kill the worker holding it, and the slow
 * job keeps the injection race-free — the coordinator reacts to the
 * heartbeat long before the shard could finish. */
JobSet
testJobs(bool slowFirst = false)
{
    JobSet set;
    int id = set.addDesign(testDesign());
    if (slowFirst)
        set.addJob("gemm", id, /*applyTuning=*/true,
                   /*smallSize=*/false);
    for (const char *name :
         { "fir", "mm", "accumulate", "vecmax", "blur", "bgr2grey",
           "convert-bit", "acc-sqr" }) {
        if (slowFirst && set.jobs.size() == 8)
            break;  // keep the set at eight jobs (two 4-job shards)
        set.addJob(name, id, /*applyTuning=*/true, /*smallSize=*/true);
    }
    return set;
}

/** The in-process ground truth the server must reproduce. */
std::string
referenceJsonl(const JobSet &set)
{
    adg::SysAdg design = testDesign();
    std::vector<ResultRow> rows;
    for (const JobSpec &job : set.jobs)
        rows.push_back(runJob(job, design));
    return mergedJsonl(set, rows);
}

} // namespace

TEST(Coordinator, MergedOutputIsByteIdenticalAcrossConfigs)
{
    JobSet set = testJobs();
    std::string reference = referenceJsonl(set);
    ASSERT_FALSE(reference.empty());

    struct Config
    {
        int workers;
        size_t shardSize;
    };
    // Covers 1/2/4 workers and shard sizes 1, 4, and "everything".
    for (Config config : { Config{ 1, 0 }, Config{ 2, 1 },
                           Config{ 4, 4 }, Config{ 4, 1 } }) {
        CoordinatorOptions options;
        options.workers = config.workers;
        options.shardSize = config.shardSize;
        ServeOutcome outcome = serveJobs(set, options);
        EXPECT_TRUE(outcome.summary.ok)
            << config.workers << " workers, shard size "
            << config.shardSize;
        EXPECT_EQ(outcome.summary.jobs, set.jobs.size());
        EXPECT_EQ(outcome.summary.abandoned, 0u);
        EXPECT_EQ(mergedJsonl(set, outcome.rows), reference)
            << config.workers << " workers, shard size "
            << config.shardSize;
    }
}

TEST(Coordinator, EmptyJobSetCompletesImmediately)
{
    JobSet set;
    ServeOutcome outcome = serveJobs(set);
    EXPECT_TRUE(outcome.summary.ok);
    EXPECT_TRUE(outcome.rows.empty());
    EXPECT_EQ(outcome.summary.workersSpawned, 0u);
}

TEST(Coordinator, SigkilledWorkerIsRespawnedAndItsShardRetried)
{
    JobSet set = testJobs(/*slowFirst=*/true);
    std::string reference = referenceJsonl(set);

    CoordinatorOptions options;
    options.workers = 2;
    options.shardSize = 4;  // 8 jobs -> 2 shards, one per worker
    bool killed = false;
    // Kill the worker holding shard 0 at its first heartbeat: the
    // heartbeat precedes the job's prepare, and job 0 runs ~200 ms,
    // so the shard is guaranteed in flight with no rows buffered.
    options.onRecord = [&](const Json &record, int, pid_t pid) {
        if (!killed && record.at("t").asString() == "hb" &&
            record.at("shard").asInt() == 0) {
            ::kill(pid, SIGKILL);
            killed = true;
        }
    };
    ServeOutcome outcome = serveJobs(set, options);
    ASSERT_TRUE(killed);
    EXPECT_TRUE(outcome.summary.ok);
    EXPECT_EQ(mergedJsonl(set, outcome.rows), reference);
    // Exact accounting: one crash, one respawn, one re-dispatch, and
    // nothing else went wrong.
    EXPECT_EQ(outcome.summary.crashes, 1u);
    EXPECT_EQ(outcome.summary.respawns, 1u);
    EXPECT_EQ(outcome.summary.retries, 1u);
    EXPECT_EQ(outcome.summary.timeouts, 0u);
    EXPECT_EQ(outcome.summary.duplicates, 0u);
    EXPECT_EQ(outcome.summary.abandoned, 0u);
    EXPECT_EQ(outcome.summary.workersSpawned, 3u);
}

TEST(Coordinator, StragglerDeadlineRedispatchesTheShard)
{
    JobSet set = testJobs(/*slowFirst=*/true);
    std::string reference = referenceJsonl(set);

    CoordinatorOptions options;
    options.workers = 2;
    options.shardSize = 1;
    options.deadlineMs = 400;
    options.backoffMs = 5;
    options.shutdownGraceMs = 200;
    pid_t stopped = -1;
    // Freeze the worker holding the slow shard 0 at its heartbeat
    // (sent before the ~200 ms job starts, so the freeze always wins
    // the race): the shard must get a duplicate attempt on the other
    // worker after the deadline.
    options.onRecord = [&](const Json &record, int, pid_t pid) {
        if (stopped < 0 && record.at("t").asString() == "hb" &&
            record.at("shard").asInt() == 0) {
            ::kill(pid, SIGSTOP);
            stopped = pid;
        }
    };
    ServeOutcome outcome = serveJobs(set, options);
    ASSERT_GT(stopped, 0);
    EXPECT_TRUE(outcome.summary.ok);
    EXPECT_EQ(mergedJsonl(set, outcome.rows), reference);
    EXPECT_GE(outcome.summary.timeouts, 1u);
    EXPECT_GE(outcome.summary.retries, 1u);
    EXPECT_EQ(outcome.summary.abandoned, 0u);
    // The frozen worker never produced rows, so nothing raced: the
    // duplicate attempt's rows were all first arrivals. It is
    // SIGKILLed during shutdown, after its shard completed elsewhere,
    // so it does not count as a mid-work crash.
    EXPECT_EQ(outcome.summary.duplicates, 0u);
    EXPECT_EQ(outcome.summary.crashes, 0u);
}

TEST(Coordinator, CrashLoopExhaustsAttemptsAndAbandons)
{
    // A job no worker can survive (unknown workload -> the worker
    // exits mid-prepare) crash-loops deterministically: every attempt
    // dies, and after maxAttempts the job must surface as an
    // abandoned row instead of respawning forever.
    JobSet set;
    int id = set.addDesign(testDesign());
    set.addJob("__no_such_workload__", id, true, true);

    CoordinatorOptions options;
    options.workers = 1;
    options.shardSize = 1;
    options.maxAttempts = 2;
    options.backoffMs = 1;
    ServeOutcome outcome = serveJobs(set, options);
    EXPECT_FALSE(outcome.summary.ok);
    EXPECT_EQ(outcome.summary.abandoned, 1u);
    EXPECT_EQ(outcome.summary.crashes, 2u);
    EXPECT_EQ(outcome.summary.retries, 1u);
    EXPECT_EQ(outcome.summary.timeouts, 0u);
    ASSERT_EQ(outcome.rows.size(), 1u);
    EXPECT_FALSE(outcome.rows[0].ok);
    EXPECT_NE(outcome.rows[0].diagnostic.find(
                  "abandoned after 2 attempts"),
              std::string::npos);
}

TEST(Coordinator, WedgedFinalAttemptIsAbandonedNotHung)
{
    // The straggler deadline with no retry budget left: the only
    // attempt is frozen mid-job, so the coordinator must abandon the
    // shard at the deadline rather than wait forever on a worker that
    // will never answer. Full-size stencil-3d runs ~2 s, so the
    // freeze always lands before the job could complete.
    JobSet set;
    int id = set.addDesign(testDesign());
    set.addJob("stencil-3d", id, true, false);

    CoordinatorOptions options;
    options.workers = 1;
    options.shardSize = 1;
    options.maxAttempts = 1;
    options.deadlineMs = 100;
    options.shutdownGraceMs = 100;
    options.respawnWorkers = false;
    pid_t stopped = -1;
    options.onRecord = [&](const Json &record, int, pid_t pid) {
        if (stopped < 0 && record.at("t").asString() == "hb") {
            ::kill(pid, SIGSTOP);
            stopped = pid;
        }
    };
    ServeOutcome outcome = serveJobs(set, options);
    ASSERT_GT(stopped, 0);
    EXPECT_FALSE(outcome.summary.ok);
    EXPECT_EQ(outcome.summary.abandoned, 1u);
    EXPECT_GE(outcome.summary.timeouts, 1u);
    EXPECT_EQ(outcome.summary.crashes, 0u);
    ASSERT_EQ(outcome.rows.size(), 1u);
    EXPECT_FALSE(outcome.rows[0].ok);
    EXPECT_NE(outcome.rows[0].diagnostic.find("abandoned"),
              std::string::npos);
}

TEST(Coordinator, PerJobSimOverridesTravelTheWire)
{
    // A deadlock-tight job must come back deadlocked through the
    // server, with its sibling rows untouched — the same contract the
    // in-process watchdog test pins, but across the fork boundary.
    JobSet set;
    adg::SysAdg tight = testDesign();
    tight.sys.l2CapacityKiB = 16;
    int id = set.addDesign(tight);
    set.addJob("fir", id, true, true);
    uint64_t victim = set.addJob("accumulate", id, true, false);
    set.jobs[victim].dramLatency = 2000;
    set.jobs[victim].deadlockCycles = 500;
    set.addJob("vecmax", id, true, true);

    CoordinatorOptions options;
    options.workers = 2;
    options.shardSize = 1;
    ServeOutcome outcome = serveJobs(set, options);
    EXPECT_TRUE(outcome.summary.ok);
    ASSERT_EQ(outcome.rows.size(), 3u);
    EXPECT_TRUE(outcome.rows[0].ok);
    EXPECT_FALSE(outcome.rows[0].deadlocked);
    EXPECT_TRUE(outcome.rows[1].deadlocked);
    EXPECT_FALSE(outcome.rows[1].ok);
    EXPECT_FALSE(outcome.rows[1].diagnostic.empty());
    EXPECT_TRUE(outcome.rows[2].ok);
    EXPECT_FALSE(outcome.rows[2].deadlocked);
}

TEST(Coordinator, SigkilledWorkerReplacementResumesFromCheckpoint)
{
    JobSet set = testJobs(/*slowFirst=*/true);
    std::string reference = referenceJsonl(set);

    CoordinatorOptions options;
    options.workers = 2;
    options.shardSize = 4;  // 8 jobs -> 2 shards, one per worker
    // Full-size gemm runs ~17k cycles, so a 2k-cycle cadence streams
    // its first checkpoint well before the job can finish.
    options.checkpointEvery = 2000;
    bool killed = false;
    // Kill the worker holding shard 0 at its first mid-run
    // checkpoint: job 0 (the slow gemm) is provably mid-simulation,
    // with no rows banked yet. The replacement must pick the shard up
    // from the banked checkpoint, not from cycle 0.
    options.onRecord = [&](const Json &record, int, pid_t pid) {
        if (!killed && record.at("t").asString() == "ckpt" &&
            record.at("shard").asInt() == 0) {
            ::kill(pid, SIGKILL);
            killed = true;
        }
    };
    ServeOutcome outcome = serveJobs(set, options);
    ASSERT_TRUE(killed);
    EXPECT_TRUE(outcome.summary.ok);
    // The resumed suffix is bit-identical to an uninterrupted run, so
    // the merged stream matches the in-process reference byte for
    // byte even though job 0 was simulated in two pieces.
    EXPECT_EQ(mergedJsonl(set, outcome.rows), reference);
    EXPECT_EQ(outcome.summary.crashes, 1u);
    EXPECT_EQ(outcome.summary.respawns, 1u);
    EXPECT_EQ(outcome.summary.retries, 1u);
    EXPECT_GE(outcome.summary.checkpoints, 1u);
    // Exactly one row (the interrupted gemm) came from a resume; its
    // shard-mates ran fresh on the replacement.
    EXPECT_EQ(outcome.summary.resumed, 1u);
    EXPECT_EQ(outcome.summary.duplicates, 0u);
    EXPECT_EQ(outcome.summary.abandoned, 0u);
    EXPECT_EQ(outcome.summary.workersSpawned, 3u);
}

TEST(Coordinator, RedispatchSkipsRowsAlreadyBanked)
{
    // Workers stream rows per job, so a crash after some rows arrived
    // must re-run only the remainder — the banked rows' jobs are
    // never dispatched again, and no duplicates can arise. The slow
    // gemm up front keeps the kill race-free: the third row lands
    // ~150 ms in, with five small jobs (~25 ms) still outstanding.
    JobSet set = testJobs(/*slowFirst=*/true);
    std::string reference = referenceJsonl(set);

    CoordinatorOptions options;
    options.workers = 1;
    options.shardSize = 0;  // one shard holding all eight jobs
    uint64_t rows_seen = 0;
    bool killed = false;
    options.onRecord = [&](const Json &record, int, pid_t pid) {
        if (record.at("t").asString() == "result" && !killed &&
            ++rows_seen == 3) {
            ::kill(pid, SIGKILL);
            killed = true;
        }
    };
    ServeOutcome outcome = serveJobs(set, options);
    ASSERT_TRUE(killed);
    EXPECT_TRUE(outcome.summary.ok);
    EXPECT_EQ(mergedJsonl(set, outcome.rows), reference);
    EXPECT_EQ(outcome.summary.crashes, 1u);
    EXPECT_EQ(outcome.summary.retries, 1u);
    // First-arrival rows stay banked across the crash: the
    // re-dispatch carries only the missing jobs, so the replacement
    // cannot produce duplicates.
    EXPECT_EQ(outcome.summary.duplicates, 0u);
    EXPECT_EQ(outcome.summary.abandoned, 0u);
    // Checkpointing was off: recovery here is row-skipping alone.
    EXPECT_EQ(outcome.summary.checkpoints, 0u);
    EXPECT_EQ(outcome.summary.resumed, 0u);
}
