#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "dse/explorer.h"
#include "model/resource_model.h"
#include "sim/simulate.h"
#include "workloads/interpreter.h"
#include "workloads/suites.h"

namespace overgen {
namespace {

/** Fast-training resource model shared across this file. */
const model::FpgaResourceModel &
testModel()
{
    static model::FpgaResourceModel m = [] {
        model::ResourceModelConfig config;
        config.peSamples = 600;
        config.switchSamples = 300;
        config.inPortSamples = 200;
        config.outPortSamples = 200;
        config.train.epochs = 40;
        return model::FpgaResourceModel::train(config);
    }();
    return m;
}

dse::DseOptions
tinyDse()
{
    dse::DseOptions options;
    options.iterations = 6;
    options.tileCountGrid = { 1, 2, 4 };
    options.l2BankGrid = { 4, 8 };
    options.nocBytesGrid = { 64 };
    options.l2CapacityGrid = { 512 };
    return options;
}

TEST(EndToEnd, DseDesignExecutesKernelsCorrectly)
{
    // The complete pipeline: domain -> DSE -> schedule -> cycle-level
    // simulation -> bit-exact results.
    std::vector<wl::KernelSpec> domain = { wl::makeFir(128, 16),
                                           wl::makeAccumulate(16) };
    dse::DseResult overlay =
        dse::exploreOverlay(domain, tinyDse(), &testModel());
    for (size_t k = 0; k < domain.size(); ++k) {
        wl::Memory sim_mem, ref_mem;
        sim_mem.init(domain[k]);
        ref_mem.init(domain[k]);
        sim::SimResult run =
            sim::simulate(domain[k], overlay.mdfgs[k],
                          overlay.schedules[k], overlay.design,
                          sim_mem);
        ASSERT_TRUE(run.completed) << domain[k].name;
        wl::interpret(domain[k], ref_mem);
        for (const auto &array : domain[k].arrays) {
            EXPECT_EQ(sim_mem.array(array.name),
                      ref_mem.array(array.name))
                << domain[k].name << "/" << array.name;
        }
    }
}

TEST(EndToEnd, DesignSurvivesJsonRoundTripAndStillSchedules)
{
    // The sysADG JSON is the artifact handed to future compilations
    // (paper Fig. 3): a reloaded design must accept the same kernels.
    std::vector<wl::KernelSpec> domain = { wl::makeMm(16) };
    dse::DseResult overlay =
        dse::exploreOverlay(domain, tinyDse(), &testModel());
    adg::SysAdg reloaded = adg::SysAdg::fromJson(
        Json::parse(overlay.design.toJson().dump(2)));
    EXPECT_EQ(reloaded.sys, overlay.design.sys);
    EXPECT_EQ(reloaded.adg.numNodes(), overlay.design.adg.numNodes());
    sched::SpatialScheduler scheduler(reloaded.adg);
    auto variants = compiler::compileVariants(domain[0]);
    EXPECT_TRUE(scheduler.scheduleFirstFit(variants).has_value());
}

TEST(EndToEnd, EstimateAndMeasurementAgreeOnOrdering)
{
    // The DSE's performance model and the simulator need not agree on
    // absolute IPC, but across clearly-separated designs the ordering
    // must hold (more tiles -> more measured throughput for a
    // compute-bound kernel).
    wl::KernelSpec spec = wl::makeFir(512, 64);
    dse::DseResult overlay =
        dse::exploreOverlay({ spec }, tinyDse(), &testModel());
    auto run_tiles = [&](int tiles) {
        adg::SysAdg design = overlay.design;
        design.sys.numTiles = tiles;
        wl::Memory mem;
        mem.init(spec);
        return sim::simulate(spec, overlay.mdfgs[0],
                             overlay.schedules[0], design, mem)
            .cycles;
    };
    EXPECT_LT(run_tiles(4), run_tiles(1));
}

TEST(EndToEnd, TunedVariantsNeverLoseOnTheSameOverlay)
{
    // OverGen source tuning must not hurt: gemm's 2D unroll improves
    // (or at least preserves) simulated cycles on a fixed design.
    wl::KernelSpec spec = wl::makeGemm(32);
    dse::DseResult overlay =
        dse::exploreOverlay({ spec }, tinyDse(), &testModel());
    sched::SpatialScheduler scheduler(overlay.design.adg);
    compiler::CompileOptions tuned_opts;
    tuned_opts.applyTuning = true;
    auto plain_variants = compiler::compileVariants(spec);
    auto tuned_variants = compiler::compileVariants(spec, tuned_opts);
    auto plain = scheduler.scheduleFirstFit(plain_variants);
    auto tuned = scheduler.scheduleFirstFit(tuned_variants);
    ASSERT_TRUE(plain && tuned);
    auto cycles = [&](const dfg::Mdfg &m, const sched::Schedule &s) {
        wl::Memory mem;
        mem.init(spec);
        return sim::simulate(spec, m, s, overlay.design, mem).cycles;
    };
    uint64_t c_plain =
        cycles(plain_variants[plain->second], plain->first);
    uint64_t c_tuned =
        cycles(tuned_variants[tuned->second], tuned->first);
    EXPECT_LE(c_tuned, c_plain * 11 / 10);
}

} // namespace
} // namespace overgen
