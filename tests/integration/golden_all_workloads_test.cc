#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "compiler/compile.h"
#include "dse/explorer.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "workloads/interpreter.h"
#include "workloads/suites.h"

namespace overgen {
namespace {

/**
 * Differential/golden layer over every evaluation workload (paper
 * Table II): compile the kernel's mDFG variants, schedule one onto
 * the capability-complete seed tile, run the cycle-level simulator,
 * and demand bit-exact agreement with the sequential scalar
 * interpreter on every array. This is the ground truth the parallel
 * DSE's evaluations rest on — if the simulator drifts from the
 * golden reference for any kernel, speedup numbers are meaningless.
 *
 * Shrunken instances keep each case fast; sizes mirror the
 * small-workload table in sim/simulate_test.cc.
 */

std::vector<wl::KernelSpec>
goldenWorkloads()
{
    return {
        // DSP
        wl::makeFir(128, 16),
        wl::makeMm(8),
        wl::makeCholesky(16),
        wl::makeSolver(16),
        wl::makeFft(7),
        // MachSuite
        wl::makeStencil3d(8, 2),
        wl::makeCrs(32, 4),
        wl::makeGemm(8),
        wl::makeStencil2d(8, 2),
        wl::makeEllpack(32, 4),
        // Vitis Vision
        wl::makeChannelExtract(16),
        wl::makeBgr2Grey(16),
        wl::makeBlur(16),
        wl::makeAccumulate(16),
        wl::makeAccSqr(16),
        wl::makeVecMax(16),
        wl::makeAccWeight(16),
        wl::makeConvertBit(16),
        wl::makeDerivative(18),
    };
}

class GoldenAllWorkloads
    : public testing::TestWithParam<wl::KernelSpec>
{
};

TEST_P(GoldenAllWorkloads, SimulatorMatchesScalarReference)
{
    const wl::KernelSpec &spec = GetParam();
    auto variants = compiler::compileVariants(spec);
    ASSERT_FALSE(variants.empty()) << spec.name;

    adg::SysAdg design;
    design.adg = dse::seedTile({ spec });
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    ASSERT_TRUE(fit.has_value())
        << spec.name << " does not map onto its own seed tile";

    wl::Memory sim_mem, ref_mem;
    sim_mem.init(spec);
    ref_mem.init(spec);
    sim::SimResult run =
        sim::simulate(spec, variants[fit->second], fit->first, design,
                      sim_mem);
    ASSERT_TRUE(run.completed) << spec.name;
    EXPECT_GT(run.cycles, 0u) << spec.name;

    wl::interpret(spec, ref_mem);
    for (const auto &array : spec.arrays) {
        EXPECT_EQ(sim_mem.array(array.name), ref_mem.array(array.name))
            << spec.name << "/" << array.name;
    }
}

/** ctest-friendly case names: "stencil-3d" -> "stencil_3d". */
std::string
caseName(const testing::TestParamInfo<wl::KernelSpec> &info)
{
    std::string name = info.param.name;
    for (char &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, GoldenAllWorkloads,
                         testing::ValuesIn(goldenWorkloads()),
                         caseName);

TEST(GoldenAllWorkloads, CoversEveryEvaluationWorkload)
{
    // Guard against the golden list silently falling behind the
    // suites: one golden case per evaluation workload, same names.
    auto names = [](const std::vector<wl::KernelSpec> &specs) {
        std::vector<std::string> out;
        for (const auto &spec : specs)
            out.push_back(spec.name);
        std::sort(out.begin(), out.end());
        return out;
    };
    EXPECT_EQ(names(goldenWorkloads()), names(wl::allWorkloads()));
}

} // namespace
} // namespace overgen
