#include <gtest/gtest.h>

#include "hls/autodse.h"
#include "workloads/suites.h"

namespace overgen::hls {
namespace {

TEST(HlsModel, TableIvUntunedII)
{
    // Paper Table IV, "Untuned II" row.
    EXPECT_EQ(initiationInterval(wl::makeCholesky(), false), 10);
    EXPECT_EQ(initiationInterval(wl::makeCrs(), false), 4);
    EXPECT_EQ(initiationInterval(wl::makeFft(), false), 2);
    EXPECT_EQ(initiationInterval(wl::makeBgr2Grey(), false), 9);
    EXPECT_EQ(initiationInterval(wl::makeBlur(), false), 6);
    EXPECT_EQ(initiationInterval(wl::makeChannelExtract(), false), 8);
    EXPECT_EQ(initiationInterval(wl::makeStencil3d(), false), 6);
}

TEST(HlsModel, TableIvTunedII)
{
    // Paper Table IV, "Tuned II" row.
    EXPECT_EQ(initiationInterval(wl::makeCholesky(), true), 5);
    EXPECT_EQ(initiationInterval(wl::makeCrs(), true), 2);
    EXPECT_EQ(initiationInterval(wl::makeFft(), true), 1);
    EXPECT_EQ(initiationInterval(wl::makeBgr2Grey(), true), 1);
    EXPECT_EQ(initiationInterval(wl::makeBlur(), true), 1);
    EXPECT_EQ(initiationInterval(wl::makeChannelExtract(), true), 1);
    EXPECT_EQ(initiationInterval(wl::makeStencil3d(), true), 1);
}

TEST(HlsModel, RegularKernelsHaveUnitII)
{
    // "All other workloads achieve II=1" (paper Q2).
    for (const auto &name :
         { "fir", "solver", "mm", "gemm", "stencil-2d", "ellpack",
           "accumulate", "acc-sqr", "vecmax", "acc-weight",
           "convert-bit", "derivative" }) {
        EXPECT_EQ(initiationInterval(wl::workloadByName(name), false),
                  1)
            << name;
    }
}

TEST(HlsModel, UnrollSpeedsComputeBoundKernel)
{
    wl::KernelSpec k = wl::makeMm();
    HlsConfig one;
    HlsConfig eight;
    eight.unroll = 8;
    EXPECT_GT(estimatePerf(k, false, one).cycles,
              estimatePerf(k, false, eight).cycles * 2);
}

TEST(HlsModel, MemoryBoundKernelSaturates)
{
    wl::KernelSpec k = wl::makeAccumulate();
    HlsConfig wide;
    wide.unroll = 64;
    HlsPerf perf = estimatePerf(k, false, wide);
    EXPECT_TRUE(perf.memoryBound);
    HlsConfig wider = wide;
    wider.dramChannels = 4;
    EXPECT_LT(estimatePerf(k, false, wider).cycles, perf.cycles);
}

TEST(HlsModel, TuningHelpsStridedKernels)
{
    wl::KernelSpec k = wl::makeBgr2Grey();
    HlsConfig config;
    config.unroll = 16;
    double untuned = estimatePerf(k, false, config).cycles;
    double tuned = estimatePerf(k, true, config).cycles;
    EXPECT_GT(untuned, tuned * 1.5);
}

TEST(HlsModel, ResourcesGrowWithUnroll)
{
    wl::KernelSpec k = wl::makeMm();
    HlsConfig one;
    HlsConfig sixteen;
    sixteen.unroll = 16;
    model::Resources small = estimateResources(k, one);
    model::Resources large = estimateResources(k, sixteen);
    EXPECT_GT(large.lut, small.lut);
    EXPECT_GT(large.dsp, small.dsp);
}

TEST(HlsModel, SynthesisHoursSuperlinear)
{
    model::Resources small{ 50000, 60000, 100, 100 };
    model::Resources big{ 800000, 900000, 1000, 3000 };
    double small_h = synthesisHours(small);
    double big_h = synthesisHours(big);
    EXPECT_GT(big_h, small_h * 5.0);
    EXPECT_GT(small_h, 0.3);
}

TEST(AutoDse, FindsFittingDesign)
{
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();
    for (const auto &k : wl::allWorkloads()) {
        AutoDseResult r = runAutoDse(k, false);
        EXPECT_LE(device.worstUtilization(r.resources), 0.8) << k.name;
        EXPECT_GT(r.perf.cycles, 0.0) << k.name;
        EXPECT_GE(r.config.unroll, 1) << k.name;
    }
}

TEST(AutoDse, DatabaseSkipsExploration)
{
    AutoDseResult gemm = runAutoDse(wl::makeGemm(), false);
    EXPECT_TRUE(gemm.fromDatabase);
    EXPECT_EQ(gemm.candidatesEvaluated, 0);
    EXPECT_DOUBLE_EQ(gemm.dseHours, 0.0);
    AutoDseResult mm = runAutoDse(wl::makeMm(), false);
    EXPECT_FALSE(mm.fromDatabase);
    EXPECT_GT(mm.candidatesEvaluated, 1);
    EXPECT_GT(mm.dseHours, 0.0);
}

TEST(AutoDse, TunedNeverSlower)
{
    for (const auto &k : wl::allWorkloads()) {
        AutoDseResult untuned = runAutoDse(k, false);
        AutoDseResult tuned = runAutoDse(k, true);
        EXPECT_LE(tuned.perf.seconds, untuned.perf.seconds * 1.001)
            << k.name;
    }
}

TEST(AutoDse, TunedHelpsTableIvKernels)
{
    // Table IV kernels with headroom gain from manual tuning (crs is
    // too small for its II to dominate the pipeline-fill overhead).
    for (const auto &name : { "cholesky", "bgr2grey", "channel-ext",
                              "stencil-3d" }) {
        AutoDseResult untuned =
            runAutoDse(wl::workloadByName(name), false);
        AutoDseResult tuned =
            runAutoDse(wl::workloadByName(name), true);
        EXPECT_GT(untuned.perf.seconds, tuned.perf.seconds * 1.2)
            << name;
    }
}

TEST(AutoDse, DseTimeDominatedByCandidates)
{
    AutoDseResult r = runAutoDse(wl::makeCholesky(), false);
    EXPECT_GT(r.candidatesEvaluated, 2);
    EXPECT_GT(r.dseHours, r.synthHours * 0.5);
}

} // namespace
} // namespace overgen::hls
