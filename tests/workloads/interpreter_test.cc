#include <gtest/gtest.h>

#include <cmath>

#include "workloads/interpreter.h"
#include "workloads/suites.h"

namespace overgen::wl {
namespace {

TEST(Interpreter, MemoryInitDeterministic)
{
    KernelSpec k = makeFir(64, 7);
    Memory m1, m2;
    m1.init(k, 42);
    m2.init(k, 42);
    EXPECT_EQ(m1.array("a"), m2.array("a"));
    Memory m3;
    m3.init(k, 43);
    EXPECT_NE(m1.array("a"), m3.array("a"));
}

TEST(Interpreter, IndexArrayValuesInRange)
{
    KernelSpec k = makeEllpack(16, 4);
    Memory mem;
    mem.init(k);
    int64_t target = k.arrayByName("x").elements;
    for (double v : mem.array("ind")) {
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, static_cast<double>(target));
        EXPECT_EQ(v, std::floor(v));
    }
}

TEST(Interpreter, FirMatchesDirectComputation)
{
    KernelSpec k = makeFir(64, 5);
    Memory mem;
    mem.init(k);
    std::vector<double> a = mem.array("a");
    std::vector<double> b = mem.array("b");
    std::vector<double> c = mem.array("c");
    interpret(k, mem);
    // Direct: iterate in spec loop order (io, j, ii).
    for (int io = 0; io < 2; ++io)
        for (int j = 0; j < 5; ++j)
            for (int ii = 0; ii < 32; ++ii)
                c[io * 32 + ii] += a[io * 32 + ii + j] * b[j];
    EXPECT_EQ(mem.array("c"), c);
}

TEST(Interpreter, MmMatchesNaiveMatmul)
{
    int n = 8;
    KernelSpec k = makeMm(n);
    Memory mem;
    mem.init(k);
    std::vector<double> a = mem.array("a");
    std::vector<double> b = mem.array("b");
    std::vector<double> c = mem.array("c");
    interpret(k, mem);
    for (int i = 0; i < n; ++i)
        for (int kk = 0; kk < n; ++kk)
            for (int j = 0; j < n; ++j)
                c[i * n + j] += a[i * n + kk] * b[kk * n + j];
    for (size_t i = 0; i < c.size(); ++i)
        EXPECT_NEAR(mem.array("c")[i], c[i], 1e-9) << "at " << i;
}

TEST(Interpreter, TriangularTripCounts)
{
    KernelSpec k = makeCholesky(8);
    // Loop i at depth 1 has trip 8 - k.
    std::vector<int64_t> ivs{ 3, 0, 0 };
    EXPECT_EQ(loopTrip(k, 1, ivs), 5);
    ivs[0] = 7;
    EXPECT_EQ(loopTrip(k, 1, ivs), 1);
}

TEST(Interpreter, SolverTriangularGrows)
{
    KernelSpec k = makeSolver(8);
    std::vector<int64_t> ivs{ 0, 0 };
    EXPECT_EQ(loopTrip(k, 1, ivs), 1);
    ivs[0] = 5;
    EXPECT_EQ(loopTrip(k, 1, ivs), 6);
}

TEST(Interpreter, ResolveDirectIndex)
{
    KernelSpec k = makeMm(8);
    Memory mem;
    mem.init(k);
    // a[i*8 + k] at (i=2, k=3, j=whatever) = 19.
    std::vector<int64_t> ivs{ 2, 3, 5 };
    EXPECT_EQ(resolveIndex(k, k.accesses[0], ivs, mem), 19);
}

TEST(Interpreter, ResolveIndirectIndex)
{
    KernelSpec k = makeEllpack(16, 4);
    Memory mem;
    mem.init(k);
    std::vector<int64_t> ivs{ 3, 1 };
    // x access goes through ind[3*4+1].
    int64_t expected =
        static_cast<int64_t>(mem.array("ind")[13]);
    EXPECT_EQ(resolveIndex(k, k.accesses[1], ivs, mem), expected);
}

TEST(Interpreter, EllpackMatchesDirect)
{
    KernelSpec k = makeEllpack(16, 4);
    Memory mem;
    mem.init(k);
    std::vector<double> val = mem.array("val");
    std::vector<double> ind = mem.array("ind");
    std::vector<double> x = mem.array("x");
    std::vector<double> y = mem.array("y");
    interpret(k, mem);
    for (int i = 0; i < 16; ++i)
        for (int j = 0; j < 4; ++j)
            y[i] += val[i * 4 + j] * x[static_cast<int>(ind[i * 4 + j])];
    for (size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(mem.array("y")[i], y[i], 1e-9);
}

TEST(Interpreter, IntegerSemanticsTruncate)
{
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Div, DataType::I16, 7, 2), 3.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Div, DataType::F64, 7, 2), 3.5);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Div, DataType::I64, 7, 0), 0.0);
}

TEST(Interpreter, BitwiseOps)
{
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Shl, DataType::I16, 3, 4),
                     48.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Shr, DataType::I16, 48, 4),
                     3.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::And, DataType::I64, 12, 10),
                     8.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Xor, DataType::I64, 12, 10),
                     6.0);
}

TEST(Interpreter, MinMaxAbsSqrt)
{
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Min, DataType::F64, 2, 5), 2.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Max, DataType::F64, 2, 5), 5.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Abs, DataType::F64, -4, 0),
                     4.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Sqrt, DataType::F64, 16, 0),
                     4.0);
    // Negative operand saturates to zero rather than NaN.
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Sqrt, DataType::F64, -1, 0),
                     0.0);
}

TEST(Interpreter, CompareAndSelect)
{
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::CmpLt, DataType::I64, 1, 2),
                     1.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::CmpEq, DataType::I64, 2, 2),
                     1.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Select, DataType::I64, 1, 9),
                     9.0);
    EXPECT_DOUBLE_EQ(evalScalarOp(Opcode::Select, DataType::I64, 0, 9),
                     0.0);
}

TEST(Interpreter, VisionPointwiseKernels)
{
    // accumulate: dst = a + b elementwise.
    KernelSpec k = makeAccumulate(8);
    Memory mem;
    mem.init(k);
    std::vector<double> a = mem.array("a");
    std::vector<double> b = mem.array("b");
    interpret(k, mem);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(mem.array("dst")[i], a[i] + b[i]);
}

TEST(Interpreter, VecMax)
{
    KernelSpec k = makeVecMax(8);
    Memory mem;
    mem.init(k);
    std::vector<double> a = mem.array("a");
    std::vector<double> b = mem.array("b");
    interpret(k, mem);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(mem.array("dst")[i], std::max(a[i], b[i]));
}

TEST(Interpreter, Bgr2GreyFormula)
{
    KernelSpec k = makeBgr2Grey(4);
    Memory mem;
    mem.init(k);
    std::vector<double> src = mem.array("src");
    interpret(k, mem);
    for (int p = 0; p < 4 * 4 * 4; ++p) {
        double expect = std::trunc(
            (std::trunc(src[3 * p] * 29) + std::trunc(src[3 * p + 1] * 150) +
             std::trunc(src[3 * p + 2] * 77)));
        expect = std::trunc(
            static_cast<double>(static_cast<int64_t>(expect) / 256));
        EXPECT_DOUBLE_EQ(mem.array("dst")[p], expect) << "pixel " << p;
    }
}

TEST(Interpreter, StencilWritesInteriorOnly)
{
    KernelSpec k = makeStencil2d(4, 1);
    Memory mem;
    mem.init(k);
    std::vector<double> before = mem.array("out");
    interpret(k, mem);
    const auto &after = mem.array("out");
    int g = 6;
    // Halo rows/cols untouched.
    for (int j = 0; j < g; ++j) {
        EXPECT_EQ(after[j], before[j]);
        EXPECT_EQ(after[(g - 1) * g + j], before[(g - 1) * g + j]);
    }
}

} // namespace
} // namespace overgen::wl
