#include <gtest/gtest.h>

#include <set>

#include "workloads/suites.h"

namespace overgen::wl {
namespace {

TEST(Suites, NineteenWorkloads)
{
    auto all = allWorkloads();
    EXPECT_EQ(all.size(), 19u);
    std::set<std::string> names;
    for (const auto &k : all)
        names.insert(k.name);
    EXPECT_EQ(names.size(), 19u) << "duplicate workload names";
}

TEST(Suites, SuiteSizesMatchPaper)
{
    EXPECT_EQ(dspSuite().size(), 5u);
    EXPECT_EQ(machSuite().size(), 5u);
    EXPECT_EQ(visionSuite().size(), 9u);
}

TEST(Suites, SuiteMembershipConsistent)
{
    for (const auto &k : dspSuite())
        EXPECT_EQ(k.suite, Suite::Dsp);
    for (const auto &k : machSuite())
        EXPECT_EQ(k.suite, Suite::MachSuite);
    for (const auto &k : visionSuite())
        EXPECT_EQ(k.suite, Suite::Vision);
}

TEST(Suites, TableIIDataTypes)
{
    // Paper Table II column "Type".
    EXPECT_EQ(workloadByName("cholesky").dominantType(), DataType::F64);
    EXPECT_EQ(workloadByName("fft").dominantType(), DataType::F32);
    EXPECT_EQ(workloadByName("fir").dominantType(), DataType::F64);
    EXPECT_EQ(workloadByName("mm").dominantType(), DataType::F64);
    EXPECT_EQ(workloadByName("stencil-3d").dominantType(),
              DataType::I64);
    EXPECT_EQ(workloadByName("gemm").dominantType(), DataType::I64);
    EXPECT_EQ(workloadByName("ellpack").dominantType(), DataType::F64);
    for (const auto &k : visionSuite())
        EXPECT_EQ(k.dominantType(), DataType::I16) << k.name;
}

TEST(Suites, TableIISizes)
{
    // Spot-check data sizes against Table II.
    EXPECT_EQ(workloadByName("mm").arrayByName("a").elements, 32 * 32);
    EXPECT_EQ(workloadByName("gemm").arrayByName("a").elements, 64 * 64);
    EXPECT_EQ(workloadByName("fft").arrayByName("re").elements, 4096);
    EXPECT_EQ(workloadByName("crs").arrayByName("val").elements,
              494 * 4);
    EXPECT_EQ(workloadByName("cholesky").arrayByName("A").elements,
              48 * 48);
}

TEST(Suites, TableIVVariableTripWorkloads)
{
    // Table IV: cholesky, crs, fft have variable-trip-count patterns.
    EXPECT_TRUE(workloadByName("cholesky").patterns.variableTripCount);
    EXPECT_TRUE(workloadByName("crs").patterns.variableTripCount);
    EXPECT_TRUE(workloadByName("fft").patterns.variableTripCount);
    EXPECT_FALSE(workloadByName("mm").patterns.variableTripCount);
}

TEST(Suites, TableIVStridedWorkloads)
{
    // Table IV: bgr2grey, blur, channel-ext, stencil-3d have the
    // inefficient-strided-access pattern.
    EXPECT_TRUE(workloadByName("bgr2grey").patterns.smallStrideAccess);
    EXPECT_TRUE(workloadByName("blur").patterns.smallStrideAccess);
    EXPECT_TRUE(
        workloadByName("channel-ext").patterns.smallStrideAccess);
    EXPECT_TRUE(
        workloadByName("stencil-3d").patterns.smallStrideAccess);
    EXPECT_FALSE(workloadByName("accumulate").patterns.smallStrideAccess);
}

TEST(Suites, GemmInPrebuiltDatabase)
{
    EXPECT_TRUE(workloadByName("gemm").patterns.inPrebuiltDatabase);
}

TEST(Suites, OverGenTuningHooks)
{
    // Paper Q2: fft peeled, gemm 2D-unrolled, stencil-2d and blur
    // unrolled for overlap reuse.
    EXPECT_TRUE(workloadByName("fft").tuning.peelTail);
    EXPECT_TRUE(workloadByName("gemm").tuning.unroll2d);
    EXPECT_TRUE(workloadByName("stencil-2d").tuning.unrollForOverlap);
    EXPECT_TRUE(workloadByName("blur").tuning.unrollForOverlap);
}

TEST(Suites, HlsTunedVariantClearsPatterns)
{
    KernelSpec tuned = hlsTunedVariant(workloadByName("cholesky"));
    EXPECT_FALSE(tuned.patterns.variableTripCount);
    for (const auto &loop : tuned.loops)
        EXPECT_FALSE(loop.variable);
    KernelSpec tuned2 = hlsTunedVariant(workloadByName("bgr2grey"));
    EXPECT_FALSE(tuned2.patterns.smallStrideAccess);
}

TEST(Suites, AccessesReferenceDeclaredArrays)
{
    for (const auto &k : allWorkloads()) {
        for (const auto &acc : k.accesses) {
            EXPECT_NO_FATAL_FAILURE(k.arrayByName(acc.array)) << k.name;
            if (acc.indirect()) {
                EXPECT_NO_FATAL_FAILURE(k.arrayByName(acc.indexArray));
            }
        }
    }
}

TEST(Suites, OpsReferenceValidAccessesAndOps)
{
    for (const auto &k : allWorkloads()) {
        for (size_t i = 0; i < k.ops.size(); ++i) {
            const OpSpec &op = k.ops[i];
            for (const Operand *operand : { &op.lhs, &op.rhs }) {
                if (operand->kind == Operand::Kind::Access) {
                    ASSERT_LT(operand->index,
                              static_cast<int>(k.accesses.size()))
                        << k.name;
                    EXPECT_FALSE(k.accesses[operand->index].isWrite)
                        << k.name << " op reads a write access";
                } else if (operand->kind == Operand::Kind::Op) {
                    EXPECT_LT(operand->index, static_cast<int>(i))
                        << k.name << " forward op reference";
                }
            }
            if (op.writeAccess >= 0) {
                ASSERT_LT(op.writeAccess,
                          static_cast<int>(k.accesses.size()));
                EXPECT_TRUE(k.accesses[op.writeAccess].isWrite)
                    << k.name;
            }
        }
    }
}

TEST(Suites, EveryKernelHasAWrite)
{
    for (const auto &k : allWorkloads()) {
        bool has_write = false;
        for (const auto &op : k.ops)
            has_write |= op.writeAccess >= 0;
        EXPECT_TRUE(has_write) << k.name;
    }
}

TEST(Suites, CoefficientVectorsFitLoopNest)
{
    for (const auto &k : allWorkloads()) {
        for (const auto &acc : k.accesses) {
            EXPECT_LE(acc.coeffs.size(), k.loops.size()) << k.name;
        }
    }
}

TEST(Suites, MaxUnrollIsPowerOfTwo)
{
    for (const auto &k : allWorkloads()) {
        EXPECT_GE(k.maxUnroll, 1) << k.name;
        EXPECT_EQ(k.maxUnroll & (k.maxUnroll - 1), 0)
            << k.name << ": maxUnroll " << k.maxUnroll;
    }
}

TEST(SuitesDeathTest, UnknownWorkloadFatal)
{
    EXPECT_DEATH(workloadByName("nonesuch"), "unknown workload");
}

} // namespace
} // namespace overgen::wl
