#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "workloads/suites.h"

namespace overgen::sched {
namespace {

adg::Adg
richTile()
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

TEST(Scheduler, SchedulesSimpleKernel)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(16), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->valid);
    EXPECT_EQ(checkSchedule(*result, tile, mdfg), "");
}

TEST(Scheduler, AllWorkloadsScheduleAtSomeVariant)
{
    adg::Adg tile = richTile();
    SpatialScheduler scheduler(tile);
    for (const auto &k : wl::allWorkloads()) {
        auto variants = compiler::compileVariants(k);
        auto result = scheduler.scheduleFirstFit(variants);
        ASSERT_TRUE(result.has_value()) << k.name;
        EXPECT_EQ(
            checkSchedule(result->first, tile, variants[result->second]),
            "")
            << k.name;
    }
}

TEST(Scheduler, PlacementsRespectKinds)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(64, 8), 2, true, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    for (const auto &[dfg_node, adg_node] : result->placement) {
        const dfg::Node &dn = mdfg.node(dfg_node);
        adg::NodeKind kind = tile.node(adg_node).kind;
        switch (dn.kind) {
          case dfg::NodeKind::Instruction:
            EXPECT_EQ(kind, adg::NodeKind::Pe);
            break;
          case dfg::NodeKind::Array:
            EXPECT_TRUE(kind == adg::NodeKind::Dma ||
                        kind == adg::NodeKind::Scratchpad);
            break;
          case dfg::NodeKind::InputStream:
            EXPECT_TRUE(kind == adg::NodeKind::InPort ||
                        adg::isStreamEngine(kind));
            break;
          case dfg::NodeKind::OutputStream:
            EXPECT_EQ(kind, adg::NodeKind::OutPort);
            break;
        }
    }
}

TEST(Scheduler, ExclusivePesAndPorts)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeBgr2Grey(32), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    std::set<adg::NodeId> pes, ports;
    for (const auto &[dfg_node, adg_node] : result->placement) {
        const dfg::Node &dn = mdfg.node(dfg_node);
        if (dn.kind == dfg::NodeKind::Instruction)
            EXPECT_TRUE(pes.insert(adg_node).second)
                << "PE double-booked";
        if (dn.kind == dfg::NodeKind::OutputStream)
            EXPECT_TRUE(ports.insert(adg_node).second)
                << "port double-booked";
    }
}

TEST(Scheduler, RoutesConnectPlacements)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    const auto &edges = mdfg.edges();
    for (const auto &[edge_index, route] : result->routes) {
        const dfg::Edge &de = edges[edge_index];
        ASSERT_FALSE(route.empty());
        EXPECT_EQ(tile.edge(route.front()).src,
                  result->placedOn(de.src));
        EXPECT_EQ(tile.edge(route.back()).dst,
                  result->placedOn(de.dst));
    }
}

TEST(Scheduler, NoCrossSignalEdgeSharing)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeStencil2d(8, 1), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    std::map<adg::EdgeId, dfg::NodeId> owner;
    const auto &edges = mdfg.edges();
    for (const auto &[edge_index, route] : result->routes) {
        dfg::NodeId signal = edges[edge_index].src;
        for (adg::EdgeId eid : route) {
            auto [it, inserted] = owner.emplace(eid, signal);
            if (!inserted)
                EXPECT_EQ(it->second, signal)
                    << "edge " << eid << " carries two signals";
        }
    }
}

TEST(Scheduler, IndirectNeedsCapableEngine)
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 8;
    config.numOutPorts = 4;
    config.datapathBytes = 64;
    config.indirect = false;  // no indirect support anywhere
    config.peCapabilities = adg::intCapabilities(DataType::I64);
    auto f64 = adg::floatCapabilities(DataType::F64);
    config.peCapabilities.insert(f64.begin(), f64.end());
    adg::Adg tile = adg::buildMeshTile(config);
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeEllpack(32, 4), 1, false, false);
    SpatialScheduler scheduler(tile);
    EXPECT_FALSE(scheduler.schedule(mdfg).has_value());
}

TEST(Scheduler, VariableTripNeedsStatedPorts)
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 8;
    config.numOutPorts = 4;
    config.datapathBytes = 64;
    config.peCapabilities = adg::floatCapabilities(DataType::F64);
    adg::Adg tile = adg::buildMeshTile(config);
    // Strip stated-stream support from every port.
    for (adg::NodeId id : tile.nodeIdsOfKind(adg::NodeKind::InPort))
        tile.node(id).port().statedStream = false;
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeSolver(16), 1, false, false);
    // solver is triangular but not variable; force variable streams.
    dfg::Mdfg crs =
        compiler::compileOne(wl::makeCrs(16, 4), 1, false, false);
    SpatialScheduler scheduler(tile);
    EXPECT_FALSE(scheduler.schedule(crs).has_value());
}

TEST(Scheduler, CapabilityMismatchFails)
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 6;
    config.numOutPorts = 3;
    config.datapathBytes = 64;
    // Integer-only PEs cannot host f64 FIR.
    config.peCapabilities = adg::intCapabilities(DataType::I64);
    adg::Adg tile = adg::buildMeshTile(config);
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(64, 8), 1, false, false);
    SpatialScheduler scheduler(tile);
    EXPECT_FALSE(scheduler.schedule(mdfg).has_value());
}

TEST(Scheduler, FirstFitRelaxesUnroll)
{
    // A tiny tile cannot host the most aggressive variant; first-fit
    // walks down to one that maps ("relax DFG complexity").
    adg::MeshConfig config;
    config.rows = 2;
    config.cols = 3;
    config.numPes = 3;
    config.numInPorts = 5;
    config.numOutPorts = 2;
    config.datapathBytes = 16;
    config.peCapabilities = adg::intCapabilities(DataType::I16);
    adg::Adg tile = adg::buildMeshTile(config);
    SpatialScheduler scheduler(tile);
    auto variants = compiler::compileVariants(wl::makeAccumulate(32));
    auto result = scheduler.scheduleFirstFit(variants);
    ASSERT_TRUE(result.has_value());
    // 16-byte datapath: at most 8 lanes of i16 -> unroll 8 fits, but
    // the chosen variant must fit the 16-byte ports too.
    EXPECT_LE(variants[result->second].unrollFactor, 8);
}

TEST(Scheduler, DelayFifosWithinBounds)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeBgr2Grey(32), 4, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    for (const auto &[inst, fifos] : result->delayFifos) {
        int max_depth =
            tile.node(result->placedOn(inst)).pe().maxDelayFifoDepth;
        for (auto [operand, depth] : fifos) {
            EXPECT_GT(depth, 0);
            EXPECT_LE(depth, max_depth);
        }
    }
}

TEST(Scheduler, BackingReflectsArrayPlacement)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(1024, 199), 2, true, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    auto backing = backingFromSchedule(*result, tile, mdfg);
    ASSERT_EQ(backing.size(), static_cast<size_t>(mdfg.numNodes()));
    int spad_streams = 0, rec_streams = 0;
    for (model::Backing b : backing) {
        spad_streams += b == model::Backing::Scratchpad;
        rec_streams += b == model::Backing::Recurrence;
    }
    EXPECT_GT(spad_streams, 0);  // 'a' is scratchpad-hinted and fits
    EXPECT_EQ(rec_streams, 2);   // c read/write recurrence pair
}

TEST(Scheduler, UsedCapabilitiesTracksInstructions)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 1, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    auto used = usedCapabilities(*result, mdfg);
    std::set<FuCapability> all;
    for (const auto &[pe, caps] : used)
        all.insert(caps.begin(), caps.end());
    EXPECT_TRUE(all.count({ Opcode::Mul, DataType::F64 }));
    EXPECT_TRUE(all.count({ Opcode::Add, DataType::F64 }));
}

TEST(Scheduler, RepairSurvivesIrrelevantMutation)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(32), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto prior = scheduler.schedule(mdfg);
    ASSERT_TRUE(prior.has_value());
    // Add an unrelated PE: prior placements all survive.
    adg::PeSpec pe;
    pe.capabilities = { { Opcode::Add, DataType::I64 } };
    adg::NodeId new_pe = tile.addPe(pe);
    adg::NodeId sw = tile.nodeIdsOfKind(adg::NodeKind::Switch)[0];
    tile.addEdge(sw, new_pe);
    tile.addEdge(new_pe, sw);
    SpatialScheduler scheduler2(tile);
    auto repaired = scheduler2.repair(mdfg, *prior);
    ASSERT_TRUE(repaired.has_value());
    for (const auto &[dfg_node, adg_node] : prior->placement)
        EXPECT_EQ(repaired->placedOn(dfg_node), adg_node);
}

TEST(Scheduler, RepairReplacesDeadPe)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(32), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto prior = scheduler.schedule(mdfg);
    ASSERT_TRUE(prior.has_value());
    // Kill the PE hosting the add instruction.
    dfg::NodeId inst =
        mdfg.nodeIdsOfKind(dfg::NodeKind::Instruction)[0];
    adg::NodeId victim = prior->placedOn(inst);
    tile.removeNode(victim);
    SpatialScheduler scheduler2(tile);
    auto repaired = scheduler2.repair(mdfg, *prior);
    ASSERT_TRUE(repaired.has_value());
    EXPECT_NE(repaired->placedOn(inst), victim);
    EXPECT_EQ(checkSchedule(*repaired, tile, mdfg), "");
}

TEST(Scheduler, CheckScheduleDetectsStaleness)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(32), 2, false, false);
    SpatialScheduler scheduler(tile);
    auto result = scheduler.schedule(mdfg);
    ASSERT_TRUE(result.has_value());
    dfg::NodeId inst =
        mdfg.nodeIdsOfKind(dfg::NodeKind::Instruction)[0];
    tile.removeNode(result->placedOn(inst));
    EXPECT_NE(checkSchedule(*result, tile, mdfg), "");
}

TEST(Scheduler, DeterministicWithSeed)
{
    adg::Adg tile = richTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(16), 2, false, false);
    SchedulerOptions options;
    options.seed = 99;
    SpatialScheduler a(tile, options);
    SpatialScheduler b(tile, options);
    auto ra = a.schedule(mdfg);
    auto rb = b.schedule(mdfg);
    ASSERT_TRUE(ra && rb);
    EXPECT_EQ(ra->placement, rb->placement);
    EXPECT_EQ(ra->routeCost, rb->routeCost);
}

} // namespace
} // namespace overgen::sched
