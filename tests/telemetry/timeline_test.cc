#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/batch.h"
#include "telemetry/sink.h"
#include "telemetry/timeline.h"
#include "workloads/suites.h"

// Interval time-series sampling (telemetry/timeline.h): rows are
// byte-identical for every sim::runBatch thread count, every row is
// valid compact JSON whose ledger sums to the sampled cycle, and the
// whole path is inert when `statsInterval` is zero. This binary runs
// under tsan in CI (one TimelineRun per concurrent job).

namespace overgen::telemetry {
namespace {

adg::SysAdg
testDesign(int tiles)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 4;
    design.sys.nocBytes = 32;
    return design;
}

struct Prepared
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

std::vector<Prepared>
prepareJobs()
{
    std::vector<wl::KernelSpec> specs = {
        wl::makeFir(128, 16),
        wl::makeAccumulate(32),
        wl::makeVecMax(32),
        wl::makeDerivative(18),
    };
    std::vector<Prepared> prepared;
    for (size_t i = 0; i < specs.size(); ++i) {
        Prepared p;
        p.spec = specs[i];
        p.design = testDesign(1 + static_cast<int>(i % 3));
        auto variants = compiler::compileVariants(p.spec);
        sched::SpatialScheduler scheduler(p.design.adg);
        auto fit = scheduler.scheduleFirstFit(variants);
        OG_ASSERT(fit.has_value(), "no schedule for ", p.spec.name);
        p.mdfg = std::move(variants[fit->second]);
        p.schedule = std::move(fit->first);
        prepared.push_back(std::move(p));
    }
    return prepared;
}

/** Jobs sharing @p sink, each with the unique per-index run label the
 * bench harness stamps (bench/common.h runPreparedBatch). */
std::vector<sim::SimJob>
toJobs(const std::vector<Prepared> &prepared, Sink *sink)
{
    std::vector<sim::SimJob> jobs;
    for (size_t i = 0; i < prepared.size(); ++i) {
        const Prepared &p = prepared[i];
        sim::SimJob job;
        job.spec = &p.spec;
        job.mdfg = &p.mdfg;
        job.schedule = &p.schedule;
        job.design = &p.design;
        job.config.sink = sink;
        job.config.runLabel =
            std::to_string(i) + ":" + p.spec.name;
        jobs.push_back(job);
    }
    return jobs;
}

TEST(TimelineRun, RowBufferRoundTrips)
{
    TimelineRun run("r");
    run.append("{\"a\":1}");
    std::string &row = run.beginRow();
    row += "{\"b\":2}";
    run.endRow();
    EXPECT_EQ(run.bytes(), "{\"a\":1}\n{\"b\":2}\n");
    std::vector<std::string> lines = run.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"a\":1}");
    EXPECT_EQ(lines[1], "{\"b\":2}");
}

TEST(Timeline, LinesSortByLabelNotCompletionOrder)
{
    Timeline timeline;
    TimelineRun *b = timeline.beginRun("1:b");
    TimelineRun *a = timeline.beginRun("0:a");
    b->append("{\"row\":\"b\"}");
    a->append("{\"row\":\"a\"}");
    EXPECT_EQ(timeline.rowCount(), 2u);
    std::vector<std::string> lines = timeline.lines();
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0], "{\"row\":\"a\"}");
    EXPECT_EQ(lines[1], "{\"row\":\"b\"}");
}

TEST(Timeline, ThreadCountLeavesBytesIdentical)
{
    std::vector<Prepared> prepared = prepareJobs();

    auto jsonl_with = [&](int threads) {
        SinkOptions opts;
        opts.statsInterval = 64;
        Sink sink(opts);
        std::vector<sim::SimJob> jobs = toJobs(prepared, &sink);
        sim::BatchOptions batch;
        batch.threads = threads;
        std::vector<sim::SimResult> results =
            sim::runBatch(jobs, batch);
        for (const sim::SimResult &r : results)
            EXPECT_TRUE(r.completed);
        EXPECT_GT(sink.timeline().rowCount(), 0u);
        std::string joined;
        for (const std::string &line : sink.timeline().lines()) {
            joined += line;
            joined += '\n';
        }
        return joined;
    };
    std::string serial = jsonl_with(1);
    std::string parallel = jsonl_with(4);
    EXPECT_EQ(serial, parallel);
}

TEST(Timeline, RowsParseAndLedgersSumToTheSampledCycle)
{
    std::vector<Prepared> prepared = prepareJobs();
    SinkOptions opts;
    opts.statsInterval = 32;
    Sink sink(opts);
    std::vector<sim::SimJob> jobs = toJobs(prepared, &sink);
    std::vector<sim::SimResult> results = sim::runBatch(jobs, {});
    for (const sim::SimResult &r : results)
        ASSERT_TRUE(r.completed);

    size_t rows = 0;
    for (const std::string &line : sink.timeline().lines()) {
        Json row = Json::parse(line);
        ASSERT_TRUE(row.isObject()) << line;
        ASSERT_TRUE(row.contains("comp")) << line;
        ASSERT_TRUE(row.contains("run")) << line;
        uint64_t cycle =
            static_cast<uint64_t>(row.at("cycle").asNumber());
        EXPECT_EQ(cycle % opts.statsInterval, 0u) << line;
        // With a sink attached every component ticks every cycle, so
        // a ledger snapshot at cycle c accounts exactly c cycles.
        const Json &ledger = row.at("ledger");
        ASSERT_TRUE(ledger.isObject()) << line;
        EXPECT_EQ(ledger.asObject().size(),
                  static_cast<size_t>(kNumCycleCategories))
            << line;
        uint64_t total = 0;
        for (const auto &[name, count] : ledger.asObject())
            total += static_cast<uint64_t>(count.asNumber());
        EXPECT_EQ(total, cycle) << line;
        ++rows;
    }
    EXPECT_GT(rows, 0u);
}

TEST(Timeline, ZeroIntervalSamplesNothing)
{
    std::vector<Prepared> prepared = prepareJobs();
    SinkOptions opts;
    ASSERT_EQ(opts.statsInterval, 0u);
    Sink sink(opts);
    EXPECT_FALSE(sink.timelineEnabled());
    std::vector<sim::SimJob> jobs = toJobs(prepared, &sink);
    std::vector<sim::SimResult> results = sim::runBatch(jobs, {});
    for (const sim::SimResult &r : results)
        EXPECT_TRUE(r.completed);
    EXPECT_EQ(sink.timeline().rowCount(), 0u);
}

} // namespace
} // namespace overgen::telemetry
