#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "sched/scheduler.h"
#include "sim/batch.h"
#include "sim/simulate.h"
#include "sim/snapshot.h"
#include "telemetry/phases.h"
#include "telemetry/sink.h"
#include "workloads/suites.h"

// Phase segmentation (telemetry/phases.h): the synthetic cases pin the
// segmentation algorithm itself — startup prefix, hysteresis-held
// steady span, drain, the no-steady degenerate — and the simulation
// cases pin the determinism contract: analyzeRunPhases produces a
// bit-identical PhaseProfile for every sim::runBatch thread count,
// every engine mode, and across a snapshot/resume seam, with spans
// summing exactly to the run's cycles and terminal ledgers.

namespace overgen {
namespace {

using telemetry::CycleCategory;
using telemetry::CycleLedger;
using telemetry::PhaseKind;
using telemetry::PhaseProfile;
using telemetry::PhaseSample;
using telemetry::PhaseSpan;

// ---------------------------------------------------------------------------
// Synthetic series helpers

/** Append one interval to a cumulative series: the new sample's
 * ledgers are the previous sample's plus the given per-interval tile
 * deltas (memory mirrors the tile total in Idle so the series stays
 * monotone without mattering to segmentation). */
void
addInterval(std::vector<PhaseSample> &samples, uint64_t interval_cycles,
            std::initializer_list<std::pair<CycleCategory, uint64_t>>
                tile_delta,
            uint64_t firings_delta = 0)
{
    PhaseSample next;
    if (!samples.empty())
        next = samples.back();
    next.cycle += interval_cycles;
    for (const auto &[cat, count] : tile_delta)
        next.tiles.counts[static_cast<int>(cat)] += count;
    next.memory.counts[static_cast<int>(CycleCategory::Idle)] +=
        interval_cycles;
    next.firings += firings_delta;
    samples.push_back(std::move(next));
}

TEST(AnalyzePhases, EmptySeriesYieldsEmptyProfile)
{
    PhaseProfile profile = telemetry::analyzePhases({});
    EXPECT_EQ(profile.cycles, 0u);
    EXPECT_TRUE(profile.spans.empty());
    EXPECT_FALSE(profile.reachedSteady);
    EXPECT_EQ(profile.rampCycles, 0u);
    EXPECT_EQ(profile.steadyIpc, 0.0);
}

TEST(AnalyzePhases, SingleSampleIsOneSteadySpan)
{
    // A run with no sampled rows collapses to one terminal sample:
    // its busy fraction is the peak by construction, so the whole run
    // is one steady span with the dominant stall as bottleneck.
    std::vector<PhaseSample> samples;
    addInterval(samples, 100,
                { { CycleCategory::Busy, 90 },
                  { CycleCategory::PortStall, 10 } },
                /*firings_delta=*/50);
    PhaseProfile profile =
        telemetry::analyzePhases(samples, /*instsPerFiring=*/2.0);
    EXPECT_EQ(profile.cycles, 100u);
    ASSERT_EQ(profile.spans.size(), 1u);
    EXPECT_EQ(profile.spans[0].kind, PhaseKind::Steady);
    EXPECT_EQ(profile.spans[0].beginCycle, 0u);
    EXPECT_EQ(profile.spans[0].endCycle, 100u);
    EXPECT_DOUBLE_EQ(profile.spans[0].busyFraction, 0.9);
    EXPECT_EQ(profile.spans[0].bottleneck, CycleCategory::PortStall);
    EXPECT_TRUE(profile.reachedSteady);
    EXPECT_EQ(profile.rampCycles, 0u);
    // 50 firings * 2 insts / 100 cycles.
    EXPECT_DOUBLE_EQ(profile.steadyIpc, 1.0);
}

TEST(AnalyzePhases, SegmentsStartupRampSteadyDrain)
{
    std::vector<PhaseSample> samples;
    // Startup-majority prefix (startup fraction 0.8 >= 0.5).
    addInterval(samples, 100,
                { { CycleCategory::Startup, 80 },
                  { CycleCategory::Busy, 10 },
                  { CycleCategory::Idle, 10 } });
    // Ramp: busy 0.5 is below the enter threshold (0.85 * 0.95).
    addInterval(samples, 100,
                { { CycleCategory::Busy, 50 },
                  { CycleCategory::PortStall, 50 } });
    // Steady: the peak interval and one held above the exit threshold.
    addInterval(samples, 100,
                { { CycleCategory::Busy, 95 },
                  { CycleCategory::PortStall, 5 } },
                /*firings_delta=*/95);
    addInterval(samples, 100,
                { { CycleCategory::Busy, 90 },
                  { CycleCategory::PortStall, 10 } },
                /*firings_delta=*/90);
    // Drain: busy 0.3 falls below the exit threshold (0.70 * 0.95).
    addInterval(samples, 100,
                { { CycleCategory::Busy, 30 },
                  { CycleCategory::Barrier, 70 } });

    PhaseProfile profile =
        telemetry::analyzePhases(samples, /*instsPerFiring=*/1.0);
    EXPECT_EQ(profile.cycles, 500u);
    ASSERT_EQ(profile.spans.size(), 4u);
    const PhaseSpan &startup = profile.spans[0];
    EXPECT_EQ(startup.kind, PhaseKind::Startup);
    EXPECT_EQ(startup.beginCycle, 0u);
    EXPECT_EQ(startup.endCycle, 100u);
    EXPECT_EQ(startup.bottleneck, CycleCategory::Startup);
    const PhaseSpan &ramp = profile.spans[1];
    EXPECT_EQ(ramp.kind, PhaseKind::Ramp);
    EXPECT_EQ(ramp.beginCycle, 100u);
    EXPECT_EQ(ramp.endCycle, 200u);
    EXPECT_EQ(ramp.bottleneck, CycleCategory::PortStall);
    const PhaseSpan &steady = profile.spans[2];
    EXPECT_EQ(steady.kind, PhaseKind::Steady);
    EXPECT_EQ(steady.beginCycle, 200u);
    EXPECT_EQ(steady.endCycle, 400u);
    EXPECT_DOUBLE_EQ(steady.busyFraction, 185.0 / 200.0);
    const PhaseSpan &drain = profile.spans[3];
    EXPECT_EQ(drain.kind, PhaseKind::Drain);
    EXPECT_EQ(drain.beginCycle, 400u);
    EXPECT_EQ(drain.endCycle, 500u);
    EXPECT_EQ(drain.bottleneck, CycleCategory::Barrier);

    EXPECT_TRUE(profile.reachedSteady);
    EXPECT_EQ(profile.rampCycles, 200u);  // startup + ramp
    EXPECT_EQ(profile.cyclesIn(PhaseKind::Steady), 200u);
    // (95 + 90) firings over the 200 steady cycles.
    EXPECT_DOUBLE_EQ(profile.steadyIpc, 185.0 / 200.0);
    ASSERT_EQ(profile.busyFractions.size(), 5u);
    EXPECT_DOUBLE_EQ(profile.busyFractions[0], 0.1);
    EXPECT_DOUBLE_EQ(profile.busyFractions[2], 0.95);
}

TEST(AnalyzePhases, HysteresisBridgesDipsInsideSteady)
{
    // A dip to 0.75 sits between the exit threshold (0.70 * peak) and
    // the enter threshold (0.85 * peak) for peak 1.0: it must not
    // fragment the steady span.
    std::vector<PhaseSample> samples;
    addInterval(samples, 100, { { CycleCategory::Busy, 100 } });
    addInterval(samples, 100,
                { { CycleCategory::Busy, 75 },
                  { CycleCategory::DramFill, 25 } });
    addInterval(samples, 100, { { CycleCategory::Busy, 100 } });
    PhaseProfile profile = telemetry::analyzePhases(samples);
    ASSERT_EQ(profile.spans.size(), 1u);
    EXPECT_EQ(profile.spans[0].kind, PhaseKind::Steady);
    EXPECT_EQ(profile.spans[0].endCycle, 300u);
    EXPECT_EQ(profile.rampCycles, 0u);
}

TEST(AnalyzePhases, NoSteadyStateMeansWholeRunRamps)
{
    // The busy peak sits inside the startup prefix; nothing after it
    // reaches the enter threshold, so no steady phase exists and the
    // whole run counts as ramp cycles.
    std::vector<PhaseSample> samples;
    addInterval(samples, 100,
                { { CycleCategory::Startup, 60 },
                  { CycleCategory::Busy, 40 } });
    addInterval(samples, 100,
                { { CycleCategory::Busy, 20 },
                  { CycleCategory::Idle, 80 } });
    PhaseProfile profile =
        telemetry::analyzePhases(samples, /*instsPerFiring=*/1.0);
    EXPECT_FALSE(profile.reachedSteady);
    EXPECT_EQ(profile.rampCycles, profile.cycles);
    EXPECT_EQ(profile.steadyIpc, 0.0);
    ASSERT_EQ(profile.spans.size(), 2u);
    EXPECT_EQ(profile.spans[0].kind, PhaseKind::Startup);
    EXPECT_EQ(profile.spans[1].kind, PhaseKind::Ramp);
}

// ---------------------------------------------------------------------------
// Row parsing and the terminal sample

TEST(PhaseSamples, RowsAggregateByCycleAcrossComponents)
{
    // Rows of one boundary (memory + each tile) merge into one sample
    // regardless of append order; tile ledgers/gauges sum, the memory
    // ledger stays separate.
    std::string rows;
    rows += "{\"run\":\"r\",\"cycle\":64,\"comp\":\"tile1\","
            "\"iterations\":3,\"firings\":7,"
            "\"ledger\":{\"busy\":50,\"port_stall\":14}}\n";
    rows += "{\"run\":\"r\",\"cycle\":128,\"comp\":\"memory\","
            "\"ledger\":{\"busy\":8,\"idle\":120}}\n";
    rows += "{\"run\":\"r\",\"cycle\":64,\"comp\":\"memory\","
            "\"ledger\":{\"busy\":4,\"idle\":60}}\n";
    rows += "{\"run\":\"r\",\"cycle\":64,\"comp\":\"tile0\","
            "\"iterations\":5,\"firings\":11,"
            "\"ledger\":{\"busy\":60,\"ii_gate\":4}}\n";
    rows += "{\"run\":\"r\",\"cycle\":128,\"comp\":\"tile0\","
            "\"iterations\":9,\"firings\":20,"
            "\"ledger\":{\"busy\":124,\"ii_gate\":4}}\n";
    rows += "{\"run\":\"r\",\"cycle\":128,\"comp\":\"tile1\","
            "\"iterations\":6,\"firings\":13,"
            "\"ledger\":{\"busy\":110,\"port_stall\":18}}\n";

    std::vector<PhaseSample> samples =
        telemetry::phaseSamplesFromRows(rows);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples[0].cycle, 64u);
    EXPECT_EQ(samples[0].tiles[CycleCategory::Busy], 110u);
    EXPECT_EQ(samples[0].tiles[CycleCategory::PortStall], 14u);
    EXPECT_EQ(samples[0].tiles[CycleCategory::IiGate], 4u);
    EXPECT_EQ(samples[0].memory[CycleCategory::Idle], 60u);
    EXPECT_EQ(samples[0].iterations, 8u);
    EXPECT_EQ(samples[0].firings, 18u);
    EXPECT_EQ(samples[1].cycle, 128u);
    EXPECT_EQ(samples[1].tiles[CycleCategory::Busy], 234u);
    EXPECT_EQ(samples[1].memory[CycleCategory::Busy], 8u);
    EXPECT_EQ(samples[1].iterations, 15u);
    EXPECT_EQ(samples[1].firings, 33u);
}

TEST(PhaseSamples, TerminalSampleClosesTheSeriesExactlyOnce)
{
    std::vector<PhaseSample> samples;
    addInterval(samples, 100, { { CycleCategory::Busy, 100 } });

    CycleLedger tiles;
    tiles.counts[static_cast<int>(CycleCategory::Busy)] = 130;
    tiles.counts[static_cast<int>(CycleCategory::Barrier)] = 20;
    CycleLedger memory;
    memory.counts[static_cast<int>(CycleCategory::Idle)] = 150;
    telemetry::appendTerminalSample(samples, 150, tiles, memory, 40,
                                    70);
    ASSERT_EQ(samples.size(), 2u);
    EXPECT_EQ(samples.back().cycle, 150u);
    EXPECT_EQ(samples.back().tiles, tiles);
    EXPECT_EQ(samples.back().firings, 70u);

    // A terminal boundary that coincides with the last row is a no-op.
    telemetry::appendTerminalSample(samples, 150, tiles, memory, 40,
                                    70);
    EXPECT_EQ(samples.size(), 2u);

    // A zero-cycle run has no intervals to segment.
    std::vector<PhaseSample> empty;
    telemetry::appendTerminalSample(empty, 0, {}, {}, 0, 0);
    EXPECT_TRUE(empty.empty());

    // A run with no sampled rows gets a single whole-run sample.
    telemetry::appendTerminalSample(empty, 150, tiles, memory, 40, 70);
    ASSERT_EQ(empty.size(), 1u);
    EXPECT_EQ(empty[0].cycle, 150u);
}

// ---------------------------------------------------------------------------
// Simulation invariance: thread counts, engine modes, resume seam

adg::Adg
richTile()
{
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes = 64;
    config.spadCapacityKiB = 64;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    for (DataType t : { DataType::I16, DataType::I32 }) {
        auto sub = adg::intCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType t : { DataType::F32, DataType::F64 }) {
        auto sub = adg::floatCapabilities(t);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

adg::SysAdg
testDesign(int tiles)
{
    adg::SysAdg design;
    design.adg = richTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = 8;
    design.sys.nocBytes = 64;
    return design;
}

wl::KernelSpec
smallWorkload(const std::string &name)
{
    if (name == "cholesky")
        return wl::makeCholesky(16);
    if (name == "fft")
        return wl::makeFft(7);
    if (name == "fir")
        return wl::makeFir(128, 16);
    if (name == "solver")
        return wl::makeSolver(16);
    if (name == "mm")
        return wl::makeMm(8);
    if (name == "stencil-3d")
        return wl::makeStencil3d(8, 2);
    if (name == "crs")
        return wl::makeCrs(32, 4);
    if (name == "gemm")
        return wl::makeGemm(8);
    if (name == "stencil-2d")
        return wl::makeStencil2d(8, 2);
    if (name == "ellpack")
        return wl::makeEllpack(32, 4);
    if (name == "channel-ext")
        return wl::makeChannelExtract(16);
    if (name == "bgr2grey")
        return wl::makeBgr2Grey(16);
    if (name == "blur")
        return wl::makeBlur(16);
    if (name == "accumulate")
        return wl::makeAccumulate(16);
    if (name == "acc-sqr")
        return wl::makeAccSqr(16);
    if (name == "vecmax")
        return wl::makeVecMax(16);
    if (name == "acc-weight")
        return wl::makeAccWeight(16);
    if (name == "convert-bit")
        return wl::makeConvertBit(16);
    if (name == "derivative")
        return wl::makeDerivative(18);
    OG_FATAL("unknown small workload ", name);
}

const char *const kAllWorkloads[] = {
    "cholesky",   "fft",      "fir",        "solver",
    "mm",         "stencil-3d", "crs",      "gemm",
    "stencil-2d", "ellpack",  "channel-ext", "bgr2grey",
    "blur",       "accumulate", "acc-sqr",  "vecmax",
    "acc-weight", "convert-bit", "derivative",
};

struct Compiled
{
    wl::KernelSpec spec;
    adg::SysAdg design;
    dfg::Mdfg mdfg;
    sched::Schedule schedule;
};

Compiled
compileFor(const std::string &name, int tiles)
{
    Compiled c;
    c.spec = smallWorkload(name);
    c.design = testDesign(tiles);
    auto variants = compiler::compileVariants(c.spec);
    sched::SpatialScheduler scheduler(c.design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    OG_ASSERT(fit.has_value(), "no schedule for ", name);
    c.mdfg = std::move(variants[fit->second]);
    c.schedule = std::move(fit->first);
    return c;
}

/** Simulate @p c with a fresh sink sampling at @p interval. */
sim::SimResult
runSampled(const Compiled &c, uint64_t interval, sim::SimConfig config)
{
    telemetry::SinkOptions opts;
    opts.statsInterval = interval;
    telemetry::Sink sink(opts);
    config.sink = &sink;
    config.runLabel = "0:" + c.spec.name;
    wl::Memory memory;
    memory.init(c.spec);
    return sim::simulate(c.spec, c.mdfg, c.schedule, c.design, memory,
                         config);
}

/** The profile must tile the run exactly: spans cover (0, cycles]
 * contiguously and their ledgers sum to the run's terminal ledgers. */
void
expectExactCoverage(const PhaseProfile &profile,
                    const sim::SimResult &result,
                    const std::string &label)
{
    EXPECT_EQ(profile.cycles, result.cycles) << label;
    uint64_t covered = 0;
    uint64_t previous_end = 0;
    CycleLedger tiles;
    CycleLedger memory;
    for (const PhaseSpan &span : profile.spans) {
        EXPECT_EQ(span.beginCycle, previous_end) << label;
        previous_end = span.endCycle;
        covered += span.cycles();
        for (int cat = 0; cat < telemetry::kNumCycleCategories;
             ++cat) {
            tiles.counts[cat] += span.tiles.counts[cat];
            memory.counts[cat] += span.memory.counts[cat];
        }
    }
    EXPECT_EQ(covered, result.cycles) << label;
    CycleLedger terminal_tiles;
    for (const sim::TileStats &tile : result.tiles)
        for (int cat = 0; cat < telemetry::kNumCycleCategories; ++cat)
            terminal_tiles.counts[cat] += tile.ledger.counts[cat];
    EXPECT_EQ(tiles, terminal_tiles) << label;
    EXPECT_EQ(memory, result.memory.ledger) << label;
}

class PhaseInvariance : public ::testing::TestWithParam<const char *>
{
};

TEST_P(PhaseInvariance, ProfileIsIdenticalInEveryEngineMode)
{
    Compiled c = compileFor(GetParam(), 2);

    sim::SimResult fast = runSampled(c, 64, sim::SimConfig{});
    ASSERT_TRUE(fast.completed) << GetParam();
    PhaseProfile reference = sim::analyzeRunPhases(fast);
    expectExactCoverage(reference, fast, GetParam());

    sim::SimConfig naive;
    naive.noFastForward = true;
    sim::SimConfig checked;
    checked.checkFastForward = true;
    for (const auto &[config, label] :
         { std::pair<sim::SimConfig, const char *>{ naive, "naive" },
           { checked, "checked" } }) {
        sim::SimResult result = runSampled(c, 64, config);
        const std::string tag =
            std::string(GetParam()) + " " + label;
        EXPECT_EQ(result.timelineRows, fast.timelineRows) << tag;
        EXPECT_EQ(sim::analyzeRunPhases(result), reference) << tag;
    }
}

TEST_P(PhaseInvariance, ResumeSeamReconstructsTheFullProfile)
{
    Compiled c = compileFor(GetParam(), 2);

    // Capture run: checkpoints + a sampled timeline.
    telemetry::SinkOptions opts;
    opts.statsInterval = 32;
    telemetry::Sink sink(opts);
    sim::SnapshotCollector collector;
    sim::SimConfig capture;
    capture.sink = &sink;
    capture.runLabel = "0:" + c.spec.name;
    capture.checkpointEvery = 64;
    capture.checkpointSink = &collector;
    wl::Memory memory;
    memory.init(c.spec);
    sim::SimResult full = sim::simulate(c.spec, c.mdfg, c.schedule,
                                        c.design, memory, capture);
    ASSERT_TRUE(full.completed) << GetParam();
    ASSERT_GE(collector.snaps.size(), 2u) << GetParam();
    PhaseProfile reference = sim::analyzeRunPhases(full);

    // Resume from the middle checkpoint with its own sink: the
    // resumed run samples only post-checkpoint boundaries, and the
    // interrupted run's earlier rows complete the series.
    size_t mid = collector.snaps.size() / 2;
    telemetry::Sink resumed_sink(opts);
    sim::SimConfig resume_cfg;
    resume_cfg.sink = &resumed_sink;
    resume_cfg.runLabel = "0:" + c.spec.name;
    wl::Memory resumed_memory;
    resumed_memory.init(c.spec);
    sim::SimResult resumed =
        sim::resumeFrom(collector.snaps[mid], c.spec, c.mdfg,
                        c.schedule, c.design, resumed_memory,
                        resume_cfg);
    ASSERT_TRUE(resumed.completed) << GetParam();

    // The resumed rows are a byte-exact suffix of the full run's.
    ASSERT_LE(resumed.timelineRows.size(), full.timelineRows.size())
        << GetParam();
    std::string prefix = full.timelineRows.substr(
        0, full.timelineRows.size() - resumed.timelineRows.size());
    EXPECT_EQ(prefix + resumed.timelineRows, full.timelineRows)
        << GetParam();

    EXPECT_EQ(sim::analyzeRunPhases(resumed, prefix), reference)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, PhaseInvariance,
                         ::testing::ValuesIn(kAllWorkloads),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &ch : name)
                                 if (ch == '-')
                                     ch = '_';
                             return name;
                         });

TEST(PhaseRun, ThreadCountLeavesProfilesIdentical)
{
    std::vector<Compiled> prepared;
    for (const char *name :
         { "fir", "accumulate", "vecmax", "derivative" })
        prepared.push_back(compileFor(name, 2));

    auto profiles_with = [&](int threads) {
        telemetry::SinkOptions opts;
        opts.statsInterval = 64;
        telemetry::Sink sink(opts);
        std::vector<sim::SimJob> jobs;
        for (size_t i = 0; i < prepared.size(); ++i) {
            const Compiled &c = prepared[i];
            sim::SimJob job;
            job.spec = &c.spec;
            job.mdfg = &c.mdfg;
            job.schedule = &c.schedule;
            job.design = &c.design;
            job.config.sink = &sink;
            job.config.runLabel =
                std::to_string(i) + ":" + c.spec.name;
            jobs.push_back(job);
        }
        sim::BatchOptions batch;
        batch.threads = threads;
        std::vector<sim::SimResult> results =
            sim::runBatch(jobs, batch);
        std::vector<PhaseProfile> profiles;
        for (const sim::SimResult &r : results) {
            EXPECT_TRUE(r.completed);
            EXPECT_FALSE(r.timelineRows.empty());
            profiles.push_back(sim::analyzeRunPhases(r));
        }
        return profiles;
    };
    std::vector<PhaseProfile> serial = profiles_with(1);
    std::vector<PhaseProfile> two = profiles_with(2);
    std::vector<PhaseProfile> four = profiles_with(4);
    ASSERT_EQ(serial.size(), prepared.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i], two[i]) << prepared[i].spec.name;
        EXPECT_EQ(serial[i], four[i]) << prepared[i].spec.name;
    }
}

TEST(PhaseRun, NoSampledRowsCollapseToOneWholeRunSpan)
{
    Compiled c = compileFor("fir", 1);
    wl::Memory memory;
    memory.init(c.spec);
    sim::SimResult result = sim::simulate(c.spec, c.mdfg, c.schedule,
                                          c.design, memory);
    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(result.timelineRows.empty());
    PhaseProfile profile = sim::analyzeRunPhases(result);
    EXPECT_EQ(profile.cycles, result.cycles);
    ASSERT_EQ(profile.spans.size(), 1u);
    EXPECT_EQ(profile.spans[0].beginCycle, 0u);
    EXPECT_EQ(profile.spans[0].endCycle, result.cycles);
    expectExactCoverage(profile, result, "no-rows");
}

} // namespace
} // namespace overgen
