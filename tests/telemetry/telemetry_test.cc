#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "dse/explorer.h"
#include "model/perf.h"
#include "sched/scheduler.h"
#include "sim/simulate.h"
#include "telemetry/attribution.h"
#include "telemetry/bridge.h"
#include "telemetry/registry.h"
#include "telemetry/sink.h"
#include "telemetry/trace.h"
#include "workloads/suites.h"

namespace overgen::telemetry {
namespace {

TEST(Registry, CountersAndDistributions)
{
    Registry reg;
    Counter &c = reg.counter("sim/k/cycles");
    c.inc();
    c.add(9);
    EXPECT_EQ(c.value(), 10u);
    // Same path returns the same counter.
    EXPECT_EQ(&reg.counter("sim/k/cycles"), &c);

    Distribution &d = reg.distribution("sim/k/queue");
    d.record(2.0);
    d.record(4.0);
    EXPECT_EQ(d.count(), 2u);
    EXPECT_DOUBLE_EQ(d.mean(), 3.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
}

TEST(Registry, ToJsonNestsByPath)
{
    Registry reg;
    reg.counter("a/b/c").add(7);
    reg.counter("a/d").add(1);
    Json j = reg.toJson();
    EXPECT_EQ(j.at("a").at("b").at("c").asNumber(), 7.0);
    EXPECT_EQ(j.at("a").at("d").asNumber(), 1.0);
}

TEST(Trace, RoundTripsThroughJsonParser)
{
    TraceEmitter trace;
    trace.processName(1, "proc");
    trace.threadName(1, 0, "thread");
    trace.begin("work", "cat", 1, 0, 5);
    trace.counter("level", 1, 0, 6, 3.5);
    trace.instant("ping", "cat", 1, 0, 7);
    trace.end("work", "cat", 1, 0, 9);

    std::string text = trace.toJson().dump();
    Json parsed = Json::parse(text);
    const Json::Array &events = parsed.at("traceEvents").asArray();
    EXPECT_EQ(events.size(), 6u);
    for (const Json &e : events) {
        EXPECT_TRUE(e.at("ph").isString());
        EXPECT_TRUE(e.at("pid").isNumber());
    }
}

/** Run one kernel on the general overlay with @p config. */
sim::SimResult
runGeneral(const wl::KernelSpec &spec, const sim::SimConfig &config,
           model::PerfBreakdown *prediction = nullptr)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = 4;
    design.sys.l2Banks = 4;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    compiler::CompileOptions copts;
    copts.applyTuning = true;
    auto variants = compiler::compileVariants(spec, copts);
    sched::SpatialScheduler scheduler(design.adg);
    auto fit = scheduler.scheduleFirstFit(variants);
    EXPECT_TRUE(fit.has_value()) << spec.name;
    if (!fit)
        return {};
    if (prediction != nullptr) {
        model::PerfInput input;
        input.mdfg = &variants[fit->second];
        input.backing = sched::backingFromSchedule(
            fit->first, design.adg, variants[fit->second]);
        *prediction = model::estimateIpc(input, design.adg,
                                         design.sys);
    }
    wl::Memory memory;
    memory.init(spec);
    return sim::simulate(spec, variants[fit->second], fit->first,
                         design, memory, config);
}

TEST(Sink, NullSinkChangesNoSimulatedBehavior)
{
    wl::KernelSpec spec = wl::makeFir(256, 16);
    sim::SimResult bare = runGeneral(spec, {});

    SinkOptions opts;
    opts.enableTrace = true;
    Sink sink(opts);
    sim::SimConfig config;
    config.sink = &sink;
    sim::SimResult observed = runGeneral(spec, config);

    // Observation only: the sink must not perturb the simulation.
    EXPECT_EQ(bare.cycles, observed.cycles);
    EXPECT_EQ(bare.ipc, observed.ipc);
    EXPECT_EQ(bare.memory.nocBytes, observed.memory.nocBytes);
    EXPECT_FALSE(sink.trace().empty());
}

TEST(Sink, RegistryDeterministicAcrossIdenticalRuns)
{
    wl::KernelSpec spec = wl::makeAccumulate();
    Sink first, second;
    sim::SimConfig config;
    config.sink = &first;
    runGeneral(spec, config);
    config.sink = &second;
    runGeneral(spec, config);
    EXPECT_EQ(first.registry().toJson().dump(2),
              second.registry().toJson().dump(2));
}

TEST(Sink, SimulationTraceHasMatchedBeginEndPairs)
{
    SinkOptions opts;
    opts.enableTrace = true;
    Sink sink(opts);
    sim::SimConfig config;
    config.sink = &sink;
    runGeneral(wl::makeMm(), config);

    std::string text = sink.trace().toJson().dump();
    Json parsed = Json::parse(text);
    const Json::Array &events = parsed.at("traceEvents").asArray();
    ASSERT_FALSE(events.empty());

    // Depth per (pid, tid, name) must never go negative and must
    // return to zero: every B has its E.
    std::map<std::tuple<int, int, std::string>, int> depth;
    for (const Json &e : events) {
        const std::string &ph = e.at("ph").asString();
        if (ph != "B" && ph != "E")
            continue;
        auto key = std::make_tuple(
            static_cast<int>(e.at("pid").asNumber()),
            static_cast<int>(e.at("tid").asNumber()),
            e.at("name").asString());
        depth[key] += ph == "B" ? 1 : -1;
        EXPECT_GE(depth[key], 0) << std::get<2>(key);
    }
    for (const auto &[key, d] : depth)
        EXPECT_EQ(d, 0) << std::get<2>(key);
}

TEST(Dse, OneJsonlRecordPerIteration)
{
    Sink sink;
    dse::DseOptions options;
    options.iterations = 6;
    options.seed = 3;
    options.sink = &sink;
    options.telemetryLabel = "test-run";
    dse::DseResult result =
        dse::exploreOverlay({ wl::makeAccumulate() }, options);

    // Heartbeat progress records share the stream, marked by a
    // "type" key; iteration records carry none.
    std::vector<Json> iters;
    size_t heartbeats = 0;
    for (const std::string &line : sink.dseLines()) {
        Json record = Json::parse(line);
        if (record.asObject().count("type") > 0) {
            EXPECT_EQ(record.at("type").asString(), "heartbeat");
            EXPECT_EQ(record.at("run").asString(), "test-run");
            EXPECT_TRUE(record.at("best_objective").asNumber() > 0.0);
            EXPECT_TRUE(record.at("candidates_per_sec").isNumber());
            ++heartbeats;
            continue;
        }
        iters.push_back(std::move(record));
    }
    ASSERT_EQ(iters.size(), static_cast<size_t>(result.iterationsRun));
    EXPECT_GE(heartbeats, 1u);
    EXPECT_EQ(sink.registry().counter("dse/heartbeats").value(),
              heartbeats);
    int accepted = 0;
    for (size_t i = 0; i < iters.size(); ++i) {
        const Json &record = iters[i];
        EXPECT_EQ(record.at("run").asString(), "test-run");
        EXPECT_EQ(record.at("iteration").asNumber(),
                  static_cast<double>(i + 1));
        EXPECT_TRUE(record.at("objective").asNumber() > 0.0);
        EXPECT_TRUE(record.at("accepted").isBool());
        EXPECT_TRUE(record.at("mutations").isArray());
        accepted += record.at("accepted").asBool() ? 1 : 0;
    }
    EXPECT_EQ(accepted, result.accepted);
    EXPECT_EQ(sink.registry().counter("dse/iterations").value(),
              static_cast<uint64_t>(result.iterationsRun));
}

TEST(Attribution, ModelClassOf)
{
    EXPECT_EQ(modelClassOf("dram"), "memory");
    EXPECT_EQ(modelClassOf("l2"), "memory");
    EXPECT_EQ(modelClassOf("compute"), "compute");
    EXPECT_EQ(modelClassOf("fabric"), "compute");
    EXPECT_EQ(modelClassOf("spad"), "compute");
}

/** Simulate + predict one kernel and return its attribution. */
KernelAttribution
attributeOnGeneral(const wl::KernelSpec &spec)
{
    model::PerfBreakdown prediction;
    sim::SimConfig config;
    sim::SimResult result = runGeneral(spec, config, &prediction);
    EXPECT_TRUE(result.completed) << spec.name;
    adg::SystemParams sys;
    sys.numTiles = 4;
    sys.l2Banks = 4;
    sys.l2CapacityKiB = 512;
    sys.nocBytes = 32;
    return attributeKernel(
        observeKernel(spec.name, result, config, sys, prediction));
}

TEST(Attribution, AgreesOnClearlyComputeBoundKernel)
{
    // Dense mm on the general overlay is fabric-limited: low memory
    // utilization, model predicts a compute-level bottleneck.
    KernelAttribution a = attributeOnGeneral(wl::makeMm());
    EXPECT_EQ(a.simClass, "compute");
    EXPECT_EQ(a.modelClass, "compute");
    EXPECT_TRUE(a.agree);
}

TEST(Attribution, AgreesOnClearlyMemoryBoundKernel)
{
    // gemm streams whole matrices through the L2: bandwidth-bound in
    // both the simulator and the analytical model.
    KernelAttribution a = attributeOnGeneral(wl::makeGemm());
    EXPECT_EQ(a.simClass, "memory");
    EXPECT_EQ(a.modelClass, "memory");
    EXPECT_TRUE(a.agree);
}

TEST(Attribution, ReportFlagsDisagreements)
{
    KernelObservation agree_obs;
    agree_obs.kernel = "calm";
    agree_obs.cycles = 1000;
    agree_obs.tiles = 1;
    agree_obs.fabricStallCycles = 10;
    agree_obs.dramBandwidthBytes = 16.0;
    agree_obs.l2Bytes = 100;
    agree_obs.l2BandwidthBytes = 64.0;
    agree_obs.modelBottleneck = "compute";

    KernelObservation conflict_obs = agree_obs;
    conflict_obs.kernel = "torn";
    conflict_obs.modelBottleneck = "dram";

    AttributionReport report =
        buildReport({ agree_obs, conflict_obs });
    ASSERT_EQ(report.kernels.size(), 2u);
    EXPECT_TRUE(report.kernels[0].agree);
    EXPECT_FALSE(report.kernels[1].agree);
    std::vector<std::string> bad = report.disagreements();
    ASSERT_EQ(bad.size(), 1u);
    EXPECT_EQ(bad[0], "torn");
    // The printable report names the offender.
    EXPECT_NE(report.format().find("torn"), std::string::npos);
}

} // namespace
} // namespace overgen::telemetry
