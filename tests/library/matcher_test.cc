/**
 * @file
 * Matcher contract tests: for every workload of the suite, the
 * matcher's pick equals an exhaustive (entry, kernel) oracle scan,
 * and the pick is bit-identical across scoring thread counts.
 */

#include "library/matcher.h"

#include <gtest/gtest.h>

#include "adg/builders.h"
#include "library/service.h"
#include "workloads/suites.h"

using namespace overgen;
using namespace overgen::library;

namespace {

adg::SysAdg
testDesign(int tiles, int l2Banks)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = l2Banks;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

/** A library with perf-diverse entries: three general-overlay systems
 * at different scales plus one DSE-warmed specialist. */
OverlayLibrary
testLibrary()
{
    OverlayLibrary lib;
    for (int tiles : { 1, 4, 8 }) {
        LibraryEntry entry;
        entry.design = testDesign(tiles, tiles >= 4 ? 4 : 2);
        entry.origin = "test:general-x" + std::to_string(tiles);
        lib.insert(std::move(entry));
    }
    lib.insert(warmOverlay("fir", /*smallSize=*/true,
                           /*applyTuning=*/true, /*seed=*/42,
                           /*iterations=*/4));
    return lib;
}

MatchOptions
matchOptions(int threads = 1)
{
    MatchOptions options;
    options.applyTuning = true;
    options.threads = threads;
    return options;
}

/** Exhaustive oracle: score every entry, scan for the best feasible
 * one with a strict > (lowest index wins ties). */
MatchResult
oracleScan(const OverlayLibrary &lib, const wl::KernelSpec &spec)
{
    MatchResult best;
    for (size_t i = 0; i < lib.entries.size(); ++i) {
        KernelRecord record = scoreKernelOnDesign(
            spec, lib.entries[i].design, matchOptions());
        if (!record.feasible)
            continue;
        if (best.entryIndex < 0 || record.score > best.record.score) {
            best.entryIndex = static_cast<int>(i);
            best.record = record;
        }
    }
    return best;
}

void
expectSameResult(const MatchResult &got, const MatchResult &want,
                 const std::string &kernel)
{
    EXPECT_EQ(got.entryIndex, want.entryIndex) << kernel;
    EXPECT_EQ(got.record.kernel, want.record.kernel) << kernel;
    EXPECT_EQ(got.record.feasible, want.record.feasible) << kernel;
    // Bit-exact doubles: the same pure function must have run.
    EXPECT_EQ(got.record.score, want.record.score) << kernel;
    EXPECT_EQ(got.record.ipc, want.record.ipc) << kernel;
    EXPECT_EQ(got.record.variant, want.record.variant) << kernel;
    EXPECT_EQ(got.record.bottleneck, want.record.bottleneck)
        << kernel;
}

} // namespace

TEST(LibraryMatcher, PickEqualsExhaustiveOracleForEveryWorkload)
{
    OverlayLibrary lib = testLibrary();
    size_t hits = 0;
    for (const wl::KernelSpec &paper : wl::allWorkloads()) {
        wl::KernelSpec spec = wl::smallWorkloadByName(paper.name);
        MatchResult want = oracleScan(lib, spec);
        MatchResult got = matchKernel(lib, spec, matchOptions());
        expectSameResult(got, want, spec.name);
        hits += got.hit() ? 1 : 0;
    }
    // The general overlay schedules most of the suite: the library
    // must actually be routing, not vacuously missing everything.
    EXPECT_GE(hits, wl::allWorkloads().size() / 2);
}

TEST(LibraryMatcher, PickIsBitIdenticalAcrossThreadCounts)
{
    OverlayLibrary lib = testLibrary();
    for (const wl::KernelSpec &paper : wl::allWorkloads()) {
        wl::KernelSpec spec = wl::smallWorkloadByName(paper.name);
        MatchResult serial = matchKernel(lib, spec, matchOptions(1));
        for (int threads : { 2, 4 }) {
            MatchResult parallel =
                matchKernel(lib, spec, matchOptions(threads));
            expectSameResult(parallel, serial,
                             spec.name + " @" +
                                 std::to_string(threads));
        }
    }
}

TEST(LibraryMatcher, MemoizedRecordsReproduceTheFreshPick)
{
    OverlayLibrary lib = testLibrary();
    for (const char *kernel : { "fir", "mm", "vecmax" }) {
        wl::KernelSpec spec = wl::smallWorkloadByName(kernel);
        MatchResult fresh = matchKernel(lib, spec, matchOptions());
        MatchResult recording =
            matchAndRecord(lib, spec, matchOptions());
        expectSameResult(recording, fresh, spec.name);
        // Every entry now carries a record for this kernel...
        for (const LibraryEntry &entry : lib.entries)
            EXPECT_NE(entry.findRecord(spec.name), nullptr);
        // ...and the pure-lookup re-match agrees bit-for-bit.
        MatchResult memoized = matchKernel(lib, spec, matchOptions());
        expectSameResult(memoized, fresh, spec.name);
    }
}

TEST(LibraryMatcher, EmptyLibraryAndInfeasibleKernelsMiss)
{
    OverlayLibrary empty;
    EXPECT_FALSE(
        matchKernel(empty, wl::smallWorkloadByName("fir")).hit());

    // A tiny mesh whose single capability (f64 sqrt) matches nothing
    // mm needs: every request must miss with feasible=false records,
    // not crash.
    OverlayLibrary weak;
    LibraryEntry entry;
    adg::MeshConfig weakMesh;
    weakMesh.rows = 2;
    weakMesh.cols = 2;
    weakMesh.numPes = 1;
    weakMesh.peCapabilities = { { Opcode::Sqrt, DataType::F64 } };
    entry.design.adg = adg::buildMeshTile(weakMesh);
    entry.design.sys.numTiles = 1;
    entry.origin = "test:weak";
    weak.insert(std::move(entry));
    MatchResult result =
        matchKernel(weak, wl::smallWorkloadByName("mm"),
                    matchOptions());
    EXPECT_FALSE(result.hit());
    EXPECT_EQ(result.entryIndex, -1);
}
