/**
 * @file
 * Warming determinism tests: replaying a request trace against an
 * empty library — in-process, through the forked-worker serve
 * coordinator at several worker counts, and under a SIGKILL injected
 * mid-warm — always produces byte-identical library files and merged
 * serve rows (the batched-admission contract of library/service.h).
 */

#include "library/service.h"

#include <signal.h>

#include <gtest/gtest.h>

#include "serve/coordinator.h"

using namespace overgen;
using namespace overgen::library;

namespace {

/** A short skewed trace: four distinct workloads, with repeats that
 * must hit once their overlay is warmed. */
std::vector<std::string>
testTrace()
{
    return { "fir", "mm",  "fir", "vecmax", "mm",
             "fir", "mm",  "acc-sqr", "vecmax", "fir" };
}

ServiceOptions
testOptions(bool useServer = false, int workers = 1,
            int warmIterations = 4)
{
    ServiceOptions options;
    options.smallSize = true;
    options.match.applyTuning = true;
    options.warmIterations = warmIterations;
    options.useServer = useServer;
    options.serve.workers = workers;
    return options;
}

struct Replay
{
    std::string libraryBytes;
    std::string serveLog;
    std::vector<RequestOutcome> outcomes;
    std::vector<serve::ServeSummary> summaries;
};

Replay
replayTrace(ServiceOptions options)
{
    LibraryService service(std::move(options));
    Replay replay;
    replay.outcomes = service.processBatch(testTrace());
    replay.libraryBytes = service.library().toJsonl();
    replay.serveLog = service.serveLog();
    replay.summaries = service.serveSummaries();
    return replay;
}

void
expectSameOutcomes(const std::vector<RequestOutcome> &got,
                   const std::vector<RequestOutcome> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].workload, want[i].workload) << i;
        EXPECT_EQ(got[i].hit, want[i].hit) << i;
        EXPECT_EQ(got[i].warmed, want[i].warmed) << i;
        EXPECT_EQ(got[i].entryIndex, want[i].entryIndex) << i;
        EXPECT_EQ(got[i].record.score, want[i].record.score) << i;
        EXPECT_EQ(got[i].record.ipc, want[i].record.ipc) << i;
    }
}

} // namespace

TEST(LibraryWarming, EmptyLibraryReplayIsByteIdentical)
{
    Replay first = replayTrace(testOptions());
    Replay second = replayTrace(testOptions());
    ASSERT_FALSE(first.libraryBytes.empty());
    EXPECT_EQ(first.libraryBytes, second.libraryBytes);
    expectSameOutcomes(second.outcomes, first.outcomes);

    // The batch admits against the pre-batch (empty) library, so
    // every request misses at admission; the distinct workloads are
    // warmed once each and the re-match routes every request.
    for (const RequestOutcome &outcome : first.outcomes) {
        EXPECT_FALSE(outcome.hit);
        EXPECT_TRUE(outcome.warmed);
        EXPECT_GE(outcome.entryIndex, 0) << outcome.workload;
    }

    // A second batch over the same trace is all hits, no growth.
    LibraryService service(testOptions());
    service.processBatch(testTrace());
    std::string warmed = service.library().toJsonl();
    std::vector<RequestOutcome> outcomes =
        service.processBatch(testTrace());
    for (const RequestOutcome &outcome : outcomes) {
        EXPECT_TRUE(outcome.hit) << outcome.workload;
        EXPECT_FALSE(outcome.warmed);
    }
    EXPECT_EQ(service.library().toJsonl(), warmed);
}

TEST(LibraryWarming, ServerWorkerCountsProduceIdenticalBytes)
{
    Replay inProcess = replayTrace(testOptions());
    std::string firstLog;
    for (int workers : { 1, 2 }) {
        Replay server = replayTrace(testOptions(true, workers));
        EXPECT_EQ(server.libraryBytes, inProcess.libraryBytes)
            << workers << " workers";
        expectSameOutcomes(server.outcomes, inProcess.outcomes);
        ASSERT_FALSE(server.summaries.empty());
        for (const serve::ServeSummary &summary : server.summaries)
            EXPECT_TRUE(summary.ok);
        // The merged serve rows are byte-identical across worker
        // counts (pure rows, index-ordered merge).
        if (firstLog.empty())
            firstLog = server.serveLog;
        else
            EXPECT_EQ(server.serveLog, firstLog);
        EXPECT_FALSE(server.serveLog.empty());
    }
}

TEST(LibraryWarming, SigkillMidWarmStillConvergesToIdenticalBytes)
{
    // A bigger warm budget (~tens of ms per DSE run) keeps the kill
    // race-free: the shard is still mid-warm when the SIGKILL lands,
    // long before its row could have been written.
    const int warmIterations = 64;
    Replay reference = replayTrace(testOptions(false, 1,
                                               warmIterations));

    ServiceOptions options = testOptions(true, 2, warmIterations);
    bool killed = false;
    // Kill one worker at its first heartbeat: the heartbeat precedes
    // the warm job's DSE, so the shard dies in flight and must be
    // re-dispatched (the retried warm reuses the same seed, so the
    // recovered run reproduces the crash-free bytes).
    options.serve.onRecord = [&killed](const Json &record, int,
                                       pid_t pid) {
        if (!killed && record.at("t").asString() == "hb") {
            ::kill(pid, SIGKILL);
            killed = true;
        }
    };
    Replay crashed = replayTrace(std::move(options));
    ASSERT_TRUE(killed);
    EXPECT_EQ(crashed.libraryBytes, reference.libraryBytes);
    expectSameOutcomes(crashed.outcomes, reference.outcomes);
    uint64_t crashes = 0;
    uint64_t retries = 0;
    for (const serve::ServeSummary &summary : crashed.summaries) {
        crashes += summary.crashes;
        retries += summary.retries;
    }
    EXPECT_GE(crashes, 1u);
    EXPECT_GE(retries, 1u);
}
