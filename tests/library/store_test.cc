/**
 * @file
 * Overlay-library store contract tests: the JSONL file round-trips
 * byte-identically (save -> load -> save), fingerprints are
 * re-verified on load, and corrupted or truncated lines are skipped
 * with exact per-category diagnostics instead of poisoning the load.
 */

#include "library/store.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "adg/builders.h"
#include "common/hex.h"
#include "library/matcher.h"
#include "workloads/suites.h"

using namespace overgen;
using namespace overgen::library;

namespace {

adg::SysAdg
testDesign(int tiles, int l2Banks = 4)
{
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = tiles;
    design.sys.l2Banks = l2Banks;
    design.sys.l2CapacityKiB = 512;
    design.sys.nocBytes = 32;
    return design;
}

LibraryEntry
testEntry(int tiles, const char *origin)
{
    LibraryEntry entry;
    entry.design = testDesign(tiles);
    entry.resources = { 1000.0 * tiles, 2000.0 * tiles, 36.5, 12.0 };
    entry.utilization = 0.25 * tiles;
    entry.origin = origin;
    entry.warmSeed = 0xabcdef0123456789ull;
    entry.warmIterations = 4;
    return entry;
}

/** A three-entry library with per-kernel records on entry 0. */
OverlayLibrary
testLibrary()
{
    OverlayLibrary lib;
    size_t first = lib.insert(testEntry(2, "test:a"));
    lib.insert(testEntry(4, "test:b"));
    lib.insert(testEntry(8, "test:c"));
    lib.entries[first].upsertRecord(scoreKernelOnDesign(
        wl::smallWorkloadByName("fir"), lib.entries[first].design));
    lib.entries[first].upsertRecord(scoreKernelOnDesign(
        wl::smallWorkloadByName("mm"), lib.entries[first].design));
    return lib;
}

std::string
tempPath(const char *name)
{
    return ::testing::TempDir() + name;
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace

TEST(LibraryStore, SaveLoadSaveIsByteIdentical)
{
    OverlayLibrary lib = testLibrary();
    std::string path = tempPath("roundtrip.jsonl");
    std::string bytes = lib.toJsonl();
    ASSERT_FALSE(bytes.empty());
    ASSERT_TRUE(lib.save(path));

    OverlayLibrary loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.lastLoad.entries, 3u);
    EXPECT_EQ(loaded.lastLoad.skipped(), 0u);
    ASSERT_EQ(loaded.entries.size(), lib.entries.size());
    // The full byte-stability contract: the reloaded library encodes
    // to the identical file, records and fingerprints included.
    EXPECT_EQ(loaded.toJsonl(), bytes);
    std::string path2 = tempPath("roundtrip2.jsonl");
    ASSERT_TRUE(loaded.save(path2));
    OverlayLibrary again;
    ASSERT_TRUE(again.load(path2));
    EXPECT_EQ(again.toJsonl(), bytes);
}

TEST(LibraryStore, FingerprintsReverifyOnLoad)
{
    OverlayLibrary lib = testLibrary();
    for (const LibraryEntry &entry : lib.entries) {
        std::pair<uint64_t, uint64_t> fp =
            fingerprintDesign(entry.design);
        EXPECT_EQ(fp.first, entry.fpA);
        EXPECT_EQ(fp.second, entry.fpB);
    }

    // Same tile, different system params: the fingerprint must see
    // the system half, not just the ADG.
    EXPECT_NE(lib.entries[0].fpA, lib.entries[1].fpA);

    // Flip one fingerprint digit in the stored file: the load must
    // drop exactly that entry as a fingerprint mismatch.
    std::string tampered;
    size_t line = 0;
    for (const LibraryEntry &entry : lib.entries) {
        Json json = entry.toJson();
        if (line++ == 1)
            json.set("fp_a", Json(hexU64(entry.fpA ^ 1)));
        tampered += json.dump() + "\n";
    }
    std::string path = tempPath("tampered.jsonl");
    writeFile(path, tampered);
    OverlayLibrary loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.lastLoad.entries, 2u);
    EXPECT_EQ(loaded.lastLoad.skippedFingerprint, 1u);
    EXPECT_EQ(loaded.lastLoad.skippedParse, 0u);
    EXPECT_EQ(loaded.lastLoad.skippedFields, 0u);
    ASSERT_EQ(loaded.entries.size(), 2u);
    EXPECT_EQ(loaded.entries[0].origin, "test:a");
    EXPECT_EQ(loaded.entries[1].origin, "test:c");
}

TEST(LibraryStore, CorruptedLinesAreSkippedWithCountedDiagnostics)
{
    OverlayLibrary lib = testLibrary();
    std::vector<std::string> lines;
    for (const LibraryEntry &entry : lib.entries)
        lines.push_back(entry.toJson().dump());

    // One garbage line, two field-corrupted lines (records replaced
    // by a string, origin replaced by a number), and a final line
    // truncated mid-object (a torn write: no newline, unparseable).
    Json illTyped = Json::parse(lines[1]);
    illTyped.set("records", Json("not-an-array"));
    Json missing = Json::parse(lines[2]);
    missing.set("origin", Json(3.0));
    std::string text = lines[0] + "\n" + "{this is not json}\n" +
                       illTyped.dump() + "\n" + missing.dump() +
                       "\n" + "\n" +  // blank lines are ignored
                       lines[1].substr(0, lines[1].size() / 2);
    std::string path = tempPath("corrupted.jsonl");
    writeFile(path, text);

    OverlayLibrary loaded;
    ASSERT_TRUE(loaded.load(path));
    EXPECT_EQ(loaded.lastLoad.entries, 1u);
    EXPECT_EQ(loaded.lastLoad.skippedParse, 2u);  // garbage + torn
    EXPECT_EQ(loaded.lastLoad.skippedFields, 2u);
    EXPECT_EQ(loaded.lastLoad.skippedFingerprint, 0u);
    EXPECT_EQ(loaded.lastLoad.skipped(), 4u);
    ASSERT_EQ(loaded.entries.size(), 1u);
    EXPECT_EQ(loaded.entries[0].origin, "test:a");
    // The survivor round-trips bit-for-bit despite its neighbors.
    EXPECT_EQ(loaded.entries[0].toJson().dump(), lines[0]);
}

TEST(LibraryStore, MissingFileReportsFailureAndClears)
{
    OverlayLibrary lib = testLibrary();
    EXPECT_FALSE(lib.load(tempPath("does-not-exist.jsonl")));
    EXPECT_TRUE(lib.entries.empty());
    EXPECT_EQ(lib.lastLoad.entries, 0u);
}

TEST(LibraryStore, InsertCanonicalizesAndDeduplicatesByFingerprint)
{
    OverlayLibrary lib;
    size_t first = lib.insert(testEntry(2, "test:a"));
    // Same design again (fresh entry object, new records): must merge
    // into the existing entry, not append a duplicate.
    LibraryEntry dup = testEntry(2, "test:dup");
    dup.upsertRecord(scoreKernelOnDesign(
        wl::smallWorkloadByName("vecmax"), dup.design));
    size_t second = lib.insert(std::move(dup));
    EXPECT_EQ(second, first);
    ASSERT_EQ(lib.entries.size(), 1u);
    EXPECT_EQ(lib.entries[0].origin, "test:a");  // first write wins
    EXPECT_NE(lib.entries[0].findRecord("vecmax"), nullptr);

    // Insert canonicalizes: an entry built from a decode round-trip
    // has the identical fingerprint (encoding is a fixed point).
    LibraryEntry reencoded = *LibraryEntry::fromJson(
        lib.entries[0].toJson(), nullptr);
    EXPECT_EQ(lib.insert(std::move(reencoded)), first);
    EXPECT_EQ(lib.entries.size(), 1u);
}

TEST(LibraryStore, RecordsStayNameSortedThroughUpsert)
{
    LibraryEntry entry = testEntry(2, "test:sorted");
    for (const char *kernel : { "mm", "fir", "vecmax", "blur", "fir" }) {
        KernelRecord record;
        record.kernel = kernel;
        record.feasible = true;
        record.score = 1.0;
        record.ipc = 1.0;
        entry.upsertRecord(std::move(record));
    }
    ASSERT_EQ(entry.records.size(), 4u);  // "fir" upserted in place
    for (size_t i = 1; i < entry.records.size(); ++i)
        EXPECT_LT(entry.records[i - 1].kernel,
                  entry.records[i].kernel);
}

TEST(LibraryStore, TryParseReportsErrorsWithoutDying)
{
    std::string error;
    EXPECT_FALSE(Json::tryParse("{bad", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(Json::tryParse("", &error));
    EXPECT_FALSE(Json::tryParse("{\"a\":1} trailing", &error));
    EXPECT_FALSE(Json::tryParse("\"unterminated", &error));

    std::optional<Json> ok = Json::tryParse("{\"a\": [1, 2.5, true]}");
    ASSERT_TRUE(ok.has_value());
    EXPECT_EQ(ok->at("a").asArray().size(), 3u);
}
