#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "adg/adg.h"
#include "adg/builders.h"

namespace overgen::adg {
namespace {

/**
 * Adg::fingerprint is the DSE evaluation-cache key (see DESIGN.md
 * "Evaluation cache and model split"): equal live structure must hash
 * equal regardless of mutation history, any single perturbation must
 * change the value, and the two cache salts must be independent.
 */

PeSpec
fingerprintPe()
{
    PeSpec pe;
    pe.capabilities = { { Opcode::Add, DataType::I64 },
                        { Opcode::Mul, DataType::I64 } };
    return pe;
}

/** A small valid tile exercising every fingerprinted node kind. */
Adg
probeTile()
{
    Adg adg;
    NodeId dma = adg.addDma();
    NodeId spad = adg.addScratchpad();
    NodeId in = adg.addInPort();
    NodeId sw = adg.addSwitch();
    NodeId pe = adg.addPe(fingerprintPe());
    NodeId out = adg.addOutPort();
    adg.addEdge(dma, in);
    adg.addEdge(spad, in);
    adg.addEdge(in, sw);
    adg.addEdge(sw, pe);
    adg.addEdge(pe, out);
    adg.addEdge(out, dma);
    return adg;
}

TEST(Fingerprint, EqualStructureHashesEqual)
{
    // Two independently built but structurally identical graphs.
    EXPECT_EQ(probeTile().fingerprint(), probeTile().fingerprint());
    EXPECT_EQ(probeTile().fingerprint(77), probeTile().fingerprint(77));
}

TEST(Fingerprint, MutationHistoryIsIrrelevant)
{
    // Add-then-remove restores the live set exactly (the removed ids
    // become tombstones, and the surviving ids are untouched), so the
    // fingerprint must come back to the original value even though
    // version() shows the detour.
    Adg adg = probeTile();
    uint64_t before = adg.fingerprint();
    uint64_t version_before = adg.version();
    NodeId sw = adg.addSwitch();
    adg.removeNode(sw);
    EXPECT_EQ(adg.fingerprint(), before);
    EXPECT_GT(adg.version(), version_before);
}

TEST(Fingerprint, NodeEdgeAndParameterPerturbationsChangeTheValue)
{
    Adg base = probeTile();
    uint64_t fp = base.fingerprint();
    std::set<uint64_t> seen = { fp };

    // Extra node.
    {
        Adg adg = probeTile();
        adg.addSwitch();
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "extra node collided";
    }
    // Extra edge.
    {
        Adg adg = probeTile();
        std::vector<NodeId> sws = adg.nodeIdsOfKind(NodeKind::Switch);
        std::vector<NodeId> pes = adg.nodeIdsOfKind(NodeKind::Pe);
        adg.addEdge(pes[0], sws[0]);
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "extra edge collided";
    }
    // Edge delay.
    {
        Adg adg = probeTile();
        adg.edge(adg.edgeIds()[2]).delay += 1;
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "edge delay collided";
    }
    // Spec parameter: PE datapath width.
    {
        Adg adg = probeTile();
        NodeId pe = adg.nodeIdsOfKind(NodeKind::Pe)[0];
        adg.node(pe).pe().datapathBytes *= 2;
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "datapath width collided";
    }
    // Spec parameter: capability set.
    {
        Adg adg = probeTile();
        NodeId pe = adg.nodeIdsOfKind(NodeKind::Pe)[0];
        adg.node(pe).pe().capabilities.erase(
            { Opcode::Mul, DataType::I64 });
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "capability removal collided";
    }
    // Spec parameter: scratchpad capacity.
    {
        Adg adg = probeTile();
        NodeId spad = adg.nodeIdsOfKind(NodeKind::Scratchpad)[0];
        adg.node(spad).spad().capacityKiB *= 2;
        EXPECT_TRUE(seen.insert(adg.fingerprint()).second)
            << "spad capacity collided";
    }
}

TEST(Fingerprint, IdNumberingIsCovered)
{
    // Isomorphic graphs with different id numbering schedule
    // differently (schedules reference ids), so they must fingerprint
    // differently: a switch at id 0 vs a switch at id 1.
    Adg a;
    a.addSwitch();
    Adg b;
    NodeId first = b.addSwitch();
    b.addSwitch();
    b.removeNode(first);
    EXPECT_EQ(a.numNodes(), b.numNodes());
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, SaltChangesTheValue)
{
    Adg adg = probeTile();
    EXPECT_NE(adg.fingerprint(0), adg.fingerprint(1));
    EXPECT_NE(adg.fingerprint(0),
              adg.fingerprint(0x517cc1b727220a95ull));
}

TEST(Fingerprint, PairMatchesSingleSaltEvaluations)
{
    // fingerprintPair is the one-traversal form the evaluation cache
    // uses; each half must equal the standalone fingerprint at that
    // salt.
    Adg adg = probeTile();
    auto [a, b] = adg.fingerprintPair(0, 0x517cc1b727220a95ull);
    EXPECT_EQ(a, adg.fingerprint(0));
    EXPECT_EQ(b, adg.fingerprint(0x517cc1b727220a95ull));
    auto [c, d] = adg.fingerprintPair(42, 42);
    EXPECT_EQ(c, d);
    EXPECT_EQ(c, adg.fingerprint(42));
}

TEST(Fingerprint, CollisionSanityAcrossMutationNeighborhood)
{
    // Walk a neighborhood of single-parameter variants of a realistic
    // mesh tile and require all fingerprints distinct — the cache
    // treats equal fingerprints as equal designs.
    std::set<uint64_t> seen;
    int total = 0;
    for (int width : { 8, 16, 32 }) {
        for (int spad : { 16, 32, 64 }) {
            for (int pes : { 4, 6, 8 }) {
                MeshConfig config;
                config.peCapabilities = fingerprintPe().capabilities;
                config.datapathBytes = width;
                config.spadCapacityKiB = spad;
                config.numPes = pes;
                Adg adg = buildMeshTile(config);
                seen.insert(adg.fingerprint());
                ++total;
            }
        }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), total);
}

} // namespace
} // namespace overgen::adg
