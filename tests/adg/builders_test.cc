#include <gtest/gtest.h>

#include "adg/builders.h"

namespace overgen::adg {
namespace {

MeshConfig
baseConfig()
{
    MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 4;
    config.peCapabilities = intCapabilities(DataType::I64);
    config.numInPorts = 3;
    config.numOutPorts = 2;
    return config;
}

TEST(Builders, MeshTileIsValid)
{
    Adg adg = buildMeshTile(baseConfig());
    EXPECT_EQ(adg.validate(), "");
}

TEST(Builders, MeshTileCounts)
{
    Adg adg = buildMeshTile(baseConfig());
    EXPECT_EQ(adg.countKind(NodeKind::Switch), 9);
    EXPECT_EQ(adg.countKind(NodeKind::Pe), 4);
    EXPECT_EQ(adg.countKind(NodeKind::InPort), 3);
    EXPECT_EQ(adg.countKind(NodeKind::OutPort), 2);
    EXPECT_EQ(adg.countKind(NodeKind::Dma), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Scratchpad), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Recurrence), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Generate), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Register), 1);
}

TEST(Builders, EnginesFeedEveryInPort)
{
    Adg adg = buildMeshTile(baseConfig());
    for (NodeId port : adg.nodeIdsOfKind(NodeKind::InPort)) {
        // DMA, spad, gen, rec = 4 feeding engines per in-port.
        EXPECT_EQ(adg.inEdges(port).size(), 4u);
    }
}

TEST(Builders, NoScratchpadOption)
{
    MeshConfig config = baseConfig();
    config.numScratchpads = 0;
    Adg adg = buildMeshTile(config);
    EXPECT_EQ(adg.countKind(NodeKind::Scratchpad), 0);
    EXPECT_EQ(adg.validate(), "");
}

TEST(Builders, MultiScratchpad)
{
    MeshConfig config = baseConfig();
    config.numScratchpads = 2;
    Adg adg = buildMeshTile(config);
    EXPECT_EQ(adg.countKind(NodeKind::Scratchpad), 2);
    EXPECT_EQ(adg.validate(), "");
}

TEST(Builders, GeneralOverlaySpecs)
{
    Adg adg = buildGeneralOverlayTile();
    EXPECT_EQ(adg.validate(), "");
    // Table III general column: 24 PEs, 35 switches.
    EXPECT_EQ(adg.countKind(NodeKind::Pe), 24);
    EXPECT_EQ(adg.countKind(NodeKind::Switch), 35);
    // 512-bit datapath.
    NodeId pe = adg.nodeIdsOfKind(NodeKind::Pe)[0];
    EXPECT_EQ(adg.node(pe).pe().datapathBytes, 64);
    // Full capability provisioning includes f64 sqrt and i8 add.
    const auto &caps = adg.node(pe).pe().capabilities;
    EXPECT_TRUE(caps.count({ Opcode::Sqrt, DataType::F64 }));
    EXPECT_TRUE(caps.count({ Opcode::Add, DataType::I8 }));
}

TEST(Builders, IntCapabilitiesExcludeSqrt)
{
    auto caps = intCapabilities(DataType::I32);
    EXPECT_FALSE(caps.count({ Opcode::Sqrt, DataType::I32 }));
    EXPECT_TRUE(caps.count({ Opcode::Shl, DataType::I32 }));
}

TEST(Builders, FloatCapabilitiesExcludeBitwise)
{
    auto caps = floatCapabilities(DataType::F32);
    EXPECT_FALSE(caps.count({ Opcode::And, DataType::F32 }));
    EXPECT_TRUE(caps.count({ Opcode::Sqrt, DataType::F32 }));
}

TEST(BuildersDeathTest, EmptyCapabilitiesRejected)
{
    MeshConfig config = baseConfig();
    config.peCapabilities.clear();
    EXPECT_DEATH(buildMeshTile(config), "capabilities");
}

} // namespace
} // namespace overgen::adg
