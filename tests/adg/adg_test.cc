#include <gtest/gtest.h>

#include "adg/adg.h"
#include "adg/builders.h"

namespace overgen::adg {
namespace {

PeSpec
simplePe()
{
    PeSpec pe;
    pe.capabilities = { { Opcode::Add, DataType::I64 } };
    return pe;
}

/** A minimal valid tile: dma -> in -> pe -> out -> dma, plus a switch. */
Adg
tinyTile()
{
    Adg adg;
    NodeId dma = adg.addDma();
    NodeId in = adg.addInPort();
    NodeId sw = adg.addSwitch();
    NodeId pe = adg.addPe(simplePe());
    NodeId out = adg.addOutPort();
    adg.addEdge(dma, in);
    adg.addEdge(in, sw);
    adg.addEdge(sw, pe);
    adg.addEdge(in, pe);
    adg.addEdge(pe, out);
    adg.addEdge(out, dma);
    return adg;
}

TEST(Adg, AddNodesAndCount)
{
    Adg adg = tinyTile();
    EXPECT_EQ(adg.numNodes(), 5);
    EXPECT_EQ(adg.countKind(NodeKind::Pe), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Switch), 1);
    EXPECT_EQ(adg.countKind(NodeKind::Dma), 1);
    EXPECT_EQ(adg.numEdges(), 6);
}

TEST(Adg, ValidTinyTile)
{
    EXPECT_EQ(tinyTile().validate(), "");
}

TEST(Adg, AdjacencyTracksEdges)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    NodeId b = adg.addSwitch();
    EdgeId e = adg.addEdge(a, b);
    ASSERT_EQ(adg.outEdges(a).size(), 1u);
    EXPECT_EQ(adg.outEdges(a)[0], e);
    ASSERT_EQ(adg.inEdges(b).size(), 1u);
    EXPECT_EQ(adg.edge(e).src, a);
    EXPECT_EQ(adg.edge(e).dst, b);
}

TEST(Adg, RemoveEdge)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    NodeId b = adg.addSwitch();
    EdgeId e = adg.addEdge(a, b);
    adg.removeEdge(e);
    EXPECT_FALSE(adg.hasEdge(e));
    EXPECT_TRUE(adg.outEdges(a).empty());
    EXPECT_TRUE(adg.inEdges(b).empty());
}

TEST(Adg, RemoveNodeRemovesIncidentEdges)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    NodeId b = adg.addSwitch();
    NodeId c = adg.addSwitch();
    adg.addEdge(a, b);
    adg.addEdge(b, c);
    adg.removeNode(b);
    EXPECT_FALSE(adg.hasNode(b));
    EXPECT_EQ(adg.numEdges(), 0);
    EXPECT_TRUE(adg.outEdges(a).empty());
    EXPECT_TRUE(adg.inEdges(c).empty());
}

TEST(Adg, IdsStableAcrossRemoval)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    NodeId b = adg.addSwitch();
    NodeId c = adg.addSwitch();
    adg.removeNode(b);
    EXPECT_TRUE(adg.hasNode(a));
    EXPECT_TRUE(adg.hasNode(c));
    EXPECT_EQ(adg.node(c).id, c);
}

TEST(Adg, EdgeLegalityMatrix)
{
    EXPECT_TRUE(Adg::edgeLegal(NodeKind::Dma, NodeKind::InPort));
    EXPECT_TRUE(Adg::edgeLegal(NodeKind::InPort, NodeKind::Pe));
    EXPECT_TRUE(Adg::edgeLegal(NodeKind::Pe, NodeKind::Pe));
    EXPECT_TRUE(Adg::edgeLegal(NodeKind::OutPort, NodeKind::Scratchpad));
    EXPECT_FALSE(Adg::edgeLegal(NodeKind::Dma, NodeKind::Pe));
    EXPECT_FALSE(Adg::edgeLegal(NodeKind::OutPort, NodeKind::InPort));
    EXPECT_FALSE(Adg::edgeLegal(NodeKind::Register, NodeKind::InPort));
    EXPECT_FALSE(Adg::edgeLegal(NodeKind::Pe, NodeKind::InPort));
}

TEST(AdgDeathTest, IllegalEdgePanics)
{
    Adg adg;
    NodeId dma = adg.addDma();
    NodeId pe = adg.addPe(simplePe());
    EXPECT_DEATH(adg.addEdge(dma, pe), "illegal ADG edge");
}

TEST(AdgDeathTest, AccessDeadNodePanics)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    adg.removeNode(a);
    EXPECT_DEATH(adg.node(a), "dead node");
}

TEST(Adg, ValidationCatchesDanglingPe)
{
    Adg adg;
    NodeId pe = adg.addPe(simplePe());
    (void)pe;
    EXPECT_NE(adg.validate().find("dangling"), std::string::npos);
}

TEST(Adg, ValidationCatchesUnfedInPort)
{
    Adg adg = tinyTile();
    NodeId in2 = adg.addInPort();
    NodeId pe = adg.nodeIdsOfKind(NodeKind::Pe)[0];
    adg.addEdge(in2, pe);
    EXPECT_NE(adg.validate().find("fed by no stream engine"),
              std::string::npos);
}

TEST(Adg, RadixAndAverage)
{
    Adg adg;
    NodeId a = adg.addSwitch();
    NodeId b = adg.addSwitch();
    NodeId c = adg.addSwitch();
    adg.addEdge(a, b);
    adg.addEdge(b, c);
    adg.addEdge(c, a);
    EXPECT_EQ(adg.radix(a), 2);
    EXPECT_DOUBLE_EQ(adg.averageSwitchRadix(), 2.0);
}

TEST(Adg, VersionBumpsOnMutation)
{
    Adg adg;
    uint64_t v0 = adg.version();
    NodeId a = adg.addSwitch();
    EXPECT_GT(adg.version(), v0);
    NodeId b = adg.addSwitch();
    EdgeId e = adg.addEdge(a, b);
    uint64_t v1 = adg.version();
    adg.removeEdge(e);
    EXPECT_GT(adg.version(), v1);
}

TEST(Adg, JsonRoundTrip)
{
    Adg adg = tinyTile();
    Json json = adg.toJson();
    Adg back = Adg::fromJson(json);
    EXPECT_EQ(back.numNodes(), adg.numNodes());
    EXPECT_EQ(back.numEdges(), adg.numEdges());
    EXPECT_EQ(back.countKind(NodeKind::Pe), 1);
    EXPECT_EQ(back.validate(), "");
    // Spec payloads survive.
    NodeId pe = back.nodeIdsOfKind(NodeKind::Pe)[0];
    EXPECT_EQ(back.node(pe).pe().capabilities.size(), 1u);
}

TEST(Adg, JsonRoundTripAfterMutation)
{
    Adg adg = tinyTile();
    // Kill the switch so ids become sparse, then round-trip.
    adg.removeNode(adg.nodeIdsOfKind(NodeKind::Switch)[0]);
    Adg back = Adg::fromJson(adg.toJson());
    EXPECT_EQ(back.numNodes(), adg.numNodes());
    EXPECT_EQ(back.numEdges(), adg.numEdges());
}

TEST(SystemParams, JsonRoundTrip)
{
    SystemParams sys;
    sys.numTiles = 7;
    sys.l2Banks = 16;
    sys.l2CapacityKiB = 1024;
    sys.nocBytes = 64;
    sys.dramChannels = 2;
    SystemParams back = SystemParams::fromJson(sys.toJson());
    EXPECT_EQ(back, sys);
}

TEST(SysAdg, JsonRoundTrip)
{
    SysAdg design;
    design.adg = tinyTile();
    design.sys.numTiles = 4;
    SysAdg back = SysAdg::fromJson(design.toJson());
    EXPECT_EQ(back.sys, design.sys);
    EXPECT_EQ(back.adg.numNodes(), design.adg.numNodes());
}

} // namespace
} // namespace overgen::adg
