#include <gtest/gtest.h>

#include "dfg/mdfg.h"

namespace overgen::dfg {
namespace {

/** c[i] = a[i] + b[i] as an mDFG (paper Fig. 2b). */
Mdfg
vecAdd(int lanes = 2)
{
    Mdfg mdfg;
    ArrayNode arr_a{ "a", 8 * 1024, ArrayPlacement::Dram, false };
    ArrayNode arr_b{ "b", 8 * 1024, ArrayPlacement::Dram, false };
    ArrayNode arr_c{ "c", 8 * 1024, ArrayPlacement::Dram, false };
    NodeId na = mdfg.addArray(arr_a);
    NodeId nb = mdfg.addArray(arr_b);
    NodeId nc = mdfg.addArray(arr_c);

    StreamNode in;
    in.type = DataType::I64;
    in.pattern.trips[0] = 1024 / lanes;
    in.lanes = lanes;
    in.reuse.trafficBytes = 8 * 1024;
    in.reuse.footprintBytes = 8 * 1024;

    StreamNode sa = in;
    sa.array = na;
    NodeId is_a = mdfg.addInputStream(sa);
    StreamNode sb = in;
    sb.array = nb;
    NodeId is_b = mdfg.addInputStream(sb);

    InstructionNode add;
    add.op = Opcode::Add;
    add.type = DataType::I64;
    add.lanes = lanes;
    NodeId inst = mdfg.addInstruction(add);

    StreamNode sc = in;
    sc.array = nc;
    NodeId os_c = mdfg.addOutputStream(sc);

    mdfg.addEdge(is_a, inst, 0);
    mdfg.addEdge(is_b, inst, 1);
    mdfg.addEdge(inst, os_c, 0);
    mdfg.addEdge(na, is_a);
    mdfg.addEdge(nb, is_b);
    mdfg.addEdge(nc, os_c);
    mdfg.name = "vecadd";
    return mdfg;
}

TEST(Mdfg, VecAddWellFormed)
{
    EXPECT_EQ(vecAdd().validate(), "");
}

TEST(Mdfg, NodeKindQueries)
{
    Mdfg m = vecAdd();
    EXPECT_EQ(m.nodeIdsOfKind(NodeKind::InputStream).size(), 2u);
    EXPECT_EQ(m.nodeIdsOfKind(NodeKind::OutputStream).size(), 1u);
    EXPECT_EQ(m.nodeIdsOfKind(NodeKind::Instruction).size(), 1u);
    EXPECT_EQ(m.nodeIdsOfKind(NodeKind::Array).size(), 3u);
}

TEST(Mdfg, InEdgesSortedByOperand)
{
    Mdfg m = vecAdd();
    NodeId inst = m.nodeIdsOfKind(NodeKind::Instruction)[0];
    auto in = m.inEdgesOf(inst);
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[0].operandIndex, 0);
    EXPECT_EQ(in[1].operandIndex, 1);
}

TEST(Mdfg, InstructionBandwidthCountsMemoryOps)
{
    Mdfg m = vecAdd(4);
    // 1 add * 4 lanes + 3 memory streams * 4 lanes = 16.
    EXPECT_DOUBLE_EQ(m.instructionBandwidth(), 16.0);
}

TEST(Mdfg, GeneratedStreamsExcludedFromInstBandwidth)
{
    Mdfg m = vecAdd(1);
    StreamNode gen;
    gen.source = StreamSource::Generated;
    gen.lanes = 1;
    m.addInputStream(gen);
    // 1 add + 3 memory streams = 4; the generated stream adds nothing.
    EXPECT_DOUBLE_EQ(m.instructionBandwidth(), 4.0);
}

TEST(Mdfg, Vectorization)
{
    EXPECT_EQ(vecAdd(8).vectorization(), 8);
    EXPECT_EQ(vecAdd(1).vectorization(), 1);
}

TEST(Mdfg, ReuseGeneralFactor)
{
    ReuseInfo reuse;
    reuse.trafficBytes = 1600;
    reuse.footprintBytes = 100;
    EXPECT_DOUBLE_EQ(reuse.generalReuse(), 16.0);
    reuse.footprintBytes = 0;
    EXPECT_DOUBLE_EQ(reuse.generalReuse(), 1.0);
}

TEST(Mdfg, ReuseCapturedFactor)
{
    ReuseInfo reuse;
    reuse.stationary = 32.0;
    reuse.recurrent = 4.0;
    EXPECT_DOUBLE_EQ(reuse.capturedFactor(), 128.0);
}

TEST(Mdfg, ValidateRejectsMissingOperand)
{
    Mdfg m = vecAdd();
    InstructionNode mul;
    mul.op = Opcode::Mul;
    NodeId inst = m.addInstruction(mul);
    NodeId is = m.nodeIdsOfKind(NodeKind::InputStream)[0];
    m.addEdge(is, inst, 0);  // only one operand
    EXPECT_NE(m.validate().find("operands"), std::string::npos);
}

TEST(Mdfg, ValidateAcceptsImmediateOperand)
{
    Mdfg m = vecAdd();
    InstructionNode mul;
    mul.op = Opcode::Mul;
    mul.immediate = 3.0;
    NodeId inst = m.addInstruction(mul);
    NodeId is = m.nodeIdsOfKind(NodeKind::InputStream)[0];
    NodeId out = m.nodeIdsOfKind(NodeKind::OutputStream)[0];
    m.addEdge(is, inst, 0);
    // Rewire: not strictly a consumer, but instruction outputs are not
    // validated, so the graph stays well-formed.
    (void)out;
    EXPECT_EQ(m.validate(), "");
}

TEST(Mdfg, ValidateRejectsUnfedOutputStream)
{
    Mdfg m = vecAdd();
    StreamNode s;
    s.array = m.nodeIdsOfKind(NodeKind::Array)[0];
    m.addOutputStream(s);
    EXPECT_NE(m.validate().find("exactly one producer"),
              std::string::npos);
}

TEST(Mdfg, ValidateRejectsZeroSizeArray)
{
    Mdfg m;
    ArrayNode a{ "z", 0, ArrayPlacement::Dram, false };
    m.addArray(a);
    EXPECT_NE(m.validate().find("non-positive size"), std::string::npos);
}

TEST(MdfgDeathTest, BadNodeIdPanics)
{
    Mdfg m = vecAdd();
    EXPECT_DEATH(m.node(999), "bad mDFG node id");
}

} // namespace
} // namespace overgen::dfg
