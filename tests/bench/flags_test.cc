/**
 * @file
 * Harness flag-parser tests: both spellings of each flag parse, and
 * repeating a flag — in either spelling, boolean or valued — is fatal
 * instead of silently letting the last occurrence win.
 */

#include <gtest/gtest.h>

#include "common.h"

using namespace overgen;

namespace {

/** Run parseCommonFlags over a literal argv. */
bench::CommonFlags
parse(std::vector<std::string> args, bool allowExtra = false)
{
    args.insert(args.begin(), "test-binary");
    std::vector<char *> argv;
    for (std::string &arg : args)
        argv.push_back(arg.data());
    return bench::parseCommonFlags(static_cast<int>(argv.size()),
                                   argv.data(), allowExtra);
}

} // namespace

TEST(BenchFlags, BothSpellingsParse)
{
    bench::CommonFlags flags =
        parse({ "--threads", "3", "--sim-threads=2", "--trace=t.json",
                "--no-eval-cache", "--stats-interval", "512" });
    EXPECT_EQ(flags.threads, 3);
    EXPECT_EQ(flags.simThreads, 2);
    EXPECT_EQ(flags.sink.tracePath, "t.json");
    EXPECT_FALSE(flags.evalCache);
    EXPECT_EQ(flags.sink.statsInterval, 512u);
    // --stats-interval without --stats-jsonl gets the default path.
    EXPECT_EQ(flags.sink.timelinePath, "timeline.jsonl");
}

TEST(BenchFlags, ExtraFlagsCollectOnlyWhenAllowed)
{
    bench::CommonFlags flags =
        parse({ "--workers=4", "--threads=2" }, /*allowExtra=*/true);
    EXPECT_EQ(flags.threads, 2);
    ASSERT_EQ(flags.extra.size(), 1u);
    EXPECT_EQ(flags.extra[0], "--workers=4");
    std::string workers;
    EXPECT_TRUE(
        bench::takeExtraFlag(flags.extra, "--workers=", workers));
    EXPECT_EQ(workers, "4");
    EXPECT_TRUE(flags.extra.empty());
}

TEST(BenchFlagsDeathTest, RepeatedValueFlagIsFatal)
{
    EXPECT_EXIT(parse({ "--threads=2", "--threads=4" }),
                ::testing::ExitedWithCode(1),
                "'--threads' given twice");
    // Mixing the spellings is still the same flag.
    EXPECT_EXIT(parse({ "--threads", "2", "--threads=4" }),
                ::testing::ExitedWithCode(1),
                "'--threads' given twice");
    EXPECT_EXIT(parse({ "--trace=a.json", "--trace=b.json" }),
                ::testing::ExitedWithCode(1),
                "'--trace' given twice");
}

TEST(BenchFlagsDeathTest, RepeatedBooleanFlagIsFatal)
{
    EXPECT_EXIT(parse({ "--no-eval-cache", "--no-eval-cache" }),
                ::testing::ExitedWithCode(1),
                "'--no-eval-cache' given twice");
    EXPECT_EXIT(parse({ "--trace-detail", "--threads=2",
                        "--trace-detail" }),
                ::testing::ExitedWithCode(1),
                "'--trace-detail' given twice");
}

TEST(BenchFlagsDeathTest, UnknownFlagIsStillFatal)
{
    EXPECT_EXIT(parse({ "--no-such-flag" }),
                ::testing::ExitedWithCode(1), "unknown argument");
}
