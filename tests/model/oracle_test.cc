#include <gtest/gtest.h>

#include "adg/builders.h"
#include "model/oracle.h"

namespace overgen::model {
namespace {

adg::Node
makePeNode(adg::PeSpec spec)
{
    adg::Node node;
    node.kind = adg::NodeKind::Pe;
    node.spec = std::move(spec);
    return node;
}

TEST(Oracle, Deterministic)
{
    adg::PeSpec pe;
    pe.capabilities = adg::intCapabilities(DataType::I64);
    Resources a = synthesizeNode(makePeNode(pe), 3);
    Resources b = synthesizeNode(makePeNode(pe), 3);
    EXPECT_EQ(a, b);
}

TEST(Oracle, MoreCapabilitiesCostMore)
{
    adg::PeSpec small;
    small.capabilities = { { Opcode::Add, DataType::I64 } };
    adg::PeSpec big;
    big.capabilities = adg::intCapabilities(DataType::I64);
    EXPECT_LT(synthesizeNode(makePeNode(small), 3).lut,
              synthesizeNode(makePeNode(big), 3).lut);
}

TEST(Oracle, WiderDatapathCostsMore)
{
    adg::PeSpec narrow;
    narrow.capabilities = { { Opcode::Add, DataType::I64 } };
    narrow.datapathBytes = 8;
    adg::PeSpec wide = narrow;
    wide.datapathBytes = 64;
    EXPECT_LT(synthesizeNode(makePeNode(narrow), 3).lut,
              synthesizeNode(makePeNode(wide), 3).lut);
}

TEST(Oracle, FloatMulUsesDsp)
{
    adg::PeSpec pe;
    pe.capabilities = { { Opcode::Mul, DataType::F64 } };
    pe.datapathBytes = 8;
    EXPECT_GT(synthesizeNode(makePeNode(pe), 3).dsp, 0.0);
}

TEST(Oracle, SwitchCostGrowsWithRadix)
{
    adg::Node node;
    node.kind = adg::NodeKind::Switch;
    node.spec = adg::SwitchSpec{ 32 };
    EXPECT_LT(synthesizeNode(node, 2).lut, synthesizeNode(node, 8).lut);
}

TEST(Oracle, ScratchpadBramScalesWithCapacity)
{
    adg::Node node;
    node.kind = adg::NodeKind::Scratchpad;
    node.spec = adg::ScratchpadSpec{ 16, 16, 16, false };
    Resources small = synthesizeNode(node, 2);
    node.spec = adg::ScratchpadSpec{ 128, 16, 16, false };
    Resources large = synthesizeNode(node, 2);
    EXPECT_LT(small.bram, large.bram);
    EXPECT_NEAR(large.bram, 32.0, 32.0 * 0.05);
}

TEST(Oracle, NocQuadraticInEndpoints)
{
    Resources small = synthesizeNoc(2, 2, 32);
    Resources large = synthesizeNoc(8, 8, 32);
    // ~4x the endpoints, > 8x the LUTs (quadratic term dominates).
    EXPECT_GT(large.lut, small.lut * 6.0);
}

TEST(Oracle, L2BramScalesWithCapacity)
{
    EXPECT_LT(synthesizeL2(256, 4).bram, synthesizeL2(1024, 4).bram);
}

TEST(Oracle, GeneralTileIsRoughlyAQuarterChip)
{
    // Calibration target (paper Q1/Q4): a fully-provisioned 512-bit
    // general tile is ~1/4 of the XCVU9P LUT budget, so at most 4 fit.
    adg::Adg tile = adg::buildGeneralOverlayTile();
    Resources total = synthesizeControlCore();
    for (adg::NodeId id : tile.nodeIds())
        total += synthesizeNode(tile.node(id), tile.radix(id));
    FpgaDevice device = FpgaDevice::xcvu9p();
    double quarter = device.total.lut / 4.0;
    EXPECT_GT(total.lut, 0.6 * quarter);
    EXPECT_LT(total.lut, 1.1 * quarter);
    // DSPs must not be the binding resource (Fig. 16: LUT-limited).
    EXPECT_LT(total.dsp / device.total.dsp,
              total.lut / device.total.lut);
}

TEST(Oracle, UncoreSumsComponents)
{
    adg::SystemParams sys;
    sys.numTiles = 4;
    sys.l2Banks = 4;
    Resources uncore = synthesizeUncore(sys);
    EXPECT_GT(uncore.lut,
              synthesizeNoc(4, 4, sys.nocBytes).lut * 0.99);
    EXPECT_GT(uncore.bram, 0.0);
}

TEST(Oracle, NoiseBounded)
{
    // Re-synthesizing similar specs never deviates more than +-5%
    // from the midpoint of repeated calls (noise is deterministic and
    // bounded by design).
    adg::Node node;
    node.kind = adg::NodeKind::Register;
    node.spec = adg::RegisterSpec{ 8 };
    Resources r = synthesizeNode(node, 2);
    double nominal = 250.0 + 10.0 * 8.0;
    EXPECT_NEAR(r.lut, nominal, nominal * 0.05);
}

} // namespace
} // namespace overgen::model
