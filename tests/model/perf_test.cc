#include <gtest/gtest.h>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "model/perf.h"
#include "workloads/suites.h"

namespace overgen::model {
namespace {

adg::Adg
testTile(int spad_kib = 32, bool recurrence = true)
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 6;
    config.numOutPorts = 3;
    config.datapathBytes = 32;
    config.spadCapacityKiB = spad_kib;
    config.recurrenceEngine = recurrence;
    config.indirect = true;
    config.dmaBandwidthBytes = 32;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    auto f64 = adg::floatCapabilities(DataType::F64);
    caps.insert(f64.begin(), f64.end());
    auto f32 = adg::floatCapabilities(DataType::F32);
    caps.insert(f32.begin(), f32.end());
    auto i16 = adg::intCapabilities(DataType::I16);
    caps.insert(i16.begin(), i16.end());
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

adg::SystemParams
testSys(int tiles = 2)
{
    adg::SystemParams sys;
    sys.numTiles = tiles;
    sys.l2Banks = 16;
    sys.nocBytes = 64;
    return sys;
}

TEST(Perf, IpcPositiveForAllWorkloads)
{
    adg::Adg tile = testTile();
    for (const auto &k : wl::allWorkloads()) {
        dfg::Mdfg mdfg = compiler::compileOne(k, 1, false, false);
        PerfInput input{ &mdfg, {} };
        PerfBreakdown out = estimateIpc(input, tile, testSys());
        EXPECT_GT(out.ipc, 0.0) << k.name;
        EXPECT_FALSE(out.bottleneck.empty()) << k.name;
    }
}

TEST(Perf, MoreTilesMoreIpcWhenComputeBound)
{
    // fir with scratchpad-resident input is compute/port bound.
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(1024, 199), 2, true, false);
    PerfInput input{ &mdfg, {} };
    double one = estimateIpc(input, tile, testSys(1)).ipc;
    double four = estimateIpc(input, tile, testSys(4)).ipc;
    EXPECT_GT(four, one * 2.0);
}

TEST(Perf, MemoryBoundKernelSaturates)
{
    // accumulate is pure streaming: with a deliberately narrow DRAM
    // configuration, channel bandwidth caps multi-tile scaling.
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(128), 8, false, false);
    PerfInput input{ &mdfg, {} };
    PerfConfig narrow;
    narrow.dramChannelBandwidthBytes = 48.0;
    double one = estimateIpc(input, tile, testSys(1), narrow).ipc;
    double eight = estimateIpc(input, tile, testSys(8), narrow).ipc;
    EXPECT_LT(eight, one * 4.0);
    EXPECT_EQ(
        estimateIpc(input, tile, testSys(8), narrow).bottleneck,
        "dram");
}

TEST(Perf, DramChannelsHelpMemoryBound)
{
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeAccumulate(128), 8, false, false);
    PerfInput input{ &mdfg, {} };
    PerfConfig narrow;
    narrow.dramChannelBandwidthBytes = 48.0;
    adg::SystemParams sys = testSys(8);
    double one_ch = estimateIpc(input, tile, sys, narrow).ipc;
    sys.dramChannels = 4;
    double four_ch = estimateIpc(input, tile, sys, narrow).ipc;
    EXPECT_GT(four_ch, one_ch * 1.5);
}

TEST(Perf, ReuseReducesBandwidthPressure)
{
    // fir: the recurrence + stationary variant demands less DRAM than
    // the plain memory variant, so it scales further.
    adg::Adg tile = testTile();
    dfg::Mdfg rec =
        compiler::compileOne(wl::makeFir(1024, 199), 4, true, false);
    dfg::Mdfg mem =
        compiler::compileOne(wl::makeFir(1024, 199), 4, false, false);
    adg::SystemParams sys = testSys(8);
    PerfInput in_rec{ &rec, {} };
    PerfInput in_mem{ &mem, {} };
    // Compare iteration throughput: IPC rewards the extra memory ops
    // of the non-recurrence variant as "work".
    EXPECT_GE(estimateIpc(in_rec, tile, sys).workRate,
              estimateIpc(in_mem, tile, sys).workRate);
}

TEST(Perf, DeriveBackingHonorsScratchpadHint)
{
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(1024, 199), 2, true, false);
    auto backing = deriveBacking(mdfg, tile);
    EXPECT_EQ(backing.size(),
              static_cast<size_t>(mdfg.numNodes()));
    // The 'a' array (hinted) stream should sit on the scratchpad.
    bool spad_used = false;
    for (Backing b : backing)
        spad_used |= (b == Backing::Scratchpad);
    EXPECT_TRUE(spad_used);
}

TEST(Perf, DeriveBackingFallsBackWithoutSpace)
{
    adg::Adg tile = testTile(1);  // 1 KiB scratchpad: nothing fits
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(1024, 199), 2, true, false);
    auto backing = deriveBacking(mdfg, tile);
    for (Backing b : backing)
        EXPECT_NE(b, Backing::Scratchpad);
}

TEST(Perf, RecurrenceRequiresEngine)
{
    adg::Adg no_rec = testTile(32, false);
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeMm(32), 2, true, false);
    auto backing = deriveBacking(mdfg, no_rec);
    for (Backing b : backing)
        EXPECT_NE(b, Backing::Recurrence);
}

TEST(Perf, FasterScratchpadLiftsSpadBottleneck)
{
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeFir(1024, 199), 8, true, false);
    PerfInput input{ &mdfg, {} };
    PerfBreakdown base = estimateIpc(input, tile, testSys(1));
    // Double every scratchpad's read bandwidth.
    for (adg::NodeId id :
         tile.nodeIdsOfKind(adg::NodeKind::Scratchpad)) {
        tile.node(id).spad().readBandwidthBytes *= 4;
    }
    PerfBreakdown faster = estimateIpc(input, tile, testSys(1));
    EXPECT_GE(faster.ipc, base.ipc);
}

TEST(Perf, ObjectiveIsWeightedGeomean)
{
    PerfBreakdown a;
    a.ipc = 4.0;
    PerfBreakdown b;
    b.ipc = 16.0;
    double obj = performanceObjective({ a, b }, { 1.0, 1.0 });
    EXPECT_NEAR(obj, 8.0, 1e-9);
}

TEST(Perf, StridedStreamsLowerIpc)
{
    // bgr2grey untuned-style: penalized efficiency raises demand.
    adg::Adg tile = testTile();
    dfg::Mdfg mdfg =
        compiler::compileOne(wl::makeBgr2Grey(128), 4, false, false);
    // Coalescing gives efficiency 1; force a strided copy to compare.
    dfg::Mdfg strided = mdfg;
    for (auto id : strided.nodeIdsOfKind(dfg::NodeKind::InputStream))
        strided.node(id).stream.bandwidthEfficiency = 0.33;
    PerfInput in_a{ &mdfg, {} };
    PerfInput in_b{ &strided, {} };
    adg::SystemParams sys = testSys(4);
    EXPECT_GT(estimateIpc(in_a, tile, sys).ipc,
              estimateIpc(in_b, tile, sys).ipc);
}

} // namespace
} // namespace overgen::model
