#include <gtest/gtest.h>

#include "adg/builders.h"
#include "model/oracle.h"
#include "model/resource_model.h"

namespace overgen::model {
namespace {

/** A small, fast-to-train model shared by the tests in this file. */
const FpgaResourceModel &
testModel()
{
    static FpgaResourceModel model = [] {
        ResourceModelConfig config;
        config.peSamples = 1200;
        config.switchSamples = 600;
        config.inPortSamples = 400;
        config.outPortSamples = 400;
        config.train.epochs = 60;
        return FpgaResourceModel::train(config);
    }();
    return model;
}

TEST(ResourceModel, ValidationErrorsReasonable)
{
    const auto &model = testModel();
    EXPECT_LT(model.peError(), 0.35);
    EXPECT_LT(model.switchError(), 0.35);
    EXPECT_LT(model.inPortError(), 0.35);
    EXPECT_LT(model.outPortError(), 0.35);
}

TEST(ResourceModel, PePredictionTracksOracle)
{
    const auto &model = testModel();
    adg::Node node;
    node.kind = adg::NodeKind::Pe;
    adg::PeSpec pe;
    pe.capabilities = adg::intCapabilities(DataType::I64);
    pe.datapathBytes = 32;
    node.spec = pe;
    Resources truth = synthesizeNode(node, 3);
    Resources pred = model.nodeResources(node, 3);
    EXPECT_NEAR(pred.lut, truth.lut, truth.lut * 0.5);
    EXPECT_GT(pred.lut, 0.0);
}

TEST(ResourceModel, ModelIsPessimisticOnAverage)
{
    // §V-D: the OOC-trained model overestimates post-PnR results.
    const auto &model = testModel();
    Rng rng(77);
    double pred_sum = 0.0, truth_sum = 0.0;
    for (int i = 0; i < 50; ++i) {
        adg::Node node;
        node.kind = adg::NodeKind::Switch;
        node.spec = adg::SwitchSpec{ 8 << rng.nextBelow(4) };
        int radix = static_cast<int>(rng.nextRange(2, 8));
        pred_sum += model.nodeResources(node, radix).lut;
        truth_sum += synthesizeNode(node, radix).lut;
    }
    EXPECT_GT(pred_sum, truth_sum);
}

TEST(ResourceModel, EnginesUseExactCharacterization)
{
    const auto &model = testModel();
    adg::Node node;
    node.kind = adg::NodeKind::Dma;
    node.spec = adg::DmaSpec{ 32, true, 16 };
    Resources pred = model.nodeResources(node, 2);
    Resources truth = synthesizeNode(node, 2);
    // Exhaustively characterized: exact up to the pessimism factor.
    EXPECT_NEAR(pred.lut, truth.lut * 1.06, 1e-6);
}

TEST(ResourceModel, TileResourcesSumNodes)
{
    const auto &model = testModel();
    adg::MeshConfig config;
    config.rows = 2;
    config.cols = 2;
    config.numPes = 2;
    config.numInPorts = 2;
    config.numOutPorts = 1;
    config.peCapabilities = adg::intCapabilities(DataType::I64);
    adg::Adg tile = adg::buildMeshTile(config);
    Resources total = model.tileResources(tile);
    EXPECT_GT(total.lut, 0.0);
    auto breakdown = model.tileBreakdown(tile);
    double sum = breakdown.pe.lut + breakdown.network.lut +
                 breakdown.ports.lut + breakdown.spad.lut +
                 breakdown.dma.lut;
    EXPECT_NEAR(sum, total.lut, total.lut * 1e-9);
}

TEST(ResourceModel, SystemAddsCoresAndUncore)
{
    const auto &model = testModel();
    adg::SysAdg design;
    adg::MeshConfig config;
    config.rows = 2;
    config.cols = 2;
    config.numPes = 2;
    config.numInPorts = 2;
    config.numOutPorts = 1;
    config.peCapabilities = adg::intCapabilities(DataType::I64);
    design.adg = adg::buildMeshTile(config);
    design.sys.numTiles = 2;
    Resources two_tiles = model.systemResources(design);
    design.sys.numTiles = 4;
    Resources four_tiles = model.systemResources(design);
    EXPECT_GT(four_tiles.lut, two_tiles.lut * 1.5);
    EXPECT_GT(two_tiles.lut, 2.0 * model.tileResources(design.adg).lut);
}

TEST(ResourceModel, GeneralSystemNearlyFillsDevice)
{
    // Paper Q1: the general overlay fits at most 4 tiles on the VCU9P.
    const auto &model = testModel();
    adg::SysAdg design;
    design.adg = adg::buildGeneralOverlayTile();
    design.sys.numTiles = 4;
    design.sys.l2Banks = 4;
    design.sys.nocBytes = 32;
    FpgaDevice device = FpgaDevice::xcvu9p();
    double util =
        device.worstUtilization(model.systemResources(design));
    EXPECT_GT(util, 0.7);
    design.sys.numTiles = 6;
    EXPECT_GT(device.worstUtilization(model.systemResources(design)),
              1.0);
}

TEST(ResourceModel, FeatureExtraction)
{
    adg::PeSpec pe;
    pe.capabilities = { { Opcode::Mul, DataType::F32 },
                        { Opcode::Add, DataType::I64 },
                        { Opcode::Div, DataType::F64 } };
    pe.datapathBytes = 16;
    auto features = peFeatures(pe);
    EXPECT_EQ(features[0], 16.0);  // datapath
    EXPECT_EQ(features[1], 1.0);   // int caps
    EXPECT_EQ(features[2], 2.0);   // float caps
    EXPECT_EQ(features[3], 1.0);   // div/sqrt caps
    EXPECT_EQ(features[4], 1.0);   // mul caps
}

TEST(Resources, ArithmeticOperators)
{
    Resources a{ 10, 20, 1, 2 };
    Resources b{ 5, 10, 1, 0 };
    Resources sum = a + b;
    EXPECT_EQ(sum.lut, 15.0);
    EXPECT_EQ(sum.ff, 30.0);
    Resources scaled = a * 2.0;
    EXPECT_EQ(scaled.dsp, 4.0);
}

TEST(Resources, DeviceFitChecks)
{
    FpgaDevice device = FpgaDevice::xcvu9p();
    Resources half = device.total * 0.5;
    EXPECT_TRUE(device.fits(half));
    EXPECT_FALSE(device.fits(device.total * 1.01));
    EXPECT_NEAR(device.worstUtilization(half), 0.5, 1e-9);
}

} // namespace
} // namespace overgen::model
