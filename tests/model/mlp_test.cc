#include <gtest/gtest.h>

#include <cmath>

#include "model/mlp.h"

namespace overgen::model {
namespace {

TEST(Mlp, LearnsLinearFunction)
{
    Rng rng(3);
    std::vector<std::vector<double>> x, y;
    for (int i = 0; i < 600; ++i) {
        double a = rng.nextDouble() * 10.0;
        double b = rng.nextDouble() * 10.0;
        x.push_back({ a, b });
        y.push_back({ 3.0 * a + 2.0 * b + 5.0 });
    }
    Mlp mlp(2, { 16, 8 }, 1, 7);
    double err = mlp.train(x, y);
    EXPECT_LT(err, 0.1);
    auto pred = mlp.predict(std::vector<double>{ 4.0, 2.0 });
    EXPECT_NEAR(pred[0], 21.0, 3.0);
}

TEST(Mlp, LearnsNonlinearFunction)
{
    Rng rng(5);
    std::vector<std::vector<double>> x, y;
    for (int i = 0; i < 1200; ++i) {
        double a = rng.nextDouble() * 8.0;
        double b = rng.nextDouble() * 8.0;
        x.push_back({ a, b });
        y.push_back({ a * b + a * a });
    }
    Mlp mlp(2, { 32, 16 }, 1, 11);
    double err = mlp.train(x, y);
    EXPECT_LT(err, 0.15);
}

TEST(Mlp, MultiOutput)
{
    Rng rng(9);
    std::vector<std::vector<double>> x, y;
    for (int i = 0; i < 600; ++i) {
        double a = rng.nextDouble() * 5.0 + 1.0;
        x.push_back({ a });
        y.push_back({ 10.0 * a, 100.0 * a });
    }
    Mlp mlp(1, { 16, 8 }, 2, 3);
    mlp.train(x, y);
    auto pred = mlp.predict(std::vector<double>{ 3.0 });
    ASSERT_EQ(pred.size(), 2u);
    EXPECT_NEAR(pred[0], 30.0, 8.0);
    EXPECT_NEAR(pred[1], 300.0, 60.0);
}

TEST(Mlp, DeterministicTraining)
{
    std::vector<std::vector<double>> x, y;
    for (int i = 0; i < 100; ++i) {
        x.push_back({ static_cast<double>(i) });
        y.push_back({ 2.0 * i });
    }
    Mlp a(1, { 8 }, 1, 42);
    Mlp b(1, { 8 }, 1, 42);
    a.train(x, y);
    b.train(x, y);
    auto pa = a.predict(std::vector<double>{ 50.0 });
    auto pb = b.predict(std::vector<double>{ 50.0 });
    EXPECT_DOUBLE_EQ(pa[0], pb[0]);
}

TEST(Mlp, PredictionsNonNegative)
{
    // Resource counts cannot be negative: predictions are clamped by
    // the log1p/expm1 transform.
    std::vector<std::vector<double>> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back({ static_cast<double>(i % 10) });
        y.push_back({ 0.1 });
    }
    Mlp mlp(1, { 8 }, 1, 1);
    mlp.train(x, y);
    for (double v = -5.0; v < 20.0; v += 1.0) {
        auto pred = mlp.predict(std::vector<double>{ v });
        EXPECT_GE(pred[0], 0.0);
    }
}

TEST(Mlp, ParameterCount)
{
    Mlp mlp(3, { 4, 2 }, 1, 1);
    // (3*4+4) + (4*2+2) + (2*1+1) = 16 + 10 + 3 = 29.
    EXPECT_EQ(mlp.parameterCount(), 29);
}

TEST(MlpDeathTest, PredictBeforeTrainPanics)
{
    Mlp mlp(2, { 4 }, 1, 1);
    EXPECT_DEATH(mlp.predict(std::vector<double>{ 1.0, 2.0 }),
                 "predict before train");
}

TEST(MlpDeathTest, DimensionMismatchPanics)
{
    Mlp mlp(2, { 4 }, 1, 1);
    std::vector<std::vector<double>> x{ { 1.0 } };
    std::vector<std::vector<double>> y{ { 1.0 } };
    EXPECT_DEATH(mlp.train(x, y), "feature dim mismatch");
}

} // namespace
} // namespace overgen::model
