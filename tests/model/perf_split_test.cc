#include <gtest/gtest.h>

#include <cstring>

#include "adg/builders.h"
#include "compiler/compile.h"
#include "model/perf.h"
#include "workloads/suites.h"

namespace overgen::model {
namespace {

/**
 * The factored performance model (precomputeTilePerf +
 * combineSystemPerf) is the form the DSE's nested system grid pays
 * for; estimateIpc is the one-shot reference. The contract (perf.h,
 * DESIGN.md "Evaluation cache and model split") is bit-identical
 * results: the summary replays DRAM-demand accumulation in the exact
 * stream order of the reference path, so every double — not just the
 * headline IPC — must match to the last ulp across all workloads and
 * system points.
 */

adg::Adg
splitTestTile(int spad_kib = 32, bool recurrence = true)
{
    adg::MeshConfig config;
    config.rows = 3;
    config.cols = 3;
    config.numPes = 6;
    config.numInPorts = 6;
    config.numOutPorts = 3;
    config.datapathBytes = 32;
    config.spadCapacityKiB = spad_kib;
    config.recurrenceEngine = recurrence;
    config.indirect = true;
    config.dmaBandwidthBytes = 32;
    std::set<FuCapability> caps = adg::intCapabilities(DataType::I64);
    auto f64 = adg::floatCapabilities(DataType::F64);
    caps.insert(f64.begin(), f64.end());
    auto f32 = adg::floatCapabilities(DataType::F32);
    caps.insert(f32.begin(), f32.end());
    auto i16 = adg::intCapabilities(DataType::I16);
    caps.insert(i16.begin(), i16.end());
    config.peCapabilities = caps;
    return adg::buildMeshTile(config);
}

/** Exact double equality including the sign of zero — "the same
 * computation", not "close enough". */
void
expectBitEqual(double a, double b, const std::string &label)
{
    EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << label << ": " << a << " vs " << b;
}

void
expectSameBreakdown(const PerfBreakdown &ref, const PerfBreakdown &split,
                    const std::string &label)
{
    expectBitEqual(ref.ipc, split.ipc, label + " ipc");
    expectBitEqual(ref.workRate, split.workRate, label + " workRate");
    expectBitEqual(ref.instBandwidth, split.instBandwidth,
                   label + " instBandwidth");
    expectBitEqual(ref.fabricFactor, split.fabricFactor,
                   label + " fabricFactor");
    expectBitEqual(ref.spadFactor, split.spadFactor,
                   label + " spadFactor");
    expectBitEqual(ref.l2Factor, split.l2Factor, label + " l2Factor");
    expectBitEqual(ref.dramFactor, split.dramFactor,
                   label + " dramFactor");
    EXPECT_EQ(ref.bottleneck, split.bottleneck) << label;
}

std::vector<adg::SystemParams>
systemPoints()
{
    // Corners chosen to flip the bottleneck between fabric, L2 and
    // DRAM: a starved single tile, the defaults, a wide machine, and
    // a many-tile point where the per-tile L2 share shrinks enough to
    // unfilter large footprints.
    std::vector<adg::SystemParams> points;
    adg::SystemParams sys;
    points.push_back(sys);  // defaults
    sys.numTiles = 1;
    sys.l2Banks = 1;
    sys.l2CapacityKiB = 64;
    sys.nocBytes = 8;
    points.push_back(sys);
    sys = adg::SystemParams{};
    sys.numTiles = 16;
    sys.l2Banks = 16;
    sys.l2CapacityKiB = 1024;
    sys.nocBytes = 64;
    sys.dramChannels = 2;
    points.push_back(sys);
    sys = adg::SystemParams{};
    sys.numTiles = 13;
    sys.l2Banks = 4;
    sys.l2CapacityKiB = 256;
    points.push_back(sys);
    return points;
}

TEST(PerfSplit, MatchesReferenceAcrossAllWorkloadsAndSystemPoints)
{
    adg::Adg tile = splitTestTile();
    std::vector<adg::SystemParams> points = systemPoints();
    int workloads = 0;
    for (const auto &k : wl::allWorkloads()) {
        dfg::Mdfg mdfg = compiler::compileOne(k, 1, false, false);
        // Derived backing: both paths derive it themselves from an
        // empty table, exactly as estimateIpc documents.
        TilePerfSummary summary = precomputeTilePerf(mdfg, {}, tile);
        for (size_t p = 0; p < points.size(); ++p) {
            PerfBreakdown ref =
                estimateIpc({ &mdfg, {} }, tile, points[p]);
            PerfBreakdown split = combineSystemPerf(summary, points[p]);
            expectSameBreakdown(
                ref, split, k.name + " sys" + std::to_string(p));
        }
        ++workloads;
    }
    EXPECT_EQ(workloads, 19);
}

TEST(PerfSplit, MatchesReferenceWithExplicitBacking)
{
    // Scheduled backing (the DSE path): force every memory stream to
    // DMA so the L2/DRAM terms dominate, and compare again.
    adg::Adg tile = splitTestTile();
    std::vector<adg::SystemParams> points = systemPoints();
    for (const auto &k : wl::dspSuite()) {
        dfg::Mdfg mdfg = compiler::compileOne(k, 1, false, false);
        BackingVec backing(static_cast<size_t>(mdfg.numNodes()),
                           Backing::Dma);
        TilePerfSummary summary =
            precomputeTilePerf(mdfg, backing, tile);
        for (size_t p = 0; p < points.size(); ++p) {
            PerfBreakdown ref =
                estimateIpc({ &mdfg, backing }, tile, points[p]);
            PerfBreakdown split = combineSystemPerf(summary, points[p]);
            expectSameBreakdown(
                ref, split,
                k.name + " dma sys" + std::to_string(p));
        }
    }
}

TEST(PerfSplit, MatchesReferenceWithCustomPerfConfig)
{
    // Non-default technology constants must flow through both paths
    // identically (narrow DRAM turns memory-bound kernels over).
    adg::Adg tile = splitTestTile();
    PerfConfig narrow;
    narrow.dramChannelBandwidthBytes = 48.0;
    narrow.l2BankBandwidthBytes = 16.0;
    adg::SystemParams sys;
    for (const auto &k : wl::dspSuite()) {
        dfg::Mdfg mdfg = compiler::compileOne(k, 1, false, false);
        TilePerfSummary summary = precomputeTilePerf(mdfg, {}, tile);
        PerfBreakdown ref = estimateIpc({ &mdfg, {} }, tile, sys, narrow);
        PerfBreakdown split = combineSystemPerf(summary, sys, narrow);
        expectSameBreakdown(ref, split, k.name + " narrow");
    }
}

} // namespace
} // namespace overgen::model
