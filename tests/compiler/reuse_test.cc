#include <gtest/gtest.h>

#include "compiler/reuse.h"
#include "workloads/suites.h"

namespace overgen::compiler {
namespace {

using wl::KernelSpec;

TEST(Reuse, FirMatchesPaperExample)
{
    // Paper Fig. 5 analyzes a tiled FIR with io=4, j=128, ii=32.
    // Our generator: makeFir(128, 128) gives io=4, j=128, ii=32.
    KernelSpec k = wl::makeFir(128, 128);
    ASSERT_EQ(k.loops[0].tripBase, 4);
    ASSERT_EQ(k.loops[1].tripBase, 128);
    ASSERT_EQ(k.loops[2].tripBase, 32);

    // Access 0: a[io*32 + j + ii] — traffic = 4*128*32 = 16384,
    // footprint = 32*3 + 127 + 31 + 1 = 255 (paper: 255).
    AccessAnalysis a = analyzeAccess(k, 0);
    EXPECT_EQ(a.trafficElements, 16384);
    EXPECT_EQ(a.footprintElements, 255);
    EXPECT_EQ(a.stationary, 1);

    // Access 1: b[j] — stationary over ii with factor 32 (paper:
    // "Port Reuse: 32"), footprint 128.
    AccessAnalysis b = analyzeAccess(k, 1);
    EXPECT_EQ(b.stationary, 32);
    EXPECT_EQ(b.footprintElements, 128);

    // Access 2/3: c[io*32+ii] read/write pair — recurrent across j
    // with 128 recurrences and 32 concurrent instances (paper:
    // "Recur: 128" over 32 concurrent instances).
    AccessAnalysis c = analyzeAccess(k, 2);
    ASSERT_TRUE(c.recurrentPeer.has_value());
    EXPECT_EQ(*c.recurrentPeer, 3);
    EXPECT_EQ(c.recurrentTrips, 128);
    EXPECT_EQ(c.recurrentConcurrency, 32);
}

TEST(Reuse, IndirectFootprintIsWholeArray)
{
    KernelSpec k = wl::makeEllpack(100, 4);
    // Access 1: x[ind[...]] — uniform-distribution assumption.
    AccessAnalysis a = analyzeAccess(k, 1);
    EXPECT_EQ(a.footprintElements, 100);
    EXPECT_EQ(a.trafficElements, 400);
}

TEST(Reuse, StationaryRequiresZeroInnerCoeff)
{
    KernelSpec k = wl::makeMm(16);
    // a[i*n+k]: inner coeff (j) is 0 -> stationary 16.
    EXPECT_EQ(analyzeAccess(k, 0).stationary, 16);
    // b[k*n+j]: inner coeff 1 -> no stationary reuse.
    EXPECT_EQ(analyzeAccess(k, 1).stationary, 1);
}

TEST(Reuse, WriteStreamFindsRecurrentPeer)
{
    KernelSpec k = wl::makeMm(16);
    AccessAnalysis w = analyzeAccess(k, 3);
    ASSERT_TRUE(w.recurrentPeer.has_value());
    EXPECT_EQ(*w.recurrentPeer, 2);
    EXPECT_EQ(w.recurrentTrips, 16);  // across k
}

TEST(Reuse, NoRecurrenceForPureReads)
{
    KernelSpec k = wl::makeMm(16);
    EXPECT_FALSE(analyzeAccess(k, 0).recurrentPeer.has_value());
    EXPECT_FALSE(analyzeAccess(k, 1).recurrentPeer.has_value());
}

TEST(Reuse, ToReuseInfoScalesByElementBytes)
{
    KernelSpec k = wl::makeMm(16);
    AccessAnalysis a = analyzeAccess(k, 0);
    dfg::ReuseInfo info = toReuseInfo(k, 0, a, false);
    EXPECT_DOUBLE_EQ(info.trafficBytes,
                     static_cast<double>(a.trafficElements) * 8);
    EXPECT_DOUBLE_EQ(info.footprintBytes,
                     static_cast<double>(a.footprintElements) * 8);
}

TEST(Reuse, RecurrenceFactorOnlyWhenEnabled)
{
    KernelSpec k = wl::makeMm(16);
    AccessAnalysis c = analyzeAccess(k, 2);
    EXPECT_DOUBLE_EQ(toReuseInfo(k, 2, c, false).recurrent, 1.0);
    EXPECT_DOUBLE_EQ(toReuseInfo(k, 2, c, true).recurrent, 16.0);
}

TEST(Reuse, ArrayGeneralReuseHighForSharedFilter)
{
    KernelSpec k = wl::makeFir(128, 128);
    // b is touched 4*128*32 times with footprint 128, but 32x is
    // captured stationary: general reuse ~ 4*128*32/32/128 = 4.
    EXPECT_NEAR(arrayGeneralReuse(k, "b"), 4.0, 1e-9);
    // a: 16384 uses / 255 elements ~ 64.
    EXPECT_NEAR(arrayGeneralReuse(k, "a"), 16384.0 / 255.0, 1e-9);
}

TEST(Reuse, PointwiseKernelHasNoReuse)
{
    KernelSpec k = wl::makeAccumulate(16);
    AccessAnalysis a = analyzeAccess(k, 0);
    EXPECT_EQ(a.trafficElements, a.footprintElements);
    EXPECT_EQ(a.stationary, 1);
    EXPECT_FALSE(a.recurrentPeer.has_value());
}

} // namespace
} // namespace overgen::compiler
