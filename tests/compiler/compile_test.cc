#include <gtest/gtest.h>

#include "compiler/compile.h"
#include "workloads/interpreter.h"
#include "workloads/suites.h"

namespace overgen::compiler {
namespace {

using dfg::Mdfg;
using dfg::NodeKind;
using dfg::StreamSource;

TEST(Compile, AllWorkloadsCompileAllVariants)
{
    for (const auto &k : wl::allWorkloads()) {
        auto variants = compileVariants(k);
        EXPECT_FALSE(variants.empty()) << k.name;
        for (const auto &v : variants)
            EXPECT_EQ(v.validate(), "") << v.name;
    }
}

TEST(Compile, VariantsOrderedMostAggressiveFirst)
{
    auto variants = compileVariants(wl::makeMm(32));
    ASSERT_GE(variants.size(), 2u);
    for (size_t i = 1; i < variants.size(); ++i) {
        EXPECT_GE(variants[i - 1].unrollFactor,
                  variants[i].unrollFactor);
    }
    EXPECT_EQ(variants.back().unrollFactor, 1);
}

TEST(Compile, RecurrenceVariantsGeneratedForAccumulations)
{
    auto variants = compileVariants(wl::makeMm(32));
    bool with_rec = false, without_rec = false;
    for (const auto &v : variants) {
        with_rec |= v.usesRecurrence;
        without_rec |= !v.usesRecurrence;
    }
    EXPECT_TRUE(with_rec);
    EXPECT_TRUE(without_rec);
}

TEST(Compile, NoRecurrenceVariantForPointwise)
{
    auto variants = compileVariants(wl::makeAccumulate(16));
    for (const auto &v : variants)
        EXPECT_FALSE(v.usesRecurrence) << v.name;
}

TEST(Compile, RecurrencePairLinked)
{
    Mdfg m = compileOne(wl::makeMm(16), 2, true, false);
    int rec_in = 0, rec_out = 0;
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.source == StreamSource::Recurrence) {
            ++rec_in;
            ASSERT_NE(s.recurrencePeer, dfg::invalidNode);
            EXPECT_EQ(m.node(s.recurrencePeer).stream.recurrencePeer,
                      id);
        }
    }
    for (auto id : m.nodeIdsOfKind(NodeKind::OutputStream)) {
        if (m.node(id).stream.source == StreamSource::Recurrence)
            ++rec_out;
    }
    EXPECT_EQ(rec_in, 1);
    EXPECT_EQ(rec_out, 1);
}

TEST(Compile, UnrollSetsLanes)
{
    Mdfg m = compileOne(wl::makeAccumulate(16), 4, false, false);
    for (auto id : m.nodeIdsOfKind(NodeKind::Instruction))
        EXPECT_EQ(m.node(id).inst.lanes, 4);
    EXPECT_EQ(m.unrollFactor, 4);
    EXPECT_EQ(m.vectorization(), 4);
}

TEST(Compile, StationaryStreamKeepsOneLane)
{
    // mm: a[i*n+k] is stationary over j; its stream stays scalar.
    Mdfg m = compileOne(wl::makeMm(16), 4, false, false);
    bool found = false;
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.reuse.stationary > 1.0) {
            EXPECT_EQ(s.lanes, 1);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(Compile, Bgr2GreyCoalescesInterleavedChannels)
{
    // Three stride-3 reads (offsets 0,1,2) coalesce into one stream.
    Mdfg m = compileOne(wl::makeBgr2Grey(16), 2, false, false);
    auto inputs = m.nodeIdsOfKind(NodeKind::InputStream);
    ASSERT_EQ(inputs.size(), 1u);
    const auto &s = m.node(inputs[0]).stream;
    EXPECT_EQ(s.specAccesses.size(), 3u);
    EXPECT_EQ(s.lanes, 6);  // unroll 2 x stride group 3
    EXPECT_DOUBLE_EQ(s.bandwidthEfficiency, 1.0);
}

TEST(Compile, FftStridedCoalescingRequiresTuning)
{
    // fft has variable trips: strided reads coalesce only when tuned.
    Mdfg untuned = compileOne(wl::makeFft(6), 2, false, false);
    int untuned_inputs = static_cast<int>(
        untuned.nodeIdsOfKind(NodeKind::InputStream).size());
    Mdfg tuned = compileOne(wl::makeFft(6), 2, false, true);
    int tuned_inputs = static_cast<int>(
        tuned.nodeIdsOfKind(NodeKind::InputStream).size());
    EXPECT_GT(untuned_inputs, tuned_inputs);
    // Untuned strided streams pay a bandwidth-efficiency penalty.
    bool penalized = false;
    for (auto id : untuned.nodeIdsOfKind(NodeKind::InputStream))
        penalized |= untuned.node(id).stream.bandwidthEfficiency < 1.0;
    EXPECT_TRUE(penalized);
}

TEST(Compile, BlurOverlapMergeWhenTuned)
{
    Mdfg untuned = compileOne(wl::makeBlur(16), 2, false, false);
    Mdfg tuned = compileOne(wl::makeBlur(16), 2, false, true);
    // Tuned: 3 row streams instead of 9 tap streams.
    EXPECT_GT(untuned.nodeIdsOfKind(NodeKind::InputStream).size(),
              tuned.nodeIdsOfKind(NodeKind::InputStream).size());
    EXPECT_TRUE(tuned.tuned);
    // Overlap merging cuts total memory-bandwidth demand
    // (traffic / captured reuse) by roughly the window height.
    auto demand = [](const Mdfg &m) {
        double total = 0;
        for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
            const auto &reuse = m.node(id).stream.reuse;
            total += reuse.trafficBytes / reuse.capturedFactor();
        }
        return total;
    };
    EXPECT_LT(demand(tuned) * 4, demand(untuned));
}

TEST(Compile, ConstantTapsReadOnce)
{
    // stencil-2d coefficient taps: all-zero coeffs -> one stream whose
    // traffic is just the 9 taps.
    Mdfg m = compileOne(wl::makeStencil2d(8, 1), 1, false, false);
    bool found = false;
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.specAccesses.size() == 9) {
            found = true;
            EXPECT_DOUBLE_EQ(s.reuse.trafficBytes, 9.0 * 8);
            // Held stationary for the whole region: 1*8*8 iterations.
            EXPECT_DOUBLE_EQ(s.reuse.stationary, 64.0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Compile, IndirectStreamHasIndexFeed)
{
    Mdfg m = compileOne(wl::makeEllpack(32, 4), 1, false, false);
    int indirect_count = 0;
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.indirect) {
            ++indirect_count;
            ASSERT_NE(s.indexStream, dfg::invalidNode);
            EXPECT_FALSE(m.node(s.indexStream).stream.indirect);
        }
    }
    EXPECT_EQ(indirect_count, 1);
}

TEST(Compile, ArraysAttachedToStreams)
{
    Mdfg m = compileOne(wl::makeFir(64, 8), 2, false, false);
    auto arrays = m.nodeIdsOfKind(NodeKind::Array);
    EXPECT_EQ(arrays.size(), 3u);  // a, b, c
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.source == StreamSource::Memory &&
            !s.specAccesses.empty()) {
            EXPECT_NE(s.array, dfg::invalidNode);
        }
    }
}

TEST(Compile, ScratchpadHintHonored)
{
    Mdfg m = compileOne(wl::makeFir(64, 8), 1, false, false);
    bool a_spad = false;
    for (auto id : m.nodeIdsOfKind(NodeKind::Array)) {
        const auto &arr = m.node(id).array;
        if (arr.name == "a") {
            a_spad = arr.preferred == dfg::ArrayPlacement::Scratchpad;
            // Double-buffered allocation.
            EXPECT_EQ(arr.sizeBytes, 2 * (64 + 8) * 8);
        }
    }
    EXPECT_TRUE(a_spad);
}

TEST(Compile, ImmediatesFoldIntoInstruction)
{
    Mdfg m = compileOne(wl::makeBgr2Grey(16), 1, false, false);
    int with_imm = 0;
    for (auto id : m.nodeIdsOfKind(NodeKind::Instruction)) {
        if (m.node(id).inst.immediate.has_value())
            ++with_imm;
    }
    EXPECT_EQ(with_imm, 4);  // 3 muls by weight + div by 256
}

TEST(Compile, VariableTripPropagatesToStreams)
{
    Mdfg m = compileOne(wl::makeCrs(32, 4), 1, false, false);
    for (auto id : m.nodeIdsOfKind(NodeKind::InputStream)) {
        const auto &s = m.node(id).stream;
        if (s.source == StreamSource::Memory) {
            EXPECT_TRUE(s.variableTripCount);
        }
    }
}

TEST(Compile, Gemm2dUnrollDoublesLanesWhenTuned)
{
    Mdfg plain = compileOne(wl::makeGemm(16), 4, false, false);
    Mdfg tuned = compileOne(wl::makeGemm(16), 4, false, true);
    EXPECT_EQ(plain.vectorization(), 4);
    EXPECT_EQ(tuned.vectorization(), 8);
}

TEST(Compile, InstructionBandwidthGrowsWithUnroll)
{
    Mdfg u1 = compileOne(wl::makeAccumulate(16), 1, false, false);
    Mdfg u4 = compileOne(wl::makeAccumulate(16), 4, false, false);
    EXPECT_GT(u4.instructionBandwidth(), u1.instructionBandwidth());
}

TEST(Compile, SolverOnlyUnrollOne)
{
    // solver's innermost trip base is 1 (triangular): only u=1 works.
    auto variants = compileVariants(wl::makeSolver(16));
    for (const auto &v : variants)
        EXPECT_EQ(v.unrollFactor, 1) << v.name;
}

} // namespace
} // namespace overgen::compiler

namespace overgen::compiler {
namespace {

/** c[i] = a[i] * i: the induction variable as an operand. */
wl::KernelSpec
rampKernel(int n = 64)
{
    wl::KernelSpec k;
    k.name = "ramp";
    k.suite = wl::Suite::Dsp;
    k.loops = { { "i", n, {}, false } };
    k.arrays = { { "a", DataType::I64, n, false, "" },
                 { "c", DataType::I64, n, false, "" } };
    k.accesses = { { "a", { 1 }, 0, false, "" },
                   { "c", { 1 }, 0, true, "" } };
    k.ops = { { Opcode::Mul, DataType::I64, wl::Operand::access(0),
                wl::Operand::indexVar(0), 1 } };
    k.maxUnroll = 4;
    return k;
}

TEST(Compile, IndexOperandBecomesGeneratedStream)
{
    dfg::Mdfg m = compileOne(rampKernel(), 2, false, false);
    EXPECT_EQ(m.validate(), "");
    int generated = 0;
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        if (m.node(id).stream.source ==
            dfg::StreamSource::Generated) {
            ++generated;
            EXPECT_EQ(m.node(id).stream.lanes, 2);
        }
    }
    EXPECT_EQ(generated, 1);
}

TEST(Compile, IndexStreamSharedAcrossConsumers)
{
    // Two ops consuming the same induction variable share one
    // generated stream.
    wl::KernelSpec k = rampKernel();
    k.ops.push_back({ Opcode::Add, DataType::I64, wl::Operand::op(0),
                      wl::Operand::indexVar(0), -1 });
    dfg::Mdfg m = compileOne(k, 1, false, false);
    int generated = 0;
    for (auto id : m.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        generated += m.node(id).stream.source ==
                     dfg::StreamSource::Generated;
    }
    EXPECT_EQ(generated, 1);
}

TEST(Compile, InterpreterEvaluatesIndexOperand)
{
    wl::KernelSpec k = rampKernel(16);
    wl::Memory mem;
    mem.init(k);
    std::vector<double> a = mem.array("a");
    wl::interpret(k, mem);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(mem.array("c")[i], a[i] * i);
}

} // namespace
} // namespace overgen::compiler
