file(REMOVE_RECURSE
  "CMakeFiles/table4_hls_ii.dir/table4_hls_ii.cc.o"
  "CMakeFiles/table4_hls_ii.dir/table4_hls_ii.cc.o.d"
  "table4_hls_ii"
  "table4_hls_ii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_hls_ii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
