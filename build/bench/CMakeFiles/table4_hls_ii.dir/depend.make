# Empty dependencies file for table4_hls_ii.
# This may be replaced when dependencies are built.
