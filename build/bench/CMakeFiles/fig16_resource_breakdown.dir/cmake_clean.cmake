file(REMOVE_RECURSE
  "CMakeFiles/fig16_resource_breakdown.dir/fig16_resource_breakdown.cc.o"
  "CMakeFiles/fig16_resource_breakdown.dir/fig16_resource_breakdown.cc.o.d"
  "fig16_resource_breakdown"
  "fig16_resource_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_resource_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
