# Empty dependencies file for fig18_incremental.
# This may be replaced when dependencies are built.
