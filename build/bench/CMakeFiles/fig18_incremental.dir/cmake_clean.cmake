file(REMOVE_RECURSE
  "CMakeFiles/fig18_incremental.dir/fig18_incremental.cc.o"
  "CMakeFiles/fig18_incremental.dir/fig18_incremental.cc.o.d"
  "fig18_incremental"
  "fig18_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
