# Empty dependencies file for fig13_overall_perf.
# This may be replaced when dependencies are built.
