file(REMOVE_RECURSE
  "CMakeFiles/fig13_overall_perf.dir/fig13_overall_perf.cc.o"
  "CMakeFiles/fig13_overall_perf.dir/fig13_overall_perf.cc.o.d"
  "fig13_overall_perf"
  "fig13_overall_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_overall_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
