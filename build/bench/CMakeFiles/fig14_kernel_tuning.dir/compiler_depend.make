# Empty compiler generated dependencies file for fig14_kernel_tuning.
# This may be replaced when dependencies are built.
