file(REMOVE_RECURSE
  "CMakeFiles/fig14_kernel_tuning.dir/fig14_kernel_tuning.cc.o"
  "CMakeFiles/fig14_kernel_tuning.dir/fig14_kernel_tuning.cc.o.d"
  "fig14_kernel_tuning"
  "fig14_kernel_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_kernel_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
