# Empty dependencies file for micro_stream_engine.
# This may be replaced when dependencies are built.
