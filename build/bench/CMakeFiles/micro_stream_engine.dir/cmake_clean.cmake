file(REMOVE_RECURSE
  "CMakeFiles/micro_stream_engine.dir/micro_stream_engine.cc.o"
  "CMakeFiles/micro_stream_engine.dir/micro_stream_engine.cc.o.d"
  "micro_stream_engine"
  "micro_stream_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_stream_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
