file(REMOVE_RECURSE
  "CMakeFiles/table3_suite_specs.dir/table3_suite_specs.cc.o"
  "CMakeFiles/table3_suite_specs.dir/table3_suite_specs.cc.o.d"
  "table3_suite_specs"
  "table3_suite_specs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_suite_specs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
