# Empty compiler generated dependencies file for table3_suite_specs.
# This may be replaced when dependencies are built.
