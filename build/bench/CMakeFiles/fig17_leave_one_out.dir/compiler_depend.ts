# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig17_leave_one_out.
