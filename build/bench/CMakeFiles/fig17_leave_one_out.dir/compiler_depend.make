# Empty compiler generated dependencies file for fig17_leave_one_out.
# This may be replaced when dependencies are built.
