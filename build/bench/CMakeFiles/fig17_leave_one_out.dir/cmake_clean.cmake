file(REMOVE_RECURSE
  "CMakeFiles/fig17_leave_one_out.dir/fig17_leave_one_out.cc.o"
  "CMakeFiles/fig17_leave_one_out.dir/fig17_leave_one_out.cc.o.d"
  "fig17_leave_one_out"
  "fig17_leave_one_out.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_leave_one_out.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
