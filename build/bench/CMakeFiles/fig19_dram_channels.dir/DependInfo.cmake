
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_dram_channels.cc" "bench/CMakeFiles/fig19_dram_channels.dir/fig19_dram_channels.cc.o" "gcc" "bench/CMakeFiles/fig19_dram_channels.dir/fig19_dram_channels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/overgen_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hls/CMakeFiles/overgen_hls.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/overgen_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/overgen_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/overgen_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/overgen_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/overgen_model.dir/DependInfo.cmake"
  "/root/repo/build/src/adg/CMakeFiles/overgen_adg.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/overgen_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/overgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
