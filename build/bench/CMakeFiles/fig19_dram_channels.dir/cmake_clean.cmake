file(REMOVE_RECURSE
  "CMakeFiles/fig19_dram_channels.dir/fig19_dram_channels.cc.o"
  "CMakeFiles/fig19_dram_channels.dir/fig19_dram_channels.cc.o.d"
  "fig19_dram_channels"
  "fig19_dram_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_dram_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
