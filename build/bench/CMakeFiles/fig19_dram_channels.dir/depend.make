# Empty dependencies file for fig19_dram_channels.
# This may be replaced when dependencies are built.
