# Empty dependencies file for fig15_dse_time.
# This may be replaced when dependencies are built.
