file(REMOVE_RECURSE
  "CMakeFiles/fig15_dse_time.dir/fig15_dse_time.cc.o"
  "CMakeFiles/fig15_dse_time.dir/fig15_dse_time.cc.o.d"
  "fig15_dse_time"
  "fig15_dse_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_dse_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
