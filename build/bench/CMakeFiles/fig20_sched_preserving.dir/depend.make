# Empty dependencies file for fig20_sched_preserving.
# This may be replaced when dependencies are built.
