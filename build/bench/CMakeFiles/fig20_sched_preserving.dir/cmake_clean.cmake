file(REMOVE_RECURSE
  "CMakeFiles/fig20_sched_preserving.dir/fig20_sched_preserving.cc.o"
  "CMakeFiles/fig20_sched_preserving.dir/fig20_sched_preserving.cc.o.d"
  "fig20_sched_preserving"
  "fig20_sched_preserving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_sched_preserving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
