# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/adg_test[1]_include.cmake")
include("/root/repo/build/tests/dfg_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/hls_test[1]_include.cmake")
include("/root/repo/build/tests/dse_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
