file(REMOVE_RECURSE
  "CMakeFiles/adg_test.dir/adg/adg_test.cc.o"
  "CMakeFiles/adg_test.dir/adg/adg_test.cc.o.d"
  "CMakeFiles/adg_test.dir/adg/builders_test.cc.o"
  "CMakeFiles/adg_test.dir/adg/builders_test.cc.o.d"
  "adg_test"
  "adg_test.pdb"
  "adg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
