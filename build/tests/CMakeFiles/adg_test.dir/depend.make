# Empty dependencies file for adg_test.
# This may be replaced when dependencies are built.
