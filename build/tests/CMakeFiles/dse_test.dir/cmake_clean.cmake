file(REMOVE_RECURSE
  "CMakeFiles/dse_test.dir/dse/explorer_test.cc.o"
  "CMakeFiles/dse_test.dir/dse/explorer_test.cc.o.d"
  "CMakeFiles/dse_test.dir/dse/mutations_test.cc.o"
  "CMakeFiles/dse_test.dir/dse/mutations_test.cc.o.d"
  "dse_test"
  "dse_test.pdb"
  "dse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
