file(REMOVE_RECURSE
  "CMakeFiles/suite_overlay.dir/suite_overlay.cc.o"
  "CMakeFiles/suite_overlay.dir/suite_overlay.cc.o.d"
  "suite_overlay"
  "suite_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
