# Empty dependencies file for suite_overlay.
# This may be replaced when dependencies are built.
