# Empty compiler generated dependencies file for fir_overlay.
# This may be replaced when dependencies are built.
