file(REMOVE_RECURSE
  "CMakeFiles/fir_overlay.dir/fir_overlay.cc.o"
  "CMakeFiles/fir_overlay.dir/fir_overlay.cc.o.d"
  "fir_overlay"
  "fir_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
