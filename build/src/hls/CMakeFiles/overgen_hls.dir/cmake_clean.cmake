file(REMOVE_RECURSE
  "CMakeFiles/overgen_hls.dir/autodse.cc.o"
  "CMakeFiles/overgen_hls.dir/autodse.cc.o.d"
  "CMakeFiles/overgen_hls.dir/hls_model.cc.o"
  "CMakeFiles/overgen_hls.dir/hls_model.cc.o.d"
  "libovergen_hls.a"
  "libovergen_hls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_hls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
