file(REMOVE_RECURSE
  "libovergen_hls.a"
)
