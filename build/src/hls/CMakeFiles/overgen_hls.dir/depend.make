# Empty dependencies file for overgen_hls.
# This may be replaced when dependencies are built.
