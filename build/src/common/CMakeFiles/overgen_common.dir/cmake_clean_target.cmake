file(REMOVE_RECURSE
  "libovergen_common.a"
)
