file(REMOVE_RECURSE
  "CMakeFiles/overgen_common.dir/json.cc.o"
  "CMakeFiles/overgen_common.dir/json.cc.o.d"
  "CMakeFiles/overgen_common.dir/logging.cc.o"
  "CMakeFiles/overgen_common.dir/logging.cc.o.d"
  "CMakeFiles/overgen_common.dir/opcode.cc.o"
  "CMakeFiles/overgen_common.dir/opcode.cc.o.d"
  "CMakeFiles/overgen_common.dir/types.cc.o"
  "CMakeFiles/overgen_common.dir/types.cc.o.d"
  "libovergen_common.a"
  "libovergen_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
