# Empty compiler generated dependencies file for overgen_common.
# This may be replaced when dependencies are built.
