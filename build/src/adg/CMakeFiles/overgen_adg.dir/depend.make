# Empty dependencies file for overgen_adg.
# This may be replaced when dependencies are built.
