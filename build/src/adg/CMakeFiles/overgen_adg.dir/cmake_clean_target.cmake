file(REMOVE_RECURSE
  "libovergen_adg.a"
)
