file(REMOVE_RECURSE
  "CMakeFiles/overgen_adg.dir/adg.cc.o"
  "CMakeFiles/overgen_adg.dir/adg.cc.o.d"
  "CMakeFiles/overgen_adg.dir/builders.cc.o"
  "CMakeFiles/overgen_adg.dir/builders.cc.o.d"
  "libovergen_adg.a"
  "libovergen_adg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_adg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
