
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/compile.cc" "src/compiler/CMakeFiles/overgen_compiler.dir/compile.cc.o" "gcc" "src/compiler/CMakeFiles/overgen_compiler.dir/compile.cc.o.d"
  "/root/repo/src/compiler/reuse.cc" "src/compiler/CMakeFiles/overgen_compiler.dir/reuse.cc.o" "gcc" "src/compiler/CMakeFiles/overgen_compiler.dir/reuse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/overgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/overgen_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/overgen_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
