file(REMOVE_RECURSE
  "libovergen_compiler.a"
)
