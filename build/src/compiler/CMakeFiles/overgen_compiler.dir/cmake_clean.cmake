file(REMOVE_RECURSE
  "CMakeFiles/overgen_compiler.dir/compile.cc.o"
  "CMakeFiles/overgen_compiler.dir/compile.cc.o.d"
  "CMakeFiles/overgen_compiler.dir/reuse.cc.o"
  "CMakeFiles/overgen_compiler.dir/reuse.cc.o.d"
  "libovergen_compiler.a"
  "libovergen_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
