# Empty compiler generated dependencies file for overgen_compiler.
# This may be replaced when dependencies are built.
