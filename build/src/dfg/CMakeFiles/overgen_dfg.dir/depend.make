# Empty dependencies file for overgen_dfg.
# This may be replaced when dependencies are built.
