file(REMOVE_RECURSE
  "CMakeFiles/overgen_dfg.dir/mdfg.cc.o"
  "CMakeFiles/overgen_dfg.dir/mdfg.cc.o.d"
  "libovergen_dfg.a"
  "libovergen_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
