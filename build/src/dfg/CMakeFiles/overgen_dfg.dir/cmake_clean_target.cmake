file(REMOVE_RECURSE
  "libovergen_dfg.a"
)
