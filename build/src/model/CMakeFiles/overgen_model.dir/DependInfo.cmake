
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/mlp.cc" "src/model/CMakeFiles/overgen_model.dir/mlp.cc.o" "gcc" "src/model/CMakeFiles/overgen_model.dir/mlp.cc.o.d"
  "/root/repo/src/model/oracle.cc" "src/model/CMakeFiles/overgen_model.dir/oracle.cc.o" "gcc" "src/model/CMakeFiles/overgen_model.dir/oracle.cc.o.d"
  "/root/repo/src/model/perf.cc" "src/model/CMakeFiles/overgen_model.dir/perf.cc.o" "gcc" "src/model/CMakeFiles/overgen_model.dir/perf.cc.o.d"
  "/root/repo/src/model/resource_model.cc" "src/model/CMakeFiles/overgen_model.dir/resource_model.cc.o" "gcc" "src/model/CMakeFiles/overgen_model.dir/resource_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/overgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/adg/CMakeFiles/overgen_adg.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/overgen_dfg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
