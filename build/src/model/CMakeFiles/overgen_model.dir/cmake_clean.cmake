file(REMOVE_RECURSE
  "CMakeFiles/overgen_model.dir/mlp.cc.o"
  "CMakeFiles/overgen_model.dir/mlp.cc.o.d"
  "CMakeFiles/overgen_model.dir/oracle.cc.o"
  "CMakeFiles/overgen_model.dir/oracle.cc.o.d"
  "CMakeFiles/overgen_model.dir/perf.cc.o"
  "CMakeFiles/overgen_model.dir/perf.cc.o.d"
  "CMakeFiles/overgen_model.dir/resource_model.cc.o"
  "CMakeFiles/overgen_model.dir/resource_model.cc.o.d"
  "libovergen_model.a"
  "libovergen_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
