# Empty dependencies file for overgen_model.
# This may be replaced when dependencies are built.
