file(REMOVE_RECURSE
  "libovergen_model.a"
)
