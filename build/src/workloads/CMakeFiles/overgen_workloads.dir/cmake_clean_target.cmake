file(REMOVE_RECURSE
  "libovergen_workloads.a"
)
