# Empty compiler generated dependencies file for overgen_workloads.
# This may be replaced when dependencies are built.
