
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/interpreter.cc" "src/workloads/CMakeFiles/overgen_workloads.dir/interpreter.cc.o" "gcc" "src/workloads/CMakeFiles/overgen_workloads.dir/interpreter.cc.o.d"
  "/root/repo/src/workloads/kernelspec.cc" "src/workloads/CMakeFiles/overgen_workloads.dir/kernelspec.cc.o" "gcc" "src/workloads/CMakeFiles/overgen_workloads.dir/kernelspec.cc.o.d"
  "/root/repo/src/workloads/suites.cc" "src/workloads/CMakeFiles/overgen_workloads.dir/suites.cc.o" "gcc" "src/workloads/CMakeFiles/overgen_workloads.dir/suites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/overgen_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
