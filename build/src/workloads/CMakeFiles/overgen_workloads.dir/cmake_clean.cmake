file(REMOVE_RECURSE
  "CMakeFiles/overgen_workloads.dir/interpreter.cc.o"
  "CMakeFiles/overgen_workloads.dir/interpreter.cc.o.d"
  "CMakeFiles/overgen_workloads.dir/kernelspec.cc.o"
  "CMakeFiles/overgen_workloads.dir/kernelspec.cc.o.d"
  "CMakeFiles/overgen_workloads.dir/suites.cc.o"
  "CMakeFiles/overgen_workloads.dir/suites.cc.o.d"
  "libovergen_workloads.a"
  "libovergen_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
