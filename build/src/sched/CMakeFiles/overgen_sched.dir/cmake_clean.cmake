file(REMOVE_RECURSE
  "CMakeFiles/overgen_sched.dir/schedule.cc.o"
  "CMakeFiles/overgen_sched.dir/schedule.cc.o.d"
  "CMakeFiles/overgen_sched.dir/scheduler.cc.o"
  "CMakeFiles/overgen_sched.dir/scheduler.cc.o.d"
  "libovergen_sched.a"
  "libovergen_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
