file(REMOVE_RECURSE
  "libovergen_sched.a"
)
