# Empty dependencies file for overgen_sched.
# This may be replaced when dependencies are built.
