file(REMOVE_RECURSE
  "libovergen_sim.a"
)
