file(REMOVE_RECURSE
  "CMakeFiles/overgen_sim.dir/exec.cc.o"
  "CMakeFiles/overgen_sim.dir/exec.cc.o.d"
  "CMakeFiles/overgen_sim.dir/memory_system.cc.o"
  "CMakeFiles/overgen_sim.dir/memory_system.cc.o.d"
  "CMakeFiles/overgen_sim.dir/simulate.cc.o"
  "CMakeFiles/overgen_sim.dir/simulate.cc.o.d"
  "CMakeFiles/overgen_sim.dir/tile.cc.o"
  "CMakeFiles/overgen_sim.dir/tile.cc.o.d"
  "libovergen_sim.a"
  "libovergen_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
