
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/exec.cc" "src/sim/CMakeFiles/overgen_sim.dir/exec.cc.o" "gcc" "src/sim/CMakeFiles/overgen_sim.dir/exec.cc.o.d"
  "/root/repo/src/sim/memory_system.cc" "src/sim/CMakeFiles/overgen_sim.dir/memory_system.cc.o" "gcc" "src/sim/CMakeFiles/overgen_sim.dir/memory_system.cc.o.d"
  "/root/repo/src/sim/simulate.cc" "src/sim/CMakeFiles/overgen_sim.dir/simulate.cc.o" "gcc" "src/sim/CMakeFiles/overgen_sim.dir/simulate.cc.o.d"
  "/root/repo/src/sim/tile.cc" "src/sim/CMakeFiles/overgen_sim.dir/tile.cc.o" "gcc" "src/sim/CMakeFiles/overgen_sim.dir/tile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/overgen_common.dir/DependInfo.cmake"
  "/root/repo/build/src/adg/CMakeFiles/overgen_adg.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/overgen_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/overgen_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/overgen_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/overgen_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
