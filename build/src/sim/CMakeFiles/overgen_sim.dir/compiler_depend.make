# Empty compiler generated dependencies file for overgen_sim.
# This may be replaced when dependencies are built.
