file(REMOVE_RECURSE
  "CMakeFiles/overgen_dse.dir/explorer.cc.o"
  "CMakeFiles/overgen_dse.dir/explorer.cc.o.d"
  "CMakeFiles/overgen_dse.dir/mutations.cc.o"
  "CMakeFiles/overgen_dse.dir/mutations.cc.o.d"
  "libovergen_dse.a"
  "libovergen_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overgen_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
