file(REMOVE_RECURSE
  "libovergen_dse.a"
)
