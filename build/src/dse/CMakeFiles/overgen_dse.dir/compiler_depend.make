# Empty compiler generated dependencies file for overgen_dse.
# This may be replaced when dependencies are built.
