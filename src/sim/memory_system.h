#ifndef OVERGEN_SIM_MEMORY_SYSTEM_H
#define OVERGEN_SIM_MEMORY_SYSTEM_H

/**
 * @file
 * Cycle-level shared memory system: crossbar NoC with per-tile link
 * bandwidth, a banked set-associative inclusive L2 with MSHRs, and a
 * channel-interleaved DRAM bandwidth/latency model (paper Fig. 8).
 */

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "telemetry/ledger.h"

namespace overgen::telemetry {
class Distribution;
class TimelineRun;
} // namespace overgen::telemetry

namespace overgen::sim {

/** Identifier of an in-flight memory transaction. */
using TxnId = int64_t;

/** Aggregate memory-system statistics. */
struct MemoryStats
{
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t dramBytesRead = 0;
    uint64_t dramBytesWritten = 0;
    uint64_t nocBytes = 0;
    uint64_t mshrStallCycles = 0;
    /** High-water mark of submitted-but-not-yet-consumed transactions
     * (queued + in service + completed-awaiting-poll). Bounds the
     * `completed` map: entries are erased on successful poll, so this
     * is the worst-case live footprint of the transaction tables. */
    uint64_t peakOutstandingTxns = 0;
    /** Where every clocked cycle went (always on; bit-identical with
     * fast-forward on or off — see telemetry/ledger.h). */
    telemetry::CycleLedger ledger;
};

/**
 * The shared memory system. Tiles submit line-granular transactions;
 * completion is polled. Contention is modeled with per-cycle byte
 * budgets on each tile link, L2 bank, and DRAM channel.
 */
class MemorySystem : public ClockedComponent
{
  public:
    MemorySystem(const adg::SystemParams &sys, const SimConfig &config);

    /**
     * Submit a line transaction from @p tile. @p addr is a byte
     * address in the simulated flat address space. @return the txn id
     * to poll, or -1 when the tile's request queue is full this cycle.
     */
    TxnId submit(int tile, uint64_t addr, int bytes, bool write);

    /** @return whether @p tile may submit a transaction this cycle. */
    bool canAccept(int tile) const;

    /** @return whether @p id has completed (and forget it). */
    bool consumeCompleted(TxnId id);

    /** Advance one cycle. */
    void tick();

    /** @name ClockedComponent */
    /// @{
    void tick(uint64_t engine_cycle) override;
    /** Next completion becoming pollable, or the next cycle whenever
     * any queue holds work (queues drain with per-cycle budgets that
     * are cheaper to tick than to replay). */
    uint64_t nextEventCycle(uint64_t now) const override;
    /** Saturate the per-link/bank/channel byte budgets in closed form
     * and jump the clock; deferred fill expiry is re-done lazily by
     * the next real tick. */
    void fastForward(uint64_t from, uint64_t to) override;
    uint64_t progressCount() const override { return progressEvents; }
    uint64_t quiescenceFingerprint() const override;
    void describeState(std::string &out) const override;
    /// @}

    /** @return current cycle count. */
    uint64_t now() const { return cycle; }

    /** @return statistics gathered so far. */
    const MemoryStats &stats() const { return memStats; }

    /** @return whether any transaction is still in flight. */
    bool busy() const;

    /**
     * Attach this run's trace identity (pid) and counter prefix.
     * Telemetry itself comes from `config.sink`; nothing is recorded
     * until this is called (simulate() attaches each run under
     * "sim/<kernel>/memory").
     */
    void attachTelemetry(int trace_pid, const std::string &prefix);

    /**
     * Stream interval time-series rows into @p run every @p interval
     * cycles (requires a live `config.sink`, whose presence already
     * degrades the horizon to per-cycle ticking).
     */
    void attachTimeline(telemetry::TimelineRun *run,
                        uint64_t interval);

  private:
    struct Txn
    {
        TxnId id;
        int tile;
        uint64_t addr;
        int bytes;
        bool write;
        uint64_t readyAt = 0;
    };

    struct CacheLine
    {
        uint64_t tag = 0;
        bool dirty = false;
    };

    struct Bank
    {
        /** Tag store: set -> lines, MRU first. */
        std::vector<std::vector<CacheLine>> sets;
        std::deque<Txn> queue;      //!< waiting for bank bandwidth
        std::deque<Txn> dramQueue;  //!< read misses waiting for DRAM
        /** Lines being filled from DRAM: line -> ready cycle (one MSHR
         * each; later requests to the line merge). */
        std::map<uint64_t, uint64_t> fillReady;
        /** Dirty eviction bytes pending DRAM write bandwidth. */
        int64_t writebackBytes = 0;
        int mshrsInUse = 0;
        double byteBudget = 0.0;
    };

    struct LookupResult
    {
        bool hit = false;
        bool evictedDirty = false;
    };

    int bankOf(uint64_t addr) const;
    int channelOf(uint64_t addr) const;
    /**
     * @return the first cycle > now at which a budget accruing @p inc
     * per tick (from @p budget) covers @p bytes — when a queue head
     * blocked only on bandwidth gets serviced.
     */
    static uint64_t budgetReadyCycle(uint64_t now, double budget,
                                     double inc, double bytes);
    /** Probe and update the tag store (allocates on miss). */
    LookupResult lookup(Bank &bank, uint64_t addr, bool write);

    /**
     * Classify one quiescent (no-progress) cycle for the ledger. Reads
     * only window-frozen state (queue occupancies, in-flight fills,
     * MSHR merge windows) — never byte budgets — so one classification
     * holds for a whole skipped window (see DESIGN.md "Cycle
     * accounting and timelines" for why expiry deferral is safe).
     */
    telemetry::CycleCategory classifyStall() const;

    adg::SystemParams sys;
    SimConfig config;
    std::vector<Bank> banks;
    std::vector<double> channelBudget;
    std::vector<std::deque<Txn>> tileLink;  //!< per-tile request queue
    std::vector<double> tileLinkBudget;
    std::map<TxnId, uint64_t> completed;    //!< id -> completion cycle
    std::map<TxnId, Txn> inFlight;
    int setsPerBank = 0;
    TxnId nextId = 1;
    uint64_t cycle = 0;
    uint64_t progressEvents = 0;
    MemoryStats memStats;

    /** @name Telemetry (null when config.sink is null) */
    /// @{
    void sampleTelemetry();
    telemetry::Distribution *mshrOccupancy = nullptr;
    telemetry::Distribution *bankQueueDepth = nullptr;
    int tracePid = 0;
    uint64_t lastNocBytes = 0;
    uint64_t lastDramBytes = 0;
    /// @}

    /** @name Interval time-series (null when sampling is off) */
    /// @{
    void emitTimelineRow();
    telemetry::TimelineRun *timelineRun = nullptr;
    uint64_t timelineInterval = 0;
    /// @}
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_MEMORY_SYSTEM_H
