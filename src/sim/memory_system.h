#ifndef OVERGEN_SIM_MEMORY_SYSTEM_H
#define OVERGEN_SIM_MEMORY_SYSTEM_H

/**
 * @file
 * Cycle-level shared memory system: crossbar NoC with per-tile link
 * bandwidth, a banked set-associative inclusive L2 with MSHRs, and a
 * channel-interleaved DRAM bandwidth/latency model (paper Fig. 8).
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "adg/adg.h"
#include "common/ring.h"
#include "sim/config.h"
#include "sim/engine.h"
#include "telemetry/ledger.h"

namespace overgen::telemetry {
class Distribution;
class TimelineRun;
} // namespace overgen::telemetry

namespace overgen::sim {

/** Identifier of an in-flight memory transaction. */
using TxnId = int64_t;

/** Aggregate memory-system statistics. */
struct MemoryStats
{
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    uint64_t dramBytesRead = 0;
    uint64_t dramBytesWritten = 0;
    uint64_t nocBytes = 0;
    uint64_t mshrStallCycles = 0;
    /** High-water mark of submitted-but-not-yet-consumed transactions
     * (queued + in service + completed-awaiting-poll). Bounds the
     * `completed` map: entries are erased on successful poll, so this
     * is the worst-case live footprint of the transaction tables. */
    uint64_t peakOutstandingTxns = 0;
    /** Where every clocked cycle went (always on; bit-identical with
     * fast-forward on or off — see telemetry/ledger.h). */
    telemetry::CycleLedger ledger;
};

/**
 * The shared memory system. Tiles submit line-granular transactions;
 * completion is polled. Contention is modeled with per-cycle byte
 * budgets on each tile link, L2 bank, and DRAM channel.
 */
class MemorySystem : public ClockedComponent
{
  public:
    MemorySystem(const adg::SystemParams &sys, const SimConfig &config);

    /**
     * Submit a line transaction from @p tile. @p addr is a byte
     * address in the simulated flat address space. @return the txn id
     * to poll, or -1 when the tile's request queue is full this cycle.
     */
    TxnId submit(int tile, uint64_t addr, int bytes, bool write);

    /** @return whether @p tile may submit a transaction this cycle. */
    bool canAccept(int tile) const;

    /** @return whether @p id has completed (and forget it). */
    bool consumeCompleted(TxnId id);

    /** Advance one cycle. */
    void tick();

    /** @name ClockedComponent */
    /// @{
    void tick(uint64_t engine_cycle) override;
    /** Next completion becoming pollable, or the next internal drain
     * or fill-expiry event (queues drain with per-cycle budgets whose
     * next service cycle is solved in closed form). */
    uint64_t nextEventCycle(uint64_t now) const override;
    /** Saturate the per-link/bank/channel byte budgets in closed form
     * and jump the clock; deferred fill expiry is re-done lazily by
     * the next real tick. */
    void fastForward(uint64_t from, uint64_t to) override;
    /** Drain windows (see SimEngine): replayable whenever telemetry
     * is not forcing per-cycle observation. */
    bool supportsDrainReplay() const override;
    /** Replay internal drain events (budget-gated queue service, fill
     * expiry, DRAM dispatch) in closed form while every other
     * component is provably frozen. See the .cc for the window-stop
     * safety argument. */
    uint64_t drainReplay(uint64_t from, uint64_t limit,
                         uint64_t deadlock, uint64_t *last_progress,
                         bool verify) override;
    uint64_t progressCount() const override { return progressEvents; }
    uint64_t quiescenceFingerprint() const override;
    void describeState(std::string &out) const override;
    /** Serialize everything the drain-replay digest covers plus the
     * tag store: SoA rings, budgets, deferred fill expiry, the
     * completion map, stats and ledger, and the clock. */
    void save(Snapshot &snap) const override;
    void restore(const Snapshot &snap) override;
    /// @}

    /** @return current cycle count. */
    uint64_t now() const { return cycle; }

    /** @return statistics gathered so far. */
    const MemoryStats &stats() const { return memStats; }

    /** @return whether any transaction is still in flight. */
    bool busy() const;

    /**
     * Attach this run's trace identity (pid) and counter prefix.
     * Telemetry itself comes from `config.sink`; nothing is recorded
     * until this is called (simulate() attaches each run under
     * "sim/<kernel>/memory").
     */
    void attachTelemetry(int trace_pid, const std::string &prefix);

    /**
     * Stream interval time-series rows into @p run every @p interval
     * cycles (requires a live `config.sink`, whose presence already
     * degrades the horizon to per-cycle ticking).
     */
    void attachTimeline(telemetry::TimelineRun *run,
                        uint64_t interval);

  private:
    /**
     * SoA ring of queued transactions. The hot loops touch one field
     * at a time — bytes for budget checks, addresses for bank/channel
     * hashing — so each field lives in its own contiguous array
     * instead of striding over whole transaction records.
     */
    class TxnQueue
    {
      public:
        size_t size() const { return count; }
        bool empty() const { return count == 0; }
        TxnId frontId() const { return ids[head]; }
        uint64_t frontAddr() const { return addrs[head]; }
        int frontBytes() const { return bytes[head]; }
        bool frontWrite() const { return writes[head] != 0; }
        TxnId idAt(size_t i) const { return ids[slot(i)]; }
        uint64_t addrAt(size_t i) const { return addrs[slot(i)]; }
        int bytesAt(size_t i) const { return bytes[slot(i)]; }
        bool writeAt(size_t i) const { return writes[slot(i)] != 0; }

        void
        push(TxnId id, uint64_t addr, int txn_bytes, bool write)
        {
            if (count == ids.size())
                grow();
            size_t s = (head + count) & mask;
            ids[s] = id;
            addrs[s] = addr;
            bytes[s] = txn_bytes;
            writes[s] = write ? 1 : 0;
            ++count;
        }

        void
        pop()
        {
            head = (head + 1) & mask;
            --count;
        }

        void
        clear()
        {
            head = 0;
            count = 0;
        }

      private:
        size_t slot(size_t i) const { return (head + i) & mask; }
        void grow();

        std::vector<TxnId> ids;
        std::vector<uint64_t> addrs;
        std::vector<int> bytes;
        std::vector<uint8_t> writes;
        size_t head = 0;
        size_t count = 0;
        size_t mask = 0;
    };

    struct CacheLine
    {
        uint64_t tag = 0;
        bool dirty = false;
    };

    /** One in-flight DRAM fill (an MSHR held until the fill lands). */
    struct FillEntry
    {
        uint64_t line = 0;
        uint64_t ready = 0;
    };

    struct Bank
    {
        /** Tag store: set -> lines, MRU first. */
        std::vector<std::vector<CacheLine>> sets;
        TxnQueue queue;      //!< waiting for bank bandwidth
        TxnQueue dramQueue;  //!< read misses waiting for DRAM
        /** Lines being filled from DRAM, expiry-ordered: every fill
         * completes a fixed latency after dispatch, so ready cycles
         * are monotone and expired entries are exactly the front run
         * — O(expired) per tick instead of a full-map sweep. Later
         * requests to a filling line merge. */
        common::RingBuffer<FillEntry> fillReady;
        /** Dirty eviction bytes pending DRAM write bandwidth. */
        int64_t writebackBytes = 0;
        int mshrsInUse = 0;
        double byteBudget = 0.0;
    };

    struct LookupResult
    {
        bool hit = false;
        bool evictedDirty = false;
    };

    int bankOf(uint64_t addr) const;
    int channelOf(uint64_t addr) const;
    /**
     * @return the first cycle > now at which a budget accruing @p inc
     * per tick (from @p budget) covers @p bytes — when a queue head
     * blocked only on bandwidth gets serviced.
     */
    static uint64_t budgetReadyCycle(uint64_t now, double budget,
                                     double inc, double bytes);
    /** Probe and update the tag store (allocates on miss). */
    LookupResult lookup(Bank &bank, uint64_t addr, bool write);
    /** Find the in-flight fill for @p line (linear over <= MSHRs
     * entries). @return its ready cycle, or 0 when absent. */
    static const FillEntry *findFill(const Bank &bank, uint64_t line);
    /** Record a dispatched fill, replacing any entry for the same
     * line (the map-overwrite semantics the expiry queue inherits). */
    static void setFill(Bank &bank, uint64_t line, uint64_t ready);
    /** Record a completion and keep the min-ready cache coherent. */
    void insertCompleted(TxnId id, uint64_t ready);
    /** Earliest ready cycle over `completed`, or kNoEventCycle. */
    uint64_t completedFloor() const;

    /** Internal drain/expiry events only — nextEventCycle minus the
     * completion part (completions wake tiles, not this component). */
    uint64_t queueEventCycle(uint64_t now) const;
    /** The closed-form event-by-event drain replay behind
     * drainReplay(); shared by the verified and unverified paths. */
    uint64_t replayDrain(uint64_t from, uint64_t limit,
                         uint64_t deadlock, uint64_t *last_progress);
    /** Full-state digest (nothing excluded — budgets, deferred
     * expiry, stall counters, ledger) for the checkFastForward
     * drain-replay self-check. */
    uint64_t drainDigest() const;

    /**
     * Classify one quiescent (no-progress) cycle for the ledger. Reads
     * only window-frozen state (queue occupancies, in-flight fills,
     * MSHR merge windows) — never byte budgets — so one classification
     * holds for a whole skipped window (see DESIGN.md "Cycle
     * accounting and timelines" for why expiry deferral is safe).
     */
    telemetry::CycleCategory classifyStall() const;

    adg::SystemParams sys;
    SimConfig config;
    std::vector<Bank> banks;
    std::vector<double> channelBudget;
    std::vector<TxnQueue> tileLink;  //!< per-tile request queue
    std::vector<double> tileLinkBudget;
    std::map<TxnId, uint64_t> completed;    //!< id -> completion cycle
    /** Earliest ready cycle in `completed` (kNoEventCycle when empty);
     * invalidated when the floor entry is consumed, recomputed lazily.
     * Keeps nextEventCycle and the drain-replay window stops O(1)
     * instead of scanning every pending completion. */
    mutable uint64_t completedFloorCache = kNoEventCycle;
    mutable bool completedFloorValid = true;
    /** Submitted-but-not-completed transactions (txn payloads live in
     * the SoA queues; only the count is observable). */
    uint64_t inFlightCount = 0;
    int setsPerBank = 0;
    TxnId nextId = 1;
    uint64_t cycle = 0;
    uint64_t progressEvents = 0;
    MemoryStats memStats;

    /** @name Telemetry (null when config.sink is null) */
    /// @{
    void sampleTelemetry();
    telemetry::Distribution *mshrOccupancy = nullptr;
    telemetry::Distribution *bankQueueDepth = nullptr;
    int tracePid = 0;
    uint64_t lastNocBytes = 0;
    uint64_t lastDramBytes = 0;
    /// @}

    /** @name Interval time-series (null when sampling is off) */
    /// @{
    void emitTimelineRow();
    telemetry::TimelineRun *timelineRun = nullptr;
    uint64_t timelineInterval = 0;
    /// @}
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_MEMORY_SYSTEM_H
