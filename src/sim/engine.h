#ifndef OVERGEN_SIM_ENGINE_H
#define OVERGEN_SIM_ENGINE_H

/**
 * @file
 * The componentized simulator core. A simulation is a set of
 * ClockedComponents (tiles, the shared memory system) advanced in
 * lockstep by a SimEngine. Beyond the plain per-cycle tick loop the
 * engine supports *event-horizon fast-forward*: every component
 * reports the earliest future cycle at which its tick could change
 * observable state, and the engine jumps over the provably dead
 * cycles in O(components) instead of executing them, applying each
 * component's closed-form aggregate effect (budget saturation, stall
 * accounting) for the skipped range. Results are bit-identical with
 * fast-forward on or off — see DESIGN.md "SimEngine and event-horizon
 * fast-forward" for the safety argument.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/config.h"

namespace overgen::sim {

class Snapshot;

/** nextEventCycle() sentinel: this component never acts again. */
inline constexpr uint64_t kNoEventCycle = ~uint64_t{ 0 };

/**
 * One clocked piece of the simulated system. The contract binding
 * tick() to the horizon hints:
 *
 *  - nextEventCycle(now) returns the earliest cycle > now at which
 *    tick() could change observable state *given that no other
 *    component acts first*. Returning a too-early cycle only costs a
 *    no-op tick; returning a too-late one corrupts the simulation, so
 *    implementations must be conservative.
 *  - fastForward(from, to) applies the aggregate effect of the ticks
 *    at cycles (from, to] under the guarantee that every one of them
 *    was quiescent: only saturating bandwidth budgets, cycle-gated
 *    stall counters, and the component's own clock may change.
 *  - progressCount() is a monotone counter of forward-progress events
 *    (issues, retirements, firings); the engine's deadlock watchdog
 *    trips when it stalls across every component. Quiescent ticks
 *    must not bump it, or fast-forward and the reference loop would
 *    disagree on the watchdog's firing cycle.
 *  - quiescenceFingerprint() hashes all state that must stay frozen
 *    across a skipped range. State whose update fast-forward is
 *    allowed to defer or batch (budgets, MSHR expiry, stall counters)
 *    is excluded. Only evaluated under SimConfig::checkFastForward.
 *
 * The *drain-replay* extension covers windows that are not globally
 * quiescent: when one component alone makes progress (in practice the
 * memory system draining queues against byte budgets), it may opt in
 * via supportsDrainReplay() and replay its internal events in closed
 * form across a window during which every other component is provably
 * frozen. The engine computes the freeze window from the other
 * components' nextEventCycle(); the drainer must additionally stop
 * before any cycle at which its own evolution could wake another
 * component (a completion becoming pollable, a full queue admitting
 * again) or move the watchdog's abort cycle.
 */
class ClockedComponent
{
  public:
    virtual ~ClockedComponent() = default;

    /** Advance one cycle. @p cycle is the global cycle count. */
    virtual void tick(uint64_t cycle) = 0;

    /** See class comment. @return earliest possibly-active cycle
     * (> @p now), or kNoEventCycle. */
    virtual uint64_t nextEventCycle(uint64_t now) const = 0;

    /** Apply the skipped quiescent ticks at cycles (@p from, @p to]. */
    virtual void fastForward(uint64_t from, uint64_t to) = 0;

    /** Whether drainReplay() may be used on this component. */
    virtual bool supportsDrainReplay() const { return false; }

    /**
     * Replay this component's internal events for cycles (@p from,
     * some to <= @p limit] in closed form, under the engine's
     * guarantee that no other component acts through @p limit.
     * Implementations must stop before any cycle at which their
     * evolution becomes observable to another component, and — so the
     * watchdog aborts at the same cycle as the per-cycle loop — never
     * replay past last_progress + @p deadlock - 1 (when @p deadlock
     * is nonzero). @p last_progress carries the engine's
     * last-progress cycle in and the window's last internal-progress
     * cycle out. With @p verify set (checkFastForward), the
     * implementation must check its closed-form replay against
     * per-cycle ground truth. @return the cycle reached (== @p from
     * when no window opens).
     */
    virtual uint64_t
    drainReplay(uint64_t from, uint64_t limit, uint64_t deadlock,
                uint64_t *last_progress, bool verify)
    {
        (void)limit;
        (void)deadlock;
        (void)last_progress;
        (void)verify;
        return from;
    }

    /** Monotone count of forward-progress events. */
    virtual uint64_t progressCount() const = 0;

    /** Hash of the state a quiescent tick must leave untouched. */
    virtual uint64_t quiescenceFingerprint() const = 0;

    /** Append a human-readable state dump (deadlock diagnostics). */
    virtual void describeState(std::string &out) const = 0;

    /**
     * Append this component's complete mutable state to @p snap —
     * everything a later restore() needs to make the component
     * bit-identical to one that never stopped: queues and rings,
     * saturating byte budgets, deferred fill expiry, stall counters,
     * the cycle ledger, and the component's own clock. Structural
     * state fixed at construction (capacities, wiring, latencies) is
     * not written; restore() runs on a freshly built twin.
     */
    virtual void save(Snapshot &snap) const = 0;

    /** Read back the state written by save(), in the same order. The
     * component must have been constructed with the same inputs. */
    virtual void restore(const Snapshot &snap) = 0;
};

/** Outcome of one SimEngine::run(). */
struct EngineOutcome
{
    /** Final cycle count (the last executed or skipped cycle). */
    uint64_t cycles = 0;
    /** Cycles actually ticked (== cycles when fast-forward is off).
     * Wall-clock observability: excluded from the bit-identity
     * contract, like trace pids. */
    uint64_t tickedCycles = 0;
    /** Cycles skipped by event-horizon fast-forward. */
    uint64_t skippedCycles = 0;
    /** Number of multi-cycle horizon jumps taken. */
    uint64_t horizonJumps = 0;
    /** Cycles covered by drain-replay windows (a subset of
     * skippedCycles; counted into tickedCycles under
     * checkFastForward, like verified horizon jumps). */
    uint64_t drainedCycles = 0;
    /** Number of drain-replay windows taken. */
    uint64_t drainJumps = 0;
    /** All components reported done before maxCycles. */
    bool completed = false;
    /** The deadlock watchdog aborted the run. */
    bool deadlocked = false;
    /** Per-component diagnostic dump (non-empty iff deadlocked). */
    std::string diagnostic;
};

/**
 * The engine's own loop state at a checkpoint site: the cycle the
 * snapshot describes the start of, the watchdog's bookkeeping, and
 * the outcome counters accumulated so far (so a resumed run's final
 * EngineOutcome equals the uninterrupted one field for field).
 * Component state is serialized separately (ClockedComponent::save).
 */
struct EngineCheckpoint
{
    uint64_t cycle = 0;
    uint64_t lastProgressCycle = 0;
    /** One unproductive tick has gone by (the loop's fast-forward
     * arming flag — part of the loop state, so a resume takes the
     * same horizon jumps the uninterrupted run would). */
    bool stalled = false;
    uint64_t tickedCycles = 0;
    uint64_t skippedCycles = 0;
    uint64_t horizonJumps = 0;
    uint64_t drainedCycles = 0;
    uint64_t drainJumps = 0;

    void save(Snapshot &snap) const;
    void restore(const Snapshot &snap);
};

/**
 * Lockstep driver over a set of components. Components tick in the
 * order they were added (the memory system must be added before the
 * tiles that poll it, mirroring the historical loop).
 */
class SimEngine
{
  public:
    explicit SimEngine(const SimConfig &config) : config(config) {}

    /** Register @p component; not owned, must outlive the engine. */
    void add(ClockedComponent *component);

    /**
     * Run until @p all_done returns true, the deadlock watchdog
     * fires, or SimConfig::maxCycles is reached. @p all_done is
     * evaluated after every executed tick (never inside a skipped
     * range: a completion is always preceded by a progress event,
     * which bounds the horizon).
     */
    EngineOutcome run(const std::function<bool()> &all_done);

    /**
     * run() from a restored checkpoint: the components have already
     * been restore()d to @p from's cycle, and the loop re-enters with
     * the checkpoint's watchdog state and outcome counters. The
     * continuation is bit-identical to the uninterrupted run.
     */
    EngineOutcome resume(const std::function<bool()> &all_done,
                         const EngineCheckpoint &from);

    /**
     * Invoke @p hook at checkpoint sites: at the top of the loop,
     * whenever at least @p every cycles have elapsed since the last
     * checkpoint (so sites always fall on executed-tick or
     * post-horizon-jump boundaries, where every component's state is
     * start-of-cycle consistent — never inside a skipped range). The
     * hook must only read component state. 0 disables.
     */
    void setCheckpointHook(
        uint64_t every,
        std::function<void(const EngineCheckpoint &)> hook);

  private:
    EngineOutcome runLoop(const std::function<bool()> &all_done,
                          const EngineCheckpoint *from);
    uint64_t horizon(uint64_t now) const;
    uint64_t totalProgress() const;
    std::string dumpComponents() const;
    /** checkFastForward: execute (from, to] anyway, asserting every
     * cycle was quiescent under the contract. */
    void verifyQuiescent(uint64_t from, uint64_t to,
                         const std::function<bool()> &all_done);
    /** checkFastForward for drain windows: the drainer has already
     * advanced to @p to (self-verified inside drainReplay); execute
     * every other component per-cycle, asserting the window was
     * externally quiescent. */
    void verifyDrainWindow(uint64_t from, uint64_t to, size_t drainer,
                           const std::function<bool()> &all_done);

    SimConfig config;
    std::vector<ClockedComponent *> components;
    uint64_t checkpointEvery = 0;
    std::function<void(const EngineCheckpoint &)> checkpointHook;
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_ENGINE_H
