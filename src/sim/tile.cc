#include "sim/tile.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/ring.h"
#include "sim/snapshot.h"
#include "telemetry/sink.h"
#include "telemetry/timeline.h"

namespace overgen::sim {

namespace {

/** A port FIFO carrying element credits with delivery latency. */
struct PortFifo
{
    int64_t capacity = 4;
    int64_t available = 0;
    int64_t pending = 0;
    /** (ready_at, elems) in delivery order. */
    common::RingBuffer<std::pair<uint64_t, int64_t>> arrivals;

    int64_t
    space() const
    {
        return std::max<int64_t>(0, capacity - available - pending);
    }

    void
    deliver(uint64_t ready_at, int64_t elems)
    {
        pending += elems;
        arrivals.push_back({ ready_at, elems });
    }

    void
    tick(uint64_t now)
    {
        while (!arrivals.empty() && arrivals.front().first <= now) {
            available += arrivals.front().second;
            pending -= arrivals.front().second;
            arrivals.pop_front();
        }
    }

    bool
    drained() const
    {
        return available == 0 && pending == 0;
    }
};

} // namespace

/** Full tile state. */
struct TileSim::Impl
{
    /** Runtime state of one mDFG stream. */
    struct StreamRt
    {
        dfg::NodeId id = dfg::invalidNode;
        StreamKind kind = StreamKind::Vector;
        bool input = true;
        int elemBytes = 8;
        int members = 1;
        /** Representative spec accesses for address generation. */
        std::vector<int> accesses;
        PortFifo port;
        /** Engine-side cursor over the demand schedule. */
        std::unique_ptr<IterationWalker> walker;
        int64_t firingRemaining = 0;
        bool tapsDelivered = false;
        bool engineDone = false;
        uint64_t activeAt = 0;
        /** Read-after-write throttle (memory-variant reductions). */
        StreamRt *hazardPeer = nullptr;
        int64_t hazardWindow = 0;
        int64_t issuedElems = 0;
        int64_t drainedElems = 0;
        /** Indirect-access coupling. */
        StreamRt *indexPeer = nullptr;
        int64_t indexAvail = 0;
        bool isIndexFeed = false;
        StreamRt *indexConsumer = nullptr;
        /** Synthetic access for index feeds (reads the index array
         * affinely with the consumer's coefficients). */
        std::optional<wl::AccessSpec> syntheticAccess;
        /** Recurrence pairing (on the in-stream). */
        StreamRt *recurrenceOut = nullptr;
        int64_t recInitialRemaining = 0;
        int64_t recPool = 0;
        adg::NodeId engine = adg::invalidNode;
    };

    /** One in-flight line transaction of a memory engine. */
    struct OutstandingTxn
    {
        TxnId txn = -1;
        StreamRt *stream = nullptr;
        int64_t elems = 0;
    };

    /** Stream-engine runtime (one per ADG engine with mapped work). */
    struct EngineRt
    {
        adg::NodeKind kind = adg::NodeKind::Dma;
        double bandwidthBytes = 8.0;
        double budget = 0.0;
        bool issueToggle = false;
        std::vector<StreamRt *> streams;
        /** In-flight line transactions. TxnIds are handed out
         * monotonically, so append order is sorted order and the
         * retire scan visits them exactly as the historical
         * std::map<TxnId, ...> iteration did. */
        std::vector<OutstandingTxn> outstanding;
        int robEntries = 16;
        size_t rrNext = 0;
    };

    Impl(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
         const sched::Schedule &schedule, const adg::Adg &adg,
         const AddressMap &addresses, wl::Memory &memory,
         MemorySystem &memsys, int tile_index, int64_t outer_lo,
         int64_t outer_hi, const SimConfig &config, int trace_pid)
        : spec(spec), mdfg(mdfg), schedule(schedule), adg(adg),
          addresses(addresses), memory(memory), memsys(memsys),
          tileIndex(tile_index), config(config),
          fabricWalker(spec, mdfg.unrollFactor *
                                 (mdfg.tuned && spec.tuning.unroll2d
                                      ? 2
                                      : 1),
                       outer_lo, outer_hi),
          tracePid(trace_pid)
    {
        buildStreams(outer_lo, outer_hi);
        // Dispatcher startup: parameter configuration + dispatch.
        int num_streams = static_cast<int>(streams.size());
        stats.startupCycles = num_streams * config.configCyclesPerStream +
                              config.dispatchLatency +
                              config.dispatchBusStages;
        int k = 0;
        for (auto &rt : streams)
            rt->activeAt = stats.startupCycles + k++;
        telemetry::Sink *sink = config.sink;
        if (sink != nullptr && sink->tracing()) {
            // The dispatcher/startup phase is known up front; its
            // begin/end pair brackets cycle 0..startupCycles.
            std::string cat = "tile";
            std::string label =
                "startup:" + std::to_string(num_streams) + "streams";
            sink->trace().begin(label, cat, tracePid, traceTid(), 0);
            sink->trace().end(label, cat, tracePid, traceTid(),
                              stats.startupCycles);
        }
        // Fabric pipeline characteristics.
        iiInterval = 1.0 / schedule.throughputFactor();
        pipelineDepth = 4 + schedule.routeCost /
                                std::max<int>(1,
                                              static_cast<int>(
                                                  schedule.routes.size()));
    }

    void buildStreams(int64_t outer_lo, int64_t outer_hi);
    void tick(uint64_t cycle);
    bool done() const;
    void save(Snapshot &snap) const;
    void restore(const Snapshot &snap);

    /** @name ClockedComponent backing (see sim/engine.h) */
    /// @{
    uint64_t nextEventCycle(uint64_t now) const;
    void fastForward(uint64_t from, uint64_t to);
    uint64_t fingerprint() const;
    void describe(std::string &out) const;
    /** First cycle the fabric's timing gates would let it fire. */
    uint64_t fireReadyCycle() const;
    /** Whether the fabric's port checks pass right now. */
    bool fabricPortsReady() const;
    /// @}

    /** @name Cycle accounting (telemetry/ledger.h). The conditions
     * read only window-frozen state (port FIFOs, outstanding
     * transactions, walker position, timing gates) — never bandwidth
     * budgets — so one classification holds for a whole skipped
     * window and the ledger is bit-identical with fast-forward on or
     * off. */
    /// @{
    /** Whether any engine has memory transactions in flight. */
    bool anyOutstanding() const;
    /** Classify one quiescent (no-progress, unfinished) cycle. */
    telemetry::CycleCategory classifyStall(uint64_t cycle) const;
    /** Closed-form attribution of the skipped window (from, to]. */
    void accountWindow(uint64_t from, uint64_t to);
    /// @}

    void engineTick(adg::NodeId engine_id, EngineRt &engine,
                    uint64_t cycle);
    void memoryEngineIssue(EngineRt &engine, uint64_t cycle);
    void recurrenceTick(EngineRt &engine, uint64_t cycle);
    void generateTick(EngineRt &engine, uint64_t cycle);
    void registerTick(EngineRt &engine, uint64_t cycle);
    void fabricTick(uint64_t cycle);

    /** Advance a stream's engine-side cursor past zero-demand firings. */
    void settleDemand(StreamRt &rt);
    /** Next element addresses sharing one cache line (<= space).
     * Returns a reference to `lineScratch`, valid until the next
     * call. */
    const std::vector<uint64_t> &gatherLine(StreamRt &rt,
                                            int64_t max_elems);
    bool readReady(const StreamRt &rt, uint64_t cycle) const;
    bool writeReady(const StreamRt &rt, uint64_t cycle) const;

    const wl::KernelSpec &spec;
    const dfg::Mdfg &mdfg;
    const sched::Schedule &schedule;
    const adg::Adg &adg;
    const AddressMap &addresses;
    wl::Memory &memory;
    MemorySystem &memsys;
    int tileIndex;
    SimConfig config;

    std::vector<std::unique_ptr<StreamRt>> streams;
    std::map<dfg::NodeId, StreamRt *> byNode;
    /** Engines sorted by ADG node id — the per-cycle loops walk a
     * contiguous array, and the order matches the historical
     * std::map iteration (engine tick order is observable). */
    std::vector<std::pair<adg::NodeId, EngineRt>> engines;
    /** Find-or-insert keeping `engines` sorted (build time only). */
    EngineRt &engineFor(adg::NodeId id);
    /** Scratch for gatherLine (reused across calls — the per-issue
     * vector allocation showed up in the issue-loop profile). */
    std::vector<uint64_t> lineScratch;

    IterationWalker fabricWalker;
    double iiInterval = 1.0;
    double nextFire = 0.0;
    int pipelineDepth = 4;
    TileStats stats;
    bool finished = false;
    /** Monotone forward-progress events (issues, retires, drains,
     * firings); quiescent ticks never bump it. */
    uint64_t progressEvents = 0;

    /** @name Telemetry (trace tid 0 is the memory system) */
    /// @{
    int traceTid() const { return tileIndex + 1; }
    void sampleTelemetry(uint64_t cycle);
    int tracePid = 0;
    uint64_t lastFirings = 0;
    uint64_t lastStallCycles = 0;
    /// @}

    /** @name Interval time-series (null when sampling is off) */
    /// @{
    void emitTimelineRow(uint64_t cycle);
    telemetry::TimelineRun *timelineRun = nullptr;
    uint64_t timelineInterval = 0;
    /// @}
};

TileSim::Impl::EngineRt &
TileSim::Impl::engineFor(adg::NodeId id)
{
    auto it = std::lower_bound(
        engines.begin(), engines.end(), id,
        [](const std::pair<adg::NodeId, EngineRt> &entry,
           adg::NodeId key) { return entry.first < key; });
    if (it == engines.end() || it->first != id)
        it = engines.insert(it, { id, EngineRt{} });
    return it->second;
}

void
TileSim::Impl::buildStreams(int64_t outer_lo, int64_t outer_hi)
{
    int unroll = mdfg.unrollFactor;
    auto make_stream = [&](dfg::NodeId id, bool input) {
        const dfg::StreamNode &node = mdfg.node(id).stream;
        auto rt = std::make_unique<StreamRt>();
        rt->id = id;
        rt->input = input;
        rt->kind = classifyStream(mdfg, id);
        rt->elemBytes = dataTypeBytes(node.type);
        rt->members = std::max<int>(
            1, static_cast<int>(node.specAccesses.size()));
        rt->accesses = node.specAccesses;
        rt->walker = std::make_unique<IterationWalker>(
            spec, unroll, outer_lo, outer_hi);
        // Port capacity from the placed port's spec.
        if (schedule.isPlaced(id)) {
            adg::NodeId target = schedule.placedOn(id);
            const adg::Node &an = adg.node(target);
            if (an.kind == adg::NodeKind::InPort ||
                an.kind == adg::NodeKind::OutPort) {
                rt->port.capacity = std::max<int64_t>(
                    2, static_cast<int64_t>(an.port().fifoDepth) *
                           an.port().widthBytes / rt->elemBytes);
            }
        }
        // Keep taps and stationary values resident.
        if (rt->kind == StreamKind::ConstantTaps) {
            rt->port.capacity =
                std::max<int64_t>(rt->port.capacity, rt->members);
        }
        settleDemand(*rt);
        byNode[id] = rt.get();
        streams.push_back(std::move(rt));
        return streams.back().get();
    };

    for (dfg::NodeId id :
         mdfg.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        make_stream(id, true);
    }
    for (dfg::NodeId id :
         mdfg.nodeIdsOfKind(dfg::NodeKind::OutputStream)) {
        make_stream(id, false);
    }

    // Engine assignment: port-placed streams find their engine through
    // the array placement (or the engine kind for rec/gen/register);
    // index streams are placed directly on engines.
    auto engine_of = [&](StreamRt &rt) -> adg::NodeId {
        const dfg::StreamNode &node = mdfg.node(rt.id).stream;
        switch (node.source) {
          case dfg::StreamSource::Memory:
            if (node.array != dfg::invalidNode &&
                schedule.isPlaced(node.array)) {
                return schedule.placedOn(node.array);
            }
            return adg::invalidNode;
          case dfg::StreamSource::Recurrence: {
            auto recs = adg.nodeIdsOfKind(adg::NodeKind::Recurrence);
            return recs.empty() ? adg::invalidNode : recs[0];
          }
          case dfg::StreamSource::Generated: {
            auto gens = adg.nodeIdsOfKind(adg::NodeKind::Generate);
            return gens.empty() ? adg::invalidNode : gens[0];
          }
          case dfg::StreamSource::Register: {
            auto regs = adg.nodeIdsOfKind(adg::NodeKind::Register);
            return regs.empty() ? adg::invalidNode : regs[0];
          }
        }
        return adg::invalidNode;
    };

    for (auto &rt : streams) {
        rt->engine = engine_of(*rt);
        OG_ASSERT(rt->engine != adg::invalidNode,
                  "stream without an engine in ", mdfg.name);
        EngineRt &engine = engineFor(rt->engine);
        const adg::Node &an = adg.node(rt->engine);
        engine.kind = an.kind;
        switch (an.kind) {
          case adg::NodeKind::Dma:
            engine.bandwidthBytes = an.dma().bandwidthBytes;
            engine.robEntries = an.dma().robEntries;
            break;
          case adg::NodeKind::Scratchpad:
            engine.bandwidthBytes = an.spad().readBandwidthBytes +
                                    an.spad().writeBandwidthBytes;
            break;
          case adg::NodeKind::Recurrence:
            engine.bandwidthBytes = an.rec().bandwidthBytes;
            break;
          case adg::NodeKind::Generate:
            engine.bandwidthBytes = an.gen().bandwidthBytes;
            break;
          case adg::NodeKind::Register:
            engine.bandwidthBytes = an.reg().bandwidthBytes;
            break;
          default:
            OG_PANIC("stream on non-engine node");
        }
        engine.streams.push_back(rt.get());
    }

    // Indirect-access coupling: the index stream feeds its consumer,
    // reading the index array with the consumer's affine function.
    for (auto &rt : streams) {
        const dfg::StreamNode &node = mdfg.node(rt->id).stream;
        if (node.indexStream != dfg::invalidNode) {
            StreamRt *index = byNode.at(node.indexStream);
            rt->indexPeer = index;
            index->isIndexFeed = true;
            index->indexConsumer = rt.get();
            OG_ASSERT(!rt->accesses.empty(),
                      "indirect stream without accesses");
            wl::AccessSpec synth = spec.accesses[rt->accesses[0]];
            synth.array = synth.indexArray;
            synth.indexArray.clear();
            index->syntheticAccess = synth;
        }
    }

    // Read-after-write hazards: a memory read with a recurrent peer in
    // the same array throttles behind the write stream's drain.
    for (auto &rt : streams) {
        if (!rt->input || rt->kind != StreamKind::Vector)
            continue;
        const dfg::StreamNode &node = mdfg.node(rt->id).stream;
        if (node.source != dfg::StreamSource::Memory ||
            node.reuse.recurrentConcurrency <= 0) {
            continue;
        }
        for (auto &other : streams) {
            if (other->input)
                continue;
            const dfg::StreamNode &on = mdfg.node(other->id).stream;
            if (on.source == dfg::StreamSource::Memory &&
                on.array == node.array) {
                rt->hazardPeer = other.get();
                rt->hazardWindow = node.reuse.recurrentConcurrency;
            }
        }
    }

    // Recurrence pairing: each in-stream tracks its own out-peer,
    // initial window, and forwarding pool.
    for (auto &rt : streams) {
        if (rt->kind != StreamKind::RecurrenceIn)
            continue;
        const dfg::StreamNode &node = mdfg.node(rt->id).stream;
        OG_ASSERT(node.recurrencePeer != dfg::invalidNode,
                  "recurrence stream without a peer in ", mdfg.name);
        rt->recurrenceOut = byNode.at(node.recurrencePeer);
        rt->recInitialRemaining =
            std::max<int64_t>(1, node.reuse.recurrentConcurrency);
    }
}

void
TileSim::Impl::settleDemand(StreamRt &rt)
{
    while (!rt.walker->done() && rt.firingRemaining == 0) {
        rt.firingRemaining =
            elemsForFiring(mdfg, rt.id, rt.kind, *rt.walker);
        if (rt.firingRemaining == 0)
            rt.walker->advance();
    }
    if (rt.walker->done() && rt.firingRemaining == 0) {
        if (rt.kind != StreamKind::ConstantTaps || rt.tapsDelivered)
            rt.engineDone = true;
    }
}

const std::vector<uint64_t> &
TileSim::Impl::gatherLine(StreamRt &rt, int64_t max_elems)
{
    std::vector<uint64_t> &out = lineScratch;
    out.clear();
    if (rt.walker->done() && rt.kind != StreamKind::ConstantTaps)
        return out;
    if (rt.kind == StreamKind::ConstantTaps) {
        for (int access : rt.accesses) {
            int64_t idx = wl::resolveIndex(
                spec, spec.accesses[access], rt.walker->indices(),
                memory);
            out.push_back(addresses.elementAddress(
                spec, spec.accesses[access].array, idx));
        }
        return out;
    }
    uint64_t line_base = 0;
    const int line = config.cacheLineBytes;
    while (static_cast<int64_t>(out.size()) < max_elems &&
           rt.firingRemaining > 0) {
        int64_t total =
            elemsForFiring(mdfg, rt.id, rt.kind, *rt.walker);
        int64_t flat = total - rt.firingRemaining;
        const wl::AccessSpec *access = nullptr;
        std::vector<int64_t> ivs = rt.walker->indices();
        if (rt.syntheticAccess) {
            access = &*rt.syntheticAccess;
            ivs.back() += flat;
        } else if (rt.members > 1 && !rt.accesses.empty() &&
                   total == rt.walker->count() * rt.members) {
            // Coalesced: lane-major over members.
            access = &spec.accesses[rt.accesses[flat % rt.members]];
            ivs.back() += flat / rt.members;
        } else if (!rt.accesses.empty()) {
            access = &spec.accesses[rt.accesses[0]];
            ivs.back() += flat;
        }
        if (access == nullptr)
            return out;
        int64_t idx = wl::resolveIndex(spec, *access, ivs, memory);
        uint64_t addr =
            addresses.elementAddress(spec, access->array, idx);
        if (out.empty()) {
            line_base = addr / line;
        } else if (addr / line != line_base) {
            break;  // next element is on another line
        }
        out.push_back(addr);
        --rt.firingRemaining;
        if (rt.firingRemaining == 0) {
            rt.walker->advance();
            settleDemand(rt);
            // Indirect gathers: one element per transaction.
            if (mdfg.node(rt.id).stream.indirect)
                break;
        }
        if (mdfg.node(rt.id).stream.indirect)
            break;
    }
    return out;
}

bool
TileSim::Impl::readReady(const StreamRt &rt, uint64_t cycle) const
{
    if (!rt.input || rt.engineDone || cycle < rt.activeAt)
        return false;
    if (rt.kind == StreamKind::ConstantTaps)
        return !rt.tapsDelivered;
    if (rt.isIndexFeed) {
        // Deliver into the consumer's index buffer (bounded).
        return rt.indexConsumer->indexAvail < 64;
    }
    if (rt.port.space() <= 0)
        return false;
    if (rt.indexPeer && rt.indexAvail <= 0)
        return false;
    if (rt.hazardPeer) {
        int64_t horizon =
            (rt.issuedElems / std::max<int64_t>(1, rt.hazardWindow)) *
            rt.hazardWindow;
        if (horizon > rt.hazardPeer->drainedElems)
            return false;
    }
    return true;
}

bool
TileSim::Impl::writeReady(const StreamRt &rt, uint64_t cycle) const
{
    return !rt.input && !rt.engineDone && cycle >= rt.activeAt &&
           rt.port.available > 0;
}

void
TileSim::Impl::memoryEngineIssue(EngineRt &engine, uint64_t cycle)
{
    bool is_spad = engine.kind == adg::NodeKind::Scratchpad;
    // Stream-table issue: one stream per cycle; without the one-hot
    // bypass a single active stream issues every other cycle (Fig 11).
    int active = 0;
    for (StreamRt *rt : engine.streams)
        active += !rt->engineDone;
    if (active == 0)
        return;
    if (!config.oneHotBypass && active == 1) {
        engine.issueToggle = !engine.issueToggle;
        if (!engine.issueToggle)
            return;
    }
    if (!is_spad &&
        (static_cast<int>(engine.outstanding.size()) >=
             engine.robEntries ||
         !memsys.canAccept(tileIndex))) {
        return;
    }

    // Round-robin stream selection.
    for (size_t probe = 0; probe < engine.streams.size(); ++probe) {
        StreamRt &rt =
            *engine.streams[(engine.rrNext + probe) %
                            engine.streams.size()];
        bool ready = rt.input ? readReady(rt, cycle)
                              : writeReady(rt, cycle);
        if (!ready)
            continue;
        if (engine.budget < rt.elemBytes)
            return;  // accumulate bandwidth before issuing
        engine.rrNext =
            (engine.rrNext + probe + 1) % engine.streams.size();

        int64_t max_elems;
        if (rt.input) {
            max_elems = rt.kind == StreamKind::ConstantTaps
                            ? rt.members
                            : rt.port.space();
            if (rt.isIndexFeed)
                max_elems = 64 - rt.indexConsumer->indexAvail;
            if (rt.indexPeer)
                max_elems = std::min<int64_t>(max_elems, rt.indexAvail);
        } else {
            max_elems = rt.port.available;
        }
        max_elems = std::min<int64_t>(
            max_elems,
            std::max<int64_t>(1, static_cast<int64_t>(engine.budget) /
                                     rt.elemBytes));
        if (max_elems <= 0)
            continue;

        const std::vector<uint64_t> &addrs = gatherLine(rt, max_elems);
        if (addrs.empty()) {
            settleDemand(rt);
            continue;
        }
        int64_t elems = static_cast<int64_t>(addrs.size());
        double bytes = static_cast<double>(elems) * rt.elemBytes;

        if (rt.kind == StreamKind::ConstantTaps)
            rt.tapsDelivered = true;
        if (rt.input) {
            rt.issuedElems += elems;
            if (rt.indexPeer)
                rt.indexAvail -= elems;
        } else {
            rt.port.available -= elems;
        }

        if (config.sink != nullptr && config.sink->traceDetail()) {
            config.sink->trace().instant(
                is_spad ? "spad.issue" : "dma.issue", "engine",
                tracePid, traceTid(), cycle);
        }
        if (is_spad) {
            engine.budget -= bytes;
            stats.spadBytes += static_cast<uint64_t>(bytes);
            if (rt.input) {
                if (rt.isIndexFeed) {
                    rt.indexConsumer->indexAvail += elems;
                } else {
                    rt.port.deliver(cycle + config.spadLatency, elems);
                }
            } else {
                rt.drainedElems += elems;
            }
            if (rt.walker->done() && rt.firingRemaining == 0)
                settleDemand(rt);
        } else {
            // DMA: one line transaction covering the gathered elems.
            engine.budget -= config.cacheLineBytes;
            stats.dmaBytes += config.cacheLineBytes;
            TxnId txn = memsys.submit(tileIndex, addrs.front(),
                                      config.cacheLineBytes,
                                      !rt.input);
            engine.outstanding.push_back({ txn, &rt, elems });
        }
        ++progressEvents;
        return;  // one issue per cycle
    }
}

void
TileSim::Impl::recurrenceTick(EngineRt &engine, uint64_t cycle)
{
    // Bandwidth is shared over all pairs mapped to this engine.
    double budget = engine.bandwidthBytes;
    for (StreamRt *in : engine.streams) {
        if (in->kind != StreamKind::RecurrenceIn)
            continue;
        StreamRt *out = in->recurrenceOut;
        int64_t budget_elems = std::max<int64_t>(
            1, static_cast<int64_t>(budget) / in->elemBytes);

        // Drain the peer out-port into this pair's forwarding pool.
        if (out && cycle >= out->activeAt && !out->engineDone &&
            out->port.available > 0) {
            int64_t n = std::min(out->port.available, budget_elems);
            out->port.available -= n;
            out->drainedElems += n;
            in->recPool += n;
            ++progressEvents;
            stats.recurrenceBytes +=
                static_cast<uint64_t>(n) * out->elemBytes;
            int64_t left = n;
            while (left > 0 && !out->engineDone) {
                int64_t take = std::min(left, out->firingRemaining);
                if (take <= 0)
                    break;
                out->firingRemaining -= take;
                left -= take;
                if (out->firingRemaining == 0) {
                    out->walker->advance();
                    settleDemand(*out);
                }
            }
        }

        // Feed the in-port from the initial window, then the pool.
        if (cycle >= in->activeAt && !in->engineDone &&
            in->port.space() > 0) {
            int64_t want = std::min(in->port.space(), budget_elems);
            int64_t supplied = 0;
            while (want > 0 && !in->engineDone) {
                int64_t take = std::min(want, in->firingRemaining);
                if (take <= 0)
                    break;
                int64_t from_initial =
                    std::min(take, in->recInitialRemaining);
                int64_t from_pool =
                    std::min(take - from_initial, in->recPool);
                int64_t got = from_initial + from_pool;
                if (got == 0)
                    break;
                in->recInitialRemaining -= from_initial;
                in->recPool -= from_pool;
                in->firingRemaining -= got;
                supplied += got;
                want -= got;
                if (in->firingRemaining == 0) {
                    in->walker->advance();
                    settleDemand(*in);
                }
            }
            if (supplied > 0) {
                in->port.deliver(cycle + config.recurrenceLatency,
                                 supplied);
                ++progressEvents;
            }
        }
    }
}

void
TileSim::Impl::generateTick(EngineRt &engine, uint64_t cycle)
{
    for (StreamRt *rt : engine.streams) {
        if (rt->engineDone || cycle < rt->activeAt)
            continue;
        int64_t budget_elems = std::max<int64_t>(
            1, static_cast<int64_t>(engine.bandwidthBytes) /
                   rt->elemBytes);
        int64_t n = std::min(rt->port.space(), budget_elems);
        while (n > 0 && !rt->engineDone) {
            int64_t take = std::min(n, rt->firingRemaining);
            if (take <= 0)
                break;
            rt->firingRemaining -= take;
            rt->port.deliver(cycle + 1, take);
            ++progressEvents;
            n -= take;
            if (rt->firingRemaining == 0) {
                rt->walker->advance();
                settleDemand(*rt);
            }
        }
    }
}

void
TileSim::Impl::registerTick(EngineRt &engine, uint64_t cycle)
{
    for (StreamRt *rt : engine.streams) {
        if (rt->input || rt->engineDone || cycle < rt->activeAt)
            continue;
        if (rt->port.available > 0) {
            --rt->port.available;
            ++rt->drainedElems;
            ++progressEvents;
            if (--rt->firingRemaining == 0) {
                rt->walker->advance();
                settleDemand(*rt);
            }
        }
    }
}

void
TileSim::Impl::engineTick(adg::NodeId engine_id, EngineRt &engine,
                          uint64_t cycle)
{
    (void)engine_id;
    engine.budget =
        std::min(engine.budget + engine.bandwidthBytes,
                 engine.bandwidthBytes +
                     static_cast<double>(config.cacheLineBytes));

    // Retire completed memory transactions, compacting the survivors
    // in place (keeps txn-id order; no per-retire node churn).
    size_t keep = 0;
    for (size_t i = 0; i < engine.outstanding.size(); ++i) {
        OutstandingTxn entry = engine.outstanding[i];
        if (memsys.consumeCompleted(entry.txn)) {
            StreamRt *rt = entry.stream;
            int64_t elems = entry.elems;
            if (rt->input) {
                if (rt->isIndexFeed)
                    rt->indexConsumer->indexAvail += elems;
                else
                    rt->port.deliver(cycle, elems);
            } else {
                rt->drainedElems += elems;
            }
            if (rt->walker->done() && rt->firingRemaining == 0)
                settleDemand(*rt);
            ++progressEvents;
        } else {
            engine.outstanding[keep++] = entry;
        }
    }
    engine.outstanding.resize(keep);

    switch (engine.kind) {
      case adg::NodeKind::Dma:
      case adg::NodeKind::Scratchpad:
        memoryEngineIssue(engine, cycle);
        break;
      case adg::NodeKind::Recurrence:
        recurrenceTick(engine, cycle);
        break;
      case adg::NodeKind::Generate:
        generateTick(engine, cycle);
        break;
      case adg::NodeKind::Register:
        registerTick(engine, cycle);
        break;
      default:
        OG_PANIC("engine of wrong kind");
    }
}

void
TileSim::Impl::fabricTick(uint64_t cycle)
{
    if (fabricWalker.done())
        return;
    if (cycle < stats.startupCycles ||
        static_cast<double>(cycle) < nextFire) {
        return;
    }

    // All port-fed input streams must have this firing's elements, all
    // output ports space.
    for (auto &rt : streams) {
        if (rt->isIndexFeed)
            continue;
        int64_t need =
            elemsForFiring(mdfg, rt->id, rt->kind, fabricWalker);
        if (rt->input) {
            if (rt->kind == StreamKind::ConstantTaps) {
                if (rt->port.available < rt->members) {
                    ++stats.fabricStallCycles;
                    return;
                }
            } else if (rt->port.available < need) {
                ++stats.fabricStallCycles;
                return;
            }
        } else if (rt->port.available >= rt->port.capacity) {
            // Out-port FIFO full: values in the fabric pipeline live in
            // pipeline registers, so only the arrived-but-undrained
            // backlog exerts backpressure.
            ++stats.fabricStallCycles;
            return;
        }
        (void)need;
    }

    // Consume inputs, evaluate functionally, produce outputs.
    for (auto &rt : streams) {
        if (rt->isIndexFeed || !rt->input)
            continue;
        if (rt->kind == StreamKind::ConstantTaps)
            continue;  // held resident
        rt->port.available -=
            elemsForFiring(mdfg, rt->id, rt->kind, fabricWalker);
    }
    std::vector<int64_t> ivs = fabricWalker.indices();
    int count = fabricWalker.count();
    for (int lane = 0; lane < count; ++lane) {
        wl::evalIteration(spec, ivs, memory);
        ++ivs.back();
    }
    for (auto &rt : streams) {
        if (rt->input)
            continue;
        int64_t produced =
            elemsForFiring(mdfg, rt->id, rt->kind, fabricWalker);
        rt->port.deliver(cycle + pipelineDepth, produced);
    }
    stats.iterations += count;
    ++stats.firings;
    ++progressEvents;
    fabricWalker.advance();
    nextFire = static_cast<double>(cycle) + iiInterval;
}

void
TileSim::Impl::sampleTelemetry(uint64_t cycle)
{
    telemetry::Sink *sink = config.sink;
    if (cycle % sink->options().counterSampleInterval != 0)
        return;
    std::string tag = "tile" + std::to_string(tileIndex);
    sink->trace().counter(
        tag + ".firings_per_interval", tracePid, traceTid(), cycle,
        static_cast<double>(stats.firings - lastFirings));
    sink->trace().counter(
        tag + ".stall_cycles_per_interval", tracePid, traceTid(),
        cycle,
        static_cast<double>(stats.fabricStallCycles -
                            lastStallCycles));
    lastFirings = stats.firings;
    lastStallCycles = stats.fabricStallCycles;
}

void
TileSim::Impl::tick(uint64_t cycle)
{
    if (finished) {
        stats.ledger.add(telemetry::CycleCategory::Barrier);
        if (timelineRun != nullptr && cycle % timelineInterval == 0)
            emitTimelineRow(cycle);
        return;
    }
    uint64_t progress_before = progressEvents;
    for (auto &rt : streams)
        rt->port.tick(cycle);
    for (auto &[engine_id, engine] : engines)
        engineTick(engine_id, engine, cycle);
    fabricTick(cycle);
    if (config.sink != nullptr && config.sink->tracing())
        sampleTelemetry(cycle);

    if (fabricWalker.done()) {
        bool drained = true;
        for (auto &rt : streams) {
            if (!rt->input) {
                drained &= rt->port.drained();
            }
        }
        for (auto &[engine_id, engine] : engines)
            drained &= engine.outstanding.empty();
        if (drained) {
            finished = true;
            stats.finishCycle = cycle;
            ++progressEvents;
        }
    }
    if (progressEvents != progress_before)
        stats.ledger.add(telemetry::CycleCategory::Busy);
    else
        stats.ledger.add(classifyStall(cycle));
    if (timelineRun != nullptr && cycle % timelineInterval == 0)
        emitTimelineRow(cycle);
}

bool
TileSim::Impl::done() const
{
    return finished;
}

uint64_t
TileSim::Impl::fireReadyCycle() const
{
    double nf = std::max(0.0, nextFire);
    auto ceiled = static_cast<uint64_t>(nf);
    if (static_cast<double>(ceiled) < nf)
        ++ceiled;
    return std::max<uint64_t>(ceiled, stats.startupCycles);
}

bool
TileSim::Impl::fabricPortsReady() const
{
    for (const auto &rt : streams) {
        if (rt->isIndexFeed)
            continue;
        int64_t need =
            elemsForFiring(mdfg, rt->id, rt->kind, fabricWalker);
        if (rt->input) {
            if (rt->kind == StreamKind::ConstantTaps) {
                if (rt->port.available < rt->members)
                    return false;
            } else if (rt->port.available < need) {
                return false;
            }
        } else if (rt->port.available >= rt->port.capacity) {
            return false;
        }
    }
    return true;
}

bool
TileSim::Impl::anyOutstanding() const
{
    for (const auto &[engine_id, engine] : engines)
        if (!engine.outstanding.empty())
            return true;
    return false;
}

telemetry::CycleCategory
TileSim::Impl::classifyStall(uint64_t cycle) const
{
    using C = telemetry::CycleCategory;
    if (cycle < stats.startupCycles)
        return C::Startup;
    if (anyOutstanding())
        return C::DramFill;
    if (!fabricWalker.done()) {
        if (!fabricPortsReady())
            return C::PortStall;
        if (cycle < fireReadyCycle())
            return C::IiGate;
        // Defensive: gate passed with ready ports would have fired
        // (and counted Busy); only reachable through a model change.
        return C::Idle;
    }
    // Fabric done but not drained: retiring output ports / in-flight
    // stores (in-flight DRAM work was caught by anyOutstanding()).
    return C::PortStall;
}

void
TileSim::Impl::accountWindow(uint64_t from, uint64_t to)
{
    using C = telemetry::CycleCategory;
    uint64_t lo = from + 1;
    if (lo < stats.startupCycles) {
        uint64_t n = std::min(to + 1, stats.startupCycles) - lo;
        stats.ledger.add(C::Startup, n);
        lo += n;
    }
    if (lo > to)
        return;
    uint64_t n = to - lo + 1;
    if (anyOutstanding()) {
        stats.ledger.add(C::DramFill, n);
    } else if (!fabricWalker.done()) {
        if (!fabricPortsReady()) {
            stats.ledger.add(C::PortStall, n);
        } else {
            // The only cycle-dependent condition past startup is the
            // timing gate: IiGate before it, Idle (defensively) after.
            uint64_t gate = fireReadyCycle();
            uint64_t ii =
                lo < gate ? std::min(to, gate - 1) - lo + 1 : 0;
            if (ii > 0)
                stats.ledger.add(C::IiGate, ii);
            if (n > ii)
                stats.ledger.add(C::Idle, n - ii);
        }
    } else {
        stats.ledger.add(C::PortStall, n);
    }
}

void
TileSim::Impl::emitTimelineRow(uint64_t cycle)
{
    // Hand-formatted compact JSON, keys sorted — the same bytes a
    // Json::dump of the equivalent object would give, minus the map
    // allocations and snprintf format parsing (this runs on the
    // per-cycle hot path; see the bench/micro_sim
    // instrumentation-overhead guard).
    std::string &row = timelineRun->beginRow();
    row += "{\"comp\":\"tile";
    telemetry::appendDecimal(row, static_cast<uint64_t>(tileIndex));
    row += "\",\"cycle\":";
    telemetry::appendDecimal(row, cycle);
    row += ",\"dma_bytes\":";
    telemetry::appendDecimal(row, stats.dmaBytes);
    row += ",\"fabric_stall_cycles\":";
    telemetry::appendDecimal(row, stats.fabricStallCycles);
    row += ",\"firings\":";
    telemetry::appendDecimal(row, stats.firings);
    row += ",\"iterations\":";
    telemetry::appendDecimal(row, stats.iterations);
    row += ",\"ledger\":";
    stats.ledger.appendCompact(row);
    row += ",\"run\":\"";
    row += timelineRun->label();
    row += "\",\"spad_bytes\":";
    telemetry::appendDecimal(row, stats.spadBytes);
    row += '}';
    timelineRun->endRow();
}

uint64_t
TileSim::Impl::nextEventCycle(uint64_t now) const
{
    if (finished)
        return kNoEventCycle;
    // Any attached sink samples per-cycle/per-interval telemetry that
    // cannot be replayed in closed form: observation degrades to
    // per-cycle ticking (the memory system does the same).
    if (config.sink != nullptr)
        return now + 1;
    uint64_t ev = kNoEventCycle;
    auto at = [&ev, now](uint64_t cycle) {
        ev = std::min(ev, std::max(cycle, now + 1));
    };
    // Port deliveries landing in the future wake the tile.
    for (const auto &rt : streams)
        for (size_t i = 0; i < rt->port.arrivals.size(); ++i)
            at(rt->port.arrivals[i].first);
    for (const auto &[engine_id, engine] : engines) {
        switch (engine.kind) {
          case adg::NodeKind::Dma:
            // ROB full: the next issue waits on a retirement, and
            // retirements are completions — the memory system's
            // horizon covers them. (A full tile link likewise keeps
            // the memory system ticking.)
            if (static_cast<int>(engine.outstanding.size()) >=
                engine.robEntries) {
                break;
            }
            // Link full: the next issue waits on the link head
            // popping — a memory-system progress event, so its
            // horizon (and the drain-replay full-link window stop)
            // covers the wake-up. Without this the tile reports
            // now + 1 forever under bandwidth saturation and no
            // drain window can open.
            if (!memsys.canAccept(tileIndex))
                break;
            [[fallthrough]];
          case adg::NodeKind::Scratchpad:
            // A stream that is ready apart from its activation cycle
            // issues then; readiness only changes through events
            // tracked elsewhere (drains, retirements, deliveries).
            for (const StreamRt *rt : engine.streams) {
                uint64_t active = std::max(now + 1, rt->activeAt);
                bool ready = rt->input ? readReady(*rt, active)
                                       : writeReady(*rt, active);
                if (ready)
                    at(active);
            }
            break;
          case adg::NodeKind::Recurrence:
            for (const StreamRt *in : engine.streams) {
                if (in->kind != StreamKind::RecurrenceIn)
                    continue;
                const StreamRt *out = in->recurrenceOut;
                if (out != nullptr && !out->engineDone &&
                    out->port.available > 0)
                    at(std::max(now + 1, out->activeAt));
                if (!in->engineDone && in->port.space() > 0 &&
                    (in->recInitialRemaining > 0 || in->recPool > 0))
                    at(std::max(now + 1, in->activeAt));
            }
            break;
          case adg::NodeKind::Generate:
            for (const StreamRt *rt : engine.streams)
                if (!rt->engineDone && rt->port.space() > 0)
                    at(std::max(now + 1, rt->activeAt));
            break;
          case adg::NodeKind::Register:
            for (const StreamRt *rt : engine.streams)
                if (!rt->input && !rt->engineDone &&
                    rt->port.available > 0)
                    at(std::max(now + 1, rt->activeAt));
            break;
          default:
            at(now + 1);  // unknown engine: never skip over it
            break;
        }
    }
    // The fabric fires at its timing gate if the port state (frozen
    // while we skip) already admits the firing; otherwise the firing
    // waits on a port event accounted above.
    if (!fabricWalker.done() && fabricPortsReady())
        at(fireReadyCycle());
    return ev;
}

void
TileSim::Impl::fastForward(uint64_t from, uint64_t to)
{
    if (finished) {
        stats.ledger.add(telemetry::CycleCategory::Barrier,
                         to - from);
        return;
    }
    // Attribute the window before the budget/toggle updates below so
    // the classification sees the same pre-window state a per-cycle
    // run would (it never reads budgets, but keep the ordering tight).
    accountWindow(from, to);
    uint64_t k = to - from;
    for (auto &[engine_id, engine] : engines) {
        // Budget saturation: b = min(b + inc, cap) per tick collapses
        // to min(b + k*inc, cap) over k ticks (cap as in engineTick).
        engine.budget =
            std::min(engine.budget + static_cast<double>(k) *
                                         engine.bandwidthBytes,
                     engine.bandwidthBytes +
                         static_cast<double>(config.cacheLineBytes));
        // Without the one-hot bypass a lone active stream flips the
        // issue toggle every tick it is polled, issued or not.
        if (!config.oneHotBypass &&
            (engine.kind == adg::NodeKind::Dma ||
             engine.kind == adg::NodeKind::Scratchpad)) {
            int active = 0;
            for (const StreamRt *rt : engine.streams)
                active += !rt->engineDone;
            if (active == 1 && (k & 1) != 0)
                engine.issueToggle = !engine.issueToggle;
        }
    }
    // Every skipped cycle past the fabric's timing gate would have
    // counted a stall (had the ports admitted a firing, the horizon
    // would have stopped at the gate instead of skipping it).
    if (!fabricWalker.done()) {
        uint64_t first = std::max(from + 1, fireReadyCycle());
        if (first <= to)
            stats.fabricStallCycles += to - first + 1;
    }
}

uint64_t
TileSim::Impl::fingerprint() const
{
    // Excluded on purpose (legal drift in a skipped range): engine
    // byte budgets, the issue toggle, fabric stall counts, and the
    // cycle ledger (accrued in closed form over skipped windows).
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(stats.firings);
    mix(stats.iterations);
    mix(stats.spadBytes);
    mix(stats.dmaBytes);
    mix(stats.recurrenceBytes);
    mix(stats.finishCycle);
    mix(static_cast<uint64_t>(finished));
    mix(static_cast<uint64_t>(fabricWalker.done()));
    for (const auto &rt : streams) {
        mix(static_cast<uint64_t>(rt->port.available));
        mix(static_cast<uint64_t>(rt->port.pending));
        mix(rt->port.arrivals.size());
        mix(static_cast<uint64_t>(rt->firingRemaining));
        mix(static_cast<uint64_t>(rt->issuedElems));
        mix(static_cast<uint64_t>(rt->drainedElems));
        mix(static_cast<uint64_t>(rt->indexAvail));
        mix(static_cast<uint64_t>(rt->recPool));
        mix(static_cast<uint64_t>(rt->recInitialRemaining));
        mix(static_cast<uint64_t>(rt->tapsDelivered));
        mix(static_cast<uint64_t>(rt->engineDone));
    }
    for (const auto &[engine_id, engine] : engines) {
        mix(engine.outstanding.size());
        mix(engine.rrNext);
    }
    return h;
}

void
TileSim::Impl::save(Snapshot &snap) const
{
    snap.beginSection("tile" + std::to_string(tileIndex));
    snap.putU64(progressEvents);
    snap.putBool(finished);
    snap.putDouble(nextFire);
    fabricWalker.save(snap);
    snap.putU64(stats.firings);
    snap.putU64(stats.iterations);
    snap.putU64(stats.fabricStallCycles);
    snap.putU64(stats.startupCycles);
    snap.putU64(stats.spadBytes);
    snap.putU64(stats.dmaBytes);
    snap.putU64(stats.recurrenceBytes);
    snap.putU64(stats.finishCycle);
    for (uint64_t c : stats.ledger.counts)
        snap.putU64(c);
    snap.putU64(streams.size());
    for (const auto &rt : streams) {
        snap.putI64(rt->port.available);
        snap.putI64(rt->port.pending);
        snap.putU64(rt->port.arrivals.size());
        for (size_t i = 0; i < rt->port.arrivals.size(); ++i) {
            snap.putU64(rt->port.arrivals[i].first);
            snap.putI64(rt->port.arrivals[i].second);
        }
        rt->walker->save(snap);
        snap.putI64(rt->firingRemaining);
        snap.putBool(rt->tapsDelivered);
        snap.putBool(rt->engineDone);
        snap.putI64(rt->issuedElems);
        snap.putI64(rt->drainedElems);
        snap.putI64(rt->indexAvail);
        snap.putI64(rt->recInitialRemaining);
        snap.putI64(rt->recPool);
    }
    // Stream pointers serialize as indices into `streams`: both sides
    // build the same stream list in mdfg declaration order.
    auto stream_index = [this](const StreamRt *rt) -> uint64_t {
        for (size_t i = 0; i < streams.size(); ++i)
            if (streams[i].get() == rt)
                return i;
        OG_PANIC("outstanding txn references an unknown stream");
    };
    snap.putU64(engines.size());
    for (const auto &[engine_id, engine] : engines) {
        snap.putU64(static_cast<uint64_t>(engine_id));
        snap.putDouble(engine.budget);
        snap.putBool(engine.issueToggle);
        snap.putU64(engine.rrNext);
        snap.putU64(engine.outstanding.size());
        for (const OutstandingTxn &txn : engine.outstanding) {
            snap.putI64(txn.txn);
            snap.putU64(stream_index(txn.stream));
            snap.putI64(txn.elems);
        }
    }
}

void
TileSim::Impl::restore(const Snapshot &snap)
{
    snap.expectSection("tile" + std::to_string(tileIndex));
    progressEvents = snap.getU64();
    finished = snap.getBool();
    nextFire = snap.getDouble();
    fabricWalker.restore(snap);
    stats.firings = snap.getU64();
    stats.iterations = snap.getU64();
    stats.fabricStallCycles = snap.getU64();
    stats.startupCycles = snap.getU64();
    stats.spadBytes = snap.getU64();
    stats.dmaBytes = snap.getU64();
    stats.recurrenceBytes = snap.getU64();
    stats.finishCycle = snap.getU64();
    for (uint64_t &c : stats.ledger.counts)
        c = snap.getU64();
    uint64_t nstreams = snap.getU64();
    OG_ASSERT(nstreams == streams.size(),
              "snapshot stream count mismatch: ", nstreams, " vs ",
              streams.size());
    for (auto &rt : streams) {
        rt->port.available = snap.getI64();
        rt->port.pending = snap.getI64();
        rt->port.arrivals.clear();
        uint64_t narrivals = snap.getU64();
        for (uint64_t i = 0; i < narrivals; ++i) {
            uint64_t ready_at = snap.getU64();
            int64_t elems = snap.getI64();
            rt->port.arrivals.push_back({ ready_at, elems });
        }
        rt->walker->restore(snap);
        rt->firingRemaining = snap.getI64();
        rt->tapsDelivered = snap.getBool();
        rt->engineDone = snap.getBool();
        rt->issuedElems = snap.getI64();
        rt->drainedElems = snap.getI64();
        rt->indexAvail = snap.getI64();
        rt->recInitialRemaining = snap.getI64();
        rt->recPool = snap.getI64();
    }
    uint64_t nengines = snap.getU64();
    OG_ASSERT(nengines == engines.size(),
              "snapshot engine count mismatch: ", nengines, " vs ",
              engines.size());
    for (auto &[engine_id, engine] : engines) {
        uint64_t id = snap.getU64();
        OG_ASSERT(id == static_cast<uint64_t>(engine_id),
                  "snapshot engine id mismatch: ", id, " vs ",
                  engine_id);
        engine.budget = snap.getDouble();
        engine.issueToggle = snap.getBool();
        engine.rrNext = snap.getU64();
        engine.outstanding.clear();
        uint64_t ntxns = snap.getU64();
        for (uint64_t i = 0; i < ntxns; ++i) {
            OutstandingTxn txn;
            txn.txn = snap.getI64();
            uint64_t stream = snap.getU64();
            OG_ASSERT(stream < streams.size(),
                      "snapshot stream index ", stream,
                      " out of range ", streams.size());
            txn.stream = streams[stream].get();
            txn.elems = snap.getI64();
            engine.outstanding.push_back(txn);
        }
    }
}

void
TileSim::Impl::describe(std::string &out) const
{
    out += "tile" + std::to_string(tileIndex) + ": " +
           (finished ? "finished" : "running");
    out += " firings=" + std::to_string(stats.firings);
    out += " fabric=" +
           std::string(fabricWalker.done() ? "done" : "pending");
    out += " dispatcher startup=" +
           std::to_string(stats.startupCycles) + "\n";
    for (const auto &[engine_id, engine] : engines) {
        out += "  engine" + std::to_string(engine_id) + ": rob=" +
               std::to_string(engine.outstanding.size()) + "/" +
               std::to_string(engine.robEntries) + "\n";
        for (const StreamRt *rt : engine.streams) {
            out += "    stream" + std::to_string(rt->id) +
                   (rt->input ? " in" : " out") +
                   ": port=" + std::to_string(rt->port.available) +
                   "+" + std::to_string(rt->port.pending) + "/" +
                   std::to_string(rt->port.capacity) +
                   " firing_remaining=" +
                   std::to_string(rt->firingRemaining) +
                   " issued=" + std::to_string(rt->issuedElems) +
                   " drained=" + std::to_string(rt->drainedElems) +
                   (rt->engineDone ? " done" : "") + "\n";
        }
    }
}

TileSim::TileSim(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
                 const sched::Schedule &schedule, const adg::Adg &adg,
                 const AddressMap &addresses, wl::Memory &memory,
                 MemorySystem &memsys, int tile_index, int64_t outer_lo,
                 int64_t outer_hi, const SimConfig &config,
                 int trace_pid)
    : impl(std::make_unique<Impl>(spec, mdfg, schedule, adg, addresses,
                                  memory, memsys, tile_index, outer_lo,
                                  outer_hi, config, trace_pid))
{
}

TileSim::~TileSim() = default;

void
TileSim::tick(uint64_t cycle)
{
    impl->tick(cycle);
}

bool
TileSim::done() const
{
    return impl->done();
}

uint64_t
TileSim::nextEventCycle(uint64_t now) const
{
    return impl->nextEventCycle(now);
}

void
TileSim::fastForward(uint64_t from, uint64_t to)
{
    impl->fastForward(from, to);
}

uint64_t
TileSim::progressCount() const
{
    return impl->progressEvents;
}

uint64_t
TileSim::quiescenceFingerprint() const
{
    return impl->fingerprint();
}

void
TileSim::describeState(std::string &out) const
{
    impl->describe(out);
}

void
TileSim::save(Snapshot &snap) const
{
    impl->save(snap);
}

void
TileSim::restore(const Snapshot &snap)
{
    impl->restore(snap);
}

void
TileSim::attachTimeline(telemetry::TimelineRun *run,
                        uint64_t interval)
{
    OG_ASSERT(run == nullptr || interval > 0,
              "timeline sampling needs a positive interval");
    impl->timelineRun = run;
    impl->timelineInterval = interval;
}

const TileStats &
TileSim::stats() const
{
    return impl->stats;
}

} // namespace overgen::sim
