#ifndef OVERGEN_SIM_BATCH_H
#define OVERGEN_SIM_BATCH_H

/**
 * @file
 * Batched simulation: run many (design, workload) simulations
 * concurrently on a common/parallel.h pool with index-ordered,
 * thread-count-invariant results. Each simulate() call is
 * single-threaded and deterministic, touches only its own job state
 * (plus the thread-safe telemetry sink), and writes its result at its
 * own index — so runBatch(jobs, 1 thread) == runBatch(jobs, N
 * threads) == a serial loop of simulate() calls, bit for bit (see
 * DESIGN.md "SimEngine and event-horizon fast-forward").
 */

#include <vector>

#include "common/parallel.h"
#include "sim/simulate.h"

namespace overgen::sim {

/**
 * One element of a batch. The pointees must stay alive until
 * runBatch returns; distinct jobs may share them (simulation only
 * reads spec/mdfg/schedule/design).
 */
struct SimJob
{
    const wl::KernelSpec *spec = nullptr;
    const dfg::Mdfg *mdfg = nullptr;
    const sched::Schedule *schedule = nullptr;
    const adg::SysAdg *design = nullptr;
    /**
     * Simulated memory image. Null (the common case) makes runBatch
     * init() a private image and discard it after the run; tests that
     * inspect the produced arrays pass their own. A non-null image
     * must not be shared with a concurrent job.
     */
    wl::Memory *memory = nullptr;
    SimConfig config;
};

/** Execution knobs for runBatch. */
struct BatchOptions
{
    /** Worker threads: 0 = hardware concurrency, 1 = inline serial.
     * Ignored when `pool` is set. */
    int threads = 1;
    /** Run on an existing pool instead of creating one. The call must
     * not come from inside that pool's own tasks. */
    ThreadPool *pool = nullptr;
};

/** Simulate every job; results are index-ordered (result[i] is
 * jobs[i]) and identical for every thread count. */
std::vector<SimResult> runBatch(const std::vector<SimJob> &jobs,
                                const BatchOptions &options = {});

} // namespace overgen::sim

#endif // OVERGEN_SIM_BATCH_H
