#include "sim/simulate.h"

#include <memory>
#include <string>

#include "common/logging.h"
#include "sim/engine.h"
#include "telemetry/sink.h"

namespace overgen::sim {

uint64_t
configDigest(const SimConfig &config)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(config.cacheLineBytes));
    mix(static_cast<uint64_t>(config.l2HitLatency));
    mix(static_cast<uint64_t>(config.l2Ways));
    mix(static_cast<uint64_t>(config.l2MshrsPerBank));
    mix(static_cast<uint64_t>(config.dramLatency));
    mix(static_cast<uint64_t>(config.dramChannelBandwidthBytes));
    mix(static_cast<uint64_t>(config.l2BankBandwidthBytes));
    mix(static_cast<uint64_t>(config.configCyclesPerStream));
    mix(static_cast<uint64_t>(config.dispatchLatency));
    mix(static_cast<uint64_t>(config.dispatchBusStages));
    mix(static_cast<uint64_t>(config.spadLatency));
    mix(static_cast<uint64_t>(config.oneHotBypass));
    mix(static_cast<uint64_t>(config.recurrenceLatency));
    mix(config.deadlockCycles);
    return h;
}

namespace {

/** Dump the run's aggregate statistics into the counter registry
 * under "sim/<kernel>/..." (works even for deadlocked runs). */
void
dumpCounters(telemetry::Sink &sink, const std::string &kernel,
             const SimResult &result)
{
    telemetry::Registry &reg = sink.registry();
    const std::string base = "sim/" + kernel + "/";
    reg.counter(base + "runs").inc();
    reg.counter(base + "cycles").add(result.cycles);
    reg.counter(base + "iterations").add(result.totalIterations);
    const std::string mem = base + "memory/";
    reg.counter(mem + "l2_hits").add(result.memory.l2Hits);
    reg.counter(mem + "l2_misses").add(result.memory.l2Misses);
    reg.counter(mem + "dram_bytes_read")
        .add(result.memory.dramBytesRead);
    reg.counter(mem + "dram_bytes_written")
        .add(result.memory.dramBytesWritten);
    reg.counter(mem + "noc_bytes").add(result.memory.nocBytes);
    reg.counter(mem + "mshr_stall_cycles")
        .add(result.memory.mshrStallCycles);
    reg.counter(mem + "peak_outstanding_txns")
        .add(result.memory.peakOutstandingTxns);
    if (result.deadlocked)
        reg.counter(base + "deadlocks").inc();
    for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
        auto cat = static_cast<telemetry::CycleCategory>(c);
        reg.counter(mem + "cycles/" + telemetry::cycleCategoryName(cat))
            .add(result.memory.ledger[cat]);
    }
    for (size_t t = 0; t < result.tiles.size(); ++t) {
        const TileStats &ts = result.tiles[t];
        const std::string tile =
            base + "tile" + std::to_string(t) + "/";
        reg.counter(tile + "firings").add(ts.firings);
        reg.counter(tile + "iterations").add(ts.iterations);
        reg.counter(tile + "fabric_stall_cycles")
            .add(ts.fabricStallCycles);
        reg.counter(tile + "startup_cycles").add(ts.startupCycles);
        reg.counter(tile + "spad_bytes").add(ts.spadBytes);
        reg.counter(tile + "dma_bytes").add(ts.dmaBytes);
        reg.counter(tile + "recurrence_bytes")
            .add(ts.recurrenceBytes);
        for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
            auto cat = static_cast<telemetry::CycleCategory>(c);
            reg.counter(tile + "cycles/" +
                        telemetry::cycleCategoryName(cat))
                .add(ts.ledger[cat]);
        }
    }
}

/**
 * The simulated system of one simulate()/resumeFrom() call. Both
 * entry points build their components through the same function, so a
 * resumed system is structurally identical to the one that captured
 * the snapshot (streams, engines, partitions, trace identities) and
 * component restore() only has to fill in mutable state.
 */
struct SimInstance
{
    std::unique_ptr<AddressMap> addresses;
    std::unique_ptr<MemorySystem> memsys;
    std::vector<std::unique_ptr<TileSim>> sims;
    std::vector<int> tileIds;
    telemetry::Sink *sink = nullptr;
    /** This run's timeline row stream (null when not sampling). */
    telemetry::TimelineRun *timelineRun = nullptr;
    bool tracing = false;
    int pid = 0;
    std::string runName;
};

SimInstance
buildInstance(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
              const sched::Schedule &schedule,
              const adg::SysAdg &design, wl::Memory &memory,
              const SimConfig &config)
{
    OG_ASSERT(schedule.valid, "simulating an invalid schedule");
    SimInstance inst;
    inst.addresses = std::make_unique<AddressMap>(
        AddressMap::build(spec, config.cacheLineBytes));
    inst.memsys =
        std::make_unique<MemorySystem>(design.sys, config);

    // Telemetry identity for this run: one trace "process", counters
    // under "sim/<kernel>".
    inst.sink = config.sink;
    inst.tracing = inst.sink != nullptr && inst.sink->tracing();
    inst.runName = "simulate:" + spec.name;
    if (inst.sink != nullptr) {
        inst.pid = inst.sink->nextRunId();
        inst.memsys->attachTelemetry(inst.pid,
                                     "sim/" + spec.name + "/memory");
    }
    if (inst.tracing) {
        telemetry::TraceEmitter &trace = inst.sink->trace();
        trace.processName(inst.pid, inst.runName);
        trace.threadName(inst.pid, 0, "memory-system");
        trace.begin(inst.runName, "sim", inst.pid, 0, 0);
    }

    // Partition the outermost loop across tiles.
    int tiles = std::max(1, design.sys.numTiles);
    int64_t outer = std::max<int64_t>(spec.loops[0].tripBase, 1);
    for (int t = 0; t < tiles; ++t) {
        int64_t lo = outer * t / tiles;
        int64_t hi = outer * (t + 1) / tiles;
        if (lo >= hi)
            continue;
        inst.sims.push_back(std::make_unique<TileSim>(
            spec, mdfg, schedule, design.adg, *inst.addresses, memory,
            *inst.memsys, t, lo, hi, config, inst.pid));
        inst.tileIds.push_back(t);
        if (inst.tracing) {
            std::string name = "tile" + std::to_string(t);
            inst.sink->trace().threadName(inst.pid, t + 1, name);
            inst.sink->trace().begin(name, "tile", inst.pid, t + 1,
                                     0);
        }
    }

    // Interval time-series: one TimelineRun per simulate() call, fed
    // by the memory system and every tile. Rows within a run are
    // appended by the single thread driving this engine; batch
    // drivers give each job a unique runLabel so lines() serializes
    // deterministically for every --sim-threads value.
    if (inst.sink != nullptr && inst.sink->timelineEnabled()) {
        const std::string label =
            config.runLabel.empty() ? spec.name : config.runLabel;
        telemetry::TimelineRun *run =
            inst.sink->timeline().beginRun(label);
        inst.timelineRun = run;
        uint64_t interval = inst.sink->options().statsInterval;
        inst.memsys->attachTimeline(run, interval);
        for (auto &sim : inst.sims)
            sim->attachTimeline(run, interval);
    }
    return inst;
}

/**
 * Serialize the whole simulated system at a checkpoint site: the
 * identity header, the engine's loop state, the functional memory
 * contents (the fabric evaluates real iterations — array values are
 * as much simulation state as any queue), then every component in
 * engine tick order.
 */
void
writeCheckpoint(Snapshot &snap, const wl::KernelSpec &spec,
                const SimConfig &config, const SimInstance &inst,
                const wl::Memory &memory, const EngineCheckpoint &ck)
{
    snap.beginSection("meta");
    snap.putString(spec.name);
    snap.putU64(configDigest(config));
    snap.putU64(inst.sims.size());
    for (int t : inst.tileIds)
        snap.putI64(t);
    ck.save(snap);
    snap.beginSection("arrays");
    snap.putU64(memory.all().size());
    for (const auto &[name, values] : memory.all()) {
        snap.putString(name);
        snap.putU64(values.size());
        for (double v : values)
            snap.putDouble(v);
    }
    inst.memsys->save(snap);
    for (const auto &sim : inst.sims)
        sim->save(snap);
}

/**
 * Drive @p inst to completion (optionally resuming from @p
 * resume_from) and assemble the SimResult. Shared tail of simulate()
 * and resumeFrom().
 */
SimResult
runInstance(SimInstance &inst, const wl::KernelSpec &spec,
            const dfg::Mdfg &mdfg, wl::Memory &memory,
            const SimConfig &config,
            const EngineCheckpoint *resume_from)
{
    // The engine ticks the memory system first, then the tiles, in
    // the order the historical loop did.
    SimEngine engine(config);
    engine.add(inst.memsys.get());
    for (auto &sim : inst.sims)
        engine.add(sim.get());
    if (config.checkpointEvery > 0 &&
        config.checkpointSink != nullptr) {
        engine.setCheckpointHook(
            config.checkpointEvery,
            [&](const EngineCheckpoint &ck) {
                Snapshot snap;
                writeCheckpoint(snap, spec, config, inst, memory, ck);
                snap.seal();
                config.checkpointSink->accept(ck.cycle,
                                              std::move(snap));
            });
    }
    std::vector<bool> traceEnded(inst.sims.size(), false);
    auto all_done = [&]() {
        bool all = true;
        for (size_t s = 0; s < inst.sims.size(); ++s) {
            bool done = inst.sims[s]->done();
            if (inst.tracing && done && !traceEnded[s]) {
                traceEnded[s] = true;
                inst.sink->trace().end(
                    "tile" + std::to_string(inst.tileIds[s]), "tile",
                    inst.pid, inst.tileIds[s] + 1,
                    inst.sims[s]->stats().finishCycle);
            }
            all &= done;
        }
        return all;
    };
    EngineOutcome outcome = resume_from != nullptr
                                ? engine.resume(all_done, *resume_from)
                                : engine.run(all_done);
    uint64_t cycle = outcome.cycles;

    SimResult result;
    result.completed = outcome.completed;
    result.deadlocked = outcome.deadlocked;
    result.diagnostic = outcome.diagnostic;
    result.cycles = cycle;
    result.tickedCycles = outcome.tickedCycles;
    result.skippedCycles = outcome.skippedCycles;
    result.drainedCycles = outcome.drainedCycles;
    result.drainJumps = outcome.drainJumps;
    result.memory = inst.memsys->stats();
    double insts = 0.0;
    for (auto &tile : inst.sims) {
        result.tiles.push_back(tile->stats());
        result.totalIterations += tile->stats().iterations;
        insts += static_cast<double>(tile->stats().firings) *
                 mdfg.instructionBandwidth() /
                 std::max(1, mdfg.vectorization()) *
                 mdfg.unrollFactor;
    }
    result.ipc = cycle > 0 ? insts / static_cast<double>(cycle) : 0.0;
    if (inst.timelineRun != nullptr)
        result.timelineRows = inst.timelineRun->bytes();

    if (inst.tracing) {
        // Deadlocked tiles still need their end events matched.
        for (size_t s = 0; s < inst.sims.size(); ++s) {
            if (!traceEnded[s]) {
                inst.sink->trace().end(
                    "tile" + std::to_string(inst.tileIds[s]), "tile",
                    inst.pid, inst.tileIds[s] + 1, cycle);
            }
        }
        inst.sink->trace().end(inst.runName, "sim", inst.pid, 0,
                               cycle);
    }
    if (inst.sink != nullptr)
        dumpCounters(*inst.sink, spec.name, result);
    return result;
}

} // namespace

SimResult
simulate(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
         const sched::Schedule &schedule, const adg::SysAdg &design,
         wl::Memory &memory, const SimConfig &config)
{
    SimInstance inst =
        buildInstance(spec, mdfg, schedule, design, memory, config);
    return runInstance(inst, spec, mdfg, memory, config, nullptr);
}

SimResult
resumeFrom(const Snapshot &snap, const wl::KernelSpec &spec,
           const dfg::Mdfg &mdfg, const sched::Schedule &schedule,
           const adg::SysAdg &design, wl::Memory &memory,
           const SimConfig &config)
{
    OG_ASSERT(snap.verify(),
              "snapshot failed its digest check (truncated, "
              "corrupted, or never sealed)");
    SimInstance inst =
        buildInstance(spec, mdfg, schedule, design, memory, config);

    snap.rewind();
    snap.expectSection("meta");
    std::string kernel = snap.getString();
    OG_ASSERT(kernel == spec.name, "snapshot is of kernel '", kernel,
              "', resuming '", spec.name, "'");
    uint64_t cfg = snap.getU64();
    OG_ASSERT(cfg == configDigest(config),
              "snapshot was captured under a different simulator "
              "configuration");
    uint64_t nsims = snap.getU64();
    OG_ASSERT(nsims == inst.sims.size(),
              "snapshot tile count mismatch: ", nsims, " vs ",
              inst.sims.size());
    for (int t : inst.tileIds) {
        int64_t saved = snap.getI64();
        OG_ASSERT(saved == t, "snapshot tile id mismatch: ", saved,
                  " vs ", t);
    }
    EngineCheckpoint ck;
    ck.restore(snap);
    snap.expectSection("arrays");
    uint64_t narrays = snap.getU64();
    OG_ASSERT(narrays == memory.all().size(),
              "snapshot array count mismatch: ", narrays, " vs ",
              memory.all().size(),
              " (memory must be init()ed for the kernel)");
    for (uint64_t i = 0; i < narrays; ++i) {
        std::string name = snap.getString();
        std::vector<double> &values = memory.array(name);
        uint64_t len = snap.getU64();
        OG_ASSERT(len == values.size(), "snapshot array '", name,
                  "' length mismatch: ", len, " vs ", values.size());
        for (double &v : values)
            v = snap.getDouble();
    }
    inst.memsys->restore(snap);
    for (auto &sim : inst.sims)
        sim->restore(snap);
    return runInstance(inst, spec, mdfg, memory, config, &ck);
}

telemetry::PhaseProfile
analyzeRunPhases(const SimResult &result, std::string_view prefix_rows)
{
    std::vector<telemetry::PhaseSample> samples;
    if (!prefix_rows.empty() || !result.timelineRows.empty()) {
        std::string rows(prefix_rows);
        rows += result.timelineRows;
        samples = telemetry::phaseSamplesFromRows(rows);
    }
    telemetry::CycleLedger tiles;
    uint64_t iterations = 0;
    uint64_t firings = 0;
    for (const TileStats &ts : result.tiles) {
        for (int c = 0; c < telemetry::kNumCycleCategories; ++c)
            tiles.counts[c] += ts.ledger.counts[c];
        iterations += ts.iterations;
        firings += ts.firings;
    }
    telemetry::appendTerminalSample(samples, result.cycles, tiles,
                                    result.memory.ledger, iterations,
                                    firings);
    // Scale firing deltas to the committed-instruction convention of
    // SimResult::ipc: insts = ipc * cycles, spread over the firings.
    double insts_per_firing =
        firings > 0 ? result.ipc * static_cast<double>(result.cycles) /
                          static_cast<double>(firings)
                    : 0.0;
    return telemetry::analyzePhases(samples, insts_per_firing);
}

uint64_t
reconfigurationCycles(const sched::Schedule &schedule,
                      const adg::Adg &adg)
{
    // Configuration state: per mapped node ~8 bytes, per routed hop
    // ~2 bytes, loaded through the D-cache at 8 bytes/cycle with a
    // small command overhead.
    uint64_t bytes = 0;
    bytes += schedule.placement.size() * 8;
    for (const auto &[edge, route] : schedule.routes)
        bytes += route.size() * 2;
    (void)adg;
    return 32 + bytes / 8;
}

} // namespace overgen::sim
