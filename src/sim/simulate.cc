#include "sim/simulate.h"

#include <memory>

#include "common/logging.h"

namespace overgen::sim {

SimResult
simulate(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
         const sched::Schedule &schedule, const adg::SysAdg &design,
         wl::Memory &memory, const SimConfig &config)
{
    OG_ASSERT(schedule.valid, "simulating an invalid schedule");
    AddressMap addresses =
        AddressMap::build(spec, config.cacheLineBytes);
    MemorySystem memsys(design.sys, config);

    // Partition the outermost loop across tiles.
    int tiles = std::max(1, design.sys.numTiles);
    int64_t outer = std::max<int64_t>(spec.loops[0].tripBase, 1);
    std::vector<std::unique_ptr<TileSim>> sims;
    for (int t = 0; t < tiles; ++t) {
        int64_t lo = outer * t / tiles;
        int64_t hi = outer * (t + 1) / tiles;
        if (lo >= hi)
            continue;
        sims.push_back(std::make_unique<TileSim>(
            spec, mdfg, schedule, design.adg, addresses, memory,
            memsys, t, lo, hi, config));
    }

    SimResult result;
    uint64_t cycle = 0;
    while (cycle < config.maxCycles) {
        ++cycle;
        memsys.tick();
        bool all_done = true;
        for (auto &tile : sims) {
            tile->tick(cycle);
            all_done &= tile->done();
        }
        if (all_done)
            break;
    }

    result.completed = cycle < config.maxCycles;
    result.cycles = cycle;
    result.memory = memsys.stats();
    double insts = 0.0;
    for (auto &tile : sims) {
        result.tiles.push_back(tile->stats());
        result.totalIterations += tile->stats().iterations;
        insts += static_cast<double>(tile->stats().firings) *
                 mdfg.instructionBandwidth() /
                 std::max(1, mdfg.vectorization()) *
                 mdfg.unrollFactor;
    }
    result.ipc = cycle > 0 ? insts / static_cast<double>(cycle) : 0.0;
    return result;
}

uint64_t
reconfigurationCycles(const sched::Schedule &schedule,
                      const adg::Adg &adg)
{
    // Configuration state: per mapped node ~8 bytes, per routed hop
    // ~2 bytes, loaded through the D-cache at 8 bytes/cycle with a
    // small command overhead.
    uint64_t bytes = 0;
    bytes += schedule.placement.size() * 8;
    for (const auto &[edge, route] : schedule.routes)
        bytes += route.size() * 2;
    (void)adg;
    return 32 + bytes / 8;
}

} // namespace overgen::sim
