#include "sim/simulate.h"

#include <memory>
#include <string>

#include "common/logging.h"
#include "sim/engine.h"
#include "telemetry/sink.h"

namespace overgen::sim {

namespace {

/** Dump the run's aggregate statistics into the counter registry
 * under "sim/<kernel>/..." (works even for deadlocked runs). */
void
dumpCounters(telemetry::Sink &sink, const std::string &kernel,
             const SimResult &result)
{
    telemetry::Registry &reg = sink.registry();
    const std::string base = "sim/" + kernel + "/";
    reg.counter(base + "runs").inc();
    reg.counter(base + "cycles").add(result.cycles);
    reg.counter(base + "iterations").add(result.totalIterations);
    const std::string mem = base + "memory/";
    reg.counter(mem + "l2_hits").add(result.memory.l2Hits);
    reg.counter(mem + "l2_misses").add(result.memory.l2Misses);
    reg.counter(mem + "dram_bytes_read")
        .add(result.memory.dramBytesRead);
    reg.counter(mem + "dram_bytes_written")
        .add(result.memory.dramBytesWritten);
    reg.counter(mem + "noc_bytes").add(result.memory.nocBytes);
    reg.counter(mem + "mshr_stall_cycles")
        .add(result.memory.mshrStallCycles);
    reg.counter(mem + "peak_outstanding_txns")
        .add(result.memory.peakOutstandingTxns);
    if (result.deadlocked)
        reg.counter(base + "deadlocks").inc();
    for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
        auto cat = static_cast<telemetry::CycleCategory>(c);
        reg.counter(mem + "cycles/" + telemetry::cycleCategoryName(cat))
            .add(result.memory.ledger[cat]);
    }
    for (size_t t = 0; t < result.tiles.size(); ++t) {
        const TileStats &ts = result.tiles[t];
        const std::string tile =
            base + "tile" + std::to_string(t) + "/";
        reg.counter(tile + "firings").add(ts.firings);
        reg.counter(tile + "iterations").add(ts.iterations);
        reg.counter(tile + "fabric_stall_cycles")
            .add(ts.fabricStallCycles);
        reg.counter(tile + "startup_cycles").add(ts.startupCycles);
        reg.counter(tile + "spad_bytes").add(ts.spadBytes);
        reg.counter(tile + "dma_bytes").add(ts.dmaBytes);
        reg.counter(tile + "recurrence_bytes")
            .add(ts.recurrenceBytes);
        for (int c = 0; c < telemetry::kNumCycleCategories; ++c) {
            auto cat = static_cast<telemetry::CycleCategory>(c);
            reg.counter(tile + "cycles/" +
                        telemetry::cycleCategoryName(cat))
                .add(ts.ledger[cat]);
        }
    }
}

} // namespace

SimResult
simulate(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
         const sched::Schedule &schedule, const adg::SysAdg &design,
         wl::Memory &memory, const SimConfig &config)
{
    OG_ASSERT(schedule.valid, "simulating an invalid schedule");
    AddressMap addresses =
        AddressMap::build(spec, config.cacheLineBytes);
    MemorySystem memsys(design.sys, config);

    // Telemetry identity for this run: one trace "process", counters
    // under "sim/<kernel>".
    telemetry::Sink *sink = config.sink;
    bool tracing = sink != nullptr && sink->tracing();
    int pid = 0;
    const std::string run_name = "simulate:" + spec.name;
    if (sink != nullptr) {
        pid = sink->nextRunId();
        memsys.attachTelemetry(pid, "sim/" + spec.name + "/memory");
    }
    if (tracing) {
        telemetry::TraceEmitter &trace = sink->trace();
        trace.processName(pid, run_name);
        trace.threadName(pid, 0, "memory-system");
        trace.begin(run_name, "sim", pid, 0, 0);
    }

    // Partition the outermost loop across tiles.
    int tiles = std::max(1, design.sys.numTiles);
    int64_t outer = std::max<int64_t>(spec.loops[0].tripBase, 1);
    std::vector<std::unique_ptr<TileSim>> sims;
    std::vector<int> tileIds;
    for (int t = 0; t < tiles; ++t) {
        int64_t lo = outer * t / tiles;
        int64_t hi = outer * (t + 1) / tiles;
        if (lo >= hi)
            continue;
        sims.push_back(std::make_unique<TileSim>(
            spec, mdfg, schedule, design.adg, addresses, memory,
            memsys, t, lo, hi, config, pid));
        tileIds.push_back(t);
        if (tracing) {
            std::string name = "tile" + std::to_string(t);
            sink->trace().threadName(pid, t + 1, name);
            sink->trace().begin(name, "tile", pid, t + 1, 0);
        }
    }

    // Interval time-series: one TimelineRun per simulate() call, fed
    // by the memory system and every tile. Rows within a run are
    // appended by the single thread driving this engine; batch
    // drivers give each job a unique runLabel so lines() serializes
    // deterministically for every --sim-threads value.
    if (sink != nullptr && sink->timelineEnabled()) {
        const std::string label =
            config.runLabel.empty() ? spec.name : config.runLabel;
        telemetry::TimelineRun *run =
            sink->timeline().beginRun(label);
        uint64_t interval = sink->options().statsInterval;
        memsys.attachTimeline(run, interval);
        for (auto &sim : sims)
            sim->attachTimeline(run, interval);
    }

    // The engine ticks the memory system first, then the tiles, in
    // the order the historical loop did.
    SimEngine engine(config);
    engine.add(&memsys);
    for (auto &sim : sims)
        engine.add(sim.get());
    std::vector<bool> traceEnded(sims.size(), false);
    auto all_done = [&]() {
        bool all = true;
        for (size_t s = 0; s < sims.size(); ++s) {
            bool done = sims[s]->done();
            if (tracing && done && !traceEnded[s]) {
                traceEnded[s] = true;
                sink->trace().end(
                    "tile" + std::to_string(tileIds[s]), "tile", pid,
                    tileIds[s] + 1, sims[s]->stats().finishCycle);
            }
            all &= done;
        }
        return all;
    };
    EngineOutcome outcome = engine.run(all_done);
    uint64_t cycle = outcome.cycles;

    SimResult result;
    result.completed = outcome.completed;
    result.deadlocked = outcome.deadlocked;
    result.diagnostic = outcome.diagnostic;
    result.cycles = cycle;
    result.tickedCycles = outcome.tickedCycles;
    result.skippedCycles = outcome.skippedCycles;
    result.drainedCycles = outcome.drainedCycles;
    result.drainJumps = outcome.drainJumps;
    result.memory = memsys.stats();
    double insts = 0.0;
    for (auto &tile : sims) {
        result.tiles.push_back(tile->stats());
        result.totalIterations += tile->stats().iterations;
        insts += static_cast<double>(tile->stats().firings) *
                 mdfg.instructionBandwidth() /
                 std::max(1, mdfg.vectorization()) *
                 mdfg.unrollFactor;
    }
    result.ipc = cycle > 0 ? insts / static_cast<double>(cycle) : 0.0;

    if (tracing) {
        // Deadlocked tiles still need their end events matched.
        for (size_t s = 0; s < sims.size(); ++s) {
            if (!traceEnded[s]) {
                sink->trace().end("tile" + std::to_string(tileIds[s]),
                                  "tile", pid, tileIds[s] + 1, cycle);
            }
        }
        sink->trace().end(run_name, "sim", pid, 0, cycle);
    }
    if (sink != nullptr)
        dumpCounters(*sink, spec.name, result);
    return result;
}

uint64_t
reconfigurationCycles(const sched::Schedule &schedule,
                      const adg::Adg &adg)
{
    // Configuration state: per mapped node ~8 bytes, per routed hop
    // ~2 bytes, loaded through the D-cache at 8 bytes/cycle with a
    // small command overhead.
    uint64_t bytes = 0;
    bytes += schedule.placement.size() * 8;
    for (const auto &[edge, route] : schedule.routes)
        bytes += route.size() * 2;
    (void)adg;
    return 32 + bytes / 8;
}

} // namespace overgen::sim
