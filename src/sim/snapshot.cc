#include "sim/snapshot.h"

#include <bit>
#include <cstring>

#include "common/logging.h"

namespace overgen::sim {

namespace {

/** Header of an encode() image: magic, version, digest pair. */
constexpr char kMagic[8] = { 'O', 'G', 'S', 'N', 'A', 'P', '0', '1' };

uint64_t
fnv1a(const std::vector<uint8_t> &bytes, uint64_t salt)
{
    uint64_t h = 1469598103934665603ull ^ salt;
    for (uint8_t b : bytes) {
        h ^= b;
        h *= 1099511628211ull;
    }
    return h;
}

/** Independent salts for the two digest passes (arbitrary odd
 * constants; what matters is that they differ). */
constexpr uint64_t kSaltLo = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kSaltHi = 0xc2b2ae3d27d4eb4full;

void
appendU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t
readU64(const std::vector<uint8_t> &in, size_t pos)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(in[pos + i]) << (8 * i);
    return v;
}

} // namespace

void
Snapshot::putRaw(uint8_t tag, uint64_t v)
{
    OG_ASSERT(!sealed, "write to a sealed snapshot");
    payload.push_back(tag);
    appendU64(payload, v);
}

uint64_t
Snapshot::getRaw(uint8_t tag) const
{
    OG_ASSERT(rpos + 9 <= payload.size(),
              "snapshot read past the end at offset ", rpos);
    OG_ASSERT(payload[rpos] == tag, "snapshot type mismatch at offset ",
              rpos, ": expected tag '", static_cast<char>(tag),
              "', found '", static_cast<char>(payload[rpos]), "'");
    uint64_t v = readU64(payload, rpos + 1);
    rpos += 9;
    return v;
}

void
Snapshot::putDouble(double v)
{
    putRaw(kTagDouble, std::bit_cast<uint64_t>(v));
}

double
Snapshot::getDouble() const
{
    return std::bit_cast<double>(getRaw(kTagDouble));
}

void
Snapshot::putBytes(uint8_t tag, const std::string &s)
{
    OG_ASSERT(!sealed, "write to a sealed snapshot");
    payload.push_back(tag);
    appendU64(payload, s.size());
    payload.insert(payload.end(), s.begin(), s.end());
}

std::string
Snapshot::getBytes(uint8_t tag) const
{
    OG_ASSERT(rpos + 9 <= payload.size(),
              "snapshot read past the end at offset ", rpos);
    OG_ASSERT(payload[rpos] == tag, "snapshot type mismatch at offset ",
              rpos, ": expected tag '", static_cast<char>(tag),
              "', found '", static_cast<char>(payload[rpos]), "'");
    uint64_t len = readU64(payload, rpos + 1);
    OG_ASSERT(rpos + 9 + len <= payload.size(),
              "snapshot string of ", len, " bytes overruns the payload");
    std::string s(payload.begin() + static_cast<ptrdiff_t>(rpos + 9),
                  payload.begin() +
                      static_cast<ptrdiff_t>(rpos + 9 + len));
    rpos += 9 + len;
    return s;
}

void
Snapshot::putString(const std::string &s)
{
    putBytes(kTagString, s);
}

std::string
Snapshot::getString() const
{
    return getBytes(kTagString);
}

void
Snapshot::beginSection(const std::string &name)
{
    putBytes(kTagSection, name);
}

void
Snapshot::expectSection(const std::string &name) const
{
    std::string found = getBytes(kTagSection);
    OG_ASSERT(found == name, "snapshot section mismatch: expected '",
              name, "', found '", found, "'");
}

void
Snapshot::seal()
{
    OG_ASSERT(!sealed, "snapshot sealed twice");
    digestLo = fnv1a(payload, kSaltLo);
    digestHi = fnv1a(payload, kSaltHi);
    sealed = true;
    rpos = 0;
}

bool
Snapshot::verify() const
{
    return sealed && digestLo == fnv1a(payload, kSaltLo) &&
           digestHi == fnv1a(payload, kSaltHi);
}

uint64_t
Snapshot::digest() const
{
    OG_ASSERT(sealed, "digest of an unsealed snapshot");
    return digestLo ^ (digestHi * 1099511628211ull);
}

std::vector<uint8_t>
Snapshot::encode() const
{
    OG_ASSERT(sealed, "encode of an unsealed snapshot");
    std::vector<uint8_t> out;
    out.reserve(sizeof(kMagic) + 24 + payload.size());
    for (char c : kMagic)
        out.push_back(static_cast<uint8_t>(c));
    appendU64(out, digestLo);
    appendU64(out, digestHi);
    appendU64(out, payload.size());
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

bool
Snapshot::decode(const std::vector<uint8_t> &bytes, Snapshot &out)
{
    if (bytes.size() < sizeof(kMagic) + 24)
        return false;
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return false;
    uint64_t lo = readU64(bytes, sizeof(kMagic));
    uint64_t hi = readU64(bytes, sizeof(kMagic) + 8);
    uint64_t len = readU64(bytes, sizeof(kMagic) + 16);
    if (bytes.size() != sizeof(kMagic) + 24 + len)
        return false;
    Snapshot snap;
    snap.payload.assign(bytes.begin() +
                            static_cast<ptrdiff_t>(sizeof(kMagic) + 24),
                        bytes.end());
    snap.digestLo = lo;
    snap.digestHi = hi;
    snap.sealed = true;
    if (!snap.verify())
        return false;
    out = std::move(snap);
    return true;
}

} // namespace overgen::sim
