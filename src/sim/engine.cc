#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/snapshot.h"

namespace overgen::sim {

void
EngineCheckpoint::save(Snapshot &snap) const
{
    snap.beginSection("engine");
    snap.putU64(cycle);
    snap.putU64(lastProgressCycle);
    snap.putBool(stalled);
    snap.putU64(tickedCycles);
    snap.putU64(skippedCycles);
    snap.putU64(horizonJumps);
    snap.putU64(drainedCycles);
    snap.putU64(drainJumps);
}

void
EngineCheckpoint::restore(const Snapshot &snap)
{
    snap.expectSection("engine");
    cycle = snap.getU64();
    lastProgressCycle = snap.getU64();
    stalled = snap.getBool();
    tickedCycles = snap.getU64();
    skippedCycles = snap.getU64();
    horizonJumps = snap.getU64();
    drainedCycles = snap.getU64();
    drainJumps = snap.getU64();
}

void
SimEngine::add(ClockedComponent *component)
{
    OG_ASSERT(component != nullptr, "null ClockedComponent");
    components.push_back(component);
}

uint64_t
SimEngine::horizon(uint64_t now) const
{
    uint64_t h = kNoEventCycle;
    for (const ClockedComponent *c : components)
        h = std::min(h, c->nextEventCycle(now));
    return h;
}

uint64_t
SimEngine::totalProgress() const
{
    uint64_t total = 0;
    for (const ClockedComponent *c : components)
        total += c->progressCount();
    return total;
}

std::string
SimEngine::dumpComponents() const
{
    std::string out;
    for (const ClockedComponent *c : components)
        c->describeState(out);
    return out;
}

void
SimEngine::verifyQuiescent(uint64_t from, uint64_t to,
                           const std::function<bool()> &all_done)
{
    std::vector<uint64_t> prints(components.size());
    for (size_t i = 0; i < components.size(); ++i)
        prints[i] = components[i]->quiescenceFingerprint();
    uint64_t progress = totalProgress();
    for (uint64_t cycle = from + 1; cycle <= to; ++cycle) {
        for (ClockedComponent *c : components)
            c->tick(cycle);
        OG_ASSERT(!all_done(),
                  "fast-forward would have skipped the completion "
                  "at cycle ",
                  cycle, " (horizon ", to + 1, ")");
    }
    OG_ASSERT(totalProgress() == progress,
              "fast-forward would have skipped progress in cycles (",
              from, ", ", to, "]");
    for (size_t i = 0; i < components.size(); ++i) {
        OG_ASSERT(components[i]->quiescenceFingerprint() == prints[i],
                  "component ", i,
                  " mutated frozen state in skipped cycles (", from,
                  ", ", to, "]");
    }
}

void
SimEngine::verifyDrainWindow(uint64_t from, uint64_t to,
                             size_t drainer,
                             const std::function<bool()> &all_done)
{
    // The drainer checked its closed-form replay against a per-cycle
    // ghost inside drainReplay(); here the other components execute
    // the window for real (their ticks are the authoritative
    // accounting in check mode) while we assert they stay quiescent.
    // Ticking them against the drainer's end-of-window state is valid
    // because the coupling surface is invariant across the window by
    // construction of the window stops: no completion becomes
    // pollable and no full queue reopens before `to`.
    std::vector<uint64_t> prints(components.size());
    uint64_t progress = 0;
    for (size_t i = 0; i < components.size(); ++i) {
        if (i == drainer)
            continue;
        prints[i] = components[i]->quiescenceFingerprint();
        progress += components[i]->progressCount();
    }
    for (uint64_t cycle = from + 1; cycle <= to; ++cycle) {
        for (size_t i = 0; i < components.size(); ++i)
            if (i != drainer)
                components[i]->tick(cycle);
        OG_ASSERT(!all_done(),
                  "drain window would have skipped the completion "
                  "at cycle ",
                  cycle, " (window (", from, ", ", to, "])");
    }
    uint64_t progress_after = 0;
    for (size_t i = 0; i < components.size(); ++i)
        if (i != drainer)
            progress_after += components[i]->progressCount();
    OG_ASSERT(progress_after == progress,
              "drain window would have skipped non-drainer progress "
              "in cycles (",
              from, ", ", to, "]");
    for (size_t i = 0; i < components.size(); ++i) {
        if (i == drainer)
            continue;
        OG_ASSERT(components[i]->quiescenceFingerprint() == prints[i],
                  "component ", i,
                  " mutated frozen state in drain window (", from,
                  ", ", to, "]");
    }
}

EngineOutcome
SimEngine::run(const std::function<bool()> &all_done)
{
    return runLoop(all_done, nullptr);
}

EngineOutcome
SimEngine::resume(const std::function<bool()> &all_done,
                  const EngineCheckpoint &from)
{
    return runLoop(all_done, &from);
}

void
SimEngine::setCheckpointHook(
    uint64_t every, std::function<void(const EngineCheckpoint &)> hook)
{
    checkpointEvery = every;
    checkpointHook = std::move(hook);
}

EngineOutcome
SimEngine::runLoop(const std::function<bool()> &all_done,
                   const EngineCheckpoint *from)
{
    OG_ASSERT(!components.empty(), "SimEngine has no components");
    EngineOutcome out;
    uint64_t cycle = 0;
    // Per-component progress snapshots: the drain fast path needs to
    // know *which* components progressed, not just whether any did.
    std::vector<uint64_t> prev(components.size());
    size_t drainer = components.size();
    uint64_t progress = 0;
    for (size_t i = 0; i < components.size(); ++i) {
        prev[i] = components[i]->progressCount();
        progress += prev[i];
        if (drainer == components.size() &&
            components[i]->supportsDrainReplay()) {
            drainer = i;
        }
    }
    uint64_t last_progress_cycle = 0;
    // Horizons are only worth computing once a tick goes by without
    // progress: an active system ticks at full speed with zero
    // overhead, and a stall window begins with exactly one
    // unproductive tick before the jump.
    bool stalled = false;
    if (from != nullptr) {
        // Re-enter the loop exactly where the checkpoint left it: the
        // components were restore()d to start-of-cycle state, and the
        // loop's own variables (watchdog bookkeeping, the stall flag,
        // the outcome counters) come from the checkpoint, so every
        // branch below decides as the uninterrupted run did.
        cycle = from->cycle;
        last_progress_cycle = from->lastProgressCycle;
        stalled = from->stalled;
        out.tickedCycles = from->tickedCycles;
        out.skippedCycles = from->skippedCycles;
        out.horizonJumps = from->horizonJumps;
        out.drainedCycles = from->drainedCycles;
        out.drainJumps = from->drainJumps;
    }
    bool done = false;
    const uint64_t deadlock = config.deadlockCycles;
    // First checkpoint one cadence past the entry cycle: a resumed
    // run keeps checkpointing on its own cadence without re-emitting
    // the state it was restored from.
    uint64_t next_ckpt = kNoEventCycle;
    if (checkpointEvery > 0 && checkpointHook)
        next_ckpt = cycle + checkpointEvery;
    while (cycle < config.maxCycles) {
        if (cycle >= next_ckpt) {
            // Loop-top state is start-of-cycle consistent for every
            // component: the previous iteration's tick (or verified
            // jump) fully completed, and no skipped range is open.
            EngineCheckpoint ck;
            ck.cycle = cycle;
            ck.lastProgressCycle = last_progress_cycle;
            ck.stalled = stalled;
            ck.tickedCycles = out.tickedCycles;
            ck.skippedCycles = out.skippedCycles;
            ck.horizonJumps = out.horizonJumps;
            ck.drainedCycles = out.drainedCycles;
            ck.drainJumps = out.drainJumps;
            checkpointHook(ck);
            next_ckpt = cycle + checkpointEvery;
        }
        if (stalled && !config.noFastForward) {
            uint64_t stop = config.maxCycles;
            if (deadlock > 0)
                stop = std::min(stop, last_progress_cycle + deadlock);
            uint64_t target = std::min(horizon(cycle), stop);
            if (target > cycle + 1) {
                uint64_t skipped = target - 1 - cycle;
                if (config.checkFastForward) {
                    verifyQuiescent(cycle, target - 1, all_done);
                    out.tickedCycles += skipped;
                } else {
                    for (ClockedComponent *c : components)
                        c->fastForward(cycle, target - 1);
                    out.skippedCycles += skipped;
                }
                ++out.horizonJumps;
                cycle = target - 1;
            }
        }
        ++cycle;
        for (ClockedComponent *c : components)
            c->tick(cycle);
        ++out.tickedCycles;
        if (all_done()) {
            done = true;
            break;
        }
        uint64_t p = 0;
        bool drain_only = drainer < components.size();
        for (size_t i = 0; i < components.size(); ++i) {
            uint64_t pc = components[i]->progressCount();
            if (pc != prev[i] && i != drainer)
                drain_only = false;
            prev[i] = pc;
            p += pc;
        }
        if (p != progress) {
            progress = p;
            last_progress_cycle = cycle;
            stalled = false;
            // Drain fast path: only the drain-capable component moved
            // this tick. Ask the others how long they stay frozen and
            // let the drainer replay its internal drain events in
            // closed form across that window — the horizon never
            // opens here (the drainer progresses nearly every cycle),
            // but the *external* horizon does.
            if (drain_only && !config.noFastForward &&
                cycle < config.maxCycles) {
                uint64_t limit = config.maxCycles;
                for (size_t i = 0; i < components.size(); ++i) {
                    if (i == drainer)
                        continue;
                    uint64_t n = components[i]->nextEventCycle(cycle);
                    if (n != kNoEventCycle)
                        limit = std::min(limit, n - 1);
                }
                if (limit > cycle) {
                    uint64_t lp = last_progress_cycle;
                    uint64_t to = components[drainer]->drainReplay(
                        cycle, limit, deadlock, &lp,
                        config.checkFastForward);
                    if (to > cycle) {
                        if (config.checkFastForward) {
                            verifyDrainWindow(cycle, to, drainer,
                                              all_done);
                            out.tickedCycles += to - cycle;
                        } else {
                            for (size_t i = 0;
                                 i < components.size(); ++i) {
                                if (i != drainer)
                                    components[i]->fastForward(cycle,
                                                               to);
                            }
                            out.skippedCycles += to - cycle;
                        }
                        out.drainedCycles += to - cycle;
                        ++out.drainJumps;
                        cycle = to;
                        last_progress_cycle = lp;
                        // Re-snapshot: the replay bumped the
                        // drainer's progress counter.
                        progress = 0;
                        for (size_t i = 0; i < components.size();
                             ++i) {
                            prev[i] = components[i]->progressCount();
                            progress += prev[i];
                        }
                    }
                }
            }
        } else {
            stalled = true;
            if (deadlock > 0 &&
                cycle - last_progress_cycle >= deadlock) {
                out.deadlocked = true;
                out.diagnostic = dumpComponents();
                OG_WARN("simulation watchdog: no forward progress "
                        "for ",
                        deadlock, " cycles (at cycle ", cycle,
                        "); aborting\n", out.diagnostic);
                break;
            }
        }
    }
    out.cycles = cycle;
    // Preserving the historical loop's edge case: finishing exactly
    // at maxCycles still reports an incomplete run.
    out.completed = done && cycle < config.maxCycles;
    return out;
}

} // namespace overgen::sim
