#include "sim/engine.h"

#include <algorithm>

#include "common/logging.h"

namespace overgen::sim {

void
SimEngine::add(ClockedComponent *component)
{
    OG_ASSERT(component != nullptr, "null ClockedComponent");
    components.push_back(component);
}

uint64_t
SimEngine::horizon(uint64_t now) const
{
    uint64_t h = kNoEventCycle;
    for (const ClockedComponent *c : components)
        h = std::min(h, c->nextEventCycle(now));
    return h;
}

uint64_t
SimEngine::totalProgress() const
{
    uint64_t total = 0;
    for (const ClockedComponent *c : components)
        total += c->progressCount();
    return total;
}

std::string
SimEngine::dumpComponents() const
{
    std::string out;
    for (const ClockedComponent *c : components)
        c->describeState(out);
    return out;
}

void
SimEngine::verifyQuiescent(uint64_t from, uint64_t to,
                           const std::function<bool()> &all_done)
{
    std::vector<uint64_t> prints(components.size());
    for (size_t i = 0; i < components.size(); ++i)
        prints[i] = components[i]->quiescenceFingerprint();
    uint64_t progress = totalProgress();
    for (uint64_t cycle = from + 1; cycle <= to; ++cycle) {
        for (ClockedComponent *c : components)
            c->tick(cycle);
        OG_ASSERT(!all_done(),
                  "fast-forward would have skipped the completion "
                  "at cycle ",
                  cycle, " (horizon ", to + 1, ")");
    }
    OG_ASSERT(totalProgress() == progress,
              "fast-forward would have skipped progress in cycles (",
              from, ", ", to, "]");
    for (size_t i = 0; i < components.size(); ++i) {
        OG_ASSERT(components[i]->quiescenceFingerprint() == prints[i],
                  "component ", i,
                  " mutated frozen state in skipped cycles (", from,
                  ", ", to, "]");
    }
}

EngineOutcome
SimEngine::run(const std::function<bool()> &all_done)
{
    OG_ASSERT(!components.empty(), "SimEngine has no components");
    EngineOutcome out;
    uint64_t cycle = 0;
    uint64_t progress = totalProgress();
    uint64_t last_progress_cycle = 0;
    // Horizons are only worth computing once a tick goes by without
    // progress: an active system ticks at full speed with zero
    // overhead, and a stall window begins with exactly one
    // unproductive tick before the jump.
    bool stalled = false;
    bool done = false;
    const uint64_t deadlock = config.deadlockCycles;
    while (cycle < config.maxCycles) {
        if (stalled && !config.noFastForward) {
            uint64_t stop = config.maxCycles;
            if (deadlock > 0)
                stop = std::min(stop, last_progress_cycle + deadlock);
            uint64_t target = std::min(horizon(cycle), stop);
            if (target > cycle + 1) {
                uint64_t skipped = target - 1 - cycle;
                if (config.checkFastForward) {
                    verifyQuiescent(cycle, target - 1, all_done);
                    out.tickedCycles += skipped;
                } else {
                    for (ClockedComponent *c : components)
                        c->fastForward(cycle, target - 1);
                    out.skippedCycles += skipped;
                }
                ++out.horizonJumps;
                cycle = target - 1;
            }
        }
        ++cycle;
        for (ClockedComponent *c : components)
            c->tick(cycle);
        ++out.tickedCycles;
        if (all_done()) {
            done = true;
            break;
        }
        uint64_t p = totalProgress();
        if (p != progress) {
            progress = p;
            last_progress_cycle = cycle;
            stalled = false;
        } else {
            stalled = true;
            if (deadlock > 0 &&
                cycle - last_progress_cycle >= deadlock) {
                out.deadlocked = true;
                out.diagnostic = dumpComponents();
                OG_WARN("simulation watchdog: no forward progress "
                        "for ",
                        deadlock, " cycles (at cycle ", cycle,
                        "); aborting\n", out.diagnostic);
                break;
            }
        }
    }
    out.cycles = cycle;
    // Preserving the historical loop's edge case: finishing exactly
    // at maxCycles still reports an incomplete run.
    out.completed = done && cycle < config.maxCycles;
    return out;
}

} // namespace overgen::sim
