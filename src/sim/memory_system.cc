#include "sim/memory_system.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "sim/snapshot.h"
#include "telemetry/sink.h"
#include "telemetry/timeline.h"

namespace overgen::sim {

void
MemorySystem::TxnQueue::grow()
{
    size_t new_cap = ids.empty() ? 8 : ids.size() * 2;
    std::vector<TxnId> nids(new_cap);
    std::vector<uint64_t> naddrs(new_cap);
    std::vector<int> nbytes(new_cap);
    std::vector<uint8_t> nwrites(new_cap);
    for (size_t i = 0; i < count; ++i) {
        size_t s = slot(i);
        nids[i] = ids[s];
        naddrs[i] = addrs[s];
        nbytes[i] = bytes[s];
        nwrites[i] = writes[s];
    }
    ids = std::move(nids);
    addrs = std::move(naddrs);
    bytes = std::move(nbytes);
    writes = std::move(nwrites);
    head = 0;
    mask = new_cap - 1;
}

MemorySystem::MemorySystem(const adg::SystemParams &sys,
                           const SimConfig &config)
    : sys(sys), config(config)
{
    OG_ASSERT(sys.l2Banks >= 1, "no L2 banks");
    int64_t bank_bytes =
        static_cast<int64_t>(sys.l2CapacityKiB) * 1024 / sys.l2Banks;
    setsPerBank = std::max<int>(
        1, static_cast<int>(bank_bytes /
                            (config.cacheLineBytes * config.l2Ways)));
    banks.resize(sys.l2Banks);
    for (Bank &bank : banks)
        bank.sets.resize(setsPerBank);
    channelBudget.assign(std::max(1, sys.dramChannels), 0.0);
    tileLink.resize(std::max(1, sys.numTiles));
    tileLinkBudget.assign(tileLink.size(), 0.0);
}

void
MemorySystem::attachTelemetry(int trace_pid, const std::string &prefix)
{
    telemetry::Sink *sink = config.sink;
    if (sink == nullptr)
        return;
    tracePid = trace_pid;
    mshrOccupancy =
        &sink->registry().distribution(prefix + "/mshr_occupancy");
    bankQueueDepth =
        &sink->registry().distribution(prefix + "/bank_queue_depth");
}

void
MemorySystem::attachTimeline(telemetry::TimelineRun *run,
                             uint64_t interval)
{
    OG_ASSERT(run == nullptr || interval > 0,
              "timeline sampling needs a positive interval");
    timelineRun = run;
    timelineInterval = interval;
}

void
MemorySystem::sampleTelemetry()
{
    telemetry::Sink *sink = config.sink;
    // Distributions and counters sample on the same interval: a
    // per-cycle mutex-guarded record would dominate simulation cost
    // (the micro_sim overhead guard holds instrumentation under 3%).
    if (cycle % sink->options().counterSampleInterval != 0)
        return;
    int mshrs = 0;
    int64_t queued = 0;
    for (const Bank &bank : banks) {
        mshrs += bank.mshrsInUse;
        queued += static_cast<int64_t>(bank.queue.size());
    }
    mshrOccupancy->record(static_cast<double>(mshrs));
    bankQueueDepth->record(static_cast<double>(queued) /
                           static_cast<double>(banks.size()));
    if (sink->tracing()) {
        telemetry::TraceEmitter &trace = sink->trace();
        trace.counter("l2.mshrs_in_use", tracePid, 0, cycle,
                      static_cast<double>(mshrs));
        uint64_t noc = memStats.nocBytes;
        uint64_t dram =
            memStats.dramBytesRead + memStats.dramBytesWritten;
        trace.counter("noc.bytes_per_interval", tracePid, 0, cycle,
                      static_cast<double>(noc - lastNocBytes));
        trace.counter("dram.bytes_per_interval", tracePid, 0, cycle,
                      static_cast<double>(dram - lastDramBytes));
        lastNocBytes = noc;
        lastDramBytes = dram;
    }
}

int
MemorySystem::bankOf(uint64_t addr) const
{
    return static_cast<int>((addr / config.cacheLineBytes) %
                            banks.size());
}

int
MemorySystem::channelOf(uint64_t addr) const
{
    return static_cast<int>((addr / config.cacheLineBytes) %
                            channelBudget.size());
}

MemorySystem::LookupResult
MemorySystem::lookup(Bank &bank, uint64_t addr, bool write)
{
    uint64_t line = addr / config.cacheLineBytes;
    uint64_t set_index = (line / banks.size()) % setsPerBank;
    auto &set = bank.sets[set_index];
    auto it = std::find_if(set.begin(), set.end(),
                           [line](const CacheLine &cl) {
                               return cl.tag == line;
                           });
    LookupResult result;
    if (it != set.end()) {
        result.hit = true;
        CacheLine cl = *it;
        cl.dirty |= write;
        set.erase(it);
        set.insert(set.begin(), cl);  // move to MRU
        return result;
    }
    // Allocate; evict LRU, writing back if dirty.
    set.insert(set.begin(), CacheLine{ line, write });
    if (static_cast<int>(set.size()) > config.l2Ways) {
        if (set.back().dirty)
            result.evictedDirty = true;
        set.pop_back();
    }
    return result;
}

const MemorySystem::FillEntry *
MemorySystem::findFill(const Bank &bank, uint64_t line)
{
    for (size_t i = 0; i < bank.fillReady.size(); ++i)
        if (bank.fillReady[i].line == line)
            return &bank.fillReady[i];
    return nullptr;
}

void
MemorySystem::setFill(Bank &bank, uint64_t line, uint64_t ready)
{
    // Replace any existing entry for the line (the historical map's
    // operator[] overwrite — leaves exactly one entry, and thus one
    // MSHR release at expiry, however often the line was dispatched).
    // The new ready cycle is >= every queued one (fixed fill latency,
    // monotone dispatch cycles), so expiry order is preserved.
    for (size_t i = 0; i < bank.fillReady.size(); ++i) {
        if (bank.fillReady[i].line == line) {
            bank.fillReady.erase(i);
            break;
        }
    }
    bank.fillReady.push_back(FillEntry{ line, ready });
}

void
MemorySystem::insertCompleted(TxnId id, uint64_t ready)
{
    completed[id] = ready;
    if (completedFloorValid)
        completedFloorCache = std::min(completedFloorCache, ready);
}

uint64_t
MemorySystem::completedFloor() const
{
    if (!completedFloorValid) {
        uint64_t floor = kNoEventCycle;
        for (const auto &[id, ready] : completed)
            floor = std::min(floor, ready);
        completedFloorCache = floor;
        completedFloorValid = true;
    }
    return completedFloorCache;
}

bool
MemorySystem::canAccept(int tile) const
{
    OG_ASSERT(tile >= 0 && tile < static_cast<int>(tileLink.size()),
              "bad tile ", tile);
    // Bounded per-tile queue so engines self-throttle.
    return tileLink[tile].size() < 64;
}

TxnId
MemorySystem::submit(int tile, uint64_t addr, int bytes, bool write)
{
    OG_ASSERT(canAccept(tile), "submit to a full tile link");
    TxnId id = nextId++;
    ++inFlightCount;
    tileLink[tile].push(id, addr, bytes, write);
    uint64_t outstanding = inFlightCount + completed.size();
    memStats.peakOutstandingTxns =
        std::max(memStats.peakOutstandingTxns, outstanding);
    return id;
}

bool
MemorySystem::consumeCompleted(TxnId id)
{
    auto it = completed.find(id);
    if (it == completed.end() || it->second > cycle)
        return false;
    if (completedFloorValid && it->second == completedFloorCache)
        completedFloorValid = false;
    completed.erase(it);
    return true;
}

bool
MemorySystem::busy() const
{
    return inFlightCount > 0;
}

void
MemorySystem::tick()
{
    ++cycle;
    uint64_t progress_before = progressEvents;
    if (mshrOccupancy != nullptr)
        sampleTelemetry();

    // Tile links: move requests to their bank queues within the NoC
    // byte budget of each tile's link.
    for (size_t t = 0; t < tileLink.size(); ++t) {
        tileLinkBudget[t] += sys.nocBytes;
        TxnQueue &link = tileLink[t];
        while (!link.empty()) {
            int txn_bytes = link.frontBytes();
            if (tileLinkBudget[t] < txn_bytes)
                break;
            tileLinkBudget[t] -= txn_bytes;
            memStats.nocBytes += txn_bytes;
            uint64_t addr = link.frontAddr();
            banks[bankOf(addr)].queue.push(link.frontId(), addr,
                                           txn_bytes,
                                           link.frontWrite());
            link.pop();
            ++progressEvents;
        }
        // The cap must admit at least one full line even on narrow
        // links, or sub-line bandwidths could never accumulate enough
        // budget to move a transaction.
        tileLinkBudget[t] = std::min(
            tileLinkBudget[t],
            std::max(static_cast<double>(sys.nocBytes),
                     static_cast<double>(config.cacheLineBytes)));
    }

    // L2 banks: service requests within bank bandwidth.
    for (Bank &bank : banks) {
        bank.byteBudget += config.l2BankBandwidthBytes;
        // Expire finished fills so merged requests stop matching.
        // Expiry-ordered queue: expired entries are exactly the
        // front run (ready cycles are monotone in dispatch order).
        while (!bank.fillReady.empty() &&
               bank.fillReady.front().ready <= cycle) {
            bank.fillReady.pop_front();
            --bank.mshrsInUse;
        }
        while (!bank.queue.empty()) {
            int txn_bytes = bank.queue.frontBytes();
            if (bank.byteBudget < txn_bytes)
                break;
            uint64_t addr = bank.queue.frontAddr();
            TxnId id = bank.queue.frontId();
            bool write = bank.queue.frontWrite();
            uint64_t line = addr / config.cacheLineBytes;
            if (const FillEntry *fill = findFill(bank, line)) {
                // MSHR merge: complete with the in-flight fill; the
                // line is already tagged, no extra DRAM traffic.
                ++memStats.l2Hits;
                bank.byteBudget -= txn_bytes;
                insertCompleted(id, fill->ready);
                if (write)
                    lookup(bank, addr, true);  // set dirty
                --inFlightCount;
                bank.queue.pop();
                ++progressEvents;
                continue;
            }
            if (bank.mshrsInUse >= config.l2MshrsPerBank) {
                ++memStats.mshrStallCycles;
                break;
            }
            LookupResult result = lookup(bank, addr, write);
            bank.byteBudget -= txn_bytes;
            if (result.evictedDirty) {
                bank.writebackBytes += config.cacheLineBytes;
            }
            if (result.hit) {
                ++memStats.l2Hits;
                insertCompleted(id, cycle + config.l2HitLatency);
                --inFlightCount;
            } else if (write) {
                // Write-allocate, no fetch: the line is established
                // and dirtied; data arrives from the tile.
                ++memStats.l2Misses;
                insertCompleted(id, cycle + config.l2HitLatency);
                --inFlightCount;
            } else {
                // Read miss: fetch the line from DRAM.
                ++memStats.l2Misses;
                ++bank.mshrsInUse;
                bank.dramQueue.push(id, addr, txn_bytes, write);
            }
            bank.queue.pop();
            ++progressEvents;
        }
        bank.byteBudget = std::min(
            bank.byteBudget,
            std::max(static_cast<double>(config.l2BankBandwidthBytes),
                     static_cast<double>(config.cacheLineBytes)));
    }

    // DRAM channels: drain read fills and dirty writebacks within
    // channel bandwidth.
    for (double &budget : channelBudget)
        budget += config.dramChannelBandwidthBytes;
    for (Bank &bank : banks) {
        while (!bank.dramQueue.empty()) {
            uint64_t addr = bank.dramQueue.frontAddr();
            double &budget = channelBudget[channelOf(addr)];
            if (budget < config.cacheLineBytes)
                break;
            budget -= config.cacheLineBytes;
            memStats.dramBytesRead += config.cacheLineBytes;
            uint64_t ready =
                cycle + config.l2HitLatency + config.dramLatency;
            insertCompleted(bank.dramQueue.frontId(), ready);
            uint64_t line = addr / config.cacheLineBytes;
            setFill(bank, line, ready);  // MSHR held until fill
            --inFlightCount;
            bank.dramQueue.pop();
            ++progressEvents;
        }
        // Writebacks share the channel bandwidth (channel 0 slice for
        // simplicity of attribution).
        while (bank.writebackBytes > 0) {
            double &budget = channelBudget[bankOf(
                static_cast<uint64_t>(bank.writebackBytes)) %
                                           channelBudget.size()];
            if (budget < config.cacheLineBytes)
                break;
            budget -= config.cacheLineBytes;
            bank.writebackBytes -= config.cacheLineBytes;
            memStats.dramBytesWritten += config.cacheLineBytes;
            ++progressEvents;
        }
    }
    for (double &budget : channelBudget) {
        budget = std::min(
            budget,
            std::max(
                static_cast<double>(config.dramChannelBandwidthBytes),
                static_cast<double>(config.cacheLineBytes)));
    }

    if (progressEvents != progress_before)
        memStats.ledger.add(telemetry::CycleCategory::Busy);
    else
        memStats.ledger.add(classifyStall());
    if (timelineRun != nullptr && cycle % timelineInterval == 0)
        emitTimelineRow();
}

telemetry::CycleCategory
MemorySystem::classifyStall() const
{
    using C = telemetry::CycleCategory;
    // DRAM involvement: fills in flight toward completion (fills and
    // their completion entries are created together, and `completed`
    // is frozen across skipped windows), queued read misses, or
    // pending writebacks — and MSHR-blocked service, which is waiting
    // on a fill to free an MSHR.
    bool dram_work = !completed.empty();
    bool queued = false;
    for (const auto &link : tileLink)
        queued |= !link.empty();
    for (const Bank &bank : banks) {
        if (!bank.dramQueue.empty() || bank.writebackBytes > 0)
            dram_work = true;
        if (!bank.queue.empty()) {
            queued = true;
            // Safe under fast-forward: with a non-empty queue the
            // horizon stops at every fill expiry, so mshrsInUse and
            // the merge window are frozen across the window.
            if (bank.mshrsInUse >= config.l2MshrsPerBank &&
                findFill(bank, bank.queue.frontAddr() /
                                   config.cacheLineBytes) == nullptr) {
                dram_work = true;
            }
        }
    }
    if (dram_work)
        return C::DramFill;
    // Requests queued with no DRAM path involvement are waiting on
    // NoC-link or L2-bank service bandwidth.
    if (queued)
        return C::NocContention;
    return C::Idle;
}

void
MemorySystem::emitTimelineRow()
{
    int mshrs = 0;
    int64_t queued = 0;
    for (const Bank &bank : banks) {
        mshrs += bank.mshrsInUse;
        queued += static_cast<int64_t>(bank.queue.size());
    }
    // Hand-formatted compact JSON, keys sorted — same bytes as a
    // Json::dump of the equivalent object, minus the map allocations
    // and snprintf format parsing (per-cycle hot path; see the
    // bench/micro_sim instrumentation-overhead guard).
    std::string &row = timelineRun->beginRow();
    row += "{\"bank_queue_depth\":";
    telemetry::appendDecimal(row, static_cast<uint64_t>(queued));
    row += ",\"comp\":\"memory\",\"cycle\":";
    telemetry::appendDecimal(row, cycle);
    row += ",\"dram_bytes_read\":";
    telemetry::appendDecimal(row, memStats.dramBytesRead);
    row += ",\"dram_bytes_written\":";
    telemetry::appendDecimal(row, memStats.dramBytesWritten);
    row += ",\"l2_hits\":";
    telemetry::appendDecimal(row, memStats.l2Hits);
    row += ",\"l2_misses\":";
    telemetry::appendDecimal(row, memStats.l2Misses);
    row += ",\"ledger\":";
    memStats.ledger.appendCompact(row);
    row += ",\"mshr_stall_cycles\":";
    telemetry::appendDecimal(row, memStats.mshrStallCycles);
    row += ",\"mshrs_in_use\":";
    telemetry::appendDecimal(row, static_cast<uint64_t>(mshrs));
    row += ",\"noc_bytes\":";
    telemetry::appendDecimal(row, memStats.nocBytes);
    row += ",\"outstanding\":";
    telemetry::appendDecimal(row, inFlightCount + completed.size());
    row += ",\"run\":\"";
    row += timelineRun->label();
    row += "\"}";
    timelineRun->endRow();
}

void
MemorySystem::tick(uint64_t engine_cycle)
{
    tick();
    OG_ASSERT(cycle == engine_cycle, "memory system clock skew: ",
              cycle, " vs engine ", engine_cycle);
}

uint64_t
MemorySystem::budgetReadyCycle(uint64_t now, double budget, double inc,
                               double bytes)
{
    // tick() accrues inc before processing, so the budget visible at
    // cycle now+k is budget + k*inc (the cap never binds below a head
    // that fits under it). First k >= 1 with budget + k*inc >= bytes.
    if (inc <= 0.0)
        return kNoEventCycle;  // starved pipe: never self-wakes
    double deficit = bytes - budget;
    uint64_t k = 1;
    if (deficit > inc)
        k = static_cast<uint64_t>(std::ceil(deficit / inc));
    return now + k;
}

uint64_t
MemorySystem::queueEventCycle(uint64_t now) const
{
    uint64_t ev = kNoEventCycle;
    auto at = [&ev](uint64_t c) { ev = std::min(ev, c); };
    // Tile links: the head moves once the link budget covers it.
    for (size_t t = 0; t < tileLink.size(); ++t)
        if (!tileLink[t].empty())
            at(budgetReadyCycle(now, tileLinkBudget[t], sys.nocBytes,
                                tileLink[t].frontBytes()));
    for (const Bank &bank : banks) {
        if (!bank.queue.empty()) {
            uint64_t line =
                bank.queue.frontAddr() / config.cacheLineBytes;
            bool mergeable = findFill(bank, line) != nullptr;
            // Service happens at the budget-ready cycle unless the
            // head is MSHR-blocked; an MSHR-blocked head instead
            // waits on a fill expiry (below) while accruing
            // mshrStallCycles, which fastForward replays.
            if (mergeable ||
                bank.mshrsInUse < config.l2MshrsPerBank) {
                at(budgetReadyCycle(now, bank.byteBudget,
                                    config.l2BankBandwidthBytes,
                                    bank.queue.frontBytes()));
            }
            // Any fill expiry can change what happens at this bank's
            // head (merge window closing, MSHR freeing): stop at the
            // earliest — the front of the expiry-ordered queue.
            if (!bank.fillReady.empty())
                at(std::max(bank.fillReady.front().ready, now + 1));
        }
        // DRAM fills dispatch when the head's channel budget covers a
        // line; writebacks likewise on their (frozen) channel.
        if (!bank.dramQueue.empty()) {
            int chan = channelOf(bank.dramQueue.frontAddr());
            at(budgetReadyCycle(now, channelBudget[chan],
                                config.dramChannelBandwidthBytes,
                                config.cacheLineBytes));
        }
        if (bank.writebackBytes > 0) {
            int chan = bankOf(static_cast<uint64_t>(
                           bank.writebackBytes)) %
                       static_cast<int>(channelBudget.size());
            at(budgetReadyCycle(now, channelBudget[chan],
                                config.dramChannelBandwidthBytes,
                                config.cacheLineBytes));
        }
    }
    return ev;
}

uint64_t
MemorySystem::nextEventCycle(uint64_t now) const
{
    // Interval telemetry sampling (distributions, timeline rows)
    // cannot be replayed in closed form; with a sink or timeline
    // attached, observation degrades to per-cycle ticking.
    if (mshrOccupancy != nullptr || timelineRun != nullptr)
        return now + 1;
    uint64_t ev = queueEventCycle(now);
    // Completions become pollable at their ready cycle (cached
    // minimum — the map can hold hundreds of pending entries).
    uint64_t floor = completedFloor();
    if (floor != kNoEventCycle)
        ev = std::min(ev, std::max(floor, now + 1));
    return ev;
}

void
MemorySystem::fastForward(uint64_t from, uint64_t to)
{
    // Skipped windows are quiescent by construction: one closed-form
    // classification of the frozen state covers every skipped cycle
    // (classifyStall never reads the byte budgets updated below).
    memStats.ledger.add(classifyStall(), to - from);
    double k = static_cast<double>(to - from);
    double line = static_cast<double>(config.cacheLineBytes);
    // An MSHR-blocked head counts one stall per skipped tick whose
    // accrued budget would have covered it — exactly what per-cycle
    // ticking does (the break happens before any budget deduction).
    for (Bank &bank : banks) {
        if (bank.queue.empty() ||
            bank.mshrsInUse < config.l2MshrsPerBank)
            continue;
        if (findFill(bank, bank.queue.frontAddr() /
                               config.cacheLineBytes) != nullptr)
            continue;  // merge path: no stall accrual
        double inc = config.l2BankBandwidthBytes;
        double bytes = bank.queue.frontBytes();
        uint64_t k0 = 1;
        if (bank.byteBudget < bytes) {
            if (inc <= 0.0)
                continue;  // budget never covers the head: no stalls
            double deficit = bytes - bank.byteBudget;
            if (deficit > inc)
                k0 = static_cast<uint64_t>(std::ceil(deficit / inc));
        }
        uint64_t ticks = to - from;
        if (ticks >= k0)
            memStats.mshrStallCycles += ticks - k0 + 1;
    }
    // Each budget follows b = min(b + inc, cap) per idle tick, so k
    // ticks collapse to min(b + k*inc, cap) — the caps mirror tick().
    for (double &budget : tileLinkBudget)
        budget = std::min(
            budget + k * sys.nocBytes,
            std::max(static_cast<double>(sys.nocBytes), line));
    for (Bank &bank : banks)
        bank.byteBudget = std::min(
            bank.byteBudget + k * config.l2BankBandwidthBytes,
            std::max(static_cast<double>(config.l2BankBandwidthBytes),
                     line));
    for (double &budget : channelBudget)
        budget = std::min(
            budget + k * config.dramChannelBandwidthBytes,
            std::max(
                static_cast<double>(config.dramChannelBandwidthBytes),
                line));
    cycle = to;
}

bool
MemorySystem::supportsDrainReplay() const
{
    // Interval telemetry observes every cycle; drain windows would
    // skip samples, so they are disabled alongside horizon jumps.
    return mshrOccupancy == nullptr && timelineRun == nullptr;
}

uint64_t
MemorySystem::replayDrain(uint64_t from, uint64_t limit,
                          uint64_t deadlock, uint64_t *last_progress)
{
    OG_ASSERT(cycle == from, "drain replay clock skew: ", cycle,
              " vs ", from);
    // Tiles blocked on canAccept() may act the very cycle a full link
    // pops its head, so the window must end strictly before the first
    // such pop. Links only drain while the tiles are frozen (no
    // submits), so one closed-form solve per full link at window
    // start holds for the whole window.
    uint64_t full_link_pop = kNoEventCycle;
    for (size_t t = 0; t < tileLink.size(); ++t) {
        if (!canAccept(static_cast<int>(t))) {
            full_link_pop = std::min(
                full_link_pop,
                budgetReadyCycle(from, tileLinkBudget[t],
                                 sys.nocBytes,
                                 tileLink[t].frontBytes()));
        }
    }
    uint64_t pos = from;
    uint64_t lp = *last_progress;
    for (;;) {
        uint64_t n = queueEventCycle(pos);
        uint64_t stop = limit;
        if (full_link_pop != kNoEventCycle)
            stop = std::min(stop, full_link_pop - 1);
        // Completions wake tiles the cycle they become pollable:
        // end the window strictly before the earliest ready cycle
        // (re-read every iteration — replayed events mint new
        // completions).
        uint64_t floor = completedFloor();
        if (floor != kNoEventCycle)
            stop = std::min(stop, floor - 1);
        // Watchdog exactness: if the next internal event lies beyond
        // the abort cycle, stop early so the engine's per-cycle path
        // reaches the abort at last_progress + deadlock itself.
        if (deadlock > 0)
            stop = std::min(stop, lp + deadlock - 1);
        if (n == kNoEventCycle || n > stop)
            break;
        // Quiescent gap up to the event, then the event tick itself —
        // the same closed form + real tick a horizon jump would use,
        // only scoped to this component.
        if (n - 1 > pos)
            fastForward(pos, n - 1);
        uint64_t before = progressEvents;
        tick(n);
        if (progressEvents != before)
            lp = n;
        pos = n;
    }
    *last_progress = lp;
    return pos;
}

uint64_t
MemorySystem::drainReplay(uint64_t from, uint64_t limit,
                          uint64_t deadlock, uint64_t *last_progress,
                          bool verify)
{
    if (!verify)
        return replayDrain(from, limit, deadlock, last_progress);
    // checkFastForward: run the closed-form replay, then drive a
    // per-cycle ghost copy over the same window and require the full
    // states to match bit-for-bit. Valid because every budget stays
    // on exact integer-valued doubles, so closed-form accrual and
    // per-cycle accrual produce identical bit patterns.
    MemorySystem ghost(*this);
    uint64_t to = replayDrain(from, limit, deadlock, last_progress);
    if (to > from) {
        for (uint64_t c = from + 1; c <= to; ++c)
            ghost.tick(c);
        OG_ASSERT(ghost.drainDigest() == drainDigest(),
                  "drain replay diverged from per-cycle ground truth "
                  "in (",
                  from, ", ", to, "]");
    }
    return to;
}

uint64_t
MemorySystem::drainDigest() const
{
    // Full-state digest for the drain-replay self-check: unlike
    // quiescenceFingerprint, nothing is excluded — budgets, deferred
    // expiry state, stall counters, the ledger and the clock must all
    // match the per-cycle ground truth exactly.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    auto mix_double = [&mix](double d) {
        mix(std::bit_cast<uint64_t>(d));
    };
    auto mix_queue = [&](const TxnQueue &q) {
        mix(q.size());
        for (size_t i = 0; i < q.size(); ++i) {
            mix(static_cast<uint64_t>(q.idAt(i)));
            mix(q.addrAt(i));
            mix(static_cast<uint64_t>(q.bytesAt(i)));
            mix(static_cast<uint64_t>(q.writeAt(i)));
        }
    };
    mix(cycle);
    mix(static_cast<uint64_t>(nextId));
    mix(progressEvents);
    mix(inFlightCount);
    for (size_t t = 0; t < tileLink.size(); ++t) {
        mix_queue(tileLink[t]);
        mix_double(tileLinkBudget[t]);
    }
    for (double budget : channelBudget)
        mix_double(budget);
    for (const Bank &bank : banks) {
        mix_queue(bank.queue);
        mix_queue(bank.dramQueue);
        mix(bank.fillReady.size());
        for (size_t i = 0; i < bank.fillReady.size(); ++i) {
            mix(bank.fillReady[i].line);
            mix(bank.fillReady[i].ready);
        }
        mix(static_cast<uint64_t>(bank.writebackBytes));
        mix(static_cast<uint64_t>(bank.mshrsInUse));
        mix_double(bank.byteBudget);
    }
    for (const auto &[id, ready] : completed) {
        mix(static_cast<uint64_t>(id));
        mix(ready);
    }
    mix(memStats.l2Hits);
    mix(memStats.l2Misses);
    mix(memStats.dramBytesRead);
    mix(memStats.dramBytesWritten);
    mix(memStats.nocBytes);
    mix(memStats.mshrStallCycles);
    mix(memStats.peakOutstandingTxns);
    for (uint64_t c : memStats.ledger.counts)
        mix(c);
    return h;
}

uint64_t
MemorySystem::quiescenceFingerprint() const
{
    // Excluded on purpose: byte budgets, fillReady/mshrsInUse (expiry
    // is deferred under fast-forward), mshrStallCycles and the cycle
    // ledger (both replayed in closed form by fastForward), and the
    // clock itself.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const auto &link : tileLink)
        mix(link.size());
    for (const Bank &bank : banks) {
        mix(bank.queue.size());
        mix(bank.dramQueue.size());
        mix(static_cast<uint64_t>(bank.writebackBytes));
    }
    mix(inFlightCount);
    mix(completed.size());
    mix(static_cast<uint64_t>(nextId));
    mix(memStats.l2Hits);
    mix(memStats.l2Misses);
    mix(memStats.dramBytesRead);
    mix(memStats.dramBytesWritten);
    mix(memStats.nocBytes);
    mix(memStats.peakOutstandingTxns);
    return h;
}

void
MemorySystem::save(Snapshot &snap) const
{
    auto save_queue = [&snap](const TxnQueue &q) {
        snap.putU64(q.size());
        for (size_t i = 0; i < q.size(); ++i) {
            snap.putI64(q.idAt(i));
            snap.putU64(q.addrAt(i));
            snap.putI64(q.bytesAt(i));
            snap.putBool(q.writeAt(i));
        }
    };
    snap.beginSection("memsys");
    snap.putU64(cycle);
    snap.putI64(nextId);
    snap.putU64(progressEvents);
    snap.putU64(inFlightCount);
    snap.putU64(tileLink.size());
    for (size_t t = 0; t < tileLink.size(); ++t) {
        save_queue(tileLink[t]);
        snap.putDouble(tileLinkBudget[t]);
    }
    snap.putU64(channelBudget.size());
    for (double budget : channelBudget)
        snap.putDouble(budget);
    snap.putU64(banks.size());
    for (const Bank &bank : banks) {
        // Tag store (MRU-ordered sets): unlike the drain digest, a
        // restore must rebuild hit/miss/eviction behavior, so the
        // whole store is serialized.
        snap.putU64(bank.sets.size());
        for (const auto &set : bank.sets) {
            snap.putU64(set.size());
            for (const CacheLine &cl : set) {
                snap.putU64(cl.tag);
                snap.putBool(cl.dirty);
            }
        }
        save_queue(bank.queue);
        save_queue(bank.dramQueue);
        snap.putU64(bank.fillReady.size());
        for (size_t i = 0; i < bank.fillReady.size(); ++i) {
            snap.putU64(bank.fillReady[i].line);
            snap.putU64(bank.fillReady[i].ready);
        }
        snap.putI64(bank.writebackBytes);
        snap.putI64(bank.mshrsInUse);
        snap.putDouble(bank.byteBudget);
    }
    snap.putU64(completed.size());
    for (const auto &[id, ready] : completed) {
        snap.putI64(id);
        snap.putU64(ready);
    }
    snap.putU64(memStats.l2Hits);
    snap.putU64(memStats.l2Misses);
    snap.putU64(memStats.dramBytesRead);
    snap.putU64(memStats.dramBytesWritten);
    snap.putU64(memStats.nocBytes);
    snap.putU64(memStats.mshrStallCycles);
    snap.putU64(memStats.peakOutstandingTxns);
    for (uint64_t c : memStats.ledger.counts)
        snap.putU64(c);
}

void
MemorySystem::restore(const Snapshot &snap)
{
    auto restore_queue = [&snap](TxnQueue &q) {
        q.clear();
        uint64_t n = snap.getU64();
        for (uint64_t i = 0; i < n; ++i) {
            TxnId id = snap.getI64();
            uint64_t addr = snap.getU64();
            int bytes = static_cast<int>(snap.getI64());
            bool write = snap.getBool();
            q.push(id, addr, bytes, write);
        }
    };
    snap.expectSection("memsys");
    cycle = snap.getU64();
    nextId = snap.getI64();
    progressEvents = snap.getU64();
    inFlightCount = snap.getU64();
    uint64_t links = snap.getU64();
    OG_ASSERT(links == tileLink.size(),
              "snapshot tile-link count mismatch: ", links, " vs ",
              tileLink.size());
    for (size_t t = 0; t < tileLink.size(); ++t) {
        restore_queue(tileLink[t]);
        tileLinkBudget[t] = snap.getDouble();
    }
    uint64_t channels = snap.getU64();
    OG_ASSERT(channels == channelBudget.size(),
              "snapshot channel count mismatch: ", channels, " vs ",
              channelBudget.size());
    for (double &budget : channelBudget)
        budget = snap.getDouble();
    uint64_t nbanks = snap.getU64();
    OG_ASSERT(nbanks == banks.size(), "snapshot bank count mismatch: ",
              nbanks, " vs ", banks.size());
    for (Bank &bank : banks) {
        uint64_t nsets = snap.getU64();
        OG_ASSERT(nsets == bank.sets.size(),
                  "snapshot set count mismatch: ", nsets, " vs ",
                  bank.sets.size());
        for (auto &set : bank.sets) {
            set.resize(snap.getU64());
            for (CacheLine &cl : set) {
                cl.tag = snap.getU64();
                cl.dirty = snap.getBool();
            }
        }
        restore_queue(bank.queue);
        restore_queue(bank.dramQueue);
        bank.fillReady.clear();
        uint64_t fills = snap.getU64();
        for (uint64_t i = 0; i < fills; ++i) {
            FillEntry entry;
            entry.line = snap.getU64();
            entry.ready = snap.getU64();
            bank.fillReady.push_back(entry);
        }
        bank.writebackBytes = snap.getI64();
        bank.mshrsInUse = static_cast<int>(snap.getI64());
        bank.byteBudget = snap.getDouble();
    }
    completed.clear();
    uint64_t ncompleted = snap.getU64();
    for (uint64_t i = 0; i < ncompleted; ++i) {
        TxnId id = snap.getI64();
        completed[id] = snap.getU64();
    }
    // Lazily recomputed on the next completedFloor() — the recompute
    // yields the exact minimum the live cache held.
    completedFloorValid = false;
    memStats.l2Hits = snap.getU64();
    memStats.l2Misses = snap.getU64();
    memStats.dramBytesRead = snap.getU64();
    memStats.dramBytesWritten = snap.getU64();
    memStats.nocBytes = snap.getU64();
    memStats.mshrStallCycles = snap.getU64();
    memStats.peakOutstandingTxns = snap.getU64();
    for (uint64_t &c : memStats.ledger.counts)
        c = snap.getU64();
}

void
MemorySystem::describeState(std::string &out) const
{
    out += "memory-system @cycle " + std::to_string(cycle) + ":";
    out += " in_flight=" + std::to_string(inFlightCount);
    out += " awaiting_poll=" + std::to_string(completed.size());
    out += "\n  tile links:";
    for (size_t t = 0; t < tileLink.size(); ++t)
        out += " [" + std::to_string(t) + "]=" +
               std::to_string(tileLink[t].size());
    out += "\n";
    for (size_t b = 0; b < banks.size(); ++b) {
        const Bank &bank = banks[b];
        out += "  bank" + std::to_string(b) +
               ": queue=" + std::to_string(bank.queue.size()) +
               " dram_queue=" + std::to_string(bank.dramQueue.size()) +
               " mshrs=" + std::to_string(bank.mshrsInUse) + "/" +
               std::to_string(config.l2MshrsPerBank) +
               " writeback_bytes=" +
               std::to_string(bank.writebackBytes) + "\n";
    }
}

} // namespace overgen::sim
