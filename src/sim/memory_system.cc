#include "sim/memory_system.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "telemetry/sink.h"
#include "telemetry/timeline.h"

namespace overgen::sim {

MemorySystem::MemorySystem(const adg::SystemParams &sys,
                           const SimConfig &config)
    : sys(sys), config(config)
{
    OG_ASSERT(sys.l2Banks >= 1, "no L2 banks");
    int64_t bank_bytes =
        static_cast<int64_t>(sys.l2CapacityKiB) * 1024 / sys.l2Banks;
    setsPerBank = std::max<int>(
        1, static_cast<int>(bank_bytes /
                            (config.cacheLineBytes * config.l2Ways)));
    banks.resize(sys.l2Banks);
    for (Bank &bank : banks)
        bank.sets.resize(setsPerBank);
    channelBudget.assign(std::max(1, sys.dramChannels), 0.0);
    tileLink.resize(std::max(1, sys.numTiles));
    tileLinkBudget.assign(tileLink.size(), 0.0);
}

void
MemorySystem::attachTelemetry(int trace_pid, const std::string &prefix)
{
    telemetry::Sink *sink = config.sink;
    if (sink == nullptr)
        return;
    tracePid = trace_pid;
    mshrOccupancy =
        &sink->registry().distribution(prefix + "/mshr_occupancy");
    bankQueueDepth =
        &sink->registry().distribution(prefix + "/bank_queue_depth");
}

void
MemorySystem::attachTimeline(telemetry::TimelineRun *run,
                             uint64_t interval)
{
    OG_ASSERT(run == nullptr || interval > 0,
              "timeline sampling needs a positive interval");
    timelineRun = run;
    timelineInterval = interval;
}

void
MemorySystem::sampleTelemetry()
{
    telemetry::Sink *sink = config.sink;
    // Distributions and counters sample on the same interval: a
    // per-cycle mutex-guarded record would dominate simulation cost
    // (the micro_sim overhead guard holds instrumentation under 3%).
    if (cycle % sink->options().counterSampleInterval != 0)
        return;
    int mshrs = 0;
    int64_t queued = 0;
    for (const Bank &bank : banks) {
        mshrs += bank.mshrsInUse;
        queued += static_cast<int64_t>(bank.queue.size());
    }
    mshrOccupancy->record(static_cast<double>(mshrs));
    bankQueueDepth->record(static_cast<double>(queued) /
                           static_cast<double>(banks.size()));
    if (sink->tracing()) {
        telemetry::TraceEmitter &trace = sink->trace();
        trace.counter("l2.mshrs_in_use", tracePid, 0, cycle,
                      static_cast<double>(mshrs));
        uint64_t noc = memStats.nocBytes;
        uint64_t dram =
            memStats.dramBytesRead + memStats.dramBytesWritten;
        trace.counter("noc.bytes_per_interval", tracePid, 0, cycle,
                      static_cast<double>(noc - lastNocBytes));
        trace.counter("dram.bytes_per_interval", tracePid, 0, cycle,
                      static_cast<double>(dram - lastDramBytes));
        lastNocBytes = noc;
        lastDramBytes = dram;
    }
}

int
MemorySystem::bankOf(uint64_t addr) const
{
    return static_cast<int>((addr / config.cacheLineBytes) %
                            banks.size());
}

int
MemorySystem::channelOf(uint64_t addr) const
{
    return static_cast<int>((addr / config.cacheLineBytes) %
                            channelBudget.size());
}

MemorySystem::LookupResult
MemorySystem::lookup(Bank &bank, uint64_t addr, bool write)
{
    uint64_t line = addr / config.cacheLineBytes;
    uint64_t set_index = (line / banks.size()) % setsPerBank;
    auto &set = bank.sets[set_index];
    auto it = std::find_if(set.begin(), set.end(),
                           [line](const CacheLine &cl) {
                               return cl.tag == line;
                           });
    LookupResult result;
    if (it != set.end()) {
        result.hit = true;
        CacheLine cl = *it;
        cl.dirty |= write;
        set.erase(it);
        set.insert(set.begin(), cl);  // move to MRU
        return result;
    }
    // Allocate; evict LRU, writing back if dirty.
    set.insert(set.begin(), CacheLine{ line, write });
    if (static_cast<int>(set.size()) > config.l2Ways) {
        if (set.back().dirty)
            result.evictedDirty = true;
        set.pop_back();
    }
    return result;
}

bool
MemorySystem::canAccept(int tile) const
{
    OG_ASSERT(tile >= 0 && tile < static_cast<int>(tileLink.size()),
              "bad tile ", tile);
    // Bounded per-tile queue so engines self-throttle.
    return tileLink[tile].size() < 64;
}

TxnId
MemorySystem::submit(int tile, uint64_t addr, int bytes, bool write)
{
    OG_ASSERT(canAccept(tile), "submit to a full tile link");
    Txn txn;
    txn.id = nextId++;
    txn.tile = tile;
    txn.addr = addr;
    txn.bytes = bytes;
    txn.write = write;
    inFlight[txn.id] = txn;
    tileLink[tile].push_back(txn);
    uint64_t outstanding = inFlight.size() + completed.size();
    memStats.peakOutstandingTxns =
        std::max(memStats.peakOutstandingTxns, outstanding);
    return txn.id;
}

bool
MemorySystem::consumeCompleted(TxnId id)
{
    auto it = completed.find(id);
    if (it == completed.end() || it->second > cycle)
        return false;
    completed.erase(it);
    return true;
}

bool
MemorySystem::busy() const
{
    return !inFlight.empty();
}

void
MemorySystem::tick()
{
    ++cycle;
    uint64_t progress_before = progressEvents;
    if (mshrOccupancy != nullptr)
        sampleTelemetry();

    // Tile links: move requests to their bank queues within the NoC
    // byte budget of each tile's link.
    for (size_t t = 0; t < tileLink.size(); ++t) {
        tileLinkBudget[t] += sys.nocBytes;
        while (!tileLink[t].empty()) {
            Txn &txn = tileLink[t].front();
            if (tileLinkBudget[t] < txn.bytes)
                break;
            tileLinkBudget[t] -= txn.bytes;
            memStats.nocBytes += txn.bytes;
            banks[bankOf(txn.addr)].queue.push_back(txn);
            tileLink[t].pop_front();
            ++progressEvents;
        }
        // The cap must admit at least one full line even on narrow
        // links, or sub-line bandwidths could never accumulate enough
        // budget to move a transaction.
        tileLinkBudget[t] = std::min(
            tileLinkBudget[t],
            std::max(static_cast<double>(sys.nocBytes),
                     static_cast<double>(config.cacheLineBytes)));
    }

    // L2 banks: service requests within bank bandwidth.
    for (Bank &bank : banks) {
        bank.byteBudget += config.l2BankBandwidthBytes;
        // Expire finished fills so merged requests stop matching.
        for (auto it = bank.fillReady.begin();
             it != bank.fillReady.end();) {
            if (it->second <= cycle) {
                it = bank.fillReady.erase(it);
                --bank.mshrsInUse;
            } else {
                ++it;
            }
        }
        while (!bank.queue.empty()) {
            Txn &txn = bank.queue.front();
            if (bank.byteBudget < txn.bytes)
                break;
            uint64_t line = txn.addr / config.cacheLineBytes;
            auto fill = bank.fillReady.find(line);
            if (fill != bank.fillReady.end()) {
                // MSHR merge: complete with the in-flight fill; the
                // line is already tagged, no extra DRAM traffic.
                ++memStats.l2Hits;
                bank.byteBudget -= txn.bytes;
                completed[txn.id] = fill->second;
                if (txn.write)
                    lookup(bank, txn.addr, true);  // set dirty
                inFlight.erase(txn.id);
                bank.queue.pop_front();
                ++progressEvents;
                continue;
            }
            if (bank.mshrsInUse >= config.l2MshrsPerBank) {
                ++memStats.mshrStallCycles;
                break;
            }
            LookupResult result = lookup(bank, txn.addr, txn.write);
            bank.byteBudget -= txn.bytes;
            if (result.evictedDirty) {
                bank.writebackBytes += config.cacheLineBytes;
            }
            if (result.hit) {
                ++memStats.l2Hits;
                completed[txn.id] = cycle + config.l2HitLatency;
                inFlight.erase(txn.id);
            } else if (txn.write) {
                // Write-allocate, no fetch: the line is established
                // and dirtied; data arrives from the tile.
                ++memStats.l2Misses;
                completed[txn.id] = cycle + config.l2HitLatency;
                inFlight.erase(txn.id);
            } else {
                // Read miss: fetch the line from DRAM.
                ++memStats.l2Misses;
                ++bank.mshrsInUse;
                bank.dramQueue.push_back(txn);
            }
            bank.queue.pop_front();
            ++progressEvents;
        }
        bank.byteBudget = std::min(
            bank.byteBudget,
            std::max(static_cast<double>(config.l2BankBandwidthBytes),
                     static_cast<double>(config.cacheLineBytes)));
    }

    // DRAM channels: drain read fills and dirty writebacks within
    // channel bandwidth.
    for (double &budget : channelBudget)
        budget += config.dramChannelBandwidthBytes;
    for (Bank &bank : banks) {
        while (!bank.dramQueue.empty()) {
            Txn &txn = bank.dramQueue.front();
            double &budget = channelBudget[channelOf(txn.addr)];
            if (budget < config.cacheLineBytes)
                break;
            budget -= config.cacheLineBytes;
            memStats.dramBytesRead += config.cacheLineBytes;
            uint64_t ready =
                cycle + config.l2HitLatency + config.dramLatency;
            completed[txn.id] = ready;
            uint64_t line = txn.addr / config.cacheLineBytes;
            bank.fillReady[line] = ready;  // MSHR held until fill
            inFlight.erase(txn.id);
            bank.dramQueue.pop_front();
            ++progressEvents;
        }
        // Writebacks share the channel bandwidth (channel 0 slice for
        // simplicity of attribution).
        while (bank.writebackBytes > 0) {
            double &budget = channelBudget[bankOf(
                static_cast<uint64_t>(bank.writebackBytes)) %
                                           channelBudget.size()];
            if (budget < config.cacheLineBytes)
                break;
            budget -= config.cacheLineBytes;
            bank.writebackBytes -= config.cacheLineBytes;
            memStats.dramBytesWritten += config.cacheLineBytes;
            ++progressEvents;
        }
    }
    for (double &budget : channelBudget) {
        budget = std::min(
            budget,
            std::max(
                static_cast<double>(config.dramChannelBandwidthBytes),
                static_cast<double>(config.cacheLineBytes)));
    }

    if (progressEvents != progress_before)
        memStats.ledger.add(telemetry::CycleCategory::Busy);
    else
        memStats.ledger.add(classifyStall());
    if (timelineRun != nullptr && cycle % timelineInterval == 0)
        emitTimelineRow();
}

telemetry::CycleCategory
MemorySystem::classifyStall() const
{
    using C = telemetry::CycleCategory;
    // DRAM involvement: fills in flight toward completion (fills and
    // their completion entries are created together, and `completed`
    // is frozen across skipped windows), queued read misses, or
    // pending writebacks — and MSHR-blocked service, which is waiting
    // on a fill to free an MSHR.
    bool dram_work = !completed.empty();
    bool queued = false;
    for (const auto &link : tileLink)
        queued |= !link.empty();
    for (const Bank &bank : banks) {
        if (!bank.dramQueue.empty() || bank.writebackBytes > 0)
            dram_work = true;
        if (!bank.queue.empty()) {
            queued = true;
            // Safe under fast-forward: with a non-empty queue the
            // horizon stops at every fill expiry, so mshrsInUse and
            // the merge window are frozen across the window.
            if (bank.mshrsInUse >= config.l2MshrsPerBank &&
                bank.fillReady.count(bank.queue.front().addr /
                                     config.cacheLineBytes) == 0) {
                dram_work = true;
            }
        }
    }
    if (dram_work)
        return C::DramFill;
    // Requests queued with no DRAM path involvement are waiting on
    // NoC-link or L2-bank service bandwidth.
    if (queued)
        return C::NocContention;
    return C::Idle;
}

void
MemorySystem::emitTimelineRow()
{
    int mshrs = 0;
    int64_t queued = 0;
    for (const Bank &bank : banks) {
        mshrs += bank.mshrsInUse;
        queued += static_cast<int64_t>(bank.queue.size());
    }
    // Hand-formatted compact JSON, keys sorted — same bytes as a
    // Json::dump of the equivalent object, minus the map allocations
    // and snprintf format parsing (per-cycle hot path; see the
    // bench/micro_sim instrumentation-overhead guard).
    std::string &row = timelineRun->beginRow();
    row += "{\"bank_queue_depth\":";
    telemetry::appendDecimal(row, static_cast<uint64_t>(queued));
    row += ",\"comp\":\"memory\",\"cycle\":";
    telemetry::appendDecimal(row, cycle);
    row += ",\"dram_bytes_read\":";
    telemetry::appendDecimal(row, memStats.dramBytesRead);
    row += ",\"dram_bytes_written\":";
    telemetry::appendDecimal(row, memStats.dramBytesWritten);
    row += ",\"l2_hits\":";
    telemetry::appendDecimal(row, memStats.l2Hits);
    row += ",\"l2_misses\":";
    telemetry::appendDecimal(row, memStats.l2Misses);
    row += ",\"ledger\":";
    memStats.ledger.appendCompact(row);
    row += ",\"mshr_stall_cycles\":";
    telemetry::appendDecimal(row, memStats.mshrStallCycles);
    row += ",\"mshrs_in_use\":";
    telemetry::appendDecimal(row, static_cast<uint64_t>(mshrs));
    row += ",\"noc_bytes\":";
    telemetry::appendDecimal(row, memStats.nocBytes);
    row += ",\"outstanding\":";
    telemetry::appendDecimal(row, inFlight.size() + completed.size());
    row += ",\"run\":\"";
    row += timelineRun->label();
    row += "\"}";
    timelineRun->endRow();
}

void
MemorySystem::tick(uint64_t engine_cycle)
{
    tick();
    OG_ASSERT(cycle == engine_cycle, "memory system clock skew: ",
              cycle, " vs engine ", engine_cycle);
}

uint64_t
MemorySystem::budgetReadyCycle(uint64_t now, double budget, double inc,
                               double bytes)
{
    // tick() accrues inc before processing, so the budget visible at
    // cycle now+k is budget + k*inc (the cap never binds below a head
    // that fits under it). First k >= 1 with budget + k*inc >= bytes.
    if (inc <= 0.0)
        return kNoEventCycle;  // starved pipe: never self-wakes
    double deficit = bytes - budget;
    uint64_t k = 1;
    if (deficit > inc)
        k = static_cast<uint64_t>(std::ceil(deficit / inc));
    return now + k;
}

uint64_t
MemorySystem::nextEventCycle(uint64_t now) const
{
    // Interval telemetry sampling (distributions, timeline rows)
    // cannot be replayed in closed form; with a sink or timeline
    // attached, observation degrades to per-cycle ticking.
    if (mshrOccupancy != nullptr || timelineRun != nullptr)
        return now + 1;
    uint64_t ev = kNoEventCycle;
    auto at = [&ev](uint64_t c) { ev = std::min(ev, c); };
    // Tile links: the head moves once the link budget covers it.
    for (size_t t = 0; t < tileLink.size(); ++t)
        if (!tileLink[t].empty())
            at(budgetReadyCycle(now, tileLinkBudget[t], sys.nocBytes,
                                tileLink[t].front().bytes));
    for (const Bank &bank : banks) {
        if (!bank.queue.empty()) {
            const Txn &head = bank.queue.front();
            uint64_t line = head.addr / config.cacheLineBytes;
            bool mergeable = bank.fillReady.count(line) > 0;
            // Service happens at the budget-ready cycle unless the
            // head is MSHR-blocked; an MSHR-blocked head instead
            // waits on a fill expiry (below) while accruing
            // mshrStallCycles, which fastForward replays.
            if (mergeable ||
                bank.mshrsInUse < config.l2MshrsPerBank) {
                at(budgetReadyCycle(now, bank.byteBudget,
                                    config.l2BankBandwidthBytes,
                                    head.bytes));
            }
            // Any fill expiry can change what happens at this bank's
            // head (merge window closing, MSHR freeing): stop there.
            for (const auto &[fill_line, ready] : bank.fillReady)
                at(std::max(ready, now + 1));
        }
        // DRAM fills dispatch when the head's channel budget covers a
        // line; writebacks likewise on their (frozen) channel.
        if (!bank.dramQueue.empty()) {
            int chan = channelOf(bank.dramQueue.front().addr);
            at(budgetReadyCycle(now, channelBudget[chan],
                                config.dramChannelBandwidthBytes,
                                config.cacheLineBytes));
        }
        if (bank.writebackBytes > 0) {
            int chan = bankOf(static_cast<uint64_t>(
                           bank.writebackBytes)) %
                       static_cast<int>(channelBudget.size());
            at(budgetReadyCycle(now, channelBudget[chan],
                                config.dramChannelBandwidthBytes,
                                config.cacheLineBytes));
        }
    }
    // Completions become pollable at their ready cycle.
    for (const auto &[id, ready] : completed)
        at(std::max(ready, now + 1));
    return ev;
}

void
MemorySystem::fastForward(uint64_t from, uint64_t to)
{
    // Skipped windows are quiescent by construction: one closed-form
    // classification of the frozen state covers every skipped cycle
    // (classifyStall never reads the byte budgets updated below).
    memStats.ledger.add(classifyStall(), to - from);
    double k = static_cast<double>(to - from);
    double line = static_cast<double>(config.cacheLineBytes);
    // An MSHR-blocked head counts one stall per skipped tick whose
    // accrued budget would have covered it — exactly what per-cycle
    // ticking does (the break happens before any budget deduction).
    for (Bank &bank : banks) {
        if (bank.queue.empty() ||
            bank.mshrsInUse < config.l2MshrsPerBank)
            continue;
        const Txn &head = bank.queue.front();
        if (bank.fillReady.count(head.addr / config.cacheLineBytes) >
            0)
            continue;  // merge path: no stall accrual
        double inc = config.l2BankBandwidthBytes;
        double bytes = head.bytes;
        uint64_t k0 = 1;
        if (bank.byteBudget < bytes) {
            if (inc <= 0.0)
                continue;  // budget never covers the head: no stalls
            double deficit = bytes - bank.byteBudget;
            if (deficit > inc)
                k0 = static_cast<uint64_t>(std::ceil(deficit / inc));
        }
        uint64_t ticks = to - from;
        if (ticks >= k0)
            memStats.mshrStallCycles += ticks - k0 + 1;
    }
    // Each budget follows b = min(b + inc, cap) per idle tick, so k
    // ticks collapse to min(b + k*inc, cap) — the caps mirror tick().
    for (double &budget : tileLinkBudget)
        budget = std::min(
            budget + k * sys.nocBytes,
            std::max(static_cast<double>(sys.nocBytes), line));
    for (Bank &bank : banks)
        bank.byteBudget = std::min(
            bank.byteBudget + k * config.l2BankBandwidthBytes,
            std::max(static_cast<double>(config.l2BankBandwidthBytes),
                     line));
    for (double &budget : channelBudget)
        budget = std::min(
            budget + k * config.dramChannelBandwidthBytes,
            std::max(
                static_cast<double>(config.dramChannelBandwidthBytes),
                line));
    cycle = to;
}

uint64_t
MemorySystem::quiescenceFingerprint() const
{
    // Excluded on purpose: byte budgets, fillReady/mshrsInUse (expiry
    // is deferred under fast-forward), mshrStallCycles and the cycle
    // ledger (both replayed in closed form by fastForward), and the
    // clock itself.
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    for (const auto &link : tileLink)
        mix(link.size());
    for (const Bank &bank : banks) {
        mix(bank.queue.size());
        mix(bank.dramQueue.size());
        mix(static_cast<uint64_t>(bank.writebackBytes));
    }
    mix(inFlight.size());
    mix(completed.size());
    mix(static_cast<uint64_t>(nextId));
    mix(memStats.l2Hits);
    mix(memStats.l2Misses);
    mix(memStats.dramBytesRead);
    mix(memStats.dramBytesWritten);
    mix(memStats.nocBytes);
    mix(memStats.peakOutstandingTxns);
    return h;
}

void
MemorySystem::describeState(std::string &out) const
{
    out += "memory-system @cycle " + std::to_string(cycle) + ":";
    out += " in_flight=" + std::to_string(inFlight.size());
    out += " awaiting_poll=" + std::to_string(completed.size());
    out += "\n  tile links:";
    for (size_t t = 0; t < tileLink.size(); ++t)
        out += " [" + std::to_string(t) + "]=" +
               std::to_string(tileLink[t].size());
    out += "\n";
    for (size_t b = 0; b < banks.size(); ++b) {
        const Bank &bank = banks[b];
        out += "  bank" + std::to_string(b) +
               ": queue=" + std::to_string(bank.queue.size()) +
               " dram_queue=" + std::to_string(bank.dramQueue.size()) +
               " mshrs=" + std::to_string(bank.mshrsInUse) + "/" +
               std::to_string(config.l2MshrsPerBank) +
               " writeback_bytes=" +
               std::to_string(bank.writebackBytes) + "\n";
    }
}

} // namespace overgen::sim
