#ifndef OVERGEN_SIM_EXEC_H
#define OVERGEN_SIM_EXEC_H

/**
 * @file
 * Execution-support structures of the simulator: the flat address map
 * of a kernel's arrays, the vectorized iteration walker both the
 * compute fabric and the stream engines advance through, and the
 * runtime classification of mDFG streams into delivery disciplines.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dfg/mdfg.h"
#include "workloads/interpreter.h"
#include "workloads/kernelspec.h"

namespace overgen::sim {

class Snapshot;

/** Flat byte-address layout of a kernel's arrays. */
class AddressMap
{
  public:
    /** Lay out all arrays of @p spec, line-aligned. */
    static AddressMap build(const wl::KernelSpec &spec,
                            int line_bytes = 64);

    /** @return base address of @p array. */
    uint64_t base(const std::string &array) const;
    /** @return byte address of element @p index of @p array. */
    uint64_t elementAddress(const wl::KernelSpec &spec,
                            const std::string &array,
                            int64_t index) const;
    /** @return total mapped bytes. */
    uint64_t totalBytes() const { return top; }

  private:
    std::map<std::string, uint64_t> bases;
    uint64_t top = 0;
};

/**
 * Walks a kernel's iteration space in order, vectorized over the
 * innermost loop in chunks of @p unroll, restricted to an outer-loop
 * range [outer_lo, outer_hi) — the per-tile partition (paper §VI-E:
 * all tiles parallelize the same region).
 */
class IterationWalker
{
  public:
    IterationWalker(const wl::KernelSpec &spec, int unroll,
                    int64_t outer_lo, int64_t outer_hi);

    /** @return whether all firings have been consumed. */
    bool done() const { return finished; }
    /** Current firing's loop indices (innermost = chunk start). */
    const std::vector<int64_t> &indices() const { return ivs; }
    /** Iterations covered by the current firing (<= unroll). */
    int count() const { return chunk; }
    /** @return whether this firing starts a new innermost loop pass. */
    bool innerStart() const { return ivs.back() == 0; }
    /** Number of firings consumed so far. */
    int64_t firingIndex() const { return firings; }
    /** Advance to the next firing. */
    void advance();

    /** Append the cursor state (not the spec) to @p snap. */
    void save(Snapshot &snap) const;
    /** Read back a save()d cursor; the walker must have been built
     * over the same spec/unroll/partition. */
    void restore(const Snapshot &snap);

  private:
    void settle();  //!< skip zero-trip positions, compute chunk

    const wl::KernelSpec &spec;
    int unroll;
    int64_t outerHi;
    std::vector<int64_t> ivs;
    int chunk = 0;
    int64_t firings = 0;
    bool finished = false;
};

/** Delivery discipline of a runtime stream. */
enum class StreamKind : uint8_t
{
    Vector,       //!< count (x members) fresh elements per firing
    Stationary,   //!< one fresh element per innermost-loop pass
    ConstantTaps, //!< all elements once, before the first firing
    RecurrenceIn, //!< fed by the recurrence engine
    RecurrenceOut,//!< drained into the recurrence engine
    Generated,    //!< affine value generator
    Register,     //!< scalar drain to the control core
    WriteVector,  //!< count fresh results per firing
    WriteOnce,    //!< one result per firing (reduction store)
};

/** Classify an mDFG stream for the simulator. */
StreamKind classifyStream(const dfg::Mdfg &mdfg, dfg::NodeId id);

/**
 * Elements the stream produces/consumes for a firing with @p count
 * iterations at walker state @p walker. ConstantTaps return 0 (handled
 * out of band).
 */
int64_t elemsForFiring(const dfg::Mdfg &mdfg, dfg::NodeId id,
                       StreamKind kind, const IterationWalker &walker);

} // namespace overgen::sim

#endif // OVERGEN_SIM_EXEC_H
