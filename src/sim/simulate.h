#ifndef OVERGEN_SIM_SIMULATE_H
#define OVERGEN_SIM_SIMULATE_H

/**
 * @file
 * Whole-system simulation entry point: N tiles executing the same
 * scheduled mDFG over a partitioned iteration space, sharing the banked
 * L2 and DRAM (paper Fig. 8, §VI-E execution convention).
 */

#include "sched/schedule.h"
#include "sim/memory_system.h"
#include "sim/snapshot.h"
#include "sim/tile.h"
#include "telemetry/phases.h"

namespace overgen::sim {

/** Result of one simulated kernel execution. */
struct SimResult
{
    bool completed = false;
    /** The deadlock watchdog aborted the run (implies !completed). */
    bool deadlocked = false;
    /** Watchdog diagnostic: the per-component describeState() dump
     * taken at abort time (empty unless deadlocked). */
    std::string diagnostic;
    uint64_t cycles = 0;
    uint64_t totalIterations = 0;
    /** Committed instructions (compute + memory ops) per cycle. */
    double ipc = 0.0;
    /** @name Wall-clock observability (how the engine spent the run;
     * excluded from the bit-identity contract and the counter dump) */
    /// @{
    /** Cycles executed tick-by-tick. */
    uint64_t tickedCycles = 0;
    /** Cycles elided by event-horizon fast-forward. */
    uint64_t skippedCycles = 0;
    /** Cycles covered by memory drain-replay windows (a subset of
     * skippedCycles when fast-forward is on). */
    uint64_t drainedCycles = 0;
    /** Drain-replay windows taken. */
    uint64_t drainJumps = 0;
    /// @}
    MemoryStats memory;
    std::vector<TileStats> tiles;
    /** This run's interval time-series rows (the exact bytes of its
     * TimelineRun; empty unless the sink sampled a timeline).
     * Observability like the ledger: bit-identical across thread
     * counts and engine modes. A resumeFrom() run holds only the rows
     * of boundaries after the checkpoint — concatenating the
     * interrupted run's earlier rows reconstructs the uninterrupted
     * buffer byte-for-byte (see analyzeRunPhases' prefix_rows). */
    std::string timelineRows;
};

/**
 * Phase decomposition of one simulated run: parse @p result's sampled
 * timeline rows (prepending @p prefix_rows, e.g. the pre-checkpoint
 * rows a resumed run did not re-sample), close the series with the
 * run's terminal ledgers so spans sum exactly to result.cycles, and
 * segment (telemetry::analyzePhases). steadyIpc is scaled to the same
 * committed-instruction convention as SimResult::ipc. Works on runs
 * with no sampled rows (single terminal sample, whole run one phase).
 */
telemetry::PhaseProfile
analyzeRunPhases(const SimResult &result,
                 std::string_view prefix_rows = {});

/**
 * Simulate @p mdfg as scheduled on every tile of @p design, sharing
 * @p memory functionally. The outermost loop is partitioned across
 * tiles. @p memory must have been init()ed for @p spec.
 */
SimResult simulate(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
                   const sched::Schedule &schedule,
                   const adg::SysAdg &design, wl::Memory &memory,
                   const SimConfig &config = {});

/**
 * Resume a simulation from a checkpoint @p snap captured by an
 * earlier simulate() run (SimConfig::checkpointEvery +
 * SimConfig::checkpointSink) of the *same* (spec, mdfg, schedule,
 * design, config) inputs. The simulated system is rebuilt exactly as
 * simulate() builds it, every component restores its serialized
 * state, and the engine re-enters its loop at the checkpoint cycle —
 * the returned SimResult is bit-identical to the uninterrupted run
 * (cycles, stats, ledgers, watchdog abort cycles; tickedCycles /
 * skippedCycles continue from the checkpoint's counters).
 *
 * @p memory must have been init()ed for @p spec (array contents are
 * overwritten from the snapshot). Fatal when the snapshot fails its
 * digest check or describes different simulation inputs.
 */
SimResult resumeFrom(const Snapshot &snap, const wl::KernelSpec &spec,
                     const dfg::Mdfg &mdfg,
                     const sched::Schedule &schedule,
                     const adg::SysAdg &design, wl::Memory &memory,
                     const SimConfig &config = {});

/**
 * Digest of the SimConfig fields that shape simulated behavior — the
 * compatibility check between a checkpoint and the configuration it
 * resumes under. Excluded on purpose:
 *  - the engine-mode flags (noFastForward / checkFastForward) and all
 *    telemetry plumbing: results are bit-identical across them, so a
 *    snapshot from a fast-forwarding run may resume under the naive
 *    or checked loop and vice versa;
 *  - maxCycles: the budget only bounds the engine's loop, never the
 *    per-cycle evolution, so a checkpoint from a truncated
 *    probe-horizon run is exactly the state a longer-budget run
 *    passes through — resuming it with more budget simulates only
 *    the unseen suffix (the DSE's incremental evaluation).
 */
uint64_t configDigest(const SimConfig &config);

/**
 * Cycles to reconfigure the fabric with a new spatial bitstream through
 * the D-cache path (paper §VI-B): proportional to the mapped
 * configuration state. Contrast: full-FPGA reflash takes > 1 s.
 */
uint64_t reconfigurationCycles(const sched::Schedule &schedule,
                               const adg::Adg &adg);

} // namespace overgen::sim

#endif // OVERGEN_SIM_SIMULATE_H
