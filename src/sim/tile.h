#ifndef OVERGEN_SIM_TILE_H
#define OVERGEN_SIM_TILE_H

/**
 * @file
 * Cycle-level model of one OverGen tile (paper Fig. 8-10): the control
 * core / stream dispatcher startup, stream engines with stream-table
 * issue (one-hot bypass), port FIFOs, and the dataflow compute fabric.
 * Values move functionally (the fabric evaluates real iterations), so
 * simulation results are verified against the interpreter.
 */

#include <memory>

#include "sched/schedule.h"
#include "sim/exec.h"
#include "sim/memory_system.h"
#include "telemetry/ledger.h"

namespace overgen::telemetry {
class TimelineRun;
} // namespace overgen::telemetry

namespace overgen::sim {

/** Per-tile statistics. */
struct TileStats
{
    uint64_t firings = 0;
    uint64_t iterations = 0;
    uint64_t fabricStallCycles = 0;
    uint64_t startupCycles = 0;
    uint64_t spadBytes = 0;
    uint64_t dmaBytes = 0;
    uint64_t recurrenceBytes = 0;
    uint64_t finishCycle = 0;
    /** Where every clocked cycle went (always on; bit-identical with
     * fast-forward on or off — see telemetry/ledger.h). */
    telemetry::CycleLedger ledger;
};

/** One tile executing a scheduled mDFG over an outer-loop partition. */
class TileSim : public ClockedComponent
{
  public:
    /** @p trace_pid identifies the enclosing simulate() run in the
     * trace when `config.sink` is live (see telemetry/trace.h). */
    TileSim(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
            const sched::Schedule &schedule, const adg::Adg &adg,
            const AddressMap &addresses, wl::Memory &memory,
            MemorySystem &memsys, int tile_index, int64_t outer_lo,
            int64_t outer_hi, const SimConfig &config,
            int trace_pid = 0);
    ~TileSim();

    /** Advance one cycle. @p cycle is the global cycle count. */
    void tick(uint64_t cycle) override;

    /** @name ClockedComponent (see src/sim/engine.h) */
    /// @{
    uint64_t nextEventCycle(uint64_t now) const override;
    void fastForward(uint64_t from, uint64_t to) override;
    uint64_t progressCount() const override;
    uint64_t quiescenceFingerprint() const override;
    void describeState(std::string &out) const override;
    /** Serialize all runtime state: port FIFOs and arrival rings,
     * stream/engine cursors, in-flight transactions (stream pointers
     * as indices), the fabric walker, stats and ledger. */
    void save(Snapshot &snap) const override;
    void restore(const Snapshot &snap) override;
    /// @}

    /** @return whether all work (including drains) has retired. */
    bool done() const;

    /**
     * Stream interval time-series rows for this tile into @p run
     * every @p interval cycles (requires a live `config.sink`, whose
     * presence already degrades the horizon to per-cycle ticking).
     */
    void attachTimeline(telemetry::TimelineRun *run,
                        uint64_t interval);

    /** @return statistics. */
    const TileStats &stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_TILE_H
