#ifndef OVERGEN_SIM_SNAPSHOT_H
#define OVERGEN_SIM_SNAPSHOT_H

/**
 * @file
 * Serialized simulator state. A Snapshot is a tagged byte stream each
 * ClockedComponent appends its state to (save) and later reads back in
 * the same order (restore), finished with a salted FNV digest so a
 * restore can prove it is looking at an intact image of the same run.
 *
 * The format is deliberately simple rather than general:
 *  - every value carries a one-byte type tag, so a component whose
 *    save/restore drift out of sync fails loudly at the first
 *    misaligned read instead of silently reinterpreting bytes;
 *  - sections are named markers (expectSection checks the name), one
 *    per component, bracketing drift to the component that caused it;
 *  - seal() computes a double-salted FNV-1a digest over the payload;
 *    verify() recomputes it, catching truncation and bit corruption.
 *
 * Snapshots are taken by SimEngine at quiescent checkpoint sites (see
 * SimConfig::checkpointEvery) and consumed by sim::resumeFrom, which
 * is bit-identical to the uninterrupted run — see DESIGN.md
 * "Snapshots and incremental evaluation".
 */

#include <cstdint>
#include <string>
#include <vector>

namespace overgen::sim {

/** A sealed, digest-protected image of one simulation's state. */
class Snapshot
{
  public:
    /** @name Writing (append-only until seal()) */
    /// @{
    void putU64(uint64_t v) { putRaw(kTagU64, v); }
    void putI64(int64_t v)
    {
        putRaw(kTagI64, static_cast<uint64_t>(v));
    }
    /** Doubles round-trip through their bit pattern: budgets stay on
     * exact values, so restore must reproduce the same bits. */
    void putDouble(double v);
    void putBool(bool v) { putRaw(kTagBool, v ? 1 : 0); }
    void putString(const std::string &s);
    /** Start a named section (one per component). */
    void beginSection(const std::string &name);
    /** Close the payload and compute the salted digest. */
    void seal();
    /// @}

    /** @name Reading (sequential, in write order) */
    /// @{
    /** Reset the read cursor to the first value. */
    void rewind() const { rpos = 0; }
    uint64_t getU64() const { return getRaw(kTagU64); }
    int64_t getI64() const
    {
        return static_cast<int64_t>(getRaw(kTagI64));
    }
    double getDouble() const;
    bool getBool() const { return getRaw(kTagBool) != 0; }
    std::string getString() const;
    /** Read a section marker; fatal when the name differs. */
    void expectSection(const std::string &name) const;
    /// @}

    /** @return whether the payload matches the sealed digest (false
     * for unsealed, truncated, or corrupted snapshots). */
    bool verify() const;

    /** @return the sealed digest (salted; fatal when unsealed). */
    uint64_t digest() const;

    /** @return payload size in bytes. */
    size_t sizeBytes() const { return payload.size(); }

    /** @name Transport (serve-layer persistence, fault injection) */
    /// @{
    /** Encode the sealed snapshot (header + digest + payload). */
    std::vector<uint8_t> encode() const;
    /** Decode an encode() image. @return false on a malformed header
     * or digest mismatch. */
    static bool decode(const std::vector<uint8_t> &bytes,
                       Snapshot &out);
    /// @}

  private:
    static constexpr uint8_t kTagU64 = 'Q';
    static constexpr uint8_t kTagI64 = 'q';
    static constexpr uint8_t kTagDouble = 'd';
    static constexpr uint8_t kTagBool = 'b';
    static constexpr uint8_t kTagString = 's';
    static constexpr uint8_t kTagSection = 'S';

    void putRaw(uint8_t tag, uint64_t v);
    uint64_t getRaw(uint8_t tag) const;
    void putBytes(uint8_t tag, const std::string &s);
    std::string getBytes(uint8_t tag) const;

    std::vector<uint8_t> payload;
    bool sealed = false;
    /** Double-salted FNV-1a over the payload (two independent salts:
     * a single 64-bit FNV can collide under adversarial edits; two
     * salted passes make an accidental pass astronomically unlikely). */
    uint64_t digestLo = 0;
    uint64_t digestHi = 0;
    mutable size_t rpos = 0;
};

/**
 * Receiver of engine checkpoints (SimConfig::checkpointSink). The
 * engine moves each sealed snapshot in; the sink owns it afterwards.
 */
class SnapshotSink
{
  public:
    virtual ~SnapshotSink() = default;
    /** @p cycle is the checkpoint's cycle (snapshot start-of-cycle
     * state); the snapshot is sealed. */
    virtual void accept(uint64_t cycle, Snapshot &&snap) = 0;
};

/** A SnapshotSink that keeps only the most recent checkpoint (what a
 * resumable consumer wants: older checkpoints are strictly dominated). */
class LatestSnapshotSink : public SnapshotSink
{
  public:
    void
    accept(uint64_t at, Snapshot &&snap) override
    {
        cycle = at;
        latest = std::move(snap);
        taken = true;
    }

    bool hasSnapshot() const { return taken; }

    uint64_t cycle = 0;
    Snapshot latest;

  private:
    bool taken = false;
};

/** A SnapshotSink that keeps every checkpoint, in capture order. */
class SnapshotCollector : public SnapshotSink
{
  public:
    void
    accept(uint64_t cycle, Snapshot &&snap) override
    {
        cycles.push_back(cycle);
        snaps.push_back(std::move(snap));
    }

    std::vector<uint64_t> cycles;
    std::vector<Snapshot> snaps;
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_SNAPSHOT_H
