#include "sim/exec.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/snapshot.h"

namespace overgen::sim {

AddressMap
AddressMap::build(const wl::KernelSpec &spec, int line_bytes)
{
    AddressMap map;
    for (const wl::ArraySpec &array : spec.arrays) {
        map.bases[array.name] = map.top;
        uint64_t bytes = static_cast<uint64_t>(array.sizeBytes());
        uint64_t lines =
            (bytes + line_bytes - 1) / line_bytes;
        map.top += (lines + 1) * line_bytes;  // pad a guard line
    }
    return map;
}

uint64_t
AddressMap::base(const std::string &array) const
{
    auto it = bases.find(array);
    OG_ASSERT(it != bases.end(), "unmapped array '", array, "'");
    return it->second;
}

uint64_t
AddressMap::elementAddress(const wl::KernelSpec &spec,
                           const std::string &array,
                           int64_t index) const
{
    return base(array) +
           static_cast<uint64_t>(index) *
               dataTypeBytes(spec.arrayByName(array).type);
}

IterationWalker::IterationWalker(const wl::KernelSpec &spec, int unroll,
                                 int64_t outer_lo, int64_t outer_hi)
    : spec(spec), unroll(std::max(1, unroll)), outerHi(outer_hi),
      ivs(spec.loops.size(), 0)
{
    OG_ASSERT(!spec.loops.empty(), "kernel without loops");
    ivs[0] = outer_lo;
    if (outer_lo >= outer_hi) {
        finished = true;
        return;
    }
    settle();
}

void
IterationWalker::settle()
{
    // Ensure the current position is valid: every loop index within
    // its trip; on overflow carry outward. Zero-trip inner loops skip.
    size_t depth = spec.loops.size();
    while (true) {
        bool carried = false;
        for (size_t d = 1; d < depth; ++d) {
            int64_t trip = wl::loopTrip(spec, d, ivs);
            if (ivs[d] >= trip) {
                // Carry into the next outer loop.
                for (size_t e = d; e < depth; ++e)
                    ivs[e] = 0;
                ++ivs[d - 1];
                carried = true;
                break;
            }
        }
        if (!carried)
            break;
        if (ivs[0] >= outerHi) {
            finished = true;
            return;
        }
    }
    if (ivs[0] >= outerHi) {
        finished = true;
        return;
    }
    // Inner loops with zero trip: advance until some work exists.
    int64_t inner_trip = wl::loopTrip(spec, depth - 1, ivs);
    // Single-loop kernels: the vectorized loop is also the partition
    // axis, so the chunk may not cross the tile boundary.
    if (depth == 1)
        inner_trip = std::min(inner_trip, outerHi);
    while (inner_trip <= 0) {
        // Treat as a completed innermost pass: carry.
        ivs[depth - 1] = 0;
        if (depth >= 2) {
            ++ivs[depth - 2];
        } else {
            finished = true;
            return;
        }
        size_t d = depth;
        while (true) {
            bool carried = false;
            for (size_t e = 1; e < d; ++e) {
                int64_t trip = wl::loopTrip(spec, e, ivs);
                if (ivs[e] >= trip) {
                    for (size_t f = e; f < d; ++f)
                        ivs[f] = 0;
                    ++ivs[e - 1];
                    carried = true;
                    break;
                }
            }
            if (!carried)
                break;
        }
        if (ivs[0] >= outerHi) {
            finished = true;
            return;
        }
        inner_trip = wl::loopTrip(spec, depth - 1, ivs);
    }
    chunk = static_cast<int>(
        std::min<int64_t>(unroll, inner_trip - ivs[depth - 1]));
}

void
IterationWalker::save(Snapshot &snap) const
{
    snap.putU64(ivs.size());
    for (int64_t iv : ivs)
        snap.putI64(iv);
    snap.putI64(chunk);
    snap.putI64(firings);
    snap.putBool(finished);
}

void
IterationWalker::restore(const Snapshot &snap)
{
    uint64_t n = snap.getU64();
    OG_ASSERT(n == ivs.size(), "walker depth mismatch: snapshot has ",
              n, " loops, walker ", ivs.size());
    for (int64_t &iv : ivs)
        iv = snap.getI64();
    chunk = static_cast<int>(snap.getI64());
    firings = snap.getI64();
    finished = snap.getBool();
}

void
IterationWalker::advance()
{
    OG_ASSERT(!finished, "advance past end");
    ++firings;
    size_t depth = spec.loops.size();
    ivs[depth - 1] += chunk;
    if (depth == 1) {
        int64_t limit =
            std::min(wl::loopTrip(spec, 0, ivs), outerHi);
        if (ivs[0] >= limit) {
            finished = true;
            return;
        }
        settle();
        return;
    }
    int64_t inner_trip = wl::loopTrip(spec, depth - 1, ivs);
    if (ivs[depth - 1] >= inner_trip) {
        ivs[depth - 1] = 0;
        ++ivs[depth - 2];
    }
    settle();
}

StreamKind
classifyStream(const dfg::Mdfg &mdfg, dfg::NodeId id)
{
    const dfg::Node &node = mdfg.node(id);
    const dfg::StreamNode &stream = node.stream;
    bool input = node.kind == dfg::NodeKind::InputStream;
    switch (stream.source) {
      case dfg::StreamSource::Recurrence:
        return input ? StreamKind::RecurrenceIn
                     : StreamKind::RecurrenceOut;
      case dfg::StreamSource::Generated:
        return StreamKind::Generated;
      case dfg::StreamSource::Register:
        return StreamKind::Register;
      case dfg::StreamSource::Memory:
        break;
    }
    if (!input) {
        // Reduction stores (inner coefficient zero) retire one value
        // per firing; everything else retires per-lane.
        return stream.pattern.stride[0] == 0 ? StreamKind::WriteOnce
                                             : StreamKind::WriteVector;
    }
    if (stream.specAccesses.size() > 1 && stream.pattern.stride[0] == 0)
        return StreamKind::ConstantTaps;
    if (stream.lanes == 1 && stream.reuse.stationary > 1.0)
        return StreamKind::Stationary;
    if (stream.pattern.stride[0] == 0 && stream.lanes == 1)
        return StreamKind::Stationary;
    return StreamKind::Vector;
}

int64_t
elemsForFiring(const dfg::Mdfg &mdfg, dfg::NodeId id, StreamKind kind,
               const IterationWalker &walker)
{
    const dfg::StreamNode &stream = mdfg.node(id).stream;
    int64_t count = walker.count();
    switch (kind) {
      case StreamKind::Vector:
      case StreamKind::Generated: {
        // Coalesced streams carry `members` values per iteration.
        int64_t members = std::max<size_t>(
            stream.specAccesses.size(), 1);
        // Overlap-merged streams deliver one fresh element per
        // iteration (window reuse holds the rest).
        if (members > 1 && stream.pattern.stride[0] == 1)
            members = 1;
        return count * members;
      }
      case StreamKind::Stationary:
        return walker.innerStart() ? 1 : 0;
      case StreamKind::ConstantTaps:
        return 0;  // delivered once, out of band
      case StreamKind::RecurrenceIn:
      case StreamKind::RecurrenceOut:
      case StreamKind::WriteVector:
        return count;
      case StreamKind::Register:
      case StreamKind::WriteOnce:
        return 1;
    }
    OG_PANIC("unknown stream kind");
}

} // namespace overgen::sim
