#include "sim/batch.h"

#include "common/logging.h"
#include "workloads/interpreter.h"

namespace overgen::sim {

std::vector<SimResult>
runBatch(const std::vector<SimJob> &jobs, const BatchOptions &options)
{
    auto run_one = [&jobs](size_t i) -> SimResult {
        const SimJob &job = jobs[i];
        OG_ASSERT(job.spec != nullptr && job.mdfg != nullptr &&
                      job.schedule != nullptr && job.design != nullptr,
                  "incomplete SimJob at index ", i);
        if (job.memory != nullptr) {
            return simulate(*job.spec, *job.mdfg, *job.schedule,
                            *job.design, *job.memory, job.config);
        }
        wl::Memory memory;
        memory.init(*job.spec);
        return simulate(*job.spec, *job.mdfg, *job.schedule,
                        *job.design, memory, job.config);
    };
    if (options.pool != nullptr)
        return options.pool->parallelMap(jobs.size(), run_one);
    ThreadPool pool(options.threads);
    return pool.parallelMap(jobs.size(), run_one);
}

} // namespace overgen::sim
