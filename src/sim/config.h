#ifndef OVERGEN_SIM_CONFIG_H
#define OVERGEN_SIM_CONFIG_H

/**
 * @file
 * Technology and microarchitecture constants of the cycle-level system
 * simulator (the stand-in for FPGA execution — see DESIGN.md
 * "Substitutions"). Latencies are in overlay cycles at the ~93 MHz
 * fabric clock of the paper's quad-tile floorplan.
 */

#include <cstdint>
#include <string>

namespace overgen::telemetry {
class Sink;
} // namespace overgen::telemetry

namespace overgen::sim {

class SnapshotSink;

/** Simulator configuration. */
struct SimConfig
{
    /** @name Shared memory system */
    /// @{
    int cacheLineBytes = 64;
    /** L2 hit latency (request + response, including NoC pipeline). */
    int l2HitLatency = 18;
    /** Associativity of each L2 bank. */
    int l2Ways = 8;
    /** MSHRs per L2 bank (sized for the latency-bandwidth product of
     * the DRAM path). */
    int l2MshrsPerBank = 32;
    /** Extra DRAM latency on an L2 miss. */
    int dramLatency = 60;
    /** DRAM bandwidth per channel (bytes/cycle at the ~93 MHz overlay
     * clock; DDR4 ~18 GB/s). */
    int dramChannelBandwidthBytes = 192;
    /** L2 bank bandwidth (bytes/cycle per bank). */
    int l2BankBandwidthBytes = 32;
    /// @}

    /** @name Stream dispatcher (paper §VI-B) */
    /// @{
    /** Cycles per stream-parameter configuration write. */
    int configCyclesPerStream = 1;
    /** Minimum RISC-V-to-dispatch latency (config + dispatch). */
    int dispatchLatency = 2;
    /** Extra pipeline stages on the dispatch bus (paper §VI-D
     * "conservative pipeline" for die-crossing timing). */
    int dispatchBusStages = 2;
    /// @}

    /** @name Stream engines (paper §VI-C) */
    /// @{
    /** Scratchpad access latency. */
    int spadLatency = 2;
    /** One-hot stream-table bypass (paper Fig. 11): when off, a lone
     * active stream issues every other cycle. */
    bool oneHotBypass = true;
    /** Latency of the recurrence forwarding path. */
    int recurrenceLatency = 3;
    /// @}

    /** Fabric pipeline drain allowance before declaring deadlock. */
    uint64_t maxCycles = 200'000'000ull;

    /** @name Simulation engine (see DESIGN.md "SimEngine and
     * event-horizon fast-forward") */
    /// @{
    /** Tick every component every cycle (the reference loop) instead
     * of event-horizon fast-forwarding provably dead cycles. Results
     * are bit-identical either way; this is the A/B and debugging
     * path (`--no-fast-forward` in the benches). */
    bool noFastForward = false;
    /** Debug mode: compute horizons as usual but execute the skipped
     * cycles anyway, asserting each one was genuinely quiescent
     * (no progress, frozen fingerprints). Much slower; test-only. */
    bool checkFastForward = false;
    /** Watchdog: abort with a per-component diagnostic dump when no
     * component makes forward progress for this many cycles
     * (0 disables). Real stall windows top out around the DRAM
     * round-trip (~100 cycles), so the default only fires on genuine
     * deadlocks — long before the maxCycles spin would end. */
    uint64_t deadlockCycles = 2'000'000ull;
    /// @}

    /** @name Checkpointing (see DESIGN.md "Snapshots and incremental
     * evaluation") */
    /// @{
    /** Capture a full-state snapshot whenever this many cycles have
     * elapsed since the last one (0 disables). Sites fall on executed
     * tick or post-horizon-jump boundaries, so a long stall window is
     * checkpointed once at its far edge, never inside. Checkpoints
     * only observe state — results are bit-identical with
     * checkpointing on or off. */
    uint64_t checkpointEvery = 0;
    /** Receiver of captured snapshots (`--checkpoint-every` in the
     * benches wires a collector). Null disables capture even when
     * checkpointEvery is set. Not owned. */
    SnapshotSink *checkpointSink = nullptr;
    /// @}

    /**
     * Telemetry sink (counters + Chrome trace). Null disables all
     * observation: instrumentation sites guard on this pointer and
     * never affect simulated behavior either way.
     */
    telemetry::Sink *sink = nullptr;

    /**
     * Timeline run label (`"run"` in interval time-series rows).
     * Empty uses the kernel name; batch drivers set a unique
     * "<index>:<kernel>" so runs serialize in a deterministic order
     * for every `--sim-threads` value.
     */
    std::string runLabel;
};

} // namespace overgen::sim

#endif // OVERGEN_SIM_CONFIG_H
