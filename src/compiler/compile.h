#ifndef OVERGEN_COMPILER_COMPILE_H
#define OVERGEN_COMPILER_COMPILE_H

/**
 * @file
 * The decoupled-spatial compiler: lowers a KernelSpec to memory-enhanced
 * dataflow graphs. Pre-generates a family of variants at different
 * transformation aggressiveness (unroll degree, recurrence-vs-memory
 * accumulation) so the DSE never recompiles from scratch (paper §V-A),
 * and performs the idiomatic transformations of §VI/Q2: coalescing of
 * adjacent strided accesses, overlapped-window reuse, and recurrence
 * substitution for accumulations.
 */

#include <vector>

#include "dfg/mdfg.h"
#include "workloads/kernelspec.h"

namespace overgen::compiler {

/** Compilation options. */
struct CompileOptions
{
    /** Apply the kernel's OverGen source tuning (paper Q2). */
    bool applyTuning = false;
    /** Override the kernel's maximum unroll (0 = use the spec's). */
    int maxUnroll = 0;
    /** Allow the recurrence-engine transformation for accumulations. */
    bool allowRecurrence = true;
};

/**
 * Compile one variant at a fixed transformation point.
 *
 * @param spec            the workload
 * @param unroll          data-parallel unroll of the innermost loop
 *                        (must divide its trip count)
 * @param use_recurrence  map recurrent read/write pairs to the
 *                        recurrence engine instead of memory streams
 * @param tuned           apply OverGen source tuning
 */
dfg::Mdfg compileOne(const wl::KernelSpec &spec, int unroll,
                     bool use_recurrence, bool tuned);

/**
 * Pre-generate the variant family for DSE, most aggressive first. The
 * scheduler walks the list until one maps ("relax DFG complexity",
 * paper Fig. 3).
 */
std::vector<dfg::Mdfg> compileVariants(const wl::KernelSpec &spec,
                                       const CompileOptions &options = {});

} // namespace overgen::compiler

#endif // OVERGEN_COMPILER_COMPILE_H
