#ifndef OVERGEN_COMPILER_REUSE_H
#define OVERGEN_COMPILER_REUSE_H

/**
 * @file
 * Compiler reuse analysis (paper §IV-B): computes, per access, the data
 * traffic, the footprint (joined memory bounds over the loop nest), and
 * which reuse is captured structurally — stationary reuse at the port
 * FIFO and recurrent reuse between read/write stream pairs.
 */

#include <optional>

#include "dfg/mdfg.h"
#include "workloads/kernelspec.h"

namespace overgen::compiler {

/** Result of analyzing one access of a kernel. */
struct AccessAnalysis
{
    /** Total element uses over the region (product of trip counts). */
    int64_t trafficElements = 0;
    /** Distinct elements touched (affine range join; whole array for
     * indirect accesses under the uniform-distribution assumption). */
    int64_t footprintElements = 0;
    /** Stationary reuse factor: innermost trip when the innermost
     * coefficient is zero, else 1. */
    int64_t stationary = 1;
    /** Matching write/read access forming a recurrent pair, if any. */
    std::optional<int> recurrentPeer;
    /** Recurrence count: trip of the outermost zero-coefficient loop
     * spanned by the pair (1 = none). */
    int64_t recurrentTrips = 1;
    /** Concurrent in-flight instances a recurrence would need to buffer
     * (product of inner nonzero-coefficient trips). */
    int64_t recurrentConcurrency = 1;
};

/** Analyze access @p access_index of @p spec. */
AccessAnalysis analyzeAccess(const wl::KernelSpec &spec, int access_index);

/**
 * @return the dfg::ReuseInfo for this access, combining the analysis
 * with element size (annotations the compiler places on stream nodes,
 * Fig. 5). @p use_recurrence selects whether the recurrent pair will be
 * mapped to the recurrence engine (affects captured reuse).
 */
dfg::ReuseInfo toReuseInfo(const wl::KernelSpec &spec, int access_index,
                           const AccessAnalysis &analysis,
                           bool use_recurrence);

/**
 * General-reuse factor (traffic / footprint) of an array over all its
 * accesses: drives the scratchpad-placement decision (paper §IV-A).
 */
double arrayGeneralReuse(const wl::KernelSpec &spec,
                         const std::string &array_name);

} // namespace overgen::compiler

#endif // OVERGEN_COMPILER_REUSE_H
