#include "compiler/reuse.h"

#include <algorithm>

#include "common/logging.h"

namespace overgen::compiler {

namespace {

/** Upper-bound trip count of loop @p depth (base trip for affine). */
int64_t
maxTrip(const wl::KernelSpec &spec, size_t depth)
{
    return std::max<int64_t>(spec.loops[depth].tripBase, 1);
}

} // namespace

AccessAnalysis
analyzeAccess(const wl::KernelSpec &spec, int access_index)
{
    const wl::AccessSpec &access = spec.accesses[access_index];
    AccessAnalysis out;

    // Traffic: one use per iteration of the whole nest (paper §IV-B:
    // "data traffic is computed by multiplying all loop trip counts").
    out.trafficElements = 1;
    for (size_t d = 0; d < spec.loops.size(); ++d)
        out.trafficElements *= maxTrip(spec, d);

    if (access.indirect()) {
        // Uniform-distribution assumption: footprint = whole array.
        out.footprintElements = spec.arrayByName(access.array).elements;
    } else {
        // Footprint: join of bounds touched by each loop. With
        // non-negative spans: sum |coeff| * (trip-1) + 1.
        int64_t span = 0;
        for (size_t d = 0; d < access.coeffs.size() &&
                           d < spec.loops.size(); ++d) {
            span += std::abs(access.coeffs[d]) * (maxTrip(spec, d) - 1);
        }
        out.footprintElements = span + 1;
    }

    // Stationary reuse: the innermost loop does not move the pointer.
    size_t inner = spec.loops.size() - 1;
    int64_t inner_coeff =
        inner < access.coeffs.size() ? access.coeffs[inner] : 0;
    if (!access.indirect() && inner_coeff == 0 && spec.loops.size() > 1)
        out.stationary = maxTrip(spec, inner);

    // Recurrent reuse: a read/write pair over the same array with
    // identical affine functions, reused across some zero-coefficient
    // loop (paper §IV-B "Recurrent Reuse").
    if (!access.indirect()) {
        for (size_t other = 0; other < spec.accesses.size(); ++other) {
            if (static_cast<int>(other) == access_index)
                continue;
            const wl::AccessSpec &peer = spec.accesses[other];
            if (peer.array != access.array ||
                peer.isWrite == access.isWrite || peer.indirect()) {
                continue;
            }
            if (peer.coeffs != access.coeffs ||
                peer.offset != access.offset) {
                continue;
            }
            // Find the outermost loop with zero coefficient that has
            // at least one inner loop with nonzero coefficient: the
            // recurrence distance loop.
            for (size_t d = 0; d < spec.loops.size(); ++d) {
                int64_t coeff =
                    d < access.coeffs.size() ? access.coeffs[d] : 0;
                if (coeff != 0)
                    continue;
                int64_t concurrency = 1;
                bool inner_moves = false;
                for (size_t e = d + 1; e < spec.loops.size(); ++e) {
                    int64_t ce =
                        e < access.coeffs.size() ? access.coeffs[e] : 0;
                    if (ce != 0) {
                        inner_moves = true;
                        concurrency *= maxTrip(spec, e);
                    }
                }
                if (inner_moves && maxTrip(spec, d) > 1) {
                    out.recurrentPeer = static_cast<int>(other);
                    out.recurrentTrips = maxTrip(spec, d);
                    out.recurrentConcurrency = concurrency;
                    break;
                }
            }
            if (out.recurrentPeer)
                break;
        }
    }
    return out;
}

dfg::ReuseInfo
toReuseInfo(const wl::KernelSpec &spec, int access_index,
            const AccessAnalysis &analysis, bool use_recurrence)
{
    const wl::AccessSpec &access = spec.accesses[access_index];
    int elem_bytes = dataTypeBytes(spec.arrayByName(access.array).type);
    dfg::ReuseInfo info;
    info.trafficBytes =
        static_cast<double>(analysis.trafficElements) * elem_bytes;
    info.footprintBytes =
        static_cast<double>(analysis.footprintElements) * elem_bytes;
    info.stationary = static_cast<double>(analysis.stationary);
    info.recurrent =
        (use_recurrence && analysis.recurrentPeer)
            ? static_cast<double>(analysis.recurrentTrips)
            : 1.0;
    if (analysis.recurrentPeer)
        info.recurrentConcurrency = analysis.recurrentConcurrency;
    return info;
}

double
arrayGeneralReuse(const wl::KernelSpec &spec,
                  const std::string &array_name)
{
    double traffic = 0.0;
    double footprint = 0.0;
    for (size_t i = 0; i < spec.accesses.size(); ++i) {
        if (spec.accesses[i].array != array_name)
            continue;
        AccessAnalysis analysis = analyzeAccess(spec,
                                                static_cast<int>(i));
        // The stationary-captured portion of traffic provides no extra
        // benefit from a scratchpad (paper §IV-A): discount it.
        traffic += static_cast<double>(analysis.trafficElements) /
                   static_cast<double>(analysis.stationary);
        footprint = std::max(
            footprint, static_cast<double>(analysis.footprintElements));
    }
    if (footprint <= 0.0)
        return 1.0;
    return std::max(traffic / footprint, 1.0);
}

} // namespace overgen::compiler
