#include "compiler/compile.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "compiler/reuse.h"

namespace overgen::compiler {

namespace {

using dfg::Mdfg;
using dfg::StreamSource;
using wl::AccessSpec;
using wl::KernelSpec;

/** A cluster of read accesses that lower to one input stream. */
struct ReadCluster
{
    std::vector<int> members;  //!< access indices, sorted by offset
    enum class Kind : uint8_t {
        Plain,        //!< one access, one stream
        Coalesced,    //!< stride-s group covering offsets 0..s-1
        OverlapMerge, //!< tuned window taps sharing overlapped data
        ConstantTaps, //!< all-zero-coefficient taps, read once
        Separate,     //!< same key but must stay separate streams
    } kind = Kind::Plain;
};

/** Key identifying accesses that may share a stream. */
struct ClusterKey
{
    std::string array;
    std::vector<int64_t> coeffs;
    std::string indexArray;

    bool
    operator<(const ClusterKey &other) const
    {
        if (array != other.array)
            return array < other.array;
        if (coeffs != other.coeffs)
            return coeffs < other.coeffs;
        return indexArray < other.indexArray;
    }
};

int64_t
innerCoeff(const KernelSpec &spec, const AccessSpec &access)
{
    size_t inner = spec.loops.size() - 1;
    return inner < access.coeffs.size() ? access.coeffs[inner] : 0;
}

bool
allZeroCoeffs(const AccessSpec &access)
{
    return std::all_of(access.coeffs.begin(), access.coeffs.end(),
                       [](int64_t c) { return c == 0; });
}

/**
 * Build the stream access pattern from an access: up to the 3 innermost
 * loops become pattern dimensions (innermost first); outer loops repeat
 * the pattern and only influence traffic, which the reuse annotations
 * already capture.
 */
dfg::AffinePattern
buildPattern(const KernelSpec &spec, const AccessSpec &access, int unroll)
{
    dfg::AffinePattern pattern;
    int dims = std::min<int>(3, static_cast<int>(spec.loops.size()));
    pattern.dims = dims;
    int loop_count = static_cast<int>(spec.loops.size());
    for (int d = 0; d < dims; ++d) {
        int loop = loop_count - 1 - d;  // innermost first
        pattern.stride[d] =
            loop < static_cast<int>(access.coeffs.size())
                ? access.coeffs[loop]
                : 0;
        pattern.trips[d] = std::max<int64_t>(
            spec.loops[loop].tripBase, 1);
    }
    if (unroll > 1 && pattern.trips[0] >= unroll)
        pattern.trips[0] /= unroll;
    return pattern;
}

/** Per-variant compilation state. */
class VariantBuilder
{
  public:
    VariantBuilder(const KernelSpec &spec, int unroll, bool use_recurrence,
                   bool tuned)
        : spec(spec), unroll(unroll), useRecurrence(use_recurrence),
          tuned(tuned)
    {
    }

    Mdfg
    build()
    {
        mdfg.kernelName = spec.name;
        mdfg.name = spec.name + "_u" + std::to_string(unroll);
        if (useRecurrence)
            mdfg.name += "_rec";
        if (tuned)
            mdfg.name += "_t";
        mdfg.unrollFactor = unroll;
        mdfg.usesRecurrence = useRecurrence;
        mdfg.tuned = tuned;

        analyzeAll();
        buildReadStreams();
        buildInstructions();
        buildWriteStreams();
        attachArrays();

        std::string err = mdfg.validate();
        OG_ASSERT(err.empty(), "compiled mDFG '", mdfg.name,
                  "' invalid: ", err);
        return std::move(mdfg);
    }

  private:
    void
    analyzeAll()
    {
        analyses.reserve(spec.accesses.size());
        for (size_t i = 0; i < spec.accesses.size(); ++i)
            analyses.push_back(analyzeAccess(spec,
                                             static_cast<int>(i)));
    }

    /** Whether coalescing of strided groups is permitted (paper Q2:
     * variable-trip kernels need the peeling tune first). */
    bool
    coalescingAllowed() const
    {
        return !spec.patterns.variableTripCount || tuned;
    }

    void
    buildReadStreams()
    {
        // Cluster reads by (array, coeffs, index array).
        std::map<ClusterKey, std::vector<int>> groups;
        for (size_t i = 0; i < spec.accesses.size(); ++i) {
            const AccessSpec &access = spec.accesses[i];
            if (access.isWrite)
                continue;
            // Recurrence-mapped reads stay alone.
            if (useRecurrence && analyses[i].recurrentPeer) {
                makeRecurrenceRead(static_cast<int>(i));
                continue;
            }
            groups[{ access.array, access.coeffs, access.indexArray }]
                .push_back(static_cast<int>(i));
        }

        for (auto &[key, members] : groups) {
            std::sort(members.begin(), members.end(),
                      [&](int a, int b) {
                          return spec.accesses[a].offset <
                                 spec.accesses[b].offset;
                      });
            emitCluster(classify(key, members));
        }
    }

    ReadCluster
    classify(const ClusterKey &key, const std::vector<int> &members)
    {
        ReadCluster cluster;
        cluster.members = members;
        const AccessSpec &first = spec.accesses[members[0]];
        if (members.size() == 1) {
            cluster.kind = ReadCluster::Kind::Plain;
            return cluster;
        }
        if (!key.indexArray.empty()) {
            cluster.kind = ReadCluster::Kind::Separate;
            return cluster;
        }
        if (allZeroCoeffs(first)) {
            cluster.kind = ReadCluster::Kind::ConstantTaps;
            return cluster;
        }
        int64_t stride = std::abs(innerCoeff(spec, first));
        if (stride == static_cast<int64_t>(members.size()) &&
            coalescingAllowed()) {
            // Offsets must tile the stride: base, base+1, ..., base+s-1.
            bool tiles = true;
            for (size_t m = 1; m < members.size(); ++m) {
                if (spec.accesses[members[m]].offset !=
                    spec.accesses[members[0]].offset +
                        static_cast<int64_t>(m)) {
                    tiles = false;
                    break;
                }
            }
            if (tiles) {
                cluster.kind = ReadCluster::Kind::Coalesced;
                return cluster;
            }
        }
        if (stride == 1 && tuned && spec.tuning.unrollForOverlap) {
            cluster.kind = ReadCluster::Kind::OverlapMerge;
            return cluster;
        }
        cluster.kind = ReadCluster::Kind::Separate;
        return cluster;
    }

    void
    emitCluster(const ReadCluster &cluster)
    {
        if (cluster.kind == ReadCluster::Kind::Separate) {
            for (int member : cluster.members)
                makeMemoryRead({ member }, ReadCluster::Kind::Plain);
            return;
        }
        makeMemoryRead(cluster.members, cluster.kind);
    }

    /** Create one memory-backed input stream for a member group. */
    void
    makeMemoryRead(const std::vector<int> &members,
                   ReadCluster::Kind kind)
    {
        int rep = members[0];
        const AccessSpec &access = spec.accesses[rep];
        const wl::ArraySpec &array = spec.arrayByName(access.array);

        dfg::StreamNode stream;
        stream.source = StreamSource::Memory;
        stream.type = array.type;
        stream.pattern = buildPattern(spec, access, unroll);
        stream.indirect = access.indirect();
        stream.variableTripCount = hasVariableLoop();
        stream.specAccesses = members;

        dfg::ReuseInfo reuse =
            toReuseInfo(spec, rep, analyses[rep], false);
        int64_t stride = std::abs(innerCoeff(spec, access));
        double efficiency = 1.0;
        int lanes = unroll;

        switch (kind) {
          case ReadCluster::Kind::Plain:
            if (innerCoeff(spec, access) == 0)
                lanes = 1;  // stationary operand: held at the port
            if (stride > 1)
                efficiency = 1.0 / static_cast<double>(
                    std::min<int64_t>(stride, 8));
            break;
          case ReadCluster::Kind::Coalesced:
            // The group covers the stride: a contiguous wide stream.
            for (size_t m = 1; m < members.size(); ++m)
                reuse.trafficBytes +=
                    toReuseInfo(spec, members[m], analyses[members[m]],
                                false).trafficBytes;
            lanes = unroll * static_cast<int>(members.size());
            break;
          case ReadCluster::Kind::OverlapMerge:
            // Window taps share shifted data: one element of fresh
            // traffic per iteration, reuse captured at the port.
            reuse.stationary *= static_cast<double>(members.size());
            break;
          case ReadCluster::Kind::ConstantTaps:
            reuse.trafficBytes = static_cast<double>(members.size()) *
                                 dataTypeBytes(array.type);
            reuse.footprintBytes = reuse.trafficBytes;
            reuse.stationary =
                static_cast<double>(spec.totalIterations());
            lanes = static_cast<int>(members.size());
            break;
          case ReadCluster::Kind::Separate:
            OG_PANIC("separate cluster reached stream emission");
        }
        if (access.indirect())
            efficiency = 1.0;  // gathers pay in the ROB, not the mask

        stream.lanes = std::max(lanes, 1);
        stream.bandwidthEfficiency = efficiency;
        stream.reuse = reuse;

        dfg::NodeId id = mdfg.addInputStream(stream);
        // Indirect: emit the index stream and link it.
        if (access.indirect()) {
            dfg::NodeId index_id = makeIndexStream(access);
            mdfg.node(id).stream.indexStream = index_id;
            mdfg.addEdge(index_id, id);
        }
        for (int member : members)
            accessStream[member] = id;
    }

    /** Create the affine index-reading stream of an indirect access. */
    dfg::NodeId
    makeIndexStream(const AccessSpec &access)
    {
        const wl::ArraySpec &index_array =
            spec.arrayByName(access.indexArray);
        dfg::StreamNode stream;
        stream.source = StreamSource::Memory;
        stream.type = index_array.type;
        // The index itself is accessed affinely with the same coeffs.
        AccessSpec index_access = access;
        index_access.array = access.indexArray;
        index_access.indexArray.clear();
        stream.pattern = buildPattern(spec, index_access, unroll);
        stream.lanes = unroll;
        stream.variableTripCount = hasVariableLoop();
        dfg::ReuseInfo reuse;
        reuse.trafficBytes =
            static_cast<double>(spec.totalIterations()) *
            dataTypeBytes(index_array.type);
        reuse.footprintBytes = static_cast<double>(
            index_array.sizeBytes());
        stream.reuse = reuse;
        dfg::NodeId id = mdfg.addInputStream(stream);
        indexStreams[access.indexArray] = id;
        return id;
    }

    /** Create a recurrence-engine-fed input stream for a read. */
    void
    makeRecurrenceRead(int access_index)
    {
        const AccessSpec &access = spec.accesses[access_index];
        const wl::ArraySpec &array = spec.arrayByName(access.array);
        dfg::StreamNode stream;
        stream.source = StreamSource::Recurrence;
        stream.type = array.type;
        stream.pattern = buildPattern(spec, access, unroll);
        stream.lanes = unroll;
        stream.specAccesses = { access_index };
        stream.reuse = toReuseInfo(spec, access_index,
                                   analyses[access_index], true);
        dfg::NodeId id = mdfg.addInputStream(stream);
        accessStream[access_index] = id;
    }

    bool
    hasVariableLoop() const
    {
        return std::any_of(spec.loops.begin(), spec.loops.end(),
                           [](const wl::LoopSpec &l) {
                               return l.variable;
                           });
    }

    void
    buildInstructions()
    {
        int lanes = unroll;
        if (tuned && spec.tuning.unroll2d)
            lanes *= 2;  // tensorized 2D unroll (paper Q2, gemm)
        for (size_t i = 0; i < spec.ops.size(); ++i) {
            const wl::OpSpec &op = spec.ops[i];
            dfg::InstructionNode inst;
            inst.op = op.op;
            inst.type = op.type;
            inst.lanes = lanes;
            dfg::NodeId id = mdfg.addInstruction(inst);
            opInstruction.push_back(id);
            connectOperand(id, op.lhs, 0);
            bool unary = op.op == Opcode::Abs || op.op == Opcode::Sqrt;
            if (!unary)
                connectOperand(id, op.rhs, 1);
        }
    }

    void
    connectOperand(dfg::NodeId inst, const wl::Operand &operand,
                   int slot)
    {
        switch (operand.kind) {
          case wl::Operand::Kind::Access: {
            auto it = accessStream.find(operand.index);
            OG_ASSERT(it != accessStream.end(),
                      "operand reads unlowered access ", operand.index);
            mdfg.addEdge(it->second, inst, slot, operand.index);
            break;
          }
          case wl::Operand::Kind::Op:
            mdfg.addEdge(opInstruction[operand.index], inst, slot);
            break;
          case wl::Operand::Kind::Imm:
            mdfg.node(inst).inst.immediate = operand.imm;
            break;
          case wl::Operand::Kind::Index:
            mdfg.addEdge(makeIndexValueStream(operand.index), inst,
                         slot);
            break;
        }
    }

    /** Generate-engine stream producing the values of loop @p depth
     * (an affine value sequence, paper §III-B). */
    dfg::NodeId
    makeIndexValueStream(int depth)
    {
        auto it = indexValueStreams.find(depth);
        if (it != indexValueStreams.end())
            return it->second;
        OG_ASSERT(depth >= 0 &&
                      depth < static_cast<int>(spec.loops.size()),
                  "index operand names loop ", depth,
                  " outside the nest");
        dfg::StreamNode stream;
        stream.source = StreamSource::Generated;
        stream.type = DataType::I64;
        // The generated sequence follows the loop nest: one value per
        // iteration, vectorized like the consumers.
        wl::AccessSpec shape;
        shape.coeffs.assign(spec.loops.size(), 0);
        shape.coeffs[depth] = 1;
        stream.pattern = buildPattern(spec, shape, unroll);
        stream.lanes = unroll;
        stream.variableTripCount = hasVariableLoop();
        dfg::NodeId id = mdfg.addInputStream(stream);
        indexValueStreams[depth] = id;
        return id;
    }

    void
    buildWriteStreams()
    {
        int lanes = unroll;
        if (tuned && spec.tuning.unroll2d)
            lanes *= 2;
        for (size_t i = 0; i < spec.ops.size(); ++i) {
            const wl::OpSpec &op = spec.ops[i];
            if (op.writeAccess < 0)
                continue;
            const AccessSpec &access = spec.accesses[op.writeAccess];
            const wl::ArraySpec &array = spec.arrayByName(access.array);
            dfg::StreamNode stream;
            stream.type = array.type;
            stream.pattern = buildPattern(spec, access, unroll);
            stream.lanes =
                innerCoeff(spec, access) == 0 && !useRecurrence
                    ? lanes  // recurrent store still drains every lane
                    : lanes;
            stream.variableTripCount = hasVariableLoop();
            stream.specAccesses = { op.writeAccess };
            const AccessAnalysis &analysis = analyses[op.writeAccess];
            bool recurrent = useRecurrence &&
                             analysis.recurrentPeer.has_value();
            stream.source = recurrent ? StreamSource::Recurrence
                                      : StreamSource::Memory;
            stream.reuse = toReuseInfo(spec, op.writeAccess, analysis,
                                       recurrent);
            dfg::NodeId id = mdfg.addOutputStream(stream);
            if (recurrent) {
                dfg::NodeId read_id =
                    accessStream.at(*analysis.recurrentPeer);
                mdfg.node(id).stream.recurrencePeer = read_id;
                mdfg.node(read_id).stream.recurrencePeer = id;
            }
            mdfg.addEdge(opInstruction[i], id, 0, op.writeAccess);
            accessStream[op.writeAccess] = id;
        }
    }

    void
    attachArrays()
    {
        // One array node per array touched by any memory or recurrence
        // stream; link it to those streams.
        std::map<std::string, std::vector<dfg::NodeId>> users;
        auto note = [&](dfg::NodeId id) {
            const dfg::StreamNode &stream = mdfg.node(id).stream;
            if (stream.specAccesses.empty())
                return;
            const AccessSpec &access =
                spec.accesses[stream.specAccesses[0]];
            users[access.array].push_back(id);
        };
        for (dfg::NodeId id :
             mdfg.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
            const dfg::StreamNode &stream = mdfg.node(id).stream;
            if (!stream.specAccesses.empty()) {
                note(id);
            } else {
                // Index streams: attach to their index array.
                for (const auto &[array_name, sid] : indexStreams) {
                    if (sid == id)
                        users[array_name].push_back(id);
                }
            }
        }
        for (dfg::NodeId id :
             mdfg.nodeIdsOfKind(dfg::NodeKind::OutputStream)) {
            note(id);
        }

        for (const auto &[array_name, stream_ids] : users) {
            const wl::ArraySpec &array = spec.arrayByName(array_name);
            dfg::ArrayNode node;
            node.name = array_name;
            node.sizeBytes = array.sizeBytes();
            double general_reuse = arrayGeneralReuse(spec, array_name);
            bool hinted = std::find(spec.scratchpadHints.begin(),
                                    spec.scratchpadHints.end(),
                                    array_name) !=
                          spec.scratchpadHints.end();
            bool small = array.sizeBytes() <= 128 * 1024;
            if ((hinted || general_reuse >= 4.0) && small) {
                node.preferred = dfg::ArrayPlacement::Scratchpad;
                node.sizeBytes *= 2;  // double-buffering allocation
            }
            for (dfg::NodeId sid : stream_ids) {
                if (mdfg.node(sid).stream.indirect)
                    node.indirectIndexed = true;
            }
            dfg::NodeId array_id = mdfg.addArray(node);
            for (dfg::NodeId sid : stream_ids) {
                mdfg.node(sid).stream.array = array_id;
                mdfg.addEdge(array_id, sid);
            }
        }
    }

    const KernelSpec &spec;
    int unroll;
    bool useRecurrence;
    bool tuned;
    Mdfg mdfg;
    std::vector<AccessAnalysis> analyses;
    /** access index -> stream node carrying it. */
    std::map<int, dfg::NodeId> accessStream;
    /** index-array name -> index stream. */
    std::map<std::string, dfg::NodeId> indexStreams;
    /** loop depth -> generate-engine value stream. */
    std::map<int, dfg::NodeId> indexValueStreams;
    /** op index -> instruction node. */
    std::vector<dfg::NodeId> opInstruction;
};

} // namespace

Mdfg
compileOne(const KernelSpec &spec, int unroll, bool use_recurrence,
           bool tuned)
{
    OG_ASSERT(unroll >= 1, "bad unroll ", unroll);
    VariantBuilder builder(spec, unroll, use_recurrence, tuned);
    return builder.build();
}

std::vector<Mdfg>
compileVariants(const KernelSpec &spec, const CompileOptions &options)
{
    int max_unroll =
        options.maxUnroll > 0 ? options.maxUnroll : spec.maxUnroll;
    int64_t inner_trip =
        std::max<int64_t>(spec.loops.back().tripBase, 1);

    bool has_recurrence = false;
    if (options.allowRecurrence) {
        for (size_t i = 0; i < spec.accesses.size(); ++i) {
            if (analyzeAccess(spec, static_cast<int>(i)).recurrentPeer) {
                has_recurrence = true;
                break;
            }
        }
    }
    bool tuned = options.applyTuning &&
                 (spec.tuning.peelTail || spec.tuning.unroll2d ||
                  spec.tuning.unrollForOverlap);

    std::vector<Mdfg> variants;
    for (int unroll = max_unroll; unroll >= 1; unroll /= 2) {
        if (inner_trip % unroll != 0)
            continue;
        if (has_recurrence)
            variants.push_back(compileOne(spec, unroll, true, tuned));
        variants.push_back(compileOne(spec, unroll, false, tuned));
    }
    OG_ASSERT(!variants.empty(), "no variant compiled for ", spec.name);
    return variants;
}

} // namespace overgen::compiler
