#include "dfg/mdfg.h"

#include <algorithm>

#include "common/logging.h"

namespace overgen::dfg {

NodeId
Mdfg::addNode(Node n)
{
    n.id = static_cast<NodeId>(nodes.size());
    nodes.push_back(std::move(n));
    return nodes.back().id;
}

NodeId
Mdfg::addInstruction(InstructionNode inst)
{
    Node n;
    n.kind = NodeKind::Instruction;
    n.inst = std::move(inst);
    return addNode(std::move(n));
}

NodeId
Mdfg::addInputStream(StreamNode stream)
{
    Node n;
    n.kind = NodeKind::InputStream;
    n.stream = std::move(stream);
    return addNode(std::move(n));
}

NodeId
Mdfg::addOutputStream(StreamNode stream)
{
    Node n;
    n.kind = NodeKind::OutputStream;
    n.stream = std::move(stream);
    return addNode(std::move(n));
}

NodeId
Mdfg::addArray(ArrayNode array)
{
    Node n;
    n.kind = NodeKind::Array;
    n.array = std::move(array);
    return addNode(std::move(n));
}

void
Mdfg::addEdge(NodeId src, NodeId dst, int operand_index, int spec_access)
{
    OG_ASSERT(src >= 0 && src < numNodes(), "bad edge src ", src);
    OG_ASSERT(dst >= 0 && dst < numNodes(), "bad edge dst ", dst);
    edgeList.push_back(Edge{ src, dst, operand_index, spec_access });
}

const Node &
Mdfg::node(NodeId id) const
{
    OG_ASSERT(id >= 0 && id < numNodes(), "bad mDFG node id ", id);
    return nodes[id];
}

Node &
Mdfg::node(NodeId id)
{
    OG_ASSERT(id >= 0 && id < numNodes(), "bad mDFG node id ", id);
    return nodes[id];
}

std::vector<NodeId>
Mdfg::nodeIdsOfKind(NodeKind kind) const
{
    std::vector<NodeId> ids;
    for (const Node &n : nodes) {
        if (n.kind == kind)
            ids.push_back(n.id);
    }
    return ids;
}

std::vector<Edge>
Mdfg::inEdgesOf(NodeId id) const
{
    std::vector<Edge> in;
    for (const Edge &e : edgeList) {
        if (e.dst == id)
            in.push_back(e);
    }
    std::sort(in.begin(), in.end(), [](const Edge &a, const Edge &b) {
        return a.operandIndex < b.operandIndex;
    });
    return in;
}

std::vector<Edge>
Mdfg::outEdgesOf(NodeId id) const
{
    std::vector<Edge> out;
    for (const Edge &e : edgeList) {
        if (e.src == id)
            out.push_back(e);
    }
    return out;
}

double
Mdfg::instructionBandwidth() const
{
    double insts = 0.0;
    for (const Node &n : nodes) {
        switch (n.kind) {
          case NodeKind::Instruction:
            insts += n.inst.lanes;
            break;
          case NodeKind::InputStream:
          case NodeKind::OutputStream:
            // Memory operations count toward estimated IPC (§V-C).
            if (n.stream.source == StreamSource::Memory)
                insts += n.stream.lanes;
            break;
          case NodeKind::Array:
            break;
        }
    }
    return insts;
}

int
Mdfg::vectorization() const
{
    int lanes = 1;
    for (const Node &n : nodes) {
        if (n.kind == NodeKind::Instruction)
            lanes = std::max(lanes, n.inst.lanes);
    }
    return lanes;
}

std::string
Mdfg::validate() const
{
    for (const Node &n : nodes) {
        auto in = inEdgesOf(n.id);
        auto out = outEdgesOf(n.id);
        switch (n.kind) {
          case NodeKind::Instruction: {
            int expected =
                (n.inst.op == Opcode::Abs || n.inst.op == Opcode::Sqrt)
                    ? 1
                    : 2;
            int data_in = n.inst.immediate.has_value() ? 1 : 0;
            for (const Edge &e : in) {
                if (node(e.src).kind != NodeKind::Array)
                    ++data_in;
            }
            if (data_in != expected) {
                return "instruction " + std::to_string(n.id) + " (" +
                       opcodeName(n.inst.op) + ") has " +
                       std::to_string(data_in) + " operands, expected " +
                       std::to_string(expected);
            }
            break;
          }
          case NodeKind::InputStream: {
            if (out.empty())
                return "input stream " + std::to_string(n.id) +
                       " feeds nothing";
            if (n.stream.source == StreamSource::Memory &&
                n.stream.array == invalidNode) {
                return "memory input stream " + std::to_string(n.id) +
                       " has no array";
            }
            break;
          }
          case NodeKind::OutputStream: {
            int data_in = 0;
            for (const Edge &e : in) {
                if (node(e.src).kind != NodeKind::Array)
                    ++data_in;
            }
            if (data_in != 1)
                return "output stream " + std::to_string(n.id) +
                       " needs exactly one producer";
            break;
          }
          case NodeKind::Array: {
            for (const Edge &e : out) {
                const Node &dst = node(e.dst);
                bool is_stream = dst.kind == NodeKind::InputStream ||
                                 dst.kind == NodeKind::OutputStream;
                if (!is_stream)
                    return "array " + std::to_string(n.id) +
                           " connects to a non-stream node";
            }
            if (n.array.sizeBytes <= 0)
                return "array " + std::to_string(n.id) +
                       " has non-positive size";
            break;
          }
        }
    }
    return "";
}

} // namespace overgen::dfg
