#ifndef OVERGEN_DFG_MDFG_H
#define OVERGEN_DFG_MDFG_H

/**
 * @file
 * The memory-enhanced dataflow graph (mDFG, paper §IV): a compute DFG
 * plus stream nodes carrying memory-access patterns and reuse
 * annotations, plus array nodes carrying data-structure footprint and
 * placement information. The compiler produces mDFGs; the spatial
 * scheduler maps them onto an ADG.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/opcode.h"
#include "common/types.h"

namespace overgen::dfg {

/** Identifier of a node within one Mdfg. */
using NodeId = int32_t;

constexpr NodeId invalidNode = -1;

/** Kinds of mDFG nodes. */
enum class NodeKind : uint8_t {
    Instruction,   //!< compute instruction mapped onto a PE
    InputStream,   //!< memory/value stream feeding the fabric
    OutputStream,  //!< stream draining the fabric
    Array,         //!< data-structure node (paper §IV-A)
};

/** Where a stream's data comes from / goes to. */
enum class StreamSource : uint8_t {
    Memory,      //!< DMA or scratchpad (array-backed)
    Generated,   //!< affine value sequence (generate engine)
    Recurrence,  //!< loop-carried dependence (recurrence engine)
    Register,    //!< scalar to the control core (register engine)
};

/**
 * Up to 3-dimensional affine access pattern, innermost dimension first:
 * addr(i0,i1,i2) = base + sum_d stride[d] * i_d (in elements).
 */
struct AffinePattern
{
    int dims = 1;
    int64_t stride[3] = { 1, 0, 0 };
    int64_t trips[3] = { 1, 1, 1 };

    /** @return total elements produced over the whole pattern. */
    int64_t
    totalElements() const
    {
        int64_t total = 1;
        for (int d = 0; d < dims; ++d)
            total *= trips[d];
        return total;
    }
};

/**
 * Reuse annotations computed by the compiler's reuse analysis
 * (paper §IV-B): traffic, footprint, and the reuse captured by port
 * FIFOs (stationary) and the recurrence engine (recurrent).
 */
struct ReuseInfo
{
    /** Total bytes the stream requests over the program region. */
    double trafficBytes = 0.0;
    /** Bytes of distinct data touched (array/tile footprint). */
    double footprintBytes = 0.0;
    /** Stationary reuse factor at the port (1 = none). */
    double stationary = 1.0;
    /** Recurrent reuse factor via the recurrence engine (1 = none). */
    double recurrent = 1.0;
    /** Concurrent in-flight instances of a recurrent pair (0 = not a
     * recurrent pair); bounds read-after-write throttling in the
     * simulator and buffering in the recurrence engine. */
    int64_t recurrentConcurrency = 0;

    /** @return traffic/footprint: mean uses per element (general reuse). */
    double
    generalReuse() const
    {
        if (footprintBytes <= 0.0)
            return 1.0;
        return trafficBytes / footprintBytes;
    }

    /**
     * @return the factor by which captured reuse divides this stream's
     * bandwidth demand on the backing memory (paper Eq. 2 denominator).
     */
    double
    capturedFactor() const
    {
        return stationary * recurrent;
    }
};

/** Compute instruction node. */
struct InstructionNode
{
    Opcode op = Opcode::Add;
    DataType type = DataType::I64;
    /** Vector lanes this instruction executes per firing. */
    int lanes = 1;
    /** Whether the instruction is predicated (needs a control LUT). */
    bool predicated = false;
    /** Immediate folded into the PE configuration (second operand). */
    std::optional<double> immediate;
};

/** Stream node: a coarse-grained memory/value access pattern. */
struct StreamNode
{
    StreamSource source = StreamSource::Memory;
    DataType type = DataType::I64;
    AffinePattern pattern;
    /** Indirect access a[b[i]] (needs indirect-capable engine). */
    bool indirect = false;
    /** Trip count only known at runtime (stated streams required). */
    bool variableTripCount = false;
    /** Vector lanes delivered per cycle (matches consumer lanes). */
    int lanes = 1;
    /** Array backing this stream (invalidNode for non-memory sources). */
    NodeId array = invalidNode;
    /** Recurrence peer (for paired read/write recurrent streams). */
    NodeId recurrencePeer = invalidNode;
    /** Index stream feeding this stream when `indirect` is set. */
    NodeId indexStream = invalidNode;
    /** Reuse annotations from the compiler. */
    ReuseInfo reuse;
    /** Originating KernelSpec access indices (several when coalesced). */
    std::vector<int> specAccesses;
    /** Bandwidth efficiency on the backing memory: 1 for contiguous or
     * coalesced patterns, 1/stride for strided uncoalesced DMA. */
    double bandwidthEfficiency = 1.0;

    /** @return bytes this stream moves per fabric firing. */
    double
    bytesPerFiring() const
    {
        return static_cast<double>(dataTypeBytes(type)) * lanes;
    }
};

/** Preferred placement of an array node. */
enum class ArrayPlacement : uint8_t {
    Dram,        //!< via the DMA engine / shared L2
    Scratchpad,  //!< private on-tile scratchpad
};

/** Array (data structure) node. */
struct ArrayNode
{
    std::string name;
    /** Total allocation in bytes (doubled when double-buffered in spad). */
    int64_t sizeBytes = 0;
    /** Placement the compiler prefers; the scheduler may override. */
    ArrayPlacement preferred = ArrayPlacement::Dram;
    /** Whether any stream accesses this array indirectly. */
    bool indirectIndexed = false;
};

/** One mDFG node. */
struct Node
{
    NodeId id = invalidNode;
    NodeKind kind = NodeKind::Instruction;
    InstructionNode inst;  //!< valid when kind == Instruction
    StreamNode stream;     //!< valid when kind is a stream
    ArrayNode array;       //!< valid when kind == Array
};

/** A dataflow edge. Operand index orders PE inputs. */
struct Edge
{
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    int operandIndex = 0;
    /**
     * For stream->instruction edges: the originating KernelSpec access
     * index this operand draws from (streams may be coalesced over
     * several accesses). -1 when not applicable.
     */
    int specAccess = -1;
};

/**
 * A memory-enhanced dataflow graph for one program region, at one
 * transformation aggressiveness (one pre-generated variant, §V-A).
 */
class Mdfg
{
  public:
    /** @name Construction */
    /// @{
    NodeId addInstruction(InstructionNode inst);
    NodeId addInputStream(StreamNode stream);
    NodeId addOutputStream(StreamNode stream);
    NodeId addArray(ArrayNode array);
    /** Connect @p src to @p dst at operand slot @p operand_index. */
    void addEdge(NodeId src, NodeId dst, int operand_index = 0,
                 int spec_access = -1);
    /// @}

    /** @return the node; panic when out of range. */
    const Node &node(NodeId id) const;
    Node &node(NodeId id);

    /** @return all edges. */
    const std::vector<Edge> &edges() const { return edgeList; }
    /** @return node count. */
    int numNodes() const { return static_cast<int>(nodes.size()); }

    /** @return ids of all nodes of @p kind. */
    std::vector<NodeId> nodeIdsOfKind(NodeKind kind) const;

    /** @return in-edges of @p id sorted by operand index. */
    std::vector<Edge> inEdgesOf(NodeId id) const;
    /** @return out-edges of @p id. */
    std::vector<Edge> outEdgesOf(NodeId id) const;

    /**
     * @return instruction bandwidth per firing: instructions plus
     * memory operations, weighted by lanes (paper §V-C "mDFG Insts",
     * including loads/stores so pure data movement is incentivized).
     */
    double instructionBandwidth() const;

    /** @return the maximum vector lanes over all instructions. */
    int vectorization() const;

    /**
     * Well-formedness: instructions have the right operand count,
     * streams connect to the fabric on the correct side, arrays connect
     * only to memory streams. @return empty string when valid.
     */
    std::string validate() const;

    /** @name Variant metadata */
    /// @{
    std::string name;        //!< workload + variant tag
    std::string kernelName;  //!< originating KernelSpec name
    int unrollFactor = 1;    //!< transformation aggressiveness knob
    bool usesRecurrence = false;  //!< accumulation via recurrence engine
    bool tuned = false;           //!< OverGen source tuning applied
    double weight = 1.0;     //!< workload weight in the DSE objective
    /// @}

  private:
    NodeId addNode(Node n);

    std::vector<Node> nodes;
    std::vector<Edge> edgeList;
};

} // namespace overgen::dfg

#endif // OVERGEN_DFG_MDFG_H
