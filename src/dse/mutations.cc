#include "dse/mutations.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace overgen::dse {

namespace {

using adg::Adg;
using adg::NodeId;
using adg::NodeKind;

/** Pick a uniform random element; invalidNode when empty. */
NodeId
pick(const std::vector<NodeId> &ids, Rng &rng)
{
    if (ids.empty())
        return adg::invalidNode;
    return ids[rng.nextBelow(ids.size())];
}

/** ADG nodes currently used as placement targets. */
std::set<NodeId>
placementTargets(const std::vector<sched::Schedule> &schedules)
{
    std::set<NodeId> used;
    for (const auto &schedule : schedules) {
        for (const auto &[dfg_node, adg_node] : schedule.placement)
            used.insert(adg_node);
    }
    return used;
}

/** ADG edges currently used by any route. */
std::set<adg::EdgeId>
routedEdges(const std::vector<sched::Schedule> &schedules)
{
    std::set<adg::EdgeId> used;
    for (const auto &schedule : schedules) {
        for (const auto &[edge_index, route] : schedule.routes)
            used.insert(route.begin(), route.end());
    }
    return used;
}

} // namespace

std::string
mutationKindName(MutationKind kind)
{
    switch (kind) {
      case MutationKind::RemoveSwitch:
        return "remove_switch";
      case MutationKind::RemovePe:
        return "remove_pe";
      case MutationKind::RemoveEdge:
        return "remove_edge";
      case MutationKind::AddPe:
        return "add_pe";
      case MutationKind::AddSwitch:
        return "add_switch";
      case MutationKind::AddEdge:
        return "add_edge";
      case MutationKind::ResizePort:
        return "resize_port";
      case MutationKind::ResizeScratchpad:
        return "resize_scratchpad";
      case MutationKind::PruneCapabilities:
        return "prune_capabilities";
      case MutationKind::PrunePortFlags:
        return "prune_port_flags";
      case MutationKind::AddCapability:
        return "add_capability";
      case MutationKind::None:
        return "none";
    }
    OG_PANIC("unknown mutation kind");
}

void
collapseNode(Adg &adg, NodeId victim,
             const std::vector<sched::Schedule> &schedules)
{
    OG_ASSERT(adg.hasNode(victim), "collapsing dead node");
    // Gather (pred-edge, succ-edge) pairs of routes passing through.
    struct Bridge
    {
        NodeId src;
        NodeId dst;
        int delay;
    };
    std::vector<Bridge> bridges;
    for (const auto &schedule : schedules) {
        for (const auto &[edge_index, route] : schedule.routes) {
            for (size_t h = 0; h + 1 < route.size(); ++h) {
                if (!adg.hasEdge(route[h]) ||
                    !adg.hasEdge(route[h + 1])) {
                    continue;
                }
                const adg::Edge &in = adg.edge(route[h]);
                const adg::Edge &out = adg.edge(route[h + 1]);
                if (in.dst != victim)
                    continue;
                // Edge-delay preservation: the bridge carries the
                // summed delay of the two hops it replaces.
                bridges.push_back(
                    Bridge{ in.src, out.dst, in.delay + out.delay });
            }
        }
    }
    adg.removeNode(victim);
    std::set<std::pair<NodeId, NodeId>> added;
    for (const Bridge &bridge : bridges) {
        if (!adg.hasNode(bridge.src) || !adg.hasNode(bridge.dst))
            continue;
        if (bridge.src == bridge.dst)
            continue;
        if (!Adg::edgeLegal(adg.node(bridge.src).kind,
                            adg.node(bridge.dst).kind)) {
            continue;
        }
        if (!added.insert({ bridge.src, bridge.dst }).second)
            continue;
        adg.addEdge(bridge.src, bridge.dst, bridge.delay);
    }
}

int
pruneCapabilities(Adg &adg,
                  const std::vector<sched::Schedule> &schedules,
                  const std::vector<const dfg::Mdfg *> &mdfgs)
{
    OG_ASSERT(schedules.size() == mdfgs.size(), "size mismatch");
    // Union of used capabilities per PE across all schedules.
    std::map<NodeId, std::set<FuCapability>> used;
    for (size_t i = 0; i < schedules.size(); ++i) {
        auto per_pe = sched::usedCapabilities(schedules[i], *mdfgs[i]);
        for (auto &[pe, caps] : per_pe)
            used[pe].insert(caps.begin(), caps.end());
    }
    int pruned = 0;
    for (NodeId pe : adg.nodeIdsOfKind(NodeKind::Pe)) {
        auto &spec = adg.node(pe).pe();
        std::set<FuCapability> keep;
        auto it = used.find(pe);
        if (it != used.end())
            keep = it->second;
        if (keep.empty()) {
            // Idle PE: keep the cheapest capability as a seed so the
            // node stays schedulable.
            keep.insert(*spec.capabilities.begin());
        }
        pruned += static_cast<int>(spec.capabilities.size() -
                                   keep.size());
        spec.capabilities = std::move(keep);
    }
    // Port-feature pruning: padding / stated-stream support that no
    // mapped stream requires.
    std::set<NodeId> needs_stated, needs_padding;
    for (size_t i = 0; i < schedules.size(); ++i) {
        for (const auto &[dfg_node, adg_node] :
             schedules[i].placement) {
            const dfg::Node &dn = mdfgs[i]->node(dfg_node);
            if (dn.kind != dfg::NodeKind::InputStream &&
                dn.kind != dfg::NodeKind::OutputStream) {
                continue;
            }
            if (dn.stream.variableTripCount) {
                needs_stated.insert(adg_node);
                if (dn.stream.lanes > 1)
                    needs_padding.insert(adg_node);
            }
        }
    }
    for (NodeKind kind : { NodeKind::InPort, NodeKind::OutPort }) {
        for (NodeId port : adg.nodeIdsOfKind(kind)) {
            auto &spec = adg.node(port).port();
            if (spec.statedStream && !needs_stated.count(port)) {
                spec.statedStream = false;
                ++pruned;
            }
            if (spec.padding && !needs_padding.count(port)) {
                spec.padding = false;
                ++pruned;
            }
        }
    }
    return pruned;
}

MutationKind
mutateAdg(Adg &adg, const std::vector<sched::Schedule> &schedules,
          const std::vector<const dfg::Mdfg *> &mdfgs, bool preserving,
          Rng &rng)
{
    std::set<NodeId> used_nodes = placementTargets(schedules);
    std::set<adg::EdgeId> used_edges = routedEdges(schedules);

    for (int attempt = 0; attempt < 12; ++attempt) {
        int choice = static_cast<int>(rng.nextBelow(10));
        switch (choice) {
          case 0: {  // remove a switch (collapse when preserving)
            auto switches = adg.nodeIdsOfKind(NodeKind::Switch);
            NodeId victim = pick(switches, rng);
            if (victim == adg::invalidNode || switches.size() <= 2)
                break;
            if (preserving)
                collapseNode(adg, victim, schedules);
            else
                adg.removeNode(victim);
            return MutationKind::RemoveSwitch;
          }
          case 1: {  // remove an idle PE
            std::vector<NodeId> idle;
            for (NodeId pe : adg.nodeIdsOfKind(NodeKind::Pe)) {
                if (!preserving || !used_nodes.count(pe))
                    idle.push_back(pe);
            }
            NodeId victim = pick(idle, rng);
            if (victim == adg::invalidNode ||
                adg.countKind(NodeKind::Pe) <= 1) {
                break;
            }
            adg.removeNode(victim);
            return MutationKind::RemovePe;
          }
          case 2: {  // remove an edge
            std::vector<adg::EdgeId> candidates;
            for (adg::EdgeId e : adg.edgeIds()) {
                if (!preserving || !used_edges.count(e))
                    candidates.push_back(e);
            }
            if (candidates.empty())
                break;
            adg.removeEdge(
                candidates[rng.nextBelow(candidates.size())]);
            return MutationKind::RemoveEdge;
          }
          case 3: {  // add a PE cloned from an existing one
            auto pes = adg.nodeIdsOfKind(NodeKind::Pe);
            auto switches = adg.nodeIdsOfKind(NodeKind::Switch);
            if (pes.empty() || switches.empty())
                break;
            adg::PeSpec spec = adg.node(pick(pes, rng)).pe();
            NodeId pe = adg.addPe(spec);
            adg.addEdge(pick(switches, rng), pe);
            adg.addEdge(pe, pick(switches, rng));
            return MutationKind::AddPe;
          }
          case 4: {  // add a switch spliced between two nodes
            auto switches = adg.nodeIdsOfKind(NodeKind::Switch);
            if (switches.empty())
                break;
            adg::SwitchSpec spec = adg.node(switches[0]).sw();
            NodeId sw = adg.addSwitch(spec);
            adg.addEdge(pick(switches, rng), sw);
            adg.addEdge(sw, pick(switches, rng));
            return MutationKind::AddSwitch;
          }
          case 5: {  // add a random legal edge
            auto nodes = adg.nodeIds();
            NodeId src = pick(nodes, rng);
            NodeId dst = pick(nodes, rng);
            if (src == dst || src == adg::invalidNode)
                break;
            if (!Adg::edgeLegal(adg.node(src).kind,
                                adg.node(dst).kind)) {
                break;
            }
            adg.addEdge(src, dst);
            return MutationKind::AddEdge;
          }
          case 6: {  // resize a port
            std::vector<NodeId> ports =
                adg.nodeIdsOfKind(NodeKind::InPort);
            auto outs = adg.nodeIdsOfKind(NodeKind::OutPort);
            ports.insert(ports.end(), outs.begin(), outs.end());
            NodeId port = pick(ports, rng);
            if (port == adg::invalidNode)
                break;
            auto &spec = adg.node(port).port();
            bool grow = rng.nextBool();
            // Shrinking below a mapped stream's rate invalidates it;
            // the rescheduling pass decides, we only avoid halving
            // used ports when preserving.
            if (!grow && preserving && used_nodes.count(port))
                break;
            spec.widthBytes = std::clamp(
                grow ? spec.widthBytes * 2 : spec.widthBytes / 2, 2,
                64);
            return MutationKind::ResizePort;
          }
          case 7: {  // resize a scratchpad
            auto spads = adg.nodeIdsOfKind(NodeKind::Scratchpad);
            NodeId spad = pick(spads, rng);
            if (spad == adg::invalidNode)
                break;
            auto &spec = adg.node(spad).spad();
            bool grow = rng.nextBool();
            if (!grow && preserving && used_nodes.count(spad))
                break;
            spec.capacityKiB = std::clamp(
                grow ? spec.capacityKiB * 2 : spec.capacityKiB / 2, 4,
                256);
            return MutationKind::ResizeScratchpad;
          }
          case 8: {  // capability pruning
            if (preserving) {
                if (pruneCapabilities(adg, schedules, mdfgs) > 0)
                    return MutationKind::PruneCapabilities;
                break;
            }
            // Blind pruning: drop a random capability somewhere.
            auto pes = adg.nodeIdsOfKind(NodeKind::Pe);
            NodeId pe = pick(pes, rng);
            if (pe == adg::invalidNode)
                break;
            auto &caps = adg.node(pe).pe().capabilities;
            if (caps.size() <= 1)
                break;
            auto it = caps.begin();
            std::advance(it, rng.nextBelow(caps.size()));
            caps.erase(it);
            return MutationKind::PruneCapabilities;
          }
          case 9: {  // add a capability copied from a peer PE
            auto pes = adg.nodeIdsOfKind(NodeKind::Pe);
            if (pes.size() < 2)
                break;
            NodeId from = pick(pes, rng);
            NodeId to = pick(pes, rng);
            if (from == to)
                break;
            const auto &src = adg.node(from).pe().capabilities;
            if (src.empty())
                break;
            auto it = src.begin();
            std::advance(it, rng.nextBelow(src.size()));
            adg.node(to).pe().capabilities.insert(*it);
            return MutationKind::AddCapability;
          }
        }
    }
    return MutationKind::None;
}

} // namespace overgen::dse
