#ifndef OVERGEN_DSE_EXPLORER_H
#define OVERGEN_DSE_EXPLORER_H

/**
 * @file
 * The unified system + accelerator design space explorer (paper §V):
 * an outer simulated-annealing loop mutates the per-tile ADG (with
 * schedule-preserving transformations) and repairs the pre-generated
 * mDFG variants' schedules; a nested exhaustive system DSE picks tile
 * count, L2 banking/capacity and NoC width under the FPGA resource
 * budget; the objective is the weighted geomean of estimated IPC,
 * with estimated resources-per-accelerator as a pruning secondary.
 */

#include <vector>

#include "model/perf.h"
#include "model/resource_model.h"
#include "sched/scheduler.h"
#include "workloads/kernelspec.h"

namespace overgen::telemetry {
class Sink;
} // namespace overgen::telemetry

namespace overgen::dse {

class WarmSimCache;

/** How the explorer scores a candidate's per-kernel IPC estimates. */
enum class DseObjective : int
{
    /** Whole-run average IPC as estimated by the perf model — the
     * historical objective. */
    Scalar = 0,
    /**
     * Phase-aware: each kernel's estimated IPC is weighted by its
     * steady fraction S/(S+R), where S is the model-estimated steady
     * cycles (iterations / work rate) and R the model-estimated ramp
     * (model::estimateRampCycles). Long kernels (S >> R) score as
     * under Scalar; short kernels are penalized in proportion to the
     * ramp they spend not at steady state — the design that wins
     * steady-state can lose here (see DESIGN.md "Phase-aware
     * analysis").
     */
    Phase,
};

/** @return "scalar" / "phase". */
const char *dseObjectiveName(DseObjective objective);

/** Explorer options. */
struct DseOptions
{
    uint64_t seed = 1;
    /** Spatial DSE iterations (the paper runs hours; benches minutes). */
    int iterations = 60;
    double initialTemperature = 0.6;
    /**
     * Worker threads for speculative candidate evaluation: 0 selects
     * the hardware concurrency, 1 is the legacy serial path (no
     * threads spawned). The explored trajectory is bit-identical for
     * every value — per-candidate Rng streams are split off the
     * master seed before evaluation and accept decisions are applied
     * in fixed candidate order, so threads only change wall-clock
     * (see DESIGN.md "Determinism under parallelism").
     */
    int threads = 1;
    /**
     * Speculation width: candidates mutated from the current design
     * and evaluated per annealing round. Part of the seeded
     * algorithm (changing it changes the trajectory; changing
     * `threads` does not). Candidates after an accepted one in a
     * round are discarded unexamined — their mutations were drawn
     * against a stale base — so wider speculation trades redundant
     * evaluations for parallelism.
     */
    int speculation = 8;
    /** Resource budget fraction of the device. */
    double budgetFraction = 0.97;
    /** Enable schedule-preserving transformations (Fig. 20 ablation). */
    bool schedulePreserving = true;
    /** Apply OverGen source tuning when compiling variants. */
    bool applyTuning = false;
    /** Nested system-DSE grids (paper §III-B). Each axis is iterated
     * in ascending order; resources are monotone per axis, so the
     * explorer prunes whole over-budget subtrees instead of visiting
     * every point (see DESIGN.md "Evaluation cache and model split"). */
    std::vector<int> tileCountGrid{ 1, 2, 3, 4, 6, 8, 10, 13, 16 };
    std::vector<int> l2BankGrid{ 4, 8, 16 };
    std::vector<int> nocBytesGrid{ 32, 64 };
    std::vector<int> l2CapacityGrid{ 256, 512, 1024 };
    std::vector<int> dramChannelGrid{ 1 };
    model::PerfConfig perf;
    /** Candidate scoring mode (`--objective` on the bench harnesses).
     * Phase features are computed and logged under both modes; the
     * mode only decides whether they weight the score. */
    DseObjective objective = DseObjective::Scalar;
    /** Ramp cost constants for DseObjective::Phase. */
    model::PhaseWeights phase;
    /**
     * Phase mode + validateFinal: a kernel whose modeled steady
     * fraction S/(S+R) on the final design falls below this threshold
     * is ramp-dominated — the analytic model's steady-state lens is
     * unreliable for it, so the explorer refines its final mapping by
     * *measured* whole-run cycles (simulating each schedulable
     * variant, adopting a strictly faster one; ties keep the
     * annealer's mapping). Short kernels simulate in microseconds, so
     * the pass is cheap; 0 disables it. The default trusts the model
     * only once the modeled steady span is at least three times the
     * ramp (long kernels sit near 1.0 and are always exempt).
     */
    double phaseShortSteadyFraction = 0.75;
    /**
     * Memoize schedule-all results and tile resource vectors by ADG
     * fingerprint, so mutate/reject revisits of structurally
     * identical designs cost a hash lookup instead of a re-schedule.
     * Results are bit-identical with the cache on or off — hits
     * return deep copies of values the same pure computation would
     * produce (see DESIGN.md). Off is the escape hatch
     * (`--no-eval-cache` on the bench harnesses).
     */
    bool evalCache = true;
    /** Entry bound of each memo table (FIFO eviction beyond it). */
    size_t evalCacheEntries = 1024;
    /**
     * Cycle-simulate every kernel on the final design after the
     * anneal (sim::runBatch over `threads` workers) and record the
     * measured cycles/IPC next to the model estimate in each
     * KernelMapping. Off by default: the anneal itself never
     * simulates, so this only adds one batched sweep at the end.
     */
    bool validateFinal = false;
    /**
     * Warm-started incremental validation (used only with
     * validateFinal): final-design simulations are memoized here by
     * their full input identity (see dse/sim_cache.h). Across
     * explorations of a growing domain, a kernel whose mapping is
     * unchanged reuses its terminal result outright, and one whose
     * earlier validation was truncated at a smaller cycle budget
     * resumes from its last checkpoint, simulating only the unseen
     * suffix. Bit-identical to cold validation in every case. Null
     * keeps the plain runBatch sweep. Shareable across concurrent
     * explorations (thread-safe).
     */
    WarmSimCache *simCache = nullptr;
    /** Checkpoint cadence for cache-filling validation runs, in
     * cycles (0 derives maxCycles/16; see dse/sim_cache.h). */
    uint64_t simCacheCheckpointEvery = 0;

    /**
     * Telemetry sink: when live, the explorer appends one JSONL
     * record per iteration (iteration, temperature, objective,
     * accept/reject, mutation kinds, resource slack, seconds) and
     * counts mutations/acceptances in the registry. Null disables
     * all DSE telemetry.
     */
    telemetry::Sink *sink = nullptr;
    /** Tag stamped into each JSONL record ("run"), distinguishing
     * multiple explorations sharing one sink. */
    std::string telemetryLabel;
    /**
     * Emit one `"type":"heartbeat"` progress record on the sink every
     * N annealing rounds (candidates/sec, eval-cache hit rate,
     * best-so-far objective; 0 disables). Heartbeats ride the same
     * JSONL stream as iteration records — consumers filter on the
     * "type" key — and are deterministic in count and content except
     * for the wall-clock rate fields.
     */
    int heartbeatEvery = 4;
};

/** One point of the DSE convergence trace (Fig. 20). */
struct ConvergencePoint
{
    double seconds = 0.0;
    int iteration = 0;
    double estimatedIpc = 0.0;
};

/** Per-kernel outcome on the final design. */
struct KernelMapping
{
    std::string kernel;
    int variantIndex = -1;          //!< into the kernel's variant list
    std::string variantName;
    double estimatedIpc = 0.0;
    std::string bottleneck;
    /** Model-estimated ramp cycles on the final design (phase
     * features; computed under both objectives). */
    double estimatedRampCycles = 0.0;
    /** Model-estimated steady fraction S/(S+R) — the weight Phase
     * mode applies to this kernel's IPC. */
    double estimatedSteadyFraction = 1.0;
    /** @name Filled only with DseOptions::validateFinal. @{ */
    bool simulated = false;      //!< a cycle simulation ran
    bool simCompleted = false;   //!< it finished within maxCycles
    uint64_t simulatedCycles = 0;
    double simulatedIpc = 0.0;
    /// @}
};

/** Explorer result. */
struct DseResult
{
    adg::SysAdg design;
    double objective = 0.0;  //!< weighted geomean estimated IPC
    model::Resources resources;
    double utilization = 0.0;
    std::vector<KernelMapping> mappings;
    /** Final schedules + chosen variants, index-aligned to mappings. */
    std::vector<sched::Schedule> schedules;
    std::vector<dfg::Mdfg> mdfgs;
    std::vector<ConvergencePoint> convergence;
    int iterationsRun = 0;
    int accepted = 0;
    int abandoned = 0;  //!< candidates with an unschedulable kernel
    /** Candidate evaluations run, including speculative ones
     * discarded after an in-round acceptance (>= iterationsRun). */
    int evaluated = 0;
    /** Speculative evaluations discarded unexamined. */
    int discarded = 0;
    /**
     * Evaluation-cache traffic (zero with the cache off). The split
     * between hits and misses can vary with thread timing — two
     * workers racing the same fingerprint may both miss — so these
     * are observability, outside the determinism contract.
     */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;
    uint64_t cacheEvictions = 0;
    /** System-grid points skipped by monotone budget pruning (a
     * deterministic function of the trajectory). */
    uint64_t gridPruned = 0;
    /** @name Warm-validation traffic for THIS call (zero without
     * DseOptions::simCache; observability, like the cache counters) */
    /// @{
    uint64_t simTerminalHits = 0;  //!< validations served from cache
    uint64_t simResumes = 0;       //!< validations resumed mid-run
    uint64_t simMisses = 0;        //!< validations simulated cold
    /** Cycles the resumed validations did not re-simulate. */
    uint64_t simCyclesSkipped = 0;
    /// @}
    double elapsedSeconds = 0.0;
};

/**
 * Run the unified DSE for @p kernels (the "domain"). The resource
 * model prices candidates; the returned design is the best accepted
 * sysADG.
 */
DseResult exploreOverlay(const std::vector<wl::KernelSpec> &kernels,
                         const DseOptions &options = {},
                         const model::FpgaResourceModel *resource_model =
                             nullptr);

/** Build the seed ADG the DSE starts from (a capability-complete mesh
 * over the kernels' needs). */
adg::Adg seedTile(const std::vector<wl::KernelSpec> &kernels);

} // namespace overgen::dse

#endif // OVERGEN_DSE_EXPLORER_H
