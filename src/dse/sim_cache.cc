#include "dse/sim_cache.h"

#include "common/logging.h"

namespace overgen::dse {

namespace {

/** Salts mirroring EvalCache's double-fingerprint keying. */
constexpr uint64_t kAdgSaltA = 0x5bf03635d1c2b9f3ull;
constexpr uint64_t kAdgSaltB = 0xa24baed4963ee407ull;

class Fnv
{
  public:
    void
    mix(uint64_t v)
    {
        h ^= v;
        h *= 1099511628211ull;
    }

    void
    mixString(const std::string &s)
    {
        mix(s.size());
        for (char c : s)
            mix(static_cast<uint8_t>(c));
    }

    uint64_t value() const { return h; }

  private:
    uint64_t h = 1469598103934665603ull;
};

} // namespace

std::optional<WarmSimEntry>
WarmSimCache::find(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(key);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
WarmSimCache::store(uint64_t key, WarmSimEntry entry)
{
    std::lock_guard<std::mutex> lock(mutex);
    entries[key] = std::move(entry);
}

void
WarmSimCache::recordOutcome(WarmSimOutcome how,
                            uint64_t cycles_skipped)
{
    std::lock_guard<std::mutex> lock(mutex);
    switch (how) {
    case WarmSimOutcome::Miss:
        ++counts.misses;
        break;
    case WarmSimOutcome::TerminalHit:
        ++counts.terminalHits;
        break;
    case WarmSimOutcome::Resumed:
        ++counts.resumes;
        counts.cyclesSkipped += cycles_skipped;
        break;
    }
}

WarmSimStats
WarmSimCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counts;
}

uint64_t
simKeyDigest(const wl::KernelSpec &spec, const dfg::Mdfg &mdfg,
             const sched::Schedule &schedule,
             const adg::SysAdg &design,
             const sim::SimConfig &config)
{
    Fnv f;
    // Workload shape: the name alone does not pin trip counts or
    // array sizes (suites build the same kernel at many sizes).
    f.mixString(spec.name);
    f.mix(spec.loops.size());
    for (const auto &loop : spec.loops) {
        f.mix(static_cast<uint64_t>(loop.tripBase));
        f.mix(loop.tripCoeff.size());
        for (int64_t c : loop.tripCoeff)
            f.mix(static_cast<uint64_t>(c));
    }
    f.mix(spec.arrays.size());
    for (const auto &array : spec.arrays) {
        f.mixString(array.name);
        f.mix(static_cast<uint64_t>(array.type));
        f.mix(static_cast<uint64_t>(array.elements));
    }
    // Chosen variant.
    f.mixString(mdfg.name);
    f.mixString(schedule.mdfgName);
    // Design: double-salted tile fingerprint + system parameters.
    auto fp = design.adg.fingerprintPair(kAdgSaltA, kAdgSaltB);
    f.mix(fp.first);
    f.mix(fp.second);
    f.mix(static_cast<uint64_t>(design.sys.numTiles));
    f.mix(static_cast<uint64_t>(design.sys.l2Banks));
    f.mix(static_cast<uint64_t>(design.sys.l2CapacityKiB));
    f.mix(static_cast<uint64_t>(design.sys.nocBytes));
    f.mix(static_cast<uint64_t>(design.sys.dramChannels));
    // The schedule itself: equal fingerprints do not imply equal
    // schedules (the repair path depends on the annealing base), so
    // placements, routes, and FIFO settings are all part of the key.
    f.mix(schedule.placement.size());
    for (auto [node, site] : schedule.placement) {
        f.mix(static_cast<uint64_t>(node));
        f.mix(static_cast<uint64_t>(site));
    }
    f.mix(schedule.routes.size());
    for (auto [edge, route] : schedule.routes) {
        f.mix(static_cast<uint64_t>(edge));
        f.mix(route.size());
        for (auto hop : route)
            f.mix(static_cast<uint64_t>(hop));
    }
    f.mix(schedule.delayFifos.size());
    for (const auto &[node, fifos] : schedule.delayFifos) {
        f.mix(static_cast<uint64_t>(node));
        f.mix(fifos.size());
        for (const auto &[operand, depth] : fifos) {
            f.mix(static_cast<uint64_t>(operand));
            f.mix(static_cast<uint64_t>(depth));
        }
    }
    f.mix(static_cast<uint64_t>(schedule.maxImbalance));
    f.mix(sim::configDigest(config));
    return f.value();
}

sim::SimResult
warmSimulate(WarmSimCache *cache, const wl::KernelSpec &spec,
             const dfg::Mdfg &mdfg, const sched::Schedule &schedule,
             const adg::SysAdg &design, const sim::SimConfig &config,
             uint64_t checkpoint_every, WarmSimReport *out)
{
    auto report = [&](WarmSimOutcome outcome,
                      uint64_t cycles_skipped) {
        if (out != nullptr)
            *out = { outcome, cycles_skipped };
        if (cache != nullptr)
            cache->recordOutcome(outcome, cycles_skipped);
    };
    if (cache == nullptr) {
        wl::Memory memory;
        memory.init(spec);
        report(WarmSimOutcome::Miss, 0);
        return sim::simulate(spec, mdfg, schedule, design, memory,
                             config);
    }

    const uint64_t key =
        simKeyDigest(spec, mdfg, schedule, design, config);
    std::optional<WarmSimEntry> entry = cache->find(key);
    if (entry.has_value() && entry->terminal) {
        report(WarmSimOutcome::TerminalHit, 0);
        return entry->result;
    }

    // Resumable only when the stored run was truncated strictly below
    // this request's budget and actually left a checkpoint. (A prior
    // run with MORE budget that still truncated is not reusable for a
    // smaller budget — the small-budget result is a different prefix
    // than the stored endpoint.)
    sim::Snapshot resume_point;
    bool resumable = entry.has_value() && !entry->checkpoint.empty() &&
                     entry->probeCycles < config.maxCycles &&
                     sim::Snapshot::decode(entry->checkpoint,
                                           resume_point);

    if (checkpoint_every == 0)
        checkpoint_every = std::max<uint64_t>(1, config.maxCycles / 16);
    sim::LatestSnapshotSink sink;
    sim::SimConfig run_config = config;
    run_config.checkpointEvery = checkpoint_every;
    run_config.checkpointSink = &sink;

    wl::Memory memory;
    memory.init(spec);
    sim::SimResult result;
    if (resumable) {
        result = sim::resumeFrom(resume_point, spec, mdfg, schedule,
                                 design, memory, run_config);
        report(WarmSimOutcome::Resumed, entry->checkpointCycle);
    } else {
        result = sim::simulate(spec, mdfg, schedule, design, memory,
                               run_config);
        report(WarmSimOutcome::Miss, 0);
    }

    WarmSimEntry next;
    next.terminal = result.completed || result.deadlocked;
    next.result = result;
    if (!next.terminal) {
        next.probeCycles = config.maxCycles;
        if (sink.hasSnapshot()) {
            next.checkpoint = sink.latest.encode();
            next.checkpointCycle = sink.cycle;
        } else if (resumable) {
            // The suffix finished before its first checkpoint cadence
            // fired; the old checkpoint is still the best restart.
            next.checkpoint = entry->checkpoint;
            next.checkpointCycle = entry->checkpointCycle;
        }
    }
    cache->store(key, std::move(next));
    return result;
}

} // namespace overgen::dse
