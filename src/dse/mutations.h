#ifndef OVERGEN_DSE_MUTATIONS_H
#define OVERGEN_DSE_MUTATIONS_H

/**
 * @file
 * ADG mutation operators for the spatial DSE: random structural edits
 * plus the schedule-preserving transformations of paper §V-B — node
 * collapsing (Fig. 7a), edge-delay preservation (Fig. 7b), and
 * module-capability pruning — which simplify hardware while keeping
 * existing schedules valid.
 */

#include "common/rng.h"
#include "sched/schedule.h"

namespace overgen::dse {

/** What a mutation did (for logging/ablation accounting). */
enum class MutationKind : uint8_t
{
    RemoveSwitch,
    RemovePe,
    RemoveEdge,
    AddPe,
    AddSwitch,
    AddEdge,
    ResizePort,
    ResizeScratchpad,
    PruneCapabilities,
    PrunePortFlags,
    AddCapability,
    None,
};

/** @return printable mutation name. */
std::string mutationKindName(MutationKind kind);

/**
 * Apply one random mutation to @p adg.
 *
 * @param adg        the candidate (mutated in place)
 * @param schedules  current schedules over the pre-mutation ADG; used
 *                   by schedule-preserving transformations
 * @param mdfgs      the scheduled mDFGs (same order as schedules)
 * @param preserving enable schedule-preserving transformations; when
 *                   false, deletions and pruning are blind (the Fig.
 *                   20 ablation)
 * @param rng        randomness source
 * @return the mutation performed (None if nothing applicable).
 */
MutationKind mutateAdg(adg::Adg &adg,
                       const std::vector<sched::Schedule> &schedules,
                       const std::vector<const dfg::Mdfg *> &mdfgs,
                       bool preserving, Rng &rng);

/**
 * Node collapsing (paper Fig. 7a): delete @p victim and add, for every
 * route of @p schedules passing through it, a direct edge from the
 * route's predecessor to its successor whose delay preserves the
 * original path delay (edge-delay preservation, Fig. 7b).
 */
void collapseNode(adg::Adg &adg, adg::NodeId victim,
                  const std::vector<sched::Schedule> &schedules);

/**
 * Module-capability pruning (paper §V-B): shrink every PE's capability
 * set to the capabilities actually exercised by @p schedules, and drop
 * port features (padding / stated streams) no mapped stream needs.
 * PEs hosting no instruction keep one seed capability.
 */
int pruneCapabilities(adg::Adg &adg,
                      const std::vector<sched::Schedule> &schedules,
                      const std::vector<const dfg::Mdfg *> &mdfgs);

} // namespace overgen::dse

#endif // OVERGEN_DSE_MUTATIONS_H
