#ifndef OVERGEN_DSE_SIM_CACHE_H
#define OVERGEN_DSE_SIM_CACHE_H

/**
 * @file
 * Warm-started incremental cycle-simulation for DSE validation.
 *
 * The explorer's final validation (DseOptions::validateFinal) is the
 * only place the DSE pays for cycle simulation, and incremental
 * exploration (Fig. 18: workloads added one at a time, the domain
 * re-explored) re-validates many (kernel, design) pairs it has seen
 * before — either identically, or truncated at a cheaper probe
 * horizon. This cache memoizes those simulations by their full input
 * identity and exploits the sim layer's snapshot/restore contract
 * (see sim/snapshot.h) in two ways:
 *
 *  - terminal reuse: a run that ended for good (completed, or aborted
 *    by the deadlock watchdog) is replayed from the stored SimResult;
 *  - truncation resume: a run that ran out of cycle budget left its
 *    last engine checkpoint here; a later request with a larger
 *    budget resumes from that checkpoint and simulates only the
 *    unseen suffix. sim::resumeFrom is bit-identical to the
 *    uninterrupted run, and sim::configDigest excludes maxCycles
 *    precisely so a probe checkpoint stays valid under a larger
 *    budget.
 *
 * Determinism contract (same shape as EvalCache): every cached value
 * was produced by the computation a miss would run, so warmSimulate
 * returns bit-identical SimResults with the cache hot, cold, or
 * disabled — only wall-clock changes.
 *
 * Thread safety: one mutex guards the table; concurrent misses of
 * the same key both simulate and both store identical values.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/simulate.h"

namespace overgen::dse {

/** One memoized simulation (see file comment). */
struct WarmSimEntry
{
    /** The run ended for good: `result` is the final answer for any
     * cycle budget >= the one it ran under. */
    bool terminal = false;
    sim::SimResult result;
    /** Budget the truncated run was given (terminal == false). */
    uint64_t probeCycles = 0;
    /** Encoded last engine checkpoint of the truncated run (may be
     * empty when the run finished before its first checkpoint). */
    std::vector<uint8_t> checkpoint;
    /** Cycle the checkpoint was taken at (the prefix a resume skips). */
    uint64_t checkpointCycle = 0;
};

/** How warmSimulate satisfied a request. */
enum class WarmSimOutcome
{
    Miss,         //!< cold simulate()
    TerminalHit,  //!< cached final result returned outright
    Resumed,      //!< resumed from a truncation checkpoint
};

/** Per-call outcome detail (optional out-param of warmSimulate). */
struct WarmSimReport
{
    WarmSimOutcome how = WarmSimOutcome::Miss;
    /** Prefix cycles a resume did not re-simulate (0 otherwise). */
    uint64_t cyclesSkipped = 0;
};

/** Running totals, readable while the cache is in use. */
struct WarmSimStats
{
    uint64_t misses = 0;
    uint64_t terminalHits = 0;
    uint64_t resumes = 0;
    /** Cycles the resumed runs did NOT re-simulate (sum of resume
     * checkpoint cycles) — the incremental-evaluation win. */
    uint64_t cyclesSkipped = 0;
};

/** See file comment. */
class WarmSimCache
{
  public:
    std::optional<WarmSimEntry> find(uint64_t key) const;
    void store(uint64_t key, WarmSimEntry entry);
    void recordOutcome(WarmSimOutcome how, uint64_t cycles_skipped);
    WarmSimStats stats() const;

  private:
    mutable std::mutex mutex;
    std::map<uint64_t, WarmSimEntry> entries;
    WarmSimStats counts;
};

/**
 * Identity of one kernel cycle-simulation: FNV over the kernel name,
 * the chosen variant, the tile ADG's double-salted structural
 * fingerprint, the system parameters, the schedule (placements,
 * routes, delay FIFOs, imbalance), and sim::configDigest. Two runs
 * with equal digests simulate the same trajectory; maxCycles is
 * deliberately absent (see sim::configDigest).
 */
uint64_t simKeyDigest(const wl::KernelSpec &spec,
                      const dfg::Mdfg &mdfg,
                      const sched::Schedule &schedule,
                      const adg::SysAdg &design,
                      const sim::SimConfig &config);

/**
 * Simulate with memoization: terminal hits return the cached result,
 * truncation hits resume from the stored checkpoint, misses run cold
 * — every path bit-identical to sim::simulate with the same inputs.
 * Misses (and still-truncated resumes) checkpoint every
 * @p checkpoint_every cycles (0 derives maxCycles/16) and store their
 * outcome for the next caller. @p cache may be null (plain cold
 * simulation); @p report, when non-null, says which path was taken.
 */
sim::SimResult warmSimulate(WarmSimCache *cache,
                            const wl::KernelSpec &spec,
                            const dfg::Mdfg &mdfg,
                            const sched::Schedule &schedule,
                            const adg::SysAdg &design,
                            const sim::SimConfig &config,
                            uint64_t checkpoint_every = 0,
                            WarmSimReport *report = nullptr);

} // namespace overgen::dse

#endif // OVERGEN_DSE_SIM_CACHE_H
