#include "dse/eval_cache.h"

namespace overgen::dse {

std::optional<model::Resources>
EvalCache::findResources(const Key &key)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = resourceMap.find(key);
    if (it == resourceMap.end()) {
        ++counts.misses;
        return std::nullopt;
    }
    ++counts.hits;
    return it->second;
}

void
EvalCache::storeResources(const Key &key, const model::Resources &res)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = resourceMap.try_emplace(key, res);
    if (!inserted)
        return;  // concurrent miss recomputed the same value
    resourceOrder.push_back(key);
    while (resourceMap.size() > capacity) {
        resourceMap.erase(resourceOrder.front());
        resourceOrder.pop_front();
        ++counts.evictions;
    }
}

std::optional<CachedScheduleAll>
EvalCache::findScheduleAll(const Key &key, uint64_t epoch)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = scheduleMap.find(ScheduleKey{ key, epoch });
    if (it == scheduleMap.end()) {
        ++counts.misses;
        return std::nullopt;
    }
    ++counts.hits;
    return it->second;  // map-value copy: a deep copy by construction
}

void
EvalCache::storeScheduleAll(const Key &key, uint64_t epoch,
                            const CachedScheduleAll &result)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] =
        scheduleMap.try_emplace(ScheduleKey{ key, epoch }, result);
    if (!inserted)
        return;
    scheduleOrder.push_back(ScheduleKey{ key, epoch });
    while (scheduleMap.size() > capacity) {
        scheduleMap.erase(scheduleOrder.front());
        scheduleOrder.pop_front();
        ++counts.evictions;
    }
}

EvalCacheStats
EvalCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counts;
}

} // namespace overgen::dse
