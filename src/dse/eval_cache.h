#ifndef OVERGEN_DSE_EVAL_CACHE_H
#define OVERGEN_DSE_EVAL_CACHE_H

/**
 * @file
 * Bounded, thread-safe memoization of the expensive halves of DSE
 * candidate evaluation, keyed by ADG structural fingerprint (see
 * Adg::fingerprint and DESIGN.md "Evaluation cache and model split").
 * The annealer's mutate/reject cycles revisit structurally identical
 * designs; a revisit costs a hash lookup instead of a re-schedule.
 *
 * Two tables:
 *  - tile resources: fingerprint -> model::Resources. Pure function
 *    of the ADG, valid for the whole exploration.
 *  - schedule-all results: (fingerprint, epoch) -> schedules +
 *    variant choices (or a cached infeasibility). The scheduler's
 *    repair path reads the *current* design's schedules, so results
 *    are only reusable while the annealer's base design is unchanged;
 *    the epoch — bumped by the explorer on every acceptance — scopes
 *    entries to one base design.
 *
 * Determinism contract: every cached value was produced by the same
 * pure computation a miss would run, so hits return (deep copies of)
 * bit-identical results — the cache changes wall-clock, never the
 * trajectory. Keys pair two independently salted 64-bit fingerprints,
 * so a false hit needs a simultaneous collision in both.
 *
 * Thread safety: one mutex per cache guards both tables; lookups and
 * inserts from the explorer's parallel candidate evaluation are safe.
 * Concurrent misses of the same key may compute the value twice and
 * both insert — identical values, so last-writer-wins is harmless.
 */

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "model/resources.h"
#include "sched/schedule.h"

namespace overgen::dse {

/** Memoized outcome of scheduling every kernel onto one candidate
 * ADG (the explorer's schedule_all). Infeasible designs are cached
 * too — re-discovering unschedulability is as expensive as
 * scheduling. */
struct CachedScheduleAll
{
    bool feasible = false;
    /** Per-kernel schedules; empty when infeasible. */
    std::vector<sched::Schedule> schedules;
    /** Per-kernel chosen variant indices; empty when infeasible. */
    std::vector<int> variantIndex;
};

/** Running totals, readable while the cache is in use. */
struct EvalCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
};

/** See file comment. */
class EvalCache
{
  public:
    /** Double-fingerprint key (two salts of Adg::fingerprint). */
    using Key = std::pair<uint64_t, uint64_t>;

    /** @p capacity bounds EACH table's entry count (FIFO eviction). */
    explicit EvalCache(size_t capacity) : capacity(capacity) {}

    /** @return a copy of the cached tile resources, if present. */
    std::optional<model::Resources> findResources(const Key &key);
    void storeResources(const Key &key, const model::Resources &res);

    /** @return a deep copy of the cached schedule-all result for
     * (@p key, @p epoch), if present. */
    std::optional<CachedScheduleAll> findScheduleAll(const Key &key,
                                                    uint64_t epoch);
    void storeScheduleAll(const Key &key, uint64_t epoch,
                          const CachedScheduleAll &result);

    /** Cumulative hit/miss/eviction counts over both tables. */
    EvalCacheStats stats() const;

  private:
    using ScheduleKey = std::pair<Key, uint64_t>;

    size_t capacity;
    mutable std::mutex mutex;
    std::map<Key, model::Resources> resourceMap;
    std::deque<Key> resourceOrder;  //!< FIFO eviction queue
    std::map<ScheduleKey, CachedScheduleAll> scheduleMap;
    std::deque<ScheduleKey> scheduleOrder;
    EvalCacheStats counts;
};

} // namespace overgen::dse

#endif // OVERGEN_DSE_EVAL_CACHE_H
