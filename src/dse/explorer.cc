#include "dse/explorer.h"

#include <chrono>
#include <cmath>

#include "adg/builders.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "compiler/compile.h"
#include "dse/mutations.h"
#include "model/oracle.h"
#include "telemetry/sink.h"

namespace overgen::dse {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** State of one candidate evaluation. */
struct Candidate
{
    adg::Adg adg;
    adg::SystemParams sys;
    std::vector<int> variantIndex;           //!< per kernel
    std::vector<sched::Schedule> schedules;  //!< per kernel
    double objective = 0.0;
    model::Resources resources;
    double utilization = 0.0;
    bool valid = false;
};

} // namespace

adg::Adg
seedTile(const std::vector<wl::KernelSpec> &kernels)
{
    OG_ASSERT(!kernels.empty(), "DSE without kernels");
    // Capability closure over the domain's ops.
    std::set<FuCapability> caps;
    bool indirect = false;
    bool variable = false;
    int max_unroll = 1;
    int max_elem = 1;
    for (const wl::KernelSpec &k : kernels) {
        for (const wl::OpSpec &op : k.ops)
            caps.insert({ op.op, op.type });
        for (const wl::AccessSpec &access : k.accesses)
            indirect |= access.indirect();
        for (const wl::LoopSpec &loop : k.loops)
            variable |= loop.variable;
        max_unroll = std::max(max_unroll, k.maxUnroll);
        max_elem =
            std::max(max_elem, dataTypeBytes(k.dominantType()));
    }
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes =
        std::clamp(max_unroll * max_elem, 16, 64);
    config.numScratchpads = 2;
    config.spadCapacityKiB = 32;
    config.indirect = indirect;
    // Stream engines are line-wide regardless of datapath width: the
    // DMA's issue rate, not the fabric width, sets its bandwidth.
    config.dmaBandwidthBytes = 64;
    config.peCapabilities = std::move(caps);
    adg::Adg tile = adg::buildMeshTile(config);
    if (!variable) {
        // The seed is generous; pruning will trim stated-stream
        // support via the DSE when it is never needed.
    }
    return tile;
}

DseResult
exploreOverlay(const std::vector<wl::KernelSpec> &kernels,
               const DseOptions &options,
               const model::FpgaResourceModel *resource_model)
{
    auto start = Clock::now();
    const model::FpgaResourceModel &prices =
        resource_model ? *resource_model
                       : model::FpgaResourceModel::defaultModel();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();
    Rng rng(options.seed);

    // Pre-generate all variants once (paper §V-A): DSE never
    // recompiles from scratch.
    compiler::CompileOptions copts;
    copts.applyTuning = options.applyTuning;
    std::vector<std::vector<dfg::Mdfg>> variants;
    variants.reserve(kernels.size());
    for (const wl::KernelSpec &k : kernels)
        variants.push_back(compiler::compileVariants(k, copts));

    // Schedule all kernels on an ADG, preferring prior schedules.
    auto schedule_all =
        [&](const adg::Adg &tile,
            const Candidate *prior) -> std::optional<Candidate> {
        Candidate cand;
        cand.adg = tile;
        sched::SpatialScheduler scheduler(
            tile, sched::SchedulerOptions{ options.seed, 2 });
        for (size_t k = 0; k < kernels.size(); ++k) {
            std::optional<sched::Schedule> best;
            int best_variant = -1;
            // Try repair of the prior variant first, then walk the
            // variant list most-aggressive-first.
            if (prior && prior->variantIndex[k] >= 0) {
                auto repaired = scheduler.repair(
                    variants[k][prior->variantIndex[k]],
                    prior->schedules[k]);
                if (repaired) {
                    best = std::move(repaired);
                    best_variant = prior->variantIndex[k];
                }
            }
            if (!best) {
                auto fit = scheduler.scheduleFirstFit(variants[k]);
                if (fit) {
                    best = std::move(fit->first);
                    best_variant = fit->second;
                }
            }
            if (!best)
                return std::nullopt;  // abandon ADG* (paper Fig. 6)
            cand.schedules.push_back(std::move(*best));
            cand.variantIndex.push_back(best_variant);
        }
        return cand;
    };

    // Nested exhaustive system DSE (paper §V-A): pick the best system
    // parameters for a scheduled ADG under the resource budget.
    auto system_dse = [&](Candidate &cand) {
        model::Resources tile_res = prices.tileResources(cand.adg);
        tile_res += model::synthesizeControlCore();
        double best_score = -1.0;
        for (int tiles : options.tileCountGrid) {
            for (int banks : options.l2BankGrid) {
                for (int noc : options.nocBytesGrid) {
                    for (int l2_kib : options.l2CapacityGrid) {
                        for (int channels : options.dramChannelGrid) {
                            adg::SystemParams sys;
                            sys.numTiles = tiles;
                            sys.l2Banks = banks;
                            sys.nocBytes = noc;
                            sys.l2CapacityKiB = l2_kib;
                            sys.dramChannels = channels;
                            model::Resources total =
                                tile_res * static_cast<double>(tiles);
                            total += model::synthesizeUncore(sys);
                            double util =
                                device.worstUtilization(total);
                            if (util > options.budgetFraction)
                                continue;
                            // Estimated performance objective.
                            std::vector<model::PerfBreakdown> perf;
                            std::vector<double> weights;
                            for (size_t k = 0; k < kernels.size();
                                 ++k) {
                                const dfg::Mdfg &m =
                                    variants[k]
                                            [cand.variantIndex[k]];
                                model::PerfInput input;
                                input.mdfg = &m;
                                input.backing =
                                    sched::backingFromSchedule(
                                        cand.schedules[k], cand.adg,
                                        m);
                                model::PerfBreakdown b =
                                    model::estimateIpc(
                                        input, cand.adg, sys,
                                        options.perf);
                                b.ipc *= cand.schedules[k]
                                             .throughputFactor();
                                perf.push_back(b);
                                weights.push_back(m.weight);
                            }
                            double ipc = model::performanceObjective(
                                perf, weights);
                            // Secondary objective: prefer fewer
                            // resources per accelerator (paper §V-A).
                            double score =
                                std::log(ipc) -
                                0.03 * (tile_res.lut /
                                        device.total.lut);
                            if (score > best_score) {
                                best_score = score;
                                cand.sys = sys;
                                cand.objective = ipc;
                                cand.resources = total;
                                cand.utilization = util;
                                cand.valid = true;
                            }
                        }
                    }
                }
            }
        }
        return cand.valid;
    };

    DseResult result;

    // Seed.
    Candidate current;
    {
        auto seeded = schedule_all(seedTile(kernels), nullptr);
        OG_ASSERT(seeded.has_value(),
                  "seed tile cannot host the domain");
        current = std::move(*seeded);
        bool ok = system_dse(current);
        OG_ASSERT(ok, "seed design exceeds the device budget");
    }
    Candidate best = current;
    result.convergence.push_back(
        { secondsSince(start), 0, current.objective });

    // Per-iteration telemetry: one JSONL record each, plus registry
    // counters (see DseOptions::sink).
    telemetry::Sink *sink = options.sink;
    auto log_iteration = [&](int iter, double temperature,
                             const std::vector<MutationKind> &edits,
                             bool accepted, bool abandoned,
                             const Candidate &state) {
        if (sink == nullptr)
            return;
        telemetry::Registry &reg = sink->registry();
        reg.counter("dse/iterations").inc();
        if (accepted)
            reg.counter("dse/accepted").inc();
        if (abandoned)
            reg.counter("dse/abandoned").inc();
        for (MutationKind kind : edits) {
            reg.counter("dse/mutations/" + mutationKindName(kind))
                .inc();
        }
        Json record = Json::makeObject();
        if (!options.telemetryLabel.empty())
            record.set("run", Json(options.telemetryLabel));
        record.set("iteration", Json(iter));
        record.set("seconds", Json(secondsSince(start)));
        record.set("temperature", Json(temperature));
        record.set("objective", Json(state.objective));
        record.set("best_objective", Json(best.objective));
        record.set("accepted", Json(accepted));
        record.set("abandoned", Json(abandoned));
        record.set("utilization", Json(state.utilization));
        record.set("resource_slack",
                   Json(options.budgetFraction - state.utilization));
        Json kinds = Json::makeArray();
        for (MutationKind kind : edits)
            kinds.push(Json(mutationKindName(kind)));
        record.set("mutations", std::move(kinds));
        sink->logDse(record);
    };

    // Batched speculative annealing (see DESIGN.md "Determinism
    // under parallelism"): each round draws `speculation` candidate
    // mutations from per-candidate Rng streams split off the master
    // seed, evaluates them concurrently (schedule repair + nested
    // system DSE + objective), then applies accept decisions in fixed
    // candidate order. The trajectory depends on the seed and the
    // speculation width, never on the thread count. An acceptance
    // invalidates the rest of its round — those candidates were
    // mutated from the superseded base design — so they are
    // discarded unexamined without consuming iteration budget.
    const int speculation = std::max(1, options.speculation);
    ThreadPool pool(options.threads);

    /** One speculated candidate: its private rng stream (mutation
     * draws, then the accept draw), the edits applied, and the
     * evaluated design (nullopt when unschedulable or over budget). */
    struct Eval
    {
        Rng rng;
        std::vector<MutationKind> edits;
        std::optional<Candidate> cand;
    };

    double temperature = options.initialTemperature;
    int examined = 0;
    while (examined < options.iterations) {
        int width = std::min(speculation,
                             options.iterations - examined);
        // Split per-candidate seeds off the master stream in slot
        // order, before any (unordered) parallel work.
        std::vector<uint64_t> seeds(width);
        for (uint64_t &seed : seeds)
            seed = rng.next();
        // The round's shared base: mDFG choices of `current`.
        std::vector<const dfg::Mdfg *> base_mdfgs;
        for (size_t k = 0; k < kernels.size(); ++k) {
            base_mdfgs.push_back(
                &variants[k][current.variantIndex[k]]);
        }
        result.evaluated += width;
        std::vector<Eval> evals = pool.parallelMap(
            static_cast<size_t>(width), [&](size_t slot) {
                Eval ev;
                ev.rng = Rng(seeds[slot]);
                adg::Adg mutated = current.adg;
                int edits =
                    1 + static_cast<int>(ev.rng.nextBelow(3));
                ev.edits.reserve(edits);
                for (int e = 0; e < edits; ++e) {
                    ev.edits.push_back(mutateAdg(
                        mutated, current.schedules, base_mdfgs,
                        options.schedulePreserving, ev.rng));
                }
                if (!mutated.validate().empty())
                    return ev;  // abandoned
                auto cand = schedule_all(mutated, &current);
                if (cand && system_dse(*cand))
                    ev.cand = std::move(cand);
                return ev;
            });

        // Sequential accept scan in slot order (single-threaded: all
        // telemetry and trajectory state is touched only here).
        for (int slot = 0; slot < width; ++slot) {
            Eval &ev = evals[slot];
            ++examined;
            ++result.iterationsRun;
            if (!ev.cand) {
                ++result.abandoned;
                log_iteration(examined, temperature, ev.edits, false,
                              true, current);
                continue;
            }
            // Simulated-annealing acceptance on log-objective.
            double delta = std::log(ev.cand->objective) -
                           std::log(current.objective);
            bool accept =
                delta >= 0.0 ||
                ev.rng.nextDouble() < std::exp(delta / temperature);
            if (accept) {
                current = std::move(*ev.cand);
                ++result.accepted;
                if (current.objective > best.objective)
                    best = current;
                log_iteration(examined, temperature, ev.edits, true,
                              false, current);
            } else {
                log_iteration(examined, temperature, ev.edits, false,
                              false, *ev.cand);
            }
            temperature *= 0.97;
            result.convergence.push_back(
                { secondsSince(start), examined, best.objective });
            if (accept) {
                result.discarded += width - slot - 1;
                break;  // the rest of the round speculated on a
                        // stale base
            }
        }
    }

    // Package the best design.
    result.design.adg = best.adg;
    result.design.sys = best.sys;
    result.objective = best.objective;
    result.resources = best.resources;
    result.utilization = best.utilization;
    for (size_t k = 0; k < kernels.size(); ++k) {
        const dfg::Mdfg &m = variants[k][best.variantIndex[k]];
        model::PerfInput input;
        input.mdfg = &m;
        input.backing = sched::backingFromSchedule(best.schedules[k],
                                                   best.adg, m);
        model::PerfBreakdown b =
            model::estimateIpc(input, best.adg, best.sys,
                               options.perf);
        KernelMapping mapping;
        mapping.kernel = kernels[k].name;
        mapping.variantIndex = best.variantIndex[k];
        mapping.variantName = m.name;
        mapping.estimatedIpc =
            b.ipc * best.schedules[k].throughputFactor();
        mapping.bottleneck = b.bottleneck;
        result.mappings.push_back(std::move(mapping));
        result.schedules.push_back(best.schedules[k]);
        result.mdfgs.push_back(m);
    }
    result.elapsedSeconds = secondsSince(start);
    return result;
}

} // namespace overgen::dse
