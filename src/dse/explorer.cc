#include "dse/explorer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>

#include "adg/builders.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "sim/batch.h"
#include "compiler/compile.h"
#include "dse/eval_cache.h"
#include "dse/mutations.h"
#include "dse/sim_cache.h"
#include "model/oracle.h"
#include "telemetry/sink.h"

namespace overgen::dse {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** State of one candidate evaluation. */
struct Candidate
{
    adg::Adg adg;
    adg::SystemParams sys;
    std::vector<int> variantIndex;           //!< per kernel
    std::vector<sched::Schedule> schedules;  //!< per kernel
    double objective = 0.0;
    model::Resources resources;
    double utilization = 0.0;
    bool valid = false;
    /** @name Phase features at the chosen system point (computed
     * under both objectives; Phase mode also weights the score by
     * the steady fractions). @{ */
    double phaseRampMean = 0.0;       //!< mean ramp cycles per kernel
    double phaseSteadyFracMin = 1.0;  //!< worst kernel's S/(S+R)
    double phaseSteadyFracMean = 1.0;
    /// @}
};

} // namespace

const char *
dseObjectiveName(DseObjective objective)
{
    switch (objective) {
    case DseObjective::Scalar:
        return "scalar";
    case DseObjective::Phase:
        return "phase";
    }
    return "?";
}

adg::Adg
seedTile(const std::vector<wl::KernelSpec> &kernels)
{
    OG_ASSERT(!kernels.empty(), "DSE without kernels");
    // Capability closure over the domain's ops.
    std::set<FuCapability> caps;
    bool indirect = false;
    bool variable = false;
    int max_unroll = 1;
    int max_elem = 1;
    for (const wl::KernelSpec &k : kernels) {
        for (const wl::OpSpec &op : k.ops)
            caps.insert({ op.op, op.type });
        for (const wl::AccessSpec &access : k.accesses)
            indirect |= access.indirect();
        for (const wl::LoopSpec &loop : k.loops)
            variable |= loop.variable;
        max_unroll = std::max(max_unroll, k.maxUnroll);
        max_elem =
            std::max(max_elem, dataTypeBytes(k.dominantType()));
    }
    adg::MeshConfig config;
    config.rows = 5;
    config.cols = 5;
    config.tracks = 2;
    config.numPes = 20;
    config.numInPorts = 12;
    config.numOutPorts = 6;
    config.datapathBytes =
        std::clamp(max_unroll * max_elem, 16, 64);
    config.numScratchpads = 2;
    config.spadCapacityKiB = 32;
    config.indirect = indirect;
    // Stream engines are line-wide regardless of datapath width: the
    // DMA's issue rate, not the fabric width, sets its bandwidth.
    config.dmaBandwidthBytes = 64;
    config.peCapabilities = std::move(caps);
    adg::Adg tile = adg::buildMeshTile(config);
    if (!variable) {
        // The seed is generous; pruning will trim stated-stream
        // support via the DSE when it is never needed.
    }
    return tile;
}

DseResult
exploreOverlay(const std::vector<wl::KernelSpec> &kernels,
               const DseOptions &options,
               const model::FpgaResourceModel *resource_model)
{
    auto start = Clock::now();
    const model::FpgaResourceModel &prices =
        resource_model ? *resource_model
                       : model::FpgaResourceModel::defaultModel();
    model::FpgaDevice device = model::FpgaDevice::xcvu9p();
    Rng rng(options.seed);

    // Pre-generate all variants once (paper §V-A): DSE never
    // recompiles from scratch.
    compiler::CompileOptions copts;
    copts.applyTuning = options.applyTuning;
    std::vector<std::vector<dfg::Mdfg>> variants;
    variants.reserve(kernels.size());
    for (const wl::KernelSpec &k : kernels)
        variants.push_back(compiler::compileVariants(k, copts));

    // Schedule all kernels on an ADG, preferring prior schedules.
    // Takes the tile by value: callers hand over their (freshly
    // mutated) copy, so the candidate adopts it without another
    // deep graph copy.
    auto schedule_all =
        [&](adg::Adg tile,
            const Candidate *prior) -> std::optional<Candidate> {
        Candidate cand;
        cand.adg = std::move(tile);
        sched::SpatialScheduler scheduler(
            cand.adg, sched::SchedulerOptions{ options.seed, 2 });
        for (size_t k = 0; k < kernels.size(); ++k) {
            std::optional<sched::Schedule> best;
            int best_variant = -1;
            // Try repair of the prior variant first, then walk the
            // variant list most-aggressive-first.
            if (prior && prior->variantIndex[k] >= 0) {
                auto repaired = scheduler.repair(
                    variants[k][prior->variantIndex[k]],
                    prior->schedules[k]);
                if (repaired) {
                    best = std::move(repaired);
                    best_variant = prior->variantIndex[k];
                }
            }
            if (!best) {
                auto fit = scheduler.scheduleFirstFit(variants[k]);
                if (fit) {
                    best = std::move(fit->first);
                    best_variant = fit->second;
                }
            }
            if (!best)
                return std::nullopt;  // abandon ADG* (paper Fig. 6)
            cand.schedules.push_back(std::move(*best));
            cand.variantIndex.push_back(best_variant);
        }
        return cand;
    };

    // Evaluation cache (see eval_cache.h): schedule-all results are
    // scoped to the current base design via `epoch` (bumped on every
    // acceptance — the scheduler's repair path reads `current`);
    // tile resource vectors are pure in the ADG and epoch-free.
    std::unique_ptr<EvalCache> cache;
    if (options.evalCache)
        cache = std::make_unique<EvalCache>(options.evalCacheEntries);
    uint64_t epoch = 0;
    auto cache_key = [](const adg::Adg &adg) {
        auto [a, b] =
            adg.fingerprintPair(0, 0x517cc1b727220a95ull);
        return EvalCache::Key{ a, b };
    };
    auto tile_resources =
        [&](const adg::Adg &adg,
            const std::optional<EvalCache::Key> &key) {
            if (key) {
                if (auto hit = cache->findResources(*key))
                    return *hit;
            }
            model::Resources res = prices.tileResources(adg);
            if (key)
                cache->storeResources(*key, res);
            return res;
        };

    // System-grid axes, ascending: resources are monotone in each
    // axis, so once a point exceeds the budget the rest of its axis
    // (and, when it was the axis's first point, the enclosing
    // subtree) is provably over budget and pruned wholesale.
    auto ascending = [](std::vector<int> v) {
        std::sort(v.begin(), v.end());
        return v;
    };
    const std::vector<int> tile_grid = ascending(options.tileCountGrid);
    const std::vector<int> bank_grid = ascending(options.l2BankGrid);
    const std::vector<int> noc_grid = ascending(options.nocBytesGrid);
    const std::vector<int> l2_grid = ascending(options.l2CapacityGrid);
    const std::vector<int> chan_grid =
        ascending(options.dramChannelGrid);
    std::atomic<uint64_t> grid_pruned{ 0 };

    // Nested exhaustive system DSE (paper §V-A): pick the best system
    // parameters for a scheduled ADG under the resource budget. The
    // per-kernel perf precomputation and the backing derivation are
    // hoisted out of the grid — only combineSystemPerf runs per point.
    auto system_dse = [&](Candidate &cand,
                          const model::Resources &tile_only) {
        model::Resources tile_res = tile_only;
        tile_res += model::synthesizeControlCore();
        std::vector<model::TilePerfSummary> summaries;
        std::vector<double> weights;
        std::vector<double> throughput;
        // Phase features: per-kernel model ramp (a function of the
        // chosen variant's stream count, system-independent) and the
        // source-iteration totals the steady span has to cover.
        std::vector<double> ramp;
        std::vector<double> iters;
        summaries.reserve(kernels.size());
        for (size_t k = 0; k < kernels.size(); ++k) {
            const dfg::Mdfg &m = variants[k][cand.variantIndex[k]];
            summaries.push_back(model::precomputeTilePerf(
                m,
                sched::backingFromSchedule(cand.schedules[k],
                                           cand.adg, m),
                cand.adg));
            weights.push_back(m.weight);
            throughput.push_back(
                cand.schedules[k].throughputFactor());
            ramp.push_back(model::estimateRampCycles(m, options.phase));
            iters.push_back(static_cast<double>(
                std::max<int64_t>(kernels[k].totalIterations(), 1)));
        }
        const bool phase_mode =
            options.objective == DseObjective::Phase;
        double ramp_sum = 0.0;
        for (double r : ramp)
            ramp_sum += r;
        cand.phaseRampMean =
            ramp_sum / static_cast<double>(kernels.size());
        std::vector<model::PerfBreakdown> perf(kernels.size());
        double best_score = -1.0;
        uint64_t pruned = 0;
        const size_t nb = bank_grid.size(), nn = noc_grid.size();
        const size_t nl = l2_grid.size(), nc = chan_grid.size();
        for (size_t ti = 0; ti < tile_grid.size(); ++ti) {
            bool tiles_over = false;  // over budget at subtree start
            for (size_t bi = 0; bi < nb; ++bi) {
                bool banks_over = false;
                for (size_t ni = 0; ni < nn; ++ni) {
                    bool noc_over = false;
                    for (size_t li = 0; li < nl; ++li) {
                        bool l2_over = false;
                        for (size_t ci = 0; ci < nc; ++ci) {
                            adg::SystemParams sys;
                            sys.numTiles = tile_grid[ti];
                            sys.l2Banks = bank_grid[bi];
                            sys.nocBytes = noc_grid[ni];
                            sys.l2CapacityKiB = l2_grid[li];
                            sys.dramChannels = chan_grid[ci];
                            model::Resources total =
                                tile_res *
                                static_cast<double>(sys.numTiles);
                            total += model::synthesizeUncore(sys);
                            double util =
                                device.worstUtilization(total);
                            if (util > options.budgetFraction) {
                                // Larger channel counts only grow.
                                pruned += nc - ci - 1;
                                l2_over = ci == 0;
                                break;
                            }
                            // Estimated performance objective. The
                            // steady fraction S/(S+R) is computed for
                            // every kernel under both objectives
                            // (logged as phase features); Phase mode
                            // also weights each kernel's IPC by it —
                            // the estimated whole-run average IPC
                            // including the ramp.
                            double frac_min = 1.0;
                            double frac_sum = 0.0;
                            for (size_t k = 0; k < kernels.size();
                                 ++k) {
                                perf[k] = model::combineSystemPerf(
                                    summaries[k], sys, options.perf);
                                perf[k].ipc *= throughput[k];
                                double rate = perf[k].workRate *
                                              throughput[k];
                                double steady =
                                    rate > 0.0 ? iters[k] / rate : 0.0;
                                double frac =
                                    steady > 0.0
                                        ? steady / (steady + ramp[k])
                                        : 0.0;
                                frac_min = std::min(frac_min, frac);
                                frac_sum += frac;
                                if (phase_mode)
                                    perf[k].ipc *= frac;
                            }
                            double ipc = model::performanceObjective(
                                perf, weights);
                            // Secondary objective: prefer fewer
                            // resources per accelerator (paper §V-A).
                            double score =
                                std::log(ipc) -
                                0.03 * (tile_res.lut /
                                        device.total.lut);
                            if (score > best_score) {
                                best_score = score;
                                cand.sys = sys;
                                cand.objective = ipc;
                                cand.resources = total;
                                cand.utilization = util;
                                cand.valid = true;
                                cand.phaseSteadyFracMin = frac_min;
                                cand.phaseSteadyFracMean =
                                    frac_sum /
                                    static_cast<double>(
                                        kernels.size());
                            }
                        }
                        if (l2_over) {
                            pruned += (nl - li - 1) * nc;
                            noc_over = li == 0;
                            break;
                        }
                    }
                    if (noc_over) {
                        pruned += (nn - ni - 1) * nl * nc;
                        banks_over = ni == 0;
                        break;
                    }
                }
                if (banks_over) {
                    pruned += (nb - bi - 1) * nn * nl * nc;
                    tiles_over = bi == 0;
                    break;
                }
            }
            if (tiles_over) {
                pruned += (tile_grid.size() - ti - 1) * nb * nn * nl *
                          nc;
                break;
            }
        }
        grid_pruned.fetch_add(pruned, std::memory_order_relaxed);
        return cand.valid;
    };

    // The annealer's base design; declared ahead of the evaluation
    // lambda because schedule repair reads its schedules.
    Candidate current;

    // Full candidate evaluation: fingerprint -> (cached or fresh)
    // schedule-all -> (cached or fresh) tile resources -> system DSE.
    // Infeasibility (unschedulable kernel) is cached too.
    auto evaluate_candidate =
        [&](adg::Adg mutated) -> std::optional<Candidate> {
        std::optional<EvalCache::Key> key;
        if (cache)
            key = cache_key(mutated);
        std::optional<Candidate> cand;
        bool sched_cached = false;
        if (key) {
            if (auto hit = cache->findScheduleAll(*key, epoch)) {
                sched_cached = true;
                if (hit->feasible) {
                    Candidate c;
                    c.adg = std::move(mutated);
                    c.schedules = std::move(hit->schedules);
                    c.variantIndex = std::move(hit->variantIndex);
                    cand = std::move(c);
                }
            }
        }
        if (!sched_cached) {
            cand = schedule_all(std::move(mutated), &current);
            if (key) {
                CachedScheduleAll entry;
                entry.feasible = cand.has_value();
                if (cand) {
                    entry.schedules = cand->schedules;
                    entry.variantIndex = cand->variantIndex;
                }
                cache->storeScheduleAll(*key, epoch, entry);
            }
        }
        if (!cand)
            return std::nullopt;
        if (!system_dse(*cand, tile_resources(cand->adg, key)))
            return std::nullopt;
        return cand;
    };

    DseResult result;

    // Seed. Scheduled outside the cache (no base design to repair
    // from yet); bumping the epoch afterwards keeps later lookups
    // from ever aliasing this prior-less evaluation.
    {
        auto seeded = schedule_all(seedTile(kernels), nullptr);
        OG_ASSERT(seeded.has_value(),
                  "seed tile cannot host the domain");
        current = std::move(*seeded);
        std::optional<EvalCache::Key> key;
        if (cache)
            key = cache_key(current.adg);
        bool ok = system_dse(current, tile_resources(current.adg, key));
        OG_ASSERT(ok, "seed design exceeds the device budget");
        epoch = 1;
    }
    Candidate best = current;
    result.convergence.push_back(
        { secondsSince(start), 0, current.objective });

    // Per-iteration telemetry: one JSONL record each, plus registry
    // counters (see DseOptions::sink).
    telemetry::Sink *sink = options.sink;
    auto log_iteration = [&](int iter, double temperature,
                             const std::vector<MutationKind> &edits,
                             bool accepted, bool abandoned,
                             const Candidate &state) {
        if (sink == nullptr)
            return;
        telemetry::Registry &reg = sink->registry();
        reg.counter("dse/iterations").inc();
        if (accepted)
            reg.counter("dse/accepted").inc();
        if (abandoned)
            reg.counter("dse/abandoned").inc();
        for (MutationKind kind : edits) {
            reg.counter("dse/mutations/" + mutationKindName(kind))
                .inc();
        }
        Json record = Json::makeObject();
        if (!options.telemetryLabel.empty())
            record.set("run", Json(options.telemetryLabel));
        record.set("iteration", Json(iter));
        record.set("seconds", Json(secondsSince(start)));
        record.set("temperature", Json(temperature));
        record.set("objective", Json(state.objective));
        record.set("best_objective", Json(best.objective));
        record.set("accepted", Json(accepted));
        record.set("abandoned", Json(abandoned));
        record.set("utilization", Json(state.utilization));
        record.set("resource_slack",
                   Json(options.budgetFraction - state.utilization));
        // Phase features of the logged state — deterministic model
        // quantities (not wall-clock-flavored), present under both
        // objectives.
        Json phases = Json::makeObject();
        phases.set("objective",
                   Json(dseObjectiveName(options.objective)));
        phases.set("ramp_mean", Json(state.phaseRampMean));
        phases.set("steady_frac_min", Json(state.phaseSteadyFracMin));
        phases.set("steady_frac_mean",
                   Json(state.phaseSteadyFracMean));
        record.set("phases", std::move(phases));
        // Cumulative at the round barrier, so deterministic across
        // thread counts and cache settings.
        record.set("grid_pruned",
                   Json(static_cast<int64_t>(
                       grid_pruned.load(std::memory_order_relaxed))));
        // Cache traffic is wall-clock-flavored observability (racing
        // workers shift the hit/miss split): consumers comparing
        // trajectories must strip it, like "seconds".
        if (cache != nullptr) {
            EvalCacheStats stats = cache->stats();
            Json traffic = Json::makeObject();
            traffic.set("hits",
                        Json(static_cast<int64_t>(stats.hits)));
            traffic.set("misses",
                        Json(static_cast<int64_t>(stats.misses)));
            traffic.set("evictions",
                        Json(static_cast<int64_t>(stats.evictions)));
            record.set("cache", std::move(traffic));
        }
        Json kinds = Json::makeArray();
        for (MutationKind kind : edits)
            kinds.push(Json(mutationKindName(kind)));
        record.set("mutations", std::move(kinds));
        sink->logDse(record);
    };

    // Batched speculative annealing (see DESIGN.md "Determinism
    // under parallelism"): each round draws `speculation` candidate
    // mutations from per-candidate Rng streams split off the master
    // seed, evaluates them concurrently (schedule repair + nested
    // system DSE + objective), then applies accept decisions in fixed
    // candidate order. The trajectory depends on the seed and the
    // speculation width, never on the thread count. An acceptance
    // invalidates the rest of its round — those candidates were
    // mutated from the superseded base design — so they are
    // discarded unexamined without consuming iteration budget.
    const int speculation = std::max(1, options.speculation);
    ThreadPool pool(options.threads);

    /** One speculated candidate: its private rng stream (mutation
     * draws, then the accept draw), the edits applied, and the
     * evaluated design (nullopt when unschedulable or over budget). */
    struct Eval
    {
        Rng rng;
        std::vector<MutationKind> edits;
        std::optional<Candidate> cand;
    };

    // Round-granular heartbeat: everything in it is round-barrier
    // state (deterministic across thread counts) except the
    // wall-clock-flavored rate fields, which trajectory comparisons
    // strip exactly like "seconds" and "cache".
    int round = 0;
    auto log_heartbeat = [&](int iter, double temperature,
                             bool force) {
        if (sink == nullptr || options.heartbeatEvery <= 0)
            return;
        if (!force && round % options.heartbeatEvery != 0)
            return;
        sink->registry().counter("dse/heartbeats").inc();
        double seconds = secondsSince(start);
        Json record = Json::makeObject();
        record.set("type", Json("heartbeat"));
        if (!options.telemetryLabel.empty())
            record.set("run", Json(options.telemetryLabel));
        record.set("iteration", Json(iter));
        record.set("evaluated", Json(result.evaluated));
        record.set("accepted", Json(result.accepted));
        record.set("abandoned", Json(result.abandoned));
        record.set("best_objective", Json(best.objective));
        record.set("temperature", Json(temperature));
        record.set("grid_pruned",
                   Json(static_cast<int64_t>(
                       grid_pruned.load(std::memory_order_relaxed))));
        Json phases = Json::makeObject();
        phases.set("objective",
                   Json(dseObjectiveName(options.objective)));
        phases.set("ramp_mean", Json(best.phaseRampMean));
        phases.set("steady_frac_min", Json(best.phaseSteadyFracMin));
        phases.set("steady_frac_mean", Json(best.phaseSteadyFracMean));
        record.set("phases", std::move(phases));
        record.set("seconds", Json(seconds));
        record.set("candidates_per_sec",
                   Json(seconds > 0.0
                            ? static_cast<double>(result.evaluated) /
                                  seconds
                            : 0.0));
        if (cache != nullptr) {
            EvalCacheStats stats = cache->stats();
            uint64_t lookups = stats.hits + stats.misses;
            record.set("cache_hit_rate",
                       Json(lookups > 0
                                ? static_cast<double>(stats.hits) /
                                      static_cast<double>(lookups)
                                : 0.0));
        }
        sink->logDse(record);
    };

    double temperature = options.initialTemperature;
    int examined = 0;
    while (examined < options.iterations) {
        int width = std::min(speculation,
                             options.iterations - examined);
        // Split per-candidate seeds off the master stream in slot
        // order, before any (unordered) parallel work.
        std::vector<uint64_t> seeds(width);
        for (uint64_t &seed : seeds)
            seed = rng.next();
        // The round's shared base: mDFG choices of `current`.
        std::vector<const dfg::Mdfg *> base_mdfgs;
        for (size_t k = 0; k < kernels.size(); ++k) {
            base_mdfgs.push_back(
                &variants[k][current.variantIndex[k]]);
        }
        result.evaluated += width;
        std::vector<Eval> evals = pool.parallelMap(
            static_cast<size_t>(width), [&](size_t slot) {
                Eval ev;
                ev.rng = Rng(seeds[slot]);
                adg::Adg mutated = current.adg;
                int edits =
                    1 + static_cast<int>(ev.rng.nextBelow(3));
                ev.edits.reserve(edits);
                for (int e = 0; e < edits; ++e) {
                    ev.edits.push_back(mutateAdg(
                        mutated, current.schedules, base_mdfgs,
                        options.schedulePreserving, ev.rng));
                }
                if (!mutated.validate().empty())
                    return ev;  // abandoned
                ev.cand = evaluate_candidate(std::move(mutated));
                return ev;
            });

        // Sequential accept scan in slot order (single-threaded: all
        // telemetry and trajectory state is touched only here).
        for (int slot = 0; slot < width; ++slot) {
            Eval &ev = evals[slot];
            ++examined;
            ++result.iterationsRun;
            if (!ev.cand) {
                ++result.abandoned;
                log_iteration(examined, temperature, ev.edits, false,
                              true, current);
                continue;
            }
            // Simulated-annealing acceptance on log-objective.
            double delta = std::log(ev.cand->objective) -
                           std::log(current.objective);
            bool accept =
                delta >= 0.0 ||
                ev.rng.nextDouble() < std::exp(delta / temperature);
            if (accept) {
                current = std::move(*ev.cand);
                // The base design changed: schedule-repair results
                // keyed to the old base are no longer reachable.
                ++epoch;
                ++result.accepted;
                if (current.objective > best.objective)
                    best = current;
                log_iteration(examined, temperature, ev.edits, true,
                              false, current);
            } else {
                log_iteration(examined, temperature, ev.edits, false,
                              false, *ev.cand);
            }
            temperature *= 0.97;
            result.convergence.push_back(
                { secondsSince(start), examined, best.objective });
            if (accept) {
                result.discarded += width - slot - 1;
                break;  // the rest of the round speculated on a
                        // stale base
            }
        }
        ++round;
        log_heartbeat(examined, temperature, false);
    }
    // Every run closes with one final heartbeat (unless the last
    // round just emitted one), so short runs still report progress.
    if (round == 0 || round % std::max(1, options.heartbeatEvery) != 0)
        log_heartbeat(examined, temperature, true);

    // Phase mode + validateFinal: measured refinement of
    // ramp-dominated mappings. The annealer scores candidates with
    // the analytic steady-state model; for a kernel whose modeled
    // steady fraction S/(S+R) on the final design is below
    // phaseShortSteadyFraction, most of the run is ramp — exactly the
    // regime the steady-state model does not capture (dispatcher
    // startup, DRAM fill, placement-sensitive drain). Such kernels
    // finish in a few hundred cycles, so instead of trusting the
    // model the explorer simulates every schedulable variant on the
    // final design and adopts a strictly faster mapping; ties keep
    // the annealer's choice, so the pass never churns and never
    // regresses. Deterministic: serial scan in variant order, no RNG,
    // no dependence on the thread count.
    if (options.objective == DseObjective::Phase &&
        options.validateFinal &&
        options.phaseShortSteadyFraction > 0.0) {
        adg::SysAdg final_design;
        final_design.adg = best.adg;
        final_design.sys = best.sys;
        // Two deterministic placement attempts per variant: the
        // annealer's seeded scheduler configuration and the default
        // one. Placement alone can swing a short kernel's whole-run
        // cycles by double digits, so the extra attempt is worth its
        // (microsecond) simulation.
        sched::SpatialScheduler refine_scheduler(
            best.adg, sched::SchedulerOptions{ options.seed, 2 });
        sched::SpatialScheduler default_scheduler(best.adg);
        for (size_t k = 0; k < kernels.size(); ++k) {
            double iters = static_cast<double>(
                std::max<int64_t>(kernels[k].totalIterations(), 1));
            const dfg::Mdfg &m0 = variants[k][best.variantIndex[k]];
            model::PerfInput input;
            input.mdfg = &m0;
            input.backing = sched::backingFromSchedule(
                best.schedules[k], best.adg, m0);
            model::PerfBreakdown b = model::estimateIpc(
                input, best.adg, best.sys, options.perf);
            double rate =
                b.workRate * best.schedules[k].throughputFactor();
            double steady = rate > 0.0 ? iters / rate : 0.0;
            double ramp0 =
                model::estimateRampCycles(m0, options.phase);
            double frac =
                steady > 0.0 ? steady / (steady + ramp0) : 0.0;
            if (frac >= options.phaseShortSteadyFraction)
                continue;  // long enough to trust the model
            wl::Memory memory;
            memory.init(kernels[k]);
            sim::SimResult incumbent =
                sim::simulate(kernels[k], m0, best.schedules[k],
                              final_design, memory);
            uint64_t best_cycles = incumbent.completed
                                       ? incumbent.cycles
                                       : UINT64_MAX;
            for (size_t v = 0; v < variants[k].size(); ++v) {
                const dfg::Mdfg &m = variants[k][v];
                for (sched::SpatialScheduler *scheduler :
                     { &refine_scheduler, &default_scheduler }) {
                    auto s = scheduler->schedule(m);
                    if (!s)
                        continue;
                    wl::Memory mem;
                    mem.init(kernels[k]);
                    sim::SimResult r = sim::simulate(
                        kernels[k], m, *s, final_design, mem);
                    if (r.completed && r.cycles < best_cycles) {
                        best_cycles = r.cycles;
                        best.variantIndex[k] = static_cast<int>(v);
                        best.schedules[k] = std::move(*s);
                    }
                }
            }
        }
    }

    // Package the best design.
    result.design.adg = best.adg;
    result.design.sys = best.sys;
    result.objective = best.objective;
    result.resources = best.resources;
    result.utilization = best.utilization;
    for (size_t k = 0; k < kernels.size(); ++k) {
        const dfg::Mdfg &m = variants[k][best.variantIndex[k]];
        model::PerfInput input;
        input.mdfg = &m;
        input.backing = sched::backingFromSchedule(best.schedules[k],
                                                   best.adg, m);
        model::PerfBreakdown b =
            model::estimateIpc(input, best.adg, best.sys,
                               options.perf);
        KernelMapping mapping;
        mapping.kernel = kernels[k].name;
        mapping.variantIndex = best.variantIndex[k];
        mapping.variantName = m.name;
        mapping.estimatedIpc =
            b.ipc * best.schedules[k].throughputFactor();
        mapping.bottleneck = b.bottleneck;
        mapping.estimatedRampCycles =
            model::estimateRampCycles(m, options.phase);
        double rate =
            b.workRate * best.schedules[k].throughputFactor();
        double steady =
            rate > 0.0
                ? static_cast<double>(
                      std::max<int64_t>(kernels[k].totalIterations(),
                                        1)) /
                      rate
                : 0.0;
        mapping.estimatedSteadyFraction =
            steady > 0.0
                ? steady / (steady + mapping.estimatedRampCycles)
                : 0.0;
        result.mappings.push_back(std::move(mapping));
        result.schedules.push_back(best.schedules[k]);
        result.mdfgs.push_back(m);
    }
    // Optional final validation: one batched cycle-simulation sweep
    // over the chosen mappings, sharing the explorer's thread budget.
    // With a warm-sim cache, each simulation is memoized by its full
    // input identity: repeats are served from the cache and truncated
    // earlier runs resume from their last checkpoint instead of
    // starting over — bit-identical results either way (see
    // dse/sim_cache.h).
    if (options.validateFinal) {
        std::vector<sim::SimResult> sims;
        if (options.simCache != nullptr) {
            struct Validated
            {
                sim::SimResult result;
                WarmSimReport report;
            };
            ThreadPool pool(options.threads);
            std::vector<Validated> runs = pool.parallelMap(
                kernels.size(), [&](size_t k) {
                    Validated v;
                    v.result = warmSimulate(
                        options.simCache, kernels[k],
                        result.mdfgs[k], result.schedules[k],
                        result.design, sim::SimConfig{},
                        options.simCacheCheckpointEvery, &v.report);
                    return v;
                });
            for (Validated &v : runs) {
                switch (v.report.how) {
                case WarmSimOutcome::Miss:
                    ++result.simMisses;
                    break;
                case WarmSimOutcome::TerminalHit:
                    ++result.simTerminalHits;
                    break;
                case WarmSimOutcome::Resumed:
                    ++result.simResumes;
                    result.simCyclesSkipped += v.report.cyclesSkipped;
                    break;
                }
                sims.push_back(std::move(v.result));
            }
        } else {
            std::vector<sim::SimJob> jobs;
            for (size_t k = 0; k < kernels.size(); ++k) {
                sim::SimJob job;
                job.spec = &kernels[k];
                job.mdfg = &result.mdfgs[k];
                job.schedule = &result.schedules[k];
                job.design = &result.design;
                jobs.push_back(job);
            }
            sim::BatchOptions batch;
            batch.threads = options.threads;
            sims = sim::runBatch(jobs, batch);
        }
        for (size_t k = 0; k < sims.size(); ++k) {
            KernelMapping &mapping = result.mappings[k];
            mapping.simulated = true;
            mapping.simCompleted = sims[k].completed;
            mapping.simulatedCycles = sims[k].cycles;
            mapping.simulatedIpc = sims[k].ipc;
        }
    }
    result.gridPruned = grid_pruned.load(std::memory_order_relaxed);
    if (cache != nullptr) {
        EvalCacheStats stats = cache->stats();
        result.cacheHits = stats.hits;
        result.cacheMisses = stats.misses;
        result.cacheEvictions = stats.evictions;
    }
    if (sink != nullptr) {
        telemetry::Registry &reg = sink->registry();
        reg.counter("dse/grid/pruned").add(result.gridPruned);
        reg.counter("dse/cache/hits").add(result.cacheHits);
        reg.counter("dse/cache/misses").add(result.cacheMisses);
        reg.counter("dse/cache/evictions").add(result.cacheEvictions);
    }
    result.elapsedSeconds = secondsSince(start);
    return result;
}

} // namespace overgen::dse
