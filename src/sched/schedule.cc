#include "sched/schedule.h"

#include "common/logging.h"

namespace overgen::sched {

adg::NodeId
Schedule::placedOn(dfg::NodeId node) const
{
    OG_ASSERT(placement.count(node), "dfg node ", node, " unplaced");
    return placement.at(node);
}

bool
Schedule::isPlaced(dfg::NodeId node) const
{
    return placement.count(node) > 0;
}

std::map<adg::NodeId, std::set<FuCapability>>
usedCapabilities(const Schedule &schedule, const dfg::Mdfg &mdfg)
{
    std::map<adg::NodeId, std::set<FuCapability>> used;
    for (const auto &[dfg_node, adg_node] : schedule.placement) {
        const dfg::Node &node = mdfg.node(dfg_node);
        if (node.kind == dfg::NodeKind::Instruction) {
            used[adg_node].insert(
                FuCapability{ node.inst.op, node.inst.type });
        }
    }
    return used;
}

model::BackingVec
backingFromSchedule(const Schedule &schedule, const adg::Adg &adg,
                    const dfg::Mdfg &mdfg)
{
    model::BackingVec backing(static_cast<size_t>(mdfg.numNodes()),
                              model::Backing::Dma);
    auto classify_stream = [&](dfg::NodeId id) {
        const dfg::StreamNode &stream = mdfg.node(id).stream;
        switch (stream.source) {
          case dfg::StreamSource::Generated:
            backing[id] = model::Backing::Generate;
            return;
          case dfg::StreamSource::Register:
            backing[id] = model::Backing::Register;
            return;
          case dfg::StreamSource::Recurrence:
            backing[id] = model::Backing::Recurrence;
            return;
          case dfg::StreamSource::Memory:
            break;
        }
        if (stream.array == dfg::invalidNode ||
            !schedule.isPlaced(stream.array)) {
            backing[id] = model::Backing::Dma;
            return;
        }
        adg::NodeId engine = schedule.placedOn(stream.array);
        backing[id] =
            adg.hasNode(engine) &&
                    adg.node(engine).kind == adg::NodeKind::Scratchpad
                ? model::Backing::Scratchpad
                : model::Backing::Dma;
    };
    for (dfg::NodeId id :
         mdfg.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
        classify_stream(id);
    }
    for (dfg::NodeId id :
         mdfg.nodeIdsOfKind(dfg::NodeKind::OutputStream)) {
        classify_stream(id);
    }
    return backing;
}

std::string
checkSchedule(const Schedule &schedule, const adg::Adg &adg,
              const dfg::Mdfg &mdfg)
{
    for (const auto &[dfg_node, adg_node] : schedule.placement) {
        if (!adg.hasNode(adg_node)) {
            return "placement target " + std::to_string(adg_node) +
                   " is dead";
        }
        const dfg::Node &dn = mdfg.node(dfg_node);
        const adg::Node &an = adg.node(adg_node);
        if (dn.kind == dfg::NodeKind::Instruction) {
            if (an.kind != adg::NodeKind::Pe)
                return "instruction on a non-PE node";
            FuCapability cap{ dn.inst.op, dn.inst.type };
            if (!an.pe().capabilities.count(cap)) {
                return "PE " + std::to_string(adg_node) +
                       " lost capability " + fuCapabilityName(cap);
            }
            int needed =
                dn.inst.lanes * dataTypeBytes(dn.inst.type);
            if (an.pe().datapathBytes < needed) {
                return "PE " + std::to_string(adg_node) +
                       " datapath too narrow";
            }
        }
    }
    for (const auto &[edge_index, route] : schedule.routes) {
        if (edge_index < 0 ||
            edge_index >= static_cast<int>(mdfg.edges().size())) {
            return "route for unknown dfg edge";
        }
        adg::NodeId at = adg::invalidNode;
        for (adg::EdgeId eid : route) {
            if (!adg.hasEdge(eid)) {
                return "route uses dead edge " + std::to_string(eid);
            }
            const adg::Edge &edge = adg.edge(eid);
            if (at != adg::invalidNode && edge.src != at)
                return "route discontinuous at edge " +
                       std::to_string(eid);
            at = edge.dst;
        }
    }
    return "";
}

} // namespace overgen::sched
