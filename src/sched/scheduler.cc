#include "sched/scheduler.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "common/logging.h"

namespace overgen::sched {

namespace {

using adg::Adg;
using adg::NodeKind;
using dfg::Mdfg;
using dfg::StreamSource;

/** One randomized-greedy scheduling attempt over a fixed ADG. */
class Attempt
{
  public:
    Attempt(const Adg &adg, const Mdfg &mdfg, Rng &rng)
        : adg(adg), mdfg(mdfg), rng(rng)
    {
        schedule.mdfgName = mdfg.name;
        schedule.adgVersion = adg.version();
        schedule.placement.reserveNodes(
            static_cast<size_t>(mdfg.numNodes()));
        // Flat id-indexed side tables and per-kind id lists, hoisted
        // here so the placement/routing inner loops never rescan the
        // graph. The ADG is fixed for the attempt's lifetime.
        usedPes.assign(adg.nodeSlots(), 0);
        usedPorts.assign(adg.nodeSlots(), 0);
        spadRemaining.assign(adg.nodeSlots(), -1);
        for (adg::NodeId id : adg.nodeIdsOfKind(NodeKind::Scratchpad)) {
            spadRemaining[id] =
                static_cast<int64_t>(adg.node(id).spad().capacityKiB) *
                1024;
        }
        edgeSignal.assign(adg.edgeSlots(), dfg::invalidNode);
        hopCache.assign(adg.nodeSlots(), {});
        peIds = adg.nodeIdsOfKind(NodeKind::Pe);
        auto first_of = [&](NodeKind kind) {
            auto ids = adg.nodeIdsOfKind(kind);
            return ids.empty() ? adg::invalidNode : ids[0];
        };
        recurrenceEngine = first_of(NodeKind::Recurrence);
        generateEngine = first_of(NodeKind::Generate);
        registerEngine = first_of(NodeKind::Register);
        indexStream.assign(static_cast<size_t>(mdfg.numNodes()), 0);
        for (dfg::NodeId other :
             mdfg.nodeIdsOfKind(dfg::NodeKind::InputStream)) {
            dfg::NodeId idx = mdfg.node(other).stream.indexStream;
            if (idx != dfg::invalidNode)
                indexStream[idx] = 1;
        }
    }

    /** Seed the attempt with surviving parts of a prior schedule. */
    void
    adoptPrior(const Schedule &prior)
    {
        // Keep placements that are still individually legal. Arrays
        // first: stream legality depends on the array's engine.
        auto adopt_pass = [&](bool arrays) {
            for (const auto &[dfg_node, adg_node] : prior.placement) {
                if (dfg_node >= mdfg.numNodes() ||
                    !adg.hasNode(adg_node)) {
                    continue;
                }
                bool is_array = mdfg.node(dfg_node).kind ==
                                dfg::NodeKind::Array;
                if (is_array != arrays)
                    continue;
                if (schedule.isPlaced(dfg_node))
                    continue;
                if (!placementLegal(dfg_node, adg_node))
                    continue;
                commitPlacement(dfg_node, adg_node);
            }
        };
        adopt_pass(true);
        adopt_pass(false);
        // Keep routes whose endpoints survived and whose edges live.
        for (const auto &[edge_index, route] : prior.routes) {
            if (edge_index >=
                static_cast<int>(mdfg.edges().size())) {
                continue;
            }
            const dfg::Edge &de = mdfg.edges()[edge_index];
            if (!schedule.isPlaced(de.src) || !schedule.isPlaced(de.dst))
                continue;
            bool intact = !route.empty();
            adg::NodeId at = schedule.placedOn(de.src);
            for (adg::EdgeId eid : route) {
                if (!adg.hasEdge(eid) || adg.edge(eid).src != at) {
                    intact = false;
                    break;
                }
                at = adg.edge(eid).dst;
            }
            if (!intact || at != schedule.placedOn(de.dst))
                continue;
            commitRoute(edge_index, route, de.src);
        }
    }

    std::optional<Schedule>
    run()
    {
        if (!placeArrays()) {
            OG_INFORM("schedule ", mdfg.name, ": array placement failed");
            return std::nullopt;
        }
        if (!placeStreams()) {
            OG_INFORM("schedule ", mdfg.name, ": stream placement failed");
            return std::nullopt;
        }
        if (!placeInstructions()) {
            OG_INFORM("schedule ", mdfg.name,
                      ": instruction placement failed");
            return std::nullopt;
        }
        if (!routeAll()) {
            OG_INFORM("schedule ", mdfg.name, ": routing failed");
            return std::nullopt;
        }
        balanceDelays();
        schedule.valid = true;
        schedule.routeCost = 0;
        for (const auto &[edge_index, route] : schedule.routes)
            schedule.routeCost += static_cast<int>(route.size());
        return schedule;
    }

  private:
    /** @name Placement legality */
    /// @{
    bool
    placementLegal(dfg::NodeId dfg_node, adg::NodeId adg_node) const
    {
        const dfg::Node &dn = mdfg.node(dfg_node);
        const adg::Node &an = adg.node(adg_node);
        switch (dn.kind) {
          case dfg::NodeKind::Instruction:
            return instructionLegal(dn, an, adg_node);
          case dfg::NodeKind::Array:
            return arrayLegal(dn, an, adg_node);
          case dfg::NodeKind::InputStream:
            return inputStreamLegal(dn, an, adg_node);
          case dfg::NodeKind::OutputStream:
            return outputStreamLegal(dn, an, adg_node);
        }
        return false;
    }

    bool
    instructionLegal(const dfg::Node &dn, const adg::Node &an,
                     adg::NodeId adg_node) const
    {
        if (an.kind != NodeKind::Pe || usedPes[adg_node])
            return false;
        const adg::PeSpec &pe = an.pe();
        if (!pe.capabilities.count({ dn.inst.op, dn.inst.type }))
            return false;
        if (dn.inst.predicated && !pe.controlLut)
            return false;
        return pe.datapathBytes >=
               dn.inst.lanes * dataTypeBytes(dn.inst.type);
    }

    bool
    arrayLegal(const dfg::Node &dn, const adg::Node &an,
               adg::NodeId adg_node) const
    {
        if (an.kind == NodeKind::Dma) {
            return !dn.array.indirectIndexed || an.dma().indirect;
        }
        if (an.kind == NodeKind::Scratchpad) {
            if (dn.array.indirectIndexed && !an.spad().indirect)
                return false;
            return spadRemaining[adg_node] >= dn.array.sizeBytes;
        }
        return false;
    }

    /** Engine a memory stream's data comes from (its array's home). */
    adg::NodeId
    streamEngine(const dfg::Node &dn) const
    {
        switch (dn.stream.source) {
          case StreamSource::Memory: {
            if (dn.stream.array == dfg::invalidNode ||
                !schedule.isPlaced(dn.stream.array)) {
                return adg::invalidNode;
            }
            return schedule.placedOn(dn.stream.array);
          }
          case StreamSource::Recurrence:
            return recurrenceEngine;
          case StreamSource::Generated:
            return generateEngine;
          case StreamSource::Register:
            return registerEngine;
        }
        return adg::invalidNode;
    }

    bool
    portSupportsStream(const adg::PortSpec &port,
                       const dfg::StreamNode &stream) const
    {
        if (port.widthBytes < dataTypeBytes(stream.type))
            return false;
        if (stream.variableTripCount && !port.statedStream)
            return false;
        if (stream.variableTripCount && stream.lanes > 1 &&
            !port.padding) {
            return false;
        }
        return true;
    }

    bool
    inputStreamLegal(const dfg::Node &dn, const adg::Node &an,
                     adg::NodeId adg_node) const
    {
        // Index streams live on the data stream's engine, not a port.
        if (isIndexStream(dn.id))
            return isStreamEngine(an.kind);
        if (an.kind != NodeKind::InPort || usedPorts[adg_node])
            return false;
        if (!portSupportsStream(an.port(), dn.stream))
            return false;
        adg::NodeId engine = streamEngine(dn);
        if (engine == adg::invalidNode)
            return false;
        if (dn.stream.indirect && !engineIndirect(engine))
            return false;
        // Requirement: a direct ADG edge engine -> port.
        for (adg::EdgeId eid : adg.inEdges(adg_node)) {
            if (adg.edge(eid).src == engine)
                return true;
        }
        return false;
    }

    bool
    outputStreamLegal(const dfg::Node &dn, const adg::Node &an,
                      adg::NodeId adg_node) const
    {
        if (an.kind != NodeKind::OutPort || usedPorts[adg_node])
            return false;
        if (!portSupportsStream(an.port(), dn.stream))
            return false;
        adg::NodeId engine = streamEngine(dn);
        if (engine == adg::invalidNode)
            return false;
        for (adg::EdgeId eid : adg.outEdges(adg_node)) {
            if (adg.edge(eid).dst == engine)
                return true;
        }
        return false;
    }

    bool
    engineIndirect(adg::NodeId engine) const
    {
        const adg::Node &node = adg.node(engine);
        if (node.kind == NodeKind::Dma)
            return node.dma().indirect;
        if (node.kind == NodeKind::Scratchpad)
            return node.spad().indirect;
        return false;
    }

    /** A stream is an index stream if some other stream names it
     * (precomputed in the constructor). */
    bool
    isIndexStream(dfg::NodeId id) const
    {
        return indexStream[id] != 0;
    }
    /// @}

    void
    commitPlacement(dfg::NodeId dfg_node, adg::NodeId adg_node)
    {
        schedule.placement[dfg_node] = adg_node;
        const dfg::Node &dn = mdfg.node(dfg_node);
        const adg::Node &an = adg.node(adg_node);
        if (dn.kind == dfg::NodeKind::Instruction)
            usedPes[adg_node] = 1;
        if ((dn.kind == dfg::NodeKind::InputStream && !isIndexStream(dfg_node)) ||
            dn.kind == dfg::NodeKind::OutputStream) {
            usedPorts[adg_node] = 1;
        }
        if (dn.kind == dfg::NodeKind::Array &&
            an.kind == NodeKind::Scratchpad) {
            spadRemaining[adg_node] -= dn.array.sizeBytes;
        }
    }

    void
    commitRoute(int edge_index, const Route &route, dfg::NodeId signal)
    {
        schedule.routes[edge_index] = route;
        for (adg::EdgeId eid : route)
            edgeSignal[eid] = signal;
    }

    /** @name Placement passes */
    /// @{
    bool
    placeArrays()
    {
        for (dfg::NodeId id : mdfg.nodeIdsOfKind(dfg::NodeKind::Array)) {
            if (schedule.isPlaced(id))
                continue;
            const dfg::Node &dn = mdfg.node(id);
            std::vector<adg::NodeId> candidates;
            auto spads = adg.nodeIdsOfKind(NodeKind::Scratchpad);
            auto dmas = adg.nodeIdsOfKind(NodeKind::Dma);
            if (dn.array.preferred == dfg::ArrayPlacement::Scratchpad) {
                candidates = spads;
                candidates.insert(candidates.end(), dmas.begin(),
                                  dmas.end());
            } else {
                candidates = dmas;
                candidates.insert(candidates.end(), spads.begin(),
                                  spads.end());
            }
            bool placed = false;
            for (adg::NodeId c : candidates) {
                if (placementLegal(id, c)) {
                    commitPlacement(id, c);
                    placed = true;
                    break;
                }
            }
            if (!placed)
                return false;
        }
        return true;
    }

    bool
    placeStreams()
    {
        auto place_kind = [&](dfg::NodeKind kind, NodeKind port_kind) {
            const std::vector<adg::NodeId> ports =
                adg.nodeIdsOfKind(port_kind);
            for (dfg::NodeId id : mdfg.nodeIdsOfKind(kind)) {
                if (schedule.isPlaced(id))
                    continue;
                if (kind == dfg::NodeKind::InputStream &&
                    isIndexStream(id)) {
                    // Index values feed the engine of the data stream.
                    adg::NodeId engine =
                        streamEngine(mdfg.node(id));
                    if (engine == adg::invalidNode)
                        return false;
                    commitPlacement(id, engine);
                    continue;
                }
                std::vector<adg::NodeId> candidates = ports;
                // Prefer the narrowest port that still sustains full
                // rate, leaving wide ports for wide streams.
                double want = mdfg.node(id).stream.bytesPerFiring();
                std::stable_sort(
                    candidates.begin(), candidates.end(),
                    [&](adg::NodeId a, adg::NodeId b) {
                        auto score = [&](adg::NodeId p) {
                            int w = adg.node(p).port().widthBytes;
                            double deficit =
                                std::max(0.0, want - w) * 16.0;
                            return deficit + w;
                        };
                        return score(a) < score(b);
                    });
                bool placed = false;
                for (adg::NodeId c : candidates) {
                    if (placementLegal(id, c)) {
                        commitPlacement(id, c);
                        placed = true;
                        break;
                    }
                }
                if (!placed)
                    return false;
            }
            return true;
        };
        return place_kind(dfg::NodeKind::InputStream,
                          NodeKind::InPort) &&
               place_kind(dfg::NodeKind::OutputStream,
                          NodeKind::OutPort);
    }

    bool
    placeInstructions()
    {
        // Topological order over instruction dependencies.
        const std::vector<dfg::NodeId> &order = topoInstructions();
        for (dfg::NodeId id : order) {
            if (schedule.isPlaced(id))
                continue;
            // Score candidates by hop distance from placed producers.
            adg::NodeId best = adg::invalidNode;
            double best_score = 1e18;
            for (adg::NodeId pe : peIds) {
                if (!placementLegal(id, pe))
                    continue;
                double score = rng.nextDouble();  // tiebreak
                for (const dfg::Edge &e : mdfg.inEdgesOf(id)) {
                    if (mdfg.node(e.src).kind == dfg::NodeKind::Array)
                        continue;
                    if (!schedule.isPlaced(e.src))
                        continue;
                    int d = hopDistance(schedule.placedOn(e.src), pe);
                    score += d < 0 ? 1e6 : d * 4.0;
                }
                if (score < best_score) {
                    best_score = score;
                    best = pe;
                }
            }
            if (best == adg::invalidNode)
                return false;
            commitPlacement(id, best);
        }
        return true;
    }

    /** Topological order over instruction dependencies; a pure
     * function of the mDFG, computed once per attempt. */
    const std::vector<dfg::NodeId> &
    topoInstructions() const
    {
        if (topoComputed)
            return topoOrder;
        std::vector<dfg::NodeId> insts =
            mdfg.nodeIdsOfKind(dfg::NodeKind::Instruction);
        std::map<dfg::NodeId, int> depth;
        std::function<int(dfg::NodeId)> depth_of =
            [&](dfg::NodeId id) -> int {
            auto it = depth.find(id);
            if (it != depth.end())
                return it->second;
            depth[id] = 0;  // break cycles defensively
            int d = 0;
            for (const dfg::Edge &e : mdfg.inEdgesOf(id)) {
                if (mdfg.node(e.src).kind ==
                    dfg::NodeKind::Instruction) {
                    d = std::max(d, depth_of(e.src) + 1);
                }
            }
            depth[id] = d;
            return d;
        };
        std::stable_sort(insts.begin(), insts.end(),
                         [&](dfg::NodeId a, dfg::NodeId b) {
                             return depth_of(a) < depth_of(b);
                         });
        topoOrder = std::move(insts);
        topoComputed = true;
        return topoOrder;
    }
    /// @}

    /** @name Routing */
    /// @{
    /**
     * BFS hop distance through the fabric (any node), -1 if none.
     * The full single-source distance vector is cached per source —
     * instruction placement asks about every PE from the same placed
     * producer, and BFS distances are a pure property of the fixed
     * ADG, so caching cannot change any value.
     */
    int
    hopDistance(adg::NodeId from, adg::NodeId to) const
    {
        if (from == to)
            return 0;
        std::vector<int> &dist = hopCache[from];
        if (dist.empty()) {
            dist.assign(adg.nodeSlots(), -1);
            dist[from] = 0;
            std::queue<adg::NodeId> queue;
            queue.push(from);
            while (!queue.empty()) {
                adg::NodeId at = queue.front();
                queue.pop();
                for (adg::EdgeId eid : adg.outEdges(at)) {
                    adg::NodeId next = adg.edge(eid).dst;
                    if (dist[next] >= 0)
                        continue;
                    dist[next] = dist[at] + 1;
                    queue.push(next);
                }
            }
        }
        return dist[to];
    }

    /**
     * Dijkstra route from @p from to @p to for @p signal. Edges held
     * by other signals are blocked; edges already carrying this signal
     * are free (circuit fanout reuse). Intermediate hops must be
     * switches (or the endpoints themselves).
     */
    std::optional<Route>
    findRoute(adg::NodeId from, adg::NodeId to, dfg::NodeId signal)
    {
        struct Entry
        {
            double cost;
            adg::NodeId node;
            bool operator>(const Entry &other) const
            {
                return cost > other.cost;
            }
        };
        std::priority_queue<Entry, std::vector<Entry>,
                            std::greater<Entry>>
            queue;
        constexpr double kUnreached =
            std::numeric_limits<double>::infinity();
        std::vector<double> best(adg.nodeSlots(), kUnreached);
        std::vector<adg::EdgeId> via(adg.nodeSlots(),
                                     adg::invalidEdge);
        queue.push({ 0.0, from });
        best[from] = 0.0;
        while (!queue.empty()) {
            Entry entry = queue.top();
            queue.pop();
            if (entry.node == to)
                break;
            if (entry.cost > best[entry.node] + 1e-9)
                continue;
            for (adg::EdgeId eid : adg.outEdges(entry.node)) {
                const adg::Edge &edge = adg.edge(eid);
                adg::NodeId next = edge.dst;
                // Only traverse the fabric; stop at the target.
                if (next != to &&
                    adg.node(next).kind != NodeKind::Switch) {
                    continue;
                }
                dfg::NodeId held = edgeSignal[eid];
                double edge_cost = 1.0;
                if (held != dfg::invalidNode) {
                    if (held != signal)
                        continue;  // circuit taken by another value
                    edge_cost = 0.0;  // fanout reuse
                }
                double cost = entry.cost + edge_cost;
                if (cost < best[next] - 1e-9) {
                    best[next] = cost;
                    via[next] = eid;
                    queue.push({ cost, next });
                }
            }
        }
        if (best[to] == kUnreached)
            return std::nullopt;
        Route route;
        adg::NodeId at = to;
        while (at != from) {
            adg::EdgeId eid = via[at];
            route.push_back(eid);
            at = adg.edge(eid).src;
        }
        std::reverse(route.begin(), route.end());
        return route;
    }

    bool
    routeAll()
    {
        const auto &edges = mdfg.edges();
        // Collect routable edges and route the longest first: short
        // connections can detour, long ones cannot.
        std::vector<std::pair<int, int>> work;  // (-distance, index)
        for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
            if (schedule.routes.count(i))
                continue;  // adopted from the prior schedule
            const dfg::Edge &de = edges[i];
            const dfg::Node &src = mdfg.node(de.src);
            const dfg::Node &dst = mdfg.node(de.dst);
            // Array attachments and index feeds need no fabric route.
            if (src.kind == dfg::NodeKind::Array)
                continue;
            if (src.kind == dfg::NodeKind::InputStream &&
                dst.kind == dfg::NodeKind::InputStream) {
                continue;
            }
            int distance = hopDistance(schedule.placedOn(de.src),
                                       schedule.placedOn(de.dst));
            work.emplace_back(-distance, i);
        }
        std::sort(work.begin(), work.end());
        for (auto [neg_dist, i] : work) {
            const dfg::Edge &de = edges[i];
            auto route = findRoute(schedule.placedOn(de.src),
                                   schedule.placedOn(de.dst), de.src);
            if (!route)
                return false;
            commitRoute(i, *route, de.src);
        }
        return true;
    }
    /// @}

    /**
     * Compute arrival times and assign per-operand delay FIFOs.
     * Imbalance beyond the available FIFO depth is not fatal in a
     * dataflow fabric — port FIFOs backpressure — but it costs
     * pipeline bubbles, recorded as Schedule::maxImbalance.
     */
    void
    balanceDelays()
    {
        std::vector<double> arrival(
            static_cast<size_t>(mdfg.numNodes()), 0.0);
        auto route_delay = [&](int edge_index) {
            double d = 0.0;
            for (adg::EdgeId eid : schedule.routes.at(edge_index))
                d += adg.edge(eid).delay;
            return d;
        };
        // Routed in-edge indices per destination, ascending — the
        // same visit order as scanning the full edge list per node.
        const auto &edges = mdfg.edges();
        std::vector<std::vector<int>> in_by_dst(
            static_cast<size_t>(mdfg.numNodes()));
        for (int i = 0; i < static_cast<int>(edges.size()); ++i) {
            if (schedule.routes.count(i))
                in_by_dst[edges[i].dst].push_back(i);
        }
        for (dfg::NodeId id : topoInstructions()) {
            const dfg::Node &dn = mdfg.node(id);
            const adg::Node &an = adg.node(schedule.placedOn(id));
            // Collect operand arrival times.
            std::map<int, double> operand_time;
            for (int i : in_by_dst[id]) {
                const dfg::Edge &e = edges[i];
                double t = route_delay(i);
                const dfg::Node &src = mdfg.node(e.src);
                if (src.kind == dfg::NodeKind::Instruction)
                    t += arrival[e.src];
                operand_time[e.operandIndex] =
                    std::max(operand_time[e.operandIndex], t);
            }
            double latest = 0.0;
            for (auto [operand, t] : operand_time)
                latest = std::max(latest, t);
            for (auto [operand, t] : operand_time) {
                int mismatch = static_cast<int>(latest - t);
                if (mismatch <= 0)
                    continue;
                int fifo = std::min(mismatch,
                                    an.pe().maxDelayFifoDepth);
                schedule.delayFifos[id][operand] = fifo;
                // Port FIFOs absorb further skew for stream operands.
                int slack = fifo;
                if (operandFromStream(id, operand))
                    slack += portFifoSlack(id, operand);
                int excess = mismatch - slack;
                if (excess > 0) {
                    schedule.maxImbalance =
                        std::max(schedule.maxImbalance, excess);
                }
            }
            arrival[id] =
                latest +
                opProperties(dn.inst.op, dn.inst.type).latency;
        }
    }

    /** Whether operand @p operand of @p inst is fed by a stream. */
    bool
    operandFromStream(dfg::NodeId inst, int operand) const
    {
        for (const dfg::Edge &e : mdfg.inEdgesOf(inst)) {
            if (e.operandIndex == operand &&
                mdfg.node(e.src).kind == dfg::NodeKind::InputStream) {
                return true;
            }
        }
        return false;
    }

    /** FIFO depth of the port feeding operand @p operand of @p inst. */
    int
    portFifoSlack(dfg::NodeId inst, int operand) const
    {
        for (const dfg::Edge &e : mdfg.inEdgesOf(inst)) {
            if (e.operandIndex != operand)
                continue;
            const dfg::Node &src = mdfg.node(e.src);
            if (src.kind != dfg::NodeKind::InputStream)
                continue;
            if (!schedule.isPlaced(e.src))
                continue;
            const adg::Node &an = adg.node(schedule.placedOn(e.src));
            if (an.kind == NodeKind::InPort)
                return an.port().fifoDepth;
        }
        return 0;
    }

    const Adg &adg;
    const Mdfg &mdfg;
    Rng &rng;
    Schedule schedule;
    /** @name Id-indexed side tables (see the constructor) */
    /// @{
    std::vector<char> usedPes;    //!< by ADG node id
    std::vector<char> usedPorts;  //!< by ADG node id
    /** Free bytes per scratchpad node; -1 marks non-scratchpads. */
    std::vector<int64_t> spadRemaining;
    /** Signal owning each ADG edge (invalidNode when unrouted). */
    std::vector<dfg::NodeId> edgeSignal;
    /** Per-source BFS distance vectors, filled lazily (empty =
     * uncomputed); the ADG never changes within an attempt. */
    mutable std::vector<std::vector<int>> hopCache;
    std::vector<adg::NodeId> peIds;
    adg::NodeId recurrenceEngine = adg::invalidNode;
    adg::NodeId generateEngine = adg::invalidNode;
    adg::NodeId registerEngine = adg::invalidNode;
    std::vector<char> indexStream;  //!< by mDFG node id
    mutable std::vector<dfg::NodeId> topoOrder;
    mutable bool topoComputed = false;
    /// @}
};

} // namespace

SpatialScheduler::SpatialScheduler(const Adg &adg,
                                   SchedulerOptions options)
    : adg(adg), options(options)
{
}

std::optional<Schedule>
SpatialScheduler::schedule(const Mdfg &mdfg)
{
    Rng rng(options.seed ^ std::hash<std::string>{}(mdfg.name));
    for (int r = 0; r < std::max(1, options.restarts); ++r) {
        Attempt attempt(adg, mdfg, rng);
        auto result = attempt.run();
        if (result)
            return result;
    }
    return std::nullopt;
}

std::optional<Schedule>
SpatialScheduler::repair(const Mdfg &mdfg, const Schedule &prior)
{
    Rng rng(options.seed ^ prior.adgVersion);
    Attempt attempt(adg, mdfg, rng);
    attempt.adoptPrior(prior);
    auto result = attempt.run();
    if (result)
        return result;
    return schedule(mdfg);
}

std::optional<std::pair<Schedule, int>>
SpatialScheduler::scheduleFirstFit(const std::vector<Mdfg> &variants)
{
    for (int i = 0; i < static_cast<int>(variants.size()); ++i) {
        auto result = schedule(variants[i]);
        if (result)
            return std::make_pair(std::move(*result), i);
    }
    return std::nullopt;
}

} // namespace overgen::sched
