#ifndef OVERGEN_SCHED_SCHEDULER_H
#define OVERGEN_SCHED_SCHEDULER_H

/**
 * @file
 * The spatial scheduler: maps mDFGs (instructions, streams, and array
 * nodes) onto an ADG (PEs, ports, switches, stream engines) with
 * circuit-switched routing and pipeline-balancing delay FIFOs
 * (paper §II-C, §IV-B "mDFG Scheduling"). Supports schedule repair
 * against a mutated ADG so the DSE avoids recompilation (paper §V-A).
 */

#include <optional>

#include "common/rng.h"
#include "sched/schedule.h"

namespace overgen::sched {

/** Scheduler knobs. */
struct SchedulerOptions
{
    uint64_t seed = 1;
    /** Randomized greedy restarts before giving up. */
    int restarts = 4;
};

/** Maps mDFGs onto one ADG instance. */
class SpatialScheduler
{
  public:
    explicit SpatialScheduler(const adg::Adg &adg,
                              SchedulerOptions options = {});

    /**
     * Schedule @p mdfg from scratch. @return nullopt when no restart
     * produces a complete mapping.
     */
    std::optional<Schedule> schedule(const dfg::Mdfg &mdfg);

    /**
     * Schedule repair (paper §II-C, §V-A): keep every placement and
     * route of @p prior that is still legal on this (mutated) ADG and
     * fill in only the broken parts. Falls back to from-scratch
     * scheduling when repair cannot complete.
     */
    std::optional<Schedule> repair(const dfg::Mdfg &mdfg,
                                   const Schedule &prior);

    /**
     * Walk @p variants (most aggressive first) and return the first
     * that schedules, together with its index — the compiler's
     * "relax DFG complexity" loop (paper Fig. 3).
     */
    std::optional<std::pair<Schedule, int>>
    scheduleFirstFit(const std::vector<dfg::Mdfg> &variants);

  private:
    const adg::Adg &adg;
    SchedulerOptions options;
};

} // namespace overgen::sched

#endif // OVERGEN_SCHED_SCHEDULER_H
