#ifndef OVERGEN_SCHED_SCHEDULE_H
#define OVERGEN_SCHED_SCHEDULE_H

/**
 * @file
 * A spatial schedule: the mapping of one mDFG onto one ADG — node
 * placements, circuit-switched routes for every dataflow edge, and the
 * per-operand delay-FIFO settings that keep PE pipelines balanced
 * (paper Fig. 2d and §V-B).
 */

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "adg/adg.h"
#include "dfg/mdfg.h"
#include "model/perf.h"

namespace overgen::sched {

/** A routed path: the ADG edges traversed, in order. */
using Route = std::vector<adg::EdgeId>;

/**
 * dfg-node -> ADG-node mapping as a flat id-indexed vector with the
 * iteration/count/size surface of the std::map it replaced. The DSE
 * copies and rebuilds schedules on every candidate evaluation, so the
 * container must copy as a memcpy, not a tree rebuild. Iteration
 * yields (dfg node, adg node) pairs in ascending dfg-id order —
 * identical to the old map order. Absence is adg::invalidNode.
 */
class PlacementMap
{
  public:
    /** Grow-on-demand slot reference, std::map::operator[] style:
     * assigning a valid node id makes the entry "present". */
    adg::NodeId &
    operator[](dfg::NodeId id)
    {
        if (static_cast<size_t>(id) >= slots.size())
            slots.resize(static_cast<size_t>(id) + 1,
                         adg::invalidNode);
        return slots[id];
    }

    /** @return 1 when @p id has a placement, else 0 (map::count). */
    size_t
    count(dfg::NodeId id) const
    {
        return static_cast<size_t>(id) < slots.size() &&
                       slots[id] != adg::invalidNode
                   ? 1
                   : 0;
    }

    /** @return the placement of @p id (must be present). */
    adg::NodeId
    at(dfg::NodeId id) const
    {
        return slots[id];
    }

    /** @return the number of placed nodes. */
    size_t
    size() const
    {
        size_t n = 0;
        for (adg::NodeId v : slots)
            n += v != adg::invalidNode;
        return n;
    }

    /** Pre-size the slot table (avoids regrowth during placement). */
    void
    reserveNodes(size_t n)
    {
        if (slots.size() < n)
            slots.resize(n, adg::invalidNode);
    }

    /** Ascending-id iterator over present entries, yielding
     * (dfg node, adg node) pairs by value. */
    class const_iterator
    {
      public:
        const_iterator(const std::vector<adg::NodeId> *slots,
                       size_t index)
            : slots(slots), index(index)
        {
            skipAbsent();
        }
        std::pair<dfg::NodeId, adg::NodeId>
        operator*() const
        {
            return { static_cast<dfg::NodeId>(index),
                     (*slots)[index] };
        }
        const_iterator &
        operator++()
        {
            ++index;
            skipAbsent();
            return *this;
        }
        bool
        operator!=(const const_iterator &other) const
        {
            return index != other.index;
        }

      private:
        void
        skipAbsent()
        {
            while (index < slots->size() &&
                   (*slots)[index] == adg::invalidNode) {
                ++index;
            }
        }
        const std::vector<adg::NodeId> *slots;
        size_t index;
    };
    const_iterator begin() const { return { &slots, 0 }; }
    const_iterator end() const { return { &slots, slots.size() }; }

    /** Semantic equality: the same set of placements (trailing
     * absent slots are irrelevant). */
    bool
    operator==(const PlacementMap &other) const
    {
        size_t n = std::max(slots.size(), other.slots.size());
        for (size_t i = 0; i < n; ++i) {
            adg::NodeId a = i < slots.size() ? slots[i]
                                             : adg::invalidNode;
            adg::NodeId b = i < other.slots.size()
                                ? other.slots[i]
                                : adg::invalidNode;
            if (a != b)
                return false;
        }
        return true;
    }

  private:
    std::vector<adg::NodeId> slots;
};

/**
 * dfg-edge-index -> Route as a flat vector plus presence flags, with
 * the map surface the scheduler and DSE use (see PlacementMap for
 * why). Iteration yields (edge index, route) in ascending edge-index
 * order — identical to the old std::map order.
 */
class RouteMap
{
  public:
    /** Grow-on-demand route reference; marks the entry present
     * (std::map::operator[] inserts). */
    Route &
    operator[](int edge_index)
    {
        if (static_cast<size_t>(edge_index) >= paths.size()) {
            paths.resize(static_cast<size_t>(edge_index) + 1);
            present.resize(paths.size(), 0);
        }
        present[edge_index] = 1;
        return paths[edge_index];
    }

    size_t
    count(int edge_index) const
    {
        return static_cast<size_t>(edge_index) < present.size() &&
                       present[edge_index]
                   ? 1
                   : 0;
    }

    const Route &
    at(int edge_index) const
    {
        return paths[edge_index];
    }

    /** @return the number of routed edges. */
    size_t
    size() const
    {
        size_t n = 0;
        for (char p : present)
            n += p != 0;
        return n;
    }

    /** Ascending iterator over routed edges, yielding
     * (edge index, const Route&) pairs. */
    class const_iterator
    {
      public:
        const_iterator(const RouteMap *map, size_t index)
            : map(map), index(index)
        {
            skipAbsent();
        }
        std::pair<int, const Route &>
        operator*() const
        {
            return { static_cast<int>(index), map->paths[index] };
        }
        const_iterator &
        operator++()
        {
            ++index;
            skipAbsent();
            return *this;
        }
        bool
        operator!=(const const_iterator &other) const
        {
            return index != other.index;
        }

      private:
        void
        skipAbsent()
        {
            while (index < map->present.size() &&
                   !map->present[index]) {
                ++index;
            }
        }
        const RouteMap *map;
        size_t index;
    };
    const_iterator begin() const { return { this, 0 }; }
    const_iterator end() const
    {
        return { this, present.size() };
    }

  private:
    std::vector<Route> paths;
    std::vector<char> present;
};

/** The mapping of one mDFG variant onto an ADG. */
struct Schedule
{
    /** The scheduled variant's name (mDFGs are owned by the caller). */
    std::string mdfgName;
    /** ADG mutation counter at scheduling time (staleness check). */
    uint64_t adgVersion = 0;

    /** dfg node -> ADG node. Instructions map to PEs, streams to
     * ports (index streams to engines), arrays to memory engines. */
    PlacementMap placement;

    /** dfg edge index (into Mdfg::edges()) -> routed path. Edges that
     * need no fabric route (array->stream, index feeds) are absent. */
    RouteMap routes;

    /** PE-mapped dfg instruction -> operand index -> delay-FIFO depth. */
    std::map<dfg::NodeId, std::map<int, int>> delayFifos;

    bool valid = false;

    /** Total routed edge count (the scheduler's distance cost). */
    int routeCost = 0;

    /**
     * Worst pipeline imbalance beyond what delay FIFOs and port FIFOs
     * absorb, in cycles. Imbalance produces pipeline bubbles that
     * reduce throughput (paper §V-B, Fig. 7b); the DSE objective
     * penalizes it via throughputFactor().
     */
    int maxImbalance = 0;

    /** Throughput derating due to unabsorbed pipeline imbalance. */
    double
    throughputFactor() const
    {
        return 1.0 / (1.0 + 0.25 * maxImbalance);
    }

    /** @return the ADG node a dfg node is placed on (panics if absent). */
    adg::NodeId placedOn(dfg::NodeId node) const;
    /** @return whether @p node has a placement. */
    bool isPlaced(dfg::NodeId node) const;
};

/**
 * @return per-PE capabilities actually exercised by @p schedule —
 * input to module-capability pruning (paper §V-B).
 */
std::map<adg::NodeId, std::set<FuCapability>>
usedCapabilities(const Schedule &schedule, const dfg::Mdfg &mdfg);

/**
 * @return the perf-model backing of every memory stream implied by the
 * schedule's array placements, as a flat per-node table (see
 * model::BackingVec; non-stream slots stay at the Dma default).
 */
model::BackingVec
backingFromSchedule(const Schedule &schedule, const adg::Adg &adg,
                    const dfg::Mdfg &mdfg);

/**
 * Re-validate @p schedule against (a possibly mutated) @p adg: checks
 * that every placement target is alive and still capable, and every
 * route edge alive and connected. @return empty string when intact,
 * else the first violation.
 */
std::string checkSchedule(const Schedule &schedule, const adg::Adg &adg,
                          const dfg::Mdfg &mdfg);

} // namespace overgen::sched

#endif // OVERGEN_SCHED_SCHEDULE_H
