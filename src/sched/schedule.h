#ifndef OVERGEN_SCHED_SCHEDULE_H
#define OVERGEN_SCHED_SCHEDULE_H

/**
 * @file
 * A spatial schedule: the mapping of one mDFG onto one ADG — node
 * placements, circuit-switched routes for every dataflow edge, and the
 * per-operand delay-FIFO settings that keep PE pipelines balanced
 * (paper Fig. 2d and §V-B).
 */

#include <map>
#include <set>
#include <vector>

#include "adg/adg.h"
#include "dfg/mdfg.h"
#include "model/perf.h"

namespace overgen::sched {

/** A routed path: the ADG edges traversed, in order. */
using Route = std::vector<adg::EdgeId>;

/** The mapping of one mDFG variant onto an ADG. */
struct Schedule
{
    /** The scheduled variant's name (mDFGs are owned by the caller). */
    std::string mdfgName;
    /** ADG mutation counter at scheduling time (staleness check). */
    uint64_t adgVersion = 0;

    /** dfg node -> ADG node. Instructions map to PEs, streams to
     * ports (index streams to engines), arrays to memory engines. */
    std::map<dfg::NodeId, adg::NodeId> placement;

    /** dfg edge index (into Mdfg::edges()) -> routed path. Edges that
     * need no fabric route (array->stream, index feeds) are absent. */
    std::map<int, Route> routes;

    /** PE-mapped dfg instruction -> operand index -> delay-FIFO depth. */
    std::map<dfg::NodeId, std::map<int, int>> delayFifos;

    bool valid = false;

    /** Total routed edge count (the scheduler's distance cost). */
    int routeCost = 0;

    /**
     * Worst pipeline imbalance beyond what delay FIFOs and port FIFOs
     * absorb, in cycles. Imbalance produces pipeline bubbles that
     * reduce throughput (paper §V-B, Fig. 7b); the DSE objective
     * penalizes it via throughputFactor().
     */
    int maxImbalance = 0;

    /** Throughput derating due to unabsorbed pipeline imbalance. */
    double
    throughputFactor() const
    {
        return 1.0 / (1.0 + 0.25 * maxImbalance);
    }

    /** @return the ADG node a dfg node is placed on (panics if absent). */
    adg::NodeId placedOn(dfg::NodeId node) const;
    /** @return whether @p node has a placement. */
    bool isPlaced(dfg::NodeId node) const;
};

/**
 * @return per-PE capabilities actually exercised by @p schedule —
 * input to module-capability pruning (paper §V-B).
 */
std::map<adg::NodeId, std::set<FuCapability>>
usedCapabilities(const Schedule &schedule, const dfg::Mdfg &mdfg);

/**
 * @return the perf-model backing of every memory stream implied by the
 * schedule's array placements.
 */
std::map<dfg::NodeId, model::Backing>
backingFromSchedule(const Schedule &schedule, const adg::Adg &adg,
                    const dfg::Mdfg &mdfg);

/**
 * Re-validate @p schedule against (a possibly mutated) @p adg: checks
 * that every placement target is alive and still capable, and every
 * route edge alive and connected. @return empty string when intact,
 * else the first violation.
 */
std::string checkSchedule(const Schedule &schedule, const adg::Adg &adg,
                          const dfg::Mdfg &mdfg);

} // namespace overgen::sched

#endif // OVERGEN_SCHED_SCHEDULE_H
