#ifndef OVERGEN_ADG_ADG_H
#define OVERGEN_ADG_ADG_H

/**
 * @file
 * The architecture description graph (ADG): the spatial-accelerator design
 * representation that the scheduler maps mDFGs onto and that the DSE
 * mutates (paper §II, Fig. 2c). Also the system-level parameters that,
 * together with the ADG, form the sysADG (paper §III-A).
 */

#include <string>
#include <utility>
#include <vector>

#include "adg/node.h"
#include "common/json.h"

namespace overgen::adg {

/**
 * System-level design parameters explored by the nested system DSE
 * (paper §III-B "System Design Space").
 */
struct SystemParams
{
    /** Number of homogeneous tiles (control core + accelerator). */
    int numTiles = 1;
    /** Number of L2 banks (controls L2 bandwidth). */
    int l2Banks = 4;
    /** Shared L2 capacity in KiB. */
    int l2CapacityKiB = 512;
    /** NoC bandwidth in bytes per cycle per link. */
    int nocBytes = 32;
    /** DRAM channels (fixed to 1 on the evaluation board, Q7 varies it). */
    int dramChannels = 1;

    bool operator==(const SystemParams &other) const = default;

    /** Serialize to JSON. */
    Json toJson() const;
    /** Deserialize; fatal on malformed input. */
    static SystemParams fromJson(const Json &json);
};

/**
 * Architecture description graph of one accelerator tile.
 *
 * Nodes live in a dense vector with tombstones so NodeIds stay stable
 * across DSE mutations; schedule repair depends on that stability.
 */
class Adg
{
  public:
    /** Add a node of the given kind; @return its id. */
    NodeId addPe(PeSpec spec);
    NodeId addSwitch(SwitchSpec spec = {});
    NodeId addInPort(PortSpec spec = {});
    NodeId addOutPort(PortSpec spec = {});
    NodeId addDma(DmaSpec spec = {});
    NodeId addScratchpad(ScratchpadSpec spec = {});
    NodeId addRecurrence(RecurrenceSpec spec = {});
    NodeId addGenerate(GenerateSpec spec = {});
    NodeId addRegister(RegisterSpec spec = {});

    /**
     * Add a directed edge; fatal if the kinds may not connect (see
     * edgeLegal()). @return the edge id.
     */
    EdgeId addEdge(NodeId src, NodeId dst, int delay = 1);

    /** Remove an edge. Referencing it afterwards is a panic. */
    void removeEdge(EdgeId id);

    /** Remove a node together with all incident edges. */
    void removeNode(NodeId id);

    /** @return whether @p id names a live node. */
    bool hasNode(NodeId id) const;
    /** @return whether @p id names a live edge. */
    bool hasEdge(EdgeId id) const;

    /** @return the node; panic if dead or out of range. */
    const Node &node(NodeId id) const;
    Node &node(NodeId id);

    /** @return the edge; panic if dead or out of range. */
    const Edge &edge(EdgeId id) const;
    Edge &edge(EdgeId id);

    /** @return ids of live out-edges of @p id. */
    const std::vector<EdgeId> &outEdges(NodeId id) const;
    /** @return ids of live in-edges of @p id. */
    const std::vector<EdgeId> &inEdges(NodeId id) const;

    /** @return all live node ids (ascending). */
    std::vector<NodeId> nodeIds() const;
    /** @return all live node ids of one kind (ascending). */
    std::vector<NodeId> nodeIdsOfKind(NodeKind kind) const;
    /** @return all live edge ids (ascending). */
    std::vector<EdgeId> edgeIds() const;

    /** @return size of the node slot array (one past the largest id
     * ever issued, tombstones included) — for dense id-indexed
     * side tables. */
    size_t nodeSlots() const { return nodes.size(); }
    /** @return size of the edge slot array (see nodeSlots()). */
    size_t edgeSlots() const { return edges.size(); }

    /** @return count of live nodes of @p kind. */
    int countKind(NodeKind kind) const;
    /** @return count of live nodes. */
    int numNodes() const;
    /** @return count of live edges. */
    int numEdges() const;

    /** @return radix (in-degree + out-degree) of a node. */
    int radix(NodeId id) const;

    /** @return mean radix over live switches (Table III "Avg. Radix"). */
    double averageSwitchRadix() const;

    /**
     * @return whether an edge from @p src_kind to @p dst_kind respects
     * the topology rules (stream engines feed in-ports, out-ports feed
     * stream engines, fabric nodes interconnect).
     */
    static bool edgeLegal(NodeKind src_kind, NodeKind dst_kind);

    /**
     * Structural validation: every in-port reachable from some engine,
     * every out-port drains into one, no dangling fabric nodes. @return
     * an empty string when valid, else a description of the violation.
     */
    std::string validate() const;

    /** Serialize the whole graph to JSON. */
    Json toJson() const;
    /** Deserialize; fatal on malformed input. */
    static Adg fromJson(const Json &json);

    /**
     * 64-bit structural fingerprint over live nodes (id, kind, every
     * spec parameter) and live edges (id, endpoints, delay). Two ADGs
     * with identical live structure — including the id numbering the
     * scheduler depends on — fingerprint equal regardless of the
     * mutation history that produced them; per-item hashes are
     * combined commutatively, so iteration order is irrelevant. Any
     * single node/edge/parameter perturbation changes the value (see
     * tests/adg/fingerprint_test.cc). The DSE evaluation cache keys
     * on two independently salted fingerprints, making accidental
     * collisions a ~2^-128 event.
     */
    uint64_t fingerprint(uint64_t salt = 0) const;

    /**
     * Both salted fingerprints in one graph traversal. The per-item
     * structural hash is salt-independent, so computing a pair costs
     * barely more than one fingerprint() — the DSE evaluation cache
     * uses this for its double-salted key. fingerprint(s) ==
     * fingerprintPair(s, t).first for every t.
     */
    std::pair<uint64_t, uint64_t> fingerprintPair(uint64_t saltA,
                                                  uint64_t saltB) const;

    /** Monotonically increasing count of structural mutations. */
    uint64_t version() const { return mutationCount; }

  private:
    NodeId addNode(NodeKind kind, NodeSpec spec);

    std::vector<Node> nodes;
    std::vector<bool> nodeAlive;
    std::vector<Edge> edges;
    std::vector<bool> edgeAlive;
    std::vector<std::vector<EdgeId>> outAdj;
    std::vector<std::vector<EdgeId>> inAdj;
    uint64_t mutationCount = 0;
};

/** A full overlay design point: per-tile ADG plus system parameters. */
struct SysAdg
{
    Adg adg;
    SystemParams sys;

    Json toJson() const;
    static SysAdg fromJson(const Json &json);
};

} // namespace overgen::adg

#endif // OVERGEN_ADG_ADG_H
