#ifndef OVERGEN_ADG_NODE_H
#define OVERGEN_ADG_NODE_H

/**
 * @file
 * Node kinds and per-kind hardware parameters of the architecture
 * description graph (paper Fig. 2c and §III-B). Every parameter here is a
 * DSE-explorable dimension and an input to the FPGA resource model.
 */

#include <cstdint>
#include <set>
#include <string>
#include <variant>

#include "common/opcode.h"
#include "common/types.h"

namespace overgen::adg {

/** Stable identifier of a node within one Adg. */
using NodeId = int32_t;
/** Stable identifier of an edge within one Adg. */
using EdgeId = int32_t;

constexpr NodeId invalidNode = -1;
constexpr EdgeId invalidEdge = -1;

/** The kind of hardware primitive a node instantiates. */
enum class NodeKind : uint8_t {
    Pe,          //!< processing element (FU + operand delay FIFOs)
    Switch,      //!< operand-routing switch
    InPort,      //!< memory-to-compute synchronization port
    OutPort,     //!< compute-to-memory synchronization port
    Dma,         //!< stream engine accessing the shared L2 / DRAM
    Scratchpad,  //!< stream engine over a private scratchpad
    Recurrence,  //!< loop-carried-dependence forwarding engine
    Generate,    //!< affine value-sequence generator
    Register,    //!< scalar collection to the control core
};

/** @return printable kind name. */
std::string nodeKindName(NodeKind kind);

/** Parse a name produced by nodeKindName(); fatal on unknown names. */
NodeKind nodeKindFromName(const std::string &name);

/** @return whether @p kind is one of the five stream-engine kinds. */
bool isStreamEngine(NodeKind kind);

/** @return whether @p kind is a memory stream engine (DMA/scratchpad). */
bool isMemoryEngine(NodeKind kind);

/** Processing element parameters. */
struct PeSpec
{
    /** FU capabilities (opcode x datatype) this PE implements. */
    std::set<FuCapability> capabilities;
    /** Datapath width in bytes; wider than the FU element gives SIMD. */
    int datapathBytes = 8;
    /** Maximum per-operand delay-FIFO depth (pipeline balancing). */
    int maxDelayFifoDepth = 4;
    /** Whether a predication-based control lookup table is present. */
    bool controlLut = false;

    bool operator==(const PeSpec &other) const = default;
};

/** Switch parameters; the radix is implied by incident edges. */
struct SwitchSpec
{
    /** Datapath width in bytes routed per cycle. */
    int datapathBytes = 8;

    bool operator==(const SwitchSpec &other) const = default;
};

/** Input/output port parameters (paper §III-B "Ports"). */
struct PortSpec
{
    /** Port width in bytes: maximum ingest/egest rate per cycle. */
    int widthBytes = 8;
    /** Automatic padding for non-vector-width streams. */
    bool padding = false;
    /** Stream-state metadata (inner-dimension-complete flag). */
    bool statedStream = false;
    /** FIFO depth in entries; bounds stationary/recurrent buffering. */
    int fifoDepth = 4;

    bool operator==(const PortSpec &other) const = default;
};

/** DMA stream-engine parameters. */
struct DmaSpec
{
    /** Bandwidth to the NoC in bytes per cycle. */
    int bandwidthBytes = 8;
    /** Whether parallel indirect access (a[b[i]]) is supported. */
    bool indirect = false;
    /** Reorder-buffer entries for in-flight responses. */
    int robEntries = 16;

    bool operator==(const DmaSpec &other) const = default;
};

/** Scratchpad stream-engine parameters. */
struct ScratchpadSpec
{
    /** Capacity in KiB (includes double-buffering space). */
    int capacityKiB = 16;
    /** Read bandwidth in bytes per cycle. */
    int readBandwidthBytes = 16;
    /** Write bandwidth in bytes per cycle. */
    int writeBandwidthBytes = 16;
    /** Whether parallel indirect access is supported. */
    bool indirect = false;

    bool operator==(const ScratchpadSpec &other) const = default;
};

/** Recurrence engine parameters. */
struct RecurrenceSpec
{
    /** Forwarding bandwidth in bytes per cycle. */
    int bandwidthBytes = 8;

    bool operator==(const RecurrenceSpec &other) const = default;
};

/** Affine value-sequence generator parameters. */
struct GenerateSpec
{
    /** Generation bandwidth in bytes per cycle. */
    int bandwidthBytes = 8;

    bool operator==(const GenerateSpec &other) const = default;
};

/** Register engine parameters (scalar egress to the control core). */
struct RegisterSpec
{
    /** Collection bandwidth in bytes per cycle. */
    int bandwidthBytes = 8;

    bool operator==(const RegisterSpec &other) const = default;
};

/** Per-kind parameter payload. */
using NodeSpec = std::variant<PeSpec, SwitchSpec, PortSpec, DmaSpec,
                              ScratchpadSpec, RecurrenceSpec, GenerateSpec,
                              RegisterSpec>;

/** One node of the architecture description graph. */
struct Node
{
    NodeId id = invalidNode;
    NodeKind kind = NodeKind::Switch;
    NodeSpec spec;

    const PeSpec &pe() const { return std::get<PeSpec>(spec); }
    PeSpec &pe() { return std::get<PeSpec>(spec); }
    const SwitchSpec &sw() const { return std::get<SwitchSpec>(spec); }
    SwitchSpec &sw() { return std::get<SwitchSpec>(spec); }
    const PortSpec &port() const { return std::get<PortSpec>(spec); }
    PortSpec &port() { return std::get<PortSpec>(spec); }
    const DmaSpec &dma() const { return std::get<DmaSpec>(spec); }
    DmaSpec &dma() { return std::get<DmaSpec>(spec); }
    const ScratchpadSpec &spad() const
    {
        return std::get<ScratchpadSpec>(spec);
    }
    ScratchpadSpec &spad() { return std::get<ScratchpadSpec>(spec); }
    const RecurrenceSpec &rec() const
    {
        return std::get<RecurrenceSpec>(spec);
    }
    RecurrenceSpec &rec() { return std::get<RecurrenceSpec>(spec); }
    const GenerateSpec &gen() const
    {
        return std::get<GenerateSpec>(spec);
    }
    GenerateSpec &gen() { return std::get<GenerateSpec>(spec); }
    const RegisterSpec &reg() const
    {
        return std::get<RegisterSpec>(spec);
    }
    RegisterSpec &reg() { return std::get<RegisterSpec>(spec); }
};

/** One directed edge of the ADG with an enforced pipeline delay. */
struct Edge
{
    EdgeId id = invalidEdge;
    NodeId src = invalidNode;
    NodeId dst = invalidNode;
    /** Enforced delay cycles over this edge (paper Fig. 7b). */
    int delay = 1;
};

} // namespace overgen::adg

#endif // OVERGEN_ADG_NODE_H
