#include "adg/adg.h"

#include <algorithm>

#include "common/logging.h"

namespace overgen::adg {

std::string
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Pe:
        return "pe";
      case NodeKind::Switch:
        return "switch";
      case NodeKind::InPort:
        return "in_port";
      case NodeKind::OutPort:
        return "out_port";
      case NodeKind::Dma:
        return "dma";
      case NodeKind::Scratchpad:
        return "scratchpad";
      case NodeKind::Recurrence:
        return "recurrence";
      case NodeKind::Generate:
        return "generate";
      case NodeKind::Register:
        return "register";
    }
    OG_PANIC("unknown node kind");
}

NodeKind
nodeKindFromName(const std::string &name)
{
    for (int k = 0; k <= static_cast<int>(NodeKind::Register); ++k) {
        auto kind = static_cast<NodeKind>(k);
        if (nodeKindName(kind) == name)
            return kind;
    }
    OG_FATAL("unknown node kind name '", name, "'");
}

bool
isStreamEngine(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Dma:
      case NodeKind::Scratchpad:
      case NodeKind::Recurrence:
      case NodeKind::Generate:
      case NodeKind::Register:
        return true;
      default:
        return false;
    }
}

bool
isMemoryEngine(NodeKind kind)
{
    return kind == NodeKind::Dma || kind == NodeKind::Scratchpad;
}

NodeId
Adg::addNode(NodeKind kind, NodeSpec spec)
{
    NodeId id = static_cast<NodeId>(nodes.size());
    nodes.push_back(Node{ id, kind, std::move(spec) });
    nodeAlive.push_back(true);
    outAdj.emplace_back();
    inAdj.emplace_back();
    ++mutationCount;
    return id;
}

NodeId
Adg::addPe(PeSpec spec)
{
    return addNode(NodeKind::Pe, std::move(spec));
}

NodeId
Adg::addSwitch(SwitchSpec spec)
{
    return addNode(NodeKind::Switch, spec);
}

NodeId
Adg::addInPort(PortSpec spec)
{
    return addNode(NodeKind::InPort, spec);
}

NodeId
Adg::addOutPort(PortSpec spec)
{
    return addNode(NodeKind::OutPort, spec);
}

NodeId
Adg::addDma(DmaSpec spec)
{
    return addNode(NodeKind::Dma, spec);
}

NodeId
Adg::addScratchpad(ScratchpadSpec spec)
{
    return addNode(NodeKind::Scratchpad, spec);
}

NodeId
Adg::addRecurrence(RecurrenceSpec spec)
{
    return addNode(NodeKind::Recurrence, spec);
}

NodeId
Adg::addGenerate(GenerateSpec spec)
{
    return addNode(NodeKind::Generate, spec);
}

NodeId
Adg::addRegister(RegisterSpec spec)
{
    return addNode(NodeKind::Register, spec);
}

bool
Adg::edgeLegal(NodeKind src_kind, NodeKind dst_kind)
{
    switch (src_kind) {
      case NodeKind::InPort:
        // InPort -> OutPort covers pure-copy routes created by node
        // collapsing (paper Fig. 7a) when a pass-through switch dies.
        return dst_kind == NodeKind::Switch || dst_kind == NodeKind::Pe ||
               dst_kind == NodeKind::OutPort;
      case NodeKind::Switch:
        return dst_kind == NodeKind::Switch || dst_kind == NodeKind::Pe ||
               dst_kind == NodeKind::OutPort;
      case NodeKind::Pe:
        return dst_kind == NodeKind::Switch ||
               dst_kind == NodeKind::OutPort || dst_kind == NodeKind::Pe;
      case NodeKind::Dma:
      case NodeKind::Scratchpad:
      case NodeKind::Recurrence:
      case NodeKind::Generate:
        return dst_kind == NodeKind::InPort;
      case NodeKind::OutPort:
        return isStreamEngine(dst_kind);
      case NodeKind::Register:
        // The register engine only drains out-ports toward the core.
        return false;
    }
    return false;
}

EdgeId
Adg::addEdge(NodeId src, NodeId dst, int delay)
{
    OG_ASSERT(hasNode(src), "edge source ", src, " is not a live node");
    OG_ASSERT(hasNode(dst), "edge target ", dst, " is not a live node");
    OG_ASSERT(src != dst, "self edge on node ", src);
    OG_ASSERT(delay >= 0, "negative edge delay");
    NodeKind sk = node(src).kind;
    NodeKind dk = node(dst).kind;
    OG_ASSERT(edgeLegal(sk, dk), "illegal ADG edge ", nodeKindName(sk),
              " -> ", nodeKindName(dk));
    EdgeId id = static_cast<EdgeId>(edges.size());
    edges.push_back(Edge{ id, src, dst, delay });
    edgeAlive.push_back(true);
    outAdj[src].push_back(id);
    inAdj[dst].push_back(id);
    ++mutationCount;
    return id;
}

void
Adg::removeEdge(EdgeId id)
{
    OG_ASSERT(hasEdge(id), "removing dead edge ", id);
    const Edge &e = edges[id];
    auto erase_from = [id](std::vector<EdgeId> &vec) {
        vec.erase(std::remove(vec.begin(), vec.end(), id), vec.end());
    };
    erase_from(outAdj[e.src]);
    erase_from(inAdj[e.dst]);
    edgeAlive[id] = false;
    ++mutationCount;
}

void
Adg::removeNode(NodeId id)
{
    OG_ASSERT(hasNode(id), "removing dead node ", id);
    // Copy: removeEdge mutates the adjacency lists we iterate.
    std::vector<EdgeId> incident = outAdj[id];
    incident.insert(incident.end(), inAdj[id].begin(), inAdj[id].end());
    for (EdgeId e : incident) {
        if (hasEdge(e))
            removeEdge(e);
    }
    nodeAlive[id] = false;
    ++mutationCount;
}

bool
Adg::hasNode(NodeId id) const
{
    return id >= 0 && id < static_cast<NodeId>(nodes.size()) &&
           nodeAlive[id];
}

bool
Adg::hasEdge(EdgeId id) const
{
    return id >= 0 && id < static_cast<EdgeId>(edges.size()) &&
           edgeAlive[id];
}

const Node &
Adg::node(NodeId id) const
{
    OG_ASSERT(hasNode(id), "access to dead node ", id);
    return nodes[id];
}

Node &
Adg::node(NodeId id)
{
    OG_ASSERT(hasNode(id), "access to dead node ", id);
    return nodes[id];
}

const Edge &
Adg::edge(EdgeId id) const
{
    OG_ASSERT(hasEdge(id), "access to dead edge ", id);
    return edges[id];
}

Edge &
Adg::edge(EdgeId id)
{
    OG_ASSERT(hasEdge(id), "access to dead edge ", id);
    return edges[id];
}

const std::vector<EdgeId> &
Adg::outEdges(NodeId id) const
{
    OG_ASSERT(hasNode(id), "outEdges of dead node ", id);
    return outAdj[id];
}

const std::vector<EdgeId> &
Adg::inEdges(NodeId id) const
{
    OG_ASSERT(hasNode(id), "inEdges of dead node ", id);
    return inAdj[id];
}

std::vector<NodeId>
Adg::nodeIds() const
{
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < static_cast<NodeId>(nodes.size()); ++i) {
        if (nodeAlive[i])
            ids.push_back(i);
    }
    return ids;
}

std::vector<NodeId>
Adg::nodeIdsOfKind(NodeKind kind) const
{
    std::vector<NodeId> ids;
    for (NodeId i = 0; i < static_cast<NodeId>(nodes.size()); ++i) {
        if (nodeAlive[i] && nodes[i].kind == kind)
            ids.push_back(i);
    }
    return ids;
}

std::vector<EdgeId>
Adg::edgeIds() const
{
    std::vector<EdgeId> ids;
    for (EdgeId i = 0; i < static_cast<EdgeId>(edges.size()); ++i) {
        if (edgeAlive[i])
            ids.push_back(i);
    }
    return ids;
}

int
Adg::countKind(NodeKind kind) const
{
    int count = 0;
    for (NodeId i = 0; i < static_cast<NodeId>(nodes.size()); ++i) {
        if (nodeAlive[i] && nodes[i].kind == kind)
            ++count;
    }
    return count;
}

int
Adg::numNodes() const
{
    return static_cast<int>(
        std::count(nodeAlive.begin(), nodeAlive.end(), true));
}

int
Adg::numEdges() const
{
    return static_cast<int>(
        std::count(edgeAlive.begin(), edgeAlive.end(), true));
}

int
Adg::radix(NodeId id) const
{
    OG_ASSERT(hasNode(id), "radix of dead node ", id);
    return static_cast<int>(outAdj[id].size() + inAdj[id].size());
}

double
Adg::averageSwitchRadix() const
{
    auto switches = nodeIdsOfKind(NodeKind::Switch);
    if (switches.empty())
        return 0.0;
    double sum = 0.0;
    for (NodeId sw : switches)
        sum += radix(sw);
    return sum / static_cast<double>(switches.size());
}

std::string
Adg::validate() const
{
    for (NodeId id : nodeIds()) {
        const Node &n = node(id);
        switch (n.kind) {
          case NodeKind::InPort:
            if (inAdj[id].empty())
                return "in-port " + std::to_string(id) +
                       " is fed by no stream engine";
            if (outAdj[id].empty())
                return "in-port " + std::to_string(id) +
                       " feeds no fabric node";
            break;
          case NodeKind::OutPort:
            if (outAdj[id].empty())
                return "out-port " + std::to_string(id) +
                       " drains to no stream engine";
            if (inAdj[id].empty())
                return "out-port " + std::to_string(id) +
                       " is fed by no fabric node";
            break;
          case NodeKind::Pe:
            if (n.pe().capabilities.empty())
                return "pe " + std::to_string(id) + " has no capability";
            if (inAdj[id].empty() || outAdj[id].empty())
                return "pe " + std::to_string(id) + " is dangling";
            break;
          case NodeKind::Switch:
            if (inAdj[id].empty() && outAdj[id].empty())
                return "switch " + std::to_string(id) + " is dangling";
            break;
          default:
            break;
        }
    }
    return "";
}

namespace {

/** splitmix64 finalizer: full-avalanche mixing of one 64-bit word. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Incremental item hasher: absorb words, then finalize. */
class ItemHash
{
  public:
    explicit ItemHash(uint64_t seed) : h(mix64(seed)) {}

    void
    absorb(uint64_t v)
    {
        h = mix64(h ^ mix64(v));
    }

    void absorbBool(bool v) { absorb(v ? 1 : 2); }

    uint64_t value() const { return mix64(h); }

  private:
    uint64_t h;
};

void
absorbSpec(ItemHash &item, const Node &n)
{
    switch (n.kind) {
      case NodeKind::Pe: {
        const PeSpec &pe = n.pe();
        // std::set iterates in sorted order: deterministic.
        for (const FuCapability &cap : pe.capabilities) {
            item.absorb(static_cast<uint64_t>(cap.op));
            item.absorb(static_cast<uint64_t>(cap.type));
        }
        item.absorb(pe.capabilities.size());
        item.absorb(static_cast<uint64_t>(pe.datapathBytes));
        item.absorb(static_cast<uint64_t>(pe.maxDelayFifoDepth));
        item.absorbBool(pe.controlLut);
        break;
      }
      case NodeKind::Switch:
        item.absorb(static_cast<uint64_t>(n.sw().datapathBytes));
        break;
      case NodeKind::InPort:
      case NodeKind::OutPort: {
        const PortSpec &port = n.port();
        item.absorb(static_cast<uint64_t>(port.widthBytes));
        item.absorbBool(port.padding);
        item.absorbBool(port.statedStream);
        item.absorb(static_cast<uint64_t>(port.fifoDepth));
        break;
      }
      case NodeKind::Dma: {
        const DmaSpec &dma = n.dma();
        item.absorb(static_cast<uint64_t>(dma.bandwidthBytes));
        item.absorbBool(dma.indirect);
        item.absorb(static_cast<uint64_t>(dma.robEntries));
        break;
      }
      case NodeKind::Scratchpad: {
        const ScratchpadSpec &spad = n.spad();
        item.absorb(static_cast<uint64_t>(spad.capacityKiB));
        item.absorb(static_cast<uint64_t>(spad.readBandwidthBytes));
        item.absorb(static_cast<uint64_t>(spad.writeBandwidthBytes));
        item.absorbBool(spad.indirect);
        break;
      }
      case NodeKind::Recurrence:
        item.absorb(static_cast<uint64_t>(n.rec().bandwidthBytes));
        break;
      case NodeKind::Generate:
        item.absorb(static_cast<uint64_t>(n.gen().bandwidthBytes));
        break;
      case NodeKind::Register:
        item.absorb(static_cast<uint64_t>(n.reg().bandwidthBytes));
        break;
    }
}

} // namespace

uint64_t
Adg::fingerprint(uint64_t salt) const
{
    return fingerprintPair(salt, salt).first;
}

std::pair<uint64_t, uint64_t>
Adg::fingerprintPair(uint64_t saltA, uint64_t saltB) const
{
    // Commutative combination (wrapping sum) of strongly mixed
    // per-item hashes: the live set, not the traversal order,
    // determines the value. Each item hash covers the item's stable
    // id, so renumbered-but-isomorphic graphs — which schedule
    // differently — fingerprint differently on purpose.
    //
    // The expensive part — absorbing every spec parameter — is
    // salt-independent; each salt then re-mixes the per-item core
    // through its own tweak word, so both halves of the pair stay
    // full-avalanche functions of (structure, salt) while the graph
    // is walked exactly once.
    uint64_t node_tweak_a = mix64(saltA ^ 0xA0A0A0A0A0A0A0A0ull);
    uint64_t node_tweak_b = mix64(saltB ^ 0xA0A0A0A0A0A0A0A0ull);
    uint64_t edge_tweak_a = mix64(saltA ^ 0x5B5B5B5B5B5B5B5Bull);
    uint64_t edge_tweak_b = mix64(saltB ^ 0x5B5B5B5B5B5B5B5Bull);
    uint64_t fp_a = mix64(saltA ^ 0x4f76657247656e21ull);  // "OverGen!"
    uint64_t fp_b = mix64(saltB ^ 0x4f76657247656e21ull);
    for (NodeId id = 0; id < static_cast<NodeId>(nodes.size()); ++id) {
        if (!nodeAlive[id])
            continue;
        ItemHash item(0xA0A0A0A0A0A0A0A0ull);
        item.absorb(static_cast<uint64_t>(id));
        item.absorb(static_cast<uint64_t>(nodes[id].kind));
        absorbSpec(item, nodes[id]);
        uint64_t core = item.value();
        fp_a += mix64(core ^ node_tweak_a);
        fp_b += mix64(core ^ node_tweak_b);
    }
    for (EdgeId id = 0; id < static_cast<EdgeId>(edges.size()); ++id) {
        if (!edgeAlive[id])
            continue;
        const Edge &e = edges[id];
        ItemHash item(0x5B5B5B5B5B5B5B5Bull);
        item.absorb(static_cast<uint64_t>(id));
        item.absorb(static_cast<uint64_t>(e.src));
        item.absorb(static_cast<uint64_t>(e.dst));
        item.absorb(static_cast<uint64_t>(e.delay));
        uint64_t core = item.value();
        fp_a += mix64(core ^ edge_tweak_a);
        fp_b += mix64(core ^ edge_tweak_b);
    }
    return { mix64(fp_a), mix64(fp_b) };
}

namespace {

Json
specToJson(const Node &n)
{
    Json obj = Json::makeObject();
    switch (n.kind) {
      case NodeKind::Pe: {
        const auto &pe = n.pe();
        Json caps = Json::makeArray();
        for (const auto &cap : pe.capabilities)
            caps.push(fuCapabilityName(cap));
        obj.set("capabilities", std::move(caps));
        obj.set("datapath_bytes", pe.datapathBytes);
        obj.set("max_delay_fifo_depth", pe.maxDelayFifoDepth);
        obj.set("control_lut", pe.controlLut);
        break;
      }
      case NodeKind::Switch:
        obj.set("datapath_bytes", n.sw().datapathBytes);
        break;
      case NodeKind::InPort:
      case NodeKind::OutPort: {
        const auto &port = n.port();
        obj.set("width_bytes", port.widthBytes);
        obj.set("padding", port.padding);
        obj.set("stated_stream", port.statedStream);
        obj.set("fifo_depth", port.fifoDepth);
        break;
      }
      case NodeKind::Dma: {
        const auto &dma = n.dma();
        obj.set("bandwidth_bytes", dma.bandwidthBytes);
        obj.set("indirect", dma.indirect);
        obj.set("rob_entries", dma.robEntries);
        break;
      }
      case NodeKind::Scratchpad: {
        const auto &spad = n.spad();
        obj.set("capacity_kib", spad.capacityKiB);
        obj.set("read_bandwidth_bytes", spad.readBandwidthBytes);
        obj.set("write_bandwidth_bytes", spad.writeBandwidthBytes);
        obj.set("indirect", spad.indirect);
        break;
      }
      case NodeKind::Recurrence:
        obj.set("bandwidth_bytes", n.rec().bandwidthBytes);
        break;
      case NodeKind::Generate:
        obj.set("bandwidth_bytes", n.gen().bandwidthBytes);
        break;
      case NodeKind::Register:
        obj.set("bandwidth_bytes", n.reg().bandwidthBytes);
        break;
    }
    return obj;
}

NodeSpec
specFromJson(NodeKind kind, const Json &obj)
{
    switch (kind) {
      case NodeKind::Pe: {
        PeSpec pe;
        for (const auto &cap : obj.at("capabilities").asArray()) {
            const std::string &name = cap.asString();
            auto dot = name.find('.');
            OG_ASSERT(dot != std::string::npos, "bad capability ", name);
            pe.capabilities.insert(
                FuCapability{ opcodeFromName(name.substr(0, dot)),
                              dataTypeFromName(name.substr(dot + 1)) });
        }
        pe.datapathBytes =
            static_cast<int>(obj.at("datapath_bytes").asInt());
        pe.maxDelayFifoDepth =
            static_cast<int>(obj.at("max_delay_fifo_depth").asInt());
        pe.controlLut = obj.at("control_lut").asBool();
        return pe;
      }
      case NodeKind::Switch: {
        SwitchSpec sw;
        sw.datapathBytes =
            static_cast<int>(obj.at("datapath_bytes").asInt());
        return sw;
      }
      case NodeKind::InPort:
      case NodeKind::OutPort: {
        PortSpec port;
        port.widthBytes = static_cast<int>(obj.at("width_bytes").asInt());
        port.padding = obj.at("padding").asBool();
        port.statedStream = obj.at("stated_stream").asBool();
        port.fifoDepth = static_cast<int>(obj.at("fifo_depth").asInt());
        return port;
      }
      case NodeKind::Dma: {
        DmaSpec dma;
        dma.bandwidthBytes =
            static_cast<int>(obj.at("bandwidth_bytes").asInt());
        dma.indirect = obj.at("indirect").asBool();
        dma.robEntries = static_cast<int>(obj.at("rob_entries").asInt());
        return dma;
      }
      case NodeKind::Scratchpad: {
        ScratchpadSpec spad;
        spad.capacityKiB = static_cast<int>(obj.at("capacity_kib").asInt());
        spad.readBandwidthBytes =
            static_cast<int>(obj.at("read_bandwidth_bytes").asInt());
        spad.writeBandwidthBytes =
            static_cast<int>(obj.at("write_bandwidth_bytes").asInt());
        spad.indirect = obj.at("indirect").asBool();
        return spad;
      }
      case NodeKind::Recurrence: {
        RecurrenceSpec rec;
        rec.bandwidthBytes =
            static_cast<int>(obj.at("bandwidth_bytes").asInt());
        return rec;
      }
      case NodeKind::Generate: {
        GenerateSpec gen;
        gen.bandwidthBytes =
            static_cast<int>(obj.at("bandwidth_bytes").asInt());
        return gen;
      }
      case NodeKind::Register: {
        RegisterSpec reg;
        reg.bandwidthBytes =
            static_cast<int>(obj.at("bandwidth_bytes").asInt());
        return reg;
      }
    }
    OG_PANIC("unknown node kind");
}

} // namespace

Json
Adg::toJson() const
{
    Json obj = Json::makeObject();
    Json node_arr = Json::makeArray();
    for (NodeId id : nodeIds()) {
        const Node &n = node(id);
        Json jn = Json::makeObject();
        jn.set("id", static_cast<int64_t>(id));
        jn.set("kind", nodeKindName(n.kind));
        jn.set("spec", specToJson(n));
        node_arr.push(std::move(jn));
    }
    obj.set("nodes", std::move(node_arr));
    Json edge_arr = Json::makeArray();
    for (EdgeId id : edgeIds()) {
        const Edge &e = edge(id);
        Json je = Json::makeObject();
        je.set("src", static_cast<int64_t>(e.src));
        je.set("dst", static_cast<int64_t>(e.dst));
        je.set("delay", static_cast<int64_t>(e.delay));
        edge_arr.push(std::move(je));
    }
    obj.set("edges", std::move(edge_arr));
    return obj;
}

Adg
Adg::fromJson(const Json &json)
{
    Adg adg;
    // Ids in the file may be sparse (post-mutation dumps); remap densely.
    std::map<int64_t, NodeId> remap;
    for (const auto &jn : json.at("nodes").asArray()) {
        NodeKind kind = nodeKindFromName(jn.at("kind").asString());
        NodeSpec spec = specFromJson(kind, jn.at("spec"));
        NodeId id = adg.addNode(kind, std::move(spec));
        remap[jn.at("id").asInt()] = id;
    }
    for (const auto &je : json.at("edges").asArray()) {
        adg.addEdge(remap.at(je.at("src").asInt()),
                    remap.at(je.at("dst").asInt()),
                    static_cast<int>(je.at("delay").asInt()));
    }
    return adg;
}

Json
SystemParams::toJson() const
{
    Json obj = Json::makeObject();
    obj.set("num_tiles", numTiles);
    obj.set("l2_banks", l2Banks);
    obj.set("l2_capacity_kib", l2CapacityKiB);
    obj.set("noc_bytes", nocBytes);
    obj.set("dram_channels", dramChannels);
    return obj;
}

SystemParams
SystemParams::fromJson(const Json &json)
{
    SystemParams sys;
    sys.numTiles = static_cast<int>(json.at("num_tiles").asInt());
    sys.l2Banks = static_cast<int>(json.at("l2_banks").asInt());
    sys.l2CapacityKiB =
        static_cast<int>(json.at("l2_capacity_kib").asInt());
    sys.nocBytes = static_cast<int>(json.at("noc_bytes").asInt());
    sys.dramChannels = static_cast<int>(json.at("dram_channels").asInt());
    return sys;
}

Json
SysAdg::toJson() const
{
    Json obj = Json::makeObject();
    obj.set("adg", adg.toJson());
    obj.set("system", sys.toJson());
    return obj;
}

SysAdg
SysAdg::fromJson(const Json &json)
{
    SysAdg result;
    result.adg = Adg::fromJson(json.at("adg"));
    result.sys = SystemParams::fromJson(json.at("system"));
    return result;
}

} // namespace overgen::adg
