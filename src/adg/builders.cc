#include "adg/builders.h"

#include <algorithm>

#include "common/logging.h"

namespace overgen::adg {

std::set<FuCapability>
intCapabilities(DataType type)
{
    OG_ASSERT(!dataTypeIsFloat(type), "intCapabilities on float type");
    std::set<FuCapability> caps;
    for (Opcode op : allOpcodes()) {
        if (op == Opcode::Sqrt)
            continue;  // no integer sqrt FU in the overlay library
        caps.insert({ op, type });
    }
    return caps;
}

std::set<FuCapability>
floatCapabilities(DataType type)
{
    OG_ASSERT(dataTypeIsFloat(type), "floatCapabilities on int type");
    std::set<FuCapability> caps;
    for (Opcode op : allOpcodes()) {
        switch (op) {
          case Opcode::Shl:
          case Opcode::Shr:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
            continue;  // bitwise ops are integer-only
          default:
            caps.insert({ op, type });
        }
    }
    return caps;
}

Adg
buildMeshTile(const MeshConfig &config)
{
    OG_ASSERT(config.rows >= 1 && config.cols >= 1, "empty mesh");
    OG_ASSERT(!config.peCapabilities.empty(), "mesh PEs need capabilities");
    Adg adg;

    // Switch grid with bidirectional N/S/E/W links.
    std::vector<std::vector<NodeId>> grid(
        config.rows, std::vector<NodeId>(config.cols, invalidNode));
    for (int r = 0; r < config.rows; ++r) {
        for (int c = 0; c < config.cols; ++c) {
            grid[r][c] =
                adg.addSwitch(SwitchSpec{ config.datapathBytes });
        }
    }
    int tracks = std::max(1, config.tracks);
    for (int r = 0; r < config.rows; ++r) {
        for (int c = 0; c < config.cols; ++c) {
            for (int t = 0; t < tracks; ++t) {
                if (c + 1 < config.cols) {
                    adg.addEdge(grid[r][c], grid[r][c + 1]);
                    adg.addEdge(grid[r][c + 1], grid[r][c]);
                }
                if (r + 1 < config.rows) {
                    adg.addEdge(grid[r][c], grid[r + 1][c]);
                    adg.addEdge(grid[r + 1][c], grid[r][c]);
                }
            }
        }
    }

    // PEs: attach round-robin over grid cells; each PE is fed by its
    // home switch and feeds the next switch (row-major neighbour).
    PeSpec pe_spec;
    pe_spec.capabilities = config.peCapabilities;
    pe_spec.datapathBytes = config.datapathBytes;
    int cells = config.rows * config.cols;
    for (int i = 0; i < config.numPes; ++i) {
        int cell = (i * 2 + 1) % cells;  // spread PEs over the grid
        int r = cell / config.cols;
        int c = cell % config.cols;
        NodeId pe = adg.addPe(pe_spec);
        adg.addEdge(grid[r][c], pe);
        int nr = (c + 1 < config.cols) ? r : (r + 1) % config.rows;
        int nc = (c + 1 < config.cols) ? c + 1 : c;
        adg.addEdge(pe, grid[nr][nc]);
        // A second operand feed improves routability for 2-input ops.
        int pr = (c > 0) ? r : (r + config.rows - 1) % config.rows;
        int pc = (c > 0) ? c - 1 : c;
        if (grid[pr][pc] != grid[r][c])
            adg.addEdge(grid[pr][pc], pe);
    }

    // Stream engines.
    std::vector<NodeId> engines;
    engines.push_back(adg.addDma(DmaSpec{ config.dmaBandwidthBytes,
                                          config.indirect, 64 }));
    for (int i = 0; i < config.numScratchpads; ++i) {
        engines.push_back(adg.addScratchpad(
            ScratchpadSpec{ config.spadCapacityKiB, config.datapathBytes,
                            config.datapathBytes, config.indirect }));
    }
    if (config.generateEngine)
        engines.push_back(adg.addGenerate(GenerateSpec{
            config.datapathBytes }));
    if (config.recurrenceEngine)
        engines.push_back(adg.addRecurrence(RecurrenceSpec{
            config.datapathBytes }));
    NodeId reg_engine = invalidNode;
    if (config.registerEngine)
        reg_engine = adg.addRegister(RegisterSpec{ 8 });

    // Ports: in-ports spread along the top switch row, out-ports along
    // the bottom row. Every engine feeds every in-port (fully-connected
    // memory, Fig. 4a); the spatial-memory DSE later specializes this.
    PortSpec port_spec;
    port_spec.widthBytes = config.datapathBytes;
    port_spec.padding = true;
    port_spec.statedStream = true;
    for (int i = 0; i < config.numInPorts; ++i) {
        NodeId port = adg.addInPort(port_spec);
        for (NodeId engine : engines)
            adg.addEdge(engine, port);
        adg.addEdge(port, grid[0][i % config.cols]);
    }
    for (int i = 0; i < config.numOutPorts; ++i) {
        NodeId port = adg.addOutPort(port_spec);
        adg.addEdge(grid[config.rows - 1][i % config.cols], port);
        for (NodeId engine : engines) {
            if (adg.node(engine).kind != NodeKind::Generate)
                adg.addEdge(port, engine);
        }
        if (reg_engine != invalidNode)
            adg.addEdge(port, reg_engine);
    }

    std::string err = adg.validate();
    OG_ASSERT(err.empty(), "mesh tile invalid: ", err);
    return adg;
}

Adg
buildGeneralOverlayTile()
{
    MeshConfig config;
    config.rows = 5;
    config.cols = 7;
    config.numPes = 24;       // Table III: General has 24 PEs, 35 switches
    config.numInPorts = 10;   // generous ingest (Table III: 224 B in)
    config.numOutPorts = 6;
    config.datapathBytes = 64;  // 512-bit maximum vectorization width
    config.numScratchpads = 1;
    config.spadCapacityKiB = 32;
    config.indirect = true;
    config.dmaBandwidthBytes = 64;

    // The general overlay carries every FU capability: all integer types
    // and both float precisions (Table III: 24/24/24 int, 24/24/24/24
    // float columns mean full provisioning on every PE).
    std::set<FuCapability> caps;
    for (DataType type : { DataType::I8, DataType::I16, DataType::I32,
                           DataType::I64 }) {
        auto sub = intCapabilities(type);
        caps.insert(sub.begin(), sub.end());
    }
    for (DataType type : { DataType::F32, DataType::F64 }) {
        auto sub = floatCapabilities(type);
        caps.insert(sub.begin(), sub.end());
    }
    config.peCapabilities = std::move(caps);
    return buildMeshTile(config);
}

} // namespace overgen::adg
