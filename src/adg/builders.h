#ifndef OVERGEN_ADG_BUILDERS_H
#define OVERGEN_ADG_BUILDERS_H

/**
 * @file
 * Canonical ADG topology generators: the mesh fabric used as the DSE seed
 * and the hand-designed "General Overlay" of the evaluation (paper Q1,
 * Table III rightmost column).
 */

#include "adg/adg.h"

namespace overgen::adg {

/** Parameters of a mesh-fabric tile. */
struct MeshConfig
{
    /** Switch-grid rows. */
    int rows = 4;
    /** Switch-grid columns. */
    int cols = 4;
    /** Parallel physical tracks per grid link (routing capacity). */
    int tracks = 1;
    /** PEs (one per interior grid cell, capped at this count). */
    int numPes = 8;
    /** Capabilities every PE starts with. */
    std::set<FuCapability> peCapabilities;
    /** PE/switch/port datapath width in bytes. */
    int datapathBytes = 8;
    /** Input ports along the top edge. */
    int numInPorts = 4;
    /** Output ports along the bottom edge. */
    int numOutPorts = 2;
    /** Scratchpads (0 or more; DMA is always present). */
    int numScratchpads = 1;
    /** Scratchpad capacity in KiB. */
    int spadCapacityKiB = 32;
    /** Whether memory engines support indirect access. */
    bool indirect = false;
    /** Whether to instantiate generate/recurrence/register engines. */
    bool generateEngine = true;
    bool recurrenceEngine = true;
    bool registerEngine = true;
    /** DMA bandwidth in bytes per cycle. */
    int dmaBandwidthBytes = 16;
};

/**
 * Build a mesh-fabric tile: a rows x cols switch grid with N/S/E/W links,
 * PEs hanging off grid cells, in-ports on the top edge fed by all stream
 * engines (the "fixed fully-connected memory" of paper Fig. 4a), and
 * out-ports on the bottom edge draining into them.
 */
Adg buildMeshTile(const MeshConfig &config);

/**
 * Build the hand-designed General Overlay tile of the evaluation: a large
 * mesh with every FU capability at maximum (512-bit total) vector width.
 */
Adg buildGeneralOverlayTile();

/** @return capability set covering all integer ops at @p type. */
std::set<FuCapability> intCapabilities(DataType type);

/** @return capability set covering all float ops at @p type. */
std::set<FuCapability> floatCapabilities(DataType type);

} // namespace overgen::adg

#endif // OVERGEN_ADG_BUILDERS_H
