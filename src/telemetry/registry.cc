#include "telemetry/registry.h"

namespace overgen::telemetry {

Counter &
Registry::counter(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex);
    return counterMap[path];
}

Distribution &
Registry::distribution(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex);
    return distMap[path];
}

namespace {

/** Insert @p leaf into @p root under the '/'-separated @p path. */
void
insertAtPath(Json &root, const std::string &path, Json leaf)
{
    Json *node = &root;
    size_t begin = 0;
    while (true) {
        size_t slash = path.find('/', begin);
        std::string segment = path.substr(
            begin, slash == std::string::npos ? std::string::npos
                                              : slash - begin);
        if (slash == std::string::npos) {
            node->set(segment, std::move(leaf));
            return;
        }
        if (!node->contains(segment))
            node->set(segment, Json::makeObject());
        node = &node->asObject()[segment];
        begin = slash + 1;
    }
}

} // namespace

Json
Registry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex);
    Json root = Json::makeObject();
    for (const auto &[path, c] : counterMap)
        insertAtPath(root, path, Json(c.value()));
    for (const auto &[path, d] : distMap) {
        Json leaf = Json::makeObject();
        leaf.set("count", Json(d.count()));
        leaf.set("sum", Json(d.total()));
        leaf.set("min", Json(d.min()));
        leaf.set("max", Json(d.max()));
        leaf.set("mean", Json(d.mean()));
        insertAtPath(root, path, std::move(leaf));
    }
    return root;
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    counterMap.clear();
    distMap.clear();
}

} // namespace overgen::telemetry
