#ifndef OVERGEN_TELEMETRY_SINK_H
#define OVERGEN_TELEMETRY_SINK_H

/**
 * @file
 * The telemetry sink: the one object instrumented code talks to. A
 * `Sink *` is threaded through `sim::SimConfig` and `dse::DseOptions`
 * with a null default — instrumentation sites guard on the pointer,
 * so a disabled sink costs one predictable branch and changes no
 * simulated behavior (observation only, never actuation).
 *
 * A live sink bundles:
 *  - a counter Registry (always on),
 *  - a Chrome trace_event emitter (on when a trace path is configured
 *    or explicitly enabled; see trace.h for the pid/tid convention),
 *  - a JSONL log for per-iteration DSE records.
 *
 * flush() writes the configured output files; in-memory accessors
 * exist so tests can inspect everything without touching disk.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/registry.h"
#include "telemetry/timeline.h"
#include "telemetry/trace.h"

namespace overgen::telemetry {

/** Sink configuration. */
struct SinkOptions
{
    /** Chrome trace output; tracing is enabled when non-empty. */
    std::string tracePath;
    /** DSE per-iteration JSONL output. */
    std::string dseLogPath;
    /** Record the trace in memory even without a tracePath (tests). */
    bool enableTrace = false;
    /** Also emit per-issue instant events (large traces). */
    bool traceDetail = false;
    /** Cycles between periodic counter samples in the trace. */
    uint64_t counterSampleInterval = 64;
    /** Interval time-series JSONL output (`--stats-jsonl`); rows are
     * kept in memory (Timeline) when empty. */
    std::string timelinePath;
    /** Cycles between timeline samples (`--stats-interval`); 0
     * disables interval sampling entirely. */
    uint64_t statsInterval = 0;
};

/** See file comment. */
class Sink
{
  public:
    Sink() = default;
    explicit Sink(SinkOptions options) : opts(std::move(options)) {}

    const SinkOptions &options() const { return opts; }

    Registry &registry() { return reg; }
    const Registry &registry() const { return reg; }

    /** @return whether trace events should be recorded. */
    bool
    tracing() const
    {
        return opts.enableTrace || !opts.tracePath.empty();
    }

    /** @return whether fine-grained per-issue events are wanted. */
    bool traceDetail() const { return tracing() && opts.traceDetail; }

    TraceEmitter &trace() { return emitter; }
    const TraceEmitter &trace() const { return emitter; }

    /** @return whether interval time-series sampling is on. */
    bool timelineEnabled() const { return opts.statsInterval > 0; }

    Timeline &timeline() { return series; }
    const Timeline &timeline() const { return series; }

    /**
     * @return a fresh id for one traced activity (one simulate() call
     * maps to one trace "process"). Safe to call concurrently — ids
     * stay unique across threads.
     */
    int
    nextRunId()
    {
        return lastRunId.fetch_add(1, std::memory_order_relaxed) + 1;
    }

    /**
     * Append one DSE iteration record (serialized as a JSONL line).
     * Mutex-guarded: concurrent explorations may share one sink, and
     * each exploration emits its records in iteration order (the
     * explorer logs from its sequential accept scan, never from
     * worker threads).
     */
    void logDse(const Json &record);

    /** @return the buffered JSONL lines (tests, in-memory use);
     * requires no concurrent logDse. */
    const std::vector<std::string> &dseLines() const { return dseLog; }

    /** Write the configured trace / DSE-log files. Idempotent. */
    void flush();

  private:
    SinkOptions opts;
    Registry reg;
    TraceEmitter emitter;
    Timeline series;
    std::mutex dseMutex;
    std::vector<std::string> dseLog;
    std::atomic<int> lastRunId{ 0 };
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_SINK_H
