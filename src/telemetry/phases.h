#ifndef OVERGEN_TELEMETRY_PHASES_H
#define OVERGEN_TELEMETRY_PHASES_H

/**
 * @file
 * Phase segmentation over the interval time-series (timeline.h): turn
 * one run's sampled ledger rows into a startup / ramp / steady / drain
 * decomposition with per-phase stall attribution.
 *
 * The pipeline is a pure function of the sampled rows plus the run's
 * terminal totals: phaseSamplesFromRows() parses the compact row JSON
 * into per-cycle aggregates, appendTerminalSample() closes the series
 * with the run's final ledgers (so per-phase spans sum exactly to the
 * run's cycles even when the run ends between boundaries), and
 * analyzePhases() segments with hysteresis thresholds on the
 * per-interval busy fraction. Because the timeline rows themselves are
 * bit-identical across `--sim-threads`, engine modes (naive /
 * fast-forward / check) and checkpoint-resume, so is the PhaseProfile
 * — the determinism argument is inherited wholesale, see DESIGN.md
 * "Phase-aware analysis".
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "telemetry/ledger.h"

namespace overgen::telemetry {

/** One sampled point of a run: cumulative ledgers and gauges at a
 * cycle boundary, tiles summed into one ledger (phase structure is a
 * whole-run property; per-tile skew shows up as non-busy categories in
 * the sum). */
struct PhaseSample
{
    uint64_t cycle = 0;
    /** Sum of every tile's cumulative ledger at this cycle. */
    CycleLedger tiles;
    /** The memory system's cumulative ledger at this cycle. */
    CycleLedger memory;
    /** Sum of tile iteration counters (cumulative). */
    uint64_t iterations = 0;
    /** Sum of tile firing counters (cumulative). */
    uint64_t firings = 0;

    bool operator==(const PhaseSample &other) const = default;
};

/** The four execution regimes (paper framing: nested-loop kernels
 * have sharply distinct ramp/steady weights set by trip counts). */
enum class PhaseKind : int
{
    /** Stream configuration + dispatch pipeline (tiles report the
     * Startup category). */
    Startup = 0,
    /** Pipelines and the memory hierarchy filling; busy fraction still
     * climbing toward its peak. */
    Ramp,
    /** At (hysteresis-held) peak busy fraction. */
    Steady,
    /** Trailing off: tiles at the end-of-kernel barrier, queues
     * draining. */
    Drain,
};

/** Number of PhaseKind values. */
inline constexpr int kNumPhaseKinds =
    static_cast<int>(PhaseKind::Drain) + 1;

/** @return the lowercase name of @p kind ("startup", ...). */
const char *phaseKindName(PhaseKind kind);

/** One contiguous phase of a run: the half-open cycle span
 * (beginCycle, endCycle] and the ledger deltas accrued inside it. */
struct PhaseSpan
{
    PhaseKind kind = PhaseKind::Startup;
    uint64_t beginCycle = 0;  //!< exclusive
    uint64_t endCycle = 0;    //!< inclusive
    /** Tile-ledger delta over the span (sums to span * numTiles). */
    CycleLedger tiles;
    /** Memory-ledger delta over the span. */
    CycleLedger memory;
    /** Tile busy cycles / tile total cycles inside the span. */
    double busyFraction = 0.0;
    /** Dominant non-busy tile category in the span (Busy when nothing
     * stalls) — the per-phase bottleneck flag. */
    CycleCategory bottleneck = CycleCategory::Busy;

    uint64_t cycles() const { return endCycle - beginCycle; }

    bool operator==(const PhaseSpan &other) const = default;
};

/** The phase decomposition of one run. */
struct PhaseProfile
{
    /** Total cycles covered (== the run's cycle count once the
     * terminal sample is appended). */
    uint64_t cycles = 0;
    /** Contiguous, non-overlapping spans covering (0, cycles]. */
    std::vector<PhaseSpan> spans;
    /** Cycles before steady state begins (startup + ramp); equals
     * `cycles` when the run never reaches steady state. */
    uint64_t rampCycles = 0;
    /** Whether a steady phase exists (short kernels may never settle). */
    bool reachedSteady = false;
    /** Committed instructions per cycle inside the steady span(s)
     * (0 when no steady phase, or when no scale was supplied). */
    double steadyIpc = 0.0;
    /** Tile busy fraction per sampled interval, in cycle order — the
     * segmentation input, kept for reports and spread statistics. */
    std::vector<double> busyFractions;

    bool operator==(const PhaseProfile &other) const = default;

    /** @return the total cycles attributed to @p kind. */
    uint64_t cyclesIn(PhaseKind kind) const;

    /** Compact JSON: cycles, ramp_cycles, steady_ipc, and one object
     * per span (phase, cycles, share, busy, bottleneck). */
    Json toJson() const;
};

/**
 * Parse timeline rows (newline-separated compact JSON, the exact
 * bytes TimelineRun holds) into per-cycle samples: rows of every
 * "tileN" component are summed, the "memory" component keeps its own
 * ledger. Rows may come from several concatenated buffers (e.g. a
 * checkpoint-interrupted prefix plus a resumed suffix) in any order;
 * samples are aggregated by cycle and returned cycle-sorted. Rows of
 * more than one run must not be mixed (labels are not consulted).
 */
std::vector<PhaseSample> phaseSamplesFromRows(std::string_view rows);

/**
 * Append the run-final sample at @p cycles from the terminal ledgers,
 * unless the last sample already sits at @p cycles. Keeps per-phase
 * spans summing exactly to the run's cycle count when the run ends
 * between interval boundaries.
 */
void appendTerminalSample(std::vector<PhaseSample> &samples,
                          uint64_t cycles, const CycleLedger &tiles,
                          const CycleLedger &memory,
                          uint64_t iterations, uint64_t firings);

/**
 * Segment @p samples (cycle-sorted cumulative series, e.g. from
 * phaseSamplesFromRows + appendTerminalSample) into phases:
 *
 *  - *startup*: maximal prefix of intervals whose tile-ledger delta is
 *    majority Startup;
 *  - the peak busy fraction over all intervals sets a hysteresis
 *    threshold pair (enter 0.85 x peak, exit 0.70 x peak);
 *  - *steady*: from the first non-startup interval at or above the
 *    enter threshold through the last interval at or above the exit
 *    threshold — dips between the thresholds do not break the phase;
 *  - *ramp*: between startup and steady; *drain*: the suffix after
 *    steady. A run that never reaches the enter threshold has no
 *    steady phase: everything after startup is ramp (rampCycles then
 *    spans the whole run — the signal the phase-aware DSE objective
 *    penalizes on short kernels).
 *
 * @p instsPerFiring scales firing deltas to instructions for
 * steadyIpc (pass the run's insts/firings ratio; 0 leaves steadyIpc
 * at 0). Deterministic: a pure function of its arguments.
 */
PhaseProfile analyzePhases(const std::vector<PhaseSample> &samples,
                           double instsPerFiring = 0.0);

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_PHASES_H
