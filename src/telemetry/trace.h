#ifndef OVERGEN_TELEMETRY_TRACE_H
#define OVERGEN_TELEMETRY_TRACE_H

/**
 * @file
 * Cycle-level trace emitter serializing to the Chrome trace_event JSON
 * format, loadable in chrome://tracing and Perfetto. Timestamps are
 * overlay cycles (presented as microseconds — only relative spacing
 * matters for viewing). Events are recorded into a compact in-memory
 * log with interned name/category strings and serialized on demand
 * through the common/json writer, so a trace file round-trips through
 * Json::parse.
 *
 * The pid/tid convention used by the simulator: each simulate() call
 * is one "process" (pid = run id, named via process metadata), tid 0
 * is the shared memory system, tid 1+N is tile N.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace overgen::telemetry {

/** One recorded event (phase follows trace_event: B/E/i/C/M). */
struct TraceEvent
{
    char phase = 'i';
    uint32_t name = 0;  //!< index into the intern table
    uint32_t cat = 0;   //!< index into the intern table
    int pid = 0;
    int tid = 0;
    uint64_t ts = 0;    //!< cycles
    /** Counter value ('C') or metadata string index ('M'). */
    double value = 0.0;
};

/**
 * Recorder + serializer for Chrome trace_event JSON. Recording is
 * mutex-guarded so concurrent simulations (bench harness fan-out,
 * parallel DSE) may share one emitter; each simulate() call keeps its
 * own pid, so interleaved recording still renders as separate
 * process rows.
 */
class TraceEmitter
{
  public:
    /** Record a duration-begin event. */
    void begin(const std::string &name, const std::string &cat, int pid,
               int tid, uint64_t ts);
    /** Record the matching duration-end event. */
    void end(const std::string &name, const std::string &cat, int pid,
             int tid, uint64_t ts);
    /** Record a thread-scoped instant event. */
    void instant(const std::string &name, const std::string &cat,
                 int pid, int tid, uint64_t ts);
    /** Record a counter sample (plots @p value over time). */
    void counter(const std::string &name, int pid, int tid, uint64_t ts,
                 double value);
    /** Name a process in the viewer (metadata event). */
    void processName(int pid, const std::string &name);
    /** Name a thread in the viewer (metadata event). */
    void threadName(int pid, int tid, const std::string &name);

    size_t
    eventCount() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return events.size();
    }
    bool
    empty() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return events.empty();
    }

    /** Serialize as {"traceEvents": [...]} sorted by timestamp. */
    Json toJson() const;
    /** Write the serialized trace to @p path; fatal on I/O error. */
    void writeTo(const std::string &path) const;

  private:
    uint32_t intern(const std::string &s);
    void push(char phase, const std::string &name,
              const std::string &cat, int pid, int tid, uint64_t ts,
              double value);

    mutable std::mutex mutex;
    std::vector<std::string> strings;
    std::map<std::string, uint32_t> internIndex;
    std::vector<TraceEvent> events;
};

} // namespace overgen::telemetry

#endif // OVERGEN_TELEMETRY_TRACE_H
